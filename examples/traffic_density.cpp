// Traffic density analysis — the paper's Sec. 4 query 2:
// "Give me the maximal density of cars on all roads in Antwerp on Monday
// morning", under all three readings the paper distinguishes, plus the
// aggregate-R-tree baseline for historical COUNT(region, interval) queries.

#include <cstdio>

#include "core/engine.h"
#include "core/queries.h"
#include "index/agg_rtree.h"
#include "workload/city.h"
#include "workload/trajectories.h"

namespace {

int Fail(const piet::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using piet::core::QueryEngine;
  using piet::core::TimePredicate;
  using piet::core::queries::DensityInterpretation;

  piet::workload::CityConfig city_config;
  city_config.seed = 7;
  city_config.grid_cols = 8;
  city_config.grid_rows = 8;
  city_config.streets_per_axis = 6;
  auto city_r = piet::workload::GenerateCity(city_config);
  if (!city_r.ok()) {
    return Fail(city_r.status());
  }
  piet::workload::City city = std::move(city_r).ValueOrDie();

  // Street-network traffic so samples actually lie on roads.
  piet::workload::TrajectoryConfig traj;
  traj.seed = 21;
  traj.num_objects = 120;
  traj.model = piet::workload::MovementModel::kStreetNetwork;
  traj.duration = 2 * 3600.0;
  traj.sample_period = 60.0;
  traj.speed = 12.0;
  auto moft_r = piet::workload::GenerateTrajectories(city, traj);
  if (!moft_r.ok()) {
    return Fail(moft_r.status());
  }
  piet::moving::Moft moft_copy = moft_r.ValueOrDie();
  if (auto s = city.db->AddMoft("traffic", std::move(moft_r).ValueOrDie());
      !s.ok()) {
    return Fail(s);
  }

  QueryEngine engine(city.db.get());

  std::printf("== Query 2: maximal car density on roads, three readings ==\n");
  struct Reading {
    DensityInterpretation interpretation;
    const char* label;
  };
  const Reading kReadings[] = {
      {DensityInterpretation::kPerStreet,
       "(a) per street over the whole window"},
      {DensityInterpretation::kPerStreetInstant,
       "(b) per (street, instant)"},
      {DensityInterpretation::kCityWide, "(c) city-wide per instant"},
  };
  for (const Reading& reading : kReadings) {
    auto result = piet::core::queries::MaxStreetDensity(
        engine, "traffic", city.streets_layer, 0.5, TimePredicate(),
        reading.interpretation);
    if (!result.ok()) {
      return Fail(result.status());
    }
    const auto& r = result.ValueOrDie();
    std::printf("%-38s density=%.5f cars/unit", reading.label, r.density);
    if (!r.street.is_null()) {
      std::printf("  street=%s", r.street.ToString().c_str());
    }
    if (!r.instant.is_null()) {
      std::printf("  t=%s", r.instant.ToString().c_str());
    }
    std::printf("\n");
  }

  // Aggregate R-tree baseline: pre-aggregate observations per neighborhood
  // and answer historical count queries without touching the MOFT.
  std::printf("\n== Historical COUNT(window, interval) via the aRB-tree ==\n");
  auto layer = city.db->gis().GetLayer(city.neighborhoods_layer);
  if (!layer.ok()) {
    return Fail(layer.status());
  }
  std::vector<std::pair<piet::index::AggregateRTree::RegionId,
                        piet::geometry::BoundingBox>>
      regions;
  for (auto id : layer.ValueOrDie()->ids()) {
    regions.emplace_back(id, layer.ValueOrDie()->BoundsOf(id).ValueOrDie());
  }
  piet::index::AggregateRTree tree(regions, /*bucket_width=*/300.0);
  for (const auto& sample : moft_copy.Scan()) {
    for (auto id : layer.ValueOrDie()->GeometriesContaining(sample.pos)) {
      (void)tree.AddObservation(id, sample.t);
    }
  }
  for (double t0 : {0.0, 1800.0, 3600.0}) {
    piet::geometry::BoundingBox window(0, 0, city.extent.max_x / 2,
                                       city.extent.max_y / 2);
    double count = tree.Count(
        window, {piet::temporal::TimePoint(t0),
                 piet::temporal::TimePoint(t0 + 1800.0)});
    std::printf("  window SW-quadrant, t=[%5.0f, %5.0f): %6.0f observations "
                "(%zu tree nodes visited)\n",
                t0, t0 + 1800.0, count, tree.last_nodes_visited());
  }
  return 0;
}
