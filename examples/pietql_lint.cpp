// Standalone Piet-QL static linter — the command-line front end of the
// src/analysis/lint/ pass. Lints `.lint` corpus cases (schema model +
// queries, see analysis/lint/corpus.h for the format) without evaluating
// anything, and prints structured diagnostics with fix-its.
//
// Usage:
//   pietql_lint [--json] [--figure1] [--fix] [case.lint ...]
//
//   --figure1   lint the paper's six-bus Figure 1 scenario (schema +
//               canonical queries); must come out clean
//   --json      print diagnostics as a JSON array instead of text
//   --fix       apply the plan rewriter's fix-its to each case's queries
//               and print the rewritten Piet-QL (round-tripped through the
//               printer) instead of linting; also verifies any
//               `expect-rewrite` directive
//
// Exit status:
//   0  every case matched its `expect` set (cases without `expect` lines
//      must produce no findings) and --figure1, when given, was clean;
//      under --fix, every fix-it applied (rewritten text re-parses, the
//      rewrite is idempotent, and `expect-rewrite` sets matched)
//   1  some case missed/overshot its expectations, a clean case warned,
//      or a --fix rewrite failed to apply
//   2  usage / IO errors

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/lint/corpus.h"
#include "analysis/lint/query_lint.h"
#include "analysis/lint/schema_lint.h"
#include "analysis/query_check.h"
#include "analysis/rewrite/rewriter.h"
#include "core/pietql/parser.h"
#include "core/pietql/printer.h"
#include "workload/scenario.h"

namespace {

using piet::analysis::DiagnosticList;
using piet::analysis::lint::CorpusCase;

void PrintDiagnostics(const DiagnosticList& list, bool json) {
  if (json) {
    std::printf("%s\n", list.ToJson().c_str());
    return;
  }
  for (const piet::analysis::Diagnostic& d : list) {
    std::printf("  %s\n", d.ToString().c_str());
  }
}

/// Lints the Figure 1 scenario: FromInstance over the live schema, then the
/// paper's canonical queries. Returns false on any warning-or-worse finding.
bool LintFigure1(bool json) {
  auto scenario = piet::workload::BuildFigure1Scenario();
  if (!scenario.ok()) {
    std::fprintf(stderr, "figure1 build failed: %s\n",
                 scenario.status().ToString().c_str());
    return false;
  }
  const auto& db = *scenario.ValueOrDie().db;
  piet::analysis::lint::SchemaModel model =
      piet::analysis::lint::SchemaModel::FromInstance(db.gis());
  DiagnosticList all = piet::analysis::lint::LintSchema(model);

  piet::analysis::QueryContext context;
  context.gis = &db.gis();
  context.moft_names = db.MoftNames();
  const char* kQueries[] = {
      "SELECT layer.Ln; FROM PietSchema; WHERE ATTR(layer.Ln, income) < 1500"
      " | SELECT RATE PER HOUR FROM FMbus WHERE INSIDE RESULT AND"
      " TIME.timeOfDay = 'Morning'",
      "SELECT layer.Ln; FROM PietSchema;"
      " | SELECT COUNT(DISTINCT OID) FROM FMbus WHERE PASSES THROUGH RESULT",
      "SELECT layer.Ln; FROM PietSchema;"
      " | SELECT COUNT(*) FROM FMbus WHERE NEAR(layer.Ls, 10)"
      " GROUP BY TIME.hour",
  };
  for (const char* text : kQueries) {
    auto query = piet::core::pietql::Parse(text);
    if (!query.ok()) {
      std::fprintf(stderr, "figure1 query failed to parse: %s\n",
                   query.status().ToString().c_str());
      return false;
    }
    all.Merge(piet::analysis::AnalyzeQuery(context, query.ValueOrDie()));
    all.Merge(
        piet::analysis::lint::LintQuery(context, query.ValueOrDie()));
  }
  std::printf("figure1: %zu finding(s)\n", all.size());
  PrintDiagnostics(all, json);
  bool clean = true;
  for (const piet::analysis::Diagnostic& d : all) {
    if (d.severity != piet::analysis::Severity::kNote) {
      clean = false;
    }
  }
  return clean;
}

/// --fix: applies the rewriter's fix-its to each of the case's queries and
/// prints the rewritten Piet-QL. A fix-it fails to apply when the
/// rewritten text does not re-parse, a second rewrite pass changes it
/// again (non-idempotent), or an `expect-rewrite` directive mismatches.
bool FixCase(const CorpusCase& c) {
  bool ok = true;
  if (c.instance == nullptr) {
    std::printf("%s: schema-defect case, no queries to rewrite\n",
                c.name.c_str());
  } else {
    piet::analysis::rewrite::RewriteContext context;
    context.gis = c.instance.get();
    for (size_t i = 0; i < c.queries.size(); ++i) {
      auto parsed = piet::core::pietql::Parse(c.queries[i]);
      if (!parsed.ok()) {
        // An unparseable query is a lint finding (lint-parse-error), not a
        // fix-it failure: there is nothing to rewrite.
        std::printf("%s query %zu: unparseable, skipped\n", c.name.c_str(),
                    i + 1);
        continue;
      }
      piet::analysis::rewrite::RewritePlan plan =
          piet::analysis::rewrite::RewriteQuery(context,
                                                parsed.ValueOrDie());
      const std::string rewritten = piet::core::pietql::Print(plan.query);
      std::printf("%s query %zu: %s\n", c.name.c_str(), i + 1,
                  rewritten.c_str());
      for (const piet::analysis::rewrite::AppliedRewrite& a : plan.applied) {
        std::printf("  applied %s [%s]: %s\n", a.rule_id.c_str(),
                    a.entity.c_str(), a.detail.c_str());
      }
      auto reparsed = piet::core::pietql::Parse(rewritten);
      if (!reparsed.ok()) {
        std::printf("  FIX FAILED: rewritten text does not re-parse: %s\n",
                    reparsed.status().ToString().c_str());
        ok = false;
        continue;
      }
      piet::analysis::rewrite::RewritePlan second =
          piet::analysis::rewrite::RewriteQuery(context,
                                                reparsed.ValueOrDie());
      if (piet::core::pietql::Print(second.query) != rewritten) {
        std::printf("  FIX FAILED: rewrite is not idempotent (second pass "
                    "gave: %s)\n",
                    piet::core::pietql::Print(second.query).c_str());
        ok = false;
      }
    }
  }
  auto verdict = piet::analysis::lint::CheckRewriteExpectations(c);
  if (!verdict.ok()) {
    std::printf("  %s\n", verdict.ToString().c_str());
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool figure1 = false;
  bool fix = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--figure1") == 0) {
      figure1 = true;
    } else if (std::strcmp(argv[i], "--fix") == 0) {
      fix = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: pietql_lint [--json] [--figure1] [--fix] "
                   "[case.lint ...]\n");
      return 2;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (!figure1 && files.empty()) {
    std::fprintf(stderr,
                 "usage: pietql_lint [--json] [--figure1] [--fix] "
                 "[case.lint ...]\n");
    return 2;
  }

  bool all_ok = true;
  if (figure1 && !LintFigure1(json)) {
    all_ok = false;
  }
  for (const std::string& path : files) {
    auto parsed = piet::analysis::lint::ParseCorpusFile(path);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   parsed.status().ToString().c_str());
      return 2;
    }
    const CorpusCase& c = parsed.ValueOrDie();
    if (fix) {
      if (!FixCase(c)) {
        all_ok = false;
      }
      continue;
    }
    const DiagnosticList found = piet::analysis::lint::LintCase(c);
    auto verdict = piet::analysis::lint::CheckExpectations(c, found);
    std::printf("%s: %zu finding(s)%s\n", c.name.c_str(), found.size(),
                verdict.ok() ? "" : " [EXPECTATION MISMATCH]");
    PrintDiagnostics(found, json);
    if (!verdict.ok()) {
      std::printf("  %s\n", verdict.ToString().c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
