// Standalone Piet-QL static linter — the command-line front end of the
// src/analysis/lint/ pass. Lints `.lint` corpus cases (schema model +
// queries, see analysis/lint/corpus.h for the format) without evaluating
// anything, and prints structured diagnostics with fix-its.
//
// Usage:
//   pietql_lint [--json] [--figure1] [case.lint ...]
//
//   --figure1   lint the paper's six-bus Figure 1 scenario (schema +
//               canonical queries); must come out clean
//   --json      print diagnostics as a JSON array instead of text
//
// Exit status:
//   0  every case matched its `expect` set (cases without `expect` lines
//      must produce no findings) and --figure1, when given, was clean
//   1  some case missed/overshot its expectations, or a clean case warned
//   2  usage / IO errors

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/lint/corpus.h"
#include "analysis/lint/query_lint.h"
#include "analysis/lint/schema_lint.h"
#include "analysis/query_check.h"
#include "core/pietql/parser.h"
#include "workload/scenario.h"

namespace {

using piet::analysis::DiagnosticList;
using piet::analysis::lint::CorpusCase;

void PrintDiagnostics(const DiagnosticList& list, bool json) {
  if (json) {
    std::printf("%s\n", list.ToJson().c_str());
    return;
  }
  for (const piet::analysis::Diagnostic& d : list) {
    std::printf("  %s\n", d.ToString().c_str());
  }
}

/// Lints the Figure 1 scenario: FromInstance over the live schema, then the
/// paper's canonical queries. Returns false on any warning-or-worse finding.
bool LintFigure1(bool json) {
  auto scenario = piet::workload::BuildFigure1Scenario();
  if (!scenario.ok()) {
    std::fprintf(stderr, "figure1 build failed: %s\n",
                 scenario.status().ToString().c_str());
    return false;
  }
  const auto& db = *scenario.ValueOrDie().db;
  piet::analysis::lint::SchemaModel model =
      piet::analysis::lint::SchemaModel::FromInstance(db.gis());
  DiagnosticList all = piet::analysis::lint::LintSchema(model);

  piet::analysis::QueryContext context;
  context.gis = &db.gis();
  context.moft_names = db.MoftNames();
  const char* kQueries[] = {
      "SELECT layer.Ln; FROM PietSchema; WHERE ATTR(layer.Ln, income) < 1500"
      " | SELECT RATE PER HOUR FROM FMbus WHERE INSIDE RESULT AND"
      " TIME.timeOfDay = 'Morning'",
      "SELECT layer.Ln; FROM PietSchema;"
      " | SELECT COUNT(DISTINCT OID) FROM FMbus WHERE PASSES THROUGH RESULT",
      "SELECT layer.Ln; FROM PietSchema;"
      " | SELECT COUNT(*) FROM FMbus WHERE NEAR(layer.Ls, 10)"
      " GROUP BY TIME.hour",
  };
  for (const char* text : kQueries) {
    auto query = piet::core::pietql::Parse(text);
    if (!query.ok()) {
      std::fprintf(stderr, "figure1 query failed to parse: %s\n",
                   query.status().ToString().c_str());
      return false;
    }
    all.Merge(piet::analysis::AnalyzeQuery(context, query.ValueOrDie()));
    all.Merge(
        piet::analysis::lint::LintQuery(context, query.ValueOrDie()));
  }
  std::printf("figure1: %zu finding(s)\n", all.size());
  PrintDiagnostics(all, json);
  bool clean = true;
  for (const piet::analysis::Diagnostic& d : all) {
    if (d.severity != piet::analysis::Severity::kNote) {
      clean = false;
    }
  }
  return clean;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool figure1 = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--figure1") == 0) {
      figure1 = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: pietql_lint [--json] [--figure1] [case.lint ...]\n");
      return 2;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (!figure1 && files.empty()) {
    std::fprintf(stderr,
                 "usage: pietql_lint [--json] [--figure1] [case.lint ...]\n");
    return 2;
  }

  bool all_ok = true;
  if (figure1 && !LintFigure1(json)) {
    all_ok = false;
  }
  for (const std::string& path : files) {
    auto parsed = piet::analysis::lint::ParseCorpusFile(path);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   parsed.status().ToString().c_str());
      return 2;
    }
    const CorpusCase& c = parsed.ValueOrDie();
    const DiagnosticList found = piet::analysis::lint::LintCase(c);
    auto verdict = piet::analysis::lint::CheckExpectations(c, found);
    std::printf("%s: %zu finding(s)%s\n", c.name.c_str(), found.size(),
                verdict.ok() ? "" : " [EXPECTATION MISMATCH]");
    PrintDiagnostics(found, json);
    if (!verdict.ok()) {
      std::printf("  %s\n", verdict.ToString().c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
