// Interactive Piet-QL shell over a generated city — a minimal "database
// console" for the framework. Reads one query per line, prints the result.
//
// Usage:
//   pietql_shell                # interactive (reads stdin)
//   echo "<query>" | pietql_shell
//   PIETQL_CHECK=strict pietql_shell   # semantic analysis: off|warn|strict
//
// Prefix any query with `EXPLAIN ANALYZE` to run it under a trace collector
// and print the span tree (parse -> analyze -> geo_filter -> moft_intersect
// -> aggregate, with per-stage durations and work counters) above the
// result. With PIET_REWRITE=1 the plan rewriter runs between analyze and
// geo_filter, and EXPLAIN ANALYZE additionally prints the rewritten plan
// next to the original, one line per applied rewrite rule. The result is
// bit-identical to the unprefixed query.
//
// The database is a deterministic 8x8 city with a 200-car random-waypoint
// MOFT named `cars`. Available layers: neighborhoods (polygon; attributes
// income, population, name), streets, schools, stores, stops, rivers.
//
// Example session:
//   SELECT layer.neighborhoods; FROM SimCity;
//       WHERE ATTR(layer.neighborhoods, income) < 1500
//       | SELECT COUNT(DISTINCT OID) FROM cars WHERE INSIDE RESULT
//   SELECT layer.neighborhoods; FROM SimCity;
//       | SELECT RATE PER HOUR FROM cars WHERE INSIDE RESULT
//         GROUP BY TIME.hour

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <string_view>

#include "analysis/diagnostic.h"
#include "core/pietql/evaluator.h"
#include "workload/city.h"
#include "workload/trajectories.h"

namespace {

piet::analysis::CheckMode CheckModeFromEnv() {
  const char* mode = std::getenv("PIETQL_CHECK");
  if (mode == nullptr || std::strcmp(mode, "off") == 0) {
    return piet::analysis::CheckMode::kOff;
  }
  if (std::strcmp(mode, "warn") == 0) {
    return piet::analysis::CheckMode::kWarn;
  }
  if (std::strcmp(mode, "strict") == 0) {
    return piet::analysis::CheckMode::kStrict;
  }
  std::fprintf(stderr, "unknown PIETQL_CHECK '%s' (off|warn|strict)\n", mode);
  std::exit(2);
}

}  // namespace

int main() {
  const piet::analysis::CheckMode check_mode = CheckModeFromEnv();
  piet::workload::CityConfig config;
  config.seed = 1;
  config.grid_cols = 8;
  config.grid_rows = 8;
  auto city_r = piet::workload::GenerateCity(config);
  if (!city_r.ok()) {
    std::fprintf(stderr, "city generation failed: %s\n",
                 city_r.status().ToString().c_str());
    return 1;
  }
  piet::workload::City city = std::move(city_r).ValueOrDie();

  piet::workload::TrajectoryConfig traj;
  traj.seed = 2;
  traj.num_objects = 200;
  traj.duration = 3 * 3600.0;
  traj.sample_period = 60.0;
  traj.speed = 12.0;
  auto moft = piet::workload::GenerateTrajectories(city, traj);
  if (!moft.ok() ||
      !city.db->AddMoft("cars", std::move(moft).ValueOrDie()).ok()) {
    std::fprintf(stderr, "trajectory generation failed\n");
    return 1;
  }

  std::fprintf(stderr,
               "piet-ql shell — layers: neighborhoods streets schools "
               "stores stops rivers; MOFT: cars (%d objects)\n"
               "one query per line; empty line or EOF quits\n",
               traj.num_objects);

  piet::core::pietql::Evaluator evaluator(city.db.get(), check_mode);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) {
      break;
    }
    std::string_view text = line;
    bool explain = false;
    constexpr std::string_view kExplain = "EXPLAIN ANALYZE";
    if (text.substr(0, kExplain.size()) == kExplain) {
      explain = true;
      text.remove_prefix(kExplain.size());
      while (!text.empty() && text.front() == ' ') {
        text.remove_prefix(1);
      }
    }
    if (explain) {
      auto profiled = evaluator.EvaluateStringProfiled(text);
      if (!profiled.ok()) {
        std::printf("error: %s\n", profiled.status().ToString().c_str());
        continue;
      }
      const auto& value = profiled.ValueOrDie();
      std::printf("%s", value.profile.ToPrettyString().c_str());
      if (value.result.rewrite.has_value()) {
        std::printf("%s", value.result.rewrite->ToString().c_str());
      }
      for (const piet::analysis::Diagnostic& d : value.result.diagnostics) {
        std::printf("%s\n", d.ToString().c_str());
      }
      std::printf("%s\n", value.result.ToString().c_str());
      continue;
    }
    auto result = evaluator.EvaluateString(text);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    for (const piet::analysis::Diagnostic& d :
         result.ValueOrDie().diagnostics) {
      std::printf("%s\n", d.ToString().c_str());
    }
    std::printf("%s\n", result.ValueOrDie().ToString().c_str());
  }
  return 0;
}
