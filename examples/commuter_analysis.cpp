// Commuter traffic analysis over a synthetic city — the paper's motivating
// scenario ("commuter traffic in a city", Sec. 1).
//
// Builds an 8x8-neighborhood city with schools, stops, streets and a river,
// simulates a commuter fleet (homes biased to low-income cells, workplaces
// to high-income ones), precomputes the Piet overlay, and then answers a
// set of OLAP-style aggregate questions, both through the typed engine API
// and through Piet-QL.

#include <cstdio>

#include "core/engine.h"
#include "core/pietql/evaluator.h"
#include "core/queries.h"
#include "olap/aggregate.h"
#include "workload/city.h"
#include "workload/trajectories.h"

namespace {

int Fail(const piet::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using piet::Value;
  using piet::core::GeometryPredicate;
  using piet::core::QueryEngine;
  using piet::core::Strategy;
  using piet::core::TimePredicate;

  // 1. Build the city.
  piet::workload::CityConfig city_config;
  city_config.seed = 2026;
  city_config.grid_cols = 8;
  city_config.grid_rows = 8;
  city_config.low_income_fraction = 0.25;
  auto city_r = piet::workload::GenerateCity(city_config);
  if (!city_r.ok()) {
    return Fail(city_r.status());
  }
  piet::workload::City city = std::move(city_r).ValueOrDie();
  std::printf("city: %d neighborhoods over %.0f x %.0f\n",
              city.num_neighborhoods, city.extent.width(),
              city.extent.height());

  // 2. Simulate a commuter fleet observed every 30 s for a day window.
  piet::workload::TrajectoryConfig traj;
  traj.seed = 17;
  traj.num_objects = 150;
  traj.model = piet::workload::MovementModel::kCommuter;
  traj.duration = 8 * 3600.0;  // 8 simulated hours.
  traj.sample_period = 30.0;
  traj.speed = 14.0;
  auto moft_r = piet::workload::GenerateTrajectories(city, traj);
  if (!moft_r.ok()) {
    return Fail(moft_r.status());
  }
  std::printf("fleet: %zu objects, %zu observations\n",
              moft_r.ValueOrDie().num_objects(),
              moft_r.ValueOrDie().num_samples());
  if (auto s = city.db->AddMoft("commuters", std::move(moft_r).ValueOrDie());
      !s.ok()) {
    return Fail(s);
  }

  // 3. Precompute the Sec. 5 overlay for the neighborhood layer.
  if (auto s = city.db->BuildOverlay({city.neighborhoods_layer}); !s.ok()) {
    return Fail(s);
  }

  QueryEngine engine(city.db.get());

  // 4a. Commuters per hour in low-income neighborhoods (headline shape).
  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);
  auto per_hour = piet::core::queries::CountPerHourInRegion(
      engine, "commuters", city.neighborhoods_layer, low, TimePredicate(),
      Strategy::kOverlay);
  if (!per_hour.ok()) {
    return Fail(per_hour.status());
  }
  std::printf("\ncommuters per hour in low-income neighborhoods: %.2f "
              "(%lld object-hours over %lld hours)\n",
              per_hour.ValueOrDie().per_hour,
              static_cast<long long>(per_hour.ValueOrDie().tuple_count),
              static_cast<long long>(per_hour.ValueOrDie().hour_count));

  // 4b. Hourly histogram via the region relation + Def. 7 γ aggregation.
  auto region = engine.SampleRegion("commuters", city.neighborhoods_layer,
                                    low, TimePredicate(), Strategy::kOverlay);
  if (!region.ok()) {
    return Fail(region.status());
  }
  // Re-key t to the hour bucket, then γ_{COUNT-DISTINCT Oid (hour)}.
  piet::olap::FactTable keyed =
      piet::olap::FactTable::Make({"hour", "Oid"}, {});
  for (const auto& row : region.ValueOrDie().rows()) {
    double t = row[1].AsDoubleUnchecked();
    (void)keyed.Append(
        {Value(static_cast<int64_t>(
             piet::temporal::StartOfHour(piet::temporal::TimePoint(t))
                 .seconds /
             3600.0)),
         row[0]});
  }
  auto histogram = piet::olap::Aggregate(
      keyed, {"hour"}, piet::olap::AggFunction::kCountDistinct, "Oid",
      "objects");
  if (!histogram.ok()) {
    return Fail(histogram.status());
  }
  std::printf("\nper-hour histogram (hour bucket -> distinct commuters):\n%s",
              histogram.ValueOrDie().ToString(12).c_str());

  // 4c. Where do commuters dwell? Total time per named neighborhood (top 3).
  std::printf("\ntime spent (LIT semantics) in the three busiest "
              "neighborhoods:\n");
  auto members = city.db->gis().AlphaMembers("neighborhood");
  if (!members.ok()) {
    return Fail(members.status());
  }
  std::vector<std::pair<double, std::string>> dwell;
  for (const Value& member : members.ValueOrDie()) {
    auto stay = piet::core::queries::TimeSpentInRegion(
        engine, "commuters", city.neighborhoods_layer, "neighborhood", member,
        TimePredicate());
    if (stay.ok()) {
      dwell.emplace_back(stay.ValueOrDie().total_seconds,
                         member.AsStringUnchecked());
    }
  }
  std::sort(dwell.rbegin(), dwell.rend());
  for (size_t i = 0; i < 3 && i < dwell.size(); ++i) {
    std::printf("  %-6s %10.1f object-hours\n", dwell[i].second.c_str(),
                dwell[i].first / 3600.0);
  }

  // 4d. The same analysis in Piet-QL.
  piet::core::pietql::Evaluator evaluator(city.db.get());
  auto ql = evaluator.EvaluateString(
      "SELECT layer.neighborhoods; FROM SimCity; "
      "WHERE ATTR(layer.neighborhoods, income) < 1500 "
      "| SELECT COUNT(DISTINCT OID) FROM commuters "
      "WHERE PASSES THROUGH RESULT");
  if (!ql.ok()) {
    return Fail(ql.status());
  }
  std::printf("\nPiet-QL: distinct commuters whose trajectory passes through "
              "a low-income neighborhood: %s\n",
              ql.ValueOrDie().scalar->ToString().c_str());
  return 0;
}
