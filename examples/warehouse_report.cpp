// Classical data-warehouse reporting over the application part — the
// GIS-OLAP half of the paper's framework (Sec. 1's "numerical and
// categorical information stored in a conventional data warehouse", with
// dimension tables for stores and a fact table of economic information),
// queried through the MDX-lite dialect and combined with spatial
// qualification of the stores through the GIS layers.

#include <cstdio>

#include "core/engine.h"
#include "olap/mdx.h"
#include "workload/city.h"

namespace {

int Fail(const piet::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using piet::Value;
  using piet::olap::AggFunction;
  using piet::olap::Cube;
  using piet::olap::DimensionInstance;
  using piet::olap::DimensionSchema;
  using piet::olap::FactTable;

  // 1. A city whose store nodes become the warehouse's Store dimension.
  piet::workload::CityConfig config;
  config.seed = 404;
  config.grid_cols = 6;
  config.grid_rows = 6;
  config.num_stores = 18;
  auto city_r = piet::workload::GenerateCity(config);
  if (!city_r.ok()) {
    return Fail(city_r.status());
  }
  piet::workload::City city = std::move(city_r).ValueOrDie();
  auto stores = city.db->gis().GetLayer(city.stores_layer);
  auto neighborhoods = city.db->gis().GetLayer(city.neighborhoods_layer);
  if (!stores.ok() || !neighborhoods.ok()) {
    return Fail(stores.status());
  }

  // 2. Store dimension: store -> zone (low/high income, by location) -> All.
  DimensionSchema store_schema("Store", "store");
  (void)store_schema.AddEdge("store", "zone");
  (void)store_schema.AddEdge("zone", DimensionSchema::kAll);
  auto store_dim = std::make_shared<DimensionInstance>(store_schema);
  for (auto id : stores.ValueOrDie()->ids()) {
    auto pos = stores.ValueOrDie()->GetPoint(id);
    if (!pos.ok()) {
      continue;
    }
    // Spatial classification through the GIS: which neighborhood hosts the
    // store, and is it low-income?
    std::string zone = "unzoned";
    auto hosts =
        neighborhoods.ValueOrDie()->GeometriesContaining(pos.ValueOrDie());
    if (!hosts.empty()) {
      auto income =
          neighborhoods.ValueOrDie()->GetAttribute(hosts[0], "income");
      if (income.ok()) {
        zone = income.ValueOrDie().AsNumeric().ValueOr(0) <
                       city.income_threshold
                   ? "low-income"
                   : "high-income";
      }
    }
    if (auto s = store_dim->AddRollup("store",
                                      Value("M" + std::to_string(id)), "zone",
                                      Value(zone));
        !s.ok()) {
      return Fail(s);
    }
  }

  // 3. The economic fact table: monthly revenue per store.
  piet::Random rng(7);
  FactTable facts = FactTable::Make({"store", "month"}, {"revenue"});
  for (auto id : stores.ValueOrDie()->ids()) {
    for (int month = 1; month <= 3; ++month) {
      (void)facts.Append({Value("M" + std::to_string(id)),
                          Value("2006-0" + std::to_string(month)),
                          Value(rng.UniformDouble(5000, 50000))});
    }
  }

  // 4. Cube + MDX.
  piet::olap::mdx::MdxEngine mdx;
  mdx.AddCube("Economy", Cube(std::move(facts),
                              {{"store", store_dim, "store"}}));

  std::printf("== Revenue by income zone (MDX) ==\n");
  auto by_zone = mdx.ExecuteString(
      "SELECT {[Measures].[revenue]} ON COLUMNS, "
      "{[Store].[zone].Members} ON ROWS FROM [Economy]");
  if (!by_zone.ok()) {
    return Fail(by_zone.status());
  }
  std::printf("%s\n", by_zone.ValueOrDie().ToString().c_str());

  std::printf("== Fact rows by zone (COUNT DISTINCT aggregate) ==\n");
  mdx.SetMeasureAggregate("Economy", "revenue", AggFunction::kCountDistinct);
  auto counts = mdx.ExecuteString(
      "SELECT {[Measures].[revenue]} ON COLUMNS, "
      "{[Store].[zone].Members} ON ROWS FROM [Economy]");
  if (!counts.ok()) {
    return Fail(counts.status());
  }
  std::printf("%s\n", counts.ValueOrDie().ToString().c_str());
  mdx.SetMeasureAggregate("Economy", "revenue", AggFunction::kSum);

  std::printf("== Revenue of a single store (explicit member) ==\n");
  auto sliced = mdx.ExecuteString(
      "SELECT {[Measures].[revenue]} ON COLUMNS, "
      "{[Store].[store].[M0]} ON ROWS FROM [Economy]");
  if (!sliced.ok()) {
    return Fail(sliced.status());
  }
  std::printf("%s", sliced.ValueOrDie().ToString().c_str());
  return 0;
}
