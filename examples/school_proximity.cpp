// School-proximity analysis — the paper's Sec. 4 query 6:
// "Number of cars per hour within a radius of 100 m from schools, in the
// morning", evaluated three ways:
//   1. sample semantics (type 4): only observed points count;
//   2. trajectory semantics (type 7): the LIT catches unsampled drive-bys;
//   3. bead semantics (uncertainty extension): everything the object could
//      have reached under a speed bound — an upper envelope.

#include <cstdio>

#include "core/engine.h"
#include "core/queries.h"
#include "moving/bead.h"
#include "workload/city.h"
#include "workload/trajectories.h"

namespace {

int Fail(const piet::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using piet::core::QueryEngine;
  using piet::core::TimePredicate;

  piet::workload::CityConfig city_config;
  city_config.seed = 99;
  city_config.grid_cols = 6;
  city_config.grid_rows = 6;
  city_config.num_schools = 10;
  auto city_r = piet::workload::GenerateCity(city_config);
  if (!city_r.ok()) {
    return Fail(city_r.status());
  }
  piet::workload::City city = std::move(city_r).ValueOrDie();

  piet::workload::TrajectoryConfig traj;
  traj.seed = 5;
  traj.num_objects = 80;
  traj.duration = 3 * 3600.0;
  traj.sample_period = 120.0;  // Sparse sampling: drive-bys get missed.
  traj.speed = 16.0;
  auto moft_r = piet::workload::GenerateTrajectories(city, traj);
  if (!moft_r.ok()) {
    return Fail(moft_r.status());
  }
  piet::moving::Moft moft_copy = moft_r.ValueOrDie();  // For bead analysis.
  if (auto s = city.db->AddMoft("cars", std::move(moft_r).ValueOrDie());
      !s.ok()) {
    return Fail(s);
  }

  QueryEngine engine(city.db.get());
  const double kRadius = 25.0;

  std::printf("school proximity, radius %.0f, %d schools, sampling every "
              "%.0f s\n\n",
              kRadius, city_config.num_schools, traj.sample_period);

  auto sampled = piet::core::queries::CountNearNodesPerHour(
      engine, "cars", city.schools_layer, kRadius, TimePredicate(),
      /*interpolated=*/false);
  if (!sampled.ok()) {
    return Fail(sampled.status());
  }
  auto interpolated = piet::core::queries::CountNearNodesPerHour(
      engine, "cars", city.schools_layer, kRadius, TimePredicate(),
      /*interpolated=*/true);
  if (!interpolated.ok()) {
    return Fail(interpolated.status());
  }

  // Bead envelope: how many (object, school) encounters are *possible*
  // under a 1.5x speed bound? Approximates the school's disc by a polygon.
  auto schools = city.db->gis().GetLayer(city.schools_layer);
  if (!schools.ok()) {
    return Fail(schools.status());
  }
  int64_t possible_pairs = 0;
  for (auto oid : moft_copy.ObjectIds()) {
    auto sample = piet::moving::TrajectorySample::FromMoft(moft_copy, oid);
    if (!sample.ok()) {
      continue;
    }
    // Speed bound: 1.5x the fleet speed.
    double vmax = traj.speed * 1.5;
    for (auto school_id : schools.ValueOrDie()->ids()) {
      auto pos = schools.ValueOrDie()->GetPoint(school_id);
      if (!pos.ok()) {
        continue;
      }
      piet::geometry::Polygon disc = piet::geometry::MakeRegularPolygon(
          pos.ValueOrDie(), kRadius, 16);
      auto possible = piet::moving::PossiblyPassesThrough(
          sample.ValueOrDie(), vmax, disc);
      if (possible.ok() && possible.ValueOrDie()) {
        ++possible_pairs;
      }
    }
  }

  std::printf("%-40s %10s\n", "semantics", "result");
  std::printf("%-40s %10lld pairs, %.2f per hour\n",
              "sample (type 4, observed points only)",
              static_cast<long long>(sampled.ValueOrDie().tuple_count),
              sampled.ValueOrDie().per_hour);
  std::printf("%-40s %10lld pairs, %.2f per hour\n",
              "trajectory (type 7, LIT interpolation)",
              static_cast<long long>(interpolated.ValueOrDie().tuple_count),
              interpolated.ValueOrDie().per_hour);
  std::printf("%-40s %10lld (object, school) encounters possible\n",
              "bead envelope (vmax = 1.5x speed)",
              static_cast<long long>(possible_pairs));

  std::printf(
      "\ninvariant: sample <= LIT pairs (%s); LIT visits <= bead-possible "
      "encounters by construction\n",
      interpolated.ValueOrDie().tuple_count >=
              sampled.ValueOrDie().tuple_count
          ? "holds"
          : "VIOLATED");
  return 0;
}
