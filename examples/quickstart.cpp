// Quickstart: reproduce the paper's running example end to end.
//
// Builds the Figure 1 / Table 1 instance (six buses over the Antwerp
// neighborhoods), then answers the headline query of Sec. 1.2:
//
//   "Give me the number of buses per hour in the morning in the Antwerp
//    neighborhoods with a monthly income of less than 1500"
//
// with all three evaluation strategies (naive / R-tree / Piet overlay) and
// with Piet-QL. Per Remark 1 the answer is exactly 4/3 = 1.333...

#include <cstdio>

#include "core/engine.h"
#include "core/pietql/evaluator.h"
#include "core/queries.h"
#include "workload/scenario.h"

namespace {

int Fail(const piet::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using piet::core::GeometryPredicate;
  using piet::core::QueryEngine;
  using piet::core::Strategy;
  using piet::core::TimePredicate;

  auto scenario_r = piet::workload::BuildFigure1Scenario();
  if (!scenario_r.ok()) {
    return Fail(scenario_r.status());
  }
  piet::workload::Figure1Scenario scenario = std::move(scenario_r).ValueOrDie();
  piet::core::GeoOlapDatabase& db = *scenario.db;

  // Print Table 1.
  auto moft = db.GetMoft(scenario.moft_name);
  if (!moft.ok()) {
    return Fail(moft.status());
  }
  std::printf("== Table 1: the MOFT FMbus ==\n%s\n",
              moft.ValueOrDie()->ToFactTable().ToString(20).c_str());

  // Precompute the Sec. 5 overlay (exact convex sub-polygonization).
  if (auto s = db.BuildOverlay({scenario.neighborhoods_layer}); !s.ok()) {
    return Fail(s);
  }

  QueryEngine engine(&db);
  GeometryPredicate low_income = GeometryPredicate::AttributeLess(
      "income", scenario.income_threshold);
  TimePredicate morning;
  morning.RollupEquals("timeOfDay", piet::Value("Morning"));

  std::printf("== Remark 1: buses per hour, morning, income < 1500 ==\n");
  for (Strategy strategy :
       {Strategy::kNaive, Strategy::kIndexed, Strategy::kOverlay}) {
    auto result = piet::core::queries::CountPerHourInRegion(
        engine, scenario.moft_name, scenario.neighborhoods_layer, low_income,
        morning, strategy);
    if (!result.ok()) {
      return Fail(result.status());
    }
    const auto& r = result.ValueOrDie();
    std::printf("  strategy=%-8s tuples=%lld hours=%lld per_hour=%.6f\n",
                std::string(StrategyToString(strategy)).c_str(),
                static_cast<long long>(r.tuple_count),
                static_cast<long long>(r.hour_count), r.per_hour);
  }

  // The same query in Piet-QL.
  piet::core::pietql::Evaluator evaluator(&db);
  auto ql = evaluator.EvaluateString(
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE ATTR(layer.Ln, income) < 1500; "
      "| SELECT RATE PER HOUR FROM FMbus "
      "WHERE INSIDE RESULT AND TIME.timeOfDay = 'Morning'");
  if (!ql.ok()) {
    return Fail(ql.status());
  }
  std::printf("== Piet-QL ==\n%s\n", ql.ValueOrDie().ToString().c_str());

  std::printf("expected per_hour = 4/3 = 1.333333\n");
  return 0;
}
