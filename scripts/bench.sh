#!/usr/bin/env bash
# Runs the E2/E3/E10/E11/E12 benchmark suites (Release build) and writes
# JSON baselines at the repo root: BENCH_overlay.json,
# BENCH_query_types.json, BENCH_moft_scan.json, BENCH_obs_overhead.json,
# and BENCH_pietql_rewrite.json (raw vs rewritten latency per query
# type). The benches sweep a `threads` axis (1 vs 4 via Engine/Database
# num_threads), so the baselines carry the serial-vs-parallel
# comparison; counters record problem size
# (polygons, samples, points) alongside.
#
# Each run also executes with PIET_OBS=1 and writes the merged metrics
# registry (work counters: rows scanned, overlay cells visited, cache
# hits/misses) to BENCH_<name>_metrics.json next to the timing baseline, so
# a perf regression can be split into "more work" vs "slower work".
#
# Usage: scripts/bench.sh [extra benchmark args...]
#   BUILD_DIR=...  build directory (default build-bench, Release)
#   FILTER=regex   forwarded as --benchmark_filter
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"
JOBS="${JOBS:-$(nproc)}"

echo "== configure (${BUILD_DIR}, Release) =="
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

echo "== build benches =="
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target bench_overlay bench_query_types bench_moft_scan \
  bench_obs_overhead bench_pietql_rewrite

extra_args=()
if [[ -n "${FILTER:-}" ]]; then
  extra_args+=("--benchmark_filter=${FILTER}")
fi

# --benchmark_out keeps the JSON clean: the shape reports print to stdout,
# the machine-readable baseline goes to the file. PIET_OBS_OUT makes the
# bench dump the metrics snapshot on exit (see bench/obs_dump.h).
run_bench() {
  local name="$1"
  shift
  echo "== ${name} -> BENCH_${name#bench_}.json (+ metrics) =="
  PIET_OBS=1 PIET_OBS_OUT="BENCH_${name#bench_}_metrics.json" \
    "${BUILD_DIR}/bench/${name}" \
    --benchmark_out="BENCH_${name#bench_}.json" \
    --benchmark_out_format=json \
    --benchmark_format=console \
    "$@"
}

run_bench bench_overlay "${extra_args[@]}" "$@"
run_bench bench_query_types "${extra_args[@]}" "$@"
run_bench bench_moft_scan "${extra_args[@]}" "$@"
run_bench bench_obs_overhead "${extra_args[@]}" "$@"
run_bench bench_pietql_rewrite "${extra_args[@]}" "$@"

echo "== obs disabled-path overhead self-check =="
PIET_OBS_OVERHEAD_CHECK=1 "${BUILD_DIR}/bench/bench_obs_overhead"

echo "== baselines written: BENCH_overlay.json BENCH_query_types.json" \
     "BENCH_moft_scan.json BENCH_obs_overhead.json" \
     "BENCH_pietql_rewrite.json (+ *_metrics.json) =="
