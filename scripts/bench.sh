#!/usr/bin/env bash
# Runs the E2/E3/E10 benchmark suites (Release build) and writes JSON
# baselines at the repo root: BENCH_overlay.json, BENCH_query_types.json,
# and BENCH_moft_scan.json (columnar scan throughput in rows/sec). The
# benches sweep a `threads` axis (1 vs 4 via Engine/Database num_threads),
# so the baselines carry the serial-vs-parallel comparison; counters record
# problem size (polygons, samples, points) alongside.
#
# Usage: scripts/bench.sh [extra benchmark args...]
#   BUILD_DIR=...  build directory (default build-bench, Release)
#   FILTER=regex   forwarded as --benchmark_filter
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"
JOBS="${JOBS:-$(nproc)}"

echo "== configure (${BUILD_DIR}, Release) =="
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

echo "== build benches =="
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target bench_overlay bench_query_types bench_moft_scan

extra_args=()
if [[ -n "${FILTER:-}" ]]; then
  extra_args+=("--benchmark_filter=${FILTER}")
fi

# --benchmark_out keeps the JSON clean: the shape reports print to stdout,
# the machine-readable baseline goes to the file.
echo "== bench_overlay -> BENCH_overlay.json =="
"${BUILD_DIR}/bench/bench_overlay" \
  --benchmark_out=BENCH_overlay.json \
  --benchmark_out_format=json \
  --benchmark_format=console \
  "${extra_args[@]}" "$@"

echo "== bench_query_types -> BENCH_query_types.json =="
"${BUILD_DIR}/bench/bench_query_types" \
  --benchmark_out=BENCH_query_types.json \
  --benchmark_out_format=json \
  --benchmark_format=console \
  "${extra_args[@]}" "$@"

echo "== bench_moft_scan -> BENCH_moft_scan.json =="
"${BUILD_DIR}/bench/bench_moft_scan" \
  --benchmark_out=BENCH_moft_scan.json \
  --benchmark_out_format=json \
  --benchmark_format=console \
  "${extra_args[@]}" "$@"

echo "== baselines written: BENCH_overlay.json BENCH_query_types.json" \
     "BENCH_moft_scan.json =="
