#!/usr/bin/env bash
# Local gate mirroring CI: warnings-as-errors build, full test suite, and
# (when the tool is installed) clang-tidy over src/, tests/ and bench/.
# Exits non-zero on the first failure.
#
#   scripts/check.sh          full gate (build + ctest + clang-tidy)
#   scripts/check.sh --lint   build pietql_lint and run it over the
#                             seeded-defect corpus in tests/lint_corpus/
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-check}"
JOBS="${JOBS:-$(nproc)}"
MODE="${1:-all}"

echo "== configure (${BUILD_DIR}, -Werror) =="
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DPIET_WERROR=ON >/dev/null

if [[ "${MODE}" == "--lint" ]]; then
  echo "== build pietql_lint =="
  cmake --build "${BUILD_DIR}" --target pietql_lint -j "${JOBS}"
  echo "== lint corpus (tests/lint_corpus/) =="
  "${BUILD_DIR}/examples/pietql_lint" tests/lint_corpus/*.lint
  echo "== lint figure-1 scenario (must be clean) =="
  "${BUILD_DIR}/examples/pietql_lint" --figure1
  echo "== rewrite corpus: --fix round-trips + expect-rewrite =="
  "${BUILD_DIR}/examples/pietql_lint" --fix tests/lint_corpus/*.lint
  echo "== lint checks passed =="
  exit 0
fi

echo "== build =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== test =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# clang-tidy is optional: the config in .clang-tidy is authoritative, but the
# toolchain image may only ship GCC. CI runs it in a dedicated job.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  mapfile -t sources < <(find src tests bench -name '*.cc' -o -name '*.cpp' | sort)
  clang-tidy -p "${BUILD_DIR}" --quiet "${sources[@]}"
else
  echo "== clang-tidy: not installed, skipping (CI covers it) =="
fi

echo "== all checks passed =="
