#!/usr/bin/env bash
# Local gate mirroring CI: warnings-as-errors build, full test suite, and
# (when the tool is installed) clang-tidy over src/. Exits non-zero on the
# first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-check}"
JOBS="${JOBS:-$(nproc)}"

echo "== configure (${BUILD_DIR}, -Werror) =="
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DPIET_WERROR=ON >/dev/null

echo "== build =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== test =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# clang-tidy is optional: the config in .clang-tidy is authoritative, but the
# toolchain image may only ship GCC. CI runs it in a dedicated job.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  mapfile -t sources < <(find src -name '*.cc' | sort)
  clang-tidy -p "${BUILD_DIR}" --quiet "${sources[@]}"
else
  echo "== clang-tidy: not installed, skipping (CI covers it) =="
fi

echo "== all checks passed =="
