#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "index/agg_rtree.h"
#include "index/grid.h"
#include "index/rtree.h"

namespace piet::index {
namespace {

using geometry::BoundingBox;
using geometry::Point;
using temporal::Interval;
using temporal::TimePoint;

std::vector<RTree::Entry> RandomEntries(Random* rng, size_t n) {
  std::vector<RTree::Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double x = rng->UniformDouble(0, 100);
    double y = rng->UniformDouble(0, 100);
    double w = rng->UniformDouble(0, 5);
    double h = rng->UniformDouble(0, 5);
    entries.push_back({BoundingBox(x, y, x + w, y + h),
                       static_cast<RTree::Id>(i)});
  }
  return entries;
}

std::set<RTree::Id> BruteForce(const std::vector<RTree::Entry>& entries,
                               const BoundingBox& q) {
  std::set<RTree::Id> out;
  for (const auto& e : entries) {
    if (e.box.Intersects(q)) {
      out.insert(e.id);
    }
  }
  return out;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0u);
  EXPECT_TRUE(tree.Search(BoundingBox(0, 0, 1, 1)).empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, SingleInsert) {
  RTree tree;
  tree.Insert(BoundingBox(1, 1, 2, 2), 7);
  EXPECT_EQ(tree.size(), 1u);
  auto hits = tree.Search(BoundingBox(0, 0, 3, 3));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7);
  EXPECT_TRUE(tree.Search(BoundingBox(5, 5, 6, 6)).empty());
}

TEST(RTreeTest, SearchPointHitsBoundary) {
  RTree tree;
  tree.Insert(BoundingBox(0, 0, 2, 2), 1);
  EXPECT_EQ(tree.SearchPoint({2, 2}).size(), 1u);
  EXPECT_EQ(tree.SearchPoint({2.1, 2}).size(), 0u);
}

class RTreeProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeProperty, InsertMatchesBruteForce) {
  Random rng(GetParam());
  auto entries = RandomEntries(&rng, GetParam() * 37 + 5);
  RTree tree(8);
  for (const auto& e : entries) {
    tree.Insert(e.box, e.id);
  }
  EXPECT_EQ(tree.size(), entries.size());
  EXPECT_TRUE(tree.CheckInvariants());
  for (int q = 0; q < 50; ++q) {
    double x = rng.UniformDouble(-5, 100);
    double y = rng.UniformDouble(-5, 100);
    BoundingBox query(x, y, x + rng.UniformDouble(0, 20),
                      y + rng.UniformDouble(0, 20));
    auto hits = tree.Search(query);
    std::set<RTree::Id> got(hits.begin(), hits.end());
    EXPECT_EQ(got.size(), hits.size()) << "duplicate results";
    EXPECT_EQ(got, BruteForce(entries, query));
  }
}

TEST_P(RTreeProperty, BulkLoadMatchesBruteForce) {
  Random rng(GetParam() + 100);
  auto entries = RandomEntries(&rng, GetParam() * 53 + 3);
  RTree tree = RTree::BulkLoad(entries, 8);
  EXPECT_EQ(tree.size(), entries.size());
  EXPECT_TRUE(tree.CheckInvariants());
  for (int q = 0; q < 50; ++q) {
    double x = rng.UniformDouble(-5, 100);
    double y = rng.UniformDouble(-5, 100);
    BoundingBox query(x, y, x + rng.UniformDouble(0, 30),
                      y + rng.UniformDouble(0, 30));
    auto hits = tree.Search(query);
    std::set<RTree::Id> got(hits.begin(), hits.end());
    EXPECT_EQ(got, BruteForce(entries, query));
  }
}

TEST_P(RTreeProperty, MixedBulkAndInsert) {
  Random rng(GetParam() + 200);
  auto entries = RandomEntries(&rng, 64);
  RTree tree = RTree::BulkLoad(
      std::vector<RTree::Entry>(entries.begin(), entries.begin() + 32), 6);
  for (size_t i = 32; i < entries.size(); ++i) {
    tree.Insert(entries[i].box, entries[i].id);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  BoundingBox all(-10, -10, 200, 200);
  auto hits = tree.Search(all);
  EXPECT_EQ(hits.size(), entries.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeProperty, ::testing::Values(1, 3, 8, 20));

TEST(RTreeTest, VisitEarlyStop) {
  RTree tree;
  for (int i = 0; i < 100; ++i) {
    tree.Insert(BoundingBox(i, 0, i + 0.5, 1), i);
  }
  size_t visited = 0;
  tree.Visit(BoundingBox(-1, -1, 200, 2), [&](const RTree::Entry&) {
    ++visited;
    return visited < 5;
  });
  EXPECT_EQ(visited, 5u);
}

TEST(RTreeTest, NearestBasic) {
  RTree tree;
  for (int i = 0; i < 20; ++i) {
    double x = i * 10.0;
    tree.Insert(BoundingBox(x, 0, x, 0), i);
  }
  auto nearest = tree.Nearest({42, 0}, 3);
  ASSERT_EQ(nearest.size(), 3u);
  EXPECT_EQ(nearest[0].id, 4);  // x=40.
  EXPECT_EQ(nearest[1].id, 5);  // x=50.
  EXPECT_EQ(nearest[2].id, 3);  // x=30.
}

TEST(RTreeTest, NearestEdgeCases) {
  RTree empty;
  EXPECT_TRUE(empty.Nearest({0, 0}, 5).empty());
  RTree one;
  one.Insert(BoundingBox(1, 1, 1, 1), 7);
  EXPECT_TRUE(one.Nearest({0, 0}, 0).empty());
  auto all = one.Nearest({0, 0}, 10);
  ASSERT_EQ(all.size(), 1u);  // k larger than size.
  EXPECT_EQ(all[0].id, 7);
}

TEST(RTreeTest, NearestMatchesBruteForce) {
  Random rng(17);
  auto entries = RandomEntries(&rng, 200);
  // Shrink to points for exact kNN semantics.
  for (auto& e : entries) {
    e.box = BoundingBox(e.box.min_x, e.box.min_y, e.box.min_x, e.box.min_y);
  }
  RTree tree = RTree::BulkLoad(entries, 8);
  for (int q = 0; q < 30; ++q) {
    Point p(rng.UniformDouble(-10, 110), rng.UniformDouble(-10, 110));
    auto got = tree.Nearest(p, 5);
    ASSERT_EQ(got.size(), 5u);
    std::vector<double> expected;
    for (const auto& e : entries) {
      expected.push_back(e.box.SquaredDistanceTo(p));
    }
    std::sort(expected.begin(), expected.end());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].box.SquaredDistanceTo(p), expected[i], 1e-9)
          << "rank " << i;
    }
  }
}

TEST(GridIndexTest, PointQueries) {
  GridIndex grid(BoundingBox(0, 0, 100, 100), 10);
  grid.Insert(BoundingBox(10, 10, 20, 20), 1);
  grid.Insert(BoundingBox(15, 15, 30, 30), 2);
  grid.Insert(BoundingBox(80, 80, 90, 90), 3);

  auto hits = grid.SearchPoint({18, 18});
  std::set<GridIndex::Id> got(hits.begin(), hits.end());
  EXPECT_EQ(got, (std::set<GridIndex::Id>{1, 2}));
  EXPECT_TRUE(grid.SearchPoint({50, 50}).empty());
  EXPECT_EQ(grid.SearchPoint({85, 85}).size(), 1u);
}

TEST(GridIndexTest, PointsOutsideExtentClamp) {
  GridIndex grid(BoundingBox(0, 0, 10, 10), 4);
  grid.Insert(BoundingBox(9, 9, 10, 10), 1);
  // Query outside the extent clamps to the border cell and still applies
  // the exact box test.
  EXPECT_TRUE(grid.SearchPoint({11, 11}).empty());
  EXPECT_EQ(grid.SearchPoint({10, 10}).size(), 1u);
}

TEST(GridIndexTest, BoxSearchDeduplicates) {
  GridIndex grid(BoundingBox(0, 0, 100, 100), 10);
  grid.Insert(BoundingBox(0, 0, 100, 100), 42);  // Spans every cell.
  auto hits = grid.Search(BoundingBox(20, 20, 80, 80));
  EXPECT_EQ(hits.size(), 1u);
}

TEST(AggregateRTreeTest, SingleRegionCounts) {
  AggregateRTree tree({{7, BoundingBox(0, 0, 10, 10)}}, /*bucket_width=*/60.0);
  ASSERT_TRUE(tree.AddObservation(7, TimePoint(30)).ok());
  ASSERT_TRUE(tree.AddObservation(7, TimePoint(90)).ok());
  ASSERT_TRUE(tree.AddObservation(7, TimePoint(150), 2.0).ok());

  // Bucket-aligned queries are exact.
  EXPECT_DOUBLE_EQ(
      tree.Count(BoundingBox(0, 0, 10, 10), Interval(TimePoint(0), TimePoint(60))),
      1.0);
  EXPECT_DOUBLE_EQ(
      tree.Count(BoundingBox(0, 0, 10, 10), Interval(TimePoint(0), TimePoint(120))),
      2.0);
  EXPECT_DOUBLE_EQ(
      tree.Count(BoundingBox(0, 0, 10, 10), Interval(TimePoint(0), TimePoint(180))),
      4.0);
  EXPECT_DOUBLE_EQ(
      tree.CountRegion(7, Interval(TimePoint(60), TimePoint(120))).ValueOrDie(),
      1.0);
}

TEST(AggregateRTreeTest, UnknownRegionRejected) {
  AggregateRTree tree({{1, BoundingBox(0, 0, 1, 1)}}, 60.0);
  EXPECT_TRUE(tree.AddObservation(99, TimePoint(0)).IsNotFound());
  EXPECT_TRUE(
      tree.CountRegion(99, Interval(TimePoint(0), TimePoint(1))).status().IsNotFound());
}

TEST(AggregateRTreeTest, SpatialFiltering) {
  std::vector<std::pair<AggregateRTree::RegionId, BoundingBox>> regions;
  for (int i = 0; i < 10; ++i) {
    regions.push_back({i, BoundingBox(i * 10, 0, i * 10 + 5, 5)});
  }
  AggregateRTree tree(regions, 10.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree.AddObservation(i, TimePoint(5), 1.0).ok());
  }
  // Window covering regions 0..4 only.
  EXPECT_DOUBLE_EQ(
      tree.Count(BoundingBox(0, 0, 46, 10), Interval(TimePoint(0), TimePoint(10))),
      5.0);
  EXPECT_DOUBLE_EQ(
      tree.Count(BoundingBox(-10, -10, 200, 200),
                 Interval(TimePoint(0), TimePoint(10))),
      10.0);
}

TEST(AggregateRTreeTest, MatchesBruteForceOnRandomWorkload) {
  Random rng(3);
  std::vector<std::pair<AggregateRTree::RegionId, BoundingBox>> regions;
  for (int i = 0; i < 50; ++i) {
    double x = rng.UniformDouble(0, 90);
    double y = rng.UniformDouble(0, 90);
    regions.push_back({i, BoundingBox(x, y, x + 10, y + 10)});
  }
  AggregateRTree tree(regions, 100.0);
  struct Obs {
    int region;
    double t;
  };
  std::vector<Obs> observations;
  for (int i = 0; i < 2000; ++i) {
    Obs o{static_cast<int>(rng.Uniform(50)), rng.UniformDouble(0, 10000)};
    observations.push_back(o);
    ASSERT_TRUE(tree.AddObservation(o.region, TimePoint(o.t)).ok());
  }
  for (int q = 0; q < 30; ++q) {
    double x = rng.UniformDouble(0, 80);
    double y = rng.UniformDouble(0, 80);
    BoundingBox window(x, y, x + rng.UniformDouble(10, 40),
                       y + rng.UniformDouble(10, 40));
    // Bucket-aligned interval for exactness.
    double t0 = 100.0 * static_cast<double>(rng.UniformInt(0, 50));
    double t1 = t0 + 100.0 * static_cast<double>(rng.UniformInt(1, 40));
    double expected = 0.0;
    for (const Obs& o : observations) {
      if (o.t >= t0 && o.t < t1 && regions[o.region].second.Intersects(window)) {
        expected += 1.0;
      }
    }
    EXPECT_DOUBLE_EQ(
        tree.Count(window, Interval(TimePoint(t0), TimePoint(t1))), expected)
        << "window " << window.ToString() << " t=[" << t0 << "," << t1 << ")";
  }
}

TEST(AggregateRTreeTest, VisitsFewerNodesThanRegionsOnBigWindows) {
  std::vector<std::pair<AggregateRTree::RegionId, BoundingBox>> regions;
  for (int i = 0; i < 1024; ++i) {
    double x = (i % 32) * 10.0;
    double y = (i / 32) * 10.0;
    regions.push_back({i, BoundingBox(x, y, x + 10, y + 10)});
  }
  AggregateRTree tree(regions, 60.0);
  for (int i = 0; i < 1024; ++i) {
    ASSERT_TRUE(tree.AddObservation(i, TimePoint(30)).ok());
  }
  double total = tree.Count(BoundingBox(-10, -10, 1000, 1000),
                            Interval(TimePoint(0), TimePoint(60)));
  EXPECT_DOUBLE_EQ(total, 1024.0);
  // The pre-aggregated fast path answers from the root.
  EXPECT_LT(tree.last_nodes_visited(), 16u);
}

}  // namespace
}  // namespace piet::index
