#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/lint/corpus.h"
#include "analysis/lint/query_lint.h"
#include "analysis/lint/schema_lint.h"
#include "analysis/lint/time_domain.h"
#include "analysis/query_check.h"
#include "core/pietql/evaluator.h"
#include "core/pietql/parser.h"
#include "temporal/interval.h"
#include "temporal/time_point.h"
#include "workload/scenario.h"

namespace piet::analysis::lint {
namespace {

using temporal::Interval;
using temporal::TimePoint;

constexpr double kHour = 3600.0;
constexpr double kDay = 24.0 * kHour;

// --- TimeAbstract domain ---

TEST(TimeDomainTest, HourOutOfRangeIsDead) {
  TimeAbstract t;
  EXPECT_EQ(t.MeetLevelEquals("hour", Value(int64_t{25})), TimeFold::kDead);
  EXPECT_TRUE(t.IsBottom());
}

TEST(TimeDomainTest, AllLevelIsAlways) {
  TimeAbstract t;
  EXPECT_EQ(t.MeetLevelEquals("all", Value(std::string("all"))),
            TimeFold::kAlways);
  EXPECT_FALSE(t.IsBottom());
}

TEST(TimeDomainTest, DisjointHourMasksMeetToBottom) {
  TimeAbstract t;
  // Morning is [6, 12); hour 3 lies in Night.
  EXPECT_EQ(t.MeetLevelEquals("timeOfDay", Value(std::string("Morning"))),
            TimeFold::kFolded);
  EXPECT_FALSE(t.IsBottom());
  EXPECT_EQ(t.MeetLevelEquals("hour", Value(int64_t{3})), TimeFold::kFolded);
  EXPECT_TRUE(t.IsBottom());
}

TEST(TimeDomainTest, WindowAgainstWeekPeriodicMask) {
  // The epoch (2000-01-01) is a Saturday, so the first day never overlaps
  // a Wednesday...
  TimeAbstract wed;
  wed.MeetWindow(Interval(TimePoint(0.0), TimePoint(kDay)));
  EXPECT_EQ(wed.MeetLevelEquals("dayOfWeek", Value(std::string("Wednesday"))),
            TimeFold::kFolded);
  EXPECT_TRUE(wed.IsBottom());

  // ...but does overlap Saturday.
  TimeAbstract sat;
  sat.MeetWindow(Interval(TimePoint(0.0), TimePoint(kDay)));
  EXPECT_EQ(sat.MeetLevelEquals("dayOfWeek", Value(std::string("Saturday"))),
            TimeFold::kFolded);
  EXPECT_FALSE(sat.IsBottom());
}

TEST(TimeDomainTest, LongWindowAlwaysFeasibleAgainstNonEmptyMasks) {
  // Day-of-week and hour masks are week-periodic: any window of at least
  // eight days meets every surviving mask bit.
  TimeAbstract t;
  t.MeetWindow(Interval(TimePoint(0.0), TimePoint(9.0 * kDay)));
  t.MeetLevelEquals("dayOfWeek", Value(std::string("Wednesday")));
  t.MeetLevelEquals("timeOfDay", Value(std::string("Night")));
  EXPECT_FALSE(t.IsBottom());
}

TEST(TimeDomainTest, DisjointWindowsMeetToBottom) {
  TimeAbstract t;
  t.MeetWindow(Interval(TimePoint(0.0), TimePoint(100.0)));
  EXPECT_FALSE(t.IsBottom());
  t.MeetWindow(Interval(TimePoint(200.0), TimePoint(300.0)));
  EXPECT_TRUE(t.IsBottom());
}

TEST(TimeDomainTest, LevelEqualsWindowFoldsAbsoluteLevels) {
  auto bucket = TimeAbstract::LevelEqualsWindow("hourBucket",
                                               Value(int64_t{3600}));
  ASSERT_TRUE(bucket.has_value());
  EXPECT_DOUBLE_EQ(bucket->begin.seconds, 3600.0);
  EXPECT_DOUBLE_EQ(bucket->end.seconds, 7200.0);

  // Non-canonical bucket start: no window (the clause is dead, which
  // MeetLevelEquals reports separately).
  EXPECT_FALSE(
      TimeAbstract::LevelEqualsWindow("hourBucket", Value(int64_t{100}))
          .has_value());
  // Periodic levels never fold to a window.
  EXPECT_FALSE(TimeAbstract::LevelEqualsWindow("hour", Value(int64_t{9}))
                   .has_value());
}

// --- Check-ID catalog ---

TEST(LintCatalogTest, CatalogIsSortedAndUnique) {
  std::vector<std::string> ids = AllLintCheckIds();
  EXPECT_GE(ids.size(), 17u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  for (const std::string& id : ids) {
    EXPECT_EQ(id.rfind("lint-", 0), 0u) << id;
  }
}

// --- Schema lattice verifier on raw models ---

TEST(SchemaLintTest, NonFunctionalRollupFires) {
  SchemaModel model;
  SchemaModel::Graph graph;
  graph.layer = "Lr";
  graph.edges = {{gis::GeometryKind::kPoint, gis::GeometryKind::kLine},
                 {gis::GeometryKind::kLine, gis::GeometryKind::kPolyline},
                 {gis::GeometryKind::kPolyline, gis::GeometryKind::kAll}};
  model.graphs.push_back(graph);
  SchemaModel::Rollup rollup;
  rollup.layer = "Lr";
  rollup.fine = gis::GeometryKind::kLine;
  rollup.coarse = gis::GeometryKind::kPolyline;
  rollup.pairs = {{0, 0}, {0, 1}};
  model.rollups.push_back(rollup);

  DiagnosticList diags = LintSchema(model);
  EXPECT_TRUE(diags.Has("lint-rollup-functional")) << diags.ToString();
  EXPECT_TRUE(diags.HasErrors());
}

TEST(SchemaLintTest, CleanFigure1InstanceLintsClean) {
  auto scenario = workload::BuildFigure1Scenario();
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  SchemaModel model = SchemaModel::FromInstance(scenario.ValueOrDie().db->gis());
  DiagnosticList diags = LintSchema(model);
  EXPECT_TRUE(diags.empty()) << diags.ToString();
}

// --- Seeded-defect corpus sweep ---

std::vector<std::string> CorpusPaths() {
  std::vector<std::string> paths;
  const std::filesystem::path dir =
      std::filesystem::path(PIET_SOURCE_DIR) / "tests" / "lint_corpus";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".lint") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(LintCorpusTest, EveryCaseMatchesItsExpectations) {
  std::vector<std::string> paths = CorpusPaths();
  ASSERT_GE(paths.size(), 15u);
  for (const std::string& path : paths) {
    auto parsed = ParseCorpusFile(path);
    ASSERT_TRUE(parsed.ok()) << path << ": " << parsed.status().ToString();
    const CorpusCase& c = parsed.ValueOrDie();
    DiagnosticList found = LintCase(c);
    EXPECT_TRUE(CheckExpectations(c, found).ok())
        << path << ": " << CheckExpectations(c, found).ToString() << "\n"
        << found.ToString();
  }
}

TEST(LintCorpusTest, EveryExpectedIdIsInTheCatalog) {
  std::vector<std::string> catalog = AllLintCheckIds();
  for (const std::string& path : CorpusPaths()) {
    auto parsed = ParseCorpusFile(path);
    ASSERT_TRUE(parsed.ok()) << path << ": " << parsed.status().ToString();
    for (const std::string& id : parsed.ValueOrDie().expected_ids) {
      EXPECT_TRUE(std::binary_search(catalog.begin(), catalog.end(), id))
          << path << " expects unknown check ID " << id;
    }
  }
}

// --- Evaluator wiring ---

class LintEvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = workload::BuildFigure1Scenario();
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = std::move(scenario).ValueOrDie();
  }

  workload::Figure1Scenario scenario_;
};

TEST_F(LintEvaluatorTest, WarnModeSurfacesLintFindings) {
  core::pietql::Evaluator warn(scenario_.db.get(), CheckMode::kWarn);
  auto result = warn.EvaluateString(
      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM FMbus "
      "WHERE T BETWEEN 200 AND 100;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const DiagnosticList& diags = result.ValueOrDie().diagnostics;
  ASSERT_TRUE(diags.Has("lint-dead-clause")) << diags.ToString();
  // The finding carries a machine-applicable swap fix-it.
  bool has_fixit = false;
  for (const Diagnostic& d : diags) {
    if (d.check_id == "lint-dead-clause") {
      has_fixit = d.fixit == "T BETWEEN 100 AND 200";
    }
  }
  EXPECT_TRUE(has_fixit) << diags.ToString();
}

TEST_F(LintEvaluatorTest, StrictModeStillAcceptsLintWarnings) {
  // Query lint findings are warnings/notes by design: a dead clause
  // evaluates to an empty result, which kStrict must keep accepting.
  core::pietql::Evaluator strict(scenario_.db.get(), CheckMode::kStrict);
  auto result = strict.EvaluateString(
      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM FMbus "
      "WHERE T BETWEEN 200 AND 100;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.ValueOrDie().diagnostics.Has("lint-dead-clause"));
  EXPECT_FALSE(result.ValueOrDie().diagnostics.HasErrors());
}

TEST_F(LintEvaluatorTest, OffModeRunsNoLint) {
  core::pietql::Evaluator off(scenario_.db.get(), CheckMode::kOff);
  auto result = off.EvaluateString(
      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM FMbus "
      "WHERE T BETWEEN 200 AND 100;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.ValueOrDie().diagnostics.empty());
}

TEST_F(LintEvaluatorTest, FastpathNoteCarriesRewriteFixit) {
  QueryContext context;
  context.gis = &scenario_.db->gis();
  context.moft_names = scenario_.db->MoftNames();
  auto query = core::pietql::Parse(
      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM FMbus "
      "WHERE T BETWEEN 0 AND 7200 AND TIME.hourBucket = 3600;");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  DiagnosticList diags = LintQuery(context, query.ValueOrDie());
  ASSERT_TRUE(diags.Has("lint-fastpath-defeated")) << diags.ToString();
  bool found = false;
  for (const Diagnostic& d : diags) {
    if (d.check_id == "lint-fastpath-defeated") {
      found = true;
      EXPECT_EQ(d.fixit,
                "rewrite TIME.hourBucket = 3600 as T BETWEEN 3600 AND 7200");
      EXPECT_EQ(d.severity, Severity::kNote);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace piet::analysis::lint
