#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/timeseries.h"
#include "workload/scenario.h"

namespace piet::core {
namespace {

using olap::FactTable;

FactTable EventsAt(std::vector<std::pair<int64_t, double>> rows) {
  FactTable t = FactTable::Make({"Oid", "t"}, {});
  for (const auto& [oid, time] : rows) {
    EXPECT_TRUE(t.Append({Value(oid), Value(time)}).ok());
  }
  return t;
}

TEST(EventCountSeriesTest, BucketsAndGaps) {
  FactTable events = EventsAt({{1, 5.0}, {1, 15.0}, {2, 18.0}, {1, 45.0}});
  auto series = EventCountSeries(events, "t", 10.0).ValueOrDie();
  // Buckets 0,1,2,3,4 -> counts 1,2,0,0,1 (gap-free).
  ASSERT_EQ(series.num_rows(), 5u);
  EXPECT_EQ(series.row(0)[1], Value(int64_t{1}));
  EXPECT_EQ(series.row(1)[1], Value(int64_t{2}));
  EXPECT_EQ(series.row(2)[1], Value(int64_t{0}));
  EXPECT_EQ(series.row(3)[1], Value(int64_t{0}));
  EXPECT_EQ(series.row(4)[1], Value(int64_t{1}));
  EXPECT_EQ(series.row(0)[0], Value(0.0));
  EXPECT_EQ(series.row(4)[0], Value(40.0));
}

TEST(EventCountSeriesTest, DistinctColumn) {
  FactTable events = EventsAt({{1, 5.0}, {1, 6.0}, {2, 7.0}});
  auto raw = EventCountSeries(events, "t", 10.0).ValueOrDie();
  EXPECT_EQ(raw.row(0)[1], Value(int64_t{3}));
  auto distinct = EventCountSeries(events, "t", 10.0, "Oid").ValueOrDie();
  EXPECT_EQ(distinct.row(0)[1], Value(int64_t{2}));
}

TEST(EventCountSeriesTest, Validation) {
  FactTable events = EventsAt({});
  EXPECT_TRUE(
      EventCountSeries(events, "t", 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      EventCountSeries(events, "ghost", 10.0).status().IsNotFound());
  EXPECT_EQ(EventCountSeries(events, "t", 10.0).ValueOrDie().num_rows(), 0u);
}

FactTable Intervals(std::vector<std::pair<double, double>> rows) {
  FactTable t = FactTable::Make({"Oid", "enter", "leave"}, {});
  int64_t oid = 1;
  for (const auto& [enter, leave] : rows) {
    EXPECT_TRUE(t.Append({Value(oid++), Value(enter), Value(leave)}).ok());
  }
  return t;
}

TEST(OccupancySeriesTest, PeaksPerBucket) {
  // Two overlapping stays in bucket 0, one lone stay in bucket 2.
  FactTable intervals = Intervals({{1, 8}, {4, 9}, {25, 28}});
  auto series =
      OccupancySeries(intervals, "enter", "leave", 10.0).ValueOrDie();
  ASSERT_EQ(series.num_rows(), 3u);
  EXPECT_EQ(series.row(0)[1], Value(int64_t{2}));  // Overlap 4-8.
  EXPECT_EQ(series.row(1)[1], Value(int64_t{0}));  // Empty bucket.
  EXPECT_EQ(series.row(2)[1], Value(int64_t{1}));
}

TEST(OccupancySeriesTest, CarriedOccupancyAcrossBuckets) {
  // One long stay spanning buckets 0-2: every bucket sees occupancy 1.
  FactTable intervals = Intervals({{5, 25}});
  auto series =
      OccupancySeries(intervals, "enter", "leave", 10.0).ValueOrDie();
  ASSERT_EQ(series.num_rows(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(series.row(i)[1], Value(int64_t{1})) << i;
  }
}

TEST(OccupancySeriesTest, ClosedIntervalTouch) {
  // Leave at 10 and enter at 10: both present at the shared instant.
  FactTable intervals = Intervals({{0, 10}, {10, 20}});
  auto peak = FindPeakOccupancy(intervals, "enter", "leave").ValueOrDie();
  EXPECT_EQ(peak.peak, 2);
  EXPECT_DOUBLE_EQ(peak.at_seconds, 10.0);
}

TEST(OccupancySeriesTest, Validation) {
  FactTable bad = Intervals({{10, 5}});
  EXPECT_TRUE(OccupancySeries(bad, "enter", "leave", 10.0)
                  .status()
                  .IsInvalidArgument());
  FactTable empty = Intervals({});
  EXPECT_EQ(OccupancySeries(empty, "enter", "leave", 10.0)
                .ValueOrDie()
                .num_rows(),
            0u);
  EXPECT_EQ(FindPeakOccupancy(empty, "enter", "leave").ValueOrDie().peak, 0);
}

TEST(OccupancySeriesTest, EndToEndWithTrajectoryRegion) {
  // Figure 1: occupancy of the low-income region over the bus day.
  auto scenario = workload::BuildFigure1Scenario().ValueOrDie();
  QueryEngine engine(scenario.db.get());
  auto intervals =
      engine.TrajectoryRegion(
                scenario.moft_name, scenario.neighborhoods_layer,
                GeometryPredicate::AttributeLess("income", 1500.0),
                TimePredicate())
          .ValueOrDie();
  auto peak = FindPeakOccupancy(intervals, "enter", "leave").ValueOrDie();
  // O1 occupies N1 the whole time; O2 and O6 overlap it around 07:00.
  EXPECT_GE(peak.peak, 2);
  auto series =
      OccupancySeries(intervals, "enter", "leave", 3600.0).ValueOrDie();
  EXPECT_GE(series.num_rows(), 3u);
}

TEST(MoftWindowTest, SamplesBetween) {
  auto scenario = workload::BuildFigure1Scenario().ValueOrDie();
  auto moft = scenario.db->GetMoft("FMbus").ValueOrDie();
  auto span = moft->TimeSpan().ValueOrDie();
  // Whole window: everything.
  EXPECT_EQ(moft->SamplesBetween(span.begin, span.end).size(), 12u);
  // Window covering only the first sample instant (t=1 -> 05:00).
  auto first = moft->SamplesBetween(span.begin, span.begin);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].oid, 1);
  // Empty window before everything.
  EXPECT_TRUE(moft->SamplesBetween(temporal::TimePoint(0),
                                   temporal::TimePoint(1))
                  .empty());
}

TEST(BeadEngineTest, ObjectsPossiblyWithinSupersetsLit) {
  auto scenario = workload::BuildFigure1Scenario().ValueOrDie();
  QueryEngine engine(scenario.db.get());
  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);

  // LIT passes-through objects: O1, O2, O6.
  auto intervals =
      engine.TrajectoryRegion(scenario.moft_name,
                              scenario.neighborhoods_layer, low,
                              TimePredicate())
          .ValueOrDie();
  std::set<int64_t> lit_oids;
  for (const auto& row : intervals.rows()) {
    lit_oids.insert(row[0].AsIntUnchecked());
  }

  // Sample spacing is 1 h; bus speeds are tiny (tens of units/hour), so a
  // generous vmax covers every leg and adds reachability slack.
  auto possible = engine.ObjectsPossiblyWithin(
      scenario.moft_name, scenario.neighborhoods_layer, low, /*vmax=*/1.0);
  ASSERT_TRUE(possible.ok()) << possible.status().ToString();
  std::set<int64_t> bead_oids(possible.ValueOrDie().begin(),
                              possible.ValueOrDie().end());
  for (int64_t oid : lit_oids) {
    EXPECT_TRUE(bead_oids.count(oid)) << oid;
  }
  EXPECT_GE(bead_oids.size(), lit_oids.size());

  // Inconsistent speed bound reported as an error.
  EXPECT_FALSE(engine
                   .ObjectsPossiblyWithin(scenario.moft_name,
                                          scenario.neighborhoods_layer, low,
                                          /*vmax=*/1e-6)
                   .ok());
}

}  // namespace
}  // namespace piet::core
