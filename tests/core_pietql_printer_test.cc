#include <gtest/gtest.h>

#include "common/random.h"
#include "core/pietql/parser.h"
#include "core/pietql/printer.h"

namespace piet::core::pietql {
namespace {

bool SameValue(const Value& a, const Value& b) { return a == b; }

bool SameGeo(const GeoQuery& a, const GeoQuery& b) {
  if (a.schema != b.schema || a.select.size() != b.select.size() ||
      a.where.size() != b.where.size()) {
    return false;
  }
  for (size_t i = 0; i < a.select.size(); ++i) {
    if (a.select[i].name != b.select[i].name) {
      return false;
    }
  }
  for (size_t i = 0; i < a.where.size(); ++i) {
    const GeoCondition& x = a.where[i];
    const GeoCondition& y = b.where[i];
    if (x.kind != y.kind || x.a.name != y.a.name || x.b.name != y.b.name ||
        x.attribute != y.attribute || x.op != y.op ||
        !SameValue(x.literal, y.literal)) {
      return false;
    }
  }
  return true;
}

bool SameMo(const MoQuery& a, const MoQuery& b) {
  if (a.agg.kind != b.agg.kind || a.moft != b.moft ||
      a.where.size() != b.where.size() ||
      a.group_by_level != b.group_by_level) {
    return false;
  }
  for (size_t i = 0; i < a.where.size(); ++i) {
    const MoCondition& x = a.where[i];
    const MoCondition& y = b.where[i];
    if (x.kind != y.kind || x.time_level != y.time_level ||
        !SameValue(x.literal, y.literal) || x.t0 != y.t0 || x.t1 != y.t1 ||
        x.near_layer != y.near_layer || x.radius != y.radius) {
      return false;
    }
  }
  return true;
}

bool SameQuery(const Query& a, const Query& b) {
  if (a.mo.has_value() != b.mo.has_value()) {
    return false;
  }
  if (!SameGeo(a.geo, b.geo)) {
    return false;
  }
  return !a.mo || SameMo(*a.mo, *b.mo);
}

TEST(PietQlPrinterTest, CanonicalForms) {
  Query q;
  q.geo.select = {{"Ln"}, {"Lr"}};
  q.geo.schema = "PietSchema";
  GeoCondition attr;
  attr.kind = GeoCondition::Kind::kAttrCompare;
  attr.a = {"Ln"};
  attr.attribute = "income";
  attr.op = CompareOp::kLt;
  attr.literal = Value(1500.0);
  q.geo.where.push_back(attr);

  MoQuery mo;
  mo.agg.kind = MoAggregate::Kind::kRatePerHour;
  mo.moft = "FMbus";
  MoCondition inside;
  inside.kind = MoCondition::Kind::kInsideResult;
  mo.where.push_back(inside);
  MoCondition tod;
  tod.kind = MoCondition::Kind::kTimeEquals;
  tod.time_level = "timeOfDay";
  tod.literal = Value("Morning");
  mo.where.push_back(tod);
  mo.group_by_level = "hour";
  q.mo = mo;

  std::string text = Print(q);
  EXPECT_EQ(text,
            "SELECT layer.Ln, layer.Lr; FROM PietSchema; "
            "WHERE ATTR(layer.Ln, income) < 1500 | "
            "SELECT RATE PER HOUR FROM FMbus WHERE INSIDE RESULT AND "
            "TIME.timeOfDay = 'Morning' GROUP BY TIME.hour");

  auto reparsed = Parse(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(SameQuery(q, reparsed.ValueOrDie()));
}

// Escaping regressions: quotes inside string literals survive the printer
// (SQL-style doubling) and the lexer undoes the doubling.
TEST(PietQlPrinterTest, StringLiteralQuotesRoundTrip) {
  Query q;
  q.geo.select = {{"Ln"}};
  q.geo.schema = "S";
  GeoCondition cond;
  cond.kind = GeoCondition::Kind::kAttrCompare;
  cond.a = {"Ln"};
  cond.attribute = "name";
  cond.op = CompareOp::kEq;
  cond.literal = Value("O'Brien \"quoted\"");
  q.geo.where.push_back(cond);

  std::string text = Print(q);
  EXPECT_NE(text.find("'O''Brien \"quoted\"'"), std::string::npos) << text;
  auto reparsed = Parse(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString()
                             << "\n  text: " << text;
  EXPECT_TRUE(SameQuery(q, reparsed.ValueOrDie())) << text;
}

// Doubles print in shortest round-trip form, not six significant digits:
// 1234567.89 used to print as 1.23457e+06 and reparse to a different value.
TEST(PietQlPrinterTest, DoubleLiteralsRoundTripExactly) {
  for (double v : {1234567.89, 0.30000000000000004, 1e-9, 1500.0}) {
    Query q;
    q.geo.select = {{"Ln"}};
    q.geo.schema = "S";
    GeoCondition cond;
    cond.kind = GeoCondition::Kind::kAttrCompare;
    cond.a = {"Ln"};
    cond.attribute = "income";
    cond.op = CompareOp::kLt;
    cond.literal = Value(v);
    q.geo.where.push_back(cond);
    MoQuery mo;
    mo.agg.kind = MoAggregate::Kind::kCountAll;
    mo.moft = "FM";
    MoCondition between;
    between.kind = MoCondition::Kind::kTimeBetween;
    between.t0 = v;
    between.t1 = v + 0.125;
    mo.where.push_back(between);
    q.mo = std::move(mo);

    std::string text = Print(q);
    auto reparsed = Parse(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString()
                               << "\n  text: " << text;
    EXPECT_TRUE(SameQuery(q, reparsed.ValueOrDie())) << text;
  }
  // The golden canonical form is unchanged: integral doubles still print
  // without an exponent or trailing zeros.
  Query q;
  q.geo.select = {{"Ln"}};
  q.geo.schema = "S";
  GeoCondition cond;
  cond.kind = GeoCondition::Kind::kAttrCompare;
  cond.a = {"Ln"};
  cond.attribute = "income";
  cond.op = CompareOp::kLt;
  cond.literal = Value(1500.0);
  q.geo.where.push_back(cond);
  EXPECT_EQ(Print(q), "SELECT layer.Ln; FROM S; "
                      "WHERE ATTR(layer.Ln, income) < 1500");
}

// Property: print-parse round trip over randomized ASTs.
class PietQlRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PietQlRoundTrip, PrintParseIsIdentity) {
  Random rng(6000 + GetParam());
  auto random_ident = [&](const char* prefix) {
    return std::string(prefix) + std::to_string(rng.UniformInt(0, 9));
  };
  // Strings that exercise the quoting rules, not just clean identifiers.
  auto random_string = [&]() -> std::string {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        return random_ident("val");
      case 1:
        return "it's " + random_ident("v");
      case 2:
        return "''" + random_ident("v") + "'";
      default:
        return "a \"b\" " + random_ident("v");
    }
  };
  // Doubles with fractional parts force shortest-round-trip printing.
  auto random_double = [&]() {
    return static_cast<double>(rng.UniformInt(0, 5000000)) / 7.0;
  };
  for (int trial = 0; trial < 40; ++trial) {
    Query q;
    int nselect = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < nselect; ++i) {
      q.geo.select.push_back({random_ident("L")});
    }
    q.geo.schema = random_ident("S");
    int nconds = static_cast<int>(rng.UniformInt(0, 3));
    for (int i = 0; i < nconds; ++i) {
      GeoCondition cond;
      switch (rng.UniformInt(0, 2)) {
        case 0:
          cond.kind = GeoCondition::Kind::kIntersection;
          cond.a = q.geo.select.front();
          cond.b = {random_ident("L")};
          break;
        case 1:
          cond.kind = GeoCondition::Kind::kContains;
          cond.a = q.geo.select.front();
          cond.b = {random_ident("L")};
          break;
        default:
          cond.kind = GeoCondition::Kind::kAttrCompare;
          cond.a = q.geo.select.front();
          cond.attribute = random_ident("attr");
          cond.op = static_cast<CompareOp>(rng.UniformInt(0, 4));
          cond.literal = rng.Bernoulli(0.5) ? Value(random_double())
                                            : Value(random_string());
      }
      q.geo.where.push_back(std::move(cond));
    }
    if (rng.Bernoulli(0.7)) {
      MoQuery mo;
      mo.agg.kind = static_cast<MoAggregate::Kind>(rng.UniformInt(0, 2));
      mo.moft = random_ident("M");
      int nmo = static_cast<int>(rng.UniformInt(0, 2));
      bool spatial_used = false;
      for (int i = 0; i < nmo; ++i) {
        MoCondition cond;
        switch (rng.UniformInt(spatial_used ? 2 : 0, 4)) {
          case 0:
            cond.kind = MoCondition::Kind::kInsideResult;
            spatial_used = true;
            break;
          case 1:
            cond.kind = MoCondition::Kind::kPassesThroughResult;
            spatial_used = true;
            break;
          case 2:
            cond.kind = MoCondition::Kind::kTimeEquals;
            cond.time_level = random_ident("level");
            cond.literal = Value(random_string());
            break;
          case 3:
            cond.kind = MoCondition::Kind::kTimeBetween;
            cond.t0 = random_double();
            cond.t1 = cond.t0 + random_double() + 1.0;
            break;
          default:
            cond.kind = MoCondition::Kind::kNearLayer;
            cond.near_layer = random_ident("L");
            cond.radius = random_double();
            spatial_used = true;
        }
        mo.where.push_back(std::move(cond));
      }
      if (rng.Bernoulli(0.5)) {
        mo.group_by_level = random_ident("level");
      }
      q.mo = std::move(mo);
    }

    std::string text = Print(q);
    auto reparsed = Parse(text);
    ASSERT_TRUE(reparsed.ok())
        << reparsed.status().ToString() << "\n  text: " << text;
    EXPECT_TRUE(SameQuery(q, reparsed.ValueOrDie())) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PietQlRoundTrip, ::testing::Range(0, 6));

}  // namespace
}  // namespace piet::core::pietql
