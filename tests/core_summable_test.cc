#include <gtest/gtest.h>

#include "core/region.h"
#include "core/summable.h"
#include "gis/density.h"

namespace piet::core {
namespace {

using geometry::MakeRectangle;
using geometry::Point;
using geometry::Polyline;
using gis::ConstantDensity;
using gis::GeometryId;
using gis::GeometryKind;
using gis::Layer;
using gis::PerRegionDensity;

TEST(GeometricAggregatorTest, PolygonAreaIntegral) {
  Layer layer("pg", GeometryKind::kPolygon);
  GeometryId a = layer.AddPolygon(MakeRectangle(0, 0, 2, 2)).ValueOrDie();
  GeometryId b = layer.AddPolygon(MakeRectangle(5, 5, 7, 8)).ValueOrDie();
  ConstantDensity density(3.0);
  GeometricAggregator agg(&density);
  // 3 * (4 + 6) = 30.
  EXPECT_DOUBLE_EQ(agg.OverPolygons(layer, {a, b}).ValueOrDie(), 30.0);
  EXPECT_DOUBLE_EQ(agg.Evaluate(layer, {a}).ValueOrDie(), 12.0);
  EXPECT_DOUBLE_EQ(agg.Evaluate(layer, {}).ValueOrDie(), 0.0);
}

TEST(GeometricAggregatorTest, PolylineLineIntegral) {
  Layer layer("pl", GeometryKind::kPolyline);
  GeometryId a =
      layer.AddPolyline(Polyline({{0, 0}, {3, 4}})).ValueOrDie();  // len 5.
  ConstantDensity density(2.0);
  GeometricAggregator agg(&density);
  EXPECT_NEAR(agg.OverPolylines(layer, {a}).ValueOrDie(), 10.0, 1e-9);
  EXPECT_TRUE(agg.OverPolylines(layer, {a}, 0).status().IsInvalidArgument());
}

TEST(GeometricAggregatorTest, PointDiracEvaluation) {
  Layer layer("nd", GeometryKind::kNode);
  GeometryId a = layer.AddPoint({1, 1}).ValueOrDie();
  GeometryId b = layer.AddPoint({2, 2}).ValueOrDie();
  ConstantDensity density(7.0);
  GeometricAggregator agg(&density);
  EXPECT_DOUBLE_EQ(agg.OverPoints(layer, {a, b}).ValueOrDie(), 14.0);
  EXPECT_DOUBLE_EQ(agg.Evaluate(layer, {a}).ValueOrDie(), 7.0);
}

TEST(GeometricAggregatorTest, PiecewiseDensityLineIntegral) {
  // Density 1 on [0,10]x[0,10], 5 on [10,20]x[0,10]; a street crossing both
  // halves picks up 1*10 + 5*10.
  Layer regions("pg", GeometryKind::kPolygon);
  (void)regions.AddPolygon(MakeRectangle(0, 0, 10, 10));
  (void)regions.AddPolygon(MakeRectangle(10, 0, 20, 10));
  PerRegionDensity density(&regions, {1.0, 5.0});

  Layer streets("pl", GeometryKind::kPolyline);
  GeometryId street =
      streets.AddPolyline(Polyline({{0, 5}, {20, 5}})).ValueOrDie();
  GeometricAggregator agg(&density);
  EXPECT_NEAR(agg.OverPolylines(streets, {street}, 256).ValueOrDie(), 60.0,
              0.5);
}

TEST(GeometricAggregatorTest, SummableRewritingEqualsDirectIntegral) {
  // Σ_g ∫∫_g h == ∫∫_{∪g} h for disjoint cells and piecewise-constant h —
  // the summability property of Sec. 5.
  Layer layer("pg", GeometryKind::kPolygon);
  std::vector<GeometryId> ids;
  std::vector<double> densities;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(
        layer.AddPolygon(MakeRectangle(i * 10, 0, (i + 1) * 10, 10))
            .ValueOrDie());
    densities.push_back(1.0 + i);
  }
  PerRegionDensity h(&layer, densities);
  GeometricAggregator agg(&h);
  double summed = agg.OverPolygons(layer, ids).ValueOrDie();
  double direct = h.IntegrateOverPolygon(MakeRectangle(0, 0, 40, 10));
  EXPECT_NEAR(summed, direct, 1e-9);
  EXPECT_DOUBLE_EQ(summed, h.TotalMass());
}

TEST(DensityMassPredicateTest, Type5SecondOrderRegion) {
  // Type 5 query region: neighborhoods where the number of (low-income)
  // people exceeds a threshold — a geometric aggregation inside C.
  Layer layer("pg", GeometryKind::kPolygon);
  GeometryId sparse =
      layer.AddPolygon(MakeRectangle(0, 0, 10, 10)).ValueOrDie();
  GeometryId dense =
      layer.AddPolygon(MakeRectangle(10, 0, 20, 10)).ValueOrDie();
  auto population = std::make_shared<PerRegionDensity>(
      &layer, std::vector<double>{10.0, 1000.0});

  GeometryPredicate pred =
      GeometryPredicate::DensityMassGreater(population, 50000.0);
  EXPECT_FALSE(pred(layer, sparse));  // Mass 1000.
  EXPECT_TRUE(pred(layer, dense));    // Mass 100000.
  // Memoized second call.
  EXPECT_TRUE(pred(layer, dense));
}

TEST(GeometryPredicateTest, Combinators) {
  Layer layer("pg", GeometryKind::kPolygon);
  GeometryId id = layer.AddPolygon(MakeRectangle(0, 0, 1, 1)).ValueOrDie();
  ASSERT_TRUE(layer.SetAttribute(id, "income", Value(1200.0)).ok());
  ASSERT_TRUE(layer.SetAttribute(id, "pop", Value(100.0)).ok());

  auto low = GeometryPredicate::AttributeLess("income", 1500.0);
  auto big = GeometryPredicate::AttributeGreater("pop", 500.0);
  EXPECT_TRUE(low(layer, id));
  EXPECT_FALSE(big(layer, id));
  EXPECT_FALSE(low.And(big)(layer, id));
  EXPECT_TRUE(low.Or(big)(layer, id));
  EXPECT_FALSE(low.Not()(layer, id));
  EXPECT_TRUE(GeometryPredicate::All()(layer, id));
  // Missing attribute -> false.
  EXPECT_FALSE(GeometryPredicate::AttributeEquals("ghost", Value(1))(layer,
                                                                     id));
  EXPECT_TRUE(
      GeometryPredicate::AttributeEquals("pop", Value(100.0))(layer, id));
}

TEST(TimePredicateTest, MatchingIntervalsHourAligned) {
  temporal::TimeDimension dim;
  TimePredicate morning;
  morning.RollupEquals("timeOfDay", Value("Morning"));
  // Domain: 04:00 to 14:00 on 2006-01-02.
  auto t0 = temporal::ParseTimePoint("2006-01-02 04:00").ValueOrDie();
  auto t1 = temporal::ParseTimePoint("2006-01-02 14:00").ValueOrDie();
  auto matched =
      morning.MatchingIntervals(dim, temporal::Interval(t0, t1)).ValueOrDie();
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_DOUBLE_EQ(matched.TotalLength(), 6.0 * 3600.0);  // 06:00-12:00.
}

TEST(TimePredicateTest, MatchingIntervalsWithWindow) {
  temporal::TimeDimension dim;
  auto t0 = temporal::ParseTimePoint("2006-01-02 06:00").ValueOrDie();
  auto t1 = temporal::ParseTimePoint("2006-01-02 12:00").ValueOrDie();
  auto w0 = temporal::ParseTimePoint("2006-01-02 07:30").ValueOrDie();
  auto w1 = temporal::ParseTimePoint("2006-01-02 08:15").ValueOrDie();
  TimePredicate when;
  when.Window(temporal::Interval(w0, w1));
  auto matched =
      when.MatchingIntervals(dim, temporal::Interval(t0, t1)).ValueOrDie();
  EXPECT_DOUBLE_EQ(matched.TotalLength(), 45.0 * 60.0);
}

TEST(TimePredicateTest, HourRangeAndFineLevelsRejected) {
  temporal::TimeDimension dim;
  TimePredicate rush;
  rush.HourRange(8, 9);
  auto t = temporal::ParseTimePoint("2006-01-02 08:30").ValueOrDie();
  EXPECT_TRUE(rush.Matches(dim, t));
  auto late = temporal::ParseTimePoint("2006-01-02 10:01").ValueOrDie();
  EXPECT_FALSE(rush.Matches(dim, late));

  TimePredicate fine;
  fine.RollupEquals("minute", Value("2006-01-02 08:30"));
  auto t0 = temporal::ParseTimePoint("2006-01-02 00:00").ValueOrDie();
  EXPECT_TRUE(fine.MatchingIntervals(dim, temporal::Interval(t0, t))
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace piet::core
