#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/diagnostic.h"

namespace piet::analysis {
namespace {

std::string ReadGolden(const char* name) {
  const std::filesystem::path path =
      std::filesystem::path(PIET_SOURCE_DIR) / "tests" / "golden" / name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The four-finding sample exercises every rendering branch: an error with no
// fix-it, a warning and a note with fix-its, and a finding whose strings need
// JSON escaping (quote, backslash, tab, newline).
DiagnosticList SampleList() {
  DiagnosticList diags;
  diags.AddError(
      "lint-rollup-functional", "rollup line->polyline in layer 'Lr'",
      "fine id 0 maps to 2 coarse ids; rollup must be function-valued");
  diags.AddWarning("lint-dead-clause", "mo WHERE clause 1 (T BETWEEN)",
                   "empty time window: upper bound 50 precedes lower bound 100",
                   "T BETWEEN 50 AND 100");
  diags.AddNote("lint-redundant-clause",
                "geo WHERE clause 2 (ATTR layer.Ln, income)",
                "every element of layer 'Ln' already satisfies this clause",
                "drop this clause");
  diags.AddWarning("check-quote \"escape\"", "entity with\ttab",
                   "message with\nnewline and backslash \\");
  return diags;
}

TEST(DiagnosticGoldenTest, ToStringMatchesGolden) {
  EXPECT_EQ(SampleList().ToString() + "\n", ReadGolden("diagnostics.txt"));
}

TEST(DiagnosticGoldenTest, ToJsonMatchesGolden) {
  EXPECT_EQ(SampleList().ToJson() + "\n", ReadGolden("diagnostics.json"));
}

TEST(DiagnosticGoldenTest, JsonOmitsEmptyFixit) {
  const Diagnostic bare{Severity::kError, "x", "e", "m", ""};
  EXPECT_EQ(bare.ToJson(),
            "{\"severity\":\"error\",\"check_id\":\"x\",\"entity\":\"e\","
            "\"message\":\"m\"}");
  const Diagnostic fixed{Severity::kError, "x", "e", "m", "f"};
  EXPECT_EQ(fixed.ToJson(),
            "{\"severity\":\"error\",\"check_id\":\"x\",\"entity\":\"e\","
            "\"message\":\"m\",\"fixit\":\"f\"}");
}

TEST(DiagnosticDedupeTest, AddDropsExactRepeats) {
  DiagnosticList diags;
  diags.AddWarning("lint-dead-clause", "clause 1", "never matches");
  diags.AddWarning("lint-dead-clause", "clause 1", "never matches");
  EXPECT_EQ(diags.size(), 1u);

  // A different message on the same (check_id, entity) is a new finding.
  diags.AddWarning("lint-dead-clause", "clause 1", "other reason");
  EXPECT_EQ(diags.size(), 2u);
  // So is the same message on a different entity.
  diags.AddWarning("lint-dead-clause", "clause 2", "never matches");
  EXPECT_EQ(diags.size(), 3u);
}

TEST(DiagnosticDedupeTest, MergeRoutesThroughAdd) {
  DiagnosticList a;
  a.AddError("lint-graph-cycle", "layer 'Ln' graph", "cycle");
  DiagnosticList b;
  b.AddError("lint-graph-cycle", "layer 'Ln' graph", "cycle");
  b.AddNote("lint-redundant-clause", "clause 3", "subsumed");
  a.Merge(b);
  EXPECT_EQ(a.size(), 2u) << a.ToString();
  EXPECT_TRUE(a.Has("lint-redundant-clause"));
}

}  // namespace
}  // namespace piet::analysis
