#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "moving/moft.h"
#include "moving/trajectory.h"

namespace piet::moving {
namespace {

using geometry::Point;
using temporal::Interval;
using temporal::TimePoint;

TEST(MoftTest, AddAndQuery) {
  Moft moft;
  ASSERT_TRUE(moft.Add(1, TimePoint(10), {0, 0}).ok());
  ASSERT_TRUE(moft.Add(1, TimePoint(5), {1, 1}).ok());  // Out of order.
  ASSERT_TRUE(moft.Add(2, TimePoint(7), {2, 2}).ok());
  EXPECT_EQ(moft.num_samples(), 3u);
  EXPECT_EQ(moft.num_objects(), 2u);

  const auto& s1 = moft.SamplesOf(1);
  ASSERT_EQ(s1.size(), 2u);
  EXPECT_LT(s1[0].t, s1[1].t);  // Kept sorted.
  EXPECT_TRUE(moft.SamplesOf(42).empty());

  auto span = moft.TimeSpan().ValueOrDie();
  EXPECT_DOUBLE_EQ(span.begin.seconds, 5.0);
  EXPECT_DOUBLE_EQ(span.end.seconds, 10.0);
}

TEST(MoftTest, DuplicateHandling) {
  Moft moft;
  ASSERT_TRUE(moft.Add(1, TimePoint(5), {1, 1}).ok());
  EXPECT_TRUE(moft.Add(1, TimePoint(5), {1, 1}).ok());  // Idempotent.
  EXPECT_EQ(moft.num_samples(), 1u);
  // Conflicting position at the same instant.
  EXPECT_TRUE(moft.Add(1, TimePoint(5), {9, 9}).IsAlreadyExists());
}

TEST(MoftTest, CsvRoundTrip) {
  Moft moft;
  ASSERT_TRUE(moft.Add(1, TimePoint(1.5), {0.25, -3}).ok());
  ASSERT_TRUE(moft.Add(2, TimePoint(2), {7, 8}).ok());
  std::ostringstream out;
  ASSERT_TRUE(moft.WriteCsv(out).ok());

  std::istringstream in(out.str());
  auto parsed = Moft::ReadCsv(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().num_samples(), 2u);
  EXPECT_EQ(parsed.ValueOrDie().SamplesOf(1)[0].pos, Point(0.25, -3));
}

TEST(MoftTest, CsvErrors) {
  std::istringstream bad_arity("1,2,3\n");
  EXPECT_TRUE(Moft::ReadCsv(bad_arity).status().IsParseError());
  std::istringstream bad_number("1,x,3,4\n");
  EXPECT_TRUE(Moft::ReadCsv(bad_number).status().IsParseError());
  std::istringstream with_comment("# comment\n\n1,2,3,4\n");
  EXPECT_TRUE(Moft::ReadCsv(with_comment).ok());
}

TEST(MoftTest, ToFactTableShape) {
  Moft moft;
  ASSERT_TRUE(moft.Add(1, TimePoint(1), {2, 3}).ok());
  auto table = moft.ToFactTable();
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.columns()[0].name, "Oid");
  EXPECT_EQ(table.At(0, "x").ValueOrDie(), Value(2.0));
}

TEST(TrajectorySampleTest, StrictTimeOrdering) {
  EXPECT_TRUE(TrajectorySample::Create(
                  {{TimePoint(1), {0, 0}}, {TimePoint(1), {1, 1}}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(TrajectorySample::Create(
                  {{TimePoint(2), {0, 0}}, {TimePoint(1), {1, 1}}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(TrajectorySample::Create(
                  {{TimePoint(1), {0, 0}}, {TimePoint(2), {1, 1}}})
                  .ok());
}

TEST(TrajectorySampleTest, ClosedDetection) {
  auto open = TrajectorySample::Create(
                  {{TimePoint(0), {0, 0}}, {TimePoint(1), {1, 1}}})
                  .ValueOrDie();
  EXPECT_FALSE(open.IsClosed());
  auto closed = TrajectorySample::Create({{TimePoint(0), {0, 0}},
                                          {TimePoint(1), {1, 1}},
                                          {TimePoint(2), {0, 0}}})
                    .ValueOrDie();
  EXPECT_TRUE(closed.IsClosed());
}

LinearTrajectory MakeLit() {
  auto sample = TrajectorySample::Create({{TimePoint(0), {0, 0}},
                                          {TimePoint(10), {10, 0}},
                                          {TimePoint(20), {10, 10}}})
                    .ValueOrDie();
  return LinearTrajectory::FromSample(std::move(sample)).ValueOrDie();
}

TEST(LinearTrajectoryTest, PositionInterpolation) {
  LinearTrajectory lit = MakeLit();
  EXPECT_EQ(*lit.PositionAt(TimePoint(0)), Point(0, 0));
  EXPECT_EQ(*lit.PositionAt(TimePoint(5)), Point(5, 0));
  EXPECT_EQ(*lit.PositionAt(TimePoint(10)), Point(10, 0));
  EXPECT_EQ(*lit.PositionAt(TimePoint(15)), Point(10, 5));
  EXPECT_EQ(*lit.PositionAt(TimePoint(20)), Point(10, 10));
  EXPECT_FALSE(lit.PositionAt(TimePoint(-1)).has_value());
  EXPECT_FALSE(lit.PositionAt(TimePoint(21)).has_value());
}

TEST(LinearTrajectoryTest, LengthAndSpeed) {
  LinearTrajectory lit = MakeLit();
  EXPECT_DOUBLE_EQ(lit.Length(), 20.0);
  EXPECT_DOUBLE_EQ(lit.AverageSpeed(), 1.0);
  EXPECT_DOUBLE_EQ(lit.LengthDuring(Interval(TimePoint(5), TimePoint(15))),
                   10.0);
  EXPECT_DOUBLE_EQ(lit.LengthDuring(Interval(TimePoint(-5), TimePoint(100))),
                   20.0);
  EXPECT_DOUBLE_EQ(lit.LengthDuring(Interval(TimePoint(3), TimePoint(3))), 0.0);
}

TEST(LinearTrajectoryTest, Legs) {
  LinearTrajectory lit = MakeLit();
  auto legs = lit.Legs();
  ASSERT_EQ(legs.size(), 2u);
  EXPECT_EQ(legs[0].p1, Point(10, 0));
  EXPECT_DOUBLE_EQ(legs[0].DurationOf(), 10.0);
  EXPECT_EQ(legs[1].At(TimePoint(15)), Point(10, 5));
}

TEST(LinearTrajectoryTest, AsPolylineCollapsesStationary) {
  auto sample = TrajectorySample::Create({{TimePoint(0), {0, 0}},
                                          {TimePoint(1), {0, 0}},
                                          {TimePoint(2), {3, 4}}})
                    .ValueOrDie();
  auto lit = LinearTrajectory::FromSample(std::move(sample)).ValueOrDie();
  auto line = lit.AsPolyline().ValueOrDie();
  EXPECT_EQ(line.num_vertices(), 2u);
  EXPECT_DOUBLE_EQ(line.Length(), 5.0);
}

TEST(LinearTrajectoryTest, SinglePointSample) {
  auto sample =
      TrajectorySample::Create({{TimePoint(3), {1, 2}}}).ValueOrDie();
  auto lit = LinearTrajectory::FromSample(std::move(sample)).ValueOrDie();
  EXPECT_EQ(*lit.PositionAt(TimePoint(3)), Point(1, 2));
  EXPECT_DOUBLE_EQ(lit.Length(), 0.0);
  EXPECT_TRUE(lit.Legs().empty());
  EXPECT_TRUE(lit.AsPolyline().status().IsInvalidArgument());
}

TEST(PolynomialTest, HornerEvaluation) {
  Polynomial p({1.0, -2.0, 3.0});  // 1 - 2t + 3t^2.
  EXPECT_DOUBLE_EQ(p.Eval(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.Eval(1.0), 2.0);
  EXPECT_DOUBLE_EQ(p.Eval(2.0), 9.0);
  EXPECT_DOUBLE_EQ(Polynomial().Eval(5.0), 0.0);
}

TEST(PolynomialTrajectoryTest, QuarterCircleExample) {
  // The paper's Def. 5 example: {(t, (1-t^2)/(1+t^2), 2t/(1+t^2)), 0<=t<=1}
  // traces a quarter of the unit circle.
  PolynomialTrajectory::Piece piece;
  piece.t0 = TimePoint(0);
  piece.t1 = TimePoint(1);
  piece.px = Polynomial({1.0, 0.0, -1.0});  // 1 - t^2.
  piece.qx = Polynomial({1.0, 0.0, 1.0});   // 1 + t^2.
  piece.py = Polynomial({0.0, 2.0});        // 2t.
  piece.qy = Polynomial({1.0, 0.0, 1.0});

  auto traj = PolynomialTrajectory::Create({piece}).ValueOrDie();
  EXPECT_EQ(*traj.PositionAt(TimePoint(0)), Point(1, 0));
  Point end = *traj.PositionAt(TimePoint(1));
  EXPECT_NEAR(end.x, 0.0, 1e-12);
  EXPECT_NEAR(end.y, 1.0, 1e-12);
  // Every point lies on the unit circle.
  for (double t = 0.0; t <= 1.0; t += 0.05) {
    Point p = *traj.PositionAt(TimePoint(t));
    EXPECT_NEAR(p.x * p.x + p.y * p.y, 1.0, 1e-12) << t;
  }
  EXPECT_FALSE(traj.PositionAt(TimePoint(2)).has_value());
}

TEST(PolynomialTrajectoryTest, ValidationRejectsGapsAndJumps) {
  PolynomialTrajectory::Piece a;
  a.t0 = TimePoint(0);
  a.t1 = TimePoint(1);
  a.px = Polynomial({0.0, 1.0});  // x = t.
  a.py = Polynomial({0.0});
  PolynomialTrajectory::Piece gap = a;
  gap.t0 = TimePoint(2);
  gap.t1 = TimePoint(3);
  EXPECT_TRUE(
      PolynomialTrajectory::Create({a, gap}).status().IsInvalidArgument());

  PolynomialTrajectory::Piece jump;
  jump.t0 = TimePoint(1);
  jump.t1 = TimePoint(2);
  jump.px = Polynomial({42.0});  // Discontinuous x.
  jump.py = Polynomial({0.0});
  EXPECT_TRUE(
      PolynomialTrajectory::Create({a, jump}).status().IsInvalidArgument());

  PolynomialTrajectory::Piece cont;
  cont.t0 = TimePoint(1);
  cont.t1 = TimePoint(2);
  cont.px = Polynomial({0.0, 1.0});  // x = t: continuous (x(1)=1).
  cont.py = Polynomial({0.0});
  EXPECT_TRUE(PolynomialTrajectory::Create({a, cont}).ok());
}

TEST(PolynomialTrajectoryTest, DiscretizeBridgesToLit) {
  PolynomialTrajectory::Piece piece;
  piece.t0 = TimePoint(0);
  piece.t1 = TimePoint(1);
  piece.px = Polynomial({1.0, 0.0, -1.0});
  piece.qx = Polynomial({1.0, 0.0, 1.0});
  piece.py = Polynomial({0.0, 2.0});
  piece.qy = Polynomial({1.0, 0.0, 1.0});
  auto traj = PolynomialTrajectory::Create({piece}).ValueOrDie();

  auto sample = traj.Discretize(50).ValueOrDie();
  EXPECT_EQ(sample.size(), 50u);
  auto lit = LinearTrajectory::FromSample(sample).ValueOrDie();
  // LIT length approximates the arc length pi/2.
  EXPECT_NEAR(lit.Length(), M_PI / 2.0, 1e-3);
  EXPECT_TRUE(traj.Discretize(1).status().IsInvalidArgument());
}

}  // namespace
}  // namespace piet::moving
