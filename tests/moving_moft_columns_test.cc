// Columnar MOFT storage core: seal/re-sort lifecycle, zero-copy views
// (SampleView / ObjectSpan / LegView / SampleWindow), closed time-window
// semantics, and bit-equality of every query type between insertion orders
// (the sealed columns are a canonical (oid, t) sort, so query results must
// not depend on the order samples were added).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "moving/moft.h"
#include "workload/city.h"
#include "workload/trajectories.h"

namespace piet {
namespace {

using core::GeometryPredicate;
using core::QueryEngine;
using core::Strategy;
using core::TimePredicate;
using geometry::Point;
using moving::LegView;
using moving::Moft;
using moving::MoftColumns;
using moving::ObjectSpan;
using moving::Sample;
using moving::SampleView;
using moving::SampleWindow;
using olap::FactTable;
using temporal::Interval;
using temporal::TimePoint;
using workload::City;
using workload::CityConfig;
using workload::TrajectoryConfig;

// ---------------------------------------------------------------------------
// Seal lifecycle.

TEST(MoftColumnsTest, SealSortsOutOfOrderAdds) {
  Moft moft;
  ASSERT_TRUE(moft.Add(2, TimePoint(5), {20, 5}).ok());
  ASSERT_TRUE(moft.Add(1, TimePoint(9), {10, 9}).ok());
  ASSERT_TRUE(moft.Add(2, TimePoint(1), {20, 1}).ok());
  ASSERT_TRUE(moft.Add(1, TimePoint(3), {10, 3}).ok());

  const MoftColumns& cols = moft.Columns();
  ASSERT_EQ(cols.size(), 4u);
  // Globally sorted by (oid, t).
  for (size_t i = 1; i < cols.size(); ++i) {
    ASSERT_TRUE(cols.oid[i - 1] < cols.oid[i] ||
                (cols.oid[i - 1] == cols.oid[i] &&
                 cols.t[i - 1] < cols.t[i]))
        << "row " << i;
  }
  // Spans partition [0, size) ascending by oid.
  ASSERT_EQ(cols.spans.size(), 2u);
  EXPECT_EQ(cols.spans[0].oid, 1);
  EXPECT_EQ(cols.spans[0].begin, 0u);
  EXPECT_EQ(cols.spans[0].end, 2u);
  EXPECT_EQ(cols.spans[1].oid, 2);
  EXPECT_EQ(cols.spans[1].begin, 2u);
  EXPECT_EQ(cols.spans[1].end, 4u);
  // Columns stay aligned: each row's y coordinate encodes its t above.
  for (size_t i = 0; i < cols.size(); ++i) {
    EXPECT_DOUBLE_EQ(cols.y[i], cols.t[i]) << "row " << i;
  }
}

TEST(MoftColumnsTest, SealEpochBumpsOnlyWhenDirty) {
  Moft moft;
  ASSERT_TRUE(moft.Add(1, TimePoint(1), {0, 0}).ok());
  SampleView v1 = moft.Scan();
  EXPECT_EQ(v1.seal_epoch(), 1u);
  EXPECT_TRUE(v1.valid());

  // Clean reads do not reseal.
  SampleView v2 = moft.Scan();
  EXPECT_EQ(v2.seal_epoch(), 1u);
  EXPECT_EQ(moft.seal_epoch(), 1u);

  // Mutation + read reseals; old views become invalid.
  ASSERT_TRUE(moft.Add(1, TimePoint(2), {0, 1}).ok());
  SampleView v3 = moft.Scan();
  EXPECT_EQ(v3.seal_epoch(), 2u);
  EXPECT_TRUE(v3.valid());
  EXPECT_FALSE(v1.valid());
  EXPECT_EQ(v3.size(), 2u);
}

TEST(MoftColumnsTest, DuplicateRejectionSurvivesSeal) {
  Moft moft;
  ASSERT_TRUE(moft.Add(7, TimePoint(4), {1, 1}).ok());
  ASSERT_EQ(moft.Scan().size(), 1u);  // Seal.

  // Conflicting re-observation of a sealed row is still rejected, and the
  // idempotent duplicate is still absorbed without growing the table.
  EXPECT_TRUE(moft.Add(7, TimePoint(4), {2, 2}).IsAlreadyExists());
  EXPECT_TRUE(moft.Add(7, TimePoint(4), {1, 1}).ok());
  EXPECT_EQ(moft.num_samples(), 1u);
  EXPECT_EQ(moft.Scan().size(), 1u);
}

TEST(MoftColumnsTest, AllSamplesMatchesScanOrder) {
  Moft moft;
  ASSERT_TRUE(moft.Add(3, TimePoint(2), {3, 2}).ok());
  ASSERT_TRUE(moft.Add(1, TimePoint(8), {1, 8}).ok());
  ASSERT_TRUE(moft.Add(3, TimePoint(1), {3, 1}).ok());
  ASSERT_TRUE(moft.Add(2, TimePoint(5), {2, 5}).ok());

  std::vector<Sample> copied = moft.AllSamples();
  SampleView view = moft.Scan();
  ASSERT_EQ(copied.size(), view.size());
  size_t i = 0;
  for (const Sample& s : view) {
    EXPECT_EQ(s, copied[i]) << "row " << i;
    ++i;
  }
}

// ---------------------------------------------------------------------------
// ObjectSpan + LegView.

TEST(MoftColumnsTest, ObjectSpanAndLegs) {
  Moft moft;
  ASSERT_TRUE(moft.Add(5, TimePoint(0), {0, 0}).ok());
  ASSERT_TRUE(moft.Add(5, TimePoint(10), {10, 0}).ok());
  ASSERT_TRUE(moft.Add(5, TimePoint(20), {10, 10}).ok());
  ASSERT_TRUE(moft.Add(9, TimePoint(3), {-1, -1}).ok());

  ObjectSpan span = moft.SamplesOf(5);
  EXPECT_EQ(span.oid(), 5);
  ASSERT_EQ(span.size(), 3u);
  LegView legs = span.Legs();
  ASSERT_EQ(legs.size(), 2u);
  EXPECT_EQ(legs[0].p0, Point(0, 0));
  EXPECT_EQ(legs[0].p1, Point(10, 0));
  EXPECT_DOUBLE_EQ(legs[1].t0.seconds, 10.0);
  EXPECT_DOUBLE_EQ(legs[1].t1.seconds, 20.0);

  // A single-sample object has no legs.
  EXPECT_TRUE(moft.SamplesOf(9).Legs().empty());
  // An unknown object yields an empty span.
  ObjectSpan missing = moft.SamplesOf(404);
  EXPECT_TRUE(missing.empty());
  EXPECT_TRUE(missing.Legs().empty());
}

TEST(MoftColumnsTest, ObjectSpanWindowIsClosedInterval) {
  Moft moft;
  for (double t : {0.0, 10.0, 20.0, 30.0}) {
    ASSERT_TRUE(moft.Add(1, TimePoint(t), {t, 0}).ok());
  }
  ObjectSpan span = moft.SamplesOf(1);

  // Both endpoints included.
  SampleView w = span.Window(TimePoint(10), TimePoint(20));
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w.front().t.seconds, 10.0);
  EXPECT_DOUBLE_EQ(w.back().t.seconds, 20.0);

  // Degenerate instant window hits exactly the matching sample.
  EXPECT_EQ(span.Window(TimePoint(20), TimePoint(20)).size(), 1u);
  // Window in a gap between samples is empty.
  EXPECT_TRUE(span.Window(TimePoint(11), TimePoint(19)).empty());
  // Inverted window is empty.
  EXPECT_TRUE(span.Window(TimePoint(20), TimePoint(10)).empty());
}

// ---------------------------------------------------------------------------
// SamplesBetween (whole-table closed time window).

TEST(MoftColumnsTest, SamplesBetweenBoundaries) {
  Moft moft;
  // Two objects with interleaved times.
  for (double t : {0.0, 10.0, 20.0}) {
    ASSERT_TRUE(moft.Add(1, TimePoint(t), {1, t}).ok());
    ASSERT_TRUE(moft.Add(2, TimePoint(t + 5), {2, t + 5}).ok());
  }

  // Closed endpoints: [5, 20] catches t=5,10,15,20.
  SampleWindow w = moft.SamplesBetween(TimePoint(5), TimePoint(20));
  ASSERT_EQ(w.size(), 4u);
  // Rows come back in (oid, t) order; random access agrees with iteration.
  std::vector<Sample> it_order;
  for (const Sample& s : w) {
    it_order.push_back(s);
  }
  ASSERT_EQ(it_order.size(), w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w[i], it_order[i]) << "row " << i;
    if (i > 0) {
      ASSERT_TRUE(it_order[i - 1].oid < it_order[i].oid ||
                  (it_order[i - 1].oid == it_order[i].oid &&
                   it_order[i - 1].t < it_order[i].t));
    }
  }
  EXPECT_EQ(it_order[0].oid, 1);
  EXPECT_DOUBLE_EQ(it_order[0].t.seconds, 10.0);
  EXPECT_EQ(it_order.back().oid, 2);
  EXPECT_DOUBLE_EQ(it_order.back().t.seconds, 15.0);

  // Degenerate instant window.
  SampleWindow instant = moft.SamplesBetween(TimePoint(10), TimePoint(10));
  ASSERT_EQ(instant.size(), 1u);
  EXPECT_EQ(instant[0].oid, 1);

  // Empty cases: gap, inverted, and out-of-range windows.
  EXPECT_TRUE(moft.SamplesBetween(TimePoint(11), TimePoint(14)).empty());
  EXPECT_TRUE(moft.SamplesBetween(TimePoint(20), TimePoint(5)).empty());
  EXPECT_TRUE(moft.SamplesBetween(TimePoint(100), TimePoint(200)).empty());
  EXPECT_TRUE(Moft().SamplesBetween(TimePoint(0), TimePoint(1)).empty());
}

// ---------------------------------------------------------------------------
// Query bit-equality: the canonical (oid, t) seal makes every query type
// independent of insertion order, and the SamplesMatchingTime window fast
// path (binary search on the time column) must emit exactly the rows of
// the per-row predicate path.

std::shared_ptr<City> MakeCity() {
  CityConfig config;
  config.seed = 20260807;
  config.grid_cols = 6;
  config.grid_rows = 6;
  auto city = std::make_shared<City>(
      std::move(workload::GenerateCity(config)).ValueOrDie());
  return city;
}

Moft MakeCars(const City& city) {
  TrajectoryConfig traj;
  traj.seed = 99;
  traj.num_objects = 40;
  traj.duration = 3600.0;
  traj.sample_period = 30.0;
  traj.speed = 12.0;
  return workload::GenerateTrajectories(city, traj).ValueOrDie();
}

void ExpectSameTable(const Result<FactTable>& a, const Result<FactTable>& b,
                     const char* what) {
  ASSERT_TRUE(a.ok()) << what << ": " << a.status().ToString();
  ASSERT_TRUE(b.ok()) << what << ": " << b.status().ToString();
  EXPECT_EQ(a.ValueOrDie().rows(), b.ValueOrDie().rows()) << what;
}

TEST(MoftColumnsQueryTest, AllQueryTypesIndependentOfInsertionOrder) {
  auto city_a = MakeCity();
  auto city_b = MakeCity();
  Moft cars = MakeCars(*city_a);

  // Re-insert the same observations into a second MOFT in reversed order.
  Moft reversed;
  std::vector<Sample> rows = cars.AllSamples();
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
    ASSERT_TRUE(reversed.Add(it->oid, it->t, it->pos).ok());
  }
  ASSERT_EQ(reversed.num_samples(), cars.num_samples());

  ASSERT_TRUE(city_a->db->AddMoft("cars", std::move(cars)).ok());
  ASSERT_TRUE(city_b->db->AddMoft("cars", std::move(reversed)).ok());
  ASSERT_TRUE(
      city_a->db->BuildOverlay({city_a->neighborhoods_layer}, true).ok());
  ASSERT_TRUE(
      city_b->db->BuildOverlay({city_b->neighborhoods_layer}, true).ok());

  QueryEngine ea(city_a->db.get());
  QueryEngine eb(city_b->db.get());
  ea.set_num_threads(1);
  eb.set_num_threads(1);

  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);
  TimePredicate any;
  TimePredicate morning = TimePredicate().HourRange(0, 0);

  ExpectSameTable(ea.SamplesMatchingTime("cars", morning),
                  eb.SamplesMatchingTime("cars", morning),
                  "SamplesMatchingTime");
  for (Strategy s :
       {Strategy::kNaive, Strategy::kIndexed, Strategy::kOverlay}) {
    ExpectSameTable(
        ea.SampleRegion("cars", city_a->neighborhoods_layer, low, any, s),
        eb.SampleRegion("cars", city_b->neighborhoods_layer, low, any, s),
        core::StrategyToString(s).data());
  }
  ExpectSameTable(
      ea.SamplesOnPolylines("cars", city_a->streets_layer, 2.0, any),
      eb.SamplesOnPolylines("cars", city_b->streets_layer, 2.0, any),
      "SamplesOnPolylines");
  ExpectSameTable(
      ea.SamplesNearNodes("cars", city_a->schools_layer, 25.0, any),
      eb.SamplesNearNodes("cars", city_b->schools_layer, 25.0, any),
      "SamplesNearNodes");
  TimePoint mid(1800.0);
  ExpectSameTable(
      ea.SnapshotInRegion("cars", city_a->neighborhoods_layer, low, mid),
      eb.SnapshotInRegion("cars", city_b->neighborhoods_layer, low, mid),
      "SnapshotInRegion");
  ExpectSameTable(
      ea.TrajectoryRegion("cars", city_a->neighborhoods_layer, low, any),
      eb.TrajectoryRegion("cars", city_b->neighborhoods_layer, low, any),
      "TrajectoryRegion");
  ExpectSameTable(
      ea.TrajectoryNearNodes("cars", city_a->stops_layer, 30.0, any),
      eb.TrajectoryNearNodes("cars", city_b->stops_layer, 30.0, any),
      "TrajectoryNearNodes");
  ExpectSameTable(
      ea.TrajectoryAggregates("cars", city_a->neighborhoods_layer, low),
      eb.TrajectoryAggregates("cars", city_b->neighborhoods_layer, low),
      "TrajectoryAggregates");
  for (bool traj : {false, true}) {
    auto a = ea.ObjectsAlwaysWithin("cars", city_a->neighborhoods_layer, low,
                                    any, traj);
    auto b = eb.ObjectsAlwaysWithin("cars", city_b->neighborhoods_layer, low,
                                    any, traj);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.ValueOrDie(), b.ValueOrDie()) << "traj=" << traj;
  }
  auto pa = ea.ObjectsPossiblyWithin("cars", city_a->neighborhoods_layer,
                                     low, 50.0);
  auto pb = eb.ObjectsPossiblyWithin("cars", city_b->neighborhoods_layer,
                                     low, 50.0);
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_EQ(pa.ValueOrDie(), pb.ValueOrDie());
}

TEST(MoftColumnsQueryTest, WindowFastPathMatchesRowPath) {
  auto city = MakeCity();
  ASSERT_TRUE(city->db->AddMoft("cars", MakeCars(*city)).ok());
  QueryEngine engine(city->db.get());
  engine.set_num_threads(1);

  for (auto [t0, t1] : std::vector<std::pair<double, double>>{
           {600.0, 1200.0},   // Interior window.
           {0.0, 3600.0},     // Whole domain, closed at both ends.
           {1200.0, 600.0},   // Inverted: empty.
           {9000.0, 9999.0},  // Past the data: empty.
           {600.0, 600.0}}) { // Degenerate instant.
    Interval w{TimePoint(t0), TimePoint(t1)};
    // window_only() predicate takes the binary-search fast path...
    TimePredicate fast = TimePredicate().Window(w);
    // ...while the redundant always-true hour constraint forces the
    // per-row Matches path over the same closed window.
    TimePredicate slow = TimePredicate().Window(w).HourRange(0, 23);
    ASSERT_TRUE(fast.window_only());
    ASSERT_FALSE(slow.window_only());
    ExpectSameTable(engine.SamplesMatchingTime("cars", fast),
                    engine.SamplesMatchingTime("cars", slow),
                    "window fast path");
  }

  // Multi-threaded fast path is bit-identical to serial (chunking over
  // per-object ranges merges in chunk order).
  TimePredicate fast = TimePredicate().Window(
      Interval{TimePoint(600.0), TimePoint(1200.0)});
  QueryEngine e4(city->db.get());
  e4.set_num_threads(4);
  ExpectSameTable(engine.SamplesMatchingTime("cars", fast),
                  e4.SamplesMatchingTime("cars", fast),
                  "window fast path threads=4");
}

}  // namespace
}  // namespace piet
