// Determinism contract of the parallel execution layer: every parallel
// path must produce results bit-identical to `threads = 1` (the serial
// code path) for any thread count, because chunk boundaries depend only on
// the input size and per-chunk outputs merge in chunk order.
//
// Also covers the per-(MOFT, overlay-epoch) classification cache:
// ClassifySamples is served from cache on repeat, and AddMoft /
// BuildOverlay invalidate it.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "core/engine.h"
#include "core/pietql/evaluator.h"
#include "core/queries.h"
#include "gis/overlay.h"
#include "workload/city.h"
#include "workload/scenario.h"
#include "workload/trajectories.h"

namespace piet {
namespace {

using core::GeometryPredicate;
using core::QueryEngine;
using core::Strategy;
using core::TimePredicate;
using geometry::Point;
using olap::FactTable;
using workload::City;
using workload::CityConfig;
using workload::TrajectoryConfig;

// ---------------------------------------------------------------------------
// Runtime primitives.

TEST(ParallelRuntimeTest, PlanChunksCoversRangeExactly) {
  for (size_t n : {0u, 1u, 2u, 63u, 64u, 65u, 1000u, 4096u}) {
    parallel::ChunkPlan plan = parallel::PlanChunks(n);
    if (n == 0) {
      EXPECT_EQ(plan.num_chunks, 0u);
      continue;
    }
    ASSERT_GE(plan.num_chunks, 1u);
    ASSERT_LE(plan.num_chunks, parallel::kMaxChunks);
    size_t expect_begin = 0;
    for (size_t i = 0; i < plan.num_chunks; ++i) {
      auto [begin, end] = plan.Chunk(i);
      EXPECT_EQ(begin, expect_begin);
      EXPECT_LT(begin, end);
      expect_begin = end;
    }
    EXPECT_EQ(expect_begin, n);
  }
}

TEST(ParallelRuntimeTest, ChunkingIsThreadCountIndependent) {
  // The plan depends only on n — nothing else may shift the boundaries,
  // since the determinism contract keys on it.
  parallel::ChunkPlan a = parallel::PlanChunks(12345);
  parallel::ChunkPlan b = parallel::PlanChunks(12345);
  ASSERT_EQ(a.num_chunks, b.num_chunks);
  for (size_t i = 0; i < a.num_chunks; ++i) {
    EXPECT_EQ(a.Chunk(i), b.Chunk(i));
  }
}

TEST(ParallelRuntimeTest, ResolveThreadsPrefersExplicit) {
  EXPECT_EQ(parallel::ResolveThreads(3), 3);
  EXPECT_EQ(parallel::ResolveThreads(1), 1);
  EXPECT_GE(parallel::ResolveThreads(0), 1);  // Env var or hardware.
}

TEST(ParallelRuntimeTest, ParallelForVisitsEveryIndexOnce) {
  for (int threads : {1, 2, 4, 7}) {
    const size_t n = 997;
    std::vector<std::atomic<int>> visits(n);
    parallel::ParallelFor(threads, n,
                          [&](size_t /*chunk*/, size_t begin, size_t end) {
                            for (size_t i = begin; i < end; ++i) {
                              visits[i].fetch_add(1);
                            }
                          });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i << " threads "
                                     << threads;
    }
  }
}

TEST(ParallelRuntimeTest, OrderedReduceMergesInChunkOrder) {
  const size_t n = 500;
  std::vector<size_t> serial(n);
  std::iota(serial.begin(), serial.end(), 0);
  for (int threads : {1, 2, 4, 8}) {
    std::vector<size_t> merged;
    parallel::OrderedReduce<std::vector<size_t>>(
        threads, n,
        [&](size_t /*chunk*/, size_t begin, size_t end,
            std::vector<size_t>* out) {
          for (size_t i = begin; i < end; ++i) {
            out->push_back(i);
          }
        },
        [&](std::vector<size_t>&& chunk) {
          merged.insert(merged.end(), chunk.begin(), chunk.end());
        });
    EXPECT_EQ(merged, serial) << "threads " << threads;
  }
}

// ---------------------------------------------------------------------------
// Overlay build + batched location.

std::shared_ptr<City> MakeCityWithCars(int threads, bool convex) {
  CityConfig config;
  config.seed = 20260807;
  config.grid_cols = 6;
  config.grid_rows = 6;
  config.nonconvex_fraction = convex ? 0.0 : 0.4;
  auto city = std::make_shared<City>(
      std::move(workload::GenerateCity(config)).ValueOrDie());
  city->db->set_num_threads(threads);

  TrajectoryConfig traj;
  traj.seed = 99;
  traj.num_objects = 40;
  traj.duration = 3600.0;
  traj.sample_period = 30.0;
  traj.speed = 12.0;
  auto moft = workload::GenerateTrajectories(*city, traj).ValueOrDie();
  EXPECT_TRUE(city->db->AddMoft("cars", std::move(moft)).ok());
  EXPECT_TRUE(
      city->db->BuildOverlay({city->neighborhoods_layer}, convex).ok());
  return city;
}

std::vector<Point> ProbeGrid(const geometry::BoundingBox& extent, int side) {
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(side) * side);
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      points.emplace_back(
          extent.min_x + (extent.max_x - extent.min_x) * (c + 0.31) / side,
          extent.min_y + (extent.max_y - extent.min_y) * (r + 0.47) / side);
    }
  }
  return points;
}

TEST(OverlayParallelTest, BuildMatchesSerialForAnyThreadCount) {
  for (bool convex : {true, false}) {
    auto serial = MakeCityWithCars(1, convex);
    const gis::OverlayDb* ov1 = serial->db->overlay().ValueOrDie();
    std::vector<Point> probes = ProbeGrid(serial->extent, 20);
    for (int threads : {2, 4}) {
      auto parallel_city = MakeCityWithCars(threads, convex);
      const gis::OverlayDb* ovN = parallel_city->db->overlay().ValueOrDie();
      ASSERT_EQ(ov1->num_cells(), ovN->num_cells()) << "threads " << threads;
      for (const Point& p : probes) {
        gis::OverlayHit a = ov1->Locate(p);
        gis::OverlayHit b = ovN->Locate(p);
        ASSERT_EQ(a.per_layer, b.per_layer)
            << "convex=" << convex << " threads=" << threads << " at ("
            << p.x << "," << p.y << ")";
      }
    }
  }
}

TEST(OverlayParallelTest, LocateBatchMatchesPerPointLocate) {
  auto city = MakeCityWithCars(1, /*convex=*/true);
  const gis::OverlayDb* ov = city->db->overlay().ValueOrDie();
  std::vector<Point> probes = ProbeGrid(city->extent, 17);

  gis::BatchHits serial_hits = ov->LocateBatch(probes, 0, 1);
  ASSERT_EQ(serial_hits.offsets.size(), probes.size() + 1);
  for (size_t i = 0; i < probes.size(); ++i) {
    gis::OverlayHit one = ov->Locate(probes[i]);
    std::vector<gis::GeometryId> batch(
        serial_hits.ids.begin() + serial_hits.offsets[i],
        serial_hits.ids.begin() + serial_hits.offsets[i + 1]);
    ASSERT_EQ(batch, one.per_layer[0]) << "point " << i;
  }

  for (int threads : {2, 4, 8}) {
    gis::BatchHits par = ov->LocateBatch(probes, 0, threads);
    EXPECT_EQ(par.offsets, serial_hits.offsets) << "threads " << threads;
    EXPECT_EQ(par.ids, serial_hits.ids) << "threads " << threads;
  }
}

// ---------------------------------------------------------------------------
// Engine: every query type, threads=1 vs threads=N, identical relations.

void ExpectSameTable(const Result<FactTable>& a, const Result<FactTable>& b,
                     const char* what) {
  ASSERT_TRUE(a.ok()) << what << ": " << a.status().ToString();
  ASSERT_TRUE(b.ok()) << what << ": " << b.status().ToString();
  const FactTable& ta = a.ValueOrDie();
  const FactTable& tb = b.ValueOrDie();
  ASSERT_EQ(ta.num_rows(), tb.num_rows()) << what;
  EXPECT_EQ(ta.rows(), tb.rows()) << what;
}

class EngineDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    serial_ = MakeCityWithCars(1, /*convex=*/true);
    parallel_ = MakeCityWithCars(4, /*convex=*/true);
  }

  std::shared_ptr<City> serial_;
  std::shared_ptr<City> parallel_;
};

TEST_F(EngineDeterminismTest, AllQueryTypesMatchSerial) {
  QueryEngine e1(serial_->db.get());
  e1.set_num_threads(1);
  QueryEngine e4(parallel_->db.get());
  e4.set_num_threads(4);

  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);
  TimePredicate morning = TimePredicate().HourRange(0, 0);
  TimePredicate any;

  // Type 3: samples by time only.
  ExpectSameTable(e1.SamplesMatchingTime("cars", morning),
                  e4.SamplesMatchingTime("cars", morning),
                  "SamplesMatchingTime");

  // Type 4: sample/region under every strategy (incl. the cached overlay
  // classification), plus polyline and node proximity variants.
  for (Strategy s :
       {Strategy::kNaive, Strategy::kIndexed, Strategy::kOverlay}) {
    ExpectSameTable(
        e1.SampleRegion("cars", serial_->neighborhoods_layer, low, any, s),
        e4.SampleRegion("cars", parallel_->neighborhoods_layer, low, any, s),
        core::StrategyToString(s).data());
    // Second round hits the classification cache under kOverlay; results
    // must not change.
    ExpectSameTable(
        e1.SampleRegion("cars", serial_->neighborhoods_layer, low, any, s),
        e4.SampleRegion("cars", parallel_->neighborhoods_layer, low, any, s),
        "SampleRegion cached");
  }
  EXPECT_EQ(e1.stats().samples_scanned, e4.stats().samples_scanned);
  EXPECT_EQ(e1.stats().point_tests, e4.stats().point_tests);

  ExpectSameTable(e1.SamplesOnPolylines("cars", serial_->streets_layer, 2.0,
                                        any),
                  e4.SamplesOnPolylines("cars", parallel_->streets_layer,
                                        2.0, any),
                  "SamplesOnPolylines");
  ExpectSameTable(
      e1.SamplesNearNodes("cars", serial_->schools_layer, 25.0, any),
      e4.SamplesNearNodes("cars", parallel_->schools_layer, 25.0, any),
      "SamplesNearNodes");

  // Type 6: interpolated snapshot.
  temporal::TimePoint mid(1800.0);
  ExpectSameTable(
      e1.SnapshotInRegion("cars", serial_->neighborhoods_layer, low, mid),
      e4.SnapshotInRegion("cars", parallel_->neighborhoods_layer, low, mid),
      "SnapshotInRegion");

  // Type 7: interpolated intervals, region and node proximity.
  ExpectSameTable(
      e1.TrajectoryRegion("cars", serial_->neighborhoods_layer, low, any),
      e4.TrajectoryRegion("cars", parallel_->neighborhoods_layer, low, any),
      "TrajectoryRegion");
  ExpectSameTable(
      e1.TrajectoryNearNodes("cars", serial_->stops_layer, 30.0, any),
      e4.TrajectoryNearNodes("cars", parallel_->stops_layer, 30.0, any),
      "TrajectoryNearNodes");

  // Type 8: per-object trajectory aggregates.
  ExpectSameTable(
      e1.TrajectoryAggregates("cars", serial_->neighborhoods_layer, low),
      e4.TrajectoryAggregates("cars", parallel_->neighborhoods_layer, low),
      "TrajectoryAggregates");

  // Object-set queries (always-within, possibly-within).
  for (bool traj : {false, true}) {
    auto a = e1.ObjectsAlwaysWithin("cars", serial_->neighborhoods_layer,
                                    low, any, traj);
    auto b = e4.ObjectsAlwaysWithin("cars", parallel_->neighborhoods_layer,
                                    low, any, traj);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.ValueOrDie(), b.ValueOrDie()) << "traj=" << traj;
  }
  auto p1 = e1.ObjectsPossiblyWithin("cars", serial_->neighborhoods_layer,
                                     low, 50.0);
  auto p4 = e4.ObjectsPossiblyWithin("cars", parallel_->neighborhoods_layer,
                                     low, 50.0);
  ASSERT_TRUE(p1.ok() && p4.ok());
  EXPECT_EQ(p1.ValueOrDie(), p4.ValueOrDie());
}

TEST_F(EngineDeterminismTest, HighLevelQueriesMatchSerial) {
  QueryEngine e1(serial_->db.get());
  e1.set_num_threads(1);
  QueryEngine e4(parallel_->db.get());
  e4.set_num_threads(4);
  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);

  auto r1 = core::queries::CountPerHourInRegion(e1, "cars",
                                          serial_->neighborhoods_layer, low,
                                          TimePredicate(), Strategy::kOverlay);
  auto r4 = core::queries::CountPerHourInRegion(e4, "cars",
                                          parallel_->neighborhoods_layer, low,
                                          TimePredicate(), Strategy::kOverlay);
  ASSERT_TRUE(r1.ok() && r4.ok());
  EXPECT_EQ(r1.ValueOrDie().tuple_count, r4.ValueOrDie().tuple_count);
  EXPECT_EQ(r1.ValueOrDie().hour_count, r4.ValueOrDie().hour_count);
  EXPECT_DOUBLE_EQ(r1.ValueOrDie().per_hour, r4.ValueOrDie().per_hour);

  auto t1 = core::queries::AggregateTrajectories(e1, "cars",
                                           serial_->neighborhoods_layer, low);
  auto t4 = core::queries::AggregateTrajectories(
      e4, "cars", parallel_->neighborhoods_layer, low);
  ASSERT_TRUE(t1.ok() && t4.ok());
  EXPECT_DOUBLE_EQ(t1.ValueOrDie().total_distance,
                   t4.ValueOrDie().total_distance);
  EXPECT_DOUBLE_EQ(t1.ValueOrDie().total_seconds,
                   t4.ValueOrDie().total_seconds);
  EXPECT_EQ(t1.ValueOrDie().total_visits, t4.ValueOrDie().total_visits);
}

// ---------------------------------------------------------------------------
// Piet-QL evaluator: full query strings, threads=1 vs threads=4.

TEST(EvaluatorDeterminismTest, QueryResultsMatchSerial) {
  auto scenario1 = workload::BuildFigure1Scenario().ValueOrDie();
  auto scenario4 = workload::BuildFigure1Scenario().ValueOrDie();
  ASSERT_TRUE(
      scenario1.db->BuildOverlay({scenario1.neighborhoods_layer}).ok());
  scenario4.db->set_num_threads(4);
  ASSERT_TRUE(
      scenario4.db->BuildOverlay({scenario4.neighborhoods_layer}).ok());

  core::pietql::Evaluator e1(scenario1.db.get());
  e1.set_num_threads(1);
  core::pietql::Evaluator e4(scenario4.db.get());
  e4.set_num_threads(4);

  const char* kQueries[] = {
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE ATTR(layer.Ln, income) < 1500 "
      "| SELECT RATE PER HOUR FROM FMbus "
      "WHERE INSIDE RESULT AND TIME.timeOfDay = 'Morning' ",
      "SELECT layer.Ln; FROM PietSchema; "
      "| SELECT COUNT(DISTINCT OID) FROM FMbus WHERE INSIDE RESULT",
      "SELECT layer.Ln; FROM PietSchema; "
      "| SELECT COUNT(DISTINCT OID) FROM FMbus WHERE PASSES THROUGH RESULT",
      "SELECT layer.Ln; FROM PietSchema; "
      "| SELECT COUNT(*) FROM FMbus WHERE NEAR(layer.Ls, 10)",
      "SELECT layer.Ln; FROM PietSchema; "
      "| SELECT COUNT(*) FROM FMbus",
  };
  for (const char* q : kQueries) {
    auto a = e1.EvaluateString(q);
    auto b = e4.EvaluateString(q);
    ASSERT_TRUE(a.ok()) << q << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << q << ": " << b.status().ToString();
    EXPECT_EQ(a.ValueOrDie().geometry_ids, b.ValueOrDie().geometry_ids) << q;
    EXPECT_EQ(a.ValueOrDie().scalar.has_value(),
              b.ValueOrDie().scalar.has_value())
        << q;
    if (a.ValueOrDie().scalar && b.ValueOrDie().scalar) {
      EXPECT_EQ(*a.ValueOrDie().scalar, *b.ValueOrDie().scalar) << q;
    }
    ASSERT_EQ(a.ValueOrDie().table.has_value(),
              b.ValueOrDie().table.has_value())
        << q;
    if (a.ValueOrDie().table && b.ValueOrDie().table) {
      EXPECT_EQ(a.ValueOrDie().table->rows(), b.ValueOrDie().table->rows())
          << q;
    }
  }
}

// The linter and rewriter stages must be unobservable when pinned off:
// these are the rendered results of all eight query shapes captured before
// either stage existed. Any drift here means the off path is no longer
// byte-identical. (PIET_REWRITE must not leak in, hence the explicit pin.)
TEST(EvaluatorDeterminismTest, OffModeMatchesFrozenBaselines) {
  auto scenario = workload::BuildFigure1Scenario().ValueOrDie();
  ASSERT_TRUE(scenario.db->BuildOverlay({scenario.neighborhoods_layer}).ok());
  core::pietql::Evaluator off(scenario.db.get());  // Defaults to kOff.
  off.set_rewrite_mode(analysis::rewrite::RewriteMode::kOff);

  const struct {
    const char* query;
    const char* expected;
  } kBaselines[] = {
      {"SELECT layer.Ln; FROM PietSchema; "
       "WHERE ATTR(layer.Ln, income) < 1500 "
       "| SELECT RATE PER HOUR FROM FMbus "
       "WHERE INSIDE RESULT AND TIME.timeOfDay = 'Morning'",
       "result layer 'Ln': 1 geometries; aggregate = 1.33333"},
      {"SELECT layer.Ln; FROM PietSchema; "
       "| SELECT COUNT(DISTINCT OID) FROM FMbus WHERE INSIDE RESULT",
       "result layer 'Ln': 6 geometries; aggregate = 6"},
      {"SELECT layer.Ln; FROM PietSchema; "
       "| SELECT COUNT(DISTINCT OID) FROM FMbus WHERE PASSES THROUGH RESULT",
       "result layer 'Ln': 6 geometries; aggregate = 6"},
      {"SELECT layer.Ln; FROM PietSchema; "
       "| SELECT COUNT(*) FROM FMbus WHERE NEAR(layer.Ls, 10)",
       "result layer 'Ln': 6 geometries; aggregate = 3"},
      {"SELECT layer.Ln; FROM PietSchema; "
       "| SELECT COUNT(*) FROM FMbus",
       "result layer 'Ln': 6 geometries; aggregate = 12"},
      {"SELECT layer.Ln; FROM PietSchema; "
       "| SELECT COUNT(*) FROM FMbus "
       "WHERE T BETWEEN 189493200 AND 189500000",
       "result layer 'Ln': 6 geometries; aggregate = 4"},
      {"SELECT layer.Ln; FROM PietSchema; "
       "WHERE ATTR(layer.Ln, income) < 1500 "
       "| SELECT RATE PER HOUR FROM FMbus WHERE INSIDE RESULT "
       "GROUP BY TIME.hour",
       "result layer 'Ln': 1 geometries\n"
       "hour | value\n"
       "5 | 1\n"
       "6 | 1\n"
       "7 | 2\n"
       "8 | 1\n"},
      {"SELECT layer.Ln, layer.Lr; FROM PietSchema; "
       "WHERE INTERSECTION(layer.Ln, layer.Lr)",
       "result layer 'Ln': 5 geometries"},
  };
  // The rewriter at kOn must hit the exact same frozen strings: every
  // rewrite is result-preserving by contract.
  core::pietql::Evaluator on(scenario.db.get());
  on.set_rewrite_mode(analysis::rewrite::RewriteMode::kOn);
  for (const auto& baseline : kBaselines) {
    auto result = off.EvaluateString(baseline.query);
    ASSERT_TRUE(result.ok())
        << baseline.query << ": " << result.status().ToString();
    EXPECT_EQ(result.ValueOrDie().ToString(), baseline.expected)
        << baseline.query;
    EXPECT_TRUE(result.ValueOrDie().diagnostics.empty()) << baseline.query;
    EXPECT_FALSE(result.ValueOrDie().rewrite.has_value()) << baseline.query;

    auto rewritten = on.EvaluateString(baseline.query);
    ASSERT_TRUE(rewritten.ok())
        << baseline.query << ": " << rewritten.status().ToString();
    EXPECT_EQ(rewritten.ValueOrDie().ToString(), baseline.expected)
        << baseline.query;
    EXPECT_TRUE(rewritten.ValueOrDie().rewrite.has_value()) << baseline.query;
  }
}

// ---------------------------------------------------------------------------
// Classification cache lifecycle.

TEST(ClassificationCacheTest, CachesAndInvalidates) {
  auto city = MakeCityWithCars(2, /*convex=*/true);
  core::GeoOlapDatabase* db = city->db.get();
  EXPECT_EQ(db->classification_cache_size(), 0u);
  uint64_t epoch0 = db->overlay_epoch();

  auto a = db->ClassifySamples("cars", city->neighborhoods_layer);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(db->classification_cache_size(), 1u);
  EXPECT_EQ(a.ValueOrDie()->epoch, epoch0);
  EXPECT_EQ(a.ValueOrDie()->samples.size() + 1,
            a.ValueOrDie()->hits.offsets.size());

  // Repeat is served from cache: same shared block, same size.
  auto b = db->ClassifySamples("cars", city->neighborhoods_layer);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.ValueOrDie().get(), b.ValueOrDie().get());
  EXPECT_EQ(db->classification_cache_size(), 1u);

  // AddMoft invalidates (the new MOFT might alias a future overlay query).
  TrajectoryConfig traj;
  traj.seed = 123;
  traj.num_objects = 3;
  traj.duration = 600.0;
  auto moft = workload::GenerateTrajectories(*city, traj).ValueOrDie();
  ASSERT_TRUE(db->AddMoft("bikes", std::move(moft)).ok());
  EXPECT_EQ(db->classification_cache_size(), 0u);
  EXPECT_GT(db->overlay_epoch(), epoch0);

  // Re-classify, then BuildOverlay invalidates again.
  ASSERT_TRUE(db->ClassifySamples("cars", city->neighborhoods_layer).ok());
  ASSERT_TRUE(db->ClassifySamples("bikes", city->neighborhoods_layer).ok());
  EXPECT_EQ(db->classification_cache_size(), 2u);
  uint64_t epoch1 = db->overlay_epoch();
  ASSERT_TRUE(db->BuildOverlay({city->neighborhoods_layer}).ok());
  EXPECT_EQ(db->classification_cache_size(), 0u);
  EXPECT_GT(db->overlay_epoch(), epoch1);

  // A stale handle taken before invalidation stays readable (shared_ptr),
  // but a fresh call recomputes at the new epoch.
  auto c = db->ClassifySamples("cars", city->neighborhoods_layer);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.ValueOrDie().get(), c.ValueOrDie().get());
  EXPECT_GT(c.ValueOrDie()->epoch, a.ValueOrDie()->epoch);
  EXPECT_EQ(a.ValueOrDie()->hits.ids, c.ValueOrDie()->hits.ids);
}

}  // namespace
}  // namespace piet
