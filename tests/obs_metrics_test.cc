#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/parallel.h"
#include "core/engine.h"
#include "core/pietql/evaluator.h"
#include "obs/metrics.h"
#include "workload/scenario.h"

namespace piet::obs {
namespace {

// Each TEST runs as its own ctest process (gtest_discover_tests), so
// toggling the process-global enable gate and resetting the registry here
// cannot leak into other tests.

TEST(ObsEnabledTest, SetEnabledWinsOverEnvironment) {
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
}

TEST(ObsMetricsTest, CounterGaugeHistogramBasics) {
  SetEnabled(true);
  auto& registry = MetricsRegistry::Global();
  registry.Reset();

  Counter& c = registry.GetCounter("test.counter");
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.Value(), 7);
  // GetCounter returns the same handle for the same name.
  EXPECT_EQ(&registry.GetCounter("test.counter"), &c);

  Gauge& g = registry.GetGauge("test.gauge");
  g.Set(42);
  EXPECT_EQ(g.Value(), 42);
  g.Set(-5);
  EXPECT_EQ(g.Value(), -5);

  Histogram& h = registry.GetHistogram("test.hist");
  h.RecordNanos(500);            // Below the first bound (1us) -> bucket 0.
  h.RecordNanos(2'000);          // In (1us, 4us] -> bucket 1.
  h.RecordNanos(5'000'000'000);  // Beyond the last bound -> overflow bucket.
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.SumNanos(), 500 + 2'000 + 5'000'000'000);
  std::vector<uint64_t> buckets = h.Buckets();
  ASSERT_EQ(buckets.size(), kNumBuckets);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[kNumBuckets - 1], 1u);

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("test.counter"), 7);
  EXPECT_EQ(snap.gauge("test.gauge"), -5);
  ASSERT_NE(snap.histogram("test.hist"), nullptr);
  EXPECT_EQ(snap.histogram("test.hist")->count, 3u);
  EXPECT_EQ(snap.counter("no.such.counter"), 0);
  EXPECT_EQ(snap.histogram("no.such.hist"), nullptr);

  std::string text = registry.DumpText();
  EXPECT_NE(text.find("test.counter"), std::string::npos);
  std::string json = registry.DumpJson();
  EXPECT_NE(json.find("\"test.gauge\":-5"), std::string::npos);

  registry.Reset();
  EXPECT_EQ(c.Value(), 0);           // Handles stay valid across Reset.
  EXPECT_EQ(h.Count(), 0u);
}

TEST(ObsMetricsTest, ScopedTimerRecordsOnce) {
  SetEnabled(true);
  auto& registry = MetricsRegistry::Global();
  registry.Reset();
  Histogram& h = registry.GetHistogram("test.timer");
  {
    ScopedTimer timer(&h);
  }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GE(h.SumNanos(), 0);
  {
    ScopedTimer noop(nullptr);  // Null histogram: the disabled path.
  }
  EXPECT_EQ(h.Count(), 1u);
}

// The satellite concurrency check: concurrent relaxed adds from the pool
// must merge to the exact total (run under TSan with PIET_THREADS=4 in CI).
TEST(ObsMetricsTest, ShardedCounterExactUnderParallelFor) {
  SetEnabled(true);
  auto& registry = MetricsRegistry::Global();
  registry.Reset();
  Counter& c = registry.GetCounter("test.sharded");
  constexpr size_t kN = 200'000;
  parallel::ParallelFor(/*threads=*/4, kN,
                        [&](size_t /*chunk*/, size_t begin, size_t end) {
                          for (size_t i = begin; i < end; ++i) {
                            c.Add(1);
                          }
                        });
  EXPECT_EQ(c.Value(), static_cast<int64_t>(kN));
}

class ObsSixBusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = workload::BuildFigure1Scenario();
    ASSERT_TRUE(scenario.ok());
    scenario_ = std::move(scenario).ValueOrDie();
  }
  workload::Figure1Scenario scenario_;
};

// Runs all eight engine query types once over the six-bus scenario.
void RunAllQueryTypes(const core::GeoOlapDatabase& db) {
  core::QueryEngine engine(&db);
  core::TimePredicate always;
  core::GeometryPredicate all = core::GeometryPredicate::All();
  ASSERT_TRUE(engine.SamplesMatchingTime("FMbus", always).ok());
  ASSERT_TRUE(
      engine.SampleRegion("FMbus", "Ln", all, always, core::Strategy::kIndexed)
          .ok());
  ASSERT_TRUE(engine.SamplesOnPolylines("FMbus", "Lr", 5.0, always).ok());
  ASSERT_TRUE(engine.SamplesNearNodes("FMbus", "Ls", 10.0, always).ok());
  ASSERT_TRUE(
      engine.SnapshotInRegion("FMbus", "Ln", all, temporal::TimePoint(7200))
          .ok());
  ASSERT_TRUE(engine.TrajectoryRegion("FMbus", "Ln", all, always).ok());
  ASSERT_TRUE(engine.TrajectoryNearNodes("FMbus", "Ls", 10.0, always).ok());
  ASSERT_TRUE(engine.TrajectoryAggregates("FMbus", "Ln", all).ok());
}

// The disabled gate means *zero* registry mutations: no counter bumps and
// no lazily-created metric entries, across a full eight-query-type run.
TEST_F(ObsSixBusTest, DisabledRunMutatesNothing) {
  SetEnabled(false);
  auto& registry = MetricsRegistry::Global();
  registry.Reset();
  const std::string before = registry.DumpJson();
  RunAllQueryTypes(*scenario_.db);
  core::pietql::Evaluator eval(scenario_.db.get());
  ASSERT_TRUE(eval.EvaluateString("SELECT layer.Ln; FROM PietSchema; "
                                  "| SELECT COUNT(*) FROM FMbus")
                  .ok());
  EXPECT_EQ(registry.DumpJson(), before);
}

// Enabled-mode counters must be exact, hand-computable values on the
// Figure 1 six-bus example — not merely positive.
TEST_F(ObsSixBusTest, EnabledCountersExactOnSixBus) {
  SetEnabled(true);
  auto& registry = MetricsRegistry::Global();
  registry.Reset();

  core::GeoOlapDatabase& db = *scenario_.db;
  const auto* moft = db.GetMoft("FMbus").ValueOrDie();
  const int64_t n = static_cast<int64_t>(moft->num_samples());
  ASSERT_GT(n, 0);

  core::QueryEngine engine(&db);
  auto table = engine.SamplesMatchingTime("FMbus", core::TimePredicate());
  ASSERT_TRUE(table.ok());
  const int64_t rows = static_cast<int64_t>(table.ValueOrDie().num_rows());

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("engine.queries"), 1);
  // Unconstrained time predicate scans every sample exactly once, and
  // every sample matches.
  EXPECT_EQ(snap.counter("engine.rows_scanned"), n);
  EXPECT_EQ(snap.counter("engine.rows_matched"), rows);
  EXPECT_EQ(rows, n);
  const HistogramData* latency =
      snap.histogram("engine.query.samples_matching_time.latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 1u);

  // Classification cache: first overlay query misses, second hits.
  ASSERT_TRUE(db.BuildOverlay({"Ln"}).ok());
  auto first = db.ClassifySamples("FMbus", "Ln");
  ASSERT_TRUE(first.ok());
  auto second = db.ClassifySamples("FMbus", "Ln");
  ASSERT_TRUE(second.ok());
  snap = db.Stats();
  EXPECT_EQ(snap.counter("db.classify.cache_misses"), 1);
  EXPECT_EQ(snap.counter("db.classify.cache_hits"), 1);
  // BuildOverlay invalidated once more on top of the scenario loads done
  // before Reset, so exactly one invalidation is visible here.
  EXPECT_EQ(snap.counter("db.classify.invalidations"), 1);
  EXPECT_EQ(snap.counter("overlay.builds"), 1);
  // One point location per sample, flushed once per batch.
  EXPECT_EQ(snap.counter("overlay.locate.points"), n);

  // MOFT counters: a duplicate (oid, t) add is rejected and counted; the
  // seal on first scan is counted with the staged row count.
  moving::Moft fresh;
  ASSERT_TRUE(fresh.Add(1, temporal::TimePoint(10), {0, 0}).ok());
  ASSERT_TRUE(fresh.Add(1, temporal::TimePoint(20), {1, 1}).ok());
  ASSERT_TRUE(fresh.Add(1, temporal::TimePoint(10), {0, 0}).ok());  // Dup.
  (void)fresh.Scan();  // Forces the seal.
  snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("moft.duplicates_rejected"), 1);
  EXPECT_GE(snap.counter("moft.seals"), 1);
  EXPECT_GE(snap.counter("moft.rows_staged"), 2);
}

}  // namespace
}  // namespace piet::obs
