#include <gtest/gtest.h>

#include "core/pietql/evaluator.h"
#include "core/pietql/lexer.h"
#include "core/pietql/parser.h"
#include "workload/scenario.h"

namespace piet::core::pietql {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens =
      Tokenize("SELECT layer.x, 'str' | <= >= < > = ( ) * ; 3.5 -2").ValueOrDie();
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) {
    kinds.push_back(t.kind);
  }
  std::vector<TokenKind> expected = {
      TokenKind::kIdent, TokenKind::kIdent, TokenKind::kDot,
      TokenKind::kIdent, TokenKind::kComma, TokenKind::kString,
      TokenKind::kPipe,  TokenKind::kLe,    TokenKind::kGe,
      TokenKind::kLt,    TokenKind::kGt,    TokenKind::kEq,
      TokenKind::kLParen, TokenKind::kRParen, TokenKind::kStar,
      TokenKind::kSemicolon, TokenKind::kNumber, TokenKind::kNumber,
      TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
  EXPECT_DOUBLE_EQ(tokens[16].number, 3.5);
  EXPECT_DOUBLE_EQ(tokens[17].number, -2.0);
  EXPECT_EQ(tokens[5].text, "str");
}

TEST(LexerTest, Errors) {
  EXPECT_TRUE(Tokenize("SELECT @").status().IsParseError());
  EXPECT_TRUE(Tokenize("'unterminated").status().IsParseError());
}

TEST(ParserTest, GeoOnly) {
  auto query = Parse(
      "SELECT layer.usa_rivers, layer.usa_cities; FROM PietSchema; "
      "WHERE INTERSECTION(layer.usa_rivers, layer.usa_cities) "
      "AND ATTR(layer.usa_rivers, length) >= 100;");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const Query& q = query.ValueOrDie();
  EXPECT_EQ(q.geo.select.size(), 2u);
  EXPECT_EQ(q.geo.select[0].name, "usa_rivers");
  EXPECT_EQ(q.geo.schema, "PietSchema");
  ASSERT_EQ(q.geo.where.size(), 2u);
  EXPECT_EQ(q.geo.where[0].kind, GeoCondition::Kind::kIntersection);
  EXPECT_EQ(q.geo.where[1].kind, GeoCondition::Kind::kAttrCompare);
  EXPECT_EQ(q.geo.where[1].op, CompareOp::kGe);
  EXPECT_FALSE(q.mo.has_value());
}

TEST(ParserTest, FullQueryWithMoPart) {
  auto query = Parse(
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE ATTR(layer.Ln, income) < 1500 "
      "| SELECT RATE PER HOUR FROM FMbus "
      "WHERE INSIDE RESULT AND TIME.timeOfDay = 'Morning' "
      "GROUP BY TIME.hour");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const Query& q = query.ValueOrDie();
  ASSERT_TRUE(q.mo.has_value());
  EXPECT_EQ(q.mo->agg.kind, MoAggregate::Kind::kRatePerHour);
  EXPECT_EQ(q.mo->moft, "FMbus");
  ASSERT_EQ(q.mo->where.size(), 2u);
  EXPECT_EQ(q.mo->where[0].kind, MoCondition::Kind::kInsideResult);
  EXPECT_EQ(q.mo->where[1].kind, MoCondition::Kind::kTimeEquals);
  EXPECT_EQ(q.mo->where[1].time_level, "timeOfDay");
  ASSERT_TRUE(q.mo->group_by_level.has_value());
  EXPECT_EQ(*q.mo->group_by_level, "hour");
}

TEST(ParserTest, CountVariantsAndBetween) {
  auto q1 = Parse(
      "SELECT layer.L; FROM S; | SELECT COUNT(*) FROM M "
      "WHERE T BETWEEN 100 AND 200");
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  EXPECT_EQ(q1.ValueOrDie().mo->agg.kind, MoAggregate::Kind::kCountAll);
  EXPECT_DOUBLE_EQ(q1.ValueOrDie().mo->where[0].t0, 100.0);

  auto q2 =
      Parse("SELECT layer.L; FROM S; | SELECT COUNT(DISTINCT OID) FROM M");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2.ValueOrDie().mo->agg.kind,
            MoAggregate::Kind::kCountDistinctOid);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_TRUE(Parse("FROM x;").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT layer.L FROM S;").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT layer.L; FROM S; WHERE BOGUS(x)")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(Parse("SELECT layer.L; FROM S; | SELECT MEDIAN FROM M")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(Parse("SELECT layer.L; FROM S; trailing")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(
      Parse("SELECT layer.L; FROM S; WHERE ATTR(layer.L, x) ?? 3")
          .status()
          .IsParseError());
}

class PietQlEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = workload::BuildFigure1Scenario();
    ASSERT_TRUE(scenario.ok());
    scenario_ = std::move(scenario).ValueOrDie();
  }
  workload::Figure1Scenario scenario_;
};

TEST_F(PietQlEvalTest, GeoPartAttrFilter) {
  Evaluator eval(scenario_.db.get());
  auto result = eval.EvaluateString(
      "SELECT layer.Ln; FROM PietSchema; WHERE ATTR(layer.Ln, income) < 1500");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.ValueOrDie().geometry_ids.size(), 1u);
  EXPECT_EQ(result.ValueOrDie().geometry_ids[0],
            scenario_.low_income_neighborhood);
}

TEST_F(PietQlEvalTest, GeoPartIntersectionWithRiver) {
  Evaluator eval(scenario_.db.get());
  // The river runs along y ~ 40, rising to 41 mid-city: it touches the
  // three northern neighborhoods everywhere, plus N0 and N2 at its end
  // points (corners), but never the low-income N1.
  auto result = eval.EvaluateString(
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE INTERSECTION(layer.Ln, layer.Lr)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().geometry_ids.size(), 5u);
  for (gis::GeometryId id : result.ValueOrDie().geometry_ids) {
    EXPECT_NE(id, scenario_.low_income_neighborhood);
  }
}

TEST_F(PietQlEvalTest, GeoPartContainsSchools) {
  Evaluator eval(scenario_.db.get());
  // Schools at (20,20) in N0, (70,25) in N1, (100,60) in N5.
  auto result = eval.EvaluateString(
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE CONTAINS(layer.Ln, layer.Ls)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().geometry_ids.size(), 3u);
}

TEST_F(PietQlEvalTest, PaperStyleCompositeGeoQuery) {
  Evaluator eval(scenario_.db.get());
  // Sec. 5 flavor: cities crossed by a river AND containing a store/school.
  auto result = eval.EvaluateString(
      "SELECT layer.Ln, layer.Lr, layer.Ls; FROM PietSchema; "
      "WHERE INTERSECTION(layer.Ln, layer.Lr) "
      "AND CONTAINS(layer.Ln, layer.Ls);");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // River-touching: {N0, N2, N3, N4, N5}; school-containing: {N0, N1, N5};
  // conjunction: {N0, N5}.
  EXPECT_EQ(result.ValueOrDie().geometry_ids.size(), 2u);
}

TEST_F(PietQlEvalTest, HeadlineRatePerHour) {
  Evaluator eval(scenario_.db.get());
  auto result = eval.EvaluateString(
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE ATTR(layer.Ln, income) < 1500 "
      "| SELECT RATE PER HOUR FROM FMbus "
      "WHERE INSIDE RESULT AND TIME.timeOfDay = 'Morning'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result.ValueOrDie().scalar.has_value());
  EXPECT_DOUBLE_EQ(result.ValueOrDie().scalar->AsDoubleUnchecked(),
                   4.0 / 3.0);
}

TEST_F(PietQlEvalTest, PassesThroughCatchesO6) {
  Evaluator eval(scenario_.db.get());
  auto inside = eval.EvaluateString(
      "SELECT layer.Ln; FROM PietSchema; WHERE ATTR(layer.Ln, income) < 1500 "
      "| SELECT COUNT(DISTINCT OID) FROM FMbus WHERE INSIDE RESULT");
  ASSERT_TRUE(inside.ok());
  EXPECT_EQ(inside.ValueOrDie().scalar->AsIntUnchecked(), 2);  // O1, O2.

  auto passes = eval.EvaluateString(
      "SELECT layer.Ln; FROM PietSchema; WHERE ATTR(layer.Ln, income) < 1500 "
      "| SELECT COUNT(DISTINCT OID) FROM FMbus WHERE PASSES THROUGH RESULT");
  ASSERT_TRUE(passes.ok());
  EXPECT_EQ(passes.ValueOrDie().scalar->AsIntUnchecked(), 3);  // + O6.
}

TEST_F(PietQlEvalTest, GroupByHour) {
  Evaluator eval(scenario_.db.get());
  auto result = eval.EvaluateString(
      "SELECT layer.Ln; FROM PietSchema; WHERE ATTR(layer.Ln, income) < 1500 "
      "| SELECT COUNT(*) FROM FMbus WHERE INSIDE RESULT "
      "AND TIME.timeOfDay = 'Morning' GROUP BY TIME.hour");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result.ValueOrDie().table.has_value());
  const auto& table = *result.ValueOrDie().table;
  // Qualifying samples at hours 6 (O1), 7 (O1+O2), 8 (O1).
  ASSERT_EQ(table.num_rows(), 3u);
  EXPECT_EQ(table.row(0)[0], Value(int64_t{6}));
  EXPECT_EQ(table.row(0)[1], Value(int64_t{1}));
  EXPECT_EQ(table.row(1)[1], Value(int64_t{2}));
  EXPECT_EQ(table.row(2)[1], Value(int64_t{1}));
}

TEST_F(PietQlEvalTest, TimeBetweenWindow) {
  Evaluator eval(scenario_.db.get());
  auto span = scenario_.db->GetMoft("FMbus").ValueOrDie()->TimeSpan()
                  .ValueOrDie();
  std::string q = "SELECT layer.Ln; FROM PietSchema; | SELECT COUNT(*) FROM "
                  "FMbus WHERE T BETWEEN " +
                  std::to_string(span.begin.seconds) + " AND " +
                  std::to_string(span.begin.seconds) + "";
  auto result = eval.EvaluateString(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Only the first instant (t=1: O1's first sample).
  EXPECT_EQ(result.ValueOrDie().scalar->AsIntUnchecked(), 1);
}

TEST_F(PietQlEvalTest, NearConditionParsesAndEvaluates) {
  Evaluator eval(scenario_.db.get());
  // Schools at (20,20), (70,25), (100,60); O1's t=3 sample is (70,20),
  // within 10 of the second school. Radius 3 catches nothing.
  auto near = eval.EvaluateString(
      "SELECT layer.Ln; FROM PietSchema; "
      "| SELECT COUNT(DISTINCT OID) FROM FMbus "
      "WHERE NEAR(layer.Ls, 10)");
  ASSERT_TRUE(near.ok()) << near.status().ToString();
  EXPECT_GE(near.ValueOrDie().scalar->AsIntUnchecked(), 1);

  // O2's (20,20) and O4's (100,60) samples sit exactly on schools, so
  // they match at any radius; O1's (70,20) needs radius >= 5.
  auto tight = eval.EvaluateString(
      "SELECT layer.Ln; FROM PietSchema; "
      "| SELECT COUNT(*) FROM FMbus WHERE NEAR(layer.Ls, 3)");
  ASSERT_TRUE(tight.ok());
  EXPECT_EQ(tight.ValueOrDie().scalar->AsIntUnchecked(), 2);

  // NEAR against a polygon layer is rejected.
  EXPECT_TRUE(eval.EvaluateString(
                      "SELECT layer.Ln; FROM S; "
                      "| SELECT COUNT(*) FROM FMbus WHERE NEAR(layer.Ln, 5)")
                  .status()
                  .IsInvalidArgument());
  // NEAR + INSIDE is rejected.
  EXPECT_TRUE(eval.EvaluateString(
                      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM FMbus "
                      "WHERE NEAR(layer.Ls, 5) AND INSIDE RESULT")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(PietQlEvalTest, EvaluationErrors) {
  Evaluator eval(scenario_.db.get());
  EXPECT_TRUE(eval.EvaluateString("SELECT layer.Bogus; FROM S;")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(eval.EvaluateString(
                      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM Bogus")
                  .status()
                  .IsNotFound());
  // Conditions must constrain the result layer.
  EXPECT_TRUE(eval.EvaluateString(
                      "SELECT layer.Ln; FROM S; "
                      "WHERE ATTR(layer.Lr, name) = 'x'")
                  .status()
                  .IsInvalidArgument());
  // INSIDE + PASSES together are rejected.
  EXPECT_TRUE(eval.EvaluateString(
                      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM FMbus "
                      "WHERE INSIDE RESULT AND PASSES THROUGH RESULT")
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace piet::core::pietql
