#include <gtest/gtest.h>

#include <memory>

#include "olap/mdx.h"

namespace piet::olap::mdx {
namespace {

std::shared_ptr<DimensionInstance> GeoDim() {
  DimensionSchema schema("Geo", "city");
  EXPECT_TRUE(schema.AddEdge("city", "country").ok());
  EXPECT_TRUE(schema.AddEdge("country", DimensionSchema::kAll).ok());
  auto dim = std::make_shared<DimensionInstance>(schema);
  EXPECT_TRUE(dim->AddRollup("city", Value("Antwerp"), "country",
                             Value("Belgium")).ok());
  EXPECT_TRUE(dim->AddRollup("city", Value("Brussels"), "country",
                             Value("Belgium")).ok());
  EXPECT_TRUE(dim->AddRollup("city", Value("Paris"), "country",
                             Value("France")).ok());
  return dim;
}

std::shared_ptr<DimensionInstance> ProductDim() {
  DimensionSchema schema("Product", "product");
  EXPECT_TRUE(schema.AddEdge("product", DimensionSchema::kAll).ok());
  auto dim = std::make_shared<DimensionInstance>(schema);
  EXPECT_TRUE(dim->AddMember("product", Value("beer")).ok());
  EXPECT_TRUE(dim->AddMember("product", Value("fries")).ok());
  return dim;
}

MdxEngine MakeEngine() {
  FactTable facts = FactTable::Make({"city", "product"}, {"amount"});
  EXPECT_TRUE(facts.Append({Value("Antwerp"), Value("beer"), Value(10.0)}).ok());
  EXPECT_TRUE(
      facts.Append({Value("Antwerp"), Value("fries"), Value(5.0)}).ok());
  EXPECT_TRUE(
      facts.Append({Value("Brussels"), Value("beer"), Value(7.0)}).ok());
  EXPECT_TRUE(facts.Append({Value("Paris"), Value("beer"), Value(4.0)}).ok());
  Cube cube(std::move(facts), {{"city", GeoDim(), "city"},
                               {"product", ProductDim(), "product"}});
  MdxEngine engine;
  engine.AddCube("Sales", std::move(cube));
  return engine;
}

TEST(MdxParserTest, FullQuery) {
  auto q = ParseMdx(
      "SELECT {[Measures].[amount]} ON COLUMNS, "
      "{[Geo].[country].Members} ON ROWS FROM [Sales] "
      "WHERE ([Product].[product].[beer])");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.ValueOrDie().columns.size(), 1u);
  EXPECT_TRUE(q.ValueOrDie().columns[0].is_measure);
  EXPECT_EQ(q.ValueOrDie().columns[0].measure, "amount");
  ASSERT_EQ(q.ValueOrDie().rows.size(), 1u);
  EXPECT_TRUE(q.ValueOrDie().rows[0].all_members);
  EXPECT_EQ(q.ValueOrDie().rows[0].dimension, "Geo");
  EXPECT_EQ(q.ValueOrDie().cube, "Sales");
  ASSERT_EQ(q.ValueOrDie().slicer.size(), 1u);
  EXPECT_EQ(q.ValueOrDie().slicer[0].member, Value("beer"));
}

TEST(MdxParserTest, Errors) {
  EXPECT_TRUE(ParseMdx("FOO").status().IsParseError());
  EXPECT_TRUE(ParseMdx("SELECT {[Measures].[m]} ON ROWS FROM [C]")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseMdx("SELECT {[Measures].[m] ON COLUMNS FROM [C]")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseMdx("SELECT {[Measures].[m]} ON COLUMNS FROM [C] extra")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseMdx(
                  "SELECT {[Measures].[m]} ON COLUMNS FROM [C] "
                  "WHERE ([D].[l].Members)")
                  .status()
                  .IsParseError());
}

TEST(MdxEngineTest, MembersExpansionWithRollup) {
  MdxEngine engine = MakeEngine();
  auto result = engine.ExecuteString(
      "SELECT {[Measures].[amount]} ON COLUMNS, "
      "{[Geo].[country].Members} ON ROWS FROM [Sales]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const MdxResult& r = result.ValueOrDie();
  ASSERT_EQ(r.row_headers.size(), 2u);  // Belgium, France.
  ASSERT_EQ(r.cells.size(), 2u);
  // Belgium = 10 + 5 + 7 = 22; France = 4.
  EXPECT_EQ(r.cells[0][0], Value(22.0));
  EXPECT_EQ(r.cells[1][0], Value(4.0));
}

TEST(MdxEngineTest, SlicerFiltersFacts) {
  MdxEngine engine = MakeEngine();
  auto result = engine.ExecuteString(
      "SELECT {[Measures].[amount]} ON COLUMNS, "
      "{[Geo].[country].Members} ON ROWS FROM [Sales] "
      "WHERE ([Product].[product].[beer])");
  ASSERT_TRUE(result.ok());
  const MdxResult& r = result.ValueOrDie();
  EXPECT_EQ(r.cells[0][0], Value(17.0));  // Belgium beer: 10 + 7.
  EXPECT_EQ(r.cells[1][0], Value(4.0));   // France beer.
}

TEST(MdxEngineTest, ExplicitMembersOnRows) {
  MdxEngine engine = MakeEngine();
  auto result = engine.ExecuteString(
      "SELECT {[Measures].[amount]} ON COLUMNS, "
      "{[Geo].[city].[Antwerp], [Geo].[city].[Paris]} ON ROWS FROM [Sales]");
  ASSERT_TRUE(result.ok());
  const MdxResult& r = result.ValueOrDie();
  ASSERT_EQ(r.cells.size(), 2u);
  EXPECT_EQ(r.cells[0][0], Value(15.0));  // Antwerp: 10 + 5.
  EXPECT_EQ(r.cells[1][0], Value(4.0));
}

TEST(MdxEngineTest, NoRowsAxisGivesGrandTotal) {
  MdxEngine engine = MakeEngine();
  auto result = engine.ExecuteString(
      "SELECT {[Measures].[amount]} ON COLUMNS FROM [Sales]");
  ASSERT_TRUE(result.ok());
  const MdxResult& r = result.ValueOrDie();
  ASSERT_EQ(r.cells.size(), 1u);
  EXPECT_EQ(r.cells[0][0], Value(26.0));
}

TEST(MdxEngineTest, MeasureAggregateOverride) {
  MdxEngine engine = MakeEngine();
  engine.SetMeasureAggregate("Sales", "amount", AggFunction::kCount);
  auto result = engine.ExecuteString(
      "SELECT {[Measures].[amount]} ON COLUMNS, "
      "{[Geo].[country].Members} ON ROWS FROM [Sales]");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().cells[0][0], Value(int64_t{3}));  // Belgium.
}

TEST(MdxEngineTest, MultipleMeasuresAndCrossLevels) {
  MdxEngine engine = MakeEngine();
  auto result = engine.ExecuteString(
      "SELECT {[Measures].[amount]} ON COLUMNS, "
      "{[Geo].[country].[Belgium], [Geo].[city].[Paris]} ON ROWS "
      "FROM [Sales]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const MdxResult& r = result.ValueOrDie();
  EXPECT_EQ(r.cells[0][0], Value(22.0));  // Country-level coordinate.
  EXPECT_EQ(r.cells[1][0], Value(4.0));   // City-level coordinate.
}

TEST(MdxEngineTest, Errors) {
  MdxEngine engine = MakeEngine();
  EXPECT_TRUE(engine
                  .ExecuteString(
                      "SELECT {[Measures].[amount]} ON COLUMNS FROM [Nope]")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(engine
                  .ExecuteString(
                      "SELECT {[Measures].[ghost]} ON COLUMNS FROM [Sales]")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(engine
                  .ExecuteString(
                      "SELECT {[Bogus].[x].Members} ON COLUMNS FROM [Sales]")
                  .status()
                  .IsNotFound());
}

TEST(MdxEngineTest, EmptyCellWhenNoMeasure) {
  MdxEngine engine = MakeEngine();
  auto result = engine.ExecuteString(
      "SELECT {[Geo].[country].[Belgium]} ON COLUMNS, "
      "{[Geo].[country].[France]} ON ROWS FROM [Sales]");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.ValueOrDie().cells[0][0].is_null());
}

}  // namespace
}  // namespace piet::olap::mdx
