#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/value.h"

namespace piet {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("thing").WithContext("loading config");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "loading config: thing");
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, CopyShares) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(b.IsInternal());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) {
    return Status::InvalidArgument("not positive");
  }
  return v;
}

Result<int> Doubler(int v) {
  PIET_ASSIGN_OR_RETURN(int checked, ParsePositive(v));
  return checked * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).ValueOrDie(), 42);
  EXPECT_TRUE(Doubler(-1).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{3}).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(3).is_numeric());
  EXPECT_TRUE(Value(3.0).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value(3).AsNumeric().ValueOrDie(), 3.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsNumeric().ValueOrDie(), 2.5);
  EXPECT_TRUE(Value("s").AsNumeric().status().IsTypeError());
  EXPECT_TRUE(Value(2.5).AsInt().status().IsTypeError());
}

TEST(ValueTest, MixedNumericEquality) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_NE(Value(3), Value(3.5));
  EXPECT_LT(Value(2), Value(2.5));
  ValueHash h;
  EXPECT_EQ(h(Value(3)), h(Value(3.0)));
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_FALSE(Value(2) < Value(1));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(7).ToString(), "7");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value(true).ToString(), "true");
}

TEST(RandomTest, Deterministic) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, SeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformDoubleRange) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RandomTest, UniformIntInclusive) {
  Random rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RandomTest, GaussianMoments) {
  Random rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringUtilTest, Case) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringUtilTest, PrefixSuffixJoin) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

}  // namespace
}  // namespace piet
