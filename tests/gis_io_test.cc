#include <gtest/gtest.h>

#include <sstream>

#include "gis/io.h"

namespace piet::gis {
namespace {

using geometry::MakeRectangle;
using geometry::Point;
using geometry::Polyline;

TEST(LayerIoTest, PolygonRoundTrip) {
  Layer layer("neighborhoods", GeometryKind::kPolygon);
  GeometryId a = layer.AddPolygon(MakeRectangle(0, 0, 10, 10)).ValueOrDie();
  GeometryId b = layer.AddPolygon(MakeRectangle(10, 0, 20, 10)).ValueOrDie();
  ASSERT_TRUE(layer.SetAttribute(a, "income", Value(1200.5)).ok());
  ASSERT_TRUE(layer.SetAttribute(a, "name", Value("Berchem")).ok());
  ASSERT_TRUE(layer.SetAttribute(b, "count", Value(int64_t{7})).ok());
  ASSERT_TRUE(layer.SetAttribute(b, "flag", Value(true)).ok());

  std::ostringstream out;
  ASSERT_TRUE(WriteLayer(layer, out).ok());

  std::istringstream in(out.str());
  auto restored = ReadLayer(in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const Layer& r = *restored.ValueOrDie();
  EXPECT_EQ(r.name(), "neighborhoods");
  EXPECT_EQ(r.kind(), GeometryKind::kPolygon);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.GetAttribute(0, "income").ValueOrDie(), Value(1200.5));
  EXPECT_EQ(r.GetAttribute(0, "name").ValueOrDie(), Value("Berchem"));
  EXPECT_EQ(r.GetAttribute(1, "count").ValueOrDie(), Value(int64_t{7}));
  EXPECT_EQ(r.GetAttribute(1, "flag").ValueOrDie(), Value(true));
  EXPECT_DOUBLE_EQ(r.GetPolygon(0).ValueOrDie()->Area(), 100.0);
  EXPECT_TRUE(r.GetPolygon(1).ValueOrDie()->Contains({15, 5}));
}

TEST(LayerIoTest, NodeAndPolylineRoundTrip) {
  Layer nodes("schools", GeometryKind::kNode);
  GeometryId s = nodes.AddPoint({1.25, -3.5}).ValueOrDie();
  ASSERT_TRUE(nodes.SetAttribute(s, "name", Value("S0")).ok());
  std::ostringstream out1;
  ASSERT_TRUE(WriteLayer(nodes, out1).ok());
  std::istringstream in1(out1.str());
  auto r1 = ReadLayer(in1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.ValueOrDie()->GetPoint(0).ValueOrDie(), Point(1.25, -3.5));

  Layer lines("streets", GeometryKind::kPolyline);
  (void)lines.AddPolyline(Polyline({{0, 0}, {5, 5}, {10, 0}}));
  std::ostringstream out2;
  ASSERT_TRUE(WriteLayer(lines, out2).ok());
  std::istringstream in2(out2.str());
  auto r2 = ReadLayer(in2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.ValueOrDie()->GetPolyline(0).ValueOrDie()->num_vertices(), 3u);
}

TEST(LayerIoTest, StringEscaping) {
  Layer layer("l", GeometryKind::kNode);
  GeometryId id = layer.AddPoint({0, 0}).ValueOrDie();
  ASSERT_TRUE(
      layer.SetAttribute(id, "weird", Value("tab\there\nline\\slash")).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteLayer(layer, out).ok());
  std::istringstream in(out.str());
  auto restored = ReadLayer(in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.ValueOrDie()->GetAttribute(0, "weird").ValueOrDie(),
            Value("tab\there\nline\\slash"));
}

TEST(LayerIoTest, DoublePrecisionPreserved) {
  Layer layer("l", GeometryKind::kNode);
  GeometryId id = layer.AddPoint({0.1, 0.2}).ValueOrDie();
  double v = 1.0 / 3.0;
  ASSERT_TRUE(layer.SetAttribute(id, "third", Value(v)).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteLayer(layer, out).ok());
  std::istringstream in(out.str());
  auto restored = ReadLayer(in);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored.ValueOrDie()
                       ->GetAttribute(0, "third")
                       .ValueOrDie()
                       .AsDoubleUnchecked(),
                   v);
}

TEST(LayerIoTest, ParseErrors) {
  std::istringstream no_header("layer x polygon\n");
  EXPECT_TRUE(ReadLayer(no_header).status().IsParseError());
  std::istringstream bad_kind("# piet-layer v1\nlayer x blob\n");
  EXPECT_TRUE(ReadLayer(bad_kind).status().IsParseError());
  std::istringstream bad_elem("# piet-layer v1\nlayer x node\nbogus line\n");
  EXPECT_TRUE(ReadLayer(bad_elem).status().IsParseError());
  std::istringstream bad_attr(
      "# piet-layer v1\nlayer x node\nelem POINT (1 2)\tnovalue\n");
  EXPECT_TRUE(ReadLayer(bad_attr).status().IsParseError());
  std::istringstream bad_tag(
      "# piet-layer v1\nlayer x node\nelem POINT (1 2)\tk=z:1\n");
  EXPECT_TRUE(ReadLayer(bad_tag).status().IsParseError());
}

TEST(LayerIoTest, CommentsAndBlankLinesSkipped) {
  std::istringstream in(
      "# piet-layer v1\n"
      "layer l node\n"
      "\n"
      "# a comment\n"
      "elem POINT (3 4)\n");
  auto restored = ReadLayer(in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.ValueOrDie()->size(), 1u);
}

}  // namespace
}  // namespace piet::gis
