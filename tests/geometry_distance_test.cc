#include <gtest/gtest.h>

#include "common/random.h"
#include "geometry/distance.h"

namespace piet::geometry {
namespace {

TEST(DistanceToPolygonTest, InsideBoundaryOutside) {
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(DistanceToPolygon({5, 5}, sq), 0.0);
  EXPECT_DOUBLE_EQ(DistanceToPolygon({10, 5}, sq), 0.0);
  EXPECT_DOUBLE_EQ(DistanceToPolygon({13, 5}, sq), 3.0);
  EXPECT_DOUBLE_EQ(DistanceToPolygon({13, 14}, sq), 5.0);  // Corner diag.
}

TEST(DistanceToPolygonTest, InsideHoleMeasuresToHoleBoundary) {
  Ring shell({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  Ring hole({{4, 4}, {6, 4}, {6, 6}, {4, 6}});
  Polygon pg(shell, {hole});
  // Point in the hole: outside the polygon, 1 unit from the hole edge.
  EXPECT_DOUBLE_EQ(DistanceToPolygon({5, 5}, pg), 1.0);
}

TEST(SegmentPolygonDistanceTest, Basic) {
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(SegmentPolygonDistance({{2, 2}, {3, 3}}, sq), 0.0);
  EXPECT_DOUBLE_EQ(SegmentPolygonDistance({{-5, 5}, {15, 5}}, sq), 0.0);
  EXPECT_DOUBLE_EQ(SegmentPolygonDistance({{12, 0}, {12, 10}}, sq), 2.0);
}

TEST(PolylinePolygonDistanceTest, Basic) {
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  Polyline near({{12, -5}, {12, 5}, {20, 5}});
  EXPECT_DOUBLE_EQ(PolylinePolygonDistance(near, sq), 2.0);
  Polyline crossing({{-5, 5}, {15, 5}});
  EXPECT_DOUBLE_EQ(PolylinePolygonDistance(crossing, sq), 0.0);
}

TEST(PolygonDistanceTest, Basic) {
  Polygon a = MakeRectangle(0, 0, 10, 10);
  Polygon b = MakeRectangle(13, 0, 20, 10);
  Polygon c = MakeRectangle(5, 5, 20, 20);
  Polygon d = MakeRectangle(10, 10, 20, 20);  // Corner touch.
  EXPECT_DOUBLE_EQ(PolygonDistance(a, b), 3.0);
  EXPECT_DOUBLE_EQ(PolygonDistance(a, c), 0.0);
  EXPECT_DOUBLE_EQ(PolygonDistance(a, d), 0.0);
  EXPECT_DOUBLE_EQ(PolygonDistance(b, a), 3.0);  // Symmetric.
}

TEST(PolylineDistanceTest, Basic) {
  Polyline a({{0, 0}, {10, 0}});
  Polyline b({{0, 4}, {10, 4}});
  Polyline c({{5, -5}, {5, 5}});
  EXPECT_DOUBLE_EQ(PolylineDistance(a, b), 4.0);
  EXPECT_DOUBLE_EQ(PolylineDistance(a, c), 0.0);
}

// Property: distance via kernels agrees with dense boundary sampling.
TEST(DistanceProperty, MatchesSampledDistance) {
  Random rng(88);
  for (int trial = 0; trial < 30; ++trial) {
    Polygon pg = MakeRegularPolygon(
        {rng.UniformDouble(-3, 3), rng.UniformDouble(-3, 3)},
        rng.UniformDouble(1, 4), static_cast<int>(rng.UniformInt(3, 8)));
    Point p(rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10));
    double kernel = DistanceToPolygon(p, pg);
    if (pg.Contains(p)) {
      EXPECT_DOUBLE_EQ(kernel, 0.0);
      continue;
    }
    // Oracle: sample the boundary densely.
    double sampled = std::numeric_limits<double>::infinity();
    const Ring& shell = pg.shell();
    for (size_t e = 0; e < shell.size(); ++e) {
      Segment edge = shell.edge(e);
      for (int k = 0; k <= 200; ++k) {
        sampled = std::min(sampled, Distance(p, edge.At(k / 200.0)));
      }
    }
    // The sampled oracle over-estimates by up to half the sampling pitch
    // (edges up to ~8 long at 200 samples -> 0.02).
    EXPECT_NEAR(kernel, sampled, 0.03);
    EXPECT_LE(kernel, sampled + 1e-12);  // Kernel is exact.
  }
}

}  // namespace
}  // namespace piet::geometry
