#include <gtest/gtest.h>

#include <memory>

#include "olap/aggregate.h"
#include "olap/cube.h"
#include "olap/dimension.h"
#include "olap/fact_table.h"

namespace piet::olap {
namespace {

DimensionSchema GeoSchema() {
  DimensionSchema schema("Geo", "neighborhood");
  EXPECT_TRUE(schema.AddEdge("neighborhood", "city").ok());
  EXPECT_TRUE(schema.AddEdge("city", "country").ok());
  EXPECT_TRUE(schema.AddEdge("country", DimensionSchema::kAll).ok());
  return schema;
}

TEST(DimensionSchemaTest, Structure) {
  DimensionSchema schema = GeoSchema();
  EXPECT_TRUE(schema.HasLevel("city"));
  EXPECT_FALSE(schema.HasLevel("continent"));
  EXPECT_TRUE(schema.RollsUp("neighborhood", "country"));
  EXPECT_FALSE(schema.RollsUp("country", "neighborhood"));
  EXPECT_TRUE(schema.RollsUp("city", "city"));
  auto path = schema.PathBetween("neighborhood", "country");
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], "neighborhood");
  EXPECT_EQ(path[2], "country");
  EXPECT_TRUE(schema.Validate().ok());
}

TEST(DimensionSchemaTest, RejectsCycles) {
  DimensionSchema schema("D", "a");
  ASSERT_TRUE(schema.AddEdge("a", "b").ok());
  ASSERT_TRUE(schema.AddEdge("b", "c").ok());
  EXPECT_TRUE(schema.AddEdge("c", "a").IsInvalidArgument());
  EXPECT_TRUE(schema.AddEdge("a", "a").IsInvalidArgument());
}

TEST(DimensionSchemaTest, ValidateRequiresPathToAll) {
  DimensionSchema schema("D", "a");
  schema.AddLevel("orphan");
  ASSERT_TRUE(schema.AddEdge("a", DimensionSchema::kAll).ok());
  EXPECT_TRUE(schema.Validate().IsInvalidArgument());
}

TEST(DimensionInstanceTest, RollupComposition) {
  DimensionInstance dim(GeoSchema());
  ASSERT_TRUE(dim.AddRollup("neighborhood", Value("Berchem"), "city",
                            Value("Antwerp")).ok());
  ASSERT_TRUE(dim.AddRollup("neighborhood", Value("Wilrijk"), "city",
                            Value("Antwerp")).ok());
  ASSERT_TRUE(dim.AddRollup("city", Value("Antwerp"), "country",
                            Value("Belgium")).ok());
  EXPECT_EQ(dim.RollupValue("neighborhood", Value("Berchem"), "country")
                .ValueOrDie(),
            Value("Belgium"));
  EXPECT_EQ(dim.RollupValue("neighborhood", Value("Berchem"),
                            DimensionSchema::kAll)
                .ValueOrDie(),
            Value("all"));
  auto under =
      dim.MembersUnder("neighborhood", "city", Value("Antwerp")).ValueOrDie();
  EXPECT_EQ(under.size(), 2u);
}

TEST(DimensionInstanceTest, FunctionalRollup) {
  DimensionInstance dim(GeoSchema());
  ASSERT_TRUE(dim.AddRollup("neighborhood", Value("X"), "city",
                            Value("A")).ok());
  EXPECT_TRUE(dim.AddRollup("neighborhood", Value("X"), "city", Value("B"))
                  .IsAlreadyExists());
  // Idempotent re-add is fine.
  EXPECT_TRUE(
      dim.AddRollup("neighborhood", Value("X"), "city", Value("A")).ok());
}

TEST(DimensionInstanceTest, ConsistencyDetectsMissingRollup) {
  DimensionInstance dim(GeoSchema());
  ASSERT_TRUE(dim.AddMember("neighborhood", Value("Orphan")).ok());
  Status s = dim.CheckConsistency();
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(DimensionInstanceTest, ConsistencyAcceptsComplete) {
  DimensionInstance dim(GeoSchema());
  ASSERT_TRUE(dim.AddRollup("neighborhood", Value("B"), "city",
                            Value("A")).ok());
  ASSERT_TRUE(
      dim.AddRollup("city", Value("A"), "country", Value("BE")).ok());
  EXPECT_TRUE(dim.CheckConsistency().ok());
}

TEST(DimensionInstanceTest, UnknownLevels) {
  DimensionInstance dim(GeoSchema());
  EXPECT_TRUE(dim.AddMember("bogus", Value(1)).IsNotFound());
  EXPECT_TRUE(dim.Members("bogus").status().IsNotFound());
  EXPECT_TRUE(dim.AddRollup("neighborhood", Value("x"), "country", Value("y"))
                  .IsInvalidArgument());  // No direct edge.
}

FactTable SalesTable() {
  FactTable t = FactTable::Make({"city", "product"}, {"amount"});
  EXPECT_TRUE(t.Append({Value("Antwerp"), Value("beer"), Value(10.0)}).ok());
  EXPECT_TRUE(t.Append({Value("Antwerp"), Value("fries"), Value(5.0)}).ok());
  EXPECT_TRUE(t.Append({Value("Brussels"), Value("beer"), Value(7.0)}).ok());
  EXPECT_TRUE(t.Append({Value("Brussels"), Value("beer"), Value(3.0)}).ok());
  return t;
}

TEST(FactTableTest, SchemaAndAppend) {
  FactTable t = SalesTable();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_TRUE(t.Append({Value(1)}).IsInvalidArgument());
  EXPECT_EQ(t.At(0, "amount").ValueOrDie(), Value(10.0));
  EXPECT_TRUE(t.At(9, "amount").status().IsOutOfRange());
  EXPECT_TRUE(t.At(0, "bogus").status().IsNotFound());
}

TEST(FactTableTest, FilterProjectDistinct) {
  FactTable t = SalesTable();
  FactTable antwerp = t.Filter(
      [](const Row& r) { return r[0] == Value("Antwerp"); });
  EXPECT_EQ(antwerp.num_rows(), 2u);

  auto projected = t.Project({"city"}).ValueOrDie();
  EXPECT_EQ(projected.num_rows(), 4u);
  auto distinct = t.ProjectDistinct({"city"}).ValueOrDie();
  EXPECT_EQ(distinct.num_rows(), 2u);

  auto values = t.DistinctValues("product").ValueOrDie();
  EXPECT_EQ(values.size(), 2u);
}

TEST(AggregateTest, AllFunctions) {
  FactTable t = SalesTable();
  EXPECT_EQ(AggregateScalar(t, AggFunction::kCount, "amount").ValueOrDie(),
            Value(int64_t{4}));
  EXPECT_EQ(AggregateScalar(t, AggFunction::kSum, "amount").ValueOrDie(),
            Value(25.0));
  EXPECT_EQ(AggregateScalar(t, AggFunction::kAvg, "amount").ValueOrDie(),
            Value(6.25));
  EXPECT_EQ(AggregateScalar(t, AggFunction::kMin, "amount").ValueOrDie(),
            Value(3.0));
  EXPECT_EQ(AggregateScalar(t, AggFunction::kMax, "amount").ValueOrDie(),
            Value(10.0));
  EXPECT_EQ(
      AggregateScalar(t, AggFunction::kCountDistinct, "city").ValueOrDie(),
      Value(int64_t{2}));
}

TEST(AggregateTest, GroupBy) {
  FactTable t = SalesTable();
  auto grouped =
      Aggregate(t, {"city"}, AggFunction::kSum, "amount").ValueOrDie();
  ASSERT_EQ(grouped.num_rows(), 2u);
  // Ordered map => deterministic order (Antwerp < Brussels).
  EXPECT_EQ(grouped.row(0)[0], Value("Antwerp"));
  EXPECT_EQ(grouped.row(0)[1], Value(15.0));
  EXPECT_EQ(grouped.row(1)[1], Value(10.0));
}

TEST(AggregateTest, GroupByTwoKeys) {
  FactTable t = SalesTable();
  auto grouped =
      Aggregate(t, {"city", "product"}, AggFunction::kCount, "amount")
          .ValueOrDie();
  EXPECT_EQ(grouped.num_rows(), 3u);
}

TEST(AggregateTest, EmptyInput) {
  FactTable t = FactTable::Make({"k"}, {"v"});
  EXPECT_EQ(AggregateScalar(t, AggFunction::kCount, "v").ValueOrDie(),
            Value(int64_t{0}));
  EXPECT_TRUE(AggregateScalar(t, AggFunction::kSum, "v").ValueOrDie().is_null());
  auto grouped = Aggregate(t, {"k"}, AggFunction::kSum, "v").ValueOrDie();
  EXPECT_EQ(grouped.num_rows(), 0u);
}

TEST(AggregateTest, TypeErrors) {
  FactTable t = FactTable::Make({"k"}, {"v"});
  ASSERT_TRUE(t.Append({Value("a"), Value("not numeric")}).ok());
  EXPECT_TRUE(
      AggregateScalar(t, AggFunction::kSum, "v").status().IsTypeError());
  EXPECT_TRUE(AggregateScalar(t, AggFunction::kCount, "v").ok());
}

TEST(AggregateTest, ParseNames) {
  EXPECT_EQ(AggFunctionFromString("sum").ValueOrDie(), AggFunction::kSum);
  EXPECT_EQ(AggFunctionFromString("COUNT DISTINCT").ValueOrDie(),
            AggFunction::kCountDistinct);
  EXPECT_TRUE(AggFunctionFromString("median").status().IsParseError());
}

TEST(CubeTest, RollUpAlongHierarchy) {
  auto dim = std::make_shared<DimensionInstance>(GeoSchema());
  ASSERT_TRUE(dim->AddRollup("city", Value("Antwerp"), "country",
                             Value("Belgium")).ok());
  ASSERT_TRUE(dim->AddRollup("city", Value("Brussels"), "country",
                             Value("Belgium")).ok());
  ASSERT_TRUE(dim->AddRollup("country", Value("Belgium"),
                             DimensionSchema::kAll, Value("all")).ok());

  Cube cube(SalesTable(), {{"city", dim, "city"}});
  ASSERT_TRUE(cube.Validate().ok());

  auto rolled =
      cube.RollUp("city", "country", AggFunction::kSum, "amount").ValueOrDie();
  // Grouped by (country, product): Belgium/beer = 20, Belgium/fries = 5.
  ASSERT_EQ(rolled.num_rows(), 2u);
  EXPECT_EQ(rolled.row(0)[0], Value("Belgium"));
}

TEST(CubeTest, ValidateCatchesUnknownMember) {
  auto dim = std::make_shared<DimensionInstance>(GeoSchema());
  ASSERT_TRUE(dim->AddMember("city", Value("Antwerp")).ok());
  Cube cube(SalesTable(), {{"city", dim, "city"}});
  EXPECT_TRUE(cube.Validate().IsInvalidArgument());  // "Brussels" missing.
}

TEST(CubeTest, SliceAndDice) {
  auto dim = std::make_shared<DimensionInstance>(GeoSchema());
  ASSERT_TRUE(dim->AddMember("city", Value("Antwerp")).ok());
  ASSERT_TRUE(dim->AddMember("city", Value("Brussels")).ok());
  Cube cube(SalesTable(), {{"city", dim, "city"}});

  auto sliced = cube.Slice("city", Value("Antwerp")).ValueOrDie();
  EXPECT_EQ(sliced.base().num_rows(), 2u);
  EXPECT_FALSE(sliced.base().HasColumn("city"));
  EXPECT_TRUE(sliced.bindings().empty());

  auto diced = cube.Dice("product", {Value("beer")}).ValueOrDie();
  EXPECT_EQ(diced.base().num_rows(), 3u);
  EXPECT_TRUE(diced.base().HasColumn("city"));
}

}  // namespace
}  // namespace piet::olap
