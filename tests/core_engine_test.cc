#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "core/queries.h"
#include "olap/aggregate.h"
#include "temporal/calendar.h"
#include "workload/city.h"
#include "workload/scenario.h"
#include "workload/trajectories.h"

namespace piet::core {
namespace {

using moving::ObjectId;
using olap::FactTable;
using queries::PerHourResult;
using temporal::TimePoint;
using workload::Figure1Scenario;

class Figure1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = workload::BuildFigure1Scenario();
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = std::move(scenario).ValueOrDie();
    ASSERT_TRUE(
        scenario_.db->BuildOverlay({scenario_.neighborhoods_layer}).ok());
  }

  GeometryPredicate LowIncome() const {
    return GeometryPredicate::AttributeLess("income",
                                            scenario_.income_threshold);
  }

  TimePredicate Morning() const {
    TimePredicate when;
    when.RollupEquals("timeOfDay", Value("Morning"));
    return when;
  }

  Figure1Scenario scenario_;
};

TEST_F(Figure1Test, Remark1HeadlineIsFourThirds) {
  QueryEngine engine(scenario_.db.get());
  for (Strategy strategy :
       {Strategy::kNaive, Strategy::kIndexed, Strategy::kOverlay}) {
    auto result = queries::CountPerHourInRegion(
        engine, scenario_.moft_name, scenario_.neighborhoods_layer,
        LowIncome(), Morning(), strategy);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.ValueOrDie().tuple_count, 4);
    EXPECT_EQ(result.ValueOrDie().hour_count, 3);
    EXPECT_DOUBLE_EQ(result.ValueOrDie().per_hour, 4.0 / 3.0)
        << StrategyToString(strategy);
  }
}

TEST_F(Figure1Test, Remark1SurvivesReplication) {
  // Cloning the day pattern keeps the rate at exactly 4/3 (4k tuples over
  // 3k hours).
  auto big = workload::BuildFigure1Scenario(/*replication=*/7);
  ASSERT_TRUE(big.ok());
  QueryEngine engine(big.ValueOrDie().db.get());
  auto result = queries::CountPerHourInRegion(
      engine, "FMbus", "Ln",
      GeometryPredicate::AttributeLess("income", 1500.0), Morning(),
      Strategy::kIndexed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().tuple_count, 28);
  EXPECT_EQ(result.ValueOrDie().hour_count, 21);
  EXPECT_DOUBLE_EQ(result.ValueOrDie().per_hour, 4.0 / 3.0);
}

TEST_F(Figure1Test, RegionTuplesMatchPaperNarrative) {
  QueryEngine engine(scenario_.db.get());
  auto region =
      engine.SampleRegion(scenario_.moft_name, scenario_.neighborhoods_layer,
                          LowIncome(), Morning(), Strategy::kNaive);
  ASSERT_TRUE(region.ok());
  // Exactly O1 (3 samples) and O2 (1 sample) qualify.
  std::set<int64_t> oids;
  for (const auto& row : region.ValueOrDie().rows()) {
    oids.insert(row[0].AsIntUnchecked());
  }
  EXPECT_EQ(oids, (std::set<int64_t>{scenario_.o1, scenario_.o2}));
  EXPECT_EQ(region.ValueOrDie().num_rows(), 4u);
}

TEST_F(Figure1Test, O1StaysInsideLowIncomeRegion) {
  QueryEngine engine(scenario_.db.get());
  auto always = engine.ObjectsAlwaysWithin(
      scenario_.moft_name, scenario_.neighborhoods_layer, LowIncome(),
      TimePredicate(), /*trajectory_semantics=*/false);
  ASSERT_TRUE(always.ok());
  EXPECT_EQ(always.ValueOrDie(), std::vector<ObjectId>{scenario_.o1});
  // Trajectory semantics agrees for O1 (its whole LIT stays inside).
  auto traj_always = engine.ObjectsAlwaysWithin(
      scenario_.moft_name, scenario_.neighborhoods_layer, LowIncome(),
      TimePredicate(), /*trajectory_semantics=*/true);
  ASSERT_TRUE(traj_always.ok());
  EXPECT_EQ(traj_always.ValueOrDie(), std::vector<ObjectId>{scenario_.o1});
}

TEST_F(Figure1Test, O6DriveByOnlyVisibleToTrajectorySemantics) {
  QueryEngine engine(scenario_.db.get());
  // Sample semantics: O6 never qualifies.
  auto sampled =
      engine.SampleRegion(scenario_.moft_name, scenario_.neighborhoods_layer,
                          LowIncome(), TimePredicate(), Strategy::kIndexed);
  ASSERT_TRUE(sampled.ok());
  for (const auto& row : sampled.ValueOrDie().rows()) {
    EXPECT_NE(row[0].AsIntUnchecked(), scenario_.o6);
  }
  // Trajectory semantics: O6's leg crosses the low-income neighborhood.
  auto intervals = engine.TrajectoryRegion(
      scenario_.moft_name, scenario_.neighborhoods_layer, LowIncome(),
      TimePredicate());
  ASSERT_TRUE(intervals.ok());
  bool o6_found = false;
  for (const auto& row : intervals.ValueOrDie().rows()) {
    if (row[0].AsIntUnchecked() == scenario_.o6) {
      o6_found = true;
      double enter = row[2].AsDoubleUnchecked();
      double leave = row[3].AsDoubleUnchecked();
      EXPECT_GT(leave, enter);
    }
  }
  EXPECT_TRUE(o6_found);
}

TEST_F(Figure1Test, SnapshotCountsAtInstant) {
  QueryEngine engine(scenario_.db.get());
  // At 07:00 of day 0 (table t=3): O1 at (70,20) in N1; O2 at (60,20) in N1;
  // O5 at (60,60) in N4; O6 at (90,30) in N2.
  TimePoint t = temporal::ParseTimePoint("2006-01-02 07:00").ValueOrDie();
  auto count = queries::SnapshotCountInRegion(
      engine, scenario_.moft_name, scenario_.neighborhoods_layer,
      "neighborhood", Value("N1"), t);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.ValueOrDie(), 2);

  // Between samples (06:30): O1 interpolates to (55, 12.5) in N1; O2 to
  // (40, 20) on the N0/N1 border (belongs to both, counts); O6 to (60, 40)
  // on the N1 border.
  TimePoint mid = temporal::ParseTimePoint("2006-01-02 06:30").ValueOrDie();
  auto mid_count = queries::SnapshotCountInRegion(
      engine, scenario_.moft_name, scenario_.neighborhoods_layer,
      "neighborhood", Value("N1"), mid);
  ASSERT_TRUE(mid_count.ok());
  EXPECT_EQ(mid_count.ValueOrDie(), 3);
}

TEST_F(Figure1Test, TimeSpentInRegionQuery5) {
  QueryEngine engine(scenario_.db.get());
  auto stay = queries::TimeSpentInRegion(
      engine, scenario_.moft_name, scenario_.neighborhoods_layer,
      "neighborhood", Value("N1"), TimePredicate());
  ASSERT_TRUE(stay.ok()) << stay.status().ToString();
  // O1 spends its whole domain (3h) inside N1; O2 some interior stretch of
  // its 2h window; O6 a short crossing.
  EXPECT_GT(stay.ValueOrDie().total_seconds, 3.0 * 3600.0);
  EXPECT_GE(stay.ValueOrDie().visits, 3);
  EXPECT_DOUBLE_EQ(stay.ValueOrDie().longest_stay_seconds, 3.0 * 3600.0);
}

TEST_F(Figure1Test, ObjectsInNamedRegionQuery1) {
  QueryEngine engine(scenario_.db.get());
  TimePredicate monday_morning = Morning();
  monday_morning.RollupEquals("dayOfWeek", Value("Monday"));
  auto count = queries::CountObjectsInRegion(
      engine, scenario_.moft_name, scenario_.neighborhoods_layer,
      "neighborhood", Value("N1"), monday_morning, Strategy::kIndexed);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.ValueOrDie(), 2);  // O1 and O2.
  // Tuesday: nothing.
  TimePredicate tuesday;
  tuesday.RollupEquals("dayOfWeek", Value("Tuesday"));
  auto none = queries::CountObjectsInRegion(
      engine, scenario_.moft_name, scenario_.neighborhoods_layer,
      "neighborhood", Value("N1"), tuesday, Strategy::kIndexed);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.ValueOrDie(), 0);
}

TEST_F(Figure1Test, CompletelyWithinQuery3) {
  QueryEngine engine(scenario_.db.get());
  // High-income region: everything except N1. O3, O4, O5 are always in
  // high-income cells; O6's samples are too, but its trajectory dips into
  // N1 — trajectory semantics must exclude it.
  GeometryPredicate high =
      GeometryPredicate::AttributeGreaterEq("income", 1500.0);
  auto sample_count = queries::CountObjectsCompletelyWithin(
      engine, scenario_.moft_name, scenario_.neighborhoods_layer, high,
      TimePredicate(), /*trajectory_semantics=*/false);
  ASSERT_TRUE(sample_count.ok());
  EXPECT_EQ(sample_count.ValueOrDie(), 4);  // O3, O4, O5, O6.

  auto traj_count = queries::CountObjectsCompletelyWithin(
      engine, scenario_.moft_name, scenario_.neighborhoods_layer, high,
      TimePredicate(), /*trajectory_semantics=*/true);
  ASSERT_TRUE(traj_count.ok());
  EXPECT_EQ(traj_count.ValueOrDie(), 3);  // O6 excluded.
}

TEST_F(Figure1Test, NearSchoolsQuery6SampleVsInterpolated) {
  QueryEngine engine(scenario_.db.get());
  // School S1 at (70,25): O1's t=3 sample (70,20) is within 10.
  auto sampled = queries::CountNearNodesPerHour(
      engine, scenario_.moft_name, scenario_.schools_layer, 10.0,
      TimePredicate(), /*interpolated=*/false);
  ASSERT_TRUE(sampled.ok());
  auto interpolated = queries::CountNearNodesPerHour(
      engine, scenario_.moft_name, scenario_.schools_layer, 10.0,
      TimePredicate(), /*interpolated=*/true);
  ASSERT_TRUE(interpolated.ok());
  // Interpolation can only see more (object, hour) pairs.
  EXPECT_GE(interpolated.ValueOrDie().tuple_count,
            sampled.ValueOrDie().tuple_count);
  EXPECT_GT(sampled.ValueOrDie().tuple_count, 0);
}

TEST_F(Figure1Test, WaitingAtStopQuery7) {
  QueryEngine engine(scenario_.db.get());
  // Reuse the school S0 at (20,20) as the "stop": O2's t=2 sample sits
  // exactly there (hour 06:00).
  auto table = queries::WaitingAtStopPerMinute(
      engine, scenario_.moft_name, scenario_.schools_layer, "school",
      Value("S0"), /*radius=*/4.0, TimePredicate());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table.ValueOrDie().num_rows(), 1u);
  EXPECT_EQ(table.ValueOrDie().At(0, "minute").ValueOrDie(),
            Value("2006-01-02 06:00"));
  EXPECT_EQ(table.ValueOrDie().At(0, "waiting").ValueOrDie(),
            Value(int64_t{1}));
  // Unknown stop member.
  EXPECT_TRUE(queries::WaitingAtStopPerMinute(
                  engine, scenario_.moft_name, scenario_.schools_layer,
                  "school", Value("S9"), 4.0, TimePredicate())
                  .status()
                  .IsNotFound());
}

TEST_F(Figure1Test, MaxStreetDensityQuery2) {
  QueryEngine engine(scenario_.db.get());
  // Street H0 runs along y=20 where O1/O2 samples sit.
  for (auto interp : {queries::DensityInterpretation::kPerStreet,
                      queries::DensityInterpretation::kPerStreetInstant,
                      queries::DensityInterpretation::kCityWide}) {
    auto result = queries::MaxStreetDensity(engine, scenario_.moft_name,
                                            scenario_.streets_layer, 1.0,
                                            TimePredicate(), interp);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result.ValueOrDie().density, 0.0);
  }
}

TEST_F(Figure1Test, EngineStatsReflectStrategyWork) {
  QueryEngine engine(scenario_.db.get());
  ASSERT_TRUE(engine
                  .SampleRegion(scenario_.moft_name,
                                scenario_.neighborhoods_layer,
                                GeometryPredicate::All(), TimePredicate(),
                                Strategy::kNaive)
                  .ok());
  size_t naive_tests = engine.stats().point_tests;
  ASSERT_TRUE(engine
                  .SampleRegion(scenario_.moft_name,
                                scenario_.neighborhoods_layer,
                                GeometryPredicate::All(), TimePredicate(),
                                Strategy::kIndexed)
                  .ok());
  size_t indexed_tests = engine.stats().point_tests;
  EXPECT_GT(naive_tests, indexed_tests);
}

TEST_F(Figure1Test, ErrorPaths) {
  QueryEngine engine(scenario_.db.get());
  EXPECT_TRUE(engine
                  .SampleRegion("NoSuchMoft", scenario_.neighborhoods_layer,
                                GeometryPredicate::All(), TimePredicate(),
                                Strategy::kNaive)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(engine
                  .SampleRegion(scenario_.moft_name, "NoSuchLayer",
                                GeometryPredicate::All(), TimePredicate(),
                                Strategy::kNaive)
                  .status()
                  .IsNotFound());
  // SampleRegion on a polyline layer is rejected.
  EXPECT_TRUE(engine
                  .SampleRegion(scenario_.moft_name, scenario_.streets_layer,
                                GeometryPredicate::All(), TimePredicate(),
                                Strategy::kNaive)
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Strategy-agreement property on randomized city workloads.
// ---------------------------------------------------------------------------

class StrategyAgreement : public ::testing::TestWithParam<int> {};

TEST_P(StrategyAgreement, AllStrategiesReturnIdenticalRegions) {
  workload::CityConfig city_config;
  city_config.seed = 9000 + GetParam();
  city_config.grid_cols = 6;
  city_config.grid_rows = 6;
  auto city = workload::GenerateCity(city_config);
  ASSERT_TRUE(city.ok()) << city.status().ToString();

  workload::TrajectoryConfig traj_config;
  traj_config.seed = 70 + GetParam();
  traj_config.num_objects = 25;
  traj_config.duration = 2 * 3600.0;
  traj_config.sample_period = 120.0;
  traj_config.speed = 5.0;
  auto moft =
      workload::GenerateTrajectories(city.ValueOrDie(), traj_config);
  ASSERT_TRUE(moft.ok());

  core::GeoOlapDatabase& db = *city.ValueOrDie().db;
  ASSERT_TRUE(db.AddMoft("cars", std::move(moft).ValueOrDie()).ok());
  ASSERT_TRUE(
      db.BuildOverlay({city.ValueOrDie().neighborhoods_layer}).ok());

  QueryEngine engine(&db);
  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);

  auto canonical = [](const FactTable& t) {
    std::multiset<std::vector<std::string>> rows;
    for (const auto& row : t.rows()) {
      std::vector<std::string> r;
      for (const auto& v : row) {
        r.push_back(v.ToString());
      }
      rows.insert(std::move(r));
    }
    return rows;
  };

  auto naive = engine.SampleRegion("cars",
                                   city.ValueOrDie().neighborhoods_layer, low,
                                   TimePredicate(), Strategy::kNaive);
  auto indexed = engine.SampleRegion(
      "cars", city.ValueOrDie().neighborhoods_layer, low, TimePredicate(),
      Strategy::kIndexed);
  auto overlay = engine.SampleRegion(
      "cars", city.ValueOrDie().neighborhoods_layer, low, TimePredicate(),
      Strategy::kOverlay);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(overlay.ok());
  EXPECT_EQ(canonical(naive.ValueOrDie()), canonical(indexed.ValueOrDie()));
  EXPECT_EQ(canonical(naive.ValueOrDie()), canonical(overlay.ValueOrDie()));
  EXPECT_GT(naive.ValueOrDie().num_rows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyAgreement, ::testing::Range(0, 5));

}  // namespace
}  // namespace piet::core
