#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/model_check.h"
#include "geometry/polygon.h"
#include "gis/fact_table.h"
#include "gis/instance.h"
#include "gis/layer.h"
#include "gis/schema.h"
#include "moving/moft.h"
#include "moving/trajectory.h"
#include "workload/scenario.h"

namespace piet::analysis {
namespace {

using geometry::MakeRectangle;
using gis::GeometryKind;
using gis::Layer;

using KindEdge = std::pair<GeometryKind, GeometryKind>;

TEST(DiagnosticListTest, SeveritiesAndStatus) {
  DiagnosticList list;
  EXPECT_TRUE(list.empty());
  EXPECT_TRUE(list.ToStatus().ok());

  list.AddWarning("traj-speed-bound", "moft 'M' oid 1", "fast leg");
  EXPECT_FALSE(list.HasErrors());
  EXPECT_TRUE(list.ToStatus().ok());

  list.AddError("moft-time-monotonic", "moft 'M' oid 2", "t went backwards");
  EXPECT_TRUE(list.HasErrors());
  EXPECT_EQ(list.NumErrors(), 1u);
  EXPECT_TRUE(list.Has("moft-time-monotonic"));
  EXPECT_FALSE(list.Has("overlay-partition"));

  Status status = list.ToStatus();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("moft-time-monotonic"), std::string::npos);
  EXPECT_NE(status.message().find("moft 'M' oid 2"), std::string::npos);

  list.DowngradeErrorsToWarnings();
  EXPECT_FALSE(list.HasErrors());
  EXPECT_TRUE(list.ToStatus().ok());
  EXPECT_EQ(list.size(), 2u);  // Downgrading keeps the findings.
}

TEST(ModelCheckTest, Figure1DatabaseIsClean) {
  auto scenario = workload::BuildFigure1Scenario();
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  DiagnosticList diags = scenario.ValueOrDie().db->CheckAll();
  EXPECT_TRUE(diags.empty()) << diags.ToString();
}

TEST(ModelCheckTest, GraphCycleFires) {
  ModelChecker checker;
  DiagnosticList out;
  std::vector<KindEdge> edges = {
      {GeometryKind::kNode, GeometryKind::kPolygon},
      {GeometryKind::kPolygon, GeometryKind::kNode},
  };
  checker.CheckGraphEdges("layer 'L'", edges, &out);
  EXPECT_TRUE(out.Has("schema-graph-acyclic")) << out.ToString();
}

TEST(ModelCheckTest, GraphSourceAndSinkFire) {
  ModelChecker checker;
  DiagnosticList out;
  // point has an incoming edge and nothing reaches All: both Def. 1
  // distinguished-node conditions are violated.
  std::vector<KindEdge> edges = {{GeometryKind::kPolygon, GeometryKind::kPoint}};
  checker.CheckGraphEdges("layer 'L'", edges, &out);
  EXPECT_TRUE(out.Has("schema-graph-source")) << out.ToString();
  EXPECT_TRUE(out.Has("schema-graph-sink")) << out.ToString();

  DiagnosticList sink_only;
  std::vector<KindEdge> all_outgoing = {
      {GeometryKind::kPoint, GeometryKind::kAll},
      {GeometryKind::kAll, GeometryKind::kPoint},
  };
  checker.CheckGraphEdges("layer 'L'", all_outgoing, &sink_only);
  // A cycle through All is reported as the cycle, which subsumes the rest.
  EXPECT_TRUE(sink_only.Has("schema-graph-acyclic")) << sink_only.ToString();
}

TEST(ModelCheckTest, CanonicalGraphsAreClean) {
  ModelChecker checker;
  DiagnosticList out;
  checker.CheckGraphEdges("polygon", gis::GeometryGraph::PolygonLayerGraph().edges(), &out);
  checker.CheckGraphEdges("polyline", gis::GeometryGraph::PolylineLayerGraph().edges(), &out);
  checker.CheckGraphEdges("node", gis::GeometryGraph::NodeLayerGraph().edges(), &out);
  EXPECT_TRUE(out.empty()) << out.ToString();
}

TEST(ModelCheckTest, RollupViolationsFire) {
  gis::GisDimensionSchema schema;
  ASSERT_TRUE(
      schema.AddLayerGraph("L", gis::GeometryGraph::PolylineLayerGraph()).ok());
  gis::GisDimensionInstance instance(std::move(schema));
  auto lines = std::make_shared<Layer>("L", GeometryKind::kLine);
  gis::GeometryId a =
      lines->AddPolyline(geometry::Polyline({{0, 0}, {1, 0}})).ValueOrDie();
  gis::GeometryId b =
      lines->AddPolyline(geometry::Polyline({{1, 0}, {2, 0}})).ValueOrDie();
  ASSERT_TRUE(instance.AddLayer(lines).ok());

  // a -> {100, 101}: not a function. b has no image: not total. 99 is not an
  // element of L: dangling.
  ASSERT_TRUE(instance
                  .AddGeometryRollup("L", GeometryKind::kLine, a,
                                     GeometryKind::kPolyline, 100)
                  .ok());
  ASSERT_TRUE(instance
                  .AddGeometryRollup("L", GeometryKind::kLine, a,
                                     GeometryKind::kPolyline, 101)
                  .ok());
  ASSERT_TRUE(instance
                  .AddGeometryRollup("L", GeometryKind::kLine, 99,
                                     GeometryKind::kPolyline, 100)
                  .ok());
  (void)b;

  ModelChecker checker;
  DiagnosticList out;
  checker.CheckInstance(instance, &out);
  EXPECT_TRUE(out.Has("rollup-functional")) << out.ToString();
  EXPECT_TRUE(out.Has("rollup-total")) << out.ToString();
  EXPECT_TRUE(out.Has("rollup-dangling")) << out.ToString();
}

TEST(ModelCheckTest, MissingLayerInstanceFires) {
  gis::GisDimensionSchema schema;
  ASSERT_TRUE(
      schema.AddLayerGraph("Ln", gis::GeometryGraph::PolygonLayerGraph()).ok());
  gis::GisDimensionInstance instance(std::move(schema));

  ModelChecker checker;
  DiagnosticList out;
  checker.CheckInstance(instance, &out);
  EXPECT_TRUE(out.Has("instance-layer-missing")) << out.ToString();
}

TEST(ModelCheckTest, SampleStreamViolationsFire) {
  ModelChecker checker;
  DiagnosticList out;
  std::vector<moving::Sample> samples = {
      {1, temporal::TimePoint(1.0), {0, 0}},
      {1, temporal::TimePoint(1.0), {5, 5}},  // duplicate (Oid, t)
      {1, temporal::TimePoint(0.5), {6, 6}},  // time went backwards
      {2,
       temporal::TimePoint(2.0),
       {std::numeric_limits<double>::quiet_NaN(), 0}},  // non-finite
  };
  checker.CheckSamples("moft 'M'", samples, &out);
  EXPECT_TRUE(out.Has("moft-duplicate-sample")) << out.ToString();
  EXPECT_TRUE(out.Has("moft-time-monotonic")) << out.ToString();
  EXPECT_TRUE(out.Has("moft-finite-coords")) << out.ToString();
  // Interleaved objects are tracked independently: oid 2's single sample
  // raises no ordering diagnostics.
  EXPECT_EQ(out.NumErrors(), 3u) << out.ToString();
}

TEST(ModelCheckTest, NonFiniteCoordsFireOnRealMoft) {
  // Moft::Add enforces ordering and duplicates, but NaN positions get
  // through — exactly the corruption CheckMoft must catch.
  moving::Moft moft;
  ASSERT_TRUE(moft.Add(1, temporal::TimePoint(0.0), {0, 0}).ok());
  ASSERT_TRUE(moft.Add(1, temporal::TimePoint(1.0),
                       {std::numeric_limits<double>::quiet_NaN(), 2.0})
                  .ok());

  ModelChecker checker;
  DiagnosticList out;
  checker.CheckMoft("FMbus", moft, &out);
  EXPECT_TRUE(out.Has("moft-finite-coords")) << out.ToString();
}

TEST(ModelCheckTest, TrajectoryContinuityFires) {
  ModelChecker checker;
  DiagnosticList out;
  std::vector<moving::TimedPoint> backwards = {
      {temporal::TimePoint(2.0), {0, 0}},
      {temporal::TimePoint(1.0), {1, 1}},
  };
  checker.CheckTrajectory("moft 'M' oid 1", backwards, &out);
  EXPECT_TRUE(out.Has("traj-continuity")) << out.ToString();

  DiagnosticList jump;
  std::vector<moving::TimedPoint> teleport = {
      {temporal::TimePoint(1.0), {0, 0}},
      {temporal::TimePoint(1.0), {10, 0}},
  };
  checker.CheckTrajectory("moft 'M' oid 2", teleport, &jump);
  EXPECT_TRUE(jump.Has("traj-continuity")) << jump.ToString();
}

TEST(ModelCheckTest, SpeedBoundIsAWarning) {
  ModelCheckOptions options;
  options.max_speed = 10.0;
  ModelChecker checker(options);
  DiagnosticList out;
  std::vector<moving::TimedPoint> fast = {
      {temporal::TimePoint(0.0), {0, 0}},
      {temporal::TimePoint(1.0), {100, 0}},  // 100 units/s
  };
  checker.CheckTrajectory("moft 'M' oid 1", fast, &out);
  ASSERT_TRUE(out.Has("traj-speed-bound")) << out.ToString();
  EXPECT_FALSE(out.HasErrors());  // Implausible, not ill-formed.

  // Within the bound: silent.
  DiagnosticList ok;
  std::vector<moving::TimedPoint> slow = {
      {temporal::TimePoint(0.0), {0, 0}},
      {temporal::TimePoint(1.0), {5, 0}},
  };
  checker.CheckTrajectory("moft 'M' oid 1", slow, &ok);
  EXPECT_TRUE(ok.empty()) << ok.ToString();
}

TEST(ModelCheckTest, OverlayViolationsFire) {
  ModelChecker checker;
  DiagnosticList out;
  // Two unit squares overlapping on [0.5, 1] x [0, 1].
  std::vector<geometry::Polygon> overlapping = {
      MakeRectangle(0, 0, 1, 1),
      MakeRectangle(0.5, 0, 1.5, 1),
  };
  checker.CheckOverlayCells("overlay", overlapping, /*expected_area=*/-1.0,
                            &out);
  EXPECT_TRUE(out.Has("overlay-partition")) << out.ToString();

  DiagnosticList area;
  std::vector<geometry::Polygon> disjoint = {
      MakeRectangle(0, 0, 1, 1),
      MakeRectangle(2, 0, 3, 1),
  };
  checker.CheckOverlayCells("overlay", disjoint, /*expected_area=*/5.0, &area);
  EXPECT_TRUE(area.Has("overlay-area-conservation")) << area.ToString();

  DiagnosticList clean;
  checker.CheckOverlayCells("overlay", disjoint, /*expected_area=*/2.0,
                            &clean);
  EXPECT_TRUE(clean.empty()) << clean.ToString();
}

TEST(ModelCheckTest, FactTableTotalityFires) {
  Layer layer("Ln", GeometryKind::kPolygon);
  gis::GeometryId a = layer.AddPolygon(MakeRectangle(0, 0, 1, 1)).ValueOrDie();
  gis::GeometryId b = layer.AddPolygon(MakeRectangle(1, 0, 2, 1)).ValueOrDie();
  gis::GisFactTable table(&layer, {"population"});
  ASSERT_TRUE(table.Set(a, {100.0}).ok());
  (void)b;  // b carries no fact.

  ModelChecker checker;
  DiagnosticList out;
  checker.CheckGisFactTable("pop", table, &out);
  ASSERT_TRUE(out.Has("fact-table-total")) << out.ToString();
  EXPECT_NE(out[0].entity.find("Ln"), std::string::npos);
}

TEST(ModelCheckTest, AtLeastSixDistinctCheckIdsDemonstrable) {
  // The acceptance bar: distinct check IDs must be demonstrably reachable
  // from corrupted inputs. Collect everything the tests above corrupt.
  ModelChecker checker;
  DiagnosticList out;
  checker.CheckGraphEdges("g",
                          {{GeometryKind::kNode, GeometryKind::kPolygon},
                           {GeometryKind::kPolygon, GeometryKind::kNode}},
                          &out);
  checker.CheckGraphEdges(
      "g2", {{GeometryKind::kPolygon, GeometryKind::kPoint}}, &out);
  checker.CheckSamples("m",
                       {{1, temporal::TimePoint(1.0), {0, 0}},
                        {1, temporal::TimePoint(1.0), {5, 5}},
                        {1, temporal::TimePoint(0.5), {6, 6}},
                        {2,
                         temporal::TimePoint(0.0),
                         {std::numeric_limits<double>::infinity(), 0}}},
                       &out);
  checker.CheckTrajectory("t",
                          {{temporal::TimePoint(2.0), {0, 0}},
                           {temporal::TimePoint(1.0), {1, 1}}},
                          &out);
  checker.CheckOverlayCells(
      "o", {MakeRectangle(0, 0, 1, 1), MakeRectangle(0.5, 0, 1.5, 1)},
      /*expected_area=*/10.0, &out);
  EXPECT_GE(out.CheckIds().size(), 6u) << out.ToString();
}

}  // namespace
}  // namespace piet::analysis
