#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/queries.h"
#include "gis/density.h"
#include "workload/scenario.h"

namespace piet::core {
namespace {

using workload::Figure1Scenario;

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = workload::BuildFigure1Scenario();
    ASSERT_TRUE(scenario.ok());
    scenario_ = std::move(scenario).ValueOrDie();
  }
  Figure1Scenario scenario_;
};

TEST_F(DatabaseTest, MoftRegistry) {
  GeoOlapDatabase& db = *scenario_.db;
  EXPECT_TRUE(db.GetMoft("FMbus").ok());
  EXPECT_TRUE(db.GetMoft("nope").status().IsNotFound());
  EXPECT_EQ(db.MoftNames(), std::vector<std::string>{"FMbus"});
  moving::Moft extra;
  ASSERT_TRUE(extra.Add(1, temporal::TimePoint(0), {0, 0}).ok());
  EXPECT_TRUE(db.AddMoft("FMbus", std::move(extra)).IsAlreadyExists());
}

TEST_F(DatabaseTest, FactTableRegistry) {
  GeoOlapDatabase& db = *scenario_.db;
  olap::FactTable facts = olap::FactTable::Make({"neighborhood"}, {"pop"});
  ASSERT_TRUE(facts.Append({Value("N0"), Value(1000.0)}).ok());
  ASSERT_TRUE(db.AddFactTable("population", std::move(facts)).ok());
  EXPECT_TRUE(db.GetFactTable("population").ok());
  EXPECT_TRUE(db.GetFactTable("missing").status().IsNotFound());
  olap::FactTable dup = olap::FactTable::Make({"x"}, {});
  EXPECT_TRUE(db.AddFactTable("population", std::move(dup)).IsAlreadyExists());
}

TEST_F(DatabaseTest, OverlayLifecycle) {
  GeoOlapDatabase& db = *scenario_.db;
  EXPECT_FALSE(db.HasOverlay());
  EXPECT_TRUE(db.overlay().status().IsNotFound());
  EXPECT_TRUE(db.OverlayLayerIndex("Ln").status().IsNotFound());

  ASSERT_TRUE(db.BuildOverlay({"Ln"}).ok());
  EXPECT_TRUE(db.HasOverlay());
  EXPECT_EQ(db.OverlayLayerIndex("Ln").ValueOrDie(), 0u);
  EXPECT_TRUE(db.OverlayLayerIndex("Lr").status().IsNotFound());

  // Building over a polyline layer fails.
  EXPECT_FALSE(db.BuildOverlay({"Lr"}).ok());
  // Unknown layer fails.
  EXPECT_TRUE(db.BuildOverlay({"Bogus"}).IsNotFound());
}

TEST_F(DatabaseTest, Type8TrajectoryAggregates) {
  GeoOlapDatabase& db = *scenario_.db;
  QueryEngine engine(&db);
  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);

  auto table = engine.TrajectoryAggregates("FMbus", "Ln", low);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  // O1 (entire trajectory), O2 (pass through), O6 (unsampled drive-by).
  std::set<int64_t> oids;
  for (const auto& row : table.ValueOrDie().rows()) {
    oids.insert(row[0].AsIntUnchecked());
  }
  EXPECT_EQ(oids, (std::set<int64_t>{1, 2, 6}));

  auto agg = queries::AggregateTrajectories(engine, "FMbus", "Ln", low);
  ASSERT_TRUE(agg.ok());
  const auto& a = agg.ValueOrDie();
  EXPECT_EQ(a.objects, 3);
  EXPECT_GT(a.total_distance, 0.0);
  // O1 alone contributes its full 3h domain.
  EXPECT_GT(a.total_seconds, 3 * 3600.0);
  EXPECT_GE(a.total_visits, 3);

  // O1's distance inside == its whole path length.
  auto moft = db.GetMoft("FMbus").ValueOrDie();
  auto o1 = moving::LinearTrajectory::FromSample(
                moving::TrajectorySample::FromMoft(*moft, 1).ValueOrDie())
                .ValueOrDie();
  double o1_inside = 0.0;
  for (const auto& row : table.ValueOrDie().rows()) {
    if (row[0].AsIntUnchecked() == 1) {
      o1_inside += row[2].AsDoubleUnchecked();
    }
  }
  EXPECT_NEAR(o1_inside, o1.Length(), 1e-9);
}

TEST_F(DatabaseTest, Type1SummableTotalMass) {
  GeoOlapDatabase& db = *scenario_.db;
  QueryEngine engine(&db);
  auto layer = db.gis().GetLayer("Ln").ValueOrDie();

  // Population density 2 people per unit area everywhere.
  gis::ConstantDensity density(2.0);
  auto low_mass = queries::TotalMassInRegions(
      engine, "Ln", GeometryPredicate::AttributeLess("income", 1500.0),
      density);
  ASSERT_TRUE(low_mass.ok());
  // N1 = 40x40 cell -> area 1600 -> mass 3200.
  EXPECT_DOUBLE_EQ(low_mass.ValueOrDie(), 3200.0);

  auto all_mass = queries::TotalMassInRegions(
      engine, "Ln", GeometryPredicate::All(), density);
  ASSERT_TRUE(all_mass.ok());
  EXPECT_DOUBLE_EQ(all_mass.ValueOrDie(), 2.0 * 120.0 * 80.0);
  (void)layer;
}

TEST_F(DatabaseTest, Type2NumericConditionInRegion) {
  // "Provinces crossed by a river with population above X": combine an
  // attribute condition with the geometric one. Here: low-income regions
  // containing a school.
  GeoOlapDatabase& db = *scenario_.db;
  QueryEngine engine(&db);
  auto schools = db.gis().GetLayer("Ls").ValueOrDie();
  GeometryPredicate has_school(
      [schools](const gis::Layer& layer, gis::GeometryId id) {
        auto pg = layer.GetPolygon(id);
        if (!pg.ok()) {
          return false;
        }
        for (gis::GeometryId s : schools->ids()) {
          auto p = schools->GetPoint(s);
          if (p.ok() && pg.ValueOrDie()->Contains(p.ValueOrDie())) {
            return true;
          }
        }
        return false;
      });
  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);
  auto ids = engine.QualifyingGeometries("Ln", low.And(has_school));
  ASSERT_TRUE(ids.ok());
  // Only N1 is low-income AND has the (70,25) school.
  ASSERT_EQ(ids.ValueOrDie().size(), 1u);
  EXPECT_EQ(ids.ValueOrDie()[0], scenario_.low_income_neighborhood);
}

TEST_F(DatabaseTest, MoveTransfersClassificationCache) {
  GeoOlapDatabase& db = *scenario_.db;
  ASSERT_TRUE(db.BuildOverlay({"Ln"}).ok());
  auto before = db.ClassifySamples("FMbus", "Ln");
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(db.classification_cache_size(), 1u);
  const uint64_t epoch = db.overlay_epoch();

  // Move construction: the cache entry, its epoch, and the overlay travel
  // together; the moved-from database keeps a valid-but-empty cache (its
  // MOFTs are gone, so surviving entries would dangle).
  GeoOlapDatabase moved(std::move(db));
  EXPECT_EQ(moved.classification_cache_size(), 1u);
  EXPECT_EQ(db.classification_cache_size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(moved.overlay_epoch(), epoch);

  // Move-then-use: the cached classification is served (same shared
  // block, no recomputation) and its sample view still reads the moved
  // MOFT's columns.
  auto after = moved.ClassifySamples("FMbus", "Ln");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.ValueOrDie().get(), before.ValueOrDie().get());
  const auto* moft = moved.GetMoft("FMbus").ValueOrDie();
  EXPECT_EQ(after.ValueOrDie()->samples.size(), moft->num_samples());

  // Queries against the moved-to database answer as before the move.
  QueryEngine engine(&moved);
  auto table = engine.TrajectoryAggregates(
      "FMbus", "Ln", GeometryPredicate::AttributeLess("income", 1500.0));
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  std::set<int64_t> oids;
  for (const auto& row : table.ValueOrDie().rows()) {
    oids.insert(row[0].AsIntUnchecked());
  }
  EXPECT_EQ(oids, (std::set<int64_t>{1, 2, 6}));

  // Move assignment transfers the cache the same way.
  auto scenario2 = workload::BuildFigure1Scenario();
  ASSERT_TRUE(scenario2.ok());
  GeoOlapDatabase& target = *scenario2.ValueOrDie().db;
  target = std::move(moved);
  EXPECT_EQ(target.classification_cache_size(), 1u);
  EXPECT_EQ(moved.classification_cache_size(), 0u);  // NOLINT(bugprone-use-after-move)
  auto assigned = target.ClassifySamples("FMbus", "Ln");
  ASSERT_TRUE(assigned.ok());
  EXPECT_EQ(assigned.ValueOrDie().get(), before.ValueOrDie().get());
}

TEST_F(DatabaseTest, WithinDistanceOfLayerPredicate) {
  // "Neighborhoods within distance d of the river": the river grazes the
  // northern row's bottom edge and the southern row's top edge, so at
  // d = 0 all six touch it except N1 (the river bows up to y=41 over N1's
  // x-range, staying 1 unit away at closest)... measure instead with a
  // small positive distance and an impossible one.
  QueryEngine engine(scenario_.db.get());
  GeometryPredicate near_river = GeometryPredicate::WithinDistanceOfLayer(
      &scenario_.db->gis(), "Lr", 2.0);
  auto ids = engine.QualifyingGeometries("Ln", near_river);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids.ValueOrDie().size(), 6u);  // Within 2 of the river: all.

  GeometryPredicate touching = GeometryPredicate::WithinDistanceOfLayer(
      &scenario_.db->gis(), "Lr", 0.0);
  auto touch_ids = engine.QualifyingGeometries("Ln", touching);
  ASSERT_TRUE(touch_ids.ok());
  // The river touches everything except N1 (it arcs above y=40 there).
  EXPECT_EQ(touch_ids.ValueOrDie().size(), 5u);
  for (auto id : touch_ids.ValueOrDie()) {
    EXPECT_NE(id, scenario_.low_income_neighborhood);
  }

  // Proximity to schools (node layer): N1 hosts the (70,25) school.
  GeometryPredicate near_school = GeometryPredicate::WithinDistanceOfLayer(
      &scenario_.db->gis(), "Ls", 0.0);
  auto school_ids = engine.QualifyingGeometries("Ln", near_school);
  ASSERT_TRUE(school_ids.ok());
  EXPECT_EQ(school_ids.ValueOrDie().size(), 3u);  // N0, N1, N5 host schools.

  // Unknown layer: predicate is false everywhere (no crash).
  GeometryPredicate bogus = GeometryPredicate::WithinDistanceOfLayer(
      &scenario_.db->gis(), "Nope", 10.0);
  EXPECT_EQ(engine.QualifyingGeometries("Ln", bogus).ValueOrDie().size(), 0u);
}

}  // namespace
}  // namespace piet::core
