#include <gtest/gtest.h>

#include <memory>

#include "gis/density.h"
#include "gis/instance.h"
#include "gis/layer.h"
#include "gis/schema.h"
#include "workload/scenario.h"

namespace piet::gis {
namespace {

using geometry::MakeRectangle;
using geometry::Point;
using geometry::Polyline;

TEST(LayerTest, KindEnforcement) {
  Layer polygons("pg", GeometryKind::kPolygon);
  EXPECT_TRUE(polygons.AddPoint({0, 0}).status().IsTypeError());
  EXPECT_TRUE(polygons
                  .AddPolyline(Polyline({{0, 0}, {1, 1}}))
                  .status()
                  .IsTypeError());
  EXPECT_TRUE(polygons.AddPolygon(MakeRectangle(0, 0, 1, 1)).ok());

  Layer nodes("nd", GeometryKind::kNode);
  EXPECT_TRUE(nodes.AddPoint({1, 2}).ok());
  EXPECT_TRUE(nodes.AddPolygon(MakeRectangle(0, 0, 1, 1)).status().IsTypeError());
}

TEST(LayerTest, AttributesRoundTrip) {
  Layer layer("pg", GeometryKind::kPolygon);
  GeometryId id = layer.AddPolygon(MakeRectangle(0, 0, 1, 1)).ValueOrDie();
  ASSERT_TRUE(layer.SetAttribute(id, "income", Value(1200.0)).ok());
  EXPECT_EQ(layer.GetAttribute(id, "income").ValueOrDie(), Value(1200.0));
  EXPECT_TRUE(layer.HasAttribute(id, "income"));
  EXPECT_FALSE(layer.HasAttribute(id, "pop"));
  EXPECT_TRUE(layer.GetAttribute(id, "pop").status().IsNotFound());
  EXPECT_TRUE(layer.SetAttribute(99, "x", Value(1)).IsNotFound());
}

TEST(LayerTest, GeometriesContaining) {
  Layer layer("pg", GeometryKind::kPolygon);
  GeometryId a = layer.AddPolygon(MakeRectangle(0, 0, 10, 10)).ValueOrDie();
  GeometryId b = layer.AddPolygon(MakeRectangle(10, 0, 20, 10)).ValueOrDie();
  GeometryId c = layer.AddPolygon(MakeRectangle(100, 100, 110, 110)).ValueOrDie();
  (void)c;

  auto hits = layer.GeometriesContaining({5, 5});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], a);

  // Shared border belongs to both (paper Example 1).
  auto border = layer.GeometriesContaining({10, 5});
  EXPECT_EQ(border.size(), 2u);

  EXPECT_TRUE(layer.GeometriesContaining({50, 50}).empty());
  (void)b;
}

TEST(LayerTest, GeometriesContainingAfterIncrementalAdd) {
  Layer layer("pg", GeometryKind::kPolygon);
  (void)layer.AddPolygon(MakeRectangle(0, 0, 1, 1));
  EXPECT_EQ(layer.GeometriesContaining({0.5, 0.5}).size(), 1u);
  // Adding invalidates and rebuilds the index.
  (void)layer.AddPolygon(MakeRectangle(0, 0, 2, 2));
  EXPECT_EQ(layer.GeometriesContaining({0.5, 0.5}).size(), 2u);
}

TEST(LayerTest, TotalMeasure) {
  Layer polygons("pg", GeometryKind::kPolygon);
  (void)polygons.AddPolygon(MakeRectangle(0, 0, 2, 2));
  (void)polygons.AddPolygon(MakeRectangle(5, 5, 6, 6));
  EXPECT_DOUBLE_EQ(polygons.TotalMeasure(), 5.0);

  Layer lines("pl", GeometryKind::kPolyline);
  (void)lines.AddPolyline(Polyline({{0, 0}, {3, 4}}));
  EXPECT_DOUBLE_EQ(lines.TotalMeasure(), 5.0);
}

TEST(GeometryGraphTest, CanonicalGraphsValidate) {
  EXPECT_TRUE(GeometryGraph::PolygonLayerGraph().Validate().ok());
  EXPECT_TRUE(GeometryGraph::PolylineLayerGraph().Validate().ok());
  EXPECT_TRUE(GeometryGraph::NodeLayerGraph().Validate().ok());
}

TEST(GeometryGraphTest, Def1Constraints) {
  GeometryGraph g;
  EXPECT_TRUE(g.AddEdge(GeometryKind::kPolygon, GeometryKind::kPoint)
                  .IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(GeometryKind::kAll, GeometryKind::kPolygon)
                  .IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(GeometryKind::kPolygon, GeometryKind::kPolygon)
                  .IsInvalidArgument());
  // Unreachable node fails validation.
  GeometryGraph h;
  ASSERT_TRUE(h.AddEdge(GeometryKind::kPoint, GeometryKind::kAll).ok());
  EXPECT_TRUE(h.Validate().ok());
}

TEST(GeometryGraphTest, RollsUpTransitive) {
  GeometryGraph g = GeometryGraph::PolylineLayerGraph();
  EXPECT_TRUE(g.RollsUp(GeometryKind::kPoint, GeometryKind::kPolyline));
  EXPECT_TRUE(g.RollsUp(GeometryKind::kLine, GeometryKind::kAll));
  EXPECT_FALSE(g.RollsUp(GeometryKind::kPolyline, GeometryKind::kLine));
}

TEST(Figure2SchemaTest, StructureMatchesPaper) {
  GisDimensionSchema schema = workload::BuildFigure2Schema();
  EXPECT_TRUE(schema.Validate().ok());

  // Layers Ln / Lr / Ls of Figure 2.
  auto ln = schema.GraphOf("Ln");
  ASSERT_TRUE(ln.ok());
  EXPECT_TRUE(
      ln.ValueOrDie()->RollsUp(GeometryKind::kPoint, GeometryKind::kPolygon));

  auto lr = schema.GraphOf("Lr");
  ASSERT_TRUE(lr.ok());
  EXPECT_TRUE(
      lr.ValueOrDie()->RollsUp(GeometryKind::kLine, GeometryKind::kPolyline));

  // Att bindings of Example 2.
  auto att = schema.AttOf("neighborhood");
  ASSERT_TRUE(att.ok());
  EXPECT_EQ(att.ValueOrDie().kind, GeometryKind::kPolygon);
  EXPECT_EQ(att.ValueOrDie().layer, "Ln");

  // Application dimension: neighborhood -> city.
  auto nb = schema.ApplicationDimension("Neighbourhoods");
  ASSERT_TRUE(nb.ok());
  EXPECT_TRUE(nb.ValueOrDie()->RollsUp("neighborhood", "city"));
}

TEST(GisInstanceTest, AlphaBindings) {
  GisDimensionSchema schema = workload::BuildFigure2Schema();
  GisDimensionInstance gis(std::move(schema));
  auto ln = std::make_shared<Layer>("Ln", GeometryKind::kPolygon);
  GeometryId pg = ln->AddPolygon(MakeRectangle(0, 0, 1, 1)).ValueOrDie();
  ASSERT_TRUE(gis.AddLayer(ln).ok());

  ASSERT_TRUE(gis.BindAlpha("neighborhood", Value("Berchem"), pg).ok());
  EXPECT_EQ(gis.Alpha("neighborhood", Value("Berchem")).ValueOrDie(), pg);
  EXPECT_EQ(gis.AlphaInverse("neighborhood", pg).ValueOrDie(),
            Value("Berchem"));
  EXPECT_TRUE(
      gis.Alpha("neighborhood", Value("Nowhere")).status().IsNotFound());
  // Rebinding to a different geometry is rejected.
  EXPECT_TRUE(gis.BindAlpha("neighborhood", Value("Berchem"), 99)
                  .IsNotFound());  // Geometry 99 does not exist.
  // Binding an unknown attribute fails.
  EXPECT_TRUE(gis.BindAlpha("volcano", Value("X"), pg).IsNotFound());
}

TEST(GisInstanceTest, LayerRegistration) {
  GisDimensionSchema schema = workload::BuildFigure2Schema();
  GisDimensionInstance gis(std::move(schema));
  // Layer name not in schema.
  auto rogue = std::make_shared<Layer>("Rogue", GeometryKind::kPolygon);
  EXPECT_TRUE(gis.AddLayer(rogue).IsNotFound());
  // Kind not in the layer's graph.
  auto wrong = std::make_shared<Layer>("Ln", GeometryKind::kPolyline);
  EXPECT_TRUE(gis.AddLayer(wrong).IsInvalidArgument());
  // Correct.
  auto ok_layer = std::make_shared<Layer>("Ln", GeometryKind::kPolygon);
  EXPECT_TRUE(gis.AddLayer(ok_layer).ok());
  // Duplicate.
  auto dup = std::make_shared<Layer>("Ln", GeometryKind::kPolygon);
  EXPECT_TRUE(gis.AddLayer(dup).IsAlreadyExists());
}

TEST(GisInstanceTest, GeometryRollupRelation) {
  GisDimensionSchema schema = workload::BuildFigure2Schema();
  GisDimensionInstance gis(std::move(schema));
  auto lr = std::make_shared<Layer>("Lr", GeometryKind::kPolyline);
  ASSERT_TRUE(gis.AddLayer(lr).ok());
  // line 0 and line 1 compose polyline 7.
  ASSERT_TRUE(gis.AddGeometryRollup("Lr", GeometryKind::kLine, 0,
                                    GeometryKind::kPolyline, 7).ok());
  ASSERT_TRUE(gis.AddGeometryRollup("Lr", GeometryKind::kLine, 1,
                                    GeometryKind::kPolyline, 7).ok());
  auto up = gis.GeometryRollup("Lr", GeometryKind::kLine, 0,
                               GeometryKind::kPolyline).ValueOrDie();
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0], 7);
  auto members = gis.GeometryMembers("Lr", GeometryKind::kLine,
                                     GeometryKind::kPolyline, 7).ValueOrDie();
  EXPECT_EQ(members.size(), 2u);
  // Edge absent from the graph is rejected.
  EXPECT_TRUE(gis.AddGeometryRollup("Lr", GeometryKind::kLine, 0,
                                    GeometryKind::kPolygon, 1)
                  .IsInvalidArgument());
}

TEST(DensityTest, ConstantExact) {
  ConstantDensity d(3.0);
  EXPECT_DOUBLE_EQ(d.ValueAt({1, 1}), 3.0);
  EXPECT_DOUBLE_EQ(d.IntegrateOverPolygon(MakeRectangle(0, 0, 2, 5)), 30.0);
}

TEST(DensityTest, PerRegionExactOnConvex) {
  Layer layer("pg", GeometryKind::kPolygon);
  (void)layer.AddPolygon(MakeRectangle(0, 0, 10, 10));
  (void)layer.AddPolygon(MakeRectangle(10, 0, 20, 10));
  PerRegionDensity density(&layer, {2.0, 5.0});

  EXPECT_DOUBLE_EQ(density.ValueAt({5, 5}), 2.0);
  EXPECT_DOUBLE_EQ(density.ValueAt({15, 5}), 5.0);
  EXPECT_DOUBLE_EQ(density.ValueAt({50, 50}), 0.0);
  EXPECT_DOUBLE_EQ(density.TotalMass(), 700.0);

  // Query [5,15]x[0,5] straddles both cells: 2*25 + 5*25.
  EXPECT_DOUBLE_EQ(density.IntegrateOverPolygon(MakeRectangle(5, 0, 15, 5)),
                   50.0 + 125.0);
}

TEST(DensityTest, QuadratureApproximatesNonConvex) {
  Layer layer("pg", GeometryKind::kPolygon);
  (void)layer.AddPolygon(MakeRectangle(0, 0, 10, 10));
  PerRegionDensity density(&layer, {1.0});
  // Non-convex query polygon (L-shape of area 300... scaled: use a small L).
  geometry::Ring l({{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}});
  geometry::Polygon lp(l);
  double integral = density.IntegrateOverPolygon(lp);
  EXPECT_NEAR(integral, 75.0, 1.5);  // Quadrature tolerance.
}

}  // namespace
}  // namespace piet::gis
