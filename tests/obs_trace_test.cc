#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pietql/evaluator.h"
#include "obs/trace.h"
#include "workload/scenario.h"

namespace piet::obs {
namespace {

TEST(TraceCollectorTest, NestingAndAttrs) {
  TraceCollector collector("root");
  {
    TraceSpan outer(&collector, "outer");
    outer.Attr("k", "v");
    outer.Attr("n", int64_t{7});
    {
      TraceSpan inner(&collector, "inner");
      inner.Attr("ratio", 0.5);
    }
    TraceSpan sibling(&collector, "sibling");
  }
  SpanNode root = collector.Finish();

  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.start_ns, 0);
  ASSERT_EQ(root.children.size(), 1u);
  const SpanNode& outer = root.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.Attr("k"), "v");
  EXPECT_EQ(outer.Attr("n"), "7");
  EXPECT_EQ(outer.Attr("missing"), "");
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0].name, "inner");
  EXPECT_EQ(outer.children[0].Attr("ratio"), "0.5");
  EXPECT_EQ(outer.children[1].name, "sibling");

  // Find searches depth-first through the tree.
  EXPECT_EQ(root.Find("inner"), &outer.children[0]);
  EXPECT_EQ(root.Find("nope"), nullptr);

  // Children start within and end within their parent.
  for (const SpanNode& child : outer.children) {
    EXPECT_GE(child.start_ns, outer.start_ns);
    EXPECT_LE(child.end_ns(), outer.end_ns());
  }
  EXPECT_LE(outer.end_ns(), root.end_ns());
}

TEST(TraceCollectorTest, NullCollectorIsNoOp) {
  TraceSpan span(nullptr, "ignored");
  span.Attr("k", "v");
  span.Attr("n", int64_t{1});
  // Destruction must be safe; nothing to assert beyond no crash.
}

// The Chrome exporter's byte-exact output on a hand-built tree: fixed
// timestamps make the golden stable (the exporter formats microseconds
// with exactly three decimals).
TEST(ChromeTraceTest, GoldenExport) {
  SpanNode root;
  root.name = "query";
  root.start_ns = 0;
  root.duration_ns = 5000;
  SpanNode parse;
  parse.name = "parse";
  parse.start_ns = 100;
  parse.duration_ns = 200;
  parse.attrs = {{"bytes", "42"}};
  SpanNode geo;
  geo.name = "geo_filter";
  geo.start_ns = 400;
  geo.duration_ns = 1600;
  SpanNode cond;
  cond.name = "geo_condition:attr_compare";
  cond.start_ns = 450;
  cond.duration_ns = 1000;
  geo.children.push_back(cond);
  root.children.push_back(parse);
  root.children.push_back(geo);

  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"query\",\"ph\":\"X\",\"ts\":0.000,\"dur\":5.000,"
      "\"pid\":1,\"tid\":1},"
      "{\"name\":\"parse\",\"ph\":\"X\",\"ts\":0.100,\"dur\":0.200,"
      "\"pid\":1,\"tid\":1,\"args\":{\"bytes\":\"42\"}},"
      "{\"name\":\"geo_filter\",\"ph\":\"X\",\"ts\":0.400,\"dur\":1.600,"
      "\"pid\":1,\"tid\":1},"
      "{\"name\":\"geo_condition:attr_compare\",\"ph\":\"X\",\"ts\":0.450,"
      "\"dur\":1.000,\"pid\":1,\"tid\":1}"
      "]}";
  EXPECT_EQ(ToChromeTraceJson(root), expected);
}

TEST(ChromeTraceTest, EscapesQuotesAndBackslashes) {
  SpanNode root;
  root.name = "a\"b\\c";
  std::string json = ToChromeTraceJson(root);
  EXPECT_NE(json.find("\"a\\\"b\\\\c\""), std::string::npos);
}

TEST(PrettyPrintTest, RendersTreeWithDurations) {
  SpanNode root;
  root.name = "query";
  root.duration_ns = 2'500'000;  // 2.50ms
  SpanNode child;
  child.name = "aggregate";
  child.duration_ns = 800;  // 800ns
  child.attrs = {{"kind", "count_all"}};
  root.children.push_back(child);
  std::string pretty = root.ToPrettyString();
  EXPECT_NE(pretty.find("query  2.50ms"), std::string::npos);
  EXPECT_NE(pretty.find("  aggregate  800ns  [kind=count_all]"),
            std::string::npos);
}

class EvaluateProfiledTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = workload::BuildFigure1Scenario();
    ASSERT_TRUE(scenario.ok());
    scenario_ = std::move(scenario).ValueOrDie();
  }

  // Profiled evaluation must return a bit-identical result and a
  // well-formed span tree for the query.
  void CheckProfiledMatches(const std::string& text) {
    core::pietql::Evaluator eval(scenario_.db.get());
    auto plain = eval.EvaluateString(text);
    auto profiled = eval.EvaluateStringProfiled(text);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
    EXPECT_EQ(plain.ValueOrDie().ToString(),
              profiled.ValueOrDie().result.ToString())
        << text;

    const SpanNode& root = profiled.ValueOrDie().profile;
    EXPECT_EQ(root.name, "query");
    EXPECT_FALSE(root.children.empty());
    EXPECT_NE(root.Find("parse"), nullptr);
    EXPECT_NE(root.Find("geo_filter"), nullptr);
    CheckDurations(root);
  }

  // Spans nest and time monotonically: children start after their parent,
  // end before it, follow their previous sibling, and their durations sum
  // to at most the parent's.
  void CheckDurations(const SpanNode& node) {
    int64_t child_sum = 0;
    int64_t prev_end = node.start_ns;
    for (const SpanNode& child : node.children) {
      EXPECT_GE(child.duration_ns, 0) << child.name;
      EXPECT_GE(child.start_ns, prev_end) << child.name;
      EXPECT_LE(child.end_ns(), node.end_ns()) << child.name;
      prev_end = child.end_ns();
      child_sum += child.duration_ns;
      CheckDurations(child);
    }
    EXPECT_LE(child_sum, node.duration_ns) << node.name;
  }

  workload::Figure1Scenario scenario_;
};

TEST_F(EvaluateProfiledTest, BitIdenticalAcrossQueryForms) {
  const std::vector<std::string> queries = {
      // Geo-only: attribute filter, intersection, containment, composite.
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE ATTR(layer.Ln, income) < 1500",
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE INTERSECTION(layer.Ln, layer.Lr)",
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE CONTAINS(layer.Ln, layer.Ls)",
      "SELECT layer.Ln, layer.Lr, layer.Ls; FROM PietSchema; "
      "WHERE INTERSECTION(layer.Ln, layer.Lr) "
      "AND CONTAINS(layer.Ln, layer.Ls);",
      // Moving-object clauses: INSIDE RESULT, PASSES THROUGH, NEAR,
      // time-only, plus grouped and rate aggregates.
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE ATTR(layer.Ln, income) < 1500 "
      "| SELECT COUNT(DISTINCT OID) FROM FMbus WHERE INSIDE RESULT",
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE ATTR(layer.Ln, income) < 1500 "
      "| SELECT COUNT(DISTINCT OID) FROM FMbus WHERE PASSES THROUGH RESULT",
      "SELECT layer.Ln; FROM PietSchema; "
      "| SELECT COUNT(*) FROM FMbus WHERE NEAR(layer.Ls, 10)",
      "SELECT layer.Ln; FROM PietSchema; "
      "| SELECT COUNT(*) FROM FMbus WHERE T BETWEEN 0 AND 100000",
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE ATTR(layer.Ln, income) < 1500 "
      "| SELECT COUNT(*) FROM FMbus WHERE INSIDE RESULT "
      "AND TIME.timeOfDay = 'Morning' GROUP BY TIME.hour",
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE ATTR(layer.Ln, income) < 1500 "
      "| SELECT RATE PER HOUR FROM FMbus "
      "WHERE INSIDE RESULT AND TIME.timeOfDay = 'Morning'",
  };
  for (const std::string& q : queries) {
    CheckProfiledMatches(q);
  }
}

TEST_F(EvaluateProfiledTest, SpanTaxonomyOnHeadlineQuery) {
  core::pietql::Evaluator eval(scenario_.db.get());
  // Pin the rewrite mode so the taxonomy is deterministic regardless of
  // the PIET_REWRITE environment (kOn adds a "rewrite" span, checked in
  // SpanTaxonomyWithRewriteStage).
  eval.set_rewrite_mode(analysis::rewrite::RewriteMode::kOff);
  auto profiled = eval.EvaluateStringProfiled(
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE ATTR(layer.Ln, income) < 1500 "
      "| SELECT RATE PER HOUR FROM FMbus "
      "WHERE INSIDE RESULT AND TIME.timeOfDay = 'Morning'");
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();

  // The Remark 1 answer rides along unchanged: 4 bus-hour pairs over 3
  // morning hours.
  ASSERT_TRUE(profiled.ValueOrDie().result.scalar.has_value());
  EXPECT_DOUBLE_EQ(profiled.ValueOrDie().result.scalar->AsDoubleUnchecked(),
                   4.0 / 3.0);

  const SpanNode& root = profiled.ValueOrDie().profile;
  const SpanNode* geo = root.Find("geo_filter");
  ASSERT_NE(geo, nullptr);
  EXPECT_EQ(geo->Attr("layer"), "Ln");
  EXPECT_EQ(geo->Attr("ids"), "1");  // Only the low-income neighborhood.
  EXPECT_NE(geo->Find("geo_condition:attr_compare"), nullptr);

  const SpanNode* intersect = root.Find("moft_intersect");
  ASSERT_NE(intersect, nullptr);
  EXPECT_EQ(intersect->Attr("clause"), "inside_result");
  EXPECT_EQ(intersect->Attr("moft"), "FMbus");
  EXPECT_EQ(intersect->Attr("tuples"), "4");  // The four morning samples.

  const SpanNode* agg = root.Find("aggregate");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->Attr("kind"), "rate_per_hour");

  // moft_intersect and aggregate are siblings under the root, in order.
  std::vector<std::string> names;
  for (const SpanNode& child : root.children) {
    names.push_back(child.name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"parse", "geo_filter",
                                             "moft_intersect", "aggregate"}));
}

TEST_F(EvaluateProfiledTest, SpanTaxonomyWithRewriteStage) {
  core::pietql::Evaluator eval(scenario_.db.get());
  eval.set_rewrite_mode(analysis::rewrite::RewriteMode::kOn);
  auto profiled = eval.EvaluateStringProfiled(
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE ATTR(layer.Ln, income) < 1500 "
      "| SELECT RATE PER HOUR FROM FMbus "
      "WHERE INSIDE RESULT AND TIME.timeOfDay = 'Morning'");
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();

  // Bit-identical result with the rewrite stage in the pipeline.
  ASSERT_TRUE(profiled.ValueOrDie().result.scalar.has_value());
  EXPECT_DOUBLE_EQ(profiled.ValueOrDie().result.scalar->AsDoubleUnchecked(),
                   4.0 / 3.0);

  const SpanNode& root = profiled.ValueOrDie().profile;
  const SpanNode* rewrite = root.Find("rewrite");
  ASSERT_NE(rewrite, nullptr);
  EXPECT_FALSE(rewrite->Attr("rules_applied").empty());
  EXPECT_FALSE(rewrite->Attr("mo_clauses_before").empty());
  EXPECT_FALSE(rewrite->Attr("mo_clauses_after").empty());

  std::vector<std::string> names;
  for (const SpanNode& child : root.children) {
    names.push_back(child.name);
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"parse", "rewrite", "geo_filter",
                                      "moft_intersect", "aggregate"}));

  // The RewriteInfo payload rides on the result under kOn.
  ASSERT_TRUE(profiled.ValueOrDie().result.rewrite.has_value());
  EXPECT_FALSE(profiled.ValueOrDie().result.rewrite->original.empty());
  EXPECT_FALSE(profiled.ValueOrDie().result.rewrite->rewritten.empty());
}

TEST_F(EvaluateProfiledTest, ClauseAttrTracksEachBranch) {
  core::pietql::Evaluator eval(scenario_.db.get());
  struct Case {
    const char* query;
    const char* clause;
  };
  const std::vector<Case> cases = {
      {"SELECT layer.Ln; FROM PietSchema; "
       "| SELECT COUNT(*) FROM FMbus WHERE PASSES THROUGH RESULT",
       "passes_through"},
      {"SELECT layer.Ln; FROM PietSchema; "
       "| SELECT COUNT(*) FROM FMbus WHERE NEAR(layer.Ls, 10)",
       "near"},
      {"SELECT layer.Ln; FROM PietSchema; "
       "| SELECT COUNT(*) FROM FMbus WHERE INSIDE RESULT",
       "inside_result"},
      {"SELECT layer.Ln; FROM PietSchema; "
       "| SELECT COUNT(*) FROM FMbus",
       "time_only"},
  };
  for (const Case& c : cases) {
    auto profiled = eval.EvaluateStringProfiled(c.query);
    ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
    const SpanNode* intersect =
        profiled.ValueOrDie().profile.Find("moft_intersect");
    ASSERT_NE(intersect, nullptr) << c.query;
    EXPECT_EQ(intersect->Attr("clause"), c.clause) << c.query;
  }
}

TEST_F(EvaluateProfiledTest, AnalyzeSpanAppearsInCheckMode) {
  core::pietql::Evaluator eval(scenario_.db.get(),
                               analysis::CheckMode::kWarn);
  auto profiled = eval.EvaluateStringProfiled(
      "SELECT layer.Ln; FROM PietSchema; "
      "| SELECT COUNT(*) FROM FMbus WHERE INSIDE RESULT");
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
  EXPECT_NE(profiled.ValueOrDie().profile.Find("analyze"), nullptr);
}

}  // namespace
}  // namespace piet::obs
