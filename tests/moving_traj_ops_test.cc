#include <gtest/gtest.h>

#include "common/random.h"
#include "geometry/polygon.h"
#include "moving/bead.h"
#include "moving/traj_ops.h"

namespace piet::moving {
namespace {

using geometry::MakeRectangle;
using geometry::Point;
using geometry::Polygon;
using temporal::Interval;
using temporal::IntervalSet;
using temporal::TimePoint;

LinearTrajectory FromPoints(std::vector<TimedPoint> pts) {
  return LinearTrajectory::FromSample(
             TrajectorySample::Create(std::move(pts)).ValueOrDie())
      .ValueOrDie();
}

TEST(InsideIntervalsTest, CrossThrough) {
  // Crosses [0,10]^2 horizontally between t=0 (x=-10) and t=10 (x=20).
  LinearTrajectory lit =
      FromPoints({{TimePoint(0), {-10, 5}}, {TimePoint(10), {20, 5}}});
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  IntervalSet inside = InsideIntervals(lit, sq);
  ASSERT_EQ(inside.size(), 1u);
  EXPECT_NEAR(inside.intervals()[0].begin.seconds, 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(inside.intervals()[0].end.seconds, 20.0 / 3.0, 1e-12);
  EXPECT_NEAR(TimeInRegion(lit, sq), 10.0 / 3.0, 1e-12);
  EXPECT_TRUE(PassesThrough(lit, sq));
  EXPECT_EQ(EntryCount(lit, sq), 1);
}

TEST(InsideIntervalsTest, UnsampledDriveBy) {
  // The O6 situation of Figure 1: both samples outside, the leg crosses.
  LinearTrajectory lit =
      FromPoints({{TimePoint(0), {-5, 5}}, {TimePoint(10), {15, 5}}});
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  EXPECT_TRUE(PassesThrough(lit, sq));
  EXPECT_GT(TimeInRegion(lit, sq), 0.0);
  // Sample semantics sees nothing.
  Moft moft;
  ASSERT_TRUE(moft.Add(6, TimePoint(0), {-5, 5}).ok());
  ASSERT_TRUE(moft.Add(6, TimePoint(10), {15, 5}).ok());
  EXPECT_TRUE(SamplesInRegion(moft, 6, sq).empty());
}

TEST(InsideIntervalsTest, MultipleVisits) {
  LinearTrajectory lit = FromPoints({{TimePoint(0), {-5, 5}},
                                     {TimePoint(10), {5, 5}},
                                     {TimePoint(20), {-5, 5}},
                                     {TimePoint(30), {5, 5}}});
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  // Legs 1 and 2 both have the object inside around the turn at t=10, so
  // their intervals merge: inside = [5,15] u [25,30].
  IntervalSet inside = InsideIntervals(lit, sq);
  ASSERT_EQ(inside.size(), 2u);
  EXPECT_NEAR(inside.intervals()[0].begin.seconds, 5.0, 1e-12);
  EXPECT_NEAR(inside.intervals()[0].end.seconds, 15.0, 1e-12);
  EXPECT_EQ(EntryCount(lit, sq), 2);
  EXPECT_NEAR(TimeInRegion(lit, sq), 15.0, 1e-12);
}

TEST(InsideIntervalsTest, GrazingTouchIsZeroLength) {
  // Touches the corner (0,0) only.
  LinearTrajectory lit =
      FromPoints({{TimePoint(0), {-5, 5}}, {TimePoint(10), {5, -5}}});
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  IntervalSet inside = InsideIntervals(lit, sq);
  ASSERT_EQ(inside.size(), 1u);
  EXPECT_TRUE(inside.intervals()[0].IsPoint());
  EXPECT_TRUE(PassesThrough(lit, sq));
  EXPECT_DOUBLE_EQ(TimeInRegion(lit, sq), 0.0);
}

TEST(InsideIntervalsTest, StationaryInside) {
  LinearTrajectory lit =
      FromPoints({{TimePoint(0), {5, 5}}, {TimePoint(100), {5, 5}}});
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(TimeInRegion(lit, sq), 100.0);
  EXPECT_TRUE(StaysWithin(lit, sq));
}

TEST(InsideIntervalsTest, SinglePointTrajectory) {
  LinearTrajectory lit = FromPoints({{TimePoint(5), {5, 5}}});
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  IntervalSet inside = InsideIntervals(lit, sq);
  ASSERT_EQ(inside.size(), 1u);
  EXPECT_TRUE(inside.intervals()[0].IsPoint());
  EXPECT_TRUE(PassesThrough(lit, sq));
}

TEST(StaysWithinTest, DetectsExcursion) {
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  LinearTrajectory in =
      FromPoints({{TimePoint(0), {2, 2}}, {TimePoint(10), {8, 8}}});
  EXPECT_TRUE(StaysWithin(in, sq));
  LinearTrajectory out = FromPoints({{TimePoint(0), {2, 2}},
                                     {TimePoint(5), {15, 2}},
                                     {TimePoint(10), {8, 8}}});
  EXPECT_FALSE(StaysWithin(out, sq));
}

TEST(DistanceTravelledInsideTest, PartialLeg) {
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  LinearTrajectory lit =
      FromPoints({{TimePoint(0), {-10, 5}}, {TimePoint(10), {10, 5}}});
  // Total leg length 20, inside portion x in [0,10] -> length 10.
  EXPECT_NEAR(DistanceTravelledInside(lit, sq), 10.0, 1e-12);
}

TEST(WithinDistanceIntervalsTest, PassNearPoint) {
  LinearTrajectory lit =
      FromPoints({{TimePoint(0), {-10, 0}}, {TimePoint(20), {10, 0}}});
  IntervalSet near = WithinDistanceIntervals(lit, {0, 3}, 5.0);
  ASSERT_EQ(near.size(), 1u);
  // Within distance 5 of (0,3): |x| <= 4 -> t in [6, 14].
  EXPECT_NEAR(near.intervals()[0].begin.seconds, 6.0, 1e-9);
  EXPECT_NEAR(near.intervals()[0].end.seconds, 14.0, 1e-9);
}

TEST(BeadTest, CreateValidation) {
  TimedPoint a{TimePoint(0), {0, 0}};
  TimedPoint b{TimePoint(10), {30, 0}};
  // Required speed is 3; vmax below that is inconsistent.
  EXPECT_TRUE(LifelineBead::Create(a, b, 2.0).status().IsInvalidArgument());
  EXPECT_TRUE(LifelineBead::Create(a, b, 4.0).ok());
  EXPECT_TRUE(LifelineBead::Create(b, a, 4.0).status().IsInvalidArgument());
  EXPECT_TRUE(LifelineBead::Create(a, b, 0.0).status().IsInvalidArgument());
}

TEST(BeadTest, EllipseGeometry) {
  TimedPoint a{TimePoint(0), {-3, 0}};
  TimedPoint b{TimePoint(10), {3, 0}};
  auto bead = LifelineBead::Create(a, b, 1.0).ValueOrDie();
  // 2a = 10, c = 3 -> b = 4.
  EXPECT_DOUBLE_EQ(bead.SemiMajor(), 5.0);
  EXPECT_DOUBLE_EQ(bead.SemiMinor(), 4.0);
  EXPECT_EQ(bead.Center(), Point(0, 0));
  EXPECT_TRUE(bead.ContainsPoint({0, 4}));
  EXPECT_FALSE(bead.ContainsPoint({0, 4.01}));
  EXPECT_TRUE(bead.ContainsPoint({5, 0}));
  EXPECT_FALSE(bead.ContainsPoint({5.01, 0}));
}

TEST(BeadTest, IntersectsPolygon) {
  TimedPoint a{TimePoint(0), {-3, 0}};
  TimedPoint b{TimePoint(10), {3, 0}};
  auto bead = LifelineBead::Create(a, b, 1.0).ValueOrDie();

  EXPECT_TRUE(bead.IntersectsPolygon(MakeRectangle(-1, -1, 1, 1)));
  // Polygon overlapping only the ellipse edge.
  EXPECT_TRUE(bead.IntersectsPolygon(MakeRectangle(4, -1, 10, 1)));
  // Disjoint polygon.
  EXPECT_FALSE(bead.IntersectsPolygon(MakeRectangle(6, 6, 10, 10)));
  // Polygon containing the whole ellipse.
  EXPECT_TRUE(bead.IntersectsPolygon(MakeRectangle(-100, -100, 100, 100)));
  // Near-miss at the minor axis.
  EXPECT_FALSE(bead.IntersectsPolygon(MakeRectangle(-1, 4.1, 1, 6)));
  EXPECT_TRUE(bead.IntersectsPolygon(MakeRectangle(-1, 3.9, 1, 6)));
}

TEST(BeadTest, CrossSection) {
  TimedPoint a{TimePoint(0), {0, 0}};
  TimedPoint b{TimePoint(10), {6, 0}};
  auto bead = LifelineBead::Create(a, b, 1.0).ValueOrDie();
  EXPECT_FALSE(bead.CrossSectionAt(TimePoint(-1)).has_value());
  auto mid = bead.CrossSectionAt(TimePoint(5));
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->center, Point(3, 0));
  // Slack: r0 = 5, straight-line need = 3 -> radius 2.
  EXPECT_DOUBLE_EQ(mid->radius, 2.0);
  auto start = bead.CrossSectionAt(TimePoint(0));
  ASSERT_TRUE(start.has_value());
  EXPECT_DOUBLE_EQ(start->radius, 0.0);
}

TEST(BeadTest, PossiblyPassesThroughWidensLit) {
  // Samples pass left of the region; LIT misses it but a fast object could
  // have detoured through it.
  auto sample = TrajectorySample::Create(
                    {{TimePoint(0), {0, 0}}, {TimePoint(10), {10, 0}}})
                    .ValueOrDie();
  Polygon region = MakeRectangle(4, 3, 6, 5);

  LinearTrajectory lit = LinearTrajectory::FromSample(sample).ValueOrDie();
  EXPECT_FALSE(PassesThrough(lit, region));

  // vmax barely above straight-line speed: cannot detour.
  EXPECT_FALSE(PossiblyPassesThrough(sample, 1.05, region).ValueOrDie());
  // Generous speed bound: the detour is feasible.
  EXPECT_TRUE(PossiblyPassesThrough(sample, 3.0, region).ValueOrDie());
}

TEST(BeadTest, LitInsideImpliesPossibly) {
  Random rng(66);
  Polygon region = MakeRectangle(20, 20, 50, 50);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<TimedPoint> pts;
    double t = 0.0;
    Point pos(rng.UniformDouble(0, 100), rng.UniformDouble(0, 100));
    for (int i = 0; i < 5; ++i) {
      pts.push_back({TimePoint(t), pos});
      double step_t = rng.UniformDouble(5, 10);
      Point next(rng.UniformDouble(0, 100), rng.UniformDouble(0, 100));
      t += step_t;
      pos = next;
    }
    auto sample = TrajectorySample::Create(pts).ValueOrDie();
    auto lit = LinearTrajectory::FromSample(sample).ValueOrDie();
    // Pick vmax = required max leg speed * 1.5 (consistent by construction).
    double vmax = 0.0;
    for (const auto& leg : lit.Legs()) {
      vmax = std::max(vmax, Distance(leg.p0, leg.p1) / leg.DurationOf());
    }
    vmax *= 1.5;
    vmax = std::max(vmax, 1e-9);
    if (PassesThrough(lit, region)) {
      EXPECT_TRUE(PossiblyPassesThrough(sample, vmax, region).ValueOrDie());
    }
  }
}

// Property suite: InsideIntervals agrees with dense sampling of
// Polygon::Contains at interpolated positions.
class TrajOpsProperty : public ::testing::TestWithParam<int> {};

TEST_P(TrajOpsProperty, InsideIntervalsMatchSampling) {
  Random rng(3000 + GetParam());
  Polygon region = geometry::MakeRegularPolygon(
      {rng.UniformDouble(30, 70), rng.UniformDouble(30, 70)},
      rng.UniformDouble(10, 25), static_cast<int>(rng.UniformInt(3, 8)));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<TimedPoint> pts;
    double t = 0.0;
    for (int i = 0; i < 6; ++i) {
      pts.push_back({TimePoint(t),
                     {rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)}});
      t += rng.UniformDouble(1, 10);
    }
    auto lit = FromPoints(pts);
    IntervalSet inside = InsideIntervals(lit, region);
    Interval domain = lit.TimeDomain();
    for (int k = 0; k < 300; ++k) {
      double probe =
          domain.begin.seconds + (domain.Length() * (k + 0.5)) / 300.0;
      Point pos = *lit.PositionAt(TimePoint(probe));
      bool expected = region.Contains(pos);
      bool near_cut = false;
      for (const Interval& iv : inside.intervals()) {
        if (std::abs(probe - iv.begin.seconds) < 1e-7 ||
            std::abs(probe - iv.end.seconds) < 1e-7) {
          near_cut = true;
        }
      }
      if (near_cut) {
        continue;
      }
      EXPECT_EQ(inside.Contains(TimePoint(probe)), expected) << probe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrajOpsProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace piet::moving
