#include <gtest/gtest.h>

#include "common/random.h"
#include "geometry/clip.h"
#include "geometry/wkt.h"

namespace piet::geometry {
namespace {

TEST(ClipTest, OverlappingSquares) {
  Ring a({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  Ring b({{2, 2}, {6, 2}, {6, 6}, {2, 6}});
  auto clipped = ClipRingToConvex(a, b);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_NEAR(clipped->Area(), 4.0, 1e-12);  // [2,4]x[2,4].
}

TEST(ClipTest, Disjoint) {
  Ring a({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Ring b({{5, 5}, {6, 5}, {6, 6}, {5, 6}});
  EXPECT_FALSE(ClipRingToConvex(a, b).has_value());
}

TEST(ClipTest, SubjectInsideClip) {
  Ring a({{1, 1}, {2, 1}, {2, 2}, {1, 2}});
  Ring b({{0, 0}, {5, 0}, {5, 5}, {0, 5}});
  auto clipped = ClipRingToConvex(a, b);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_NEAR(clipped->Area(), 1.0, 1e-12);
}

TEST(ClipTest, EdgeTouchIsDegenerate) {
  Ring a({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Ring b({{1, 0}, {2, 0}, {2, 1}, {1, 1}});
  // Shared edge only: zero-area intersection -> nullopt.
  EXPECT_FALSE(ClipRingToConvex(a, b).has_value());
}

TEST(ClipTest, TriangleSquare) {
  Ring tri({{0, 0}, {4, 0}, {0, 4}});
  Ring sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  auto clipped = ClipRingToConvex(tri, sq);
  ASSERT_TRUE(clipped.has_value());
  // Intersection: square minus the top-right triangle cut by x+y=4; the
  // full unit... [0,2]^2 entirely under x+y<=4 except corner (2,2) exactly
  // on the line; so area = 4 minus zero = 4? Corner (2,2): 2+2=4 on
  // boundary, keeps everything.
  EXPECT_NEAR(clipped->Area(), 4.0, 1e-12);
}

TEST(ConvexIntersectionTest, AreaSymmetry) {
  Random rng(8);
  for (int i = 0; i < 50; ++i) {
    Polygon a = MakeRegularPolygon(
        {rng.UniformDouble(-2, 2), rng.UniformDouble(-2, 2)},
        rng.UniformDouble(1, 3), static_cast<int>(rng.UniformInt(3, 8)));
    Polygon b = MakeRegularPolygon(
        {rng.UniformDouble(-2, 2), rng.UniformDouble(-2, 2)},
        rng.UniformDouble(1, 3), static_cast<int>(rng.UniformInt(3, 8)));
    double ab = ConvexIntersectionArea(a, b);
    double ba = ConvexIntersectionArea(b, a);
    EXPECT_NEAR(ab, ba, 1e-9);
    EXPECT_LE(ab, std::min(a.Area(), b.Area()) + 1e-9);
  }
}

TEST(ConvexHullTest, Square) {
  auto hull = ConvexHull({{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}});
  ASSERT_TRUE(hull.has_value());
  EXPECT_EQ(hull->size(), 4u);
  EXPECT_NEAR(hull->Area(), 1.0, 1e-12);
  EXPECT_TRUE(hull->IsCounterClockwise());
  EXPECT_TRUE(hull->IsConvex());
}

TEST(ConvexHullTest, CollinearInputRejected) {
  EXPECT_FALSE(ConvexHull({{0, 0}, {1, 1}, {2, 2}}).has_value());
  EXPECT_FALSE(ConvexHull({{0, 0}, {1, 1}}).has_value());
}

TEST(ConvexHullTest, ContainsAllInputPoints) {
  Random rng(15);
  std::vector<Point> pts;
  for (int i = 0; i < 100; ++i) {
    pts.emplace_back(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10));
  }
  auto hull = ConvexHull(pts);
  ASSERT_TRUE(hull.has_value());
  Polygon pg(*hull);
  for (const Point& p : pts) {
    EXPECT_TRUE(pg.Contains(p)) << p.ToString();
  }
}

TEST(WktTest, PointRoundTrip) {
  Point p(1.5, -2.25);
  auto parsed = PointFromWkt(ToWkt(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie(), p);
}

TEST(WktTest, PolylineRoundTrip) {
  Polyline line({{0, 0}, {1.5, 2}, {3, -1}});
  auto parsed = PolylineFromWkt(ToWkt(line));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().vertices(), line.vertices());
}

TEST(WktTest, PolygonWithHoleRoundTrip) {
  Ring shell({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  Ring hole({{2, 2}, {4, 2}, {4, 4}, {2, 4}});
  Polygon pg(shell, {hole});
  auto parsed = PolygonFromWkt(ToWkt(pg));
  ASSERT_TRUE(parsed.ok());
  EXPECT_NEAR(parsed.ValueOrDie().Area(), pg.Area(), 1e-12);
  EXPECT_EQ(parsed.ValueOrDie().holes().size(), 1u);
}

TEST(WktTest, CaseInsensitiveAndWhitespace) {
  EXPECT_TRUE(PointFromWkt("point ( 1 2 )").ok());
  EXPECT_TRUE(PolylineFromWkt("linestring(0 0, 1 1)").ok());
  EXPECT_TRUE(PolygonFromWkt("Polygon((0 0, 1 0, 1 1, 0 1, 0 0))").ok());
}

TEST(WktTest, ParseErrors) {
  EXPECT_TRUE(PointFromWkt("POINT(1)").status().IsParseError());
  EXPECT_TRUE(PointFromWkt("POINT(1 2) extra").status().IsParseError());
  EXPECT_TRUE(PolylineFromWkt("LINESTRING 0 0").status().IsParseError());
  EXPECT_TRUE(PolygonFromWkt("POLYGON((0 0, 1 0))").status().ok() == false);
  EXPECT_TRUE(PointFromWkt("CIRCLE(0 0)").status().IsParseError());
}

}  // namespace
}  // namespace piet::geometry
