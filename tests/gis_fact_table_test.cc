#include <gtest/gtest.h>

#include <memory>

#include "gis/fact_table.h"
#include "workload/scenario.h"

namespace piet::gis {
namespace {

using geometry::MakeRectangle;
using geometry::Point;
using geometry::Polyline;

TEST(GisFactTableTest, SetGetMeasure) {
  Layer layer("pg", GeometryKind::kPolygon);
  GeometryId a = layer.AddPolygon(MakeRectangle(0, 0, 1, 1)).ValueOrDie();
  GisFactTable facts(&layer, {"population", "income"});

  EXPECT_TRUE(facts.Set(a, {1000.0, 1200.0}).ok());
  EXPECT_EQ(facts.Measure(a, "population").ValueOrDie(), 1000.0);
  EXPECT_EQ(facts.Measure(a, "income").ValueOrDie(), 1200.0);
  EXPECT_TRUE(facts.Measure(a, "ghost").status().IsNotFound());
  EXPECT_TRUE(facts.Measure(42, "population").status().IsNotFound());
  // Arity mismatch and unknown geometry rejected.
  EXPECT_TRUE(facts.Set(a, {1.0}).IsInvalidArgument());
  EXPECT_TRUE(facts.Set(99, {1.0, 2.0}).IsNotFound());
}

TEST(GisFactTableTest, AggregateAndTotality) {
  Layer layer("pg", GeometryKind::kPolygon);
  GeometryId a = layer.AddPolygon(MakeRectangle(0, 0, 1, 1)).ValueOrDie();
  GeometryId b = layer.AddPolygon(MakeRectangle(1, 0, 2, 1)).ValueOrDie();
  GeometryId c = layer.AddPolygon(MakeRectangle(2, 0, 3, 1)).ValueOrDie();
  GisFactTable facts(&layer, {"pop"});
  ASSERT_TRUE(facts.Set(a, {100.0}).ok());
  ASSERT_TRUE(facts.Set(b, {250.0}).ok());

  EXPECT_TRUE(facts.CheckTotal().IsInvalidArgument());  // c missing.
  ASSERT_TRUE(facts.Set(c, {50.0}).ok());
  EXPECT_TRUE(facts.CheckTotal().ok());

  EXPECT_DOUBLE_EQ(
      facts.Aggregate({a, b, c}, "pop", olap::AggFunction::kSum).ValueOrDie(),
      400.0);
  EXPECT_DOUBLE_EQ(
      facts.Aggregate({a, c}, "pop", olap::AggFunction::kMax).ValueOrDie(),
      100.0);
  EXPECT_DOUBLE_EQ(
      facts.Aggregate({}, "pop", olap::AggFunction::kSum).ValueOrDie(), 0.0);
}

TEST(GisFactTableTest, RollUpAlongGeometryRelation) {
  // Lines 0,1 compose polyline 10; line 2 composes polyline 11 — the
  // paper's (line, polyline) rollup relation example.
  GisDimensionSchema schema = workload::BuildFigure2Schema();
  GisDimensionInstance gis(std::move(schema));
  auto lr = std::make_shared<Layer>("Lr", GeometryKind::kLine);
  GeometryId l0 = lr->AddPolyline(Polyline({{0, 0}, {1, 0}})).ValueOrDie();
  GeometryId l1 = lr->AddPolyline(Polyline({{1, 0}, {2, 0}})).ValueOrDie();
  GeometryId l2 = lr->AddPolyline(Polyline({{5, 5}, {6, 6}})).ValueOrDie();
  ASSERT_TRUE(gis.AddLayer(lr).ok());
  ASSERT_TRUE(gis.AddGeometryRollup("Lr", GeometryKind::kLine, l0,
                                    GeometryKind::kPolyline, 10).ok());
  ASSERT_TRUE(gis.AddGeometryRollup("Lr", GeometryKind::kLine, l1,
                                    GeometryKind::kPolyline, 10).ok());
  ASSERT_TRUE(gis.AddGeometryRollup("Lr", GeometryKind::kLine, l2,
                                    GeometryKind::kPolyline, 11).ok());

  GisFactTable facts(lr.get(), {"flow"});
  ASSERT_TRUE(facts.Set(l0, {5.0}).ok());
  ASSERT_TRUE(facts.Set(l1, {7.0}).ok());
  ASSERT_TRUE(facts.Set(l2, {2.0}).ok());

  auto rolled = facts.RollUpAlongGeometry(gis, GeometryKind::kPolyline,
                                          {10, 11}, "flow",
                                          olap::AggFunction::kSum);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  ASSERT_EQ(rolled.ValueOrDie().num_rows(), 2u);
  EXPECT_EQ(rolled.ValueOrDie().row(0)[1], Value(12.0));  // Polyline 10.
  EXPECT_EQ(rolled.ValueOrDie().row(1)[1], Value(2.0));   // Polyline 11.
}

TEST(GisFactTableTest, ToFactTableShape) {
  Layer layer("nd", GeometryKind::kNode);
  GeometryId a = layer.AddPoint({1, 1}).ValueOrDie();
  GisFactTable facts(&layer, {"visits"});
  ASSERT_TRUE(facts.Set(a, {3.0}).ok());
  auto table = facts.ToFactTable();
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.At(0, "geom").ValueOrDie(), Value(int64_t{0}));
  EXPECT_EQ(table.At(0, "layer").ValueOrDie(), Value("nd"));
  EXPECT_EQ(table.At(0, "visits").ValueOrDie(), Value(3.0));
}

}  // namespace
}  // namespace piet::gis
