#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "analysis/diagnostic.h"
#include "analysis/query_check.h"
#include "core/pietql/evaluator.h"
#include "core/pietql/parser.h"
#include "moving/moft.h"
#include "workload/scenario.h"

namespace piet::analysis {
namespace {

using core::pietql::Evaluator;
using core::pietql::Parse;
using core::pietql::Query;

class QueryCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = workload::BuildFigure1Scenario();
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = std::move(scenario).ValueOrDie();
  }

  QueryContext Context() const {
    QueryContext context;
    context.gis = &scenario_.db->gis();
    context.moft_names = scenario_.db->MoftNames();
    return context;
  }

  DiagnosticList Analyze(const std::string& text) const {
    auto query = Parse(text);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    return AnalyzeQuery(Context(), query.ValueOrDie());
  }

  workload::Figure1Scenario scenario_;
};

// The paper's headline query (Remark 1) is semantically clean.
constexpr const char* kHeadlineQuery =
    "SELECT layer.Ln; FROM PietSchema; "
    "WHERE ATTR(layer.Ln, income) < 1500; "
    "| SELECT COUNT(*) FROM FMbus WHERE INSIDE RESULT "
    "GROUP BY TIME.hour;";

TEST_F(QueryCheckTest, HeadlineQueryIsClean) {
  DiagnosticList diags = Analyze(kHeadlineQuery);
  EXPECT_TRUE(diags.empty()) << diags.ToString();
}

TEST_F(QueryCheckTest, UnknownLayerFires) {
  DiagnosticList diags = Analyze("SELECT layer.Bogus; FROM S;");
  ASSERT_TRUE(diags.Has("query-unknown-layer")) << diags.ToString();
  EXPECT_NE(diags[0].entity.find("SELECT layer.Bogus"), std::string::npos);
}

TEST_F(QueryCheckTest, UnknownAttributeFires) {
  DiagnosticList diags = Analyze(
      "SELECT layer.Ln; FROM S; WHERE ATTR(layer.Ln, elevation) > 3;");
  ASSERT_TRUE(diags.Has("query-unknown-attribute")) << diags.ToString();
  EXPECT_NE(diags[0].entity.find("geo WHERE clause 1"), std::string::npos);
}

TEST_F(QueryCheckTest, AttrTypeMismatchFires) {
  // `income` holds numeric values; comparing against a string literal can
  // never hold.
  DiagnosticList diags = Analyze(
      "SELECT layer.Ln; FROM S; WHERE ATTR(layer.Ln, income) = 'low';");
  ASSERT_TRUE(diags.Has("query-attr-type-mismatch")) << diags.ToString();
  EXPECT_NE(diags[0].entity.find("geo WHERE clause 1"), std::string::npos);

  // And the converse: `name` holds strings.
  DiagnosticList converse = Analyze(
      "SELECT layer.Ln; FROM S; WHERE ATTR(layer.Ln, name) = 42;");
  EXPECT_TRUE(converse.Has("query-attr-type-mismatch"))
      << converse.ToString();
}

TEST_F(QueryCheckTest, UnknownMoftFires) {
  DiagnosticList diags = Analyze(
      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM NoSuchMoft "
      "WHERE INSIDE RESULT;");
  EXPECT_TRUE(diags.Has("query-unknown-moft")) << diags.ToString();
}

TEST_F(QueryCheckTest, RollupEdgeFiresOnNonPolygonResult) {
  // Lr is a polyline layer: INSIDE RESULT needs the point->polygon rollup,
  // which its H(L) does not provide.
  DiagnosticList diags = Analyze(
      "SELECT layer.Lr; FROM S; | SELECT COUNT(*) FROM FMbus "
      "WHERE INSIDE RESULT;");
  ASSERT_TRUE(diags.Has("query-rollup-edge")) << diags.ToString();
  EXPECT_NE(diags[0].entity.find("INSIDE RESULT"), std::string::npos);

  DiagnosticList ok = Analyze(
      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM FMbus "
      "WHERE PASSES THROUGH RESULT;");
  EXPECT_FALSE(ok.Has("query-rollup-edge")) << ok.ToString();
}

TEST_F(QueryCheckTest, NearLayerKindFires) {
  // NEAR wants a point/node layer; Lr holds polylines.
  DiagnosticList diags = Analyze(
      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM FMbus "
      "WHERE NEAR(layer.Lr, 5);");
  EXPECT_TRUE(diags.Has("query-layer-kind")) << diags.ToString();

  DiagnosticList ok = Analyze(
      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM FMbus "
      "WHERE NEAR(layer.Ls, 5);");
  EXPECT_FALSE(ok.Has("query-layer-kind")) << ok.ToString();
}

TEST_F(QueryCheckTest, ConflictingSpatialConditionsFire) {
  DiagnosticList diags = Analyze(
      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM FMbus "
      "WHERE INSIDE RESULT AND NEAR(layer.Ls, 5);");
  EXPECT_TRUE(diags.Has("query-conflicting-conditions")) << diags.ToString();
}

TEST_F(QueryCheckTest, TimeLevelChecksFire) {
  DiagnosticList diags = Analyze(
      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM FMbus "
      "GROUP BY TIME.fortnight;");
  EXPECT_TRUE(diags.Has("query-unknown-time-level")) << diags.ToString();

  // hour members are numeric; timeOfDay members are strings.
  DiagnosticList mismatch = Analyze(
      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM FMbus "
      "WHERE TIME.hour = 'morning';");
  EXPECT_TRUE(mismatch.Has("query-attr-type-mismatch"))
      << mismatch.ToString();

  DiagnosticList ok = Analyze(
      "SELECT layer.Ln; FROM S; | SELECT COUNT(*) FROM FMbus "
      "WHERE TIME.timeOfDay = 'morning';");
  EXPECT_FALSE(ok.Has("query-attr-type-mismatch")) << ok.ToString();
}

// --- Evaluator wiring: kOff / kWarn / kStrict ---

TEST_F(QueryCheckTest, StrictModeRejectsNamingTheClause) {
  Evaluator strict(scenario_.db.get(), CheckMode::kStrict);
  auto result = strict.EvaluateString(
      "SELECT layer.Ln; FROM S; WHERE ATTR(layer.Ln, income) = 'low';");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("query-attr-type-mismatch"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("geo WHERE clause 1"),
            std::string::npos)
      << result.status().ToString();
}

TEST_F(QueryCheckTest, WarnModeDowngradesAndEvaluates) {
  Evaluator warn(scenario_.db.get(), CheckMode::kWarn);
  auto result = warn.EvaluateString(
      "SELECT layer.Ln; FROM S; WHERE ATTR(layer.Ln, income) = 'low';");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The type mismatch rides along as a warning; the query still evaluates
  // (to no qualifying neighborhoods — the predicate can never hold).
  EXPECT_TRUE(result.ValueOrDie().diagnostics.Has("query-attr-type-mismatch"))
      << result.ValueOrDie().diagnostics.ToString();
  EXPECT_FALSE(result.ValueOrDie().diagnostics.HasErrors());
  EXPECT_TRUE(result.ValueOrDie().geometry_ids.empty());
}

TEST_F(QueryCheckTest, OffModeIsByteIdenticalToUnchecked) {
  Evaluator unchecked(scenario_.db.get());
  Evaluator off(scenario_.db.get(), CheckMode::kOff);
  auto a = unchecked.EvaluateString(kHeadlineQuery);
  auto b = off.EvaluateString(kHeadlineQuery);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(b.ValueOrDie().diagnostics.empty());
  EXPECT_EQ(a.ValueOrDie().ToString(), b.ValueOrDie().ToString());
}

TEST_F(QueryCheckTest, StrictModeAcceptsCleanQueries) {
  Evaluator strict(scenario_.db.get(), CheckMode::kStrict);
  auto result = strict.EvaluateString(kHeadlineQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.ValueOrDie().diagnostics.empty());
}

// --- Database load-path wiring ---

TEST_F(QueryCheckTest, StrictLoadRejectsCorruptMoft) {
  moving::Moft bad;
  ASSERT_TRUE(bad.Add(1, temporal::TimePoint(0.0), {0, 0}).ok());
  ASSERT_TRUE(bad.Add(1, temporal::TimePoint(1.0),
                      {std::numeric_limits<double>::quiet_NaN(), 0})
                  .ok());

  scenario_.db->set_check_mode(CheckMode::kStrict);
  Status status = scenario_.db->AddMoft("bad", std::move(bad));
  ASSERT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.message().find("moft-finite-coords"), std::string::npos);
  EXPECT_TRUE(scenario_.db->GetMoft("bad").status().IsNotFound());

  // kWarn records the finding but loads the MOFT.
  moving::Moft bad2;
  ASSERT_TRUE(bad2.Add(1, temporal::TimePoint(0.0), {0, 0}).ok());
  ASSERT_TRUE(bad2.Add(1, temporal::TimePoint(1.0),
                       {std::numeric_limits<double>::quiet_NaN(), 0})
                  .ok());
  scenario_.db->set_check_mode(CheckMode::kWarn);
  ASSERT_TRUE(scenario_.db->AddMoft("bad", std::move(bad2)).ok());
  EXPECT_TRUE(
      scenario_.db->last_load_diagnostics().Has("moft-finite-coords"));
  EXPECT_TRUE(scenario_.db->GetMoft("bad").ok());
}

}  // namespace
}  // namespace piet::analysis
