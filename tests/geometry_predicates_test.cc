#include <gtest/gtest.h>

#include "common/random.h"
#include "geometry/predicates.h"
#include "geometry/segment.h"

namespace piet::geometry {
namespace {

TEST(OrientationTest, BasicSigns) {
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {0, 1}), 1);   // CCW.
  EXPECT_EQ(Orientation({0, 0}, {0, 1}, {1, 0}), -1);  // CW.
  EXPECT_EQ(Orientation({0, 0}, {1, 1}, {2, 2}), 0);   // Collinear.
}

TEST(OrientationTest, NearDegenerateIsConsistent) {
  // Points nearly collinear; the adaptive fallback must give a stable sign.
  Point a(0, 0), b(1e7, 1e7);
  Point slightly_above(5e6, 5e6 + 1e-6);
  Point slightly_below(5e6, 5e6 - 1e-6);
  EXPECT_EQ(Orientation(a, b, slightly_above), 1);
  EXPECT_EQ(Orientation(a, b, slightly_below), -1);
}

TEST(OrientationTest, AntisymmetricUnderSwap) {
  Random rng(77);
  for (int i = 0; i < 200; ++i) {
    Point a(rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10));
    Point b(rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10));
    Point c(rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10));
    EXPECT_EQ(Orientation(a, b, c), -Orientation(b, a, c));
    EXPECT_EQ(Orientation(a, b, c), Orientation(b, c, a));
  }
}

TEST(OnSegmentTest, EndpointsAndMidpoint) {
  Point a(0, 0), b(4, 2);
  EXPECT_TRUE(OnSegment(a, a, b));
  EXPECT_TRUE(OnSegment(b, a, b));
  EXPECT_TRUE(OnSegment({2, 1}, a, b));
  EXPECT_FALSE(OnSegment({2, 1.01}, a, b));
  EXPECT_FALSE(OnSegment({6, 3}, a, b));  // Collinear but outside.
}

TEST(SegmentIntersectionTest, ProperCrossing) {
  auto isect = IntersectSegments({0, 0}, {2, 2}, {0, 2}, {2, 0});
  ASSERT_EQ(isect.kind, SegmentIntersectionKind::kPoint);
  EXPECT_DOUBLE_EQ(isect.p0.x, 1.0);
  EXPECT_DOUBLE_EQ(isect.p0.y, 1.0);
}

TEST(SegmentIntersectionTest, Disjoint) {
  EXPECT_EQ(IntersectSegments({0, 0}, {1, 0}, {0, 1}, {1, 1}).kind,
            SegmentIntersectionKind::kNone);
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {2, 0.5}, {3, 0.5}));
}

TEST(SegmentIntersectionTest, EndpointTouch) {
  auto isect = IntersectSegments({0, 0}, {1, 1}, {1, 1}, {2, 0});
  ASSERT_EQ(isect.kind, SegmentIntersectionKind::kPoint);
  EXPECT_EQ(isect.p0, Point(1, 1));
}

TEST(SegmentIntersectionTest, TTouchMidSegment) {
  auto isect = IntersectSegments({0, 0}, {2, 0}, {1, 0}, {1, 1});
  ASSERT_EQ(isect.kind, SegmentIntersectionKind::kPoint);
  EXPECT_EQ(isect.p0, Point(1, 0));
}

TEST(SegmentIntersectionTest, CollinearOverlap) {
  auto isect = IntersectSegments({0, 0}, {3, 0}, {1, 0}, {5, 0});
  ASSERT_EQ(isect.kind, SegmentIntersectionKind::kOverlap);
  EXPECT_EQ(isect.p0, Point(1, 0));
  EXPECT_EQ(isect.p1, Point(3, 0));
}

TEST(SegmentIntersectionTest, CollinearTouchAtPoint) {
  auto isect = IntersectSegments({0, 0}, {1, 0}, {1, 0}, {2, 0});
  ASSERT_EQ(isect.kind, SegmentIntersectionKind::kPoint);
  EXPECT_EQ(isect.p0, Point(1, 0));
}

TEST(SegmentIntersectionTest, CollinearDisjoint) {
  EXPECT_EQ(IntersectSegments({0, 0}, {1, 0}, {2, 0}, {3, 0}).kind,
            SegmentIntersectionKind::kNone);
}

TEST(SegmentIntersectionTest, VerticalOverlap) {
  auto isect = IntersectSegments({2, 0}, {2, 4}, {2, 3}, {2, 6});
  ASSERT_EQ(isect.kind, SegmentIntersectionKind::kOverlap);
  EXPECT_EQ(isect.p0, Point(2, 3));
  EXPECT_EQ(isect.p1, Point(2, 4));
}

TEST(SegmentIntersectionTest, SymmetricInArguments) {
  Random rng(31);
  for (int i = 0; i < 500; ++i) {
    Point a0(rng.UniformInt(0, 8), rng.UniformInt(0, 8));
    Point a1(rng.UniformInt(0, 8), rng.UniformInt(0, 8));
    Point b0(rng.UniformInt(0, 8), rng.UniformInt(0, 8));
    Point b1(rng.UniformInt(0, 8), rng.UniformInt(0, 8));
    EXPECT_EQ(SegmentsIntersect(a0, a1, b0, b1),
              SegmentsIntersect(b0, b1, a0, a1))
        << a0.ToString() << a1.ToString() << b0.ToString() << b1.ToString();
  }
}

TEST(SegmentTest, ClosestPointAndDistance) {
  Segment s({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(s.DistanceTo({5, 3}), 3.0);
  EXPECT_DOUBLE_EQ(s.DistanceTo({-3, 4}), 5.0);  // Clamped to endpoint.
  EXPECT_EQ(s.ClosestPoint({5, 3}), Point(5, 0));
  EXPECT_DOUBLE_EQ(s.ClosestParam({5, 3}), 0.5);
}

TEST(SegmentTest, DegenerateSegment) {
  Segment s({2, 2}, {2, 2});
  EXPECT_DOUBLE_EQ(s.Length(), 0.0);
  EXPECT_DOUBLE_EQ(s.DistanceTo({5, 6}), 5.0);
  EXPECT_DOUBLE_EQ(s.ClosestParam({9, 9}), 0.0);
}

TEST(SegmentTest, SegmentDistance) {
  EXPECT_DOUBLE_EQ(SegmentDistance({{0, 0}, {1, 0}}, {{0, 2}, {1, 2}}), 2.0);
  EXPECT_DOUBLE_EQ(SegmentDistance({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}}), 0.0);
}

TEST(SegmentTest, At) {
  Segment s({0, 0}, {10, 20});
  EXPECT_EQ(s.At(0.0), Point(0, 0));
  EXPECT_EQ(s.At(0.5), Point(5, 10));
  EXPECT_EQ(s.At(1.0), Point(10, 20));
}

// Property: intersection point reported for proper crossings lies on both
// segments (within tolerance).
TEST(SegmentIntersectionProperty, ReportedPointOnBothSegments) {
  Random rng(99);
  int crossings = 0;
  for (int i = 0; i < 2000 && crossings < 300; ++i) {
    Point a0(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10));
    Point a1(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10));
    Point b0(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10));
    Point b1(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10));
    auto isect = IntersectSegments(a0, a1, b0, b1);
    if (isect.kind != SegmentIntersectionKind::kPoint) {
      continue;
    }
    ++crossings;
    EXPECT_LT(Segment(a0, a1).DistanceTo(isect.p0), 1e-9);
    EXPECT_LT(Segment(b0, b1).DistanceTo(isect.p0), 1e-9);
  }
  EXPECT_GT(crossings, 100);
}

}  // namespace
}  // namespace piet::geometry
