#include <gtest/gtest.h>

#include "workload/city.h"
#include "workload/scenario.h"
#include "workload/trajectories.h"

namespace piet::workload {
namespace {

TEST(CityGeneratorTest, PartitionCoversExtent) {
  CityConfig config;
  config.grid_cols = 5;
  config.grid_rows = 4;
  auto city = GenerateCity(config);
  ASSERT_TRUE(city.ok()) << city.status().ToString();
  const City& c = city.ValueOrDie();

  auto layer = c.db->gis().GetLayer(c.neighborhoods_layer).ValueOrDie();
  EXPECT_EQ(layer->size(), 20u);
  EXPECT_NEAR(layer->TotalMeasure(), c.extent.Area(), 1e-6);
  // Every interior point lies in at least one neighborhood.
  Random rng(1);
  for (int i = 0; i < 200; ++i) {
    geometry::Point p(rng.UniformDouble(0.01, c.extent.max_x - 0.01),
                      rng.UniformDouble(0.01, c.extent.max_y - 0.01));
    EXPECT_FALSE(layer->GeometriesContaining(p).empty()) << p.ToString();
  }
}

TEST(CityGeneratorTest, NonConvexBlocksStillPartition) {
  CityConfig config;
  config.grid_cols = 6;
  config.grid_rows = 6;
  config.nonconvex_fraction = 1.0;  // Every 2x2 block becomes L + square.
  auto city = GenerateCity(config);
  ASSERT_TRUE(city.ok());
  const City& c = city.ValueOrDie();
  auto layer = c.db->gis().GetLayer(c.neighborhoods_layer).ValueOrDie();
  EXPECT_NEAR(layer->TotalMeasure(), c.extent.Area(), 1e-6);
  // Some polygons are genuinely non-convex.
  bool any_nonconvex = false;
  for (gis::GeometryId id : layer->ids()) {
    if (!layer->GetPolygon(id).ValueOrDie()->IsConvex()) {
      any_nonconvex = true;
    }
  }
  EXPECT_TRUE(any_nonconvex);
  // The convex overlay must refuse; the quadtree must work.
  EXPECT_FALSE(c.db->BuildOverlay({c.neighborhoods_layer}, true).ok());
  EXPECT_TRUE(c.db->BuildOverlay({c.neighborhoods_layer}, false, 8).ok());
}

TEST(CityGeneratorTest, DeterministicAcrossRuns) {
  CityConfig config;
  config.seed = 77;
  auto a = GenerateCity(config);
  auto b = GenerateCity(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto la =
      a.ValueOrDie().db->gis().GetLayer("neighborhoods").ValueOrDie();
  auto lb =
      b.ValueOrDie().db->gis().GetLayer("neighborhoods").ValueOrDie();
  ASSERT_EQ(la->size(), lb->size());
  for (gis::GeometryId id : la->ids()) {
    EXPECT_EQ(la->GetAttribute(id, "income").ValueOrDie(),
              lb->GetAttribute(id, "income").ValueOrDie());
  }
}

TEST(CityGeneratorTest, SchemaAndBindingsConsistent) {
  auto city = GenerateCity(CityConfig{});
  ASSERT_TRUE(city.ok());
  const City& c = city.ValueOrDie();
  EXPECT_TRUE(c.db->gis().CheckConsistency().ok());
  // Every neighborhood has an alpha binding.
  auto members = c.db->gis().AlphaMembers("neighborhood").ValueOrDie();
  EXPECT_EQ(static_cast<int>(members.size()), c.num_neighborhoods);
}

TEST(CityGeneratorTest, ConfigValidation) {
  CityConfig bad;
  bad.grid_cols = 0;
  EXPECT_TRUE(GenerateCity(bad).status().IsInvalidArgument());
  CityConfig bad_streets;
  bad_streets.streets_per_axis = 1;
  EXPECT_TRUE(GenerateCity(bad_streets).status().IsInvalidArgument());
}

class TrajectoryGeneratorTest
    : public ::testing::TestWithParam<MovementModel> {};

TEST_P(TrajectoryGeneratorTest, ProducesWellFormedMoft) {
  auto city = GenerateCity(CityConfig{});
  ASSERT_TRUE(city.ok());

  TrajectoryConfig config;
  config.num_objects = 10;
  config.duration = 3600.0;
  config.sample_period = 60.0;
  config.speed = 8.0;
  config.model = GetParam();
  auto moft = GenerateTrajectories(city.ValueOrDie(), config);
  ASSERT_TRUE(moft.ok()) << moft.status().ToString();
  const moving::Moft& m = moft.ValueOrDie();
  EXPECT_EQ(m.num_objects(), 10u);
  EXPECT_EQ(m.num_samples(), 10u * 61u);  // 0..3600 inclusive.

  // Sampling grid honored and speeds bounded by config.speed.
  for (moving::ObjectId oid : m.ObjectIds()) {
    const auto& samples = m.SamplesOf(oid);
    for (size_t i = 1; i < samples.size(); ++i) {
      double dt = samples[i].t - samples[i - 1].t;
      EXPECT_DOUBLE_EQ(dt, 60.0);
      double dist = Distance(samples[i].pos, samples[i - 1].pos);
      EXPECT_LE(dist, config.speed * dt * (1.0 + 1e-9));
    }
  }
}

TEST_P(TrajectoryGeneratorTest, Deterministic) {
  auto city = GenerateCity(CityConfig{});
  ASSERT_TRUE(city.ok());
  TrajectoryConfig config;
  config.num_objects = 3;
  config.duration = 600.0;
  config.sample_period = 60.0;
  config.model = GetParam();
  auto a = GenerateTrajectories(city.ValueOrDie(), config);
  auto b = GenerateTrajectories(city.ValueOrDie(), config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.ValueOrDie().AllSamples().size(),
            b.ValueOrDie().AllSamples().size());
  auto sa = a.ValueOrDie().AllSamples();
  auto sb = b.ValueOrDie().AllSamples();
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_TRUE(sa[i] == sb[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, TrajectoryGeneratorTest,
                         ::testing::Values(MovementModel::kRandomWaypoint,
                                           MovementModel::kStreetNetwork,
                                           MovementModel::kCommuter));

TEST(TrajectoryGeneratorTest, ConfigValidation) {
  auto city = GenerateCity(CityConfig{});
  ASSERT_TRUE(city.ok());
  TrajectoryConfig bad;
  bad.num_objects = 0;
  EXPECT_TRUE(GenerateTrajectories(city.ValueOrDie(), bad)
                  .status()
                  .IsInvalidArgument());
  TrajectoryConfig bad_period;
  bad_period.sample_period = 0.0;
  EXPECT_TRUE(GenerateTrajectories(city.ValueOrDie(), bad_period)
                  .status()
                  .IsInvalidArgument());
}

TEST(ScenarioTest, Figure1Topology) {
  auto scenario = BuildFigure1Scenario();
  ASSERT_TRUE(scenario.ok());
  const Figure1Scenario& s = scenario.ValueOrDie();

  auto ln = s.db->gis().GetLayer(s.neighborhoods_layer).ValueOrDie();
  EXPECT_EQ(ln->size(), 6u);
  // Exactly one low-income neighborhood.
  int low = 0;
  for (gis::GeometryId id : ln->ids()) {
    double income = ln->GetAttribute(id, "income")
                        .ValueOrDie()
                        .AsNumeric()
                        .ValueOrDie();
    if (income < s.income_threshold) {
      ++low;
      EXPECT_EQ(id, s.low_income_neighborhood);
    }
  }
  EXPECT_EQ(low, 1);

  // Table 1 shape: 12 rows, 6 objects.
  auto moft = s.db->GetMoft(s.moft_name).ValueOrDie();
  EXPECT_EQ(moft->num_samples(), 12u);
  EXPECT_EQ(moft->num_objects(), 6u);
  EXPECT_EQ(moft->SamplesOf(s.o1).size(), 4u);
  EXPECT_EQ(moft->SamplesOf(s.o6).size(), 2u);

  // GIS consistency.
  EXPECT_TRUE(s.db->gis().CheckConsistency().ok());
}

TEST(ScenarioTest, ReplicationScalesLinearly) {
  auto s1 = BuildFigure1Scenario(1);
  auto s3 = BuildFigure1Scenario(3);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(s3.ValueOrDie().db->GetMoft("FMbus").ValueOrDie()->num_samples(),
            3 * s1.ValueOrDie().db->GetMoft("FMbus").ValueOrDie()
                ->num_samples());
  EXPECT_TRUE(BuildFigure1Scenario(0).status().IsInvalidArgument());
}

}  // namespace
}  // namespace piet::workload
