#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geometry/segment_polygon.h"

namespace piet::geometry {
namespace {

double TotalLength(const std::vector<ParamInterval>& ivs) {
  double total = 0.0;
  for (const ParamInterval& iv : ivs) {
    total += iv.Length();
  }
  return total;
}

TEST(SegmentInsideIntervalsTest, FullyInside) {
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  auto ivs = SegmentInsideIntervals({{2, 2}, {8, 8}}, sq);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_DOUBLE_EQ(ivs[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(ivs[0].t1, 1.0);
}

TEST(SegmentInsideIntervalsTest, FullyOutside) {
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  EXPECT_TRUE(SegmentInsideIntervals({{20, 20}, {30, 30}}, sq).empty());
}

TEST(SegmentInsideIntervalsTest, CrossingThrough) {
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  auto ivs = SegmentInsideIntervals({{-5, 5}, {15, 5}}, sq);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_DOUBLE_EQ(ivs[0].t0, 0.25);
  EXPECT_DOUBLE_EQ(ivs[0].t1, 0.75);
}

TEST(SegmentInsideIntervalsTest, EnteringOnly) {
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  auto ivs = SegmentInsideIntervals({{-10, 5}, {10, 5}}, sq);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_DOUBLE_EQ(ivs[0].t0, 0.5);
  EXPECT_DOUBLE_EQ(ivs[0].t1, 1.0);
}

TEST(SegmentInsideIntervalsTest, GrazingCornerIsPointContact) {
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  // Diagonal line touching the corner (10, 10) only... actually passes
  // through corner (0,10)-(10,0)? Use a line tangent at one corner:
  auto ivs = SegmentInsideIntervals({{-5, 15}, {15, -5}}, sq);
  // This segment passes through (0,10) and (10,0): the chord along the
  // anti-diagonal — fully inside between those points.
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_NEAR(ivs[0].t0, 0.25, 1e-12);
  EXPECT_NEAR(ivs[0].t1, 0.75, 1e-12);

  // A true graze: touches only the corner (0, 10).
  auto graze = SegmentInsideIntervals({{-5, 5}, {5, 15}}, sq);
  ASSERT_EQ(graze.size(), 1u);
  EXPECT_DOUBLE_EQ(graze[0].t0, graze[0].t1);
  EXPECT_DOUBLE_EQ(graze[0].t0, 0.5);
}

TEST(SegmentInsideIntervalsTest, AlongEdge) {
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  // Runs exactly along the bottom edge: closed polygon => inside throughout.
  auto ivs = SegmentInsideIntervals({{0, 0}, {10, 0}}, sq);
  EXPECT_NEAR(TotalLength(ivs), 1.0, 1e-12);
}

TEST(SegmentInsideIntervalsTest, HoleSplitsInterval) {
  Ring shell({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  Ring hole({{4, 4}, {6, 4}, {6, 6}, {4, 6}});
  Polygon pg(shell, {hole});
  auto ivs = SegmentInsideIntervals({{0, 5}, {10, 5}}, pg);
  // Inside [0,0.4], hole (excluded) (0.4,0.6), inside [0.6,1] — the hole
  // boundary itself belongs to the polygon, interior of the hole does not.
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_NEAR(ivs[0].t0, 0.0, 1e-12);
  EXPECT_NEAR(ivs[0].t1, 0.4, 1e-12);
  EXPECT_NEAR(ivs[1].t0, 0.6, 1e-12);
  EXPECT_NEAR(ivs[1].t1, 1.0, 1e-12);
}

TEST(SegmentInsideIntervalsTest, ConcavePolygonMultipleIntervals) {
  // U-shape: crossing the opening yields two disjoint intervals.
  Ring u({{0, 0}, {10, 0}, {10, 10}, {7, 10}, {7, 3}, {3, 3}, {3, 10},
          {0, 10}});
  Polygon pg(u);
  auto ivs = SegmentInsideIntervals({{-2, 8}, {12, 8}}, pg);
  ASSERT_EQ(ivs.size(), 2u);
  // Inside x in [0,3] => t in [2/14, 5/14]; x in [7,10] => [9/14, 12/14].
  EXPECT_NEAR(ivs[0].t0, 2.0 / 14.0, 1e-12);
  EXPECT_NEAR(ivs[0].t1, 5.0 / 14.0, 1e-12);
  EXPECT_NEAR(ivs[1].t0, 9.0 / 14.0, 1e-12);
  EXPECT_NEAR(ivs[1].t1, 12.0 / 14.0, 1e-12);
}

TEST(SegmentInsideIntervalsTest, DegenerateSegment) {
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  auto in = SegmentInsideIntervals({{5, 5}, {5, 5}}, sq);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_DOUBLE_EQ(in[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(in[0].t1, 1.0);
  EXPECT_TRUE(SegmentInsideIntervals({{50, 5}, {50, 5}}, sq).empty());
}

TEST(SegmentIntersectsPolygonTest, Basic) {
  Polygon sq = MakeRectangle(0, 0, 10, 10);
  EXPECT_TRUE(SegmentIntersectsPolygon({{-5, 5}, {15, 5}}, sq));
  EXPECT_TRUE(SegmentIntersectsPolygon({{5, 5}, {6, 6}}, sq));
  EXPECT_FALSE(SegmentIntersectsPolygon({{-5, -5}, {-1, -1}}, sq));
  // Grazing a corner counts (closed semantics).
  EXPECT_TRUE(SegmentIntersectsPolygon({{-5, 5}, {5, 15}}, sq));
}

TEST(WithinDistanceTest, ChordThroughCircle) {
  // Segment through the center of a radius-5 ball.
  auto ivs = SegmentWithinDistanceIntervals({{-10, 0}, {10, 0}}, {0, 0}, 5);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_NEAR(ivs[0].t0, 0.25, 1e-12);
  EXPECT_NEAR(ivs[0].t1, 0.75, 1e-12);
}

TEST(WithinDistanceTest, MissesBall) {
  EXPECT_TRUE(
      SegmentWithinDistanceIntervals({{-10, 6}, {10, 6}}, {0, 0}, 5).empty());
}

TEST(WithinDistanceTest, TangentTouch) {
  auto ivs = SegmentWithinDistanceIntervals({{-10, 5}, {10, 5}}, {0, 0}, 5);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_NEAR(ivs[0].t0, 0.5, 1e-9);
  EXPECT_NEAR(ivs[0].t1, 0.5, 1e-9);
}

TEST(WithinDistanceTest, StartsInside) {
  auto ivs = SegmentWithinDistanceIntervals({{0, 0}, {20, 0}}, {0, 0}, 5);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_DOUBLE_EQ(ivs[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(ivs[0].t1, 0.25);
}

TEST(WithinDistanceTest, StationaryLeg) {
  auto in = SegmentWithinDistanceIntervals({{1, 1}, {1, 1}}, {0, 0}, 5);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_DOUBLE_EQ(in[0].t1, 1.0);
  EXPECT_TRUE(
      SegmentWithinDistanceIntervals({{9, 9}, {9, 9}}, {0, 0}, 5).empty());
}

// ---------------------------------------------------------------------------
// Property suite: interval results must agree with dense midpoint sampling
// against Polygon::Contains for randomized segments and polygons.
// ---------------------------------------------------------------------------

class SegmentPolygonProperty : public ::testing::TestWithParam<int> {};

TEST_P(SegmentPolygonProperty, IntervalsMatchSampledContainment) {
  Random rng(1000 + GetParam());
  // Random convex polygon.
  Polygon pg = MakeRegularPolygon(
      {rng.UniformDouble(-2, 2), rng.UniformDouble(-2, 2)},
      rng.UniformDouble(2, 5), static_cast<int>(rng.UniformInt(3, 10)),
      rng.UniformDouble(0, 1));
  for (int trial = 0; trial < 40; ++trial) {
    Segment seg({rng.UniformDouble(-8, 8), rng.UniformDouble(-8, 8)},
                {rng.UniformDouble(-8, 8), rng.UniformDouble(-8, 8)});
    auto ivs = SegmentInsideIntervals(seg, pg);
    auto covered = [&](double t) {
      for (const ParamInterval& iv : ivs) {
        if (t >= iv.t0 && t <= iv.t1) {
          return true;
        }
      }
      return false;
    };
    for (int k = 0; k < 200; ++k) {
      double t = (k + 0.5) / 200.0;
      bool inside = pg.Contains(seg.At(t));
      // Skip probes within epsilon of an interval endpoint (boundary
      // rounding makes the oracle itself ambiguous there).
      bool near_cut = false;
      for (const ParamInterval& iv : ivs) {
        if (std::abs(t - iv.t0) < 1e-9 || std::abs(t - iv.t1) < 1e-9) {
          near_cut = true;
        }
      }
      if (near_cut) {
        continue;
      }
      EXPECT_EQ(covered(t), inside)
          << "t=" << t << " seg=" << seg.a.ToString() << "-"
          << seg.b.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SegmentPolygonProperty,
                         ::testing::Range(0, 10));

class WithinDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(WithinDistanceProperty, IntervalsMatchSampledDistance) {
  Random rng(2000 + GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    Point center(rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5));
    double radius = rng.UniformDouble(0.5, 4);
    Segment seg({rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)},
                {rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)});
    auto ivs = SegmentWithinDistanceIntervals(seg, center, radius);
    for (int k = 0; k < 100; ++k) {
      double t = (k + 0.5) / 100.0;
      bool within = Distance(seg.At(t), center) <= radius;
      bool covered = false;
      bool near_cut = false;
      for (const ParamInterval& iv : ivs) {
        if (t >= iv.t0 && t <= iv.t1) {
          covered = true;
        }
        if (std::abs(t - iv.t0) < 1e-9 || std::abs(t - iv.t1) < 1e-9) {
          near_cut = true;
        }
      }
      if (near_cut) {
        continue;
      }
      EXPECT_EQ(covered, within) << "t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, WithinDistanceProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace piet::geometry
