#include <gtest/gtest.h>

#include "geometry/polyline.h"

namespace piet::geometry {
namespace {

TEST(PolylineTest, CreateValidates) {
  EXPECT_TRUE(Polyline::Create({{0, 0}}).status().IsInvalidArgument());
  EXPECT_TRUE(Polyline::Create({{0, 0}, {0, 0}}).status().IsInvalidArgument());
  EXPECT_TRUE(Polyline::Create({{0, 0}, {1, 0}}).ok());
}

TEST(PolylineTest, LengthAndBounds) {
  Polyline line({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(line.Length(), 7.0);
  EXPECT_EQ(line.num_segments(), 2u);
  BoundingBox box = line.Bounds();
  EXPECT_DOUBLE_EQ(box.min_x, 0);
  EXPECT_DOUBLE_EQ(box.max_x, 3);
  EXPECT_DOUBLE_EQ(box.max_y, 4);
}

TEST(PolylineTest, AtArcLength) {
  Polyline line({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_EQ(line.AtArcLength(-1), Point(0, 0));
  EXPECT_EQ(line.AtArcLength(0), Point(0, 0));
  EXPECT_EQ(line.AtArcLength(1.5), Point(1.5, 0));
  EXPECT_EQ(line.AtArcLength(3.0), Point(3, 0));
  EXPECT_EQ(line.AtArcLength(5.0), Point(3, 2));
  EXPECT_EQ(line.AtArcLength(7.0), Point(3, 4));
  EXPECT_EQ(line.AtArcLength(99.0), Point(3, 4));
}

TEST(PolylineTest, DistanceAndContains) {
  Polyline line({{0, 0}, {10, 0}});
  EXPECT_DOUBLE_EQ(line.DistanceTo({5, 2}), 2.0);
  EXPECT_TRUE(line.Contains({5, 0}));
  EXPECT_TRUE(line.Contains({0, 0}));
  EXPECT_FALSE(line.Contains({5, 0.001}));
}

TEST(PolylineTest, IntersectsSegment) {
  Polyline line({{0, 0}, {10, 0}, {10, 10}});
  EXPECT_TRUE(line.IntersectsSegment({{5, -1}, {5, 1}}));
  EXPECT_TRUE(line.IntersectsSegment({{10, 5}, {20, 5}}));
  EXPECT_FALSE(line.IntersectsSegment({{0, 5}, {5, 5}}));
}

TEST(PolylineTest, IntersectsPolyline) {
  Polyline a({{0, 0}, {10, 10}});
  Polyline b({{0, 10}, {10, 0}});
  Polyline c({{20, 20}, {30, 30}});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  // Shared endpoint counts.
  Polyline d({{10, 10}, {20, 5}});
  EXPECT_TRUE(a.Intersects(d));
}

TEST(PolylineTest, ArcLengthInterpolationIsMonotone) {
  Polyline line({{0, 0}, {2, 1}, {5, 5}, {6, 0}});
  double prev_dist = -1.0;
  Point start = line.AtArcLength(0);
  (void)start;
  for (double s = 0.0; s <= line.Length(); s += line.Length() / 100.0) {
    Point p = line.AtArcLength(s);
    // Cumulative distance from the start along the chain equals s (within
    // numeric tolerance) — spot-check monotonicity of the parameterization.
    double d = s;
    EXPECT_GE(d, prev_dist);
    prev_dist = d;
    EXPECT_TRUE(line.DistanceTo(p) < 1e-9);
  }
}

}  // namespace
}  // namespace piet::geometry
