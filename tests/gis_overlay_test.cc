#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "gis/overlay.h"

namespace piet::gis {
namespace {

using geometry::MakeRectangle;
using geometry::Point;

// Two partition layers over [0,100]^2: a 4x4 grid and a 2x2 grid.
struct TwoLayers {
  std::shared_ptr<Layer> fine;
  std::shared_ptr<Layer> coarse;
};

TwoLayers MakeGrids() {
  TwoLayers out;
  out.fine = std::make_shared<Layer>("fine", GeometryKind::kPolygon);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      (void)out.fine->AddPolygon(
          MakeRectangle(c * 25, r * 25, (c + 1) * 25, (r + 1) * 25));
    }
  }
  out.coarse = std::make_shared<Layer>("coarse", GeometryKind::kPolygon);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      (void)out.coarse->AddPolygon(
          MakeRectangle(c * 50, r * 50, (c + 1) * 50, (r + 1) * 50));
    }
  }
  return out;
}

TEST(ConvexOverlayTest, BuildsAndLocates) {
  TwoLayers layers = MakeGrids();
  auto overlay =
      OverlayDb::BuildConvex({layers.fine.get(), layers.coarse.get()});
  ASSERT_TRUE(overlay.ok()) << overlay.status().ToString();
  const OverlayDb& db = overlay.ValueOrDie();
  EXPECT_TRUE(db.is_convex_exact());
  // Each fine cell sits in exactly one coarse cell: 16 overlay cells.
  EXPECT_EQ(db.num_cells(), 16u);

  OverlayHit hit = db.Locate({10, 10});
  ASSERT_EQ(hit.per_layer.size(), 2u);
  ASSERT_EQ(hit.per_layer[0].size(), 1u);
  EXPECT_EQ(hit.per_layer[0][0], 0);  // Fine cell (0,0).
  ASSERT_EQ(hit.per_layer[1].size(), 1u);
  EXPECT_EQ(hit.per_layer[1][0], 0);  // Coarse cell (0,0).
}

TEST(ConvexOverlayTest, LocationMatchesDirectTests) {
  TwoLayers layers = MakeGrids();
  auto overlay =
      OverlayDb::BuildConvex({layers.fine.get(), layers.coarse.get()});
  ASSERT_TRUE(overlay.ok());
  const OverlayDb& db = overlay.ValueOrDie();

  Random rng(33);
  for (int i = 0; i < 500; ++i) {
    Point p(rng.UniformDouble(0, 100), rng.UniformDouble(0, 100));
    OverlayHit hit = db.Locate(p);
    auto direct_fine = layers.fine->GeometriesContaining(p);
    auto direct_coarse = layers.coarse->GeometriesContaining(p);
    std::sort(direct_fine.begin(), direct_fine.end());
    std::sort(direct_coarse.begin(), direct_coarse.end());
    EXPECT_EQ(hit.per_layer[0], direct_fine) << p.ToString();
    EXPECT_EQ(hit.per_layer[1], direct_coarse) << p.ToString();
  }
}

TEST(ConvexOverlayTest, BoundaryPointsHitBothSides) {
  TwoLayers layers = MakeGrids();
  auto overlay = OverlayDb::BuildConvex({layers.fine.get()});
  ASSERT_TRUE(overlay.ok());
  auto ids = overlay.ValueOrDie().LocateInLayer({25, 10}, 0);
  EXPECT_EQ(ids.size(), 2u);  // Border of two fine cells.
}

TEST(ConvexOverlayTest, OutsidePointsLocateNothing) {
  TwoLayers layers = MakeGrids();
  auto overlay = OverlayDb::BuildConvex({layers.fine.get()});
  ASSERT_TRUE(overlay.ok());
  EXPECT_TRUE(overlay.ValueOrDie().LocateInLayer({200, 200}, 0).empty());
}

TEST(ConvexOverlayTest, RejectsNonConvex) {
  auto layer = std::make_shared<Layer>("l", GeometryKind::kPolygon);
  geometry::Ring lring(
      {{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  (void)layer->AddPolygon(geometry::Polygon(lring));
  EXPECT_TRUE(
      OverlayDb::BuildConvex({layer.get()}).status().IsInvalidArgument());
}

TEST(ConvexOverlayTest, RejectsNonPartitionSecondLayer) {
  auto base = std::make_shared<Layer>("base", GeometryKind::kPolygon);
  (void)base->AddPolygon(MakeRectangle(0, 0, 100, 100));
  auto partial = std::make_shared<Layer>("partial", GeometryKind::kPolygon);
  (void)partial->AddPolygon(MakeRectangle(0, 0, 10, 10));  // Covers 1%.
  EXPECT_TRUE(OverlayDb::BuildConvex({base.get(), partial.get()})
                  .status()
                  .IsInvalidArgument());
}

TEST(QuadtreeOverlayTest, HandlesNonConvex) {
  auto layer = std::make_shared<Layer>("l", GeometryKind::kPolygon);
  geometry::Ring lring(
      {{0, 0}, {100, 0}, {100, 50}, {50, 50}, {50, 100}, {0, 100}});
  (void)layer->AddPolygon(geometry::Polygon(lring));
  (void)layer->AddPolygon(MakeRectangle(50, 50, 100, 100));

  auto overlay = OverlayDb::BuildQuadtree({layer.get()}, 6);
  ASSERT_TRUE(overlay.ok());
  const OverlayDb& db = overlay.ValueOrDie();
  EXPECT_FALSE(db.is_convex_exact());

  EXPECT_EQ(db.LocateInLayer({25, 25}, 0), (std::vector<GeometryId>{0}));
  EXPECT_EQ(db.LocateInLayer({75, 75}, 0), (std::vector<GeometryId>{1}));
  EXPECT_EQ(db.LocateInLayer({75, 25}, 0), (std::vector<GeometryId>{0}));
}

TEST(QuadtreeOverlayTest, MatchesDirectOnRandomPoints) {
  TwoLayers layers = MakeGrids();
  auto overlay = OverlayDb::BuildQuadtree(
      {layers.fine.get(), layers.coarse.get()}, 7);
  ASSERT_TRUE(overlay.ok());
  const OverlayDb& db = overlay.ValueOrDie();

  Random rng(44);
  for (int i = 0; i < 500; ++i) {
    Point p(rng.UniformDouble(0, 100), rng.UniformDouble(0, 100));
    OverlayHit hit = db.Locate(p);
    auto direct_fine = layers.fine->GeometriesContaining(p);
    std::sort(direct_fine.begin(), direct_fine.end());
    EXPECT_EQ(hit.per_layer[0], direct_fine) << p.ToString();
  }
}

TEST(QuadtreeOverlayTest, DepthCapKeepsCandidates) {
  // Depth 0: the root never refines, everything stays a candidate, yet
  // answers remain exact (candidates resolved at query time).
  TwoLayers layers = MakeGrids();
  auto overlay = OverlayDb::BuildQuadtree({layers.fine.get()}, 0);
  ASSERT_TRUE(overlay.ok());
  EXPECT_EQ(overlay.ValueOrDie().num_cells(), 1u);
  auto ids = overlay.ValueOrDie().LocateInLayer({10, 10}, 0);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 0);
}

TEST(OverlayTest, ErrorsOnBadInput) {
  EXPECT_TRUE(OverlayDb::BuildConvex({}).status().IsInvalidArgument());
  auto lines = std::make_shared<Layer>("pl", GeometryKind::kPolyline);
  EXPECT_TRUE(
      OverlayDb::BuildConvex({lines.get()}).status().IsInvalidArgument());
  EXPECT_TRUE(
      OverlayDb::BuildQuadtree({lines.get()}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace piet::gis
