#include <gtest/gtest.h>

#include "common/random.h"
#include "moving/heatmap.h"
#include "moving/simplify.h"

namespace piet::moving {
namespace {

using geometry::BoundingBox;
using geometry::Point;
using temporal::TimePoint;

TrajectorySample MakeSample(std::vector<TimedPoint> pts) {
  return TrajectorySample::Create(std::move(pts)).ValueOrDie();
}

TEST(SimplifyTest, CollinearUniformMotionCollapses) {
  // Constant-velocity motion: every interior sample is exactly on the
  // chord, so tolerance 0 keeps just the endpoints.
  std::vector<TimedPoint> pts;
  for (int i = 0; i <= 10; ++i) {
    pts.push_back({TimePoint(i), Point(2.0 * i, 3.0 * i)});
  }
  auto simplified =
      SimplifySynchronized(MakeSample(pts), 0.0).ValueOrDie();
  EXPECT_EQ(simplified.size(), 2u);
}

TEST(SimplifyTest, SpatialLineWithSpeedChangeIsKept) {
  // The image is a straight line, but the object pauses midway: plain
  // Douglas-Peucker would drop the middle point, synchronized distance
  // must keep it (time-parameterized deviation is large).
  std::vector<TimedPoint> pts = {
      {TimePoint(0), {0, 0}},
      {TimePoint(9), {1, 0}},   // Slow first half.
      {TimePoint(10), {10, 0}}  // Fast second half.
  };
  auto simplified =
      SimplifySynchronized(MakeSample(pts), 0.5).ValueOrDie();
  EXPECT_EQ(simplified.size(), 3u);
}

TEST(SimplifyTest, ToleranceBoundsError) {
  Random rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<TimedPoint> pts;
    double t = 0.0;
    Point pos(0, 0);
    for (int i = 0; i < 50; ++i) {
      pts.push_back({TimePoint(t), pos});
      t += rng.UniformDouble(0.5, 2.0);
      pos = pos + Point(rng.UniformDouble(-5, 10), rng.UniformDouble(-5, 5));
    }
    TrajectorySample original = MakeSample(pts);
    for (double tolerance : {0.5, 2.0, 10.0}) {
      auto simplified =
          SimplifySynchronized(original, tolerance).ValueOrDie();
      EXPECT_LE(simplified.size(), original.size());
      double err =
          MaxSynchronizedError(original, simplified).ValueOrDie();
      EXPECT_LE(err, tolerance + 1e-9)
          << "tolerance " << tolerance << " trial " << trial;
    }
  }
}

TEST(SimplifyTest, MonotoneCompression) {
  // Larger tolerance never keeps more points.
  Random rng(7);
  std::vector<TimedPoint> pts;
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({TimePoint(t),
                   Point(rng.UniformDouble(0, 100), rng.UniformDouble(0, 100))});
    t += 1.0;
  }
  TrajectorySample original = MakeSample(pts);
  size_t prev = original.size() + 1;
  for (double tolerance : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
    auto simplified = SimplifySynchronized(original, tolerance).ValueOrDie();
    EXPECT_LE(simplified.size(), prev);
    prev = simplified.size();
  }
  // Huge tolerance keeps only the endpoints.
  EXPECT_EQ(prev, 2u);
}

TEST(SimplifyTest, EdgeCases) {
  EXPECT_TRUE(SimplifySynchronized(MakeSample({{TimePoint(0), {0, 0}}}), 1.0)
                  .ok());
  EXPECT_TRUE(
      SimplifySynchronized(MakeSample({{TimePoint(0), {0, 0}}}), -1.0)
          .status()
          .IsInvalidArgument());
}

TEST(HeatmapTest, SinglePassAcrossGrid) {
  TrajectoryHeatmap map(BoundingBox(0, 0, 100, 100), 10);
  Moft moft;
  // Horizontal crossing at y=55: passes through row cy=5.
  ASSERT_TRUE(moft.Add(1, TimePoint(0), {0, 55}).ok());
  ASSERT_TRUE(moft.Add(1, TimePoint(10), {100, 55}).ok());
  ASSERT_TRUE(map.AddMoft(moft).ok());

  for (size_t cx = 0; cx < 10; ++cx) {
    EXPECT_EQ(map.PassCount(cx, 5), 1) << cx;
    EXPECT_EQ(map.PassCount(cx, 2), 0) << cx;
  }
  // Only the endpoint cells have observed samples.
  EXPECT_EQ(map.SampleCount(0, 5), 1);
  EXPECT_EQ(map.SampleCount(9, 5), 1);
  EXPECT_EQ(map.SampleCount(4, 5), 0);
}

TEST(HeatmapTest, PassCountsAreDistinctPerObject) {
  TrajectoryHeatmap map(BoundingBox(0, 0, 100, 100), 4);
  Moft moft;
  // One object zig-zags through the same cell twice: still one pass.
  ASSERT_TRUE(moft.Add(1, TimePoint(0), {10, 10}).ok());
  ASSERT_TRUE(moft.Add(1, TimePoint(5), {15, 15}).ok());
  ASSERT_TRUE(moft.Add(1, TimePoint(10), {5, 5}).ok());
  // A second object visits the same cell: two passes total.
  ASSERT_TRUE(moft.Add(2, TimePoint(0), {12, 12}).ok());
  ASSERT_TRUE(map.AddMoft(moft).ok());
  EXPECT_EQ(map.PassCount(0, 0), 2);
  EXPECT_EQ(map.SampleCount(0, 0), 4);
}

TEST(HeatmapTest, HotspotAndFactTable) {
  TrajectoryHeatmap map(BoundingBox(0, 0, 100, 100), 4);
  Moft moft;
  for (int obj = 1; obj <= 3; ++obj) {
    // All three objects cross the center cell (cx=1..2, cy=1..2 area).
    ASSERT_TRUE(
        moft.Add(obj, TimePoint(0), {50.0 + obj, 10.0 * obj}).ok());
    ASSERT_TRUE(
        moft.Add(obj, TimePoint(10), {50.0 + obj, 90.0}).ok());
  }
  ASSERT_TRUE(map.AddMoft(moft).ok());
  auto hotspot = map.MaxCell();
  EXPECT_EQ(hotspot.passes, 3);
  EXPECT_EQ(hotspot.cx, 2u);  // x ~ 51-53 -> cell 2 of 4 (width 25).

  auto table = map.ToFactTable();
  EXPECT_GT(table.num_rows(), 0u);
  // Total passes in the table match the per-cell sums.
  int64_t total = 0;
  for (const auto& row : table.rows()) {
    total += row[2].AsIntUnchecked();
  }
  int64_t expected = 0;
  for (size_t cy = 0; cy < 4; ++cy) {
    for (size_t cx = 0; cx < 4; ++cx) {
      expected += map.PassCount(cx, cy);
    }
  }
  EXPECT_EQ(total, expected);
}

TEST(HeatmapTest, StationaryObject) {
  TrajectoryHeatmap map(BoundingBox(0, 0, 10, 10), 2);
  Moft moft;
  ASSERT_TRUE(moft.Add(1, TimePoint(0), {2, 2}).ok());
  ASSERT_TRUE(map.AddMoft(moft).ok());
  EXPECT_EQ(map.PassCount(0, 0), 1);
  EXPECT_EQ(map.SampleCount(0, 0), 1);
}

TEST(HeatmapTest, CellBoxGeometry) {
  TrajectoryHeatmap map(BoundingBox(0, 0, 100, 50), 5);
  BoundingBox cell = map.CellBox(1, 2);
  EXPECT_DOUBLE_EQ(cell.min_x, 20.0);
  EXPECT_DOUBLE_EQ(cell.max_x, 40.0);
  EXPECT_DOUBLE_EQ(cell.min_y, 20.0);
  EXPECT_DOUBLE_EQ(cell.max_y, 30.0);
}

}  // namespace
}  // namespace piet::moving
