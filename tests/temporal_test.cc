#include <gtest/gtest.h>

#include "common/random.h"
#include "temporal/calendar.h"
#include "temporal/interval.h"
#include "temporal/time_dimension.h"

namespace piet::temporal {
namespace {

TEST(CalendarTest, EpochIsSaturday) {
  TimePoint epoch(0);
  EXPECT_EQ(GetDayOfWeek(epoch), DayOfWeek::kSaturday);
  CivilTime c = ToCivil(epoch);
  EXPECT_EQ(c.year, 2000);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
  EXPECT_EQ(c.hour, 0);
}

TEST(CalendarTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_TRUE(IsLeapYear(2004));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(2001));
  EXPECT_EQ(DaysInMonth(2000, 2), 29);
  EXPECT_EQ(DaysInMonth(2001, 2), 28);
  EXPECT_EQ(DaysInMonth(2001, 12), 31);
}

TEST(CalendarTest, CivilRoundTrip) {
  Random rng(21);
  for (int i = 0; i < 500; ++i) {
    CivilTime c;
    c.year = static_cast<int>(rng.UniformInt(1995, 2035));
    c.month = static_cast<int>(rng.UniformInt(1, 12));
    c.day = static_cast<int>(rng.UniformInt(1, DaysInMonth(c.year, c.month)));
    c.hour = static_cast<int>(rng.UniformInt(0, 23));
    c.minute = static_cast<int>(rng.UniformInt(0, 59));
    c.second = static_cast<double>(rng.UniformInt(0, 59));
    auto t = FromCivil(c);
    ASSERT_TRUE(t.ok());
    CivilTime back = ToCivil(t.ValueOrDie());
    EXPECT_EQ(back.year, c.year);
    EXPECT_EQ(back.month, c.month);
    EXPECT_EQ(back.day, c.day);
    EXPECT_EQ(back.hour, c.hour);
    EXPECT_EQ(back.minute, c.minute);
    EXPECT_NEAR(back.second, c.second, 1e-6);
  }
}

TEST(CalendarTest, KnownDates) {
  // 2006-01-02 was a Monday; 2006-01-07 a Saturday (paper's query 4 date).
  auto monday = ParseTimePoint("2006-01-02 00:00");
  ASSERT_TRUE(monday.ok());
  EXPECT_EQ(GetDayOfWeek(monday.ValueOrDie()), DayOfWeek::kMonday);
  auto saturday = ParseTimePoint("2006-01-07 09:15");
  ASSERT_TRUE(saturday.ok());
  EXPECT_EQ(GetDayOfWeek(saturday.ValueOrDie()), DayOfWeek::kSaturday);
  EXPECT_EQ(GetHourOfDay(saturday.ValueOrDie()), 9);
}

TEST(CalendarTest, NegativeTimesBeforeEpoch) {
  TimePoint t(-kDay);  // 1999-12-31.
  CivilTime c = ToCivil(t);
  EXPECT_EQ(c.year, 1999);
  EXPECT_EQ(c.month, 12);
  EXPECT_EQ(c.day, 31);
  EXPECT_EQ(GetDayOfWeek(t), DayOfWeek::kFriday);
}

TEST(CalendarTest, TimeOfDayBuckets) {
  auto at = [](int h) {
    CivilTime c;
    c.hour = h;
    return FromCivil(c).ValueOrDie();
  };
  EXPECT_EQ(GetTimeOfDay(at(0)), TimeOfDay::kNight);
  EXPECT_EQ(GetTimeOfDay(at(5)), TimeOfDay::kNight);
  EXPECT_EQ(GetTimeOfDay(at(6)), TimeOfDay::kMorning);
  EXPECT_EQ(GetTimeOfDay(at(11)), TimeOfDay::kMorning);
  EXPECT_EQ(GetTimeOfDay(at(12)), TimeOfDay::kAfternoon);
  EXPECT_EQ(GetTimeOfDay(at(17)), TimeOfDay::kAfternoon);
  EXPECT_EQ(GetTimeOfDay(at(18)), TimeOfDay::kEvening);
  EXPECT_EQ(GetTimeOfDay(at(23)), TimeOfDay::kEvening);
}

TEST(CalendarTest, ParseErrors) {
  EXPECT_TRUE(ParseTimePoint("garbage").status().IsParseError());
  EXPECT_TRUE(ParseTimePoint("2006-13-01").status().IsInvalidArgument());
  EXPECT_TRUE(ParseTimePoint("2006-02-30").status().IsInvalidArgument());
  EXPECT_TRUE(ParseTimePoint("2006-01-02").ok());  // Date only.
}

TEST(CalendarTest, StartOfDayAndHour) {
  auto t = ParseTimePoint("2006-03-15 13:47:20").ValueOrDie();
  EXPECT_EQ(ToCivil(StartOfDay(t)).hour, 0);
  EXPECT_EQ(ToCivil(StartOfHour(t)).minute, 0);
  EXPECT_EQ(ToCivil(StartOfHour(t)).hour, 13);
}

TEST(IntervalSetTest, CanonicalizesOverlaps) {
  IntervalSet set({{TimePoint(5), TimePoint(10)},
                   {TimePoint(0), TimePoint(6)},
                   {TimePoint(20), TimePoint(25)}});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0], Interval(TimePoint(0), TimePoint(10)));
  EXPECT_EQ(set.intervals()[1], Interval(TimePoint(20), TimePoint(25)));
  EXPECT_DOUBLE_EQ(set.TotalLength(), 15.0);
}

TEST(IntervalSetTest, MergesTouching) {
  IntervalSet set({{TimePoint(0), TimePoint(5)}, {TimePoint(5), TimePoint(8)}});
  EXPECT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.TotalLength(), 8.0);
}

TEST(IntervalSetTest, Contains) {
  IntervalSet set({{TimePoint(0), TimePoint(2)}, {TimePoint(5), TimePoint(6)}});
  EXPECT_TRUE(set.Contains(TimePoint(0)));
  EXPECT_TRUE(set.Contains(TimePoint(2)));
  EXPECT_FALSE(set.Contains(TimePoint(3)));
  EXPECT_TRUE(set.Contains(TimePoint(5.5)));
  EXPECT_FALSE(set.Contains(TimePoint(-1)));
  EXPECT_FALSE(set.Contains(TimePoint(7)));
}

TEST(IntervalSetTest, IntersectAndUnion) {
  IntervalSet a({{TimePoint(0), TimePoint(10)}, {TimePoint(20), TimePoint(30)}});
  IntervalSet b({{TimePoint(5), TimePoint(25)}});
  IntervalSet isect = a.Intersect(b);
  ASSERT_EQ(isect.size(), 2u);
  EXPECT_EQ(isect.intervals()[0], Interval(TimePoint(5), TimePoint(10)));
  EXPECT_EQ(isect.intervals()[1], Interval(TimePoint(20), TimePoint(25)));

  IntervalSet uni = a.Union(b);
  ASSERT_EQ(uni.size(), 1u);
  EXPECT_EQ(uni.intervals()[0], Interval(TimePoint(0), TimePoint(30)));
}

TEST(IntervalSetTest, PointIntervals) {
  IntervalSet set({{TimePoint(3), TimePoint(3)}});
  EXPECT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.TotalLength(), 0.0);
  EXPECT_TRUE(set.Contains(TimePoint(3)));
  EXPECT_TRUE(set.WithoutPoints().empty());
}

TEST(IntervalSetTest, ClipWindow) {
  IntervalSet set({{TimePoint(0), TimePoint(100)}});
  IntervalSet clipped = set.Clip(Interval(TimePoint(40), TimePoint(60)));
  ASSERT_EQ(clipped.size(), 1u);
  EXPECT_DOUBLE_EQ(clipped.TotalLength(), 20.0);
}

// Property: interval-set operations agree with pointwise evaluation.
class IntervalSetProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntervalSetProperty, SetAlgebraMatchesPointwise) {
  Random rng(500 + GetParam());
  auto random_set = [&] {
    std::vector<Interval> ivs;
    int n = static_cast<int>(rng.UniformInt(0, 6));
    for (int i = 0; i < n; ++i) {
      double a = static_cast<double>(rng.UniformInt(0, 50));
      double b = a + static_cast<double>(rng.UniformInt(0, 10));
      ivs.emplace_back(TimePoint(a), TimePoint(b));
    }
    return IntervalSet(std::move(ivs));
  };
  for (int trial = 0; trial < 50; ++trial) {
    IntervalSet a = random_set();
    IntervalSet b = random_set();
    IntervalSet uni = a.Union(b);
    IntervalSet isect = a.Intersect(b);
    for (double t = -1.0; t <= 62.0; t += 0.5) {
      TimePoint tp(t);
      EXPECT_EQ(uni.Contains(tp), a.Contains(tp) || b.Contains(tp)) << t;
      EXPECT_EQ(isect.Contains(tp), a.Contains(tp) && b.Contains(tp)) << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty, ::testing::Range(0, 6));

TEST(TimeDimensionTest, Rollups) {
  TimeDimension dim;
  TimePoint t = ParseTimePoint("2006-01-02 09:30:00").ValueOrDie();
  EXPECT_EQ(dim.Rollup("hour", t).ValueOrDie(), Value(int64_t{9}));
  EXPECT_EQ(dim.Rollup("timeOfDay", t).ValueOrDie(), Value("Morning"));
  EXPECT_EQ(dim.Rollup("dayOfWeek", t).ValueOrDie(), Value("Monday"));
  EXPECT_EQ(dim.Rollup("typeOfDay", t).ValueOrDie(), Value("Weekday"));
  EXPECT_EQ(dim.Rollup("day", t).ValueOrDie(), Value("2006-01-02"));
  EXPECT_EQ(dim.Rollup("month", t).ValueOrDie(), Value("2006-01"));
  EXPECT_EQ(dim.Rollup("year", t).ValueOrDie(), Value(int64_t{2006}));
  EXPECT_EQ(dim.Rollup("minute", t).ValueOrDie(), Value("2006-01-02 09:30"));
  EXPECT_EQ(dim.Rollup("all", t).ValueOrDie(), Value("all"));
  EXPECT_TRUE(dim.Rollup("bogus", t).status().IsNotFound());
}

TEST(TimeDimensionTest, WeekendTyping) {
  TimeDimension dim;
  TimePoint sat = ParseTimePoint("2006-01-07 10:00").ValueOrDie();
  EXPECT_EQ(dim.Rollup("typeOfDay", sat).ValueOrDie(), Value("Weekend"));
}

TEST(TimeDimensionTest, RollsUpGraph) {
  EXPECT_TRUE(TimeDimension::RollsUp("timeId", "hour"));
  EXPECT_TRUE(TimeDimension::RollsUp("hour", "timeOfDay"));
  EXPECT_TRUE(TimeDimension::RollsUp("minute", "timeOfDay"));
  EXPECT_TRUE(TimeDimension::RollsUp("day", "year"));
  EXPECT_TRUE(TimeDimension::RollsUp("day", "typeOfDay"));
  EXPECT_TRUE(TimeDimension::RollsUp("hour", "all"));
  EXPECT_FALSE(TimeDimension::RollsUp("hour", "day"));
  EXPECT_FALSE(TimeDimension::RollsUp("timeOfDay", "hour"));
  EXPECT_TRUE(TimeDimension::HasLevel("hourBucket"));
  EXPECT_FALSE(TimeDimension::HasLevel("fortnight"));
}

TEST(TimeDimensionTest, HourBucketGroupsAcrossDays) {
  TimeDimension dim;
  TimePoint a = ParseTimePoint("2006-01-02 09:10").ValueOrDie();
  TimePoint b = ParseTimePoint("2006-01-02 09:50").ValueOrDie();
  TimePoint c = ParseTimePoint("2006-01-03 09:10").ValueOrDie();
  EXPECT_EQ(dim.Rollup("hourBucket", a).ValueOrDie(),
            dim.Rollup("hourBucket", b).ValueOrDie());
  EXPECT_NE(dim.Rollup("hourBucket", a).ValueOrDie(),
            dim.Rollup("hourBucket", c).ValueOrDie());
  // Same hour-of-day though.
  EXPECT_EQ(dim.Rollup("hour", a).ValueOrDie(),
            dim.Rollup("hour", c).ValueOrDie());
}

}  // namespace
}  // namespace piet::temporal
