// Tests for the static plan rewriter (src/analysis/rewrite/) and the batch
// geometry kernels (src/core/geometry/batch.*):
//
//  - the rw-* rule-id catalog is golden-tested like AllLintCheckIds, and the
//    lint corpus covers every rule via `expect-rewrite` directives;
//  - per-rule behavior and the rewriter's exactness/abstention flags;
//  - rewriting is idempotent through the printer round-trip;
//  - the batch kernels are bit-identical to the scalar Polygon::Contains /
//    Polygon::IntersectsSegment, boundary and vertex points included;
//  - the evaluator contract: RewriteMode::kOn is result-bit-identical to
//    kOff for every corpus query and all eight Figure-1 query shapes, on a
//    generated city with real trajectories, serial and at four threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lint/corpus.h"
#include "analysis/rewrite/rewriter.h"
#include "core/geometry/batch.h"
#include "core/pietql/evaluator.h"
#include "core/pietql/parser.h"
#include "core/pietql/printer.h"
#include "geometry/point.h"
#include "geometry/polygon.h"
#include "geometry/segment.h"
#include "workload/city.h"
#include "workload/scenario.h"
#include "workload/trajectories.h"

namespace piet::analysis::rewrite {
namespace {

using core::batch::BatchScratch;
using core::batch::PolygonBatcher;
using core::pietql::Evaluator;
using core::pietql::Parse;
using core::pietql::Print;
using core::pietql::Query;
using core::pietql::QueryResult;
using geometry::Point;
using geometry::Polygon;
using geometry::Ring;
using geometry::Segment;
using lint::CheckRewriteExpectations;
using lint::CorpusCase;
using lint::ParseCorpusFile;
using lint::ParseCorpusText;
using lint::RewriteRuleIdsForCase;

std::vector<std::string> CorpusPaths() {
  std::vector<std::string> paths;
  const std::filesystem::path dir =
      std::filesystem::path(PIET_SOURCE_DIR) / "tests" / "lint_corpus";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".lint") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

// --- Rule catalog ---

TEST(RewriteCatalogTest, AllRuleIdsGolden) {
  const std::vector<std::string> kExpected = {
      "rw-contradictory-spatial", "rw-drop-redundant-clause",
      "rw-empty-region",          "rw-empty-time",
      "rw-fold-time-window",      "rw-select-reorder",
  };
  EXPECT_EQ(AllRewriteRuleIds(), kExpected);
}

TEST(RewriteCatalogTest, CorpusExpectationsAreInCatalogAndCoverIt) {
  const std::vector<std::string> catalog = AllRewriteRuleIds();
  std::set<std::string> covered;
  for (const std::string& path : CorpusPaths()) {
    auto parsed = ParseCorpusFile(path);
    ASSERT_TRUE(parsed.ok()) << path << ": " << parsed.status().ToString();
    for (const std::string& id : parsed.ValueOrDie().expected_rewrite_ids) {
      EXPECT_TRUE(std::binary_search(catalog.begin(), catalog.end(), id))
          << path << " expects unknown rewrite rule " << id;
      covered.insert(id);
    }
  }
  // Every catalogued rule must be exercised by at least one corpus case.
  for (const std::string& id : catalog) {
    EXPECT_TRUE(covered.count(id)) << "no corpus case covers " << id;
  }
}

// --- Corpus sweep ---

TEST(RewriteCorpusTest, EveryCaseMatchesItsRewriteExpectations) {
  for (const std::string& path : CorpusPaths()) {
    auto parsed = ParseCorpusFile(path);
    ASSERT_TRUE(parsed.ok()) << path << ": " << parsed.status().ToString();
    Status verdict = CheckRewriteExpectations(parsed.ValueOrDie());
    EXPECT_TRUE(verdict.ok()) << path << ": " << verdict.ToString();
  }
}

TEST(RewriteCorpusTest, RewritingIsIdempotentOnEveryCorpusQuery) {
  for (const std::string& path : CorpusPaths()) {
    auto parsed = ParseCorpusFile(path);
    ASSERT_TRUE(parsed.ok()) << path;
    const CorpusCase& c = parsed.ValueOrDie();
    if (c.instance == nullptr) {
      continue;
    }
    RewriteContext context;
    context.gis = c.instance.get();
    for (const std::string& text : c.queries) {
      auto query = Parse(text);
      if (!query.ok()) {
        continue;  // lint-parse-error territory; nothing to rewrite.
      }
      RewritePlan once = RewriteQuery(context, query.ValueOrDie());
      const std::string printed = Print(once.query);
      auto reparsed = Parse(printed);
      ASSERT_TRUE(reparsed.ok())
          << path << ": rewritten text does not re-parse: " << printed;
      RewritePlan twice = RewriteQuery(context, reparsed.ValueOrDie());
      EXPECT_EQ(Print(twice.query), printed) << path << ": not idempotent";
    }
  }
}

TEST(RewriteCorpusTest, ParseErrorsNameFileAndLine) {
  auto bad = ParseCorpusText("badcase.lint",
                             "# comment\nlayer Ln polygon\nbogus stuff\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("badcase.lint:3:"), std::string::npos)
      << bad.status().ToString();

  auto bad_args = ParseCorpusText("argcase.lint", "layer Ln\n");
  ASSERT_FALSE(bad_args.ok());
  EXPECT_NE(bad_args.status().ToString().find("argcase.lint:1:"),
            std::string::npos)
      << bad_args.status().ToString();
}

// --- Per-rule behavior against the Figure 1 schema ---

class RewriteRuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = workload::BuildFigure1Scenario();
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = std::move(scenario).ValueOrDie();
    context_.gis = &scenario_.db->gis();
  }

  RewritePlan Rewrite(const char* text) {
    auto query = Parse(text);
    EXPECT_TRUE(query.ok()) << text << ": " << query.status().ToString();
    return RewriteQuery(context_, query.ValueOrDie());
  }

  static bool Applied(const RewritePlan& plan, const std::string& rule) {
    return std::any_of(
        plan.applied.begin(), plan.applied.end(),
        [&](const AppliedRewrite& a) { return a.rule_id == rule; });
  }

  workload::Figure1Scenario scenario_;
  RewriteContext context_;
};

TEST_F(RewriteRuleTest, EmptyTimeShortCircuits) {
  RewritePlan plan = Rewrite(
      "SELECT layer.Ln; FROM PietSchema; "
      "| SELECT COUNT(*) FROM FMbus WHERE TIME.hour = 25");
  EXPECT_TRUE(plan.mo_zero);
  EXPECT_FALSE(plan.geo_zero);
  EXPECT_TRUE(Applied(plan, "rw-empty-time")) << plan.ToString();
}

TEST_F(RewriteRuleTest, NegativeNearRadiusIsContradictory) {
  RewritePlan plan = Rewrite(
      "SELECT layer.Ln; FROM PietSchema; "
      "| SELECT COUNT(*) FROM FMbus WHERE NEAR(layer.Ls, -5)");
  EXPECT_TRUE(plan.mo_zero);
  EXPECT_TRUE(Applied(plan, "rw-contradictory-spatial")) << plan.ToString();
}

TEST_F(RewriteRuleTest, ShadowedWindowIsDropped) {
  RewritePlan plan = Rewrite(
      "SELECT layer.Ln; FROM PietSchema; "
      "| SELECT COUNT(*) FROM FMbus "
      "WHERE T BETWEEN 0 AND 100 AND T BETWEEN 50 AND 80");
  EXPECT_FALSE(plan.mo_zero);
  EXPECT_TRUE(Applied(plan, "rw-drop-redundant-clause")) << plan.ToString();
  EXPECT_EQ(plan.mo_clauses_before, 2u);
  EXPECT_EQ(plan.mo_clauses_after, 1u);
  EXPECT_NE(Print(plan.query).find("T BETWEEN 50 AND 80"), std::string::npos);
}

TEST_F(RewriteRuleTest, AttrBeforeSpatialReorder) {
  RewritePlan plan = Rewrite(
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE INTERSECTION(layer.Ln, layer.Lr) "
      "AND ATTR(layer.Ln, income) < 1500");
  EXPECT_TRUE(Applied(plan, "rw-select-reorder")) << plan.ToString();
  const std::string printed = Print(plan.query);
  EXPECT_LT(printed.find("ATTR"), printed.find("INTERSECTION")) << printed;
}

TEST_F(RewriteRuleTest, EmptyRegionConstantFoldsGeoPart) {
  RewritePlan plan = Rewrite(
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE ATTR(layer.Ln, income) < -10");
  EXPECT_TRUE(plan.geo_zero);
  EXPECT_TRUE(Applied(plan, "rw-empty-region")) << plan.ToString();
}

TEST_F(RewriteRuleTest, CleanQueryIsUntouched) {
  const char* text =
      "SELECT layer.Ln; FROM PietSchema; "
      "WHERE ATTR(layer.Ln, income) < 1500 "
      "| SELECT COUNT(DISTINCT OID) FROM FMbus WHERE INSIDE RESULT";
  RewritePlan plan = Rewrite(text);
  EXPECT_FALSE(plan.changed()) << plan.ToString();
  EXPECT_FALSE(plan.geo_zero);
  EXPECT_FALSE(plan.mo_zero);
  auto query = Parse(text);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(Print(plan.query), Print(query.ValueOrDie()));
}

// --- Batch geometry kernels vs the scalar predicates ---

// A deliberately nasty polygon: nonconvex L-shaped shell with horizontal
// and vertical edges plus a square hole, so the grid probes below hit
// interior, exterior, hole interior, edges, and vertices exactly.
Polygon MakeLWithHole() {
  Ring shell(std::vector<Point>{{0, 0},
                                {10, 0},
                                {10, 4},
                                {6, 4},
                                {6, 10},
                                {0, 10}});
  Ring hole(std::vector<Point>{{1, 1}, {3, 1}, {3, 3}, {1, 3}});
  return Polygon(std::move(shell), {std::move(hole)});
}

TEST(BatchKernelTest, ContainsBatchMatchesScalarOnAlignedGrid) {
  const Polygon poly = MakeLWithHole();
  PolygonBatcher batcher(&poly);
  std::vector<double> xs;
  std::vector<double> ys;
  // Half-unit grid spanning past the bbox: lands on every edge, every
  // vertex, hole corners, and plenty of strict interior/exterior points.
  for (double y = -1.0; y <= 11.0; y += 0.5) {
    for (double x = -1.0; x <= 11.0; x += 0.5) {
      xs.push_back(x);
      ys.push_back(y);
    }
  }
  BatchScratch scratch;
  std::vector<uint8_t> out;
  batcher.ContainsBatch(xs, ys, &scratch, &out);
  ASSERT_EQ(out.size(), xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(out[i] != 0, poly.Contains(Point(xs[i], ys[i])))
        << "(" << xs[i] << ", " << ys[i] << ")";
  }
}

TEST(BatchKernelTest, ContainsBatchMatchesScalarOnRandomPoints) {
  std::mt19937 rng(20260809);
  std::uniform_real_distribution<double> coord(-2.0, 12.0);
  std::uniform_int_distribution<int> sides(3, 9);
  for (int round = 0; round < 8; ++round) {
    Polygon poly =
        round % 2 == 0
            ? MakeLWithHole()
            : geometry::MakeRegularPolygon(Point(coord(rng), coord(rng)),
                                           1.0 + round, sides(rng));
    PolygonBatcher batcher(&poly);
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < 500; ++i) {
      xs.push_back(coord(rng));
      ys.push_back(coord(rng));
    }
    // Also replay the polygon's own vertices: exact boundary hits.
    for (const Point& v : poly.shell().vertices()) {
      xs.push_back(v.x);
      ys.push_back(v.y);
    }
    BatchScratch scratch;
    std::vector<uint8_t> out;
    batcher.ContainsBatch(xs, ys, &scratch, &out);
    ASSERT_EQ(out.size(), xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
      ASSERT_EQ(out[i] != 0, poly.Contains(Point(xs[i], ys[i])))
          << "round " << round << " (" << xs[i] << ", " << ys[i] << ")";
    }
  }
}

TEST(BatchKernelTest, AnyLegIntersectsMatchesScalarSegments) {
  const Polygon poly = MakeLWithHole();
  PolygonBatcher batcher(&poly);
  std::mt19937 rng(424242);
  std::uniform_real_distribution<double> coord(-4.0, 14.0);
  std::uniform_int_distribution<int> len(1, 12);
  for (int walk = 0; walk < 200; ++walk) {
    const int n = len(rng);
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < n; ++i) {
      xs.push_back(coord(rng));
      ys.push_back(coord(rng));
    }
    bool scalar = false;
    for (int i = 0; i + 1 < n; ++i) {
      if (poly.IntersectsSegment(Segment(Point(xs[i], ys[i]),
                                         Point(xs[i + 1], ys[i + 1])))) {
        scalar = true;
        break;
      }
    }
    EXPECT_EQ(batcher.AnyLegIntersects(xs, ys), scalar) << "walk " << walk;
  }
  // Fewer than two points can have no leg.
  std::vector<double> one{5.0};
  EXPECT_FALSE(batcher.AnyLegIntersects(one, one));
  // A leg that only grazes a vertex still counts (closed polygon).
  std::vector<double> gx{-1.0, 1.0};
  std::vector<double> gy{1.0, -1.0};
  EXPECT_EQ(batcher.AnyLegIntersects(gx, gy),
            poly.IntersectsSegment(Segment(Point(-1, 1), Point(1, -1))));
}

// --- Evaluator exactness: kOn bit-identical to kOff ---

void ExpectSameOutcome(const Result<QueryResult>& off,
                       const Result<QueryResult>& on, const std::string& tag) {
  ASSERT_EQ(off.ok(), on.ok())
      << tag << ": off=" << off.status().ToString()
      << " on=" << on.status().ToString();
  if (!off.ok()) {
    // The rewriter must abstain from proofs that would suppress an
    // evaluation error: same status, same message.
    EXPECT_EQ(off.status().ToString(), on.status().ToString()) << tag;
    return;
  }
  const QueryResult& a = off.ValueOrDie();
  const QueryResult& b = on.ValueOrDie();
  EXPECT_EQ(a.ToString(), b.ToString()) << tag;
  EXPECT_EQ(a.geometry_ids, b.geometry_ids) << tag;
  ASSERT_EQ(a.scalar.has_value(), b.scalar.has_value()) << tag;
  if (a.scalar && b.scalar) {
    EXPECT_EQ(*a.scalar, *b.scalar) << tag;
  }
  ASSERT_EQ(a.table.has_value(), b.table.has_value()) << tag;
  if (a.table && b.table) {
    EXPECT_EQ(a.table->rows(), b.table->rows()) << tag;
  }
  // kOff never records rewrite info; kOn always does.
  EXPECT_FALSE(a.rewrite.has_value()) << tag;
  EXPECT_TRUE(b.rewrite.has_value()) << tag;
}

// All eight Figure-1 query shapes (the frozen-baseline list of
// parallel_determinism_test.cc) plus rewrite-triggering variants.
const char* kFigure1Queries[] = {
    "SELECT layer.Ln; FROM PietSchema; "
    "WHERE ATTR(layer.Ln, income) < 1500 "
    "| SELECT RATE PER HOUR FROM FMbus "
    "WHERE INSIDE RESULT AND TIME.timeOfDay = 'Morning'",
    "SELECT layer.Ln; FROM PietSchema; "
    "| SELECT COUNT(DISTINCT OID) FROM FMbus WHERE INSIDE RESULT",
    "SELECT layer.Ln; FROM PietSchema; "
    "| SELECT COUNT(DISTINCT OID) FROM FMbus WHERE PASSES THROUGH RESULT",
    "SELECT layer.Ln; FROM PietSchema; "
    "| SELECT COUNT(*) FROM FMbus WHERE NEAR(layer.Ls, 10)",
    "SELECT layer.Ln; FROM PietSchema; "
    "| SELECT COUNT(*) FROM FMbus",
    "SELECT layer.Ln; FROM PietSchema; "
    "| SELECT COUNT(*) FROM FMbus WHERE T BETWEEN 189493200 AND 189500000",
    "SELECT layer.Ln; FROM PietSchema; "
    "WHERE ATTR(layer.Ln, income) < 1500 "
    "| SELECT RATE PER HOUR FROM FMbus WHERE INSIDE RESULT "
    "GROUP BY TIME.hour",
    "SELECT layer.Ln, layer.Lr; FROM PietSchema; "
    "WHERE INTERSECTION(layer.Ln, layer.Lr)",
    // Rewrite-triggering variants of the same shapes.
    "SELECT layer.Ln; FROM PietSchema; "
    "| SELECT COUNT(*) FROM FMbus "
    "WHERE T BETWEEN 189400000 AND 189600000 "
    "AND T BETWEEN 189493200 AND 189500000",
    "SELECT layer.Ln; FROM PietSchema; "
    "| SELECT COUNT(*) FROM FMbus WHERE TIME.hour = 25",
    "SELECT layer.Ln; FROM PietSchema; "
    "WHERE INTERSECTION(layer.Ln, layer.Lr) "
    "AND ATTR(layer.Ln, income) < 1500",
    "SELECT layer.Ln; FROM PietSchema; "
    "WHERE ATTR(layer.Ln, income) < -10 "
    "| SELECT COUNT(*) FROM FMbus WHERE INSIDE RESULT",
};

TEST(RewriteEvaluatorTest, OnModeBitIdenticalToOffOnFigure1) {
  for (int threads : {1, 4}) {
    auto scenario = workload::BuildFigure1Scenario().ValueOrDie();
    ASSERT_TRUE(
        scenario.db->BuildOverlay({scenario.neighborhoods_layer}).ok());
    scenario.db->set_num_threads(threads);
    Evaluator off(scenario.db.get());
    off.set_rewrite_mode(RewriteMode::kOff);
    off.set_num_threads(threads);
    Evaluator on(scenario.db.get());
    on.set_rewrite_mode(RewriteMode::kOn);
    on.set_num_threads(threads);
    for (const char* q : kFigure1Queries) {
      ExpectSameOutcome(off.EvaluateString(q), on.EvaluateString(q),
                        std::string(q) + " threads=" +
                            std::to_string(threads));
    }
  }
}

TEST(RewriteEvaluatorTest, OnModeBitIdenticalToOffOnCorpusQueries) {
  // Corpus queries reference layers Ln/Lr/Ls and MOFT FM; run them against
  // the Figure-1 database (which has the layers but not the MOFT). Queries
  // that evaluate must agree bit-for-bit; queries that error must produce
  // the same status — the rewriter's short circuits may not suppress
  // validation errors.
  auto scenario = workload::BuildFigure1Scenario().ValueOrDie();
  ASSERT_TRUE(scenario.db->BuildOverlay({scenario.neighborhoods_layer}).ok());
  Evaluator off(scenario.db.get());
  off.set_rewrite_mode(RewriteMode::kOff);
  Evaluator on(scenario.db.get());
  on.set_rewrite_mode(RewriteMode::kOn);
  for (const std::string& path : CorpusPaths()) {
    auto parsed = ParseCorpusFile(path);
    ASSERT_TRUE(parsed.ok()) << path;
    for (const std::string& text : parsed.ValueOrDie().queries) {
      if (!Parse(text).ok()) {
        continue;  // Both modes reject unparseable text at the same stage.
      }
      ExpectSameOutcome(off.EvaluateString(text), on.EvaluateString(text),
                        path + ": " + text);
    }
  }
}

// A generated city with real trajectories: large enough that the batch
// kernels, the window fast paths, and the short circuits all actually run.
TEST(RewriteEvaluatorTest, OnModeBitIdenticalToOffOnGeneratedCity) {
  for (int threads : {1, 4}) {
    workload::CityConfig config;
    config.seed = 20260807;
    config.grid_cols = 6;
    config.grid_rows = 6;
    config.nonconvex_fraction = 0.4;
    auto city = std::move(workload::GenerateCity(config)).ValueOrDie();
    city.db->set_num_threads(threads);
    workload::TrajectoryConfig traj;
    traj.seed = 99;
    traj.num_objects = 40;
    traj.duration = 3600.0;
    traj.sample_period = 30.0;
    traj.speed = 12.0;
    auto moft = workload::GenerateTrajectories(city, traj).ValueOrDie();
    ASSERT_TRUE(city.db->AddMoft("cars", std::move(moft)).ok());

    Evaluator off(city.db.get());
    off.set_rewrite_mode(RewriteMode::kOff);
    off.set_num_threads(threads);
    Evaluator on(city.db.get());
    on.set_rewrite_mode(RewriteMode::kOn);
    on.set_num_threads(threads);

    const std::string n = city.neighborhoods_layer;
    const std::vector<std::string> queries = {
        // Window-only time scan: the SamplesBetween fast path.
        "SELECT layer." + n + "; FROM SimCity; "
        "| SELECT COUNT(*) FROM cars WHERE T BETWEEN 600 AND 1200",
        // Shadowed window dropped, then the same fast path.
        "SELECT layer." + n + "; FROM SimCity; "
        "| SELECT COUNT(*) FROM cars "
        "WHERE T BETWEEN 0 AND 3000 AND T BETWEEN 600 AND 1200",
        // INSIDE + window: batch point-in-polygon over the sealed columns.
        "SELECT layer." + n + "; FROM SimCity; "
        "WHERE ATTR(layer." + n + ", income) < 1500 "
        "| SELECT COUNT(*) FROM cars "
        "WHERE INSIDE RESULT AND T BETWEEN 0 AND 1800",
        // PASSES THROUGH: the per-span leg-intersection prefilter.
        "SELECT layer." + n + "; FROM SimCity; "
        "| SELECT COUNT(DISTINCT OID) FROM cars WHERE PASSES THROUGH RESULT",
        // NEAR + window: absolute row indices from the sample window.
        "SELECT layer." + n + "; FROM SimCity; "
        "| SELECT COUNT(*) FROM cars "
        "WHERE NEAR(layer." + city.schools_layer + ", 25) "
        "AND T BETWEEN 0 AND 1800",
        // Empty window: the zero-tuple short circuit.
        "SELECT layer." + n + "; FROM SimCity; "
        "| SELECT COUNT(*) FROM cars WHERE T BETWEEN 100 AND 50",
        // Empty region feeding INSIDE: geo and mo short circuits together.
        "SELECT layer." + n + "; FROM SimCity; "
        "WHERE ATTR(layer." + n + ", income) < -10 "
        "| SELECT COUNT(*) FROM cars WHERE INSIDE RESULT",
        // Grouped aggregate downstream of the rewritten scan.
        "SELECT layer." + n + "; FROM SimCity; "
        "WHERE ATTR(layer." + n + ", income) < 1500 "
        "| SELECT RATE PER HOUR FROM cars WHERE INSIDE RESULT "
        "GROUP BY TIME.hour",
    };
    for (const std::string& q : queries) {
      ExpectSameOutcome(off.EvaluateString(q), on.EvaluateString(q),
                        q + " threads=" + std::to_string(threads));
    }
  }
}

}  // namespace
}  // namespace piet::analysis::rewrite
