#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geometry/polygon.h"
#include "geometry/predicates.h"

namespace piet::geometry {
namespace {

Ring UnitSquare() {
  return Ring({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

TEST(RingTest, CreateValidates) {
  EXPECT_TRUE(Ring::Create({{0, 0}, {1, 0}}).status().IsInvalidArgument());
  EXPECT_TRUE(Ring::Create({{0, 0}, {1, 0}, {1, 0}, {0, 1}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      Ring::Create({{0, 0}, {1, 1}, {2, 2}}).status().IsInvalidArgument());
  // Self-intersecting "bowtie".
  EXPECT_TRUE(Ring::Create({{0, 0}, {2, 2}, {2, 0}, {0, 2}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Ring::Create({{0, 0}, {1, 0}, {1, 1}, {0, 1}}).ok());
}

TEST(RingTest, CreateDropsClosingVertexAndNormalizesCcw) {
  auto ring =
      Ring::Create({{0, 0}, {0, 1}, {1, 1}, {1, 0}, {0, 0}});  // CW, closed.
  ASSERT_TRUE(ring.ok());
  EXPECT_EQ(ring.ValueOrDie().size(), 4u);
  EXPECT_TRUE(ring.ValueOrDie().IsCounterClockwise());
}

TEST(RingTest, AreaPerimeterCentroid) {
  Ring sq = UnitSquare();
  EXPECT_DOUBLE_EQ(sq.Area(), 1.0);
  EXPECT_DOUBLE_EQ(sq.SignedArea(), 1.0);
  EXPECT_DOUBLE_EQ(sq.Perimeter(), 4.0);
  EXPECT_EQ(sq.Centroid(), Point(0.5, 0.5));

  Ring tri({{0, 0}, {6, 0}, {0, 6}});
  EXPECT_DOUBLE_EQ(tri.Area(), 18.0);
  EXPECT_EQ(tri.Centroid(), Point(2, 2));
}

TEST(RingTest, Convexity) {
  EXPECT_TRUE(UnitSquare().IsConvex());
  // L-shape is concave.
  Ring l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_FALSE(l.IsConvex());
  EXPECT_TRUE(l.IsSimple());
}

TEST(RingTest, Locate) {
  Ring sq = UnitSquare();
  EXPECT_EQ(sq.Locate({0.5, 0.5}), PointLocation::kInside);
  EXPECT_EQ(sq.Locate({0.0, 0.5}), PointLocation::kBoundary);
  EXPECT_EQ(sq.Locate({0.0, 0.0}), PointLocation::kBoundary);
  EXPECT_EQ(sq.Locate({1.5, 0.5}), PointLocation::kOutside);
  EXPECT_EQ(sq.Locate({0.5, -0.1}), PointLocation::kOutside);
}

TEST(RingTest, LocateConcave) {
  Ring l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(l.Locate({0.5, 0.5}), PointLocation::kInside);
  EXPECT_EQ(l.Locate({1.5, 0.5}), PointLocation::kInside);
  EXPECT_EQ(l.Locate({1.5, 1.5}), PointLocation::kOutside);  // The notch.
  EXPECT_EQ(l.Locate({1.0, 1.5}), PointLocation::kBoundary);
}

TEST(PolygonTest, HolesRespected) {
  Ring shell({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  Ring hole({{4, 4}, {6, 4}, {6, 6}, {4, 6}});
  auto polygon = Polygon::Create(shell, {hole});
  ASSERT_TRUE(polygon.ok());
  const Polygon& pg = polygon.ValueOrDie();
  EXPECT_DOUBLE_EQ(pg.Area(), 96.0);
  EXPECT_EQ(pg.Locate({5, 5}), PointLocation::kOutside);   // In the hole.
  EXPECT_EQ(pg.Locate({4, 5}), PointLocation::kBoundary);  // Hole border.
  EXPECT_EQ(pg.Locate({2, 2}), PointLocation::kInside);
  EXPECT_TRUE(pg.Contains({4, 5}));
  EXPECT_FALSE(pg.Contains({5, 5}));
}

TEST(PolygonTest, HoleOutsideShellRejected) {
  Ring shell({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  Ring hole({{5, 5}, {6, 5}, {6, 6}, {5, 6}});
  EXPECT_TRUE(Polygon::Create(shell, {hole}).status().IsInvalidArgument());
}

TEST(PolygonTest, SharedBoundaryBelongsToBoth) {
  // The paper's Example 1: a point on the common border of two adjacent
  // polygons belongs to both.
  Polygon left = MakeRectangle(0, 0, 1, 1);
  Polygon right = MakeRectangle(1, 0, 2, 1);
  Point border(1.0, 0.5);
  EXPECT_TRUE(left.Contains(border));
  EXPECT_TRUE(right.Contains(border));
  EXPECT_FALSE(left.ContainsInterior(border));
}

TEST(PolygonTest, IntersectsSegment) {
  Polygon sq = MakeRectangle(0, 0, 2, 2);
  EXPECT_TRUE(sq.IntersectsSegment({{1, 1}, {5, 5}}));   // Starts inside.
  EXPECT_TRUE(sq.IntersectsSegment({{-1, 1}, {3, 1}}));  // Crosses.
  EXPECT_TRUE(sq.IntersectsSegment({{-1, 2}, {3, 2}}));  // Along the edge.
  EXPECT_FALSE(sq.IntersectsSegment({{3, 3}, {5, 5}}));
}

TEST(PolygonTest, PolygonIntersects) {
  Polygon a = MakeRectangle(0, 0, 2, 2);
  Polygon b = MakeRectangle(1, 1, 3, 3);
  Polygon c = MakeRectangle(5, 5, 6, 6);
  Polygon d = MakeRectangle(2, 0, 3, 1);  // Edge-adjacent to a.
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Intersects(d));  // Closed semantics: touching counts.
  // Containment without vertex containment also intersects.
  Polygon big = MakeRectangle(-1, -1, 4, 4);
  EXPECT_TRUE(big.Intersects(a));
  EXPECT_TRUE(a.Intersects(big));
}

TEST(PolygonTest, ContainsPolygon) {
  Polygon big = MakeRectangle(0, 0, 10, 10);
  Polygon small = MakeRectangle(2, 2, 4, 4);
  Polygon cross = MakeRectangle(8, 8, 12, 12);
  EXPECT_TRUE(big.ContainsPolygon(small));
  EXPECT_FALSE(big.ContainsPolygon(cross));
  EXPECT_FALSE(small.ContainsPolygon(big));
  EXPECT_TRUE(big.ContainsPolygon(big));
}

TEST(PolygonTest, MakeRegularPolygon) {
  Polygon hex = MakeRegularPolygon({0, 0}, 2.0, 6);
  EXPECT_EQ(hex.shell().size(), 6u);
  EXPECT_TRUE(hex.IsConvex());
  // Area of regular hexagon with circumradius r: (3*sqrt(3)/2) r^2.
  EXPECT_NEAR(hex.Area(), 1.5 * std::sqrt(3.0) * 4.0, 1e-9);
  EXPECT_TRUE(hex.Contains({0, 0}));
}

TEST(PolygonTest, CentroidWithHole) {
  Ring shell({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  Ring hole({{0.5, 0.5}, {1.5, 0.5}, {1.5, 1.5}, {0.5, 1.5}});
  Polygon pg(shell, {hole});
  Point c = pg.Centroid();
  // Removing mass from the lower-left pushes the centroid up-right.
  EXPECT_GT(c.x, 2.0);
  EXPECT_GT(c.y, 2.0);
}

// Property: Locate agrees with the winding parity of random points for
// random convex polygons.
TEST(PolygonProperty, ConvexLocateMatchesHalfPlanes) {
  Random rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    Point center(rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5));
    double radius = rng.UniformDouble(1, 4);
    int sides = static_cast<int>(rng.UniformInt(3, 9));
    Polygon pg = MakeRegularPolygon(center, radius, sides,
                                    rng.UniformDouble(0, 1));
    for (int i = 0; i < 50; ++i) {
      Point p(center.x + rng.UniformDouble(-5, 5),
              center.y + rng.UniformDouble(-5, 5));
      // Half-plane test for convex polygons (CCW): inside iff left of every
      // edge.
      bool inside_hp = true;
      bool on_boundary = false;
      const Ring& shell = pg.shell();
      for (size_t e = 0; e < shell.size(); ++e) {
        Segment edge = shell.edge(e);
        int o = Orientation(edge.a, edge.b, p);
        if (o < 0) {
          inside_hp = false;
        } else if (o == 0 && OnSegment(p, edge.a, edge.b)) {
          on_boundary = true;
        }
      }
      PointLocation loc = pg.Locate(p);
      if (on_boundary) {
        EXPECT_EQ(loc, PointLocation::kBoundary);
      } else if (inside_hp) {
        EXPECT_EQ(loc, PointLocation::kInside);
      } else {
        EXPECT_EQ(loc, PointLocation::kOutside);
      }
    }
  }
}

}  // namespace
}  // namespace piet::geometry
