// E6 — geometric aggregation (Def. 4) and the summable rewriting (Sec. 5).
//
// Shape claims:
//  * Σ_{g∈C} h'(g) equals the direct integral over ∪C for piecewise-
//    constant densities (exactness of the rewriting);
//  * the exact convex path is orders of magnitude faster than generic
//    quadrature (the reason Piet materializes geometry).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/summable.h"
#include "gis/density.h"
#include "workload/city.h"

namespace {

using piet::core::GeometricAggregator;
using piet::gis::PerRegionDensity;
using piet::workload::City;
using piet::workload::CityConfig;

struct Fixture {
  City city;
  std::unique_ptr<PerRegionDensity> density;
  std::vector<piet::gis::GeometryId> all_ids;
};

std::shared_ptr<Fixture> MakeFixture(int grid) {
  CityConfig config;
  config.seed = 11;
  config.grid_cols = grid;
  config.grid_rows = grid;
  auto fixture = std::make_shared<Fixture>();
  fixture->city = std::move(piet::workload::GenerateCity(config)).ValueOrDie();
  auto layer = fixture->city.db->gis()
                   .GetLayer(fixture->city.neighborhoods_layer)
                   .ValueOrDie();
  std::vector<double> densities;
  for (auto id : layer->ids()) {
    densities.push_back(
        layer->GetAttribute(id, "population").ValueOrDie().AsNumeric()
            .ValueOrDie() /
        layer->GetPolygon(id).ValueOrDie()->Area());
    fixture->all_ids.push_back(id);
  }
  fixture->density = std::make_unique<PerRegionDensity>(layer, densities);
  return fixture;
}

void ShapeReport() {
  std::printf("=== E6: Def. 4 geometric aggregation, summable rewriting ===\n");
  std::printf("%8s %16s %16s %12s\n", "polys", "sum h'(g)", "total mass",
              "rel_err");
  for (int grid : {4, 8, 16}) {
    auto fixture = MakeFixture(grid);
    auto layer = fixture->city.db->gis()
                     .GetLayer(fixture->city.neighborhoods_layer)
                     .ValueOrDie();
    GeometricAggregator agg(fixture->density.get());
    double summed =
        agg.OverPolygons(*layer, fixture->all_ids).ValueOrDie();
    double direct = fixture->density->TotalMass();
    std::printf("%8d %16.1f %16.1f %12.2e\n", grid * grid, summed, direct,
                std::abs(summed - direct) / direct);
  }
  std::printf("shape: rewriting exact (rel_err ~ 1e-12)\n\n");
}

void BM_SummableExactConvex(benchmark::State& state) {
  auto fixture = MakeFixture(static_cast<int>(state.range(0)));
  auto layer = fixture->city.db->gis()
                   .GetLayer(fixture->city.neighborhoods_layer)
                   .ValueOrDie();
  GeometricAggregator agg(fixture->density.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        agg.OverPolygons(*layer, fixture->all_ids).ValueOrDie());
  }
  state.counters["polygons"] = static_cast<double>(fixture->all_ids.size());
}

void BM_QuadratureBaseline(benchmark::State& state) {
  // The generic path: integrate the density over the full extent with
  // midpoint quadrature (what a system without materialized geometry does).
  auto fixture = MakeFixture(static_cast<int>(state.range(0)));
  auto extent = fixture->city.extent;
  piet::geometry::Polygon domain = piet::geometry::MakeRectangle(
      extent.min_x, extent.min_y, extent.max_x, extent.max_y);
  for (auto _ : state) {
    // DensityField::IntegrateOverPolygon uses 128x128 quadrature with a
    // point-location per cell.
    benchmark::DoNotOptimize(
        fixture->density->DensityField::IntegrateOverPolygon(domain));
  }
}

void BM_LineIntegralOverStreets(benchmark::State& state) {
  auto fixture = MakeFixture(8);
  auto streets = fixture->city.db->gis()
                     .GetLayer(fixture->city.streets_layer)
                     .ValueOrDie();
  GeometricAggregator agg(fixture->density.get());
  std::vector<piet::gis::GeometryId> ids(streets->ids());
  int steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        agg.OverPolylines(*streets, ids, steps).ValueOrDie());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ShapeReport();
  for (int grid : {4, 8, 16}) {
    benchmark::RegisterBenchmark("BM_SummableExactConvex",
                                 BM_SummableExactConvex)
        ->Arg(grid)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark("BM_QuadratureBaseline",
                                 BM_QuadratureBaseline)
        ->Arg(grid)
        ->Unit(benchmark::kMillisecond);
  }
  for (int steps : {16, 64, 256}) {
    benchmark::RegisterBenchmark("BM_LineIntegralOverStreets",
                                 BM_LineIntegralOverStreets)
        ->Arg(steps)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
