// E7 — the OLAP substrate: γ aggregation (Def. 7) and hierarchy rollup.
//
// Shape claims: γ scales linearly in rows; cube rollup adds one rollup
// lookup per row; the Time dimension rollups are O(1) per instant.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "common/random.h"
#include "olap/aggregate.h"
#include "olap/cube.h"
#include "temporal/time_dimension.h"

namespace {

using piet::Random;
using piet::Value;
using piet::olap::AggFunction;
using piet::olap::Aggregate;
using piet::olap::Cube;
using piet::olap::DimensionBinding;
using piet::olap::DimensionInstance;
using piet::olap::DimensionSchema;
using piet::olap::FactTable;

constexpr int kCities = 64;
constexpr int kCountries = 8;

// Two-step concatenation: `"C" + std::to_string(c)` trips GCC 12's
// -Wrestrict false positive (PR105329) when inlined at -O2.
std::string Tagged(char tag, long long n) {
  std::string s(1, tag);
  s += std::to_string(n);
  return s;
}

std::shared_ptr<DimensionInstance> MakeGeoDim() {
  DimensionSchema schema("Geo", "city");
  (void)schema.AddEdge("city", "country");
  (void)schema.AddEdge("country", DimensionSchema::kAll);
  auto dim = std::make_shared<DimensionInstance>(schema);
  for (int c = 0; c < kCities; ++c) {
    (void)dim->AddRollup("city", Value(Tagged('C', c)), "country",
                         Value(Tagged('K', c % kCountries)));
  }
  for (int k = 0; k < kCountries; ++k) {
    (void)dim->AddRollup("country", Value(Tagged('K', k)),
                         DimensionSchema::kAll, Value("all"));
  }
  return dim;
}

FactTable MakeFacts(size_t rows, uint64_t seed) {
  Random rng(seed);
  FactTable t = FactTable::Make({"city"}, {"amount"});
  for (size_t i = 0; i < rows; ++i) {
    (void)t.Append({Value(Tagged('C', rng.Uniform(kCities))),
                    Value(rng.UniformDouble(0, 100))});
  }
  return t;
}

void ShapeReport() {
  std::printf("=== E7: gamma aggregation & rollup scaling ===\n");
  auto dim = MakeGeoDim();
  std::printf("%10s %10s %12s\n", "rows", "groups", "sum_check");
  for (size_t rows : {1000u, 10000u, 100000u}) {
    FactTable facts = MakeFacts(rows, 5);
    auto grouped =
        Aggregate(facts, {"city"}, AggFunction::kSum, "amount").ValueOrDie();
    Cube cube(facts, {{"city", dim, "city"}});
    auto rolled = cube.RollUp("city", "country", AggFunction::kSum, "amount")
                      .ValueOrDie();
    double total_city = 0, total_country = 0;
    for (const auto& r : grouped.rows()) {
      total_city += r[1].AsDoubleUnchecked();
    }
    for (const auto& r : rolled.rows()) {
      total_country += r[1].AsDoubleUnchecked();
    }
    std::printf("%10zu %10zu %12s\n", rows, grouped.num_rows(),
                std::abs(total_city - total_country) < 1e-6 * total_city
                    ? "exact"
                    : "MISMATCH");
  }
  std::printf("shape: rollup preserves totals at every level\n\n");
}

void BM_GammaAggregate(benchmark::State& state) {
  FactTable facts = MakeFacts(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    auto r = Aggregate(facts, {"city"}, AggFunction::kSum, "amount");
    benchmark::DoNotOptimize(r.ValueOrDie().num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_CubeRollup(benchmark::State& state) {
  auto dim = MakeGeoDim();
  FactTable facts = MakeFacts(static_cast<size_t>(state.range(0)), 5);
  Cube cube(facts, {{"city", dim, "city"}});
  for (auto _ : state) {
    auto r = cube.RollUp("city", "country", AggFunction::kSum, "amount");
    benchmark::DoNotOptimize(r.ValueOrDie().num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_TimeDimensionRollup(benchmark::State& state) {
  piet::temporal::TimeDimension dim;
  Random rng(9);
  std::vector<piet::temporal::TimePoint> instants;
  for (int i = 0; i < 1000; ++i) {
    instants.emplace_back(rng.UniformDouble(0, 1e9));
  }
  const char* level =
      state.range(0) == 0 ? "hour" : (state.range(0) == 1 ? "day" : "timeOfDay");
  for (auto _ : state) {
    for (const auto& t : instants) {
      benchmark::DoNotOptimize(dim.Rollup(level, t).ValueOrDie());
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.SetLabel(level);
}

}  // namespace

int main(int argc, char** argv) {
  ShapeReport();
  for (int rows : {1000, 10000, 100000}) {
    benchmark::RegisterBenchmark("BM_GammaAggregate", BM_GammaAggregate)
        ->Arg(rows)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark("BM_CubeRollup", BM_CubeRollup)
        ->Arg(rows)
        ->Unit(benchmark::kMicrosecond);
  }
  for (int level : {0, 1, 2}) {
    benchmark::RegisterBenchmark("BM_TimeDimensionRollup",
                                 BM_TimeDimensionRollup)
        ->Arg(level)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
