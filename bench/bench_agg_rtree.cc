// E5 — the aggregate R-tree baseline (Papadias et al., paper Sec. 2).
//
// COUNT(window, interval) over historical observations:
//  * exact evaluation scans trajectory samples — cost grows with the number
//    of observations ("in the worst case, the whole trajectory must be
//    checked", Sec. 5);
//  * the aRB-tree answers from per-node pre-aggregated buckets — cost grows
//    with tree size, not observation count, at bucket granularity.
// We sweep observations and bucket widths and report both cost and the
// granularity error of the pre-aggregated answers.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "common/random.h"
#include "index/agg_rtree.h"
#include "workload/city.h"
#include "workload/trajectories.h"

namespace {

using piet::Random;
using piet::geometry::BoundingBox;
using piet::index::AggregateRTree;
using piet::moving::Moft;
using piet::moving::Sample;
using piet::temporal::Interval;
using piet::temporal::TimePoint;
using piet::workload::City;
using piet::workload::CityConfig;
using piet::workload::TrajectoryConfig;

struct Dataset {
  City city;
  Moft moft;  // Owns the columns the scans below view.
  std::vector<BoundingBox> region_boxes;
  std::unique_ptr<AggregateRTree> tree;
};

std::shared_ptr<Dataset> MakeDataset(int objects, double bucket_width) {
  CityConfig config;
  config.seed = 2024;
  config.grid_cols = 12;
  config.grid_rows = 12;
  auto data = std::make_shared<Dataset>();
  data->city = std::move(piet::workload::GenerateCity(config)).ValueOrDie();

  TrajectoryConfig traj;
  traj.seed = 3;
  traj.num_objects = objects;
  traj.duration = 4 * 3600.0;
  traj.sample_period = 30.0;
  traj.speed = 15.0;
  data->moft =
      piet::workload::GenerateTrajectories(data->city, traj).ValueOrDie();

  // Regions = neighborhoods (by bounding box, the aRB-tree granularity).
  auto layer = data->city.db->gis()
                   .GetLayer(data->city.neighborhoods_layer)
                   .ValueOrDie();
  std::vector<std::pair<AggregateRTree::RegionId, BoundingBox>> regions;
  for (auto id : layer->ids()) {
    BoundingBox box = layer->BoundsOf(id).ValueOrDie();
    regions.emplace_back(id, box);
    data->region_boxes.push_back(box);
  }
  data->tree = std::make_unique<AggregateRTree>(regions, bucket_width);
  // Each sample contributes an observation to every region containing it.
  for (const Sample& s : data->moft.Scan()) {
    for (auto id : layer->GeometriesContaining(s.pos)) {
      (void)data->tree->AddObservation(id, s.t);
    }
  }
  return data;
}

double ExactCount(const Dataset& data, const BoundingBox& window,
                  const Interval& interval) {
  auto layer = data.city.db->gis()
                   .GetLayer(data.city.neighborhoods_layer)
                   .ValueOrDie();
  double count = 0;
  for (const Sample& s : data.moft.Scan()) {
    if (s.t < interval.begin || interval.end < s.t || s.t == interval.end) {
      continue;
    }
    for (auto id : layer->GeometriesContaining(s.pos)) {
      if (layer->BoundsOf(id).ValueOrDie().Intersects(window)) {
        count += 1.0;
      }
    }
  }
  return count;
}

void ShapeReport() {
  std::printf("=== E5: aggregate R-tree vs exact trajectory scan ===\n");
  std::printf("%10s %12s %12s %12s %12s\n", "bucket(s)", "exact", "aRB",
              "rel_err", "nodes");
  auto data = MakeDataset(100, 0);  // Placeholder; rebuilt per bucket.
  for (double bucket : {30.0, 300.0, 1800.0}) {
    data = MakeDataset(100, bucket);
    Random rng(1);
    double err_acc = 0.0;
    double exact_last = 0, approx_last = 0;
    int trials = 10;
    size_t nodes = 0;
    for (int i = 0; i < trials; ++i) {
      double x = rng.UniformDouble(0, 800);
      double y = rng.UniformDouble(0, 800);
      BoundingBox window(x, y, x + 400, y + 400);
      double t0 = rng.UniformDouble(0, 2 * 3600.0);
      Interval interval{TimePoint(t0), TimePoint(t0 + 3600.0)};
      double exact = ExactCount(*data, window, interval);
      double approx = data->tree->Count(window, interval);
      nodes = data->tree->last_nodes_visited();
      if (exact > 0) {
        err_acc += std::abs(approx - exact) / exact;
      }
      exact_last = exact;
      approx_last = approx;
    }
    std::printf("%10.0f %12.0f %12.0f %12.4f %12zu\n", bucket, exact_last,
                approx_last, err_acc / trials, nodes);
  }
  std::printf(
      "shape: aRB error grows with bucket width (granularity trade-off); "
      "node visits stay small and independent of #observations\n\n");
}

void BM_ExactScan(benchmark::State& state) {
  auto data = MakeDataset(static_cast<int>(state.range(0)), 300.0);
  BoundingBox window(100, 100, 700, 700);
  Interval interval{TimePoint(600.0), TimePoint(600.0 + 3600.0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactCount(*data, window, interval));
  }
  state.counters["observations"] = static_cast<double>(data->moft.num_samples());
}

void BM_AggRTreeCount(benchmark::State& state) {
  auto data = MakeDataset(static_cast<int>(state.range(0)), 300.0);
  BoundingBox window(100, 100, 700, 700);
  Interval interval{TimePoint(600.0), TimePoint(600.0 + 3600.0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(data->tree->Count(window, interval));
  }
  state.counters["observations"] = static_cast<double>(data->moft.num_samples());
  state.counters["nodes"] =
      static_cast<double>(data->tree->last_nodes_visited());
}

}  // namespace

int main(int argc, char** argv) {
  ShapeReport();
  for (int objects : {25, 100, 400}) {
    benchmark::RegisterBenchmark("BM_ExactScan", BM_ExactScan)
        ->Arg(objects)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("BM_AggRTreeCount", BM_AggRTreeCount)
        ->Arg(objects)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
