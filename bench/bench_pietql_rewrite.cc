// E12 — the static plan rewriter: raw (RewriteMode::kOff) vs rewritten
// (kOn) end-to-end Piet-QL latency, one pair of series per query type.
//
// Shape goals: the rewritten plan is result-bit-identical (checked here at
// startup and property-tested in tests/analysis_rewrite_test.cc); the wins
// come from the window fast paths (binary search instead of a full scan),
// the batch geometry kernels, and the empty-time / empty-region constant
// folds, which skip the tuple scan outright.

#include <benchmark/benchmark.h>

#include "obs_dump.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/rewrite/rewriter.h"
#include "core/pietql/evaluator.h"
#include "workload/city.h"
#include "workload/trajectories.h"

namespace {

using piet::analysis::rewrite::RewriteMode;
using piet::core::pietql::Evaluator;
using piet::workload::City;
using piet::workload::CityConfig;
using piet::workload::TrajectoryConfig;

struct Fixture {
  City city;
};

std::shared_ptr<Fixture> MakeFixture(int objects) {
  CityConfig city_config;
  city_config.seed = 4242;
  city_config.grid_cols = 8;
  city_config.grid_rows = 8;
  auto fixture = std::make_shared<Fixture>();
  fixture->city =
      std::move(piet::workload::GenerateCity(city_config)).ValueOrDie();

  TrajectoryConfig traj;
  traj.seed = 99;
  traj.num_objects = objects;
  traj.duration = 4 * 3600.0;
  traj.sample_period = 60.0;
  traj.speed = 12.0;
  auto moft =
      piet::workload::GenerateTrajectories(fixture->city, traj).ValueOrDie();
  (void)fixture->city.db->AddMoft("cars", std::move(moft));
  (void)fixture->city.db->BuildOverlay({fixture->city.neighborhoods_layer});
  return fixture;
}

struct QueryCase {
  const char* name;
  std::string text;
};

std::vector<QueryCase> MakeQueries(const City& city) {
  const std::string& nb = city.neighborhoods_layer;
  return {
      // Window-only tuple scan -> SamplesBetween binary-search fast path.
      {"time_window",
       "SELECT layer." + nb + "; FROM SimCity; "
       "| SELECT COUNT(*) FROM cars WHERE T BETWEEN 3600 AND 10800"},
      // Shadowed window dropped first, then the same fast path.
      {"shadowed_window",
       "SELECT layer." + nb + "; FROM SimCity; "
       "| SELECT COUNT(*) FROM cars "
       "WHERE T BETWEEN 0 AND 14000 AND T BETWEEN 3600 AND 10800"},
      // Full INSIDE scan -> batch point-in-polygon kernels.
      {"inside",
       "SELECT layer." + nb + "; FROM SimCity; "
       "WHERE ATTR(layer." + nb + ", income) < 1500 "
       "| SELECT COUNT(*) FROM cars WHERE INSIDE RESULT"},
      // INSIDE restricted to a window -> window rows + batch kernels.
      {"inside_window",
       "SELECT layer." + nb + "; FROM SimCity; "
       "WHERE ATTR(layer." + nb + ", income) < 1500 "
       "| SELECT COUNT(*) FROM cars "
       "WHERE INSIDE RESULT AND T BETWEEN 0 AND 7200"},
      // PASSES THROUGH -> per-span leg-intersection prefilter.
      {"passes",
       "SELECT layer." + nb + "; FROM SimCity; "
       "WHERE ATTR(layer." + nb + ", income) < 1500 "
       "| SELECT COUNT(DISTINCT OID) FROM cars WHERE PASSES THROUGH RESULT"},
      // NEAR under a window -> absolute window rows, Matches skipped.
      {"near_window",
       "SELECT layer." + nb + "; FROM SimCity; "
       "| SELECT COUNT(*) FROM cars "
       "WHERE NEAR(layer." + city.schools_layer + ", 25) "
       "AND T BETWEEN 0 AND 7200"},
      // Empty window -> rw-empty-time skips the tuple scan outright.
      {"empty_time",
       "SELECT layer." + nb + "; FROM SimCity; "
       "| SELECT COUNT(*) FROM cars WHERE T BETWEEN 100 AND 50"},
      // Provably empty region -> rw-empty-region + zero-tuple INSIDE.
      {"empty_region",
       "SELECT layer." + nb + "; FROM SimCity; "
       "WHERE ATTR(layer." + nb + ", income) < -10 "
       "| SELECT COUNT(*) FROM cars WHERE INSIDE RESULT"},
      // Geo-only query -> rw-select-reorder puts the exact ATTR filter
      // ahead of the spatial join.
      {"geo_reorder",
       "SELECT layer." + nb + "; FROM SimCity; "
       "WHERE INTERSECTION(layer." + nb + ", layer." + city.rivers_layer +
           ") AND ATTR(layer." + nb + ", income) < 1500"},
  };
}

/// Sanity gate before timing anything: both modes must render identically.
bool VerifyIdentical(Fixture& fixture) {
  Evaluator off(fixture.city.db.get());
  off.set_rewrite_mode(RewriteMode::kOff);
  Evaluator on(fixture.city.db.get());
  on.set_rewrite_mode(RewriteMode::kOn);
  bool ok = true;
  std::printf("=== E12: raw vs rewritten result identity ===\n");
  for (const QueryCase& q : MakeQueries(fixture.city)) {
    auto a = off.EvaluateString(q.text);
    auto b = on.EvaluateString(q.text);
    const bool same =
        a.ok() && b.ok() &&
        a.ValueOrDie().ToString() == b.ValueOrDie().ToString();
    std::printf("%-16s %s\n", q.name, same ? "identical" : "MISMATCH");
    ok = ok && same;
  }
  std::printf("\n");
  return ok;
}

void BM_PietqlQuery(benchmark::State& state, std::shared_ptr<Fixture> fixture,
                    std::string text, RewriteMode mode) {
  Evaluator evaluator(fixture->city.db.get());
  evaluator.set_rewrite_mode(mode);
  for (auto _ : state) {
    auto r = evaluator.EvaluateString(text);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.ValueOrDie().geometry_ids.size());
  }
  state.counters["rewritten"] = mode == RewriteMode::kOn ? 1.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  auto fixture = MakeFixture(200);
  if (!VerifyIdentical(*fixture)) {
    std::fprintf(stderr, "raw vs rewritten results diverge; aborting\n");
    return 1;
  }
  for (const QueryCase& q : MakeQueries(fixture->city)) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Rewrite/") + q.name + "/raw").c_str(),
        BM_PietqlQuery, fixture, q.text, RewriteMode::kOff)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        (std::string("BM_Rewrite/") + q.name + "/rewritten").c_str(),
        BM_PietqlQuery, fixture, q.text, RewriteMode::kOn)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  piet::benchutil::DumpMetricsSnapshotIfRequested();
  benchmark::Shutdown();
  return 0;
}
