// E11 — observability overhead on the MOFT scan hot loop.
//
// The instrumentation contract is "one branch per site when disabled":
// hot loops accumulate into locals and flush once behind an
// obs::Enabled() check, so the disabled path adds a single relaxed atomic
// load + branch per *scan*, not per row. This bench pins that claim:
//  * BM_ScanRaw — the uninstrumented scan loop;
//  * BM_ScanObsDisabled — the exact instrumented pattern, gate off;
//  * BM_ScanObsEnabled — the same pattern with the gate on (one sharded
//    counter add per scan — still not per row).
//
// With PIET_OBS_OVERHEAD_CHECK=1 the binary skips the benchmark harness
// and self-checks: medians over interleaved repetitions must show the
// disabled path within 2% of raw (exit 1 otherwise). CI runs this mode.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "moving/moft.h"
#include "obs/metrics.h"
#include "obs_dump.h"
#include "workload/city.h"
#include "workload/trajectories.h"

namespace {

using piet::moving::Moft;
using piet::moving::Sample;
using piet::workload::CityConfig;
using piet::workload::TrajectoryConfig;

std::shared_ptr<Moft> MakeMoft(int objects) {
  CityConfig config;
  config.seed = 2026;
  config.grid_cols = 10;
  config.grid_rows = 10;
  auto city = piet::workload::GenerateCity(config).ValueOrDie();

  TrajectoryConfig traj;
  traj.seed = 8;
  traj.num_objects = objects;
  traj.duration = 4 * 3600.0;
  traj.sample_period = 15.0;
  traj.speed = 12.0;
  auto moft = std::make_shared<Moft>(
      piet::workload::GenerateTrajectories(city, traj).ValueOrDie());
  (void)moft->Scan();  // Seal outside the timed region.
  return moft;
}

double ScanRaw(const Moft& moft) {
  double acc = 0.0;
  for (const Sample& s : moft.Scan()) {
    acc += s.pos.x + s.pos.y + s.t.seconds;
  }
  return acc;
}

// The instrumented shape every engine hot path uses: per-row work stays in
// locals; the registry is touched once per scan, behind the gate.
double ScanInstrumented(const Moft& moft) {
  double acc = 0.0;
  size_t rows = 0;
  for (const Sample& s : moft.Scan()) {
    acc += s.pos.x + s.pos.y + s.t.seconds;
    ++rows;
  }
  if (piet::obs::Enabled()) {
    piet::obs::MetricsRegistry::Global()
        .GetCounter("bench.scan.rows")
        .Add(static_cast<int64_t>(rows));
  }
  return acc;
}

void BM_ScanRaw(benchmark::State& state) {
  auto moft = MakeMoft(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanRaw(*moft));
  }
  state.SetItemsProcessed(state.iterations() * moft->num_samples());
}

void BM_ScanObsDisabled(benchmark::State& state) {
  piet::obs::SetEnabled(false);
  auto moft = MakeMoft(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanInstrumented(*moft));
  }
  state.SetItemsProcessed(state.iterations() * moft->num_samples());
}

void BM_ScanObsEnabled(benchmark::State& state) {
  piet::obs::SetEnabled(true);
  auto moft = MakeMoft(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanInstrumented(*moft));
  }
  state.SetItemsProcessed(state.iterations() * moft->num_samples());
  piet::obs::SetEnabled(false);
}

/// One measurement pass: interleaved repetitions so drift hits both loops
/// alike; medians so stray scheduler blips don't decide the verdict.
double MeasureOverhead(const Moft& moft) {
  constexpr int kReps = 51;
  std::vector<double> raw_ns;
  std::vector<double> obs_ns;
  raw_ns.reserve(kReps);
  obs_ns.reserve(kReps);

  // Warm both code paths (and let the CPU clock ramp) before timing.
  for (int i = 0; i < 10; ++i) {
    benchmark::DoNotOptimize(ScanRaw(moft));
    benchmark::DoNotOptimize(ScanInstrumented(moft));
  }

  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < kReps; ++i) {
    auto t0 = Clock::now();
    benchmark::DoNotOptimize(ScanRaw(moft));
    auto t1 = Clock::now();
    benchmark::DoNotOptimize(ScanInstrumented(moft));
    auto t2 = Clock::now();
    raw_ns.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
    obs_ns.push_back(
        std::chrono::duration<double, std::nano>(t2 - t1).count());
  }
  auto median = [](std::vector<double>& v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  double raw = median(raw_ns);
  double obs = median(obs_ns);
  double overhead = (obs - raw) / raw;
  std::printf("moft scan raw median    : %.0f ns\n", raw);
  std::printf("moft scan obs-off median: %.0f ns\n", obs);
  std::printf("disabled-path overhead  : %.3f%% (limit 2%%)\n",
              overhead * 100.0);
  return overhead;
}

/// CI self-check. A shared runner can hiccup through a whole pass (frequency
/// ramp, noisy neighbour), so the gate retries: pass if ANY of 3 attempts
/// lands under the limit — the claim is about the code, not the machine.
int RunOverheadCheck() {
  piet::obs::SetEnabled(false);
  auto moft = MakeMoft(200);
  constexpr int kAttempts = 3;
  double overhead = 0.0;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    overhead = MeasureOverhead(*moft);
    if (overhead < 0.02) {
      std::printf("OK\n");
      return 0;
    }
    std::printf("attempt %d/%d over limit, retrying\n", attempt, kAttempts);
  }
  std::fprintf(stderr,
               "FAIL: disabled observability costs %.3f%% on the scan "
               "hot loop (>= 2%% on %d consecutive attempts)\n",
               overhead * 100.0, kAttempts);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* check = std::getenv("PIET_OBS_OVERHEAD_CHECK");
  if (check != nullptr && *check != '\0' && *check != '0') {
    return RunOverheadCheck();
  }
  for (int objects : {50, 200, 800}) {
    benchmark::RegisterBenchmark("BM_ScanRaw", BM_ScanRaw)->Arg(objects);
    benchmark::RegisterBenchmark("BM_ScanObsDisabled", BM_ScanObsDisabled)
        ->Arg(objects);
    benchmark::RegisterBenchmark("BM_ScanObsEnabled", BM_ScanObsEnabled)
        ->Arg(objects);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  piet::benchutil::DumpMetricsSnapshotIfRequested();
  benchmark::Shutdown();
  return 0;
}
