// E1 — Figure 1 / Table 1 / Remark 1.
//
// Regenerates the paper's running example: prints Table 1, answers the
// headline query ("buses per hour, morning, income < 1500") with every
// evaluation strategy, asserts the exact 4/3 answer, and times the query at
// growing day-replication scales.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "core/queries.h"
#include "workload/scenario.h"

namespace {

using piet::core::GeometryPredicate;
using piet::core::QueryEngine;
using piet::core::Strategy;
using piet::core::TimePredicate;
using piet::workload::BuildFigure1Scenario;
using piet::workload::Figure1Scenario;

TimePredicate Morning() {
  TimePredicate when;
  when.RollupEquals("timeOfDay", piet::Value("Morning"));
  return when;
}

GeometryPredicate LowIncome(const Figure1Scenario& s) {
  return GeometryPredicate::AttributeLess("income", s.income_threshold);
}

void ShapeReport() {
  auto scenario = BuildFigure1Scenario().ValueOrDie();
  std::printf("=== E1: Figure 1 / Table 1 / Remark 1 ===\n");
  std::printf("--- Table 1 (FMbus) ---\n%s",
              scenario.db->GetMoft("FMbus")
                  .ValueOrDie()
                  ->ToFactTable()
                  .ToString(20)
                  .c_str());
  if (!scenario.db->BuildOverlay({scenario.neighborhoods_layer}).ok()) {
    std::abort();
  }
  QueryEngine engine(scenario.db.get());
  std::printf("--- Remark 1: expected per_hour = 4/3 = 1.333333 ---\n");
  std::printf("%-10s %8s %8s %12s %12s\n", "strategy", "tuples", "hours",
              "per_hour", "pt_tests");
  for (Strategy s :
       {Strategy::kNaive, Strategy::kIndexed, Strategy::kOverlay}) {
    auto result = piet::core::queries::CountPerHourInRegion(
        engine, scenario.moft_name, scenario.neighborhoods_layer,
        LowIncome(scenario), Morning(), s);
    if (!result.ok()) {
      std::fprintf(stderr, "E1 failed: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    const auto& r = result.ValueOrDie();
    std::printf("%-10s %8lld %8lld %12.6f %12zu\n",
                std::string(StrategyToString(s)).c_str(),
                static_cast<long long>(r.tuple_count),
                static_cast<long long>(r.hour_count), r.per_hour,
                engine.stats().point_tests);
    if (r.per_hour != 4.0 / 3.0) {
      std::fprintf(stderr, "E1 MISMATCH: got %f, want 4/3\n", r.per_hour);
      std::abort();
    }
  }
  std::printf("result: 4/3 reproduced exactly by all strategies\n\n");
}

void BM_HeadlineQuery(benchmark::State& state) {
  int replication = static_cast<int>(state.range(0));
  Strategy strategy = static_cast<Strategy>(state.range(1));
  auto scenario = BuildFigure1Scenario(replication).ValueOrDie();
  if (strategy == Strategy::kOverlay) {
    (void)scenario.db->BuildOverlay({scenario.neighborhoods_layer});
  }
  QueryEngine engine(scenario.db.get());
  GeometryPredicate pred = LowIncome(scenario);
  TimePredicate when = Morning();
  double per_hour = 0.0;
  for (auto _ : state) {
    auto result = piet::core::queries::CountPerHourInRegion(
        engine, scenario.moft_name, scenario.neighborhoods_layer, pred, when,
        strategy);
    per_hour = result.ValueOrDie().per_hour;
    benchmark::ClobberMemory();
  }
  state.counters["per_hour"] = per_hour;
  state.counters["samples"] = static_cast<double>(
      scenario.db->GetMoft("FMbus").ValueOrDie()->num_samples());
  state.SetLabel(std::string(StrategyToString(strategy)));
}

void RegisterAll() {
  for (int strategy = 0; strategy < 3; ++strategy) {
    for (int replication : {1, 16, 128, 1024}) {
      benchmark::RegisterBenchmark("BM_HeadlineQuery", BM_HeadlineQuery)
          ->Args({replication, strategy})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ShapeReport();
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
