// E10 — columnar MOFT scan throughput.
//
// The sealed column store replaces the AoS row map; every query hot path
// now iterates zero-copy views over the (oid, t)-sorted columns. This
// bench measures the raw storage layer in rows/sec:
//  * full-table scan: SampleView vs the AllSamples() copy the old row
//    path materialized before iterating;
//  * closed time window: SamplesBetween's binary-searched per-object
//    ranges vs copy-then-filter over all rows;
//  * per-object access: span lookup in the sorted spans index.

#include <benchmark/benchmark.h>

#include "obs_dump.h"

#include <memory>
#include <vector>

#include "moving/moft.h"
#include "temporal/time_point.h"
#include "workload/city.h"
#include "workload/trajectories.h"

namespace {

using piet::moving::Moft;
using piet::moving::MoftColumns;
using piet::moving::ObjectSpan;
using piet::moving::Sample;
using piet::moving::SampleView;
using piet::moving::SampleWindow;
using piet::temporal::TimePoint;
using piet::workload::CityConfig;
using piet::workload::TrajectoryConfig;

constexpr double kDuration = 4 * 3600.0;

std::shared_ptr<Moft> MakeMoft(int objects) {
  CityConfig config;
  config.seed = 2026;
  config.grid_cols = 10;
  config.grid_rows = 10;
  auto city = piet::workload::GenerateCity(config).ValueOrDie();

  TrajectoryConfig traj;
  traj.seed = 8;
  traj.num_objects = objects;
  traj.duration = kDuration;
  traj.sample_period = 15.0;
  traj.speed = 12.0;
  auto moft = std::make_shared<Moft>(
      piet::workload::GenerateTrajectories(city, traj).ValueOrDie());
  (void)moft->Scan();  // Seal outside the timed region.
  return moft;
}

// Representative read: consume every coordinate of every visited row.
double Consume(const Sample& s) { return s.pos.x + s.pos.y + s.t.seconds; }

void BM_ScanView(benchmark::State& state) {
  auto moft = MakeMoft(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    double acc = 0.0;
    for (const Sample& s : moft->Scan()) {
      acc += Consume(s);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * moft->num_samples());
  state.counters["rows"] = static_cast<double>(moft->num_samples());
}

void BM_ScanColumns(benchmark::State& state) {
  // Direct column iteration — the layout's best case (what the engine's
  // window fast path and classification pass do).
  auto moft = MakeMoft(static_cast<int>(state.range(0)));
  const MoftColumns& cols = moft->Columns();
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t i = 0; i < cols.size(); ++i) {
      acc += cols.x[i] + cols.y[i] + cols.t[i];
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * cols.size());
  state.counters["rows"] = static_cast<double>(cols.size());
}

void BM_ScanAllSamplesCopy(benchmark::State& state) {
  // The pre-refactor pattern: materialize a row vector, then iterate.
  auto moft = MakeMoft(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    double acc = 0.0;
    for (const Sample& s : moft->AllSamples()) {
      acc += Consume(s);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * moft->num_samples());
  state.counters["rows"] = static_cast<double>(moft->num_samples());
}

void BM_WindowView(benchmark::State& state) {
  auto moft = MakeMoft(static_cast<int>(state.range(0)));
  const TimePoint t0(kDuration * 0.25);
  const TimePoint t1(kDuration * 0.5);
  size_t rows = 0;
  for (auto _ : state) {
    double acc = 0.0;
    SampleWindow window = moft->SamplesBetween(t0, t1);
    rows = window.size();
    for (const Sample& s : window) {
      acc += Consume(s);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_WindowCopyFilter(benchmark::State& state) {
  // The pre-refactor pattern: copy every row, filter by the predicate.
  auto moft = MakeMoft(static_cast<int>(state.range(0)));
  const TimePoint t0(kDuration * 0.25);
  const TimePoint t1(kDuration * 0.5);
  size_t rows = 0;
  for (auto _ : state) {
    double acc = 0.0;
    rows = 0;
    for (const Sample& s : moft->AllSamples()) {
      if (s.t < t0 || t1 < s.t) {
        continue;
      }
      acc += Consume(s);
      ++rows;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_ObjectSpans(benchmark::State& state) {
  // Per-object fan-out: every trajectory query's outer loop.
  auto moft = MakeMoft(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t i = 0; i < moft->num_objects(); ++i) {
      ObjectSpan span = moft->SpanAt(i);
      for (const Sample& s : span) {
        acc += Consume(s);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * moft->num_samples());
  state.counters["rows"] = static_cast<double>(moft->num_samples());
}

}  // namespace

int main(int argc, char** argv) {
  for (int objects : {50, 200, 800}) {
    benchmark::RegisterBenchmark("BM_ScanView", BM_ScanView)->Arg(objects);
    benchmark::RegisterBenchmark("BM_ScanColumns", BM_ScanColumns)
        ->Arg(objects);
    benchmark::RegisterBenchmark("BM_ScanAllSamplesCopy",
                                 BM_ScanAllSamplesCopy)
        ->Arg(objects);
    benchmark::RegisterBenchmark("BM_WindowView", BM_WindowView)
        ->Arg(objects);
    benchmark::RegisterBenchmark("BM_WindowCopyFilter", BM_WindowCopyFilter)
        ->Arg(objects);
    benchmark::RegisterBenchmark("BM_ObjectSpans", BM_ObjectSpans)
        ->Arg(objects);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  piet::benchutil::DumpMetricsSnapshotIfRequested();
  benchmark::Shutdown();
  return 0;
}
