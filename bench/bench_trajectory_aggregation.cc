// E8 — trajectory aggregation & simplification (extensions; the paper's
// Sec. 2 related work: Meratnia & de By's grid aggregation of
// trajectories, and compression of samples while preserving
// time-parameterized semantics).
//
// Shape claims:
//  * synchronized Douglas-Peucker compression grows with tolerance while
//    the error stays bounded by it (guarantee checked in tests);
//  * aggregate query answers on simplified MOFTs drift gracefully — small
//    tolerances preserve the headline per-hour rate;
//  * the pass-count heatmap concentrates on the street grid for
//    network-constrained traffic (max cell ≫ median cell).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/engine.h"
#include "core/queries.h"
#include "moving/heatmap.h"
#include "moving/simplify.h"
#include "workload/city.h"
#include "workload/trajectories.h"

namespace {

using piet::core::GeometryPredicate;
using piet::core::QueryEngine;
using piet::core::Strategy;
using piet::core::TimePredicate;
using piet::moving::Moft;
using piet::moving::TrajectoryHeatmap;
using piet::workload::City;
using piet::workload::CityConfig;
using piet::workload::TrajectoryConfig;

std::shared_ptr<City> MakeCity() {
  CityConfig config;
  config.seed = 505;
  config.grid_cols = 8;
  config.grid_rows = 8;
  auto city = std::make_shared<City>(
      std::move(piet::workload::GenerateCity(config)).ValueOrDie());
  return city;
}

Moft MakeTraffic(const City& city, piet::workload::MovementModel model,
                 int objects, double duration = 2 * 3600.0,
                 double period = 5.0) {
  TrajectoryConfig traj;
  traj.seed = 3;
  traj.num_objects = objects;
  traj.model = model;
  traj.duration = duration;
  traj.sample_period = period;
  traj.speed = 15.0;
  // GPS-style jitter so observations within a straight leg are not exactly
  // collinear — what makes lossy simplification meaningful.
  traj.jitter = 0.5;
  return piet::workload::GenerateTrajectories(city, traj).ValueOrDie();
}

Moft SimplifyMoft(const Moft& moft, double tolerance) {
  Moft out;
  for (auto oid : moft.ObjectIds()) {
    auto sample =
        piet::moving::TrajectorySample::FromMoft(moft, oid).ValueOrDie();
    auto simplified =
        piet::moving::SimplifySynchronized(sample, tolerance).ValueOrDie();
    for (const auto& tp : simplified.points()) {
      (void)out.Add(oid, tp.t, tp.pos);
    }
  }
  return out;
}

void ShapeReport() {
  std::printf("=== E8: trajectory simplification & grid aggregation ===\n");
  auto city = MakeCity();
  Moft full = MakeTraffic(*city, piet::workload::MovementModel::kRandomWaypoint,
                          80);

  // --- Simplification ablation. ---
  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);
  std::printf("%12s %10s %12s %14s\n", "tolerance", "samples", "ratio",
              "per_hour drift");
  (void)city->db->AddMoft("full", Moft(full));
  QueryEngine engine(city->db.get());
  double baseline =
      piet::core::queries::CountPerHourInRegion(
          engine, "full", city->neighborhoods_layer, low, TimePredicate(),
          Strategy::kIndexed)
          .ValueOrDie()
          .per_hour;
  int variant = 0;
  for (double tolerance : {0.5, 2.0, 8.0, 32.0}) {
    Moft simplified = SimplifyMoft(full, tolerance);
    std::string name = "simplified" + std::to_string(variant++);
    size_t n = simplified.num_samples();
    (void)city->db->AddMoft(name, std::move(simplified));
    double per_hour = piet::core::queries::CountPerHourInRegion(
                          engine, name, city->neighborhoods_layer, low,
                          TimePredicate(), Strategy::kIndexed)
                          .ValueOrDie()
                          .per_hour;
    std::printf("%12.1f %10zu %12.3f %14.3f\n", tolerance, n,
                static_cast<double>(n) / full.num_samples(),
                baseline > 0 ? per_hour / baseline : 0.0);
  }
  std::printf("shape: compression grows with tolerance; the per-hour rate "
              "stays near 1.0x for small tolerances\n\n");

  // --- Heatmap concentration: network traffic vs free movement. ---
  auto concentration = [&](piet::workload::MovementModel model) {
    Moft traffic = MakeTraffic(*city, model, 80, /*duration=*/600.0,
                               /*period=*/10.0);
    TrajectoryHeatmap map(city->extent, 32);
    (void)map.AddMoft(traffic);
    std::vector<int64_t> counts;
    for (size_t cy = 0; cy < 32; ++cy) {
      for (size_t cx = 0; cx < 32; ++cx) {
        counts.push_back(map.PassCount(cx, cy));
      }
    }
    std::sort(counts.begin(), counts.end());
    int64_t max = counts.back();
    // Cells carrying >= half the max load — "how concentrated is traffic".
    int64_t busy = std::count_if(counts.begin(), counts.end(),
                                 [&](int64_t c) { return c * 2 >= max; });
    return std::make_pair(max, busy);
  };
  auto [free_max, free_busy] =
      concentration(piet::workload::MovementModel::kRandomWaypoint);
  auto [net_max, net_busy] =
      concentration(piet::workload::MovementModel::kStreetNetwork);
  std::printf("heatmap concentration (max passes / cells at >= half max):\n");
  std::printf("  random waypoint : %lld / %lld\n",
              static_cast<long long>(free_max),
              static_cast<long long>(free_busy));
  std::printf("  street network  : %lld / %lld\n",
              static_cast<long long>(net_max),
              static_cast<long long>(net_busy));
  std::printf("shape: street traffic piles more objects onto its hottest "
              "cells (higher max on a sparse support)\n\n");
}

void BM_Simplify(benchmark::State& state) {
  auto city = MakeCity();
  Moft full = MakeTraffic(*city, piet::workload::MovementModel::kRandomWaypoint,
                          40);
  double tolerance = static_cast<double>(state.range(0));
  size_t out_samples = 0;
  for (auto _ : state) {
    Moft simplified = SimplifyMoft(full, tolerance);
    out_samples = simplified.num_samples();
    benchmark::ClobberMemory();
  }
  state.counters["in"] = static_cast<double>(full.num_samples());
  state.counters["out"] = static_cast<double>(out_samples);
}

void BM_HeatmapBuild(benchmark::State& state) {
  auto city = MakeCity();
  Moft traffic = MakeTraffic(
      *city, piet::workload::MovementModel::kStreetNetwork,
      static_cast<int>(state.range(0)));
  for (auto _ : state) {
    TrajectoryHeatmap map(city->extent, 32);
    auto status = map.AddMoft(traffic);
    benchmark::DoNotOptimize(status.ok());
  }
  state.counters["samples"] = static_cast<double>(traffic.num_samples());
}

}  // namespace

int main(int argc, char** argv) {
  ShapeReport();
  for (int tolerance : {1, 4, 16}) {
    benchmark::RegisterBenchmark("BM_Simplify", BM_Simplify)
        ->Arg(tolerance)
        ->Unit(benchmark::kMillisecond);
  }
  for (int objects : {20, 80, 320}) {
    benchmark::RegisterBenchmark("BM_HeatmapBuild", BM_HeatmapBuild)
        ->Arg(objects)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
