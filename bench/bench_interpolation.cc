// E4 — interpolation fidelity (the O6 effect of Fig. 1, query 6 of Sec. 4).
//
// The ground-truth motion is continuous; observations are sampled every Δ
// seconds. Sample semantics (type 4) misses regions crossed between
// samples; trajectory semantics (type 7 / LIT) recovers them. Shape claims:
//  * sample-only recall of true region visits is < 1 and degrades as Δ
//    grows; LIT recall stays near 1 much longer;
//  * the LIT computation costs more per query than sample scanning — the
//    accuracy/cost trade-off the paper's taxonomy separates.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <set>

#include "core/engine.h"
#include "workload/city.h"
#include "workload/trajectories.h"

namespace {

using piet::core::GeometryPredicate;
using piet::core::QueryEngine;
using piet::core::Strategy;
using piet::core::TimePredicate;
using piet::workload::City;
using piet::workload::CityConfig;
using piet::workload::TrajectoryConfig;

constexpr double kDuration = 2 * 3600.0;

std::shared_ptr<City> MakeCityWithSampling(double period, int objects) {
  CityConfig config;
  config.seed = 777;
  config.grid_cols = 10;
  config.grid_rows = 10;
  config.low_income_fraction = 0.15;
  auto city = std::make_shared<City>(
      std::move(piet::workload::GenerateCity(config)).ValueOrDie());

  TrajectoryConfig traj;
  traj.seed = 12;
  traj.num_objects = objects;
  traj.duration = kDuration;
  traj.sample_period = period;
  traj.speed = 20.0;
  auto moft = piet::workload::GenerateTrajectories(*city, traj).ValueOrDie();
  (void)city->db->AddMoft("cars", std::move(moft));
  return city;
}

// (Oid, neighborhood) visit pairs under each semantics.
std::set<std::pair<int64_t, int64_t>> VisitPairs(
    const piet::olap::FactTable& table, const char* geom_col) {
  std::set<std::pair<int64_t, int64_t>> out;
  size_t oid = table.ColumnIndex("Oid").ValueOrDie();
  size_t geom = table.ColumnIndex(geom_col).ValueOrDie();
  for (const auto& row : table.rows()) {
    out.emplace(row[oid].AsIntUnchecked(), row[geom].AsIntUnchecked());
  }
  return out;
}

void ShapeReport() {
  std::printf("=== E4: sample vs LIT semantics, sampling-period sweep ===\n");
  // Ground truth: the same motion sampled at 1 s is effectively continuous.
  auto truth_city = MakeCityWithSampling(1.0, 60);
  QueryEngine truth_engine(truth_city->db.get());
  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);
  auto truth = VisitPairs(
      truth_engine
          .SampleRegion("cars", truth_city->neighborhoods_layer, low,
                        TimePredicate(), Strategy::kIndexed)
          .ValueOrDie(),
      "geom");

  std::printf("%10s %10s %14s %14s\n", "period(s)", "truth", "recall_sample",
              "recall_LIT");
  for (double period : {15.0, 60.0, 180.0, 420.0, 900.0}) {
    auto city = MakeCityWithSampling(period, 60);
    QueryEngine engine(city->db.get());
    auto sampled = VisitPairs(
        engine
            .SampleRegion("cars", city->neighborhoods_layer, low,
                          TimePredicate(), Strategy::kIndexed)
            .ValueOrDie(),
        "geom");
    auto lit = VisitPairs(
        engine
            .TrajectoryRegion("cars", city->neighborhoods_layer, low,
                              TimePredicate())
            .ValueOrDie(),
        "geom");
    auto recall = [&](const std::set<std::pair<int64_t, int64_t>>& got) {
      if (truth.empty()) {
        return 1.0;
      }
      size_t hit = 0;
      for (const auto& pair : truth) {
        if (got.count(pair)) {
          ++hit;
        }
      }
      return static_cast<double>(hit) / truth.size();
    };
    std::printf("%10.0f %10zu %14.3f %14.3f\n", period, truth.size(),
                recall(sampled), recall(lit));
  }
  std::printf(
      "shape: both recalls decay with the sampling period, but LIT decays much "
      "slower - it catches unsampled drive-bys (the O6 effect)\n\n");
}

void BM_SampleSemantics(benchmark::State& state) {
  auto city = MakeCityWithSampling(static_cast<double>(state.range(0)), 60);
  QueryEngine engine(city->db.get());
  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);
  for (auto _ : state) {
    auto r = engine.SampleRegion("cars", city->neighborhoods_layer, low,
                                 TimePredicate(), Strategy::kIndexed);
    benchmark::DoNotOptimize(r.ValueOrDie().num_rows());
  }
  state.counters["samples"] = static_cast<double>(
      city->db->GetMoft("cars").ValueOrDie()->num_samples());
}

void BM_LitSemantics(benchmark::State& state) {
  auto city = MakeCityWithSampling(static_cast<double>(state.range(0)), 60);
  QueryEngine engine(city->db.get());
  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);
  for (auto _ : state) {
    auto r = engine.TrajectoryRegion("cars", city->neighborhoods_layer, low,
                                     TimePredicate());
    benchmark::DoNotOptimize(r.ValueOrDie().num_rows());
  }
  state.counters["samples"] = static_cast<double>(
      city->db->GetMoft("cars").ValueOrDie()->num_samples());
}

}  // namespace

int main(int argc, char** argv) {
  ShapeReport();
  for (int period : {15, 60, 180, 420}) {
    benchmark::RegisterBenchmark("BM_SampleSemantics", BM_SampleSemantics)
        ->Arg(period)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("BM_LitSemantics", BM_LitSemantics)
        ->Arg(period)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
