#ifndef PIET_BENCH_OBS_DUMP_H_
#define PIET_BENCH_OBS_DUMP_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.h"

namespace piet::benchutil {

/// Writes the merged metrics-registry snapshot to the path named by the
/// PIET_OBS_OUT environment variable (no-op when unset). scripts/bench.sh
/// sets PIET_OBS=1 and points PIET_OBS_OUT next to each BENCH_*.json so
/// every baseline carries the work counters (rows scanned, cells visited,
/// cache hits) that produced it. Call once from main, after
/// RunSpecifiedBenchmarks.
inline void DumpMetricsSnapshotIfRequested() {
  const char* path = std::getenv("PIET_OBS_OUT");
  if (path == nullptr || *path == '\0') {
    return;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "PIET_OBS_OUT: cannot open '%s'\n", path);
    return;
  }
  out << obs::MetricsRegistry::Global().DumpJson() << "\n";
}

}  // namespace piet::benchutil

#endif  // PIET_BENCH_OBS_DUMP_H_
