// E3 — the Sec. 5 evaluation-strategy experiment.
//
// Shape claims reproduced:
//  * the overlay precomputation has a one-time cost that amortizes across
//    queries: past a crossover query count, overlay < naive total time;
//  * per-query, index/overlay point location beats the naive polygon scan,
//    and the gap widens with the number of polygons;
//  * convex-exact and quadtree overlays answer identically (checked in
//    tests); here we compare their build costs.

#include <benchmark/benchmark.h>

#include "obs_dump.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "workload/city.h"
#include "workload/trajectories.h"

namespace {

using piet::core::GeometryPredicate;
using piet::core::QueryEngine;
using piet::core::Strategy;
using piet::core::TimePredicate;
using piet::workload::City;
using piet::workload::CityConfig;
using piet::workload::TrajectoryConfig;

std::shared_ptr<City> MakeCity(int grid, int objects, bool build_overlay,
                               double nonconvex = 0.0) {
  CityConfig config;
  config.seed = 31337;
  config.grid_cols = grid;
  config.grid_rows = grid;
  config.nonconvex_fraction = nonconvex;
  auto city = std::make_shared<City>(
      std::move(piet::workload::GenerateCity(config)).ValueOrDie());

  TrajectoryConfig traj;
  traj.seed = 5;
  traj.num_objects = objects;
  traj.duration = 2 * 3600.0;
  traj.sample_period = 60.0;
  traj.speed = 15.0;
  auto moft = piet::workload::GenerateTrajectories(*city, traj).ValueOrDie();
  (void)city->db->AddMoft("cars", std::move(moft));
  if (build_overlay) {
    (void)city->db->BuildOverlay({city->neighborhoods_layer},
                                 nonconvex == 0.0);
  }
  return city;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void ShapeReport() {
  std::printf("=== E3: overlay precomputation amortization (Sec. 5) ===\n");
  std::printf("%8s %12s %14s %14s %10s\n", "polys", "build(ms)",
              "naive/q(ms)", "overlay/q(ms)", "crossover");
  for (int grid : {4, 8, 16, 32}) {
    auto city = MakeCity(grid, 100, false);
    QueryEngine engine(city->db.get());
    GeometryPredicate low =
        GeometryPredicate::AttributeLess("income", 1500.0);

    auto t0 = std::chrono::steady_clock::now();
    (void)city->db->BuildOverlay({city->neighborhoods_layer});
    double build_ms = MillisSince(t0);

    auto time_strategy = [&](Strategy s, int reps) {
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < reps; ++i) {
        auto r = engine.SampleRegion("cars", city->neighborhoods_layer, low,
                                     TimePredicate(), s);
        benchmark::DoNotOptimize(r.ValueOrDie().num_rows());
      }
      return MillisSince(start) / reps;
    };
    double naive_ms = time_strategy(Strategy::kNaive, 3);
    double overlay_ms = time_strategy(Strategy::kOverlay, 3);
    // Queries after which precompute+overlay beats pure naive.
    double saved_per_query = naive_ms - overlay_ms;
    const char* crossover =
        saved_per_query <= 0 ? "never" : nullptr;
    char buf[32];
    if (!crossover) {
      std::snprintf(buf, sizeof(buf), "%.0f",
                    build_ms / saved_per_query + 1);
      crossover = buf;
    }
    std::printf("%8d %12.2f %14.3f %14.3f %10s\n", grid * grid, build_ms,
                naive_ms, overlay_ms, crossover);
  }
  std::printf(
      "shape: overlay per-query cost ~flat in #polygons; naive grows; "
      "precompute amortizes after the crossover column\n\n");
}

void BM_OverlayBuildConvex(benchmark::State& state) {
  int grid = static_cast<int>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  auto city = MakeCity(grid, 1, false);
  for (auto _ : state) {
    piet::core::GeoOlapDatabase db(
        std::move(*piet::workload::GenerateCity([&] {
                     CityConfig c;
                     c.grid_cols = grid;
                     c.grid_rows = grid;
                     return c;
                   }())
                       .ValueOrDie()
                       .db));
    db.set_num_threads(threads);
    auto status = db.BuildOverlay({"neighborhoods"}, true);
    benchmark::DoNotOptimize(status.ok());
  }
  state.counters["polygons"] = grid * grid;
  state.counters["threads"] = threads;
}

void BM_OverlayBuildQuadtree(benchmark::State& state) {
  int grid = static_cast<int>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    CityConfig c;
    c.grid_cols = grid;
    c.grid_rows = grid;
    c.nonconvex_fraction = 0.5;
    auto city = piet::workload::GenerateCity(c).ValueOrDie();
    city.db->set_num_threads(threads);
    auto status = city.db->BuildOverlay({"neighborhoods"}, false, 8);
    benchmark::DoNotOptimize(status.ok());
  }
  state.counters["polygons"] = grid * grid;
  state.counters["threads"] = threads;
}

void BM_QueryPerStrategy(benchmark::State& state) {
  int grid = static_cast<int>(state.range(0));
  Strategy strategy = static_cast<Strategy>(state.range(1));
  int threads = static_cast<int>(state.range(2));
  auto city = MakeCity(grid, 100, true);
  city->db->set_num_threads(threads);
  QueryEngine engine(city->db.get());
  engine.set_num_threads(threads);
  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);
  for (auto _ : state) {
    auto r = engine.SampleRegion("cars", city->neighborhoods_layer, low,
                                 TimePredicate(), strategy);
    benchmark::DoNotOptimize(r.ValueOrDie().num_rows());
  }
  state.counters["polygons"] = grid * grid;
  state.counters["threads"] = threads;
  state.counters["pt_tests"] =
      static_cast<double>(engine.stats().point_tests);
  state.SetLabel(std::string(StrategyToString(strategy)));
}

// Batched point location against the overlay: the unit every parallel
// classification pass fans out, measured serial vs pooled.
void BM_LocateBatch(benchmark::State& state) {
  int grid = static_cast<int>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  auto city = MakeCity(grid, 200, true);
  const piet::gis::OverlayDb* ov = city->db->overlay().ValueOrDie();
  const piet::moving::MoftColumns& cols =
      city->db->GetMoft("cars").ValueOrDie()->Columns();
  std::vector<piet::geometry::Point> points;
  points.reserve(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    points.emplace_back(cols.x[i], cols.y[i]);
  }
  for (auto _ : state) {
    auto hits = ov->LocateBatch(points, 0, threads);
    benchmark::DoNotOptimize(hits.ids.size());
  }
  state.counters["points"] = static_cast<double>(points.size());
  state.counters["threads"] = threads;
}

}  // namespace

int main(int argc, char** argv) {
  ShapeReport();
  for (int grid : {4, 8, 16, 32}) {
    for (int threads : {1, 4}) {
      benchmark::RegisterBenchmark("BM_OverlayBuildConvex",
                                   BM_OverlayBuildConvex)
          ->Args({grid, threads})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark("BM_OverlayBuildQuadtree",
                                   BM_OverlayBuildQuadtree)
          ->Args({grid, threads})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark("BM_LocateBatch", BM_LocateBatch)
          ->Args({grid, threads})
          ->Unit(benchmark::kMicrosecond);
      for (int s = 0; s < 3; ++s) {
        benchmark::RegisterBenchmark("BM_QueryPerStrategy",
                                     BM_QueryPerStrategy)
            ->Args({grid, s, threads})
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  piet::benchutil::DumpMetricsSnapshotIfRequested();
  benchmark::Shutdown();
  return 0;
}
