// E2 — the Sec. 4 worked queries (types 3, 4, 6, 7) on synthetic cities.
//
// Shape goals: every query answers consistently across strategies (checked
// in tests); here we report the per-type evaluation cost and how it scales
// with the number of objects and neighborhoods.

#include <benchmark/benchmark.h>

#include "obs_dump.h"

#include <cstdio>
#include <memory>

#include "core/engine.h"
#include "core/queries.h"
#include "workload/city.h"
#include "workload/trajectories.h"

namespace {

using piet::core::GeoOlapDatabase;
using piet::core::GeometryPredicate;
using piet::core::QueryEngine;
using piet::core::Strategy;
using piet::core::TimePredicate;
using piet::workload::City;
using piet::workload::CityConfig;
using piet::workload::TrajectoryConfig;

struct Fixture {
  City city;
};

std::shared_ptr<Fixture> MakeFixture(int grid, int objects) {
  CityConfig city_config;
  city_config.seed = 4242;
  city_config.grid_cols = grid;
  city_config.grid_rows = grid;
  auto fixture = std::make_shared<Fixture>();
  fixture->city = std::move(piet::workload::GenerateCity(city_config))
                      .ValueOrDie();

  TrajectoryConfig traj;
  traj.seed = 99;
  traj.num_objects = objects;
  traj.duration = 4 * 3600.0;
  traj.sample_period = 60.0;
  traj.speed = 12.0;
  auto moft =
      piet::workload::GenerateTrajectories(fixture->city, traj).ValueOrDie();
  (void)fixture->city.db->AddMoft("cars", std::move(moft));
  (void)fixture->city.db->BuildOverlay(
      {fixture->city.neighborhoods_layer});
  return fixture;
}

void ShapeReport() {
  std::printf("=== E2: Sec. 4 query types on a synthetic city ===\n");
  auto fixture = MakeFixture(8, 200);
  GeoOlapDatabase& db = *fixture->city.db;
  QueryEngine engine(&db);
  const std::string& nb = fixture->city.neighborhoods_layer;
  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);
  TimePredicate any;

  auto q_headline = piet::core::queries::CountPerHourInRegion(
      engine, "cars", nb, low, any, Strategy::kOverlay);
  std::printf("type 4 (headline): per_hour=%.3f over %lld hours\n",
              q_headline.ValueOrDie().per_hour,
              static_cast<long long>(q_headline.ValueOrDie().hour_count));

  auto q3_samples = piet::core::queries::CountObjectsCompletelyWithin(
      engine, "cars", nb, GeometryPredicate::AttributeGreaterEq("income", 0.0),
      any, false);
  std::printf("type 4 (completely-within, tautology): %lld objects\n",
              static_cast<long long>(q3_samples.ValueOrDie()));

  auto q6 = piet::core::queries::CountNearNodesPerHour(
      engine, "cars", fixture->city.schools_layer, 10.0, any, false);
  auto q6i = piet::core::queries::CountNearNodesPerHour(
      engine, "cars", fixture->city.schools_layer, 10.0, any, true);
  std::printf(
      "type 4 vs 7 (near schools): sampled pairs=%lld, interpolated "
      "pairs=%lld (interpolated >= sampled: %s)\n",
      static_cast<long long>(q6.ValueOrDie().tuple_count),
      static_cast<long long>(q6i.ValueOrDie().tuple_count),
      q6i.ValueOrDie().tuple_count >= q6.ValueOrDie().tuple_count ? "yes"
                                                                  : "NO");
  std::printf("\n");
}

void BM_Type3_TimeOnly(benchmark::State& state) {
  auto fixture = MakeFixture(8, static_cast<int>(state.range(0)));
  QueryEngine engine(fixture->city.db.get());
  TimePredicate when;
  when.RollupEquals("timeOfDay", piet::Value("Night"));
  for (auto _ : state) {
    auto r = engine.SamplesMatchingTime("cars", when);
    benchmark::DoNotOptimize(r.ValueOrDie().num_rows());
  }
}

void BM_Type4_SampleRegion(benchmark::State& state) {
  auto fixture = MakeFixture(static_cast<int>(state.range(1)),
                             static_cast<int>(state.range(0)));
  int threads = static_cast<int>(state.range(2));
  fixture->city.db->set_num_threads(threads);
  QueryEngine engine(fixture->city.db.get());
  engine.set_num_threads(threads);
  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);
  for (auto _ : state) {
    auto r = engine.SampleRegion("cars", fixture->city.neighborhoods_layer,
                                 low, TimePredicate(), Strategy::kOverlay);
    benchmark::DoNotOptimize(r.ValueOrDie().num_rows());
  }
  state.counters["samples"] = static_cast<double>(
      fixture->city.db->GetMoft("cars").ValueOrDie()->num_samples());
  state.counters["threads"] = threads;
}

void BM_Type6_Snapshot(benchmark::State& state) {
  auto fixture = MakeFixture(8, static_cast<int>(state.range(0)));
  QueryEngine engine(fixture->city.db.get());
  piet::temporal::TimePoint mid(2 * 3600.0);
  for (auto _ : state) {
    auto r = engine.SnapshotInRegion("cars",
                                     fixture->city.neighborhoods_layer,
                                     GeometryPredicate::All(), mid);
    benchmark::DoNotOptimize(r.ValueOrDie().num_rows());
  }
}

void BM_Type7_TrajectoryRegion(benchmark::State& state) {
  auto fixture = MakeFixture(8, static_cast<int>(state.range(0)));
  int threads = static_cast<int>(state.range(1));
  QueryEngine engine(fixture->city.db.get());
  engine.set_num_threads(threads);
  GeometryPredicate low = GeometryPredicate::AttributeLess("income", 1500.0);
  for (auto _ : state) {
    auto r = engine.TrajectoryRegion("cars",
                                     fixture->city.neighborhoods_layer, low,
                                     TimePredicate());
    benchmark::DoNotOptimize(r.ValueOrDie().num_rows());
  }
  state.counters["threads"] = threads;
}

void BM_Type7_NearNodes(benchmark::State& state) {
  auto fixture = MakeFixture(8, static_cast<int>(state.range(0)));
  QueryEngine engine(fixture->city.db.get());
  for (auto _ : state) {
    auto r = engine.TrajectoryNearNodes("cars", fixture->city.schools_layer,
                                        50.0, TimePredicate());
    benchmark::DoNotOptimize(r.ValueOrDie().num_rows());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ShapeReport();
  for (int objects : {50, 200, 800}) {
    benchmark::RegisterBenchmark("BM_Type3_TimeOnly", BM_Type3_TimeOnly)
        ->Arg(objects)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark("BM_Type6_Snapshot", BM_Type6_Snapshot)
        ->Arg(objects)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark("BM_Type7_NearNodes", BM_Type7_NearNodes)
        ->Arg(objects)
        ->Unit(benchmark::kMillisecond);
    for (int threads : {1, 4}) {
      benchmark::RegisterBenchmark("BM_Type4_SampleRegion",
                                   BM_Type4_SampleRegion)
          ->Args({objects, 8, threads})
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark("BM_Type7_TrajectoryRegion",
                                   BM_Type7_TrajectoryRegion)
          ->Args({objects, threads})
          ->Unit(benchmark::kMillisecond);
    }
  }
  // Neighborhood-count sweep at fixed fleet.
  for (int grid : {4, 8, 16, 32}) {
    benchmark::RegisterBenchmark("BM_Type4_SampleRegion/grid",
                                 BM_Type4_SampleRegion)
        ->Args({200, grid, 1})
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  piet::benchutil::DumpMetricsSnapshotIfRequested();
  benchmark::Shutdown();
  return 0;
}
