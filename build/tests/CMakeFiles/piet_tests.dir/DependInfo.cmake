
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/piet_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_database_test.cc" "tests/CMakeFiles/piet_tests.dir/core_database_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/core_database_test.cc.o.d"
  "/root/repo/tests/core_engine_test.cc" "tests/CMakeFiles/piet_tests.dir/core_engine_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/core_engine_test.cc.o.d"
  "/root/repo/tests/core_pietql_printer_test.cc" "tests/CMakeFiles/piet_tests.dir/core_pietql_printer_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/core_pietql_printer_test.cc.o.d"
  "/root/repo/tests/core_pietql_test.cc" "tests/CMakeFiles/piet_tests.dir/core_pietql_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/core_pietql_test.cc.o.d"
  "/root/repo/tests/core_summable_test.cc" "tests/CMakeFiles/piet_tests.dir/core_summable_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/core_summable_test.cc.o.d"
  "/root/repo/tests/core_timeseries_test.cc" "tests/CMakeFiles/piet_tests.dir/core_timeseries_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/core_timeseries_test.cc.o.d"
  "/root/repo/tests/geometry_clip_wkt_test.cc" "tests/CMakeFiles/piet_tests.dir/geometry_clip_wkt_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/geometry_clip_wkt_test.cc.o.d"
  "/root/repo/tests/geometry_distance_test.cc" "tests/CMakeFiles/piet_tests.dir/geometry_distance_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/geometry_distance_test.cc.o.d"
  "/root/repo/tests/geometry_polygon_test.cc" "tests/CMakeFiles/piet_tests.dir/geometry_polygon_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/geometry_polygon_test.cc.o.d"
  "/root/repo/tests/geometry_polyline_test.cc" "tests/CMakeFiles/piet_tests.dir/geometry_polyline_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/geometry_polyline_test.cc.o.d"
  "/root/repo/tests/geometry_predicates_test.cc" "tests/CMakeFiles/piet_tests.dir/geometry_predicates_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/geometry_predicates_test.cc.o.d"
  "/root/repo/tests/geometry_segment_polygon_test.cc" "tests/CMakeFiles/piet_tests.dir/geometry_segment_polygon_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/geometry_segment_polygon_test.cc.o.d"
  "/root/repo/tests/gis_fact_table_test.cc" "tests/CMakeFiles/piet_tests.dir/gis_fact_table_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/gis_fact_table_test.cc.o.d"
  "/root/repo/tests/gis_io_test.cc" "tests/CMakeFiles/piet_tests.dir/gis_io_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/gis_io_test.cc.o.d"
  "/root/repo/tests/gis_overlay_test.cc" "tests/CMakeFiles/piet_tests.dir/gis_overlay_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/gis_overlay_test.cc.o.d"
  "/root/repo/tests/gis_test.cc" "tests/CMakeFiles/piet_tests.dir/gis_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/gis_test.cc.o.d"
  "/root/repo/tests/index_test.cc" "tests/CMakeFiles/piet_tests.dir/index_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/index_test.cc.o.d"
  "/root/repo/tests/moving_simplify_heatmap_test.cc" "tests/CMakeFiles/piet_tests.dir/moving_simplify_heatmap_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/moving_simplify_heatmap_test.cc.o.d"
  "/root/repo/tests/moving_test.cc" "tests/CMakeFiles/piet_tests.dir/moving_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/moving_test.cc.o.d"
  "/root/repo/tests/moving_traj_ops_test.cc" "tests/CMakeFiles/piet_tests.dir/moving_traj_ops_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/moving_traj_ops_test.cc.o.d"
  "/root/repo/tests/olap_mdx_test.cc" "tests/CMakeFiles/piet_tests.dir/olap_mdx_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/olap_mdx_test.cc.o.d"
  "/root/repo/tests/olap_test.cc" "tests/CMakeFiles/piet_tests.dir/olap_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/olap_test.cc.o.d"
  "/root/repo/tests/temporal_test.cc" "tests/CMakeFiles/piet_tests.dir/temporal_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/temporal_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/piet_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/piet_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/piet_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/piet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gis/CMakeFiles/piet_gis.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/piet_index.dir/DependInfo.cmake"
  "/root/repo/build/src/moving/CMakeFiles/piet_moving.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/piet_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/olap/CMakeFiles/piet_olap.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/piet_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/piet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
