# Empty dependencies file for piet_tests.
# This may be replaced when dependencies are built.
