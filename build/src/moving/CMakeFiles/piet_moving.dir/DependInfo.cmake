
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/moving/bead.cc" "src/moving/CMakeFiles/piet_moving.dir/bead.cc.o" "gcc" "src/moving/CMakeFiles/piet_moving.dir/bead.cc.o.d"
  "/root/repo/src/moving/heatmap.cc" "src/moving/CMakeFiles/piet_moving.dir/heatmap.cc.o" "gcc" "src/moving/CMakeFiles/piet_moving.dir/heatmap.cc.o.d"
  "/root/repo/src/moving/moft.cc" "src/moving/CMakeFiles/piet_moving.dir/moft.cc.o" "gcc" "src/moving/CMakeFiles/piet_moving.dir/moft.cc.o.d"
  "/root/repo/src/moving/simplify.cc" "src/moving/CMakeFiles/piet_moving.dir/simplify.cc.o" "gcc" "src/moving/CMakeFiles/piet_moving.dir/simplify.cc.o.d"
  "/root/repo/src/moving/traj_ops.cc" "src/moving/CMakeFiles/piet_moving.dir/traj_ops.cc.o" "gcc" "src/moving/CMakeFiles/piet_moving.dir/traj_ops.cc.o.d"
  "/root/repo/src/moving/trajectory.cc" "src/moving/CMakeFiles/piet_moving.dir/trajectory.cc.o" "gcc" "src/moving/CMakeFiles/piet_moving.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/piet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/piet_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/olap/CMakeFiles/piet_olap.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/piet_temporal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
