file(REMOVE_RECURSE
  "CMakeFiles/piet_moving.dir/bead.cc.o"
  "CMakeFiles/piet_moving.dir/bead.cc.o.d"
  "CMakeFiles/piet_moving.dir/heatmap.cc.o"
  "CMakeFiles/piet_moving.dir/heatmap.cc.o.d"
  "CMakeFiles/piet_moving.dir/moft.cc.o"
  "CMakeFiles/piet_moving.dir/moft.cc.o.d"
  "CMakeFiles/piet_moving.dir/simplify.cc.o"
  "CMakeFiles/piet_moving.dir/simplify.cc.o.d"
  "CMakeFiles/piet_moving.dir/traj_ops.cc.o"
  "CMakeFiles/piet_moving.dir/traj_ops.cc.o.d"
  "CMakeFiles/piet_moving.dir/trajectory.cc.o"
  "CMakeFiles/piet_moving.dir/trajectory.cc.o.d"
  "libpiet_moving.a"
  "libpiet_moving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piet_moving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
