# Empty compiler generated dependencies file for piet_moving.
# This may be replaced when dependencies are built.
