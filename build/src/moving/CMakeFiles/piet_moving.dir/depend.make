# Empty dependencies file for piet_moving.
# This may be replaced when dependencies are built.
