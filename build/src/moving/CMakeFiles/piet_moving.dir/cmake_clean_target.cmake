file(REMOVE_RECURSE
  "libpiet_moving.a"
)
