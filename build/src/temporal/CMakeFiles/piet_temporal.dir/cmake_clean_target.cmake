file(REMOVE_RECURSE
  "libpiet_temporal.a"
)
