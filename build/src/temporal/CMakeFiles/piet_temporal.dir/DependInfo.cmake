
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/calendar.cc" "src/temporal/CMakeFiles/piet_temporal.dir/calendar.cc.o" "gcc" "src/temporal/CMakeFiles/piet_temporal.dir/calendar.cc.o.d"
  "/root/repo/src/temporal/interval.cc" "src/temporal/CMakeFiles/piet_temporal.dir/interval.cc.o" "gcc" "src/temporal/CMakeFiles/piet_temporal.dir/interval.cc.o.d"
  "/root/repo/src/temporal/time_dimension.cc" "src/temporal/CMakeFiles/piet_temporal.dir/time_dimension.cc.o" "gcc" "src/temporal/CMakeFiles/piet_temporal.dir/time_dimension.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/piet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
