# Empty compiler generated dependencies file for piet_temporal.
# This may be replaced when dependencies are built.
