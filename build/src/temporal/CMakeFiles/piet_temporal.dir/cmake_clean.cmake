file(REMOVE_RECURSE
  "CMakeFiles/piet_temporal.dir/calendar.cc.o"
  "CMakeFiles/piet_temporal.dir/calendar.cc.o.d"
  "CMakeFiles/piet_temporal.dir/interval.cc.o"
  "CMakeFiles/piet_temporal.dir/interval.cc.o.d"
  "CMakeFiles/piet_temporal.dir/time_dimension.cc.o"
  "CMakeFiles/piet_temporal.dir/time_dimension.cc.o.d"
  "libpiet_temporal.a"
  "libpiet_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piet_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
