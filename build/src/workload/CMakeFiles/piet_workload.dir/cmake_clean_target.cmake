file(REMOVE_RECURSE
  "libpiet_workload.a"
)
