file(REMOVE_RECURSE
  "CMakeFiles/piet_workload.dir/city.cc.o"
  "CMakeFiles/piet_workload.dir/city.cc.o.d"
  "CMakeFiles/piet_workload.dir/scenario.cc.o"
  "CMakeFiles/piet_workload.dir/scenario.cc.o.d"
  "CMakeFiles/piet_workload.dir/trajectories.cc.o"
  "CMakeFiles/piet_workload.dir/trajectories.cc.o.d"
  "libpiet_workload.a"
  "libpiet_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piet_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
