# Empty dependencies file for piet_workload.
# This may be replaced when dependencies are built.
