file(REMOVE_RECURSE
  "CMakeFiles/piet_olap.dir/aggregate.cc.o"
  "CMakeFiles/piet_olap.dir/aggregate.cc.o.d"
  "CMakeFiles/piet_olap.dir/cube.cc.o"
  "CMakeFiles/piet_olap.dir/cube.cc.o.d"
  "CMakeFiles/piet_olap.dir/dimension.cc.o"
  "CMakeFiles/piet_olap.dir/dimension.cc.o.d"
  "CMakeFiles/piet_olap.dir/fact_table.cc.o"
  "CMakeFiles/piet_olap.dir/fact_table.cc.o.d"
  "CMakeFiles/piet_olap.dir/mdx.cc.o"
  "CMakeFiles/piet_olap.dir/mdx.cc.o.d"
  "libpiet_olap.a"
  "libpiet_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piet_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
