# Empty compiler generated dependencies file for piet_olap.
# This may be replaced when dependencies are built.
