file(REMOVE_RECURSE
  "libpiet_olap.a"
)
