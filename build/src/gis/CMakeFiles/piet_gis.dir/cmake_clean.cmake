file(REMOVE_RECURSE
  "CMakeFiles/piet_gis.dir/density.cc.o"
  "CMakeFiles/piet_gis.dir/density.cc.o.d"
  "CMakeFiles/piet_gis.dir/fact_table.cc.o"
  "CMakeFiles/piet_gis.dir/fact_table.cc.o.d"
  "CMakeFiles/piet_gis.dir/instance.cc.o"
  "CMakeFiles/piet_gis.dir/instance.cc.o.d"
  "CMakeFiles/piet_gis.dir/io.cc.o"
  "CMakeFiles/piet_gis.dir/io.cc.o.d"
  "CMakeFiles/piet_gis.dir/layer.cc.o"
  "CMakeFiles/piet_gis.dir/layer.cc.o.d"
  "CMakeFiles/piet_gis.dir/overlay.cc.o"
  "CMakeFiles/piet_gis.dir/overlay.cc.o.d"
  "CMakeFiles/piet_gis.dir/schema.cc.o"
  "CMakeFiles/piet_gis.dir/schema.cc.o.d"
  "libpiet_gis.a"
  "libpiet_gis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piet_gis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
