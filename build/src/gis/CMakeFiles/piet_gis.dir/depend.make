# Empty dependencies file for piet_gis.
# This may be replaced when dependencies are built.
