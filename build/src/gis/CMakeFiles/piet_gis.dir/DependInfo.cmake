
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gis/density.cc" "src/gis/CMakeFiles/piet_gis.dir/density.cc.o" "gcc" "src/gis/CMakeFiles/piet_gis.dir/density.cc.o.d"
  "/root/repo/src/gis/fact_table.cc" "src/gis/CMakeFiles/piet_gis.dir/fact_table.cc.o" "gcc" "src/gis/CMakeFiles/piet_gis.dir/fact_table.cc.o.d"
  "/root/repo/src/gis/instance.cc" "src/gis/CMakeFiles/piet_gis.dir/instance.cc.o" "gcc" "src/gis/CMakeFiles/piet_gis.dir/instance.cc.o.d"
  "/root/repo/src/gis/io.cc" "src/gis/CMakeFiles/piet_gis.dir/io.cc.o" "gcc" "src/gis/CMakeFiles/piet_gis.dir/io.cc.o.d"
  "/root/repo/src/gis/layer.cc" "src/gis/CMakeFiles/piet_gis.dir/layer.cc.o" "gcc" "src/gis/CMakeFiles/piet_gis.dir/layer.cc.o.d"
  "/root/repo/src/gis/overlay.cc" "src/gis/CMakeFiles/piet_gis.dir/overlay.cc.o" "gcc" "src/gis/CMakeFiles/piet_gis.dir/overlay.cc.o.d"
  "/root/repo/src/gis/schema.cc" "src/gis/CMakeFiles/piet_gis.dir/schema.cc.o" "gcc" "src/gis/CMakeFiles/piet_gis.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/piet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/piet_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/piet_index.dir/DependInfo.cmake"
  "/root/repo/build/src/olap/CMakeFiles/piet_olap.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/piet_temporal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
