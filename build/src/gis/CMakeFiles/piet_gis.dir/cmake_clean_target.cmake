file(REMOVE_RECURSE
  "libpiet_gis.a"
)
