# Empty compiler generated dependencies file for piet_common.
# This may be replaced when dependencies are built.
