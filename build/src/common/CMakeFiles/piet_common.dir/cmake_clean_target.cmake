file(REMOVE_RECURSE
  "libpiet_common.a"
)
