# Empty dependencies file for piet_common.
# This may be replaced when dependencies are built.
