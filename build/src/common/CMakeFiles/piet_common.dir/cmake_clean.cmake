file(REMOVE_RECURSE
  "CMakeFiles/piet_common.dir/random.cc.o"
  "CMakeFiles/piet_common.dir/random.cc.o.d"
  "CMakeFiles/piet_common.dir/status.cc.o"
  "CMakeFiles/piet_common.dir/status.cc.o.d"
  "CMakeFiles/piet_common.dir/string_util.cc.o"
  "CMakeFiles/piet_common.dir/string_util.cc.o.d"
  "CMakeFiles/piet_common.dir/value.cc.o"
  "CMakeFiles/piet_common.dir/value.cc.o.d"
  "libpiet_common.a"
  "libpiet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
