
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/box.cc" "src/geometry/CMakeFiles/piet_geometry.dir/box.cc.o" "gcc" "src/geometry/CMakeFiles/piet_geometry.dir/box.cc.o.d"
  "/root/repo/src/geometry/clip.cc" "src/geometry/CMakeFiles/piet_geometry.dir/clip.cc.o" "gcc" "src/geometry/CMakeFiles/piet_geometry.dir/clip.cc.o.d"
  "/root/repo/src/geometry/distance.cc" "src/geometry/CMakeFiles/piet_geometry.dir/distance.cc.o" "gcc" "src/geometry/CMakeFiles/piet_geometry.dir/distance.cc.o.d"
  "/root/repo/src/geometry/point.cc" "src/geometry/CMakeFiles/piet_geometry.dir/point.cc.o" "gcc" "src/geometry/CMakeFiles/piet_geometry.dir/point.cc.o.d"
  "/root/repo/src/geometry/polygon.cc" "src/geometry/CMakeFiles/piet_geometry.dir/polygon.cc.o" "gcc" "src/geometry/CMakeFiles/piet_geometry.dir/polygon.cc.o.d"
  "/root/repo/src/geometry/polyline.cc" "src/geometry/CMakeFiles/piet_geometry.dir/polyline.cc.o" "gcc" "src/geometry/CMakeFiles/piet_geometry.dir/polyline.cc.o.d"
  "/root/repo/src/geometry/predicates.cc" "src/geometry/CMakeFiles/piet_geometry.dir/predicates.cc.o" "gcc" "src/geometry/CMakeFiles/piet_geometry.dir/predicates.cc.o.d"
  "/root/repo/src/geometry/segment.cc" "src/geometry/CMakeFiles/piet_geometry.dir/segment.cc.o" "gcc" "src/geometry/CMakeFiles/piet_geometry.dir/segment.cc.o.d"
  "/root/repo/src/geometry/segment_polygon.cc" "src/geometry/CMakeFiles/piet_geometry.dir/segment_polygon.cc.o" "gcc" "src/geometry/CMakeFiles/piet_geometry.dir/segment_polygon.cc.o.d"
  "/root/repo/src/geometry/wkt.cc" "src/geometry/CMakeFiles/piet_geometry.dir/wkt.cc.o" "gcc" "src/geometry/CMakeFiles/piet_geometry.dir/wkt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/piet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
