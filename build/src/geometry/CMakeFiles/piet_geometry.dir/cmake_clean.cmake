file(REMOVE_RECURSE
  "CMakeFiles/piet_geometry.dir/box.cc.o"
  "CMakeFiles/piet_geometry.dir/box.cc.o.d"
  "CMakeFiles/piet_geometry.dir/clip.cc.o"
  "CMakeFiles/piet_geometry.dir/clip.cc.o.d"
  "CMakeFiles/piet_geometry.dir/distance.cc.o"
  "CMakeFiles/piet_geometry.dir/distance.cc.o.d"
  "CMakeFiles/piet_geometry.dir/point.cc.o"
  "CMakeFiles/piet_geometry.dir/point.cc.o.d"
  "CMakeFiles/piet_geometry.dir/polygon.cc.o"
  "CMakeFiles/piet_geometry.dir/polygon.cc.o.d"
  "CMakeFiles/piet_geometry.dir/polyline.cc.o"
  "CMakeFiles/piet_geometry.dir/polyline.cc.o.d"
  "CMakeFiles/piet_geometry.dir/predicates.cc.o"
  "CMakeFiles/piet_geometry.dir/predicates.cc.o.d"
  "CMakeFiles/piet_geometry.dir/segment.cc.o"
  "CMakeFiles/piet_geometry.dir/segment.cc.o.d"
  "CMakeFiles/piet_geometry.dir/segment_polygon.cc.o"
  "CMakeFiles/piet_geometry.dir/segment_polygon.cc.o.d"
  "CMakeFiles/piet_geometry.dir/wkt.cc.o"
  "CMakeFiles/piet_geometry.dir/wkt.cc.o.d"
  "libpiet_geometry.a"
  "libpiet_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piet_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
