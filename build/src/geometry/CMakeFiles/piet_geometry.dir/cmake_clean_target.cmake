file(REMOVE_RECURSE
  "libpiet_geometry.a"
)
