# Empty compiler generated dependencies file for piet_geometry.
# This may be replaced when dependencies are built.
