
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/database.cc" "src/core/CMakeFiles/piet_core.dir/database.cc.o" "gcc" "src/core/CMakeFiles/piet_core.dir/database.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/piet_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/piet_core.dir/engine.cc.o.d"
  "/root/repo/src/core/pietql/evaluator.cc" "src/core/CMakeFiles/piet_core.dir/pietql/evaluator.cc.o" "gcc" "src/core/CMakeFiles/piet_core.dir/pietql/evaluator.cc.o.d"
  "/root/repo/src/core/pietql/lexer.cc" "src/core/CMakeFiles/piet_core.dir/pietql/lexer.cc.o" "gcc" "src/core/CMakeFiles/piet_core.dir/pietql/lexer.cc.o.d"
  "/root/repo/src/core/pietql/parser.cc" "src/core/CMakeFiles/piet_core.dir/pietql/parser.cc.o" "gcc" "src/core/CMakeFiles/piet_core.dir/pietql/parser.cc.o.d"
  "/root/repo/src/core/pietql/printer.cc" "src/core/CMakeFiles/piet_core.dir/pietql/printer.cc.o" "gcc" "src/core/CMakeFiles/piet_core.dir/pietql/printer.cc.o.d"
  "/root/repo/src/core/queries.cc" "src/core/CMakeFiles/piet_core.dir/queries.cc.o" "gcc" "src/core/CMakeFiles/piet_core.dir/queries.cc.o.d"
  "/root/repo/src/core/region.cc" "src/core/CMakeFiles/piet_core.dir/region.cc.o" "gcc" "src/core/CMakeFiles/piet_core.dir/region.cc.o.d"
  "/root/repo/src/core/summable.cc" "src/core/CMakeFiles/piet_core.dir/summable.cc.o" "gcc" "src/core/CMakeFiles/piet_core.dir/summable.cc.o.d"
  "/root/repo/src/core/timeseries.cc" "src/core/CMakeFiles/piet_core.dir/timeseries.cc.o" "gcc" "src/core/CMakeFiles/piet_core.dir/timeseries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/piet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/piet_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/gis/CMakeFiles/piet_gis.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/piet_index.dir/DependInfo.cmake"
  "/root/repo/build/src/moving/CMakeFiles/piet_moving.dir/DependInfo.cmake"
  "/root/repo/build/src/olap/CMakeFiles/piet_olap.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/piet_temporal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
