file(REMOVE_RECURSE
  "libpiet_core.a"
)
