# Empty compiler generated dependencies file for piet_core.
# This may be replaced when dependencies are built.
