file(REMOVE_RECURSE
  "CMakeFiles/piet_core.dir/database.cc.o"
  "CMakeFiles/piet_core.dir/database.cc.o.d"
  "CMakeFiles/piet_core.dir/engine.cc.o"
  "CMakeFiles/piet_core.dir/engine.cc.o.d"
  "CMakeFiles/piet_core.dir/pietql/evaluator.cc.o"
  "CMakeFiles/piet_core.dir/pietql/evaluator.cc.o.d"
  "CMakeFiles/piet_core.dir/pietql/lexer.cc.o"
  "CMakeFiles/piet_core.dir/pietql/lexer.cc.o.d"
  "CMakeFiles/piet_core.dir/pietql/parser.cc.o"
  "CMakeFiles/piet_core.dir/pietql/parser.cc.o.d"
  "CMakeFiles/piet_core.dir/pietql/printer.cc.o"
  "CMakeFiles/piet_core.dir/pietql/printer.cc.o.d"
  "CMakeFiles/piet_core.dir/queries.cc.o"
  "CMakeFiles/piet_core.dir/queries.cc.o.d"
  "CMakeFiles/piet_core.dir/region.cc.o"
  "CMakeFiles/piet_core.dir/region.cc.o.d"
  "CMakeFiles/piet_core.dir/summable.cc.o"
  "CMakeFiles/piet_core.dir/summable.cc.o.d"
  "CMakeFiles/piet_core.dir/timeseries.cc.o"
  "CMakeFiles/piet_core.dir/timeseries.cc.o.d"
  "libpiet_core.a"
  "libpiet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
