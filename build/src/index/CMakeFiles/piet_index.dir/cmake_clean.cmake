file(REMOVE_RECURSE
  "CMakeFiles/piet_index.dir/agg_rtree.cc.o"
  "CMakeFiles/piet_index.dir/agg_rtree.cc.o.d"
  "CMakeFiles/piet_index.dir/grid.cc.o"
  "CMakeFiles/piet_index.dir/grid.cc.o.d"
  "CMakeFiles/piet_index.dir/rtree.cc.o"
  "CMakeFiles/piet_index.dir/rtree.cc.o.d"
  "libpiet_index.a"
  "libpiet_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piet_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
