file(REMOVE_RECURSE
  "libpiet_index.a"
)
