# Empty dependencies file for piet_index.
# This may be replaced when dependencies are built.
