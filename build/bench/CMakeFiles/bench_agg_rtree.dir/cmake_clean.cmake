file(REMOVE_RECURSE
  "CMakeFiles/bench_agg_rtree.dir/bench_agg_rtree.cc.o"
  "CMakeFiles/bench_agg_rtree.dir/bench_agg_rtree.cc.o.d"
  "bench_agg_rtree"
  "bench_agg_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_agg_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
