# Empty dependencies file for bench_agg_rtree.
# This may be replaced when dependencies are built.
