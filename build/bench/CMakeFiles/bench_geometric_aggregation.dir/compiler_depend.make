# Empty compiler generated dependencies file for bench_geometric_aggregation.
# This may be replaced when dependencies are built.
