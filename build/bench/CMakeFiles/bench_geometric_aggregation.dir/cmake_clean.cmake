file(REMOVE_RECURSE
  "CMakeFiles/bench_geometric_aggregation.dir/bench_geometric_aggregation.cc.o"
  "CMakeFiles/bench_geometric_aggregation.dir/bench_geometric_aggregation.cc.o.d"
  "bench_geometric_aggregation"
  "bench_geometric_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geometric_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
