file(REMOVE_RECURSE
  "CMakeFiles/bench_olap_rollup.dir/bench_olap_rollup.cc.o"
  "CMakeFiles/bench_olap_rollup.dir/bench_olap_rollup.cc.o.d"
  "bench_olap_rollup"
  "bench_olap_rollup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_olap_rollup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
