# Empty compiler generated dependencies file for bench_olap_rollup.
# This may be replaced when dependencies are built.
