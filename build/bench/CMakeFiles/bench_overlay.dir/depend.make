# Empty dependencies file for bench_overlay.
# This may be replaced when dependencies are built.
