file(REMOVE_RECURSE
  "CMakeFiles/bench_trajectory_aggregation.dir/bench_trajectory_aggregation.cc.o"
  "CMakeFiles/bench_trajectory_aggregation.dir/bench_trajectory_aggregation.cc.o.d"
  "bench_trajectory_aggregation"
  "bench_trajectory_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trajectory_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
