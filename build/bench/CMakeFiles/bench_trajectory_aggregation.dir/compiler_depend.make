# Empty compiler generated dependencies file for bench_trajectory_aggregation.
# This may be replaced when dependencies are built.
