
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/commuter_analysis.cpp" "examples/CMakeFiles/commuter_analysis.dir/commuter_analysis.cpp.o" "gcc" "examples/CMakeFiles/commuter_analysis.dir/commuter_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/piet_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/piet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gis/CMakeFiles/piet_gis.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/piet_index.dir/DependInfo.cmake"
  "/root/repo/build/src/moving/CMakeFiles/piet_moving.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/piet_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/olap/CMakeFiles/piet_olap.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/piet_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/piet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
