# Empty compiler generated dependencies file for school_proximity.
# This may be replaced when dependencies are built.
