file(REMOVE_RECURSE
  "CMakeFiles/school_proximity.dir/school_proximity.cpp.o"
  "CMakeFiles/school_proximity.dir/school_proximity.cpp.o.d"
  "school_proximity"
  "school_proximity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/school_proximity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
