file(REMOVE_RECURSE
  "CMakeFiles/pietql_shell.dir/pietql_shell.cpp.o"
  "CMakeFiles/pietql_shell.dir/pietql_shell.cpp.o.d"
  "pietql_shell"
  "pietql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pietql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
