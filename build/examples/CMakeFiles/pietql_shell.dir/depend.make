# Empty dependencies file for pietql_shell.
# This may be replaced when dependencies are built.
