file(REMOVE_RECURSE
  "CMakeFiles/traffic_density.dir/traffic_density.cpp.o"
  "CMakeFiles/traffic_density.dir/traffic_density.cpp.o.d"
  "traffic_density"
  "traffic_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
