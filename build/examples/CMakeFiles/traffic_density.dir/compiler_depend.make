# Empty compiler generated dependencies file for traffic_density.
# This may be replaced when dependencies are built.
