#include "core/region.h"

#include <algorithm>
#include <limits>
#include <map>

#include "geometry/distance.h"

namespace piet::core {

GeometryPredicate GeometryPredicate::All() { return GeometryPredicate(); }

GeometryPredicate GeometryPredicate::AttributeLess(std::string attr,
                                                   double threshold) {
  return GeometryPredicate(
      [attr = std::move(attr), threshold](const gis::Layer& layer,
                                          gis::GeometryId id) {
        auto v = layer.GetAttribute(id, attr);
        if (!v.ok()) {
          return false;
        }
        auto num = v.ValueOrDie().AsNumeric();
        return num.ok() && num.ValueOrDie() < threshold;
      });
}

GeometryPredicate GeometryPredicate::AttributeGreater(std::string attr,
                                                      double threshold) {
  return GeometryPredicate(
      [attr = std::move(attr), threshold](const gis::Layer& layer,
                                          gis::GeometryId id) {
        auto v = layer.GetAttribute(id, attr);
        if (!v.ok()) {
          return false;
        }
        auto num = v.ValueOrDie().AsNumeric();
        return num.ok() && num.ValueOrDie() > threshold;
      });
}

GeometryPredicate GeometryPredicate::AttributeGreaterEq(std::string attr,
                                                        double threshold) {
  return GeometryPredicate(
      [attr = std::move(attr), threshold](const gis::Layer& layer,
                                          gis::GeometryId id) {
        auto v = layer.GetAttribute(id, attr);
        if (!v.ok()) {
          return false;
        }
        auto num = v.ValueOrDie().AsNumeric();
        return num.ok() && num.ValueOrDie() >= threshold;
      });
}

GeometryPredicate GeometryPredicate::AttributeEquals(std::string attr,
                                                     Value value) {
  return GeometryPredicate(
      [attr = std::move(attr), value = std::move(value)](
          const gis::Layer& layer, gis::GeometryId id) {
        auto v = layer.GetAttribute(id, attr);
        return v.ok() && v.ValueOrDie() == value;
      });
}

GeometryPredicate GeometryPredicate::AlphaEquals(
    const gis::GisDimensionInstance* gis, std::string attribute, Value member) {
  return GeometryPredicate(
      [gis, attribute = std::move(attribute),
       member = std::move(member)](const gis::Layer&, gis::GeometryId id) {
        auto bound = gis->Alpha(attribute, member);
        return bound.ok() && bound.ValueOrDie() == id;
      });
}

GeometryPredicate GeometryPredicate::WithinDistanceOfLayer(
    const gis::GisDimensionInstance* gis, std::string layer,
    double distance) {
  auto cache = std::make_shared<std::map<gis::GeometryId, bool>>();
  return GeometryPredicate(
      [gis, layer = std::move(layer), distance, cache](
          const gis::Layer& subject, gis::GeometryId id) {
        auto it = cache->find(id);
        if (it != cache->end()) {
          return it->second;
        }
        bool hit = false;
        auto other_r = gis->GetLayer(layer);
        auto pg_r = subject.GetPolygon(id);
        if (other_r.ok() && pg_r.ok()) {
          const gis::Layer& other = *other_r.ValueOrDie();
          const geometry::Polygon& pg = *pg_r.ValueOrDie();
          geometry::BoundingBox probe = pg.Bounds();
          geometry::BoundingBox expanded(
              probe.min_x - distance, probe.min_y - distance,
              probe.max_x + distance, probe.max_y + distance);
          for (gis::GeometryId cand : other.CandidatesInBox(expanded)) {
            double d = std::numeric_limits<double>::infinity();
            switch (other.kind()) {
              case gis::GeometryKind::kPoint:
              case gis::GeometryKind::kNode: {
                auto pt = other.GetPoint(cand);
                if (pt.ok()) {
                  d = geometry::DistanceToPolygon(pt.ValueOrDie(), pg);
                }
                break;
              }
              case gis::GeometryKind::kLine:
              case gis::GeometryKind::kPolyline: {
                auto line = other.GetPolyline(cand);
                if (line.ok()) {
                  d = geometry::PolylinePolygonDistance(*line.ValueOrDie(),
                                                        pg);
                }
                break;
              }
              case gis::GeometryKind::kPolygon: {
                auto opg = other.GetPolygon(cand);
                if (opg.ok()) {
                  d = geometry::PolygonDistance(*opg.ValueOrDie(), pg);
                }
                break;
              }
              case gis::GeometryKind::kAll:
                break;
            }
            if (d <= distance) {
              hit = true;
              break;
            }
          }
        }
        (*cache)[id] = hit;
        return hit;
      });
}

GeometryPredicate GeometryPredicate::DensityMassGreater(
    std::shared_ptr<const gis::DensityField> field, double threshold) {
  // Memoize the (expensive) integral per geometry id. The cache is shared
  // by all copies of this predicate.
  auto cache = std::make_shared<std::map<gis::GeometryId, double>>();
  return GeometryPredicate(
      [field = std::move(field), threshold, cache](const gis::Layer& layer,
                                                   gis::GeometryId id) {
        auto it = cache->find(id);
        double mass;
        if (it != cache->end()) {
          mass = it->second;
        } else {
          auto pg = layer.GetPolygon(id);
          if (!pg.ok()) {
            return false;
          }
          mass = field->IntegrateOverPolygon(*pg.ValueOrDie());
          (*cache)[id] = mass;
        }
        return mass > threshold;
      });
}

GeometryPredicate GeometryPredicate::And(GeometryPredicate other) const {
  Fn self = fn_;
  return GeometryPredicate(
      [self, other = std::move(other)](const gis::Layer& layer,
                                       gis::GeometryId id) {
        return self(layer, id) && other(layer, id);
      });
}

GeometryPredicate GeometryPredicate::Or(GeometryPredicate other) const {
  Fn self = fn_;
  return GeometryPredicate(
      [self, other = std::move(other)](const gis::Layer& layer,
                                       gis::GeometryId id) {
        return self(layer, id) || other(layer, id);
      });
}

GeometryPredicate GeometryPredicate::Not() const {
  Fn self = fn_;
  return GeometryPredicate(
      [self](const gis::Layer& layer, gis::GeometryId id) {
        return !self(layer, id);
      });
}

TimePredicate& TimePredicate::RollupEquals(std::string level, Value member) {
  rollup_equals_.emplace_back(std::move(level), std::move(member));
  return *this;
}

TimePredicate& TimePredicate::Window(temporal::Interval window) {
  window_ = window;
  return *this;
}

TimePredicate& TimePredicate::HourRange(int h0, int h1) {
  hour_range_ = {h0, h1};
  return *this;
}

Result<temporal::IntervalSet> TimePredicate::MatchingIntervals(
    const temporal::TimeDimension& dim,
    const temporal::Interval& domain) const {
  for (const auto& [level, member] : rollup_equals_) {
    if (level == "timeId" || level == "minute") {
      return Status::InvalidArgument(
          "MatchingIntervals requires hour-or-coarser rollup constraints; "
          "got '" +
          level + "'");
    }
  }
  // Cut the domain at every hour boundary plus the window endpoints; the
  // predicate is constant on each elementary piece, so one midpoint probe
  // per piece is exact.
  std::vector<double> cuts = {domain.begin.seconds, domain.end.seconds};
  double first_hour =
      (temporal::StartOfHour(domain.begin) + temporal::kHour).seconds;
  for (double h = first_hour; h < domain.end.seconds; h += temporal::kHour) {
    cuts.push_back(h);
  }
  if (window_) {
    for (double w : {window_->begin.seconds, window_->end.seconds}) {
      if (w > domain.begin.seconds && w < domain.end.seconds) {
        cuts.push_back(w);
      }
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<temporal::Interval> pieces;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    temporal::TimePoint probe((cuts[i] + cuts[i + 1]) / 2.0);
    if (Matches(dim, probe)) {
      pieces.emplace_back(temporal::TimePoint(cuts[i]),
                          temporal::TimePoint(cuts[i + 1]));
    }
  }
  if (cuts.size() == 1) {
    // Point domain.
    if (Matches(dim, domain.begin)) {
      pieces.emplace_back(domain.begin, domain.begin);
    }
  }
  return temporal::IntervalSet(std::move(pieces));
}

bool TimePredicate::Matches(const temporal::TimeDimension& dim,
                            temporal::TimePoint t) const {
  if (window_ && !window_->Contains(t)) {
    return false;
  }
  if (hour_range_) {
    int h = temporal::GetHourOfDay(t);
    if (h < hour_range_->first || h > hour_range_->second) {
      return false;
    }
  }
  for (const auto& [level, member] : rollup_equals_) {
    auto rolled = dim.Rollup(level, t);
    if (!rolled.ok() || !(rolled.ValueOrDie() == member)) {
      return false;
    }
  }
  return true;
}

}  // namespace piet::core
