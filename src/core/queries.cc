#include "core/queries.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/summable.h"
#include "olap/aggregate.h"

namespace piet::core::queries {

using moving::ObjectId;
using olap::FactTable;
using olap::Row;
using temporal::TimePoint;

namespace {

// Hour bucket (start-of-hour seconds) of a fact-table `t` column value.
int64_t HourBucketOf(double t_seconds) {
  return static_cast<int64_t>(
      temporal::StartOfHour(TimePoint(t_seconds)).seconds);
}

// Builds a PerHourResult from (Oid, hour) pairs.
PerHourResult FromPairs(const std::set<std::pair<int64_t, int64_t>>& pairs) {
  PerHourResult out;
  std::set<int64_t> hours;
  for (const auto& [oid, hour] : pairs) {
    hours.insert(hour);
  }
  out.tuple_count = static_cast<int64_t>(pairs.size());
  out.hour_count = static_cast<int64_t>(hours.size());
  out.per_hour = hours.empty() ? 0.0
                               : static_cast<double>(pairs.size()) /
                                     static_cast<double>(hours.size());
  return out;
}

}  // namespace

Result<PerHourResult> CountPerHourInRegion(const QueryEngine& engine,
                                           const std::string& moft,
                                           const std::string& layer,
                                           const GeometryPredicate& pred,
                                           const TimePredicate& when,
                                           Strategy strategy) {
  PIET_ASSIGN_OR_RETURN(
      FactTable region, engine.SampleRegion(moft, layer, pred, when, strategy));
  PIET_ASSIGN_OR_RETURN(size_t oid_idx, region.ColumnIndex("Oid"));
  PIET_ASSIGN_OR_RETURN(size_t t_idx, region.ColumnIndex("t"));
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const Row& r : region.rows()) {
    pairs.emplace(r[oid_idx].AsIntUnchecked(),
                  HourBucketOf(r[t_idx].AsDoubleUnchecked()));
  }
  return FromPairs(pairs);
}

Result<int64_t> CountObjectsInRegion(const QueryEngine& engine,
                                     const std::string& moft,
                                     const std::string& layer,
                                     const std::string& attribute,
                                     const Value& member,
                                     const TimePredicate& when,
                                     Strategy strategy) {
  GeometryPredicate pred = GeometryPredicate::AlphaEquals(
      &engine.db().gis(), attribute, member);
  PIET_ASSIGN_OR_RETURN(
      FactTable region, engine.SampleRegion(moft, layer, pred, when, strategy));
  PIET_ASSIGN_OR_RETURN(Value count, olap::AggregateScalar(
                                         region,
                                         olap::AggFunction::kCountDistinct,
                                         "Oid"));
  return count.AsIntUnchecked();
}

Result<DensityResult> MaxStreetDensity(const QueryEngine& engine,
                                       const std::string& moft,
                                       const std::string& street_layer,
                                       double tolerance,
                                       const TimePredicate& when,
                                       DensityInterpretation interpretation) {
  PIET_ASSIGN_OR_RETURN(
      FactTable on_streets,
      engine.SamplesOnPolylines(moft, street_layer, tolerance, when));
  PIET_ASSIGN_OR_RETURN(const gis::Layer* layer,
                        engine.db().gis().GetLayer(street_layer));

  auto street_length = [&](int64_t id) -> double {
    auto line = layer->GetPolyline(id);
    return line.ok() ? line.ValueOrDie()->Length() : 0.0;
  };

  DensityResult best;
  best.density = -1.0;

  PIET_ASSIGN_OR_RETURN(size_t oid_idx, on_streets.ColumnIndex("Oid"));
  (void)oid_idx;
  PIET_ASSIGN_OR_RETURN(size_t t_idx, on_streets.ColumnIndex("t"));
  PIET_ASSIGN_OR_RETURN(size_t geom_idx, on_streets.ColumnIndex("geom"));

  switch (interpretation) {
    case DensityInterpretation::kPerStreet: {
      std::map<int64_t, int64_t> counts;
      for (const Row& r : on_streets.rows()) {
        counts[r[geom_idx].AsIntUnchecked()]++;
      }
      for (const auto& [street, count] : counts) {
        double len = street_length(street);
        if (len <= 0.0) {
          continue;
        }
        double density = static_cast<double>(count) / len;
        if (density > best.density) {
          best = {Value(street), Value(), density};
        }
      }
      break;
    }
    case DensityInterpretation::kPerStreetInstant: {
      std::map<std::pair<int64_t, double>, int64_t> counts;
      for (const Row& r : on_streets.rows()) {
        counts[{r[geom_idx].AsIntUnchecked(),
                r[t_idx].AsDoubleUnchecked()}]++;
      }
      for (const auto& [key, count] : counts) {
        double len = street_length(key.first);
        if (len <= 0.0) {
          continue;
        }
        double density = static_cast<double>(count) / len;
        if (density > best.density) {
          best = {Value(key.first), Value(key.second), density};
        }
      }
      break;
    }
    case DensityInterpretation::kCityWide: {
      double total_len = layer->TotalMeasure();
      if (total_len <= 0.0) {
        return Status::InvalidArgument("street layer has zero total length");
      }
      std::map<double, int64_t> counts;
      for (const Row& r : on_streets.rows()) {
        counts[r[t_idx].AsDoubleUnchecked()]++;
      }
      for (const auto& [instant, count] : counts) {
        double density = static_cast<double>(count) / total_len;
        if (density > best.density) {
          best = {Value(), Value(instant), density};
        }
      }
      break;
    }
  }
  if (best.density < 0.0) {
    best.density = 0.0;
  }
  return best;
}

Result<int64_t> CountObjectsCompletelyWithin(const QueryEngine& engine,
                                             const std::string& moft,
                                             const std::string& layer,
                                             const GeometryPredicate& pred,
                                             const TimePredicate& when,
                                             bool trajectory_semantics) {
  PIET_ASSIGN_OR_RETURN(
      std::vector<ObjectId> oids,
      engine.ObjectsAlwaysWithin(moft, layer, pred, when,
                                 trajectory_semantics));
  return static_cast<int64_t>(oids.size());
}

Result<int64_t> SnapshotCountInRegion(const QueryEngine& engine,
                                      const std::string& moft,
                                      const std::string& layer,
                                      const std::string& attribute,
                                      const Value& member, TimePoint t) {
  GeometryPredicate pred = GeometryPredicate::AlphaEquals(
      &engine.db().gis(), attribute, member);
  PIET_ASSIGN_OR_RETURN(FactTable snapshot,
                        engine.SnapshotInRegion(moft, layer, pred, t));
  PIET_ASSIGN_OR_RETURN(
      Value count,
      olap::AggregateScalar(snapshot, olap::AggFunction::kCountDistinct,
                            "Oid"));
  return count.AsIntUnchecked();
}

Result<StayResult> TimeSpentInRegion(const QueryEngine& engine,
                                     const std::string& moft,
                                     const std::string& layer,
                                     const std::string& attribute,
                                     const Value& member,
                                     const TimePredicate& when) {
  GeometryPredicate pred = GeometryPredicate::AlphaEquals(
      &engine.db().gis(), attribute, member);
  PIET_ASSIGN_OR_RETURN(FactTable intervals,
                        engine.TrajectoryRegion(moft, layer, pred, when));
  PIET_ASSIGN_OR_RETURN(size_t enter_idx, intervals.ColumnIndex("enter"));
  PIET_ASSIGN_OR_RETURN(size_t leave_idx, intervals.ColumnIndex("leave"));
  StayResult out;
  for (const Row& r : intervals.rows()) {
    double stay =
        r[leave_idx].AsDoubleUnchecked() - r[enter_idx].AsDoubleUnchecked();
    out.total_seconds += stay;
    out.longest_stay_seconds = std::max(out.longest_stay_seconds, stay);
    if (stay > 0.0) {
      ++out.visits;
    }
  }
  return out;
}

Result<PerHourResult> CountNearNodesPerHour(const QueryEngine& engine,
                                            const std::string& moft,
                                            const std::string& node_layer,
                                            double radius,
                                            const TimePredicate& when,
                                            bool interpolated) {
  std::set<std::pair<int64_t, int64_t>> pairs;
  if (!interpolated) {
    PIET_ASSIGN_OR_RETURN(
        FactTable near, engine.SamplesNearNodes(moft, node_layer, radius, when));
    PIET_ASSIGN_OR_RETURN(size_t oid_idx, near.ColumnIndex("Oid"));
    PIET_ASSIGN_OR_RETURN(size_t t_idx, near.ColumnIndex("t"));
    for (const Row& r : near.rows()) {
      pairs.emplace(r[oid_idx].AsIntUnchecked(),
                    HourBucketOf(r[t_idx].AsDoubleUnchecked()));
    }
  } else {
    PIET_ASSIGN_OR_RETURN(
        FactTable near,
        engine.TrajectoryNearNodes(moft, node_layer, radius, when));
    PIET_ASSIGN_OR_RETURN(size_t oid_idx, near.ColumnIndex("Oid"));
    PIET_ASSIGN_OR_RETURN(size_t enter_idx, near.ColumnIndex("enter"));
    PIET_ASSIGN_OR_RETURN(size_t leave_idx, near.ColumnIndex("leave"));
    for (const Row& r : near.rows()) {
      int64_t h0 = HourBucketOf(r[enter_idx].AsDoubleUnchecked());
      int64_t h1 = HourBucketOf(r[leave_idx].AsDoubleUnchecked());
      for (int64_t h = h0; h <= h1;
           h += static_cast<int64_t>(temporal::kHour)) {
        pairs.emplace(r[oid_idx].AsIntUnchecked(), h);
      }
    }
  }
  return FromPairs(pairs);
}

Result<double> TotalMassInRegions(const QueryEngine& engine,
                                  const std::string& layer,
                                  const GeometryPredicate& pred,
                                  const gis::DensityField& density) {
  PIET_ASSIGN_OR_RETURN(std::vector<gis::GeometryId> ids,
                        engine.QualifyingGeometries(layer, pred));
  PIET_ASSIGN_OR_RETURN(const gis::Layer* layer_ptr,
                        engine.db().gis().GetLayer(layer));
  GeometricAggregator agg(&density);
  return agg.Evaluate(*layer_ptr, ids);
}

Result<TrajectoryAggregateResult> AggregateTrajectories(
    const QueryEngine& engine, const std::string& moft,
    const std::string& layer, const GeometryPredicate& pred) {
  PIET_ASSIGN_OR_RETURN(FactTable table,
                        engine.TrajectoryAggregates(moft, layer, pred));
  TrajectoryAggregateResult out;
  PIET_ASSIGN_OR_RETURN(size_t dist_idx, table.ColumnIndex("distance"));
  PIET_ASSIGN_OR_RETURN(size_t sec_idx, table.ColumnIndex("seconds"));
  PIET_ASSIGN_OR_RETURN(size_t visit_idx, table.ColumnIndex("visits"));
  std::set<int64_t> oids;
  for (const Row& r : table.rows()) {
    out.total_distance += r[dist_idx].AsDoubleUnchecked();
    out.total_seconds += r[sec_idx].AsDoubleUnchecked();
    out.total_visits += r[visit_idx].AsIntUnchecked();
    oids.insert(r[0].AsIntUnchecked());
  }
  out.objects = static_cast<int64_t>(oids.size());
  return out;
}

Result<FactTable> WaitingAtStopPerMinute(const QueryEngine& engine,
                                         const std::string& moft,
                                         const std::string& stop_layer,
                                         const std::string& attribute,
                                         const Value& member, double radius,
                                         const TimePredicate& when) {
  PIET_ASSIGN_OR_RETURN(gis::GeometryId stop,
                        engine.db().gis().Alpha(attribute, member));
  PIET_ASSIGN_OR_RETURN(
      FactTable near, engine.SamplesNearNodes(moft, stop_layer, radius, when));
  PIET_ASSIGN_OR_RETURN(size_t t_idx, near.ColumnIndex("t"));
  PIET_ASSIGN_OR_RETURN(size_t node_idx, near.ColumnIndex("node"));
  PIET_ASSIGN_OR_RETURN(size_t oid_idx, near.ColumnIndex("Oid"));

  // Re-key by minute and count distinct objects at the requested stop.
  std::map<std::string, std::set<int64_t>> per_minute;
  for (const Row& r : near.rows()) {
    if (r[node_idx].AsIntUnchecked() != stop) {
      continue;
    }
    auto minute = engine.db().time_dimension().Rollup(
        "minute", TimePoint(r[t_idx].AsDoubleUnchecked()));
    if (!minute.ok()) {
      continue;
    }
    per_minute[minute.ValueOrDie().AsStringUnchecked()].insert(
        r[oid_idx].AsIntUnchecked());
  }
  FactTable out = olap::FactTable::Make({"minute"}, {"waiting"});
  for (const auto& [minute, oids] : per_minute) {
    PIET_RETURN_NOT_OK(
        out.Append({Value(minute), Value(static_cast<int64_t>(oids.size()))}));
  }
  return out;
}

}  // namespace piet::core::queries
