#ifndef PIET_CORE_DATABASE_H_
#define PIET_CORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/model_check.h"
#include "common/result.h"
#include "gis/instance.h"
#include "gis/overlay.h"
#include "moving/moft.h"
#include "olap/fact_table.h"
#include "temporal/time_dimension.h"

namespace piet::core {

/// The integrated GIS + OLAP + moving-objects database of the paper's
/// framework: one GIS dimension instance (layers, α bindings, application
/// dimensions), the Time dimension, classical fact tables, MOFTs, and an
/// optional precomputed overlay (Sec. 5).
class GeoOlapDatabase {
 public:
  explicit GeoOlapDatabase(gis::GisDimensionInstance gis_instance);

  const gis::GisDimensionInstance& gis() const { return gis_; }
  gis::GisDimensionInstance& mutable_gis() { return gis_; }

  const temporal::TimeDimension& time_dimension() const { return time_dim_; }

  /// How load paths (AddMoft, BuildOverlay) run the model checker: kOff
  /// (default) skips checks entirely, kWarn records findings in
  /// last_load_diagnostics(), kStrict rejects the load on any error.
  void set_check_mode(analysis::CheckMode mode,
                      analysis::ModelCheckOptions options = {}) {
    check_mode_ = mode;
    check_options_ = options;
  }
  analysis::CheckMode check_mode() const { return check_mode_; }

  /// Findings of the most recent checked load operation (kWarn mode).
  const analysis::DiagnosticList& last_load_diagnostics() const {
    return last_load_diagnostics_;
  }

  /// A borrowed view of this database for the model checker.
  analysis::DatabaseView AnalysisView() const;

  /// Runs every model check (Defs. 1-3, Sec. 4 MOFTs, Sec. 5 overlay) over
  /// the current contents.
  analysis::DiagnosticList CheckAll(
      analysis::ModelCheckOptions options = {}) const;

  /// Registers a MOFT under a name (e.g. "FMbus").
  Status AddMoft(const std::string& name, moving::Moft moft);
  Result<const moving::Moft*> GetMoft(const std::string& name) const;
  std::vector<std::string> MoftNames() const;

  /// Classical fact tables of the application part.
  Status AddFactTable(const std::string& name, olap::FactTable table);
  Result<const olap::FactTable*> GetFactTable(const std::string& name) const;

  /// Precomputes the Sec. 5 overlay over the named polygon layers. With
  /// `convex` the exact convex sub-polygonization is used (fails on
  /// non-convex/non-partition layers); otherwise the quadtree overlay.
  Status BuildOverlay(const std::vector<std::string>& layer_names,
                      bool convex = true, int quadtree_depth = 10);

  bool HasOverlay() const { return overlay_ != nullptr; }
  Result<const gis::OverlayDb*> overlay() const;

  /// The overlay-layer index of a layer name (as passed to BuildOverlay).
  Result<size_t> OverlayLayerIndex(const std::string& layer_name) const;

 private:
  gis::GisDimensionInstance gis_;
  temporal::TimeDimension time_dim_;
  std::map<std::string, moving::Moft> mofts_;
  std::map<std::string, olap::FactTable> fact_tables_;
  std::unique_ptr<gis::OverlayDb> overlay_;
  std::vector<std::string> overlay_layers_;
  analysis::CheckMode check_mode_ = analysis::CheckMode::kOff;
  analysis::ModelCheckOptions check_options_;
  analysis::DiagnosticList last_load_diagnostics_;
};

}  // namespace piet::core

#endif  // PIET_CORE_DATABASE_H_
