#ifndef PIET_CORE_DATABASE_H_
#define PIET_CORE_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/model_check.h"
#include "common/result.h"
#include "gis/instance.h"
#include "gis/overlay.h"
#include "moving/moft.h"
#include "obs/metrics.h"
#include "olap/fact_table.h"
#include "temporal/time_dimension.h"

namespace piet::core {

/// The cached result of classifying every sample of one MOFT against one
/// overlay layer: `samples` is a zero-copy view of the MOFT's sealed
/// columns in (Oid, t) scan order, and `hits` holds, per column index, the
/// containing geometry ids of the layer (hits.offsets[i] aligns with
/// samples[i]). Predicate- and time-independent, so one classification
/// serves every query over the same (MOFT, overlay) pair; the cache is
/// dropped whenever the MOFT set or overlay changes, so the view can never
/// outlive the columns it borrows.
struct SampleClassification {
  moving::SampleView samples;
  gis::BatchHits hits;
  /// The overlay epoch this classification was computed at (diagnostics;
  /// cached entries are dropped eagerly on invalidation).
  uint64_t epoch = 0;
};

/// The integrated GIS + OLAP + moving-objects database of the paper's
/// framework: one GIS dimension instance (layers, α bindings, application
/// dimensions), the Time dimension, classical fact tables, MOFTs, and an
/// optional precomputed overlay (Sec. 5).
class GeoOlapDatabase {
 public:
  explicit GeoOlapDatabase(gis::GisDimensionInstance gis_instance);

  // Movable but not copyable; the cache mutex stays with each instance
  // (moves must not race with queries on the source).
  GeoOlapDatabase(GeoOlapDatabase&& other) noexcept;
  GeoOlapDatabase& operator=(GeoOlapDatabase&& other) noexcept;
  GeoOlapDatabase(const GeoOlapDatabase&) = delete;
  GeoOlapDatabase& operator=(const GeoOlapDatabase&) = delete;

  const gis::GisDimensionInstance& gis() const { return gis_; }
  gis::GisDimensionInstance& mutable_gis() { return gis_; }

  const temporal::TimeDimension& time_dimension() const { return time_dim_; }

  /// How load paths (AddMoft, BuildOverlay) run the model checker: kOff
  /// (default) skips checks entirely, kWarn records findings in
  /// last_load_diagnostics(), kStrict rejects the load on any error.
  void set_check_mode(analysis::CheckMode mode,
                      analysis::ModelCheckOptions options = {}) {
    check_mode_ = mode;
    check_options_ = options;
  }
  analysis::CheckMode check_mode() const { return check_mode_; }

  /// Findings of the most recent checked load operation (kWarn mode).
  const analysis::DiagnosticList& last_load_diagnostics() const {
    return last_load_diagnostics_;
  }

  /// A borrowed view of this database for the model checker.
  analysis::DatabaseView AnalysisView() const;

  /// Runs every model check (Defs. 1-3, Sec. 4 MOFTs, Sec. 5 overlay) over
  /// the current contents.
  analysis::DiagnosticList CheckAll(
      analysis::ModelCheckOptions options = {}) const;

  /// Registers a MOFT under a name (e.g. "FMbus").
  Status AddMoft(const std::string& name, moving::Moft moft);
  Result<const moving::Moft*> GetMoft(const std::string& name) const;
  std::vector<std::string> MoftNames() const;

  /// Classical fact tables of the application part.
  Status AddFactTable(const std::string& name, olap::FactTable table);
  Result<const olap::FactTable*> GetFactTable(const std::string& name) const;

  /// Precomputes the Sec. 5 overlay over the named polygon layers. With
  /// `convex` the exact convex sub-polygonization is used (fails on
  /// non-convex/non-partition layers); otherwise the quadtree overlay.
  Status BuildOverlay(const std::vector<std::string>& layer_names,
                      bool convex = true, int quadtree_depth = 10);

  bool HasOverlay() const { return overlay_ != nullptr; }
  Result<const gis::OverlayDb*> overlay() const;

  /// The overlay-layer index of a layer name (as passed to BuildOverlay).
  Result<size_t> OverlayLayerIndex(const std::string& layer_name) const;

  /// Worker threads for overlay construction and batched classification:
  /// > 0 is explicit, 0 (default) resolves through the PIET_THREADS
  /// environment variable (parallel::ResolveThreads). Every parallel path
  /// is bit-identical to `threads = 1`.
  void set_num_threads(int n) { num_threads_ = n; }
  int num_threads() const { return num_threads_; }

  /// Monotone counter identifying the (MOFT set, overlay) state the
  /// classification cache was computed against; bumped by every AddMoft
  /// and BuildOverlay.
  uint64_t overlay_epoch() const { return epoch_; }

  /// The classification of `moft` against overlay layer `layer_name`,
  /// served from the per-(MOFT, overlay-epoch) cache when available.
  /// Repeated queries over the same MOFT skip re-classification entirely;
  /// AddMoft and BuildOverlay invalidate. Thread-safe.
  Result<std::shared_ptr<const SampleClassification>> ClassifySamples(
      const std::string& moft, const std::string& layer_name) const;

  /// Number of live cache entries (tests/diagnostics).
  size_t classification_cache_size() const;

  /// Merged snapshot of the process-wide metrics registry (counters,
  /// gauges, latency histograms of every instrumented layer). Values only
  /// accumulate while observability is enabled (PIET_OBS=1 or
  /// obs::SetEnabled(true)); the registry is process-global, so databases
  /// sharing a process share one set of counters.
  obs::MetricsSnapshot Stats() const;

 private:
  void InvalidateClassifications();
  gis::GisDimensionInstance gis_;
  temporal::TimeDimension time_dim_;
  std::map<std::string, moving::Moft> mofts_;
  std::map<std::string, olap::FactTable> fact_tables_;
  std::unique_ptr<gis::OverlayDb> overlay_;
  std::vector<std::string> overlay_layers_;
  analysis::CheckMode check_mode_ = analysis::CheckMode::kOff;
  analysis::ModelCheckOptions check_options_;
  analysis::DiagnosticList last_load_diagnostics_;
  int num_threads_ = 0;
  uint64_t epoch_ = 0;
  mutable std::mutex classify_mu_;
  mutable std::map<std::pair<std::string, std::string>,
                   std::shared_ptr<const SampleClassification>>
      classify_cache_;
};

}  // namespace piet::core

#endif  // PIET_CORE_DATABASE_H_
