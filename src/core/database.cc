#include "core/database.h"

#include <algorithm>

#include "common/parallel.h"

namespace piet::core {

GeoOlapDatabase::GeoOlapDatabase(gis::GisDimensionInstance gis_instance)
    : gis_(std::move(gis_instance)) {}

GeoOlapDatabase::GeoOlapDatabase(GeoOlapDatabase&& other) noexcept
    : gis_(std::move(other.gis_)) {
  // Take the source's cache lock so the cache and its epoch transfer as
  // one consistent unit even if a stale reader is still draining (the
  // single-writer contract says there shouldn't be one, but a torn
  // epoch/cache pair would silently serve wrong classifications).
  std::lock_guard<std::mutex> lock(other.classify_mu_);
  time_dim_ = std::move(other.time_dim_);
  mofts_ = std::move(other.mofts_);
  fact_tables_ = std::move(other.fact_tables_);
  overlay_ = std::move(other.overlay_);
  overlay_layers_ = std::move(other.overlay_layers_);
  check_mode_ = other.check_mode_;
  check_options_ = other.check_options_;
  last_load_diagnostics_ = std::move(other.last_load_diagnostics_);
  num_threads_ = other.num_threads_;
  epoch_ = other.epoch_;
  classify_cache_ = std::move(other.classify_cache_);
  // The moved-from database keeps a valid-but-empty cache: its MOFTs are
  // gone, so any surviving entry would hold dangling sample views.
  other.classify_cache_.clear();
}

GeoOlapDatabase& GeoOlapDatabase::operator=(GeoOlapDatabase&& other) noexcept {
  if (this != &other) {
    // Both caches move under their locks: the target's old entries die
    // with its old MOFTs, the source's entries must stay paired with the
    // source epoch while they transfer.
    std::scoped_lock lock(classify_mu_, other.classify_mu_);
    gis_ = std::move(other.gis_);
    time_dim_ = std::move(other.time_dim_);
    mofts_ = std::move(other.mofts_);
    fact_tables_ = std::move(other.fact_tables_);
    overlay_ = std::move(other.overlay_);
    overlay_layers_ = std::move(other.overlay_layers_);
    check_mode_ = other.check_mode_;
    check_options_ = other.check_options_;
    last_load_diagnostics_ = std::move(other.last_load_diagnostics_);
    num_threads_ = other.num_threads_;
    epoch_ = other.epoch_;
    classify_cache_ = std::move(other.classify_cache_);
    other.classify_cache_.clear();
  }
  return *this;
}

analysis::DatabaseView GeoOlapDatabase::AnalysisView() const {
  analysis::DatabaseView view;
  view.gis = &gis_;
  view.mofts.reserve(mofts_.size());
  for (const auto& [name, moft] : mofts_) {
    view.mofts.emplace_back(name, &moft);
  }
  view.overlay = overlay_.get();
  return view;
}

analysis::DiagnosticList GeoOlapDatabase::CheckAll(
    analysis::ModelCheckOptions options) const {
  return analysis::ModelChecker(options).CheckAll(AnalysisView());
}

Status GeoOlapDatabase::AddMoft(const std::string& name, moving::Moft moft) {
  if (mofts_.count(name)) {
    return Status::AlreadyExists("MOFT '" + name + "' already registered");
  }
  if (check_mode_ != analysis::CheckMode::kOff) {
    analysis::DiagnosticList diagnostics;
    analysis::ModelChecker(check_options_)
        .CheckMoft(name, moft, &diagnostics);
    if (check_mode_ == analysis::CheckMode::kStrict &&
        diagnostics.HasErrors()) {
      return diagnostics.ToStatus();
    }
    diagnostics.DowngradeErrorsToWarnings();
    last_load_diagnostics_ = std::move(diagnostics);
  }
  mofts_.emplace(name, std::move(moft));
  InvalidateClassifications();
  return Status::OK();
}

Result<const moving::Moft*> GeoOlapDatabase::GetMoft(
    const std::string& name) const {
  auto it = mofts_.find(name);
  if (it == mofts_.end()) {
    return Status::NotFound("no MOFT '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> GeoOlapDatabase::MoftNames() const {
  std::vector<std::string> out;
  out.reserve(mofts_.size());
  for (const auto& [name, moft] : mofts_) {
    out.push_back(name);
  }
  return out;
}

Status GeoOlapDatabase::AddFactTable(const std::string& name,
                                     olap::FactTable table) {
  if (fact_tables_.count(name)) {
    return Status::AlreadyExists("fact table '" + name +
                                 "' already registered");
  }
  fact_tables_.emplace(name, std::move(table));
  return Status::OK();
}

Result<const olap::FactTable*> GeoOlapDatabase::GetFactTable(
    const std::string& name) const {
  auto it = fact_tables_.find(name);
  if (it == fact_tables_.end()) {
    return Status::NotFound("no fact table '" + name + "'");
  }
  return &it->second;
}

Status GeoOlapDatabase::BuildOverlay(
    const std::vector<std::string>& layer_names, bool convex,
    int quadtree_depth) {
  std::vector<const gis::Layer*> layers;
  layers.reserve(layer_names.size());
  for (const std::string& name : layer_names) {
    PIET_ASSIGN_OR_RETURN(const gis::Layer* layer, gis_.GetLayer(name));
    layers.push_back(layer);
  }
  if (convex) {
    PIET_ASSIGN_OR_RETURN(
        gis::OverlayDb db,
        gis::OverlayDb::BuildConvex(std::move(layers), num_threads_));
    overlay_ = std::make_unique<gis::OverlayDb>(std::move(db));
  } else {
    PIET_ASSIGN_OR_RETURN(
        gis::OverlayDb db,
        gis::OverlayDb::BuildQuadtree(std::move(layers), quadtree_depth,
                                      num_threads_));
    overlay_ = std::make_unique<gis::OverlayDb>(std::move(db));
  }
  overlay_layers_ = layer_names;
  InvalidateClassifications();
  if (check_mode_ != analysis::CheckMode::kOff) {
    analysis::DiagnosticList diagnostics;
    analysis::ModelChecker(check_options_)
        .CheckOverlay(*overlay_, &diagnostics);
    if (check_mode_ == analysis::CheckMode::kStrict &&
        diagnostics.HasErrors()) {
      overlay_.reset();
      overlay_layers_.clear();
      return diagnostics.ToStatus();
    }
    diagnostics.DowngradeErrorsToWarnings();
    last_load_diagnostics_ = std::move(diagnostics);
  }
  return Status::OK();
}

Result<const gis::OverlayDb*> GeoOlapDatabase::overlay() const {
  if (!overlay_) {
    return Status::NotFound("no overlay built; call BuildOverlay first");
  }
  return overlay_.get();
}

Result<size_t> GeoOlapDatabase::OverlayLayerIndex(
    const std::string& layer_name) const {
  auto it = std::find(overlay_layers_.begin(), overlay_layers_.end(),
                      layer_name);
  if (it == overlay_layers_.end()) {
    return Status::NotFound("layer '" + layer_name + "' not in the overlay");
  }
  return static_cast<size_t>(it - overlay_layers_.begin());
}

void GeoOlapDatabase::InvalidateClassifications() {
  std::lock_guard<std::mutex> lock(classify_mu_);
  ++epoch_;
  if (obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("db.classify.invalidations").Add(1);
    registry.GetCounter("db.classify.entries_dropped")
        .Add(static_cast<int64_t>(classify_cache_.size()));
  }
  classify_cache_.clear();
}

size_t GeoOlapDatabase::classification_cache_size() const {
  std::lock_guard<std::mutex> lock(classify_mu_);
  return classify_cache_.size();
}

obs::MetricsSnapshot GeoOlapDatabase::Stats() const {
  return obs::MetricsRegistry::Global().Snapshot();
}

Result<std::shared_ptr<const SampleClassification>>
GeoOlapDatabase::ClassifySamples(const std::string& moft_name,
                                 const std::string& layer_name) const {
  auto key = std::make_pair(moft_name, layer_name);
  {
    std::lock_guard<std::mutex> lock(classify_mu_);
    auto it = classify_cache_.find(key);
    if (it != classify_cache_.end()) {
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global()
            .GetCounter("db.classify.cache_hits")
            .Add(1);
      }
      return it->second;
    }
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter("db.classify.cache_misses")
        .Add(1);
  }

  PIET_ASSIGN_OR_RETURN(const moving::Moft* moft, GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const gis::OverlayDb* ov, overlay());
  PIET_ASSIGN_OR_RETURN(size_t layer_idx, OverlayLayerIndex(layer_name));

  auto classification = std::make_shared<SampleClassification>();
  classification->samples = moft->Scan();
  const moving::MoftColumns& cols = *classification->samples.columns();
  std::vector<geometry::Point> points;
  points.reserve(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    points.emplace_back(cols.x[i], cols.y[i]);
  }
  classification->hits = ov->LocateBatch(points, layer_idx, num_threads_);

  std::lock_guard<std::mutex> lock(classify_mu_);
  classification->epoch = epoch_;
  // A concurrent query may have classified the same pair meanwhile; keep
  // the first stored entry so every caller shares one block.
  auto [it, inserted] =
      classify_cache_.emplace(key, std::move(classification));
  return it->second;
}

}  // namespace piet::core
