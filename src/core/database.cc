#include "core/database.h"

#include <algorithm>

namespace piet::core {

GeoOlapDatabase::GeoOlapDatabase(gis::GisDimensionInstance gis_instance)
    : gis_(std::move(gis_instance)) {}

analysis::DatabaseView GeoOlapDatabase::AnalysisView() const {
  analysis::DatabaseView view;
  view.gis = &gis_;
  view.mofts.reserve(mofts_.size());
  for (const auto& [name, moft] : mofts_) {
    view.mofts.emplace_back(name, &moft);
  }
  view.overlay = overlay_.get();
  return view;
}

analysis::DiagnosticList GeoOlapDatabase::CheckAll(
    analysis::ModelCheckOptions options) const {
  return analysis::ModelChecker(options).CheckAll(AnalysisView());
}

Status GeoOlapDatabase::AddMoft(const std::string& name, moving::Moft moft) {
  if (mofts_.count(name)) {
    return Status::AlreadyExists("MOFT '" + name + "' already registered");
  }
  if (check_mode_ != analysis::CheckMode::kOff) {
    analysis::DiagnosticList diagnostics;
    analysis::ModelChecker(check_options_)
        .CheckMoft(name, moft, &diagnostics);
    if (check_mode_ == analysis::CheckMode::kStrict &&
        diagnostics.HasErrors()) {
      return diagnostics.ToStatus();
    }
    diagnostics.DowngradeErrorsToWarnings();
    last_load_diagnostics_ = std::move(diagnostics);
  }
  mofts_.emplace(name, std::move(moft));
  return Status::OK();
}

Result<const moving::Moft*> GeoOlapDatabase::GetMoft(
    const std::string& name) const {
  auto it = mofts_.find(name);
  if (it == mofts_.end()) {
    return Status::NotFound("no MOFT '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> GeoOlapDatabase::MoftNames() const {
  std::vector<std::string> out;
  out.reserve(mofts_.size());
  for (const auto& [name, moft] : mofts_) {
    out.push_back(name);
  }
  return out;
}

Status GeoOlapDatabase::AddFactTable(const std::string& name,
                                     olap::FactTable table) {
  if (fact_tables_.count(name)) {
    return Status::AlreadyExists("fact table '" + name +
                                 "' already registered");
  }
  fact_tables_.emplace(name, std::move(table));
  return Status::OK();
}

Result<const olap::FactTable*> GeoOlapDatabase::GetFactTable(
    const std::string& name) const {
  auto it = fact_tables_.find(name);
  if (it == fact_tables_.end()) {
    return Status::NotFound("no fact table '" + name + "'");
  }
  return &it->second;
}

Status GeoOlapDatabase::BuildOverlay(
    const std::vector<std::string>& layer_names, bool convex,
    int quadtree_depth) {
  std::vector<const gis::Layer*> layers;
  layers.reserve(layer_names.size());
  for (const std::string& name : layer_names) {
    PIET_ASSIGN_OR_RETURN(const gis::Layer* layer, gis_.GetLayer(name));
    layers.push_back(layer);
  }
  if (convex) {
    PIET_ASSIGN_OR_RETURN(gis::OverlayDb db,
                          gis::OverlayDb::BuildConvex(std::move(layers)));
    overlay_ = std::make_unique<gis::OverlayDb>(std::move(db));
  } else {
    PIET_ASSIGN_OR_RETURN(
        gis::OverlayDb db,
        gis::OverlayDb::BuildQuadtree(std::move(layers), quadtree_depth));
    overlay_ = std::make_unique<gis::OverlayDb>(std::move(db));
  }
  overlay_layers_ = layer_names;
  if (check_mode_ != analysis::CheckMode::kOff) {
    analysis::DiagnosticList diagnostics;
    analysis::ModelChecker(check_options_)
        .CheckOverlay(*overlay_, &diagnostics);
    if (check_mode_ == analysis::CheckMode::kStrict &&
        diagnostics.HasErrors()) {
      overlay_.reset();
      overlay_layers_.clear();
      return diagnostics.ToStatus();
    }
    diagnostics.DowngradeErrorsToWarnings();
    last_load_diagnostics_ = std::move(diagnostics);
  }
  return Status::OK();
}

Result<const gis::OverlayDb*> GeoOlapDatabase::overlay() const {
  if (!overlay_) {
    return Status::NotFound("no overlay built; call BuildOverlay first");
  }
  return overlay_.get();
}

Result<size_t> GeoOlapDatabase::OverlayLayerIndex(
    const std::string& layer_name) const {
  auto it = std::find(overlay_layers_.begin(), overlay_layers_.end(),
                      layer_name);
  if (it == overlay_layers_.end()) {
    return Status::NotFound("layer '" + layer_name + "' not in the overlay");
  }
  return static_cast<size_t>(it - overlay_layers_.begin());
}

}  // namespace piet::core
