#include "core/summable.h"

namespace piet::core {

using gis::GeometryId;
using gis::Layer;

Result<double> GeometricAggregator::OverPolygons(
    const Layer& layer, const std::vector<GeometryId>& ids) const {
  double total = 0.0;
  for (GeometryId id : ids) {
    PIET_ASSIGN_OR_RETURN(const geometry::Polygon* pg, layer.GetPolygon(id));
    total += density_->IntegrateOverPolygon(*pg);
  }
  return total;
}

Result<double> GeometricAggregator::OverPolylines(
    const Layer& layer, const std::vector<GeometryId>& ids,
    int steps_per_segment) const {
  if (steps_per_segment < 1) {
    return Status::InvalidArgument("steps_per_segment must be >= 1");
  }
  double total = 0.0;
  for (GeometryId id : ids) {
    PIET_ASSIGN_OR_RETURN(const geometry::Polyline* line,
                          layer.GetPolyline(id));
    for (size_t si = 0; si < line->num_segments(); ++si) {
      geometry::Segment seg = line->segment(si);
      double len = seg.Length();
      double step = len / steps_per_segment;
      for (int i = 0; i < steps_per_segment; ++i) {
        double t = (i + 0.5) / steps_per_segment;
        total += density_->ValueAt(seg.At(t)) * step;
      }
    }
  }
  return total;
}

Result<double> GeometricAggregator::OverPoints(
    const Layer& layer, const std::vector<GeometryId>& ids) const {
  double total = 0.0;
  for (GeometryId id : ids) {
    PIET_ASSIGN_OR_RETURN(geometry::Point p, layer.GetPoint(id));
    total += density_->ValueAt(p);
  }
  return total;
}

Result<double> GeometricAggregator::Evaluate(
    const Layer& layer, const std::vector<GeometryId>& ids) const {
  switch (layer.kind()) {
    case gis::GeometryKind::kPolygon:
      return OverPolygons(layer, ids);
    case gis::GeometryKind::kLine:
    case gis::GeometryKind::kPolyline:
      return OverPolylines(layer, ids);
    case gis::GeometryKind::kPoint:
    case gis::GeometryKind::kNode:
      return OverPoints(layer, ids);
    case gis::GeometryKind::kAll:
      break;
  }
  return Status::InvalidArgument("cannot aggregate over the All level");
}

}  // namespace piet::core
