#ifndef PIET_CORE_SUMMABLE_H_
#define PIET_CORE_SUMMABLE_H_

#include <vector>

#include "common/result.h"
#include "gis/density.h"
#include "gis/layer.h"

namespace piet::core {

/// Evaluates the Geometric Aggregation of Def. 4,
///   Q = ∫∫ δ_C(x,y) h(x,y) dx dy,
/// for *summable* queries (Sec. 5): C is a finite set of geometry elements,
/// so Q rewrites to Σ_{g∈C} h'(g) where h'(g) is
///   * an area integral for two-dimensional g (δ_C = 1),
///   * a line integral for one-dimensional g (Heaviside × Dirac),
///   * a point evaluation for zero-dimensional g (Dirac).
class GeometricAggregator {
 public:
  /// `density` must outlive the aggregator.
  explicit GeometricAggregator(const gis::DensityField* density)
      : density_(density) {}

  /// Σ over polygon elements: ∫∫_g h dx dy.
  Result<double> OverPolygons(const gis::Layer& layer,
                              const std::vector<gis::GeometryId>& ids) const;

  /// Σ over polyline elements: ∫_g h ds, by composite-midpoint quadrature
  /// with `steps_per_segment` samples per polyline segment.
  Result<double> OverPolylines(const gis::Layer& layer,
                               const std::vector<gis::GeometryId>& ids,
                               int steps_per_segment = 64) const;

  /// Σ over point elements: h(p).
  Result<double> OverPoints(const gis::Layer& layer,
                            const std::vector<gis::GeometryId>& ids) const;

  /// Dispatches on the layer kind.
  Result<double> Evaluate(const gis::Layer& layer,
                          const std::vector<gis::GeometryId>& ids) const;

 private:
  const gis::DensityField* density_;
};

}  // namespace piet::core

#endif  // PIET_CORE_SUMMABLE_H_
