#ifndef PIET_CORE_PIETQL_PRINTER_H_
#define PIET_CORE_PIETQL_PRINTER_H_

#include <string>

#include "core/pietql/ast.h"

namespace piet::core::pietql {

/// Renders an AST back to canonical Piet-QL text. `Parse(Print(q))` is
/// structurally identical to `q` (round-trip property, tested).
std::string Print(const Query& query);
std::string Print(const GeoQuery& geo);
std::string Print(const MoQuery& mo);

}  // namespace piet::core::pietql

#endif  // PIET_CORE_PIETQL_PRINTER_H_
