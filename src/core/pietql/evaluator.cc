#include "core/pietql/evaluator.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <sstream>

#include "analysis/lint/query_lint.h"
#include "analysis/query_check.h"
#include "common/parallel.h"
#include "core/geometry/batch.h"
#include "core/pietql/parser.h"
#include "core/pietql/printer.h"
#include "obs/metrics.h"
#include "core/region.h"
#include "geometry/segment_polygon.h"
#include "moving/traj_ops.h"
#include "moving/trajectory.h"
#include "temporal/time_dimension.h"

namespace piet::core::pietql {

using gis::GeometryId;
using gis::GeometryKind;
using gis::Layer;
using moving::LinearTrajectory;
using moving::Moft;
using moving::ObjectId;
using moving::TrajectorySample;
using olap::FactTable;
using temporal::Interval;
using temporal::IntervalSet;
using temporal::TimePoint;

std::string QueryResult::ToString() const {
  std::ostringstream os;
  os << "result layer '" << result_layer << "': " << geometry_ids.size()
     << " geometries";
  if (scalar) {
    os << "; aggregate = " << scalar->ToString();
  }
  if (table) {
    os << "\n" << table->ToString();
  }
  return os.str();
}

std::string RewriteInfo::ToString() const {
  std::ostringstream os;
  os << "plan original:  " << original << "\n";
  os << "plan rewritten: " << rewritten << "\n";
  if (applied.empty()) {
    os << "no rewrites applied\n";
  } else {
    for (const analysis::rewrite::AppliedRewrite& a : applied) {
      os << a.rule_id << " [" << a.entity << "]: " << a.detail << "\n";
    }
  }
  return os.str();
}

Result<bool> Evaluator::ElementsIntersect(const Layer& a, GeometryId ida,
                                          const Layer& b,
                                          GeometryId idb) const {
  auto kind_pair = [](GeometryKind x) {
    // Collapse point/node and line/polyline.
    if (x == GeometryKind::kNode) {
      return GeometryKind::kPoint;
    }
    if (x == GeometryKind::kLine) {
      return GeometryKind::kPolyline;
    }
    return x;
  };
  GeometryKind ka = kind_pair(a.kind());
  GeometryKind kb = kind_pair(b.kind());

  if (ka == GeometryKind::kPolygon && kb == GeometryKind::kPolygon) {
    PIET_ASSIGN_OR_RETURN(const geometry::Polygon* pa, a.GetPolygon(ida));
    PIET_ASSIGN_OR_RETURN(const geometry::Polygon* pb, b.GetPolygon(idb));
    return pa->Intersects(*pb);
  }
  if (ka == GeometryKind::kPolygon && kb == GeometryKind::kPolyline) {
    PIET_ASSIGN_OR_RETURN(const geometry::Polygon* pa, a.GetPolygon(ida));
    PIET_ASSIGN_OR_RETURN(const geometry::Polyline* lb, b.GetPolyline(idb));
    for (size_t i = 0; i < lb->num_segments(); ++i) {
      if (geometry::SegmentIntersectsPolygon(lb->segment(i), *pa)) {
        return true;
      }
    }
    return false;
  }
  if (ka == GeometryKind::kPolyline && kb == GeometryKind::kPolygon) {
    return ElementsIntersect(b, idb, a, ida);
  }
  if (ka == GeometryKind::kPolygon && kb == GeometryKind::kPoint) {
    PIET_ASSIGN_OR_RETURN(const geometry::Polygon* pa, a.GetPolygon(ida));
    PIET_ASSIGN_OR_RETURN(geometry::Point pb, b.GetPoint(idb));
    return pa->Contains(pb);
  }
  if (ka == GeometryKind::kPoint && kb == GeometryKind::kPolygon) {
    return ElementsIntersect(b, idb, a, ida);
  }
  if (ka == GeometryKind::kPolyline && kb == GeometryKind::kPolyline) {
    PIET_ASSIGN_OR_RETURN(const geometry::Polyline* la, a.GetPolyline(ida));
    PIET_ASSIGN_OR_RETURN(const geometry::Polyline* lb, b.GetPolyline(idb));
    return la->Intersects(*lb);
  }
  if (ka == GeometryKind::kPolyline && kb == GeometryKind::kPoint) {
    PIET_ASSIGN_OR_RETURN(const geometry::Polyline* la, a.GetPolyline(ida));
    PIET_ASSIGN_OR_RETURN(geometry::Point pb, b.GetPoint(idb));
    return la->Contains(pb);
  }
  if (ka == GeometryKind::kPoint && kb == GeometryKind::kPolyline) {
    return ElementsIntersect(b, idb, a, ida);
  }
  if (ka == GeometryKind::kPoint && kb == GeometryKind::kPoint) {
    PIET_ASSIGN_OR_RETURN(geometry::Point pa, a.GetPoint(ida));
    PIET_ASSIGN_OR_RETURN(geometry::Point pb, b.GetPoint(idb));
    return pa == pb;
  }
  return Status::Unimplemented("unsupported geometry kind combination");
}

Result<bool> Evaluator::ElementContains(const Layer& a, GeometryId ida,
                                        const Layer& b, GeometryId idb) const {
  if (a.kind() != GeometryKind::kPolygon) {
    return Status::InvalidArgument("CONTAINS needs a polygon left layer");
  }
  PIET_ASSIGN_OR_RETURN(const geometry::Polygon* pa, a.GetPolygon(ida));
  switch (b.kind()) {
    case GeometryKind::kPoint:
    case GeometryKind::kNode: {
      PIET_ASSIGN_OR_RETURN(geometry::Point pb, b.GetPoint(idb));
      return pa->Contains(pb);
    }
    case GeometryKind::kPolygon: {
      PIET_ASSIGN_OR_RETURN(const geometry::Polygon* pb, b.GetPolygon(idb));
      return pa->ContainsPolygon(*pb);
    }
    case GeometryKind::kLine:
    case GeometryKind::kPolyline: {
      PIET_ASSIGN_OR_RETURN(const geometry::Polyline* lb, b.GetPolyline(idb));
      for (const geometry::Point& v : lb->vertices()) {
        if (!pa->Contains(v)) {
          return false;
        }
      }
      return true;
    }
    case GeometryKind::kAll:
      break;
  }
  return Status::Unimplemented("unsupported CONTAINS operand");
}

namespace {

bool CompareValues(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kGt:
      return rhs < lhs;
    case CompareOp::kLe:
      return !(rhs < lhs);
    case CompareOp::kGe:
      return !(lhs < rhs);
    case CompareOp::kEq:
      return lhs == rhs;
  }
  return false;
}

/// The qualifying result-layer geometries with their polygons resolved
/// once, before the per-object loops: ids ascending (the order the old
/// std::set iterated in), polygons index-aligned.
struct WantedPolygons {
  std::vector<GeometryId> ids;
  std::vector<const geometry::Polygon*> polys;

  bool contains(GeometryId id) const {
    return std::binary_search(ids.begin(), ids.end(), id);
  }
};

WantedPolygons ResolveWanted(const Layer& layer,
                             const std::vector<GeometryId>& geometry_ids) {
  std::vector<GeometryId> sorted(geometry_ids);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  WantedPolygons out;
  out.ids.reserve(sorted.size());
  out.polys.reserve(sorted.size());
  for (GeometryId id : sorted) {
    auto pg = layer.GetPolygon(id);
    if (pg.ok()) {
      out.ids.push_back(id);
      out.polys.push_back(pg.ValueOrDie());
    }
  }
  return out;
}

/// One (Oid, t) tuple list per chunk, merged in chunk order so the final
/// tuple sequence matches the serial loop for any thread count.
struct TupleChunk {
  std::vector<std::pair<ObjectId, double>> tuples;
  Status status;
};

/// Flattens a SampleWindow's per-object ranges into absolute row indices,
/// ascending — the same (oid, t) order a filtered full scan visits.
std::vector<size_t> WindowRows(const moving::SampleWindow& win) {
  std::vector<size_t> rows;
  rows.reserve(win.size());
  for (const moving::SampleWindow::Range& r : win.ranges()) {
    for (size_t row = r.begin; row < r.end; ++row) {
      rows.push_back(row);
    }
  }
  return rows;
}

}  // namespace

Result<std::vector<GeometryId>> Evaluator::EvaluateGeoPart(
    const GeoQuery& geo, obs::TraceCollector* trace) const {
  if (geo.select.empty()) {
    return Status::InvalidArgument("geometric part selects no layer");
  }
  const std::string& result_layer = geo.select.front().name;
  PIET_ASSIGN_OR_RETURN(const Layer* layer,
                        db_->gis().GetLayer(result_layer));

  std::vector<GeometryId> current(layer->ids());
  for (const GeoCondition& cond : geo.where) {
    if (cond.a.name != result_layer) {
      return Status::InvalidArgument(
          "conditions must constrain the result layer '" + result_layer +
          "' (got '" + cond.a.name + "')");
    }
    obs::TraceSpan cond_span(
        trace, cond.kind == GeoCondition::Kind::kAttrCompare
                   ? "geo_condition:attr_compare"
               : cond.kind == GeoCondition::Kind::kIntersection
                   ? "geo_condition:intersection"
                   : "geo_condition:contains");
    cond_span.Attr("candidates_in", static_cast<int64_t>(current.size()));
    std::vector<GeometryId> next;
    switch (cond.kind) {
      case GeoCondition::Kind::kAttrCompare: {
        for (GeometryId id : current) {
          auto v = layer->GetAttribute(id, cond.attribute);
          if (v.ok() && CompareValues(v.ValueOrDie(), cond.op, cond.literal)) {
            next.push_back(id);
          }
        }
        break;
      }
      case GeoCondition::Kind::kIntersection:
      case GeoCondition::Kind::kContains: {
        PIET_ASSIGN_OR_RETURN(const Layer* other,
                              db_->gis().GetLayer(cond.b.name));
        for (GeometryId id : current) {
          bool keep = false;
          // Prune with the other layer's R-tree.
          auto bounds = layer->BoundsOf(id);
          if (!bounds.ok()) {
            continue;
          }
          for (GeometryId ob :
               other->CandidatesInBox(bounds.ValueOrDie())) {
            Result<bool> hit =
                (cond.kind == GeoCondition::Kind::kIntersection)
                    ? ElementsIntersect(*layer, id, *other, ob)
                    : ElementContains(*layer, id, *other, ob);
            if (hit.ok() && hit.ValueOrDie()) {
              keep = true;
              break;
            }
          }
          if (keep) {
            next.push_back(id);
          }
        }
        break;
      }
    }
    cond_span.Attr("candidates_out", static_cast<int64_t>(next.size()));
    current = std::move(next);
  }
  return current;
}

analysis::rewrite::RewritePlan Evaluator::RewriteStage(
    const Query& query, obs::TraceCollector* trace, bool obs_on,
    QueryResult* result) const {
  obs::TraceSpan rewrite_span(trace, "rewrite");
  analysis::rewrite::RewriteContext context;
  context.gis = &db_->gis();
  if (db_->HasOverlay()) {
    auto overlay = db_->overlay();
    if (overlay.ok()) {
      context.overlay = overlay.ValueOrDie();
    }
  }
  analysis::rewrite::RewritePlan plan =
      analysis::rewrite::RewriteQuery(context, query);
  rewrite_span.Attr("rules_applied",
                    static_cast<int64_t>(plan.applied.size()));
  rewrite_span.Attr("geo_clauses_before",
                    static_cast<int64_t>(plan.geo_clauses_before));
  rewrite_span.Attr("geo_clauses_after",
                    static_cast<int64_t>(plan.geo_clauses_after));
  rewrite_span.Attr("mo_clauses_before",
                    static_cast<int64_t>(plan.mo_clauses_before));
  rewrite_span.Attr("mo_clauses_after",
                    static_cast<int64_t>(plan.mo_clauses_after));
  for (const analysis::rewrite::AppliedRewrite& a : plan.applied) {
    obs::TraceSpan rule_span(trace, "rewrite_rule:" + a.rule_id);
    rule_span.Attr("entity", a.entity);
    rule_span.Attr("detail", a.detail);
  }
  if (obs_on) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("pietql.rewrite.queries").Add(1);
    registry.GetCounter("pietql.rewrite.rules")
        .Add(static_cast<int64_t>(plan.applied.size()));
    for (const analysis::rewrite::AppliedRewrite& a : plan.applied) {
      registry.GetCounter("pietql.rewrite.rule." + a.rule_id).Add(1);
    }
  }
  RewriteInfo info;
  info.original = Print(query);
  info.rewritten = Print(plan.query);
  info.geo_zero = plan.geo_zero;
  info.mo_zero = plan.mo_zero;
  info.applied = plan.applied;
  result->rewrite = std::move(info);
  return plan;
}

Result<QueryResult> Evaluator::Evaluate(const Query& query) const {
  return EvaluateImpl(query, nullptr);
}

Result<ProfiledResult> Evaluator::EvaluateProfiled(const Query& query) const {
  obs::TraceCollector trace("query");
  PIET_ASSIGN_OR_RETURN(QueryResult result, EvaluateImpl(query, &trace));
  ProfiledResult out;
  out.result = std::move(result);
  out.profile = trace.Finish();
  return out;
}

Result<QueryResult> Evaluator::EvaluateImpl(const Query& query,
                                            obs::TraceCollector* trace) const {
  // Passive registry metrics honor the PIET_OBS gate; the span tree is
  // gated only by the collector (EXPLAIN ANALYZE works with PIET_OBS=0).
  const bool obs_on = obs::Enabled();
  obs::ScopedTimer latency(
      obs_on ? &obs::MetricsRegistry::Global().GetHistogram(
                   "pietql.query.latency")
             : nullptr);
  if (obs_on) {
    obs::MetricsRegistry::Global().GetCounter("pietql.queries").Add(1);
  }

  QueryResult result;
  if (check_mode_ != analysis::CheckMode::kOff) {
    obs::TraceSpan analyze_span(trace, "analyze");
    analysis::QueryContext context;
    context.gis = &db_->gis();
    context.moft_names = db_->MoftNames();
    analysis::DiagnosticList diagnostics =
        analysis::AnalyzeQuery(context, query);
    if (check_mode_ == analysis::CheckMode::kStrict &&
        diagnostics.HasErrors()) {
      analyze_span.Attr("diagnostics",
                        static_cast<int64_t>(diagnostics.size()));
      return diagnostics.ToStatus();
    }
    // The static plan linter proves clauses dead / regions empty without
    // evaluating; its findings are warnings and notes, so strict mode keeps
    // accepting lint-flagged queries.
    {
      obs::TraceSpan lint_span(trace, "lint");
      analysis::DiagnosticList lint =
          analysis::lint::LintQuery(context, query);
      lint_span.Attr("findings", static_cast<int64_t>(lint.size()));
      if (obs_on) {
        obs::MetricsRegistry::Global().GetCounter("pietql.lint.queries")
            .Add(1);
        obs::MetricsRegistry::Global().GetCounter("pietql.lint.findings")
            .Add(static_cast<int64_t>(lint.size()));
      }
      diagnostics.Merge(lint);
    }
    analyze_span.Attr("diagnostics",
                      static_cast<int64_t>(diagnostics.size()));
    diagnostics.DowngradeErrorsToWarnings();
    result.diagnostics = std::move(diagnostics);
  }
  // The rewrite stage sits between analyze and geo_filter: kOn applies the
  // lint dataflow's fix-its to a copy of the query and the pipeline below
  // evaluates the rewritten plan (results bit-identical by construction);
  // kOff evaluates exactly the query given, byte-identical to the
  // pre-rewriter pipeline. Analysis above always sees the ORIGINAL query.
  const bool rewrite_on =
      rewrite_mode_ == analysis::rewrite::RewriteMode::kOn;
  const Query* active = &query;
  Query rewritten_query;
  bool geo_zero = false;
  bool mo_zero = false;
  if (rewrite_on) {
    analysis::rewrite::RewritePlan plan =
        RewriteStage(query, trace, obs_on, &result);
    geo_zero = plan.geo_zero;
    mo_zero = plan.mo_zero;
    rewritten_query = std::move(plan.query);
    active = &rewritten_query;
  }

  result.result_layer = active->geo.select.front().name;
  {
    obs::TraceSpan geo_span(trace, "geo_filter");
    geo_span.Attr("layer", result.result_layer);
    geo_span.Attr("conditions",
                  static_cast<int64_t>(active->geo.where.size()));
    if (geo_zero) {
      // rw-empty-region: the rewriter proved the conjunction unsatisfiable
      // (and that every layer in it resolves, so no error is skipped).
      geo_span.Attr("short_circuit", "empty_region");
      result.geometry_ids.clear();
    } else {
      PIET_ASSIGN_OR_RETURN(result.geometry_ids,
                            EvaluateGeoPart(active->geo, trace));
    }
    geo_span.Attr("ids", static_cast<int64_t>(result.geometry_ids.size()));
  }
  if (!active->mo) {
    return result;
  }

  const MoQuery& mo = *active->mo;
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(mo.moft));
  PIET_ASSIGN_OR_RETURN(const Layer* layer,
                        db_->gis().GetLayer(result.result_layer));

  // Split conditions into the time predicate and the spatial mode.
  TimePredicate when;
  bool inside_result = false;
  bool passes_through = false;
  const MoCondition* near_cond = nullptr;
  for (const MoCondition& cond : mo.where) {
    switch (cond.kind) {
      case MoCondition::Kind::kInsideResult:
        inside_result = true;
        break;
      case MoCondition::Kind::kPassesThroughResult:
        passes_through = true;
        break;
      case MoCondition::Kind::kTimeEquals:
        when.RollupEquals(cond.time_level, cond.literal);
        break;
      case MoCondition::Kind::kTimeBetween:
        when.Window(Interval(TimePoint(cond.t0), TimePoint(cond.t1)));
        break;
      case MoCondition::Kind::kNearLayer:
        near_cond = &cond;
        break;
    }
  }
  if ((inside_result ? 1 : 0) + (passes_through ? 1 : 0) +
          (near_cond != nullptr ? 1 : 0) >
      1) {
    return Status::InvalidArgument(
        "INSIDE RESULT, PASSES THROUGH RESULT and NEAR are mutually "
        "exclusive");
  }
  if ((inside_result || passes_through) &&
      layer->kind() != GeometryKind::kPolygon) {
    return Status::InvalidArgument(
        "spatial moving-object conditions need a polygon result layer");
  }

  const char* clause = passes_through      ? "passes_through"
                       : near_cond != nullptr ? "near"
                       : inside_result      ? "inside_result"
                                            : "time_only";
  if (obs_on) {
    obs::MetricsRegistry::Global()
        .GetCounter(std::string("pietql.clause.") + clause)
        .Add(1);
  }
  // Build the region C as (Oid, t) tuples. Each branch fans its loop out
  // across the pool in deterministic chunks merged in chunk order, so the
  // tuple sequence is identical to the serial loop for any thread count.
  const int threads = parallel::ResolveThreads(num_threads_);
  std::vector<std::pair<ObjectId, double>> tuples;
  size_t rows_scanned = 0;
  Status fanout_failed;
  auto merge_tuples = [&](TupleChunk&& chunk) {
    if (fanout_failed.ok() && !chunk.status.ok()) {
      fanout_failed = chunk.status;
    }
    if (fanout_failed.ok()) {
      tuples.insert(tuples.end(), chunk.tuples.begin(), chunk.tuples.end());
    }
  };

  // The span closes before aggregation so moft_intersect and aggregate
  // stay siblings in the tree.
  {
  obs::TraceSpan intersect_span(trace, "moft_intersect");
  intersect_span.Attr("clause", clause);
  intersect_span.Attr("moft", mo.moft);

  if (passes_through) {
    // Trajectory semantics: each maximal inside interval contributes a
    // tuple stamped at its entry time. The qualifying polygons are
    // resolved once (ascending id, as the old std::set iterated); each
    // object's LinearTrajectory construction + InsideIntervals runs on
    // the pool.
    const WantedPolygons wanted = ResolveWanted(*layer, result.geometry_ids);
    const moving::MoftColumns& cols = moft->Columns();
    // On the rewrite path, each (span, polygon) pair gets an exact batch
    // prefilter first: a piecewise-linear trajectory shares a point with a
    // closed polygon iff one of its legs does (a single-sample object: iff
    // the point is contained), so spans whose legs all miss skip the
    // InsideIntervals interval construction entirely.
    std::vector<batch::PolygonBatcher> batchers;
    if (rewrite_on) {
      batchers.reserve(wanted.polys.size());
      for (const geometry::Polygon* p : wanted.polys) {
        batchers.emplace_back(p);
      }
    }
    if (!mo_zero) {
    rows_scanned = cols.size();
    parallel::OrderedReduce<TupleChunk>(
        threads, cols.spans.size(),
        [&](size_t /*chunk*/, size_t begin, size_t end, TupleChunk* chunk) {
          chunk->status = [&]() -> Status {
            for (size_t i = begin; i < end; ++i) {
              const moving::ObjectSpan span(&cols, cols.spans[i]);
              ObjectId oid = span.oid();
              PIET_ASSIGN_OR_RETURN(TrajectorySample sample,
                                    TrajectorySample::FromSpan(span));
              PIET_ASSIGN_OR_RETURN(
                  LinearTrajectory traj,
                  LinearTrajectory::FromSample(std::move(sample)));
              Interval domain = traj.TimeDomain();
              IntervalSet time_ok;
              if (when.unconstrained()) {
                time_ok = IntervalSet({domain});
              } else {
                PIET_ASSIGN_OR_RETURN(
                    time_ok,
                    when.MatchingIntervals(db_->time_dimension(), domain));
              }
              if (time_ok.empty()) {
                continue;
              }
              const size_t sb = cols.spans[i].begin;
              const size_t se = cols.spans[i].end;
              for (size_t qi = 0; qi < wanted.ids.size(); ++qi) {
                if (rewrite_on) {
                  if (se - sb >= 2) {
                    if (!batchers[qi].AnyLegIntersects(
                            std::span<const double>(cols.x.data() + sb,
                                                    se - sb),
                            std::span<const double>(cols.y.data() + sb,
                                                    se - sb))) {
                      continue;
                    }
                  } else if (se - sb == 1 &&
                             !wanted.polys[qi]->Contains(geometry::Point(
                                 cols.x[sb], cols.y[sb]))) {
                    continue;
                  }
                }
                IntervalSet inside =
                    moving::InsideIntervals(traj, *wanted.polys[qi]);
                IntervalSet matched = inside.Intersect(time_ok);
                for (const Interval& iv : matched.intervals()) {
                  chunk->tuples.emplace_back(oid, iv.begin.seconds);
                }
              }
            }
            return Status::OK();
          }();
        },
        merge_tuples);
    }
  } else if (near_cond != nullptr) {
    // Sample-proximity semantics: tuples within `radius` of any node of
    // the named layer.
    PIET_ASSIGN_OR_RETURN(const Layer* nodes,
                          db_->gis().GetLayer(near_cond->near_layer));
    if (nodes->kind() != GeometryKind::kNode &&
        nodes->kind() != GeometryKind::kPoint) {
      return Status::InvalidArgument("NEAR needs a point/node layer");
    }
    nodes->WarmIndex();
    double radius = near_cond->radius;
    if (!mo_zero) {
    const moving::SampleView samples = moft->Scan();
    const moving::MoftColumns& cols = *samples.columns();
    // Rewrite fast path for a pure-window predicate: binary-search the
    // closed window once per object (SamplesBetween) and scan only the
    // admitted rows — every one already matches, so the per-row time test
    // disappears. Row order stays the filtered (oid, t) scan order.
    std::optional<std::vector<size_t>> win_rows;
    if (rewrite_on && when.window_only() && samples.offset() == 0) {
      win_rows = WindowRows(
          moft->SamplesBetween(when.window()->begin, when.window()->end));
    }
    const size_t scan_n = win_rows ? win_rows->size() : samples.size();
    rows_scanned = scan_n;
    parallel::OrderedReduce<TupleChunk>(
        threads, scan_n,
        [&](size_t /*chunk*/, size_t begin, size_t end, TupleChunk* chunk) {
          for (size_t i = begin; i < end; ++i) {
            const moving::Sample s =
                win_rows ? cols.at((*win_rows)[i]) : samples[i];
            if (!win_rows && !when.Matches(db_->time_dimension(), s.t)) {
              continue;
            }
            geometry::BoundingBox probe(s.pos.x - radius, s.pos.y - radius,
                                        s.pos.x + radius, s.pos.y + radius);
            for (GeometryId id : nodes->CandidatesInBox(probe)) {
              auto node = nodes->GetPoint(id);
              if (node.ok() && Distance(node.ValueOrDie(), s.pos) <= radius) {
                chunk->tuples.emplace_back(s.oid, s.t.seconds);
                break;
              }
            }
          }
        },
        merge_tuples);
    }
  } else if (inside_result) {
    const WantedPolygons wanted = ResolveWanted(*layer, result.geometry_ids);
    // When the overlay covers the result layer, reuse the cached batched
    // classification (one point location per sample, shared across
    // queries) and filter hits against the sorted wanted ids; otherwise
    // test the resolved polygons directly. Both paths emit one tuple per
    // sample, even on shared boundaries.
    if (!mo_zero) {
    std::shared_ptr<const SampleClassification> cls;
    if (db_->HasOverlay() &&
        db_->OverlayLayerIndex(result.result_layer).ok()) {
      PIET_ASSIGN_OR_RETURN(
          cls, db_->ClassifySamples(mo.moft, result.result_layer));
    }
    const moving::SampleView samples = cls ? cls->samples : moft->Scan();
    const moving::MoftColumns& cols = *samples.columns();
    // Rewrite fast path for a pure-window predicate: scan only the rows
    // the window binary search admits. Classification hit offsets are
    // indexed by whole-table row, which coincides with the absolute window
    // rows only when the classified view starts at row 0 (it always does
    // today; the offset guard keeps the fallback correct if that changes).
    std::optional<std::vector<size_t>> win_rows;
    if (rewrite_on && when.window_only() && samples.offset() == 0) {
      win_rows = WindowRows(
          moft->SamplesBetween(when.window()->begin, when.window()->end));
    }
    const size_t scan_n = win_rows ? win_rows->size() : samples.size();
    rows_scanned = scan_n;
    if (cls || !rewrite_on) {
      parallel::OrderedReduce<TupleChunk>(
          threads, scan_n,
          [&](size_t /*chunk*/, size_t begin, size_t end,
              TupleChunk* chunk) {
            for (size_t i = begin; i < end; ++i) {
              const size_t vi = win_rows ? (*win_rows)[i] : i;
              const moving::Sample s = samples[vi];
              if (!win_rows && !when.Matches(db_->time_dimension(), s.t)) {
                continue;
              }
              if (cls) {
                for (uint32_t j = cls->hits.offsets[vi];
                     j < cls->hits.offsets[vi + 1]; ++j) {
                  if (wanted.contains(cls->hits.ids[j])) {
                    chunk->tuples.emplace_back(s.oid, s.t.seconds);
                    break;
                  }
                }
                continue;
              }
              for (size_t qi = 0; qi < wanted.ids.size(); ++qi) {
                if (wanted.polys[qi]->Contains(s.pos)) {
                  chunk->tuples.emplace_back(s.oid, s.t.seconds);
                  break;
                }
              }
            }
          },
          merge_tuples);
    } else {
      // Rewrite batch path (no overlay classification): gather each tile's
      // time-passing samples into dense coordinate columns and run the
      // batch point-in-polygon kernel once per wanted polygon. Any-hit
      // across polygons equals the scalar break-on-first-polygon, and each
      // kernel verdict is bit-identical to Polygon::Contains.
      std::vector<batch::PolygonBatcher> batchers;
      batchers.reserve(wanted.polys.size());
      for (const geometry::Polygon* p : wanted.polys) {
        batchers.emplace_back(p);
      }
      parallel::OrderedReduce<TupleChunk>(
          threads, scan_n,
          [&](size_t /*chunk*/, size_t begin, size_t end,
              TupleChunk* chunk) {
            constexpr size_t kTileRows = 1024;
            batch::BatchScratch scratch;
            std::vector<uint8_t> hit;
            std::vector<uint8_t> any;
            std::vector<size_t> rows;
            std::vector<double> tx;
            std::vector<double> ty;
            for (size_t base = begin; base < end; base += kTileRows) {
              const size_t stop = std::min(end, base + kTileRows);
              rows.clear();
              tx.clear();
              ty.clear();
              for (size_t i = base; i < stop; ++i) {
                const size_t row =
                    win_rows ? (*win_rows)[i] : i + samples.offset();
                if (!win_rows &&
                    !when.Matches(db_->time_dimension(),
                                  TimePoint(cols.t[row]))) {
                  continue;
                }
                rows.push_back(row);
                tx.push_back(cols.x[row]);
                ty.push_back(cols.y[row]);
              }
              if (rows.empty()) {
                continue;
              }
              any.assign(rows.size(), 0);
              for (const batch::PolygonBatcher& b : batchers) {
                b.ContainsBatch(tx, ty, &scratch, &hit);
                for (size_t k = 0; k < rows.size(); ++k) {
                  any[k] = static_cast<uint8_t>(any[k] | hit[k]);
                }
              }
              for (size_t k = 0; k < rows.size(); ++k) {
                if (any[k] != 0) {
                  chunk->tuples.emplace_back(cols.oid[rows[k]],
                                             cols.t[rows[k]]);
                }
              }
            }
          },
          merge_tuples);
    }
    }
  } else if (!mo_zero) {
    if (rewrite_on && when.window_only()) {
      // The SamplesMatchingTime fast path the rewriter's window folding
      // enables: one binary search per object instead of a full-table
      // scan. The ranges stream out in (oid, t) order — identical tuples
      // to the filtered scan.
      intersect_span.Attr("fast_path", "samples_matching_time");
      const moving::SampleWindow win = moft->SamplesBetween(
          when.window()->begin, when.window()->end);
      const moving::MoftColumns* cols = win.columns();
      rows_scanned = win.size();
      for (const moving::SampleWindow::Range& r : win.ranges()) {
        for (size_t row = r.begin; row < r.end; ++row) {
          tuples.emplace_back(cols->oid[row], cols->t[row]);
        }
      }
    } else {
      const moving::SampleView samples = moft->Scan();
      rows_scanned = samples.size();
      parallel::OrderedReduce<TupleChunk>(
          threads, samples.size(),
          [&](size_t /*chunk*/, size_t begin, size_t end,
              TupleChunk* chunk) {
            for (size_t i = begin; i < end; ++i) {
              const moving::Sample s = samples[i];
              if (when.Matches(db_->time_dimension(), s.t)) {
                chunk->tuples.emplace_back(s.oid, s.t.seconds);
              }
            }
          },
          merge_tuples);
    }
  }
  if (mo_zero) {
    // rw-empty-time / rw-contradictory-spatial: the rewriter proved the
    // region empty, so the scans above were skipped (all argument
    // validation still ran — it precedes the scans on every branch).
    intersect_span.Attr("short_circuit", "empty_region_c");
  }
  if (!fanout_failed.ok()) {
    return fanout_failed;
  }
  intersect_span.Attr("rows_scanned", static_cast<uint64_t>(rows_scanned));
  intersect_span.Attr("tuples", static_cast<uint64_t>(tuples.size()));
  }  // intersect_span

  if (obs_on) {
    obs::MetricsRegistry::Global()
        .GetCounter("pietql.tuples")
        .Add(static_cast<int64_t>(tuples.size()));
  }

  // Aggregate.
  obs::TraceSpan agg_span(trace, "aggregate");
  agg_span.Attr("kind",
                mo.agg.kind == MoAggregate::Kind::kCountAll ? "count_all"
                : mo.agg.kind == MoAggregate::Kind::kCountDistinctOid
                    ? "count_distinct_oid"
                    : "rate_per_hour");
  auto aggregate_tuples =
      [&](const std::vector<std::pair<ObjectId, double>>& rows)
      -> Result<Value> {
    switch (mo.agg.kind) {
      case MoAggregate::Kind::kCountAll:
        return Value(static_cast<int64_t>(rows.size()));
      case MoAggregate::Kind::kCountDistinctOid: {
        std::set<ObjectId> oids;
        for (const auto& [oid, t] : rows) {
          oids.insert(oid);
        }
        return Value(static_cast<int64_t>(oids.size()));
      }
      case MoAggregate::Kind::kRatePerHour: {
        std::set<std::pair<ObjectId, double>> pairs;
        std::set<double> hours;
        for (const auto& [oid, t] : rows) {
          double bucket = temporal::StartOfHour(TimePoint(t)).seconds;
          pairs.emplace(oid, bucket);
          hours.insert(bucket);
        }
        if (hours.empty()) {
          return Value(0.0);
        }
        return Value(static_cast<double>(pairs.size()) /
                     static_cast<double>(hours.size()));
      }
    }
    return Status::Internal("unknown aggregate");
  };

  if (!mo.group_by_level) {
    PIET_ASSIGN_OR_RETURN(Value scalar, aggregate_tuples(tuples));
    result.scalar = std::move(scalar);
    return result;
  }

  // Grouped: key tuples by the rollup of t.
  std::map<Value, std::vector<std::pair<ObjectId, double>>> groups;
  for (const auto& tuple : tuples) {
    PIET_ASSIGN_OR_RETURN(Value key,
                          db_->time_dimension().Rollup(*mo.group_by_level,
                                                       TimePoint(tuple.second)));
    groups[key].push_back(tuple);
  }
  agg_span.Attr("groups", static_cast<uint64_t>(groups.size()));
  FactTable table = FactTable::Make({*mo.group_by_level}, {"value"});
  for (const auto& [key, rows] : groups) {
    PIET_ASSIGN_OR_RETURN(Value agg, aggregate_tuples(rows));
    PIET_RETURN_NOT_OK(table.Append({key, agg}));
  }
  result.table = std::move(table);
  return result;
}

Result<QueryResult> Evaluator::EvaluateString(std::string_view text) const {
  PIET_ASSIGN_OR_RETURN(Query query, Parse(text));
  return Evaluate(query);
}

Result<ProfiledResult> Evaluator::EvaluateStringProfiled(
    std::string_view text) const {
  obs::TraceCollector trace("query");
  Result<Query> parsed = [&]() -> Result<Query> {
    obs::TraceSpan parse_span(&trace, "parse");
    parse_span.Attr("bytes", static_cast<int64_t>(text.size()));
    return Parse(text);
  }();
  PIET_RETURN_NOT_OK(parsed.status());
  PIET_ASSIGN_OR_RETURN(QueryResult result,
                        EvaluateImpl(parsed.ValueOrDie(), &trace));
  ProfiledResult out;
  out.result = std::move(result);
  out.profile = trace.Finish();
  return out;
}

}  // namespace piet::core::pietql
