#include "core/pietql/evaluator.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "analysis/lint/query_lint.h"
#include "analysis/query_check.h"
#include "common/parallel.h"
#include "core/pietql/parser.h"
#include "obs/metrics.h"
#include "core/region.h"
#include "geometry/segment_polygon.h"
#include "moving/traj_ops.h"
#include "moving/trajectory.h"
#include "temporal/time_dimension.h"

namespace piet::core::pietql {

using gis::GeometryId;
using gis::GeometryKind;
using gis::Layer;
using moving::LinearTrajectory;
using moving::Moft;
using moving::ObjectId;
using moving::TrajectorySample;
using olap::FactTable;
using temporal::Interval;
using temporal::IntervalSet;
using temporal::TimePoint;

std::string QueryResult::ToString() const {
  std::ostringstream os;
  os << "result layer '" << result_layer << "': " << geometry_ids.size()
     << " geometries";
  if (scalar) {
    os << "; aggregate = " << scalar->ToString();
  }
  if (table) {
    os << "\n" << table->ToString();
  }
  return os.str();
}

Result<bool> Evaluator::ElementsIntersect(const Layer& a, GeometryId ida,
                                          const Layer& b,
                                          GeometryId idb) const {
  auto kind_pair = [](GeometryKind x) {
    // Collapse point/node and line/polyline.
    if (x == GeometryKind::kNode) {
      return GeometryKind::kPoint;
    }
    if (x == GeometryKind::kLine) {
      return GeometryKind::kPolyline;
    }
    return x;
  };
  GeometryKind ka = kind_pair(a.kind());
  GeometryKind kb = kind_pair(b.kind());

  if (ka == GeometryKind::kPolygon && kb == GeometryKind::kPolygon) {
    PIET_ASSIGN_OR_RETURN(const geometry::Polygon* pa, a.GetPolygon(ida));
    PIET_ASSIGN_OR_RETURN(const geometry::Polygon* pb, b.GetPolygon(idb));
    return pa->Intersects(*pb);
  }
  if (ka == GeometryKind::kPolygon && kb == GeometryKind::kPolyline) {
    PIET_ASSIGN_OR_RETURN(const geometry::Polygon* pa, a.GetPolygon(ida));
    PIET_ASSIGN_OR_RETURN(const geometry::Polyline* lb, b.GetPolyline(idb));
    for (size_t i = 0; i < lb->num_segments(); ++i) {
      if (geometry::SegmentIntersectsPolygon(lb->segment(i), *pa)) {
        return true;
      }
    }
    return false;
  }
  if (ka == GeometryKind::kPolyline && kb == GeometryKind::kPolygon) {
    return ElementsIntersect(b, idb, a, ida);
  }
  if (ka == GeometryKind::kPolygon && kb == GeometryKind::kPoint) {
    PIET_ASSIGN_OR_RETURN(const geometry::Polygon* pa, a.GetPolygon(ida));
    PIET_ASSIGN_OR_RETURN(geometry::Point pb, b.GetPoint(idb));
    return pa->Contains(pb);
  }
  if (ka == GeometryKind::kPoint && kb == GeometryKind::kPolygon) {
    return ElementsIntersect(b, idb, a, ida);
  }
  if (ka == GeometryKind::kPolyline && kb == GeometryKind::kPolyline) {
    PIET_ASSIGN_OR_RETURN(const geometry::Polyline* la, a.GetPolyline(ida));
    PIET_ASSIGN_OR_RETURN(const geometry::Polyline* lb, b.GetPolyline(idb));
    return la->Intersects(*lb);
  }
  if (ka == GeometryKind::kPolyline && kb == GeometryKind::kPoint) {
    PIET_ASSIGN_OR_RETURN(const geometry::Polyline* la, a.GetPolyline(ida));
    PIET_ASSIGN_OR_RETURN(geometry::Point pb, b.GetPoint(idb));
    return la->Contains(pb);
  }
  if (ka == GeometryKind::kPoint && kb == GeometryKind::kPolyline) {
    return ElementsIntersect(b, idb, a, ida);
  }
  if (ka == GeometryKind::kPoint && kb == GeometryKind::kPoint) {
    PIET_ASSIGN_OR_RETURN(geometry::Point pa, a.GetPoint(ida));
    PIET_ASSIGN_OR_RETURN(geometry::Point pb, b.GetPoint(idb));
    return pa == pb;
  }
  return Status::Unimplemented("unsupported geometry kind combination");
}

Result<bool> Evaluator::ElementContains(const Layer& a, GeometryId ida,
                                        const Layer& b, GeometryId idb) const {
  if (a.kind() != GeometryKind::kPolygon) {
    return Status::InvalidArgument("CONTAINS needs a polygon left layer");
  }
  PIET_ASSIGN_OR_RETURN(const geometry::Polygon* pa, a.GetPolygon(ida));
  switch (b.kind()) {
    case GeometryKind::kPoint:
    case GeometryKind::kNode: {
      PIET_ASSIGN_OR_RETURN(geometry::Point pb, b.GetPoint(idb));
      return pa->Contains(pb);
    }
    case GeometryKind::kPolygon: {
      PIET_ASSIGN_OR_RETURN(const geometry::Polygon* pb, b.GetPolygon(idb));
      return pa->ContainsPolygon(*pb);
    }
    case GeometryKind::kLine:
    case GeometryKind::kPolyline: {
      PIET_ASSIGN_OR_RETURN(const geometry::Polyline* lb, b.GetPolyline(idb));
      for (const geometry::Point& v : lb->vertices()) {
        if (!pa->Contains(v)) {
          return false;
        }
      }
      return true;
    }
    case GeometryKind::kAll:
      break;
  }
  return Status::Unimplemented("unsupported CONTAINS operand");
}

namespace {

bool CompareValues(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kGt:
      return rhs < lhs;
    case CompareOp::kLe:
      return !(rhs < lhs);
    case CompareOp::kGe:
      return !(lhs < rhs);
    case CompareOp::kEq:
      return lhs == rhs;
  }
  return false;
}

/// The qualifying result-layer geometries with their polygons resolved
/// once, before the per-object loops: ids ascending (the order the old
/// std::set iterated in), polygons index-aligned.
struct WantedPolygons {
  std::vector<GeometryId> ids;
  std::vector<const geometry::Polygon*> polys;

  bool contains(GeometryId id) const {
    return std::binary_search(ids.begin(), ids.end(), id);
  }
};

WantedPolygons ResolveWanted(const Layer& layer,
                             const std::vector<GeometryId>& geometry_ids) {
  std::vector<GeometryId> sorted(geometry_ids);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  WantedPolygons out;
  out.ids.reserve(sorted.size());
  out.polys.reserve(sorted.size());
  for (GeometryId id : sorted) {
    auto pg = layer.GetPolygon(id);
    if (pg.ok()) {
      out.ids.push_back(id);
      out.polys.push_back(pg.ValueOrDie());
    }
  }
  return out;
}

/// One (Oid, t) tuple list per chunk, merged in chunk order so the final
/// tuple sequence matches the serial loop for any thread count.
struct TupleChunk {
  std::vector<std::pair<ObjectId, double>> tuples;
  Status status;
};

}  // namespace

Result<std::vector<GeometryId>> Evaluator::EvaluateGeoPart(
    const GeoQuery& geo, obs::TraceCollector* trace) const {
  if (geo.select.empty()) {
    return Status::InvalidArgument("geometric part selects no layer");
  }
  const std::string& result_layer = geo.select.front().name;
  PIET_ASSIGN_OR_RETURN(const Layer* layer,
                        db_->gis().GetLayer(result_layer));

  std::vector<GeometryId> current(layer->ids());
  for (const GeoCondition& cond : geo.where) {
    if (cond.a.name != result_layer) {
      return Status::InvalidArgument(
          "conditions must constrain the result layer '" + result_layer +
          "' (got '" + cond.a.name + "')");
    }
    obs::TraceSpan cond_span(
        trace, cond.kind == GeoCondition::Kind::kAttrCompare
                   ? "geo_condition:attr_compare"
               : cond.kind == GeoCondition::Kind::kIntersection
                   ? "geo_condition:intersection"
                   : "geo_condition:contains");
    cond_span.Attr("candidates_in", static_cast<int64_t>(current.size()));
    std::vector<GeometryId> next;
    switch (cond.kind) {
      case GeoCondition::Kind::kAttrCompare: {
        for (GeometryId id : current) {
          auto v = layer->GetAttribute(id, cond.attribute);
          if (v.ok() && CompareValues(v.ValueOrDie(), cond.op, cond.literal)) {
            next.push_back(id);
          }
        }
        break;
      }
      case GeoCondition::Kind::kIntersection:
      case GeoCondition::Kind::kContains: {
        PIET_ASSIGN_OR_RETURN(const Layer* other,
                              db_->gis().GetLayer(cond.b.name));
        for (GeometryId id : current) {
          bool keep = false;
          // Prune with the other layer's R-tree.
          auto bounds = layer->BoundsOf(id);
          if (!bounds.ok()) {
            continue;
          }
          for (GeometryId ob :
               other->CandidatesInBox(bounds.ValueOrDie())) {
            Result<bool> hit =
                (cond.kind == GeoCondition::Kind::kIntersection)
                    ? ElementsIntersect(*layer, id, *other, ob)
                    : ElementContains(*layer, id, *other, ob);
            if (hit.ok() && hit.ValueOrDie()) {
              keep = true;
              break;
            }
          }
          if (keep) {
            next.push_back(id);
          }
        }
        break;
      }
    }
    cond_span.Attr("candidates_out", static_cast<int64_t>(next.size()));
    current = std::move(next);
  }
  return current;
}

Result<QueryResult> Evaluator::Evaluate(const Query& query) const {
  return EvaluateImpl(query, nullptr);
}

Result<ProfiledResult> Evaluator::EvaluateProfiled(const Query& query) const {
  obs::TraceCollector trace("query");
  PIET_ASSIGN_OR_RETURN(QueryResult result, EvaluateImpl(query, &trace));
  ProfiledResult out;
  out.result = std::move(result);
  out.profile = trace.Finish();
  return out;
}

Result<QueryResult> Evaluator::EvaluateImpl(const Query& query,
                                            obs::TraceCollector* trace) const {
  // Passive registry metrics honor the PIET_OBS gate; the span tree is
  // gated only by the collector (EXPLAIN ANALYZE works with PIET_OBS=0).
  const bool obs_on = obs::Enabled();
  obs::ScopedTimer latency(
      obs_on ? &obs::MetricsRegistry::Global().GetHistogram(
                   "pietql.query.latency")
             : nullptr);
  if (obs_on) {
    obs::MetricsRegistry::Global().GetCounter("pietql.queries").Add(1);
  }

  QueryResult result;
  if (check_mode_ != analysis::CheckMode::kOff) {
    obs::TraceSpan analyze_span(trace, "analyze");
    analysis::QueryContext context;
    context.gis = &db_->gis();
    context.moft_names = db_->MoftNames();
    analysis::DiagnosticList diagnostics =
        analysis::AnalyzeQuery(context, query);
    if (check_mode_ == analysis::CheckMode::kStrict &&
        diagnostics.HasErrors()) {
      analyze_span.Attr("diagnostics",
                        static_cast<int64_t>(diagnostics.size()));
      return diagnostics.ToStatus();
    }
    // The static plan linter proves clauses dead / regions empty without
    // evaluating; its findings are warnings and notes, so strict mode keeps
    // accepting lint-flagged queries.
    {
      obs::TraceSpan lint_span(trace, "lint");
      analysis::DiagnosticList lint =
          analysis::lint::LintQuery(context, query);
      lint_span.Attr("findings", static_cast<int64_t>(lint.size()));
      if (obs_on) {
        obs::MetricsRegistry::Global().GetCounter("pietql.lint.queries")
            .Add(1);
        obs::MetricsRegistry::Global().GetCounter("pietql.lint.findings")
            .Add(static_cast<int64_t>(lint.size()));
      }
      diagnostics.Merge(lint);
    }
    analyze_span.Attr("diagnostics",
                      static_cast<int64_t>(diagnostics.size()));
    diagnostics.DowngradeErrorsToWarnings();
    result.diagnostics = std::move(diagnostics);
  }
  result.result_layer = query.geo.select.front().name;
  {
    obs::TraceSpan geo_span(trace, "geo_filter");
    geo_span.Attr("layer", result.result_layer);
    geo_span.Attr("conditions", static_cast<int64_t>(query.geo.where.size()));
    PIET_ASSIGN_OR_RETURN(result.geometry_ids,
                          EvaluateGeoPart(query.geo, trace));
    geo_span.Attr("ids", static_cast<int64_t>(result.geometry_ids.size()));
  }
  if (!query.mo) {
    return result;
  }

  const MoQuery& mo = *query.mo;
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(mo.moft));
  PIET_ASSIGN_OR_RETURN(const Layer* layer,
                        db_->gis().GetLayer(result.result_layer));

  // Split conditions into the time predicate and the spatial mode.
  TimePredicate when;
  bool inside_result = false;
  bool passes_through = false;
  const MoCondition* near_cond = nullptr;
  for (const MoCondition& cond : mo.where) {
    switch (cond.kind) {
      case MoCondition::Kind::kInsideResult:
        inside_result = true;
        break;
      case MoCondition::Kind::kPassesThroughResult:
        passes_through = true;
        break;
      case MoCondition::Kind::kTimeEquals:
        when.RollupEquals(cond.time_level, cond.literal);
        break;
      case MoCondition::Kind::kTimeBetween:
        when.Window(Interval(TimePoint(cond.t0), TimePoint(cond.t1)));
        break;
      case MoCondition::Kind::kNearLayer:
        near_cond = &cond;
        break;
    }
  }
  if ((inside_result ? 1 : 0) + (passes_through ? 1 : 0) +
          (near_cond != nullptr ? 1 : 0) >
      1) {
    return Status::InvalidArgument(
        "INSIDE RESULT, PASSES THROUGH RESULT and NEAR are mutually "
        "exclusive");
  }
  if ((inside_result || passes_through) &&
      layer->kind() != GeometryKind::kPolygon) {
    return Status::InvalidArgument(
        "spatial moving-object conditions need a polygon result layer");
  }

  const char* clause = passes_through      ? "passes_through"
                       : near_cond != nullptr ? "near"
                       : inside_result      ? "inside_result"
                                            : "time_only";
  if (obs_on) {
    obs::MetricsRegistry::Global()
        .GetCounter(std::string("pietql.clause.") + clause)
        .Add(1);
  }
  // Build the region C as (Oid, t) tuples. Each branch fans its loop out
  // across the pool in deterministic chunks merged in chunk order, so the
  // tuple sequence is identical to the serial loop for any thread count.
  const int threads = parallel::ResolveThreads(num_threads_);
  std::vector<std::pair<ObjectId, double>> tuples;
  size_t rows_scanned = 0;
  Status fanout_failed;
  auto merge_tuples = [&](TupleChunk&& chunk) {
    if (fanout_failed.ok() && !chunk.status.ok()) {
      fanout_failed = chunk.status;
    }
    if (fanout_failed.ok()) {
      tuples.insert(tuples.end(), chunk.tuples.begin(), chunk.tuples.end());
    }
  };

  // The span closes before aggregation so moft_intersect and aggregate
  // stay siblings in the tree.
  {
  obs::TraceSpan intersect_span(trace, "moft_intersect");
  intersect_span.Attr("clause", clause);
  intersect_span.Attr("moft", mo.moft);

  if (passes_through) {
    // Trajectory semantics: each maximal inside interval contributes a
    // tuple stamped at its entry time. The qualifying polygons are
    // resolved once (ascending id, as the old std::set iterated); each
    // object's LinearTrajectory construction + InsideIntervals runs on
    // the pool.
    const WantedPolygons wanted = ResolveWanted(*layer, result.geometry_ids);
    const moving::MoftColumns& cols = moft->Columns();
    rows_scanned = cols.size();
    parallel::OrderedReduce<TupleChunk>(
        threads, cols.spans.size(),
        [&](size_t /*chunk*/, size_t begin, size_t end, TupleChunk* chunk) {
          chunk->status = [&]() -> Status {
            for (size_t i = begin; i < end; ++i) {
              const moving::ObjectSpan span(&cols, cols.spans[i]);
              ObjectId oid = span.oid();
              PIET_ASSIGN_OR_RETURN(TrajectorySample sample,
                                    TrajectorySample::FromSpan(span));
              PIET_ASSIGN_OR_RETURN(
                  LinearTrajectory traj,
                  LinearTrajectory::FromSample(std::move(sample)));
              Interval domain = traj.TimeDomain();
              IntervalSet time_ok;
              if (when.unconstrained()) {
                time_ok = IntervalSet({domain});
              } else {
                PIET_ASSIGN_OR_RETURN(
                    time_ok,
                    when.MatchingIntervals(db_->time_dimension(), domain));
              }
              if (time_ok.empty()) {
                continue;
              }
              for (size_t qi = 0; qi < wanted.ids.size(); ++qi) {
                IntervalSet inside =
                    moving::InsideIntervals(traj, *wanted.polys[qi]);
                IntervalSet matched = inside.Intersect(time_ok);
                for (const Interval& iv : matched.intervals()) {
                  chunk->tuples.emplace_back(oid, iv.begin.seconds);
                }
              }
            }
            return Status::OK();
          }();
        },
        merge_tuples);
  } else if (near_cond != nullptr) {
    // Sample-proximity semantics: tuples within `radius` of any node of
    // the named layer.
    PIET_ASSIGN_OR_RETURN(const Layer* nodes,
                          db_->gis().GetLayer(near_cond->near_layer));
    if (nodes->kind() != GeometryKind::kNode &&
        nodes->kind() != GeometryKind::kPoint) {
      return Status::InvalidArgument("NEAR needs a point/node layer");
    }
    nodes->WarmIndex();
    double radius = near_cond->radius;
    const moving::SampleView samples = moft->Scan();
    rows_scanned = samples.size();
    parallel::OrderedReduce<TupleChunk>(
        threads, samples.size(),
        [&](size_t /*chunk*/, size_t begin, size_t end, TupleChunk* chunk) {
          for (size_t i = begin; i < end; ++i) {
            const moving::Sample s = samples[i];
            if (!when.Matches(db_->time_dimension(), s.t)) {
              continue;
            }
            geometry::BoundingBox probe(s.pos.x - radius, s.pos.y - radius,
                                        s.pos.x + radius, s.pos.y + radius);
            for (GeometryId id : nodes->CandidatesInBox(probe)) {
              auto node = nodes->GetPoint(id);
              if (node.ok() && Distance(node.ValueOrDie(), s.pos) <= radius) {
                chunk->tuples.emplace_back(s.oid, s.t.seconds);
                break;
              }
            }
          }
        },
        merge_tuples);
  } else if (inside_result) {
    const WantedPolygons wanted = ResolveWanted(*layer, result.geometry_ids);
    // When the overlay covers the result layer, reuse the cached batched
    // classification (one point location per sample, shared across
    // queries) and filter hits against the sorted wanted ids; otherwise
    // test the resolved polygons directly. Both paths emit one tuple per
    // sample, even on shared boundaries.
    std::shared_ptr<const SampleClassification> cls;
    if (db_->HasOverlay() &&
        db_->OverlayLayerIndex(result.result_layer).ok()) {
      PIET_ASSIGN_OR_RETURN(
          cls, db_->ClassifySamples(mo.moft, result.result_layer));
    }
    const moving::SampleView samples = cls ? cls->samples : moft->Scan();
    rows_scanned = samples.size();
    parallel::OrderedReduce<TupleChunk>(
        threads, samples.size(),
        [&](size_t /*chunk*/, size_t begin, size_t end, TupleChunk* chunk) {
          for (size_t i = begin; i < end; ++i) {
            const moving::Sample s = samples[i];
            if (!when.Matches(db_->time_dimension(), s.t)) {
              continue;
            }
            if (cls) {
              for (uint32_t j = cls->hits.offsets[i];
                   j < cls->hits.offsets[i + 1]; ++j) {
                if (wanted.contains(cls->hits.ids[j])) {
                  chunk->tuples.emplace_back(s.oid, s.t.seconds);
                  break;
                }
              }
              continue;
            }
            for (size_t qi = 0; qi < wanted.ids.size(); ++qi) {
              if (wanted.polys[qi]->Contains(s.pos)) {
                chunk->tuples.emplace_back(s.oid, s.t.seconds);
                break;
              }
            }
          }
        },
        merge_tuples);
  } else {
    const moving::SampleView samples = moft->Scan();
    rows_scanned = samples.size();
    parallel::OrderedReduce<TupleChunk>(
        threads, samples.size(),
        [&](size_t /*chunk*/, size_t begin, size_t end, TupleChunk* chunk) {
          for (size_t i = begin; i < end; ++i) {
            const moving::Sample s = samples[i];
            if (when.Matches(db_->time_dimension(), s.t)) {
              chunk->tuples.emplace_back(s.oid, s.t.seconds);
            }
          }
        },
        merge_tuples);
  }
  if (!fanout_failed.ok()) {
    return fanout_failed;
  }
  intersect_span.Attr("rows_scanned", static_cast<uint64_t>(rows_scanned));
  intersect_span.Attr("tuples", static_cast<uint64_t>(tuples.size()));
  }  // intersect_span

  if (obs_on) {
    obs::MetricsRegistry::Global()
        .GetCounter("pietql.tuples")
        .Add(static_cast<int64_t>(tuples.size()));
  }

  // Aggregate.
  obs::TraceSpan agg_span(trace, "aggregate");
  agg_span.Attr("kind",
                mo.agg.kind == MoAggregate::Kind::kCountAll ? "count_all"
                : mo.agg.kind == MoAggregate::Kind::kCountDistinctOid
                    ? "count_distinct_oid"
                    : "rate_per_hour");
  auto aggregate_tuples =
      [&](const std::vector<std::pair<ObjectId, double>>& rows)
      -> Result<Value> {
    switch (mo.agg.kind) {
      case MoAggregate::Kind::kCountAll:
        return Value(static_cast<int64_t>(rows.size()));
      case MoAggregate::Kind::kCountDistinctOid: {
        std::set<ObjectId> oids;
        for (const auto& [oid, t] : rows) {
          oids.insert(oid);
        }
        return Value(static_cast<int64_t>(oids.size()));
      }
      case MoAggregate::Kind::kRatePerHour: {
        std::set<std::pair<ObjectId, double>> pairs;
        std::set<double> hours;
        for (const auto& [oid, t] : rows) {
          double bucket = temporal::StartOfHour(TimePoint(t)).seconds;
          pairs.emplace(oid, bucket);
          hours.insert(bucket);
        }
        if (hours.empty()) {
          return Value(0.0);
        }
        return Value(static_cast<double>(pairs.size()) /
                     static_cast<double>(hours.size()));
      }
    }
    return Status::Internal("unknown aggregate");
  };

  if (!mo.group_by_level) {
    PIET_ASSIGN_OR_RETURN(Value scalar, aggregate_tuples(tuples));
    result.scalar = std::move(scalar);
    return result;
  }

  // Grouped: key tuples by the rollup of t.
  std::map<Value, std::vector<std::pair<ObjectId, double>>> groups;
  for (const auto& tuple : tuples) {
    PIET_ASSIGN_OR_RETURN(Value key,
                          db_->time_dimension().Rollup(*mo.group_by_level,
                                                       TimePoint(tuple.second)));
    groups[key].push_back(tuple);
  }
  agg_span.Attr("groups", static_cast<uint64_t>(groups.size()));
  FactTable table = FactTable::Make({*mo.group_by_level}, {"value"});
  for (const auto& [key, rows] : groups) {
    PIET_ASSIGN_OR_RETURN(Value agg, aggregate_tuples(rows));
    PIET_RETURN_NOT_OK(table.Append({key, agg}));
  }
  result.table = std::move(table);
  return result;
}

Result<QueryResult> Evaluator::EvaluateString(std::string_view text) const {
  PIET_ASSIGN_OR_RETURN(Query query, Parse(text));
  return Evaluate(query);
}

Result<ProfiledResult> Evaluator::EvaluateStringProfiled(
    std::string_view text) const {
  obs::TraceCollector trace("query");
  Result<Query> parsed = [&]() -> Result<Query> {
    obs::TraceSpan parse_span(&trace, "parse");
    parse_span.Attr("bytes", static_cast<int64_t>(text.size()));
    return Parse(text);
  }();
  PIET_RETURN_NOT_OK(parsed.status());
  PIET_ASSIGN_OR_RETURN(QueryResult result,
                        EvaluateImpl(parsed.ValueOrDie(), &trace));
  ProfiledResult out;
  out.result = std::move(result);
  out.profile = trace.Finish();
  return out;
}

}  // namespace piet::core::pietql
