#ifndef PIET_CORE_PIETQL_AST_H_
#define PIET_CORE_PIETQL_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace piet::core::pietql {

/// `layer.<name>` reference.
struct LayerRef {
  std::string name;
};

/// Comparison operators usable in ATTR conditions.
enum class CompareOp {
  kLt = 0,
  kGt,
  kLe,
  kGe,
  kEq,
};

/// One condition of the geometric part.
struct GeoCondition {
  enum class Kind {
    kIntersection = 0,  ///< INTERSECTION(layer.A, layer.B)
    kContains,          ///< CONTAINS(layer.A, layer.B)
    kAttrCompare,       ///< ATTR(layer.A, name) <op> literal
  };

  Kind kind = Kind::kIntersection;
  LayerRef a;
  LayerRef b;            // For kIntersection / kContains.
  std::string attribute;  // For kAttrCompare.
  CompareOp op = CompareOp::kEq;
  Value literal;
};

/// The geometric part:
///   SELECT layer.<result>[, layer.<other>...];
///   FROM <schema>;
///   WHERE <cond> [AND <cond>]*;
/// The first selected layer is the result layer; its qualifying geometry
/// ids feed the moving-object part (paper Sec. 5).
struct GeoQuery {
  std::vector<LayerRef> select;
  std::string schema;
  std::vector<GeoCondition> where;
};

/// One condition of the moving-object part.
struct MoCondition {
  enum class Kind {
    kInsideResult = 0,       ///< INSIDE RESULT (sample semantics)
    kPassesThroughResult,    ///< PASSES THROUGH RESULT (LIT semantics)
    kTimeEquals,             ///< TIME.<level> = literal
    kTimeBetween,            ///< T BETWEEN <t0> AND <t1> (seconds)
    kNearLayer,              ///< NEAR(layer.<name>, radius)
  };

  Kind kind = Kind::kInsideResult;
  std::string time_level;  // For kTimeEquals.
  Value literal;           // For kTimeEquals.
  double t0 = 0.0;         // For kTimeBetween.
  double t1 = 0.0;
  std::string near_layer;  // For kNearLayer.
  double radius = 0.0;     // For kNearLayer.
};

/// The aggregate of the moving-object part.
struct MoAggregate {
  enum class Kind {
    kCountAll = 0,       ///< COUNT(*)
    kCountDistinctOid,   ///< COUNT(DISTINCT OID)
    kRatePerHour,        ///< RATE PER HOUR — Remark 1's buses-per-hour
  };
  Kind kind = Kind::kCountAll;
};

/// The moving-object part:
///   SELECT <agg> FROM <moft> [WHERE <cond> [AND <cond>]*]
///   [GROUP BY TIME.<level>];
struct MoQuery {
  MoAggregate agg;
  std::string moft;
  std::vector<MoCondition> where;
  std::optional<std::string> group_by_level;
};

/// A full Piet-QL query: geometric part, then optionally a pipe `|` and a
/// moving-object part (the paper composes spatial | OLAP | MO parts; our
/// OLAP algebra is invoked programmatically, so the textual language keeps
/// the two parts that need syntax).
struct Query {
  GeoQuery geo;
  std::optional<MoQuery> mo;
};

}  // namespace piet::core::pietql

#endif  // PIET_CORE_PIETQL_AST_H_
