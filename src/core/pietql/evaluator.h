#ifndef PIET_CORE_PIETQL_EVALUATOR_H_
#define PIET_CORE_PIETQL_EVALUATOR_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/rewrite/rewriter.h"
#include "common/result.h"
#include "core/database.h"
#include "core/pietql/ast.h"
#include "obs/trace.h"
#include "olap/fact_table.h"

namespace piet::core::pietql {

/// What the rewrite stage did to one query: the original and rewritten
/// plans round-tripped through the printer, the zero-row short-circuit
/// proofs, and one entry per applied rw-* rule. Attached to QueryResult
/// only when RewriteMode is kOn; never part of QueryResult::ToString(), so
/// result renderings stay byte-identical across modes.
struct RewriteInfo {
  std::string original;
  std::string rewritten;
  bool geo_zero = false;
  bool mo_zero = false;
  std::vector<analysis::rewrite::AppliedRewrite> applied;

  /// "plan original / plan rewritten" plus one line per applied rule —
  /// the EXPLAIN ANALYZE rendering.
  std::string ToString() const;
};

/// The result of evaluating a Piet-QL query: the geometric part's
/// qualifying ids (of the result layer), plus — when a moving-object part
/// is present — either a scalar aggregate or a grouped table. In kWarn
/// check mode, semantic-analysis findings ride along in `diagnostics`.
struct QueryResult {
  std::string result_layer;
  std::vector<gis::GeometryId> geometry_ids;
  std::optional<Value> scalar;
  std::optional<olap::FactTable> table;
  analysis::DiagnosticList diagnostics;
  std::optional<RewriteInfo> rewrite;

  std::string ToString() const;
};

/// EXPLAIN ANALYZE output: the ordinary query result plus the span tree of
/// the evaluation that produced it (parse → analyze → geo_filter →
/// moft_intersect → aggregate, with per-stage attributes). `result` is
/// bit-identical to what Evaluate returns for the same query — profiling
/// only adds clock reads around the stages, never changes the data path.
struct ProfiledResult {
  QueryResult result;
  obs::SpanNode profile;
};

/// Evaluates Piet-QL queries against a GeoOlapDatabase, following the
/// Sec. 5 pipeline: the geometric part resolves to geometry identifiers,
/// which feed the moving-object part (trajectory-segment intersection
/// against the qualifying geometries).
///
/// With a check mode other than kOff, the Piet-QL semantic analyzer
/// (analysis::AnalyzeQuery) runs over the AST before evaluation: kStrict
/// rejects ill-formed queries with a diagnostic naming the offending
/// clause; kWarn downgrades the findings to warnings on the result. kOff
/// (the default) keeps evaluation byte-identical to the unchecked path.
class Evaluator {
 public:
  /// `db` must outlive the evaluator.
  explicit Evaluator(const GeoOlapDatabase* db,
                     analysis::CheckMode check_mode =
                         analysis::CheckMode::kOff)
      : db_(db), check_mode_(check_mode) {}

  void set_check_mode(analysis::CheckMode mode) { check_mode_ = mode; }
  analysis::CheckMode check_mode() const { return check_mode_; }

  /// The static plan rewriter (analysis::rewrite). kOn rewrites the query
  /// between analyze and geo_filter — dead-clause elimination, time-window
  /// folding, zero-row short circuits, selectivity ordering — and routes
  /// the moving-object scans through the batch geometry kernels. Results
  /// are bit-identical to kOff; kOff evaluates exactly the given AST.
  /// Defaults to the PIET_REWRITE environment knob.
  void set_rewrite_mode(analysis::rewrite::RewriteMode mode) {
    rewrite_mode_ = mode;
  }
  analysis::rewrite::RewriteMode rewrite_mode() const {
    return rewrite_mode_;
  }

  /// Worker threads for the moving-object branches (INSIDE RESULT, NEAR,
  /// PASSES THROUGH): > 0 is explicit, 0 (default) resolves through the
  /// PIET_THREADS environment variable. Results are bit-identical to
  /// `threads = 1` for every thread count.
  void set_num_threads(int n) { num_threads_ = n; }
  int num_threads() const { return num_threads_; }

  Result<QueryResult> Evaluate(const Query& query) const;

  /// Parses and evaluates in one step.
  Result<QueryResult> EvaluateString(std::string_view text) const;

  /// EXPLAIN ANALYZE: evaluates exactly like Evaluate (bit-identical
  /// result) while recording a span tree of the pipeline stages. Profiling
  /// is explicit — it works regardless of the PIET_OBS gate (the collector
  /// is the gate; passive registry counters still honor PIET_OBS).
  Result<ProfiledResult> EvaluateProfiled(const Query& query) const;

  /// Parses (under a "parse" span) and profiles in one step.
  Result<ProfiledResult> EvaluateStringProfiled(std::string_view text) const;

 private:
  /// The one evaluation path: Evaluate passes a null collector (spans
  /// no-op), EvaluateProfiled passes a live one.
  Result<QueryResult> EvaluateImpl(const Query& query,
                                   obs::TraceCollector* trace) const;
  /// Runs the rewrite stage: fills result->rewrite, emits the rewrite span
  /// and pietql.rewrite.* counters, and returns the plan to evaluate.
  analysis::rewrite::RewritePlan RewriteStage(const Query& query,
                                              obs::TraceCollector* trace,
                                              bool obs_on,
                                              QueryResult* result) const;
  Result<std::vector<gis::GeometryId>> EvaluateGeoPart(
      const GeoQuery& geo, obs::TraceCollector* trace) const;
  Result<bool> ElementsIntersect(const gis::Layer& a, gis::GeometryId ida,
                                 const gis::Layer& b,
                                 gis::GeometryId idb) const;
  Result<bool> ElementContains(const gis::Layer& a, gis::GeometryId ida,
                               const gis::Layer& b, gis::GeometryId idb) const;

  const GeoOlapDatabase* db_;
  analysis::CheckMode check_mode_ = analysis::CheckMode::kOff;
  analysis::rewrite::RewriteMode rewrite_mode_ =
      analysis::rewrite::RewriteModeFromEnv();
  int num_threads_ = 0;
};

}  // namespace piet::core::pietql

#endif  // PIET_CORE_PIETQL_EVALUATOR_H_
