#ifndef PIET_CORE_PIETQL_EVALUATOR_H_
#define PIET_CORE_PIETQL_EVALUATOR_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "core/pietql/ast.h"
#include "olap/fact_table.h"

namespace piet::core::pietql {

/// The result of evaluating a Piet-QL query: the geometric part's
/// qualifying ids (of the result layer), plus — when a moving-object part
/// is present — either a scalar aggregate or a grouped table.
struct QueryResult {
  std::string result_layer;
  std::vector<gis::GeometryId> geometry_ids;
  std::optional<Value> scalar;
  std::optional<olap::FactTable> table;

  std::string ToString() const;
};

/// Evaluates Piet-QL queries against a GeoOlapDatabase, following the
/// Sec. 5 pipeline: the geometric part resolves to geometry identifiers,
/// which feed the moving-object part (trajectory-segment intersection
/// against the qualifying geometries).
class Evaluator {
 public:
  /// `db` must outlive the evaluator.
  explicit Evaluator(const GeoOlapDatabase* db) : db_(db) {}

  Result<QueryResult> Evaluate(const Query& query) const;

  /// Parses and evaluates in one step.
  Result<QueryResult> EvaluateString(std::string_view text) const;

 private:
  Result<std::vector<gis::GeometryId>> EvaluateGeoPart(
      const GeoQuery& geo) const;
  Result<bool> ElementsIntersect(const gis::Layer& a, gis::GeometryId ida,
                                 const gis::Layer& b,
                                 gis::GeometryId idb) const;
  Result<bool> ElementContains(const gis::Layer& a, gis::GeometryId ida,
                               const gis::Layer& b, gis::GeometryId idb) const;

  const GeoOlapDatabase* db_;
};

}  // namespace piet::core::pietql

#endif  // PIET_CORE_PIETQL_EVALUATOR_H_
