#ifndef PIET_CORE_PIETQL_LEXER_H_
#define PIET_CORE_PIETQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace piet::core::pietql {

/// Token kinds of the Piet-QL surface syntax.
enum class TokenKind {
  kIdent = 0,   ///< Bare word (keywords are idents, matched case-insensitively).
  kNumber,      ///< Numeric literal.
  kString,      ///< 'single' or "double" quoted.
  kDot,
  kComma,
  kSemicolon,
  kPipe,
  kLParen,
  kRParen,
  kStar,
  kLt,
  kGt,
  kLe,
  kGe,
  kEq,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     ///< Ident/string content.
  double number = 0.0;  ///< For kNumber.
  size_t offset = 0;    ///< Byte offset, for diagnostics.
};

/// Tokenizes a Piet-QL query. Comments are not supported (queries are
/// short); unknown characters are a ParseError.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace piet::core::pietql

#endif  // PIET_CORE_PIETQL_LEXER_H_
