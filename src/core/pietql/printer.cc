#include "core/pietql/printer.h"

#include <charconv>
#include <sstream>

namespace piet::core::pietql {

namespace {

// Shortest decimal form that round-trips through the lexer's from_chars —
// `operator<<` would truncate to six significant digits and break
// print-then-parse identity.
void PrintNumber(std::ostringstream* os, double value) {
  char buf[32];
  auto res = std::to_chars(buf, buf + sizeof(buf), value);
  (*os) << std::string_view(buf, static_cast<size_t>(res.ptr - buf));
}

// String literals use SQL-style doubling: a ' inside a '-quoted literal is
// written ''. The lexer undoes the doubling.
void PrintEscapedString(std::ostringstream* os, const std::string& s) {
  (*os) << '\'';
  for (const char c : s) {
    if (c == '\'') {
      (*os) << "''";
    } else {
      (*os) << c;
    }
  }
  (*os) << '\'';
}

void PrintLiteral(std::ostringstream* os, const Value& v) {
  if (v.is_string()) {
    PrintEscapedString(os, v.AsStringUnchecked());
  } else if (v.is_int()) {
    (*os) << v.AsIntUnchecked();
  } else if (v.is_double()) {
    PrintNumber(os, v.AsDoubleUnchecked());
  } else {
    (*os) << v.ToString();
  }
}

const char* CompareOpText(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
  }
  return "?";
}

void PrintGeoCondition(std::ostringstream* os, const GeoCondition& cond) {
  switch (cond.kind) {
    case GeoCondition::Kind::kIntersection:
      (*os) << "INTERSECTION(layer." << cond.a.name << ", layer."
            << cond.b.name << ")";
      return;
    case GeoCondition::Kind::kContains:
      (*os) << "CONTAINS(layer." << cond.a.name << ", layer." << cond.b.name
            << ")";
      return;
    case GeoCondition::Kind::kAttrCompare:
      (*os) << "ATTR(layer." << cond.a.name << ", " << cond.attribute << ") "
            << CompareOpText(cond.op) << " ";
      PrintLiteral(os, cond.literal);
      return;
  }
}

void PrintMoCondition(std::ostringstream* os, const MoCondition& cond) {
  switch (cond.kind) {
    case MoCondition::Kind::kInsideResult:
      (*os) << "INSIDE RESULT";
      return;
    case MoCondition::Kind::kPassesThroughResult:
      (*os) << "PASSES THROUGH RESULT";
      return;
    case MoCondition::Kind::kTimeEquals:
      (*os) << "TIME." << cond.time_level << " = ";
      PrintLiteral(os, cond.literal);
      return;
    case MoCondition::Kind::kTimeBetween:
      (*os) << "T BETWEEN ";
      PrintNumber(os, cond.t0);
      (*os) << " AND ";
      PrintNumber(os, cond.t1);
      return;
    case MoCondition::Kind::kNearLayer:
      (*os) << "NEAR(layer." << cond.near_layer << ", ";
      PrintNumber(os, cond.radius);
      (*os) << ")";
      return;
  }
}

}  // namespace

std::string Print(const GeoQuery& geo) {
  std::ostringstream os;
  os << "SELECT ";
  for (size_t i = 0; i < geo.select.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << "layer." << geo.select[i].name;
  }
  os << "; FROM " << geo.schema << ";";
  if (!geo.where.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < geo.where.size(); ++i) {
      if (i > 0) {
        os << " AND ";
      }
      PrintGeoCondition(&os, geo.where[i]);
    }
  }
  return os.str();
}

std::string Print(const MoQuery& mo) {
  std::ostringstream os;
  os << "SELECT ";
  switch (mo.agg.kind) {
    case MoAggregate::Kind::kCountAll:
      os << "COUNT(*)";
      break;
    case MoAggregate::Kind::kCountDistinctOid:
      os << "COUNT(DISTINCT OID)";
      break;
    case MoAggregate::Kind::kRatePerHour:
      os << "RATE PER HOUR";
      break;
  }
  os << " FROM " << mo.moft;
  if (!mo.where.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < mo.where.size(); ++i) {
      if (i > 0) {
        os << " AND ";
      }
      PrintMoCondition(&os, mo.where[i]);
    }
  }
  if (mo.group_by_level) {
    os << " GROUP BY TIME." << *mo.group_by_level;
  }
  return os.str();
}

std::string Print(const Query& query) {
  std::string out = Print(query.geo);
  if (query.mo) {
    out += " | " + Print(*query.mo);
  }
  return out;
}

}  // namespace piet::core::pietql
