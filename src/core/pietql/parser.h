#ifndef PIET_CORE_PIETQL_PARSER_H_
#define PIET_CORE_PIETQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "core/pietql/ast.h"

namespace piet::core::pietql {

/// Parses a full Piet-QL query. Grammar (keywords case-insensitive):
///
///   query     := geo_part [ '|' mo_part ]
///   geo_part  := SELECT layer_ref (',' layer_ref)* ';'
///                FROM ident ';'
///                [ WHERE geo_cond (AND geo_cond)* [';'] ]
///   layer_ref := LAYER '.' ident
///   geo_cond  := INTERSECTION '(' layer_ref ',' layer_ref ')'
///              | CONTAINS '(' layer_ref ',' layer_ref ')'
///              | ATTR '(' layer_ref ',' ident ')' cmp literal
///   cmp       := '<' | '>' | '<=' | '>=' | '='
///   mo_part   := SELECT mo_agg FROM ident
///                [ WHERE mo_cond (AND mo_cond)* ]
///                [ GROUP BY TIME '.' ident ] [';']
///   mo_agg    := COUNT '(' '*' ')'
///              | COUNT '(' DISTINCT OID ')'
///              | RATE PER HOUR
///   mo_cond   := INSIDE RESULT
///              | PASSES THROUGH RESULT
///              | NEAR '(' layer_ref ',' number ')'
///              | TIME '.' ident '=' literal
///              | T BETWEEN number AND number
///   literal   := number | string
Result<Query> Parse(std::string_view text);

}  // namespace piet::core::pietql

#endif  // PIET_CORE_PIETQL_PARSER_H_
