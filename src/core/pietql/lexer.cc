#include "core/pietql/lexer.h"

#include <cctype>
#include <charconv>

namespace piet::core::pietql {

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  auto push = [&](TokenKind kind, size_t at, std::string s = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(s);
    t.offset = at;
    out.push_back(std::move(t));
  };

  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t at = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_')) {
        ++j;
      }
      push(TokenKind::kIdent, at, std::string(text.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t j = i + 1;
      while (j < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[j])) ||
              text[j] == '.' || text[j] == 'e' || text[j] == 'E' ||
              ((text[j] == '+' || text[j] == '-') &&
               (text[j - 1] == 'e' || text[j - 1] == 'E')))) {
        ++j;
      }
      double value = 0.0;
      auto res = std::from_chars(text.data() + i, text.data() + j, value);
      if (res.ec != std::errc()) {
        return Status::ParseError("bad number at offset " +
                                  std::to_string(at));
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.number = value;
      t.offset = at;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'' || c == '"') {
      // SQL-style escaping: a doubled quote inside the literal stands for
      // one literal quote character ('it''s' lexes as `it's`).
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < text.size()) {
        if (text[j] == c) {
          if (j + 1 < text.size() && text[j + 1] == c) {
            value.push_back(c);
            j += 2;
            continue;
          }
          closed = true;
          break;
        }
        value.push_back(text[j]);
        ++j;
      }
      if (!closed) {
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(at));
      }
      push(TokenKind::kString, at, std::move(value));
      i = j + 1;
      continue;
    }
    switch (c) {
      case '.':
        push(TokenKind::kDot, at);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, at);
        ++i;
        continue;
      case ';':
        push(TokenKind::kSemicolon, at);
        ++i;
        continue;
      case '|':
        push(TokenKind::kPipe, at);
        ++i;
        continue;
      case '(':
        push(TokenKind::kLParen, at);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, at);
        ++i;
        continue;
      case '*':
        push(TokenKind::kStar, at);
        ++i;
        continue;
      case '<':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenKind::kLe, at);
          i += 2;
        } else {
          push(TokenKind::kLt, at);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenKind::kGe, at);
          i += 2;
        } else {
          push(TokenKind::kGt, at);
          ++i;
        }
        continue;
      case '=':
        push(TokenKind::kEq, at);
        ++i;
        continue;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(at));
    }
  }
  push(TokenKind::kEnd, text.size());
  return out;
}

}  // namespace piet::core::pietql
