#include "core/pietql/parser.h"

#include "common/string_util.h"
#include "core/pietql/lexer.h"

namespace piet::core::pietql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    Query query;
    PIET_ASSIGN_OR_RETURN(query.geo, ParseGeoPart());
    if (Accept(TokenKind::kPipe)) {
      PIET_ASSIGN_OR_RETURN(MoQuery mo, ParseMoPart());
      query.mo = std::move(mo);
    }
    if (!AtEnd()) {
      return Err("trailing input after query");
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AcceptKeyword(std::string_view kw) {
    if (Peek().kind == TokenKind::kIdent && EqualsIgnoreCase(Peek().text, kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdent && EqualsIgnoreCase(t.text, kw);
  }

  Status Err(const std::string& what) const {
    return Status::ParseError(what + " (at offset " +
                              std::to_string(Peek().offset) + ")");
  }

  Status Expect(TokenKind kind, const std::string& what) {
    if (!Accept(kind)) {
      return Err("expected " + what);
    }
    return Status::OK();
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Err("expected keyword '" + std::string(kw) + "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const std::string& what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Err("expected " + what);
    }
    std::string text = Peek().text;
    ++pos_;
    return text;
  }

  Result<LayerRef> ParseLayerRef() {
    PIET_RETURN_NOT_OK(ExpectKeyword("layer"));
    PIET_RETURN_NOT_OK(Expect(TokenKind::kDot, "'.' after 'layer'"));
    PIET_ASSIGN_OR_RETURN(std::string name, ExpectIdent("layer name"));
    return LayerRef{std::move(name)};
  }

  Result<Value> ParseLiteral() {
    if (Peek().kind == TokenKind::kNumber) {
      double v = Peek().number;
      ++pos_;
      return Value(v);
    }
    if (Peek().kind == TokenKind::kString) {
      std::string s = Peek().text;
      ++pos_;
      return Value(std::move(s));
    }
    return Err("expected literal");
  }

  Result<CompareOp> ParseCompareOp() {
    switch (Peek().kind) {
      case TokenKind::kLt:
        ++pos_;
        return CompareOp::kLt;
      case TokenKind::kGt:
        ++pos_;
        return CompareOp::kGt;
      case TokenKind::kLe:
        ++pos_;
        return CompareOp::kLe;
      case TokenKind::kGe:
        ++pos_;
        return CompareOp::kGe;
      case TokenKind::kEq:
        ++pos_;
        return CompareOp::kEq;
      default:
        return Err("expected comparison operator");
    }
  }

  Result<GeoCondition> ParseGeoCondition() {
    GeoCondition cond;
    if (AcceptKeyword("intersection") || AcceptKeyword("intersects")) {
      cond.kind = GeoCondition::Kind::kIntersection;
      PIET_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
      PIET_ASSIGN_OR_RETURN(cond.a, ParseLayerRef());
      PIET_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
      PIET_ASSIGN_OR_RETURN(cond.b, ParseLayerRef());
      PIET_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return cond;
    }
    if (AcceptKeyword("contains")) {
      cond.kind = GeoCondition::Kind::kContains;
      PIET_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
      PIET_ASSIGN_OR_RETURN(cond.a, ParseLayerRef());
      PIET_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
      PIET_ASSIGN_OR_RETURN(cond.b, ParseLayerRef());
      PIET_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return cond;
    }
    if (AcceptKeyword("attr")) {
      cond.kind = GeoCondition::Kind::kAttrCompare;
      PIET_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
      PIET_ASSIGN_OR_RETURN(cond.a, ParseLayerRef());
      PIET_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
      PIET_ASSIGN_OR_RETURN(cond.attribute, ExpectIdent("attribute name"));
      PIET_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      PIET_ASSIGN_OR_RETURN(cond.op, ParseCompareOp());
      PIET_ASSIGN_OR_RETURN(cond.literal, ParseLiteral());
      return cond;
    }
    return Err("expected geometric condition");
  }

  Result<GeoQuery> ParseGeoPart() {
    GeoQuery geo;
    PIET_RETURN_NOT_OK(ExpectKeyword("select"));
    PIET_ASSIGN_OR_RETURN(LayerRef first, ParseLayerRef());
    geo.select.push_back(std::move(first));
    while (Accept(TokenKind::kComma)) {
      PIET_ASSIGN_OR_RETURN(LayerRef next, ParseLayerRef());
      geo.select.push_back(std::move(next));
    }
    PIET_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "';' after SELECT list"));
    PIET_RETURN_NOT_OK(ExpectKeyword("from"));
    PIET_ASSIGN_OR_RETURN(geo.schema, ExpectIdent("schema name"));
    PIET_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "';' after FROM"));
    if (AcceptKeyword("where")) {
      PIET_ASSIGN_OR_RETURN(GeoCondition cond, ParseGeoCondition());
      geo.where.push_back(std::move(cond));
      while (AcceptKeyword("and")) {
        PIET_ASSIGN_OR_RETURN(GeoCondition next, ParseGeoCondition());
        geo.where.push_back(std::move(next));
      }
      Accept(TokenKind::kSemicolon);
    }
    return geo;
  }

  Result<MoAggregate> ParseMoAggregate() {
    MoAggregate agg;
    if (AcceptKeyword("count")) {
      PIET_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'(' after COUNT"));
      if (Accept(TokenKind::kStar)) {
        agg.kind = MoAggregate::Kind::kCountAll;
      } else if (AcceptKeyword("distinct")) {
        PIET_RETURN_NOT_OK(ExpectKeyword("oid"));
        agg.kind = MoAggregate::Kind::kCountDistinctOid;
      } else {
        return Err("expected '*' or DISTINCT OID");
      }
      PIET_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return agg;
    }
    if (AcceptKeyword("rate")) {
      PIET_RETURN_NOT_OK(ExpectKeyword("per"));
      PIET_RETURN_NOT_OK(ExpectKeyword("hour"));
      agg.kind = MoAggregate::Kind::kRatePerHour;
      return agg;
    }
    return Err("expected moving-object aggregate");
  }

  Result<MoCondition> ParseMoCondition() {
    MoCondition cond;
    if (AcceptKeyword("inside")) {
      PIET_RETURN_NOT_OK(ExpectKeyword("result"));
      cond.kind = MoCondition::Kind::kInsideResult;
      return cond;
    }
    if (AcceptKeyword("passes")) {
      PIET_RETURN_NOT_OK(ExpectKeyword("through"));
      PIET_RETURN_NOT_OK(ExpectKeyword("result"));
      cond.kind = MoCondition::Kind::kPassesThroughResult;
      return cond;
    }
    if (AcceptKeyword("near")) {
      PIET_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'(' after NEAR"));
      PIET_ASSIGN_OR_RETURN(LayerRef layer, ParseLayerRef());
      cond.near_layer = layer.name;
      PIET_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
      if (Peek().kind != TokenKind::kNumber) {
        return Err("expected radius after ','");
      }
      cond.radius = Peek().number;
      ++pos_;
      PIET_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      cond.kind = MoCondition::Kind::kNearLayer;
      return cond;
    }
    if (AcceptKeyword("time")) {
      PIET_RETURN_NOT_OK(Expect(TokenKind::kDot, "'.' after TIME"));
      PIET_ASSIGN_OR_RETURN(cond.time_level, ExpectIdent("time level"));
      PIET_RETURN_NOT_OK(Expect(TokenKind::kEq, "'='"));
      PIET_ASSIGN_OR_RETURN(cond.literal, ParseLiteral());
      cond.kind = MoCondition::Kind::kTimeEquals;
      return cond;
    }
    if (AcceptKeyword("t")) {
      PIET_RETURN_NOT_OK(ExpectKeyword("between"));
      if (Peek().kind != TokenKind::kNumber) {
        return Err("expected number after BETWEEN");
      }
      cond.t0 = Peek().number;
      ++pos_;
      PIET_RETURN_NOT_OK(ExpectKeyword("and"));
      if (Peek().kind != TokenKind::kNumber) {
        return Err("expected number after AND");
      }
      cond.t1 = Peek().number;
      ++pos_;
      cond.kind = MoCondition::Kind::kTimeBetween;
      return cond;
    }
    return Err("expected moving-object condition");
  }

  Result<MoQuery> ParseMoPart() {
    MoQuery mo;
    PIET_RETURN_NOT_OK(ExpectKeyword("select"));
    PIET_ASSIGN_OR_RETURN(mo.agg, ParseMoAggregate());
    PIET_RETURN_NOT_OK(ExpectKeyword("from"));
    PIET_ASSIGN_OR_RETURN(mo.moft, ExpectIdent("MOFT name"));
    if (AcceptKeyword("where")) {
      PIET_ASSIGN_OR_RETURN(MoCondition cond, ParseMoCondition());
      mo.where.push_back(std::move(cond));
      while (AcceptKeyword("and")) {
        PIET_ASSIGN_OR_RETURN(MoCondition next, ParseMoCondition());
        mo.where.push_back(std::move(next));
      }
    }
    if (AcceptKeyword("group")) {
      PIET_RETURN_NOT_OK(ExpectKeyword("by"));
      PIET_RETURN_NOT_OK(ExpectKeyword("time"));
      PIET_RETURN_NOT_OK(Expect(TokenKind::kDot, "'.' after TIME"));
      PIET_ASSIGN_OR_RETURN(std::string level, ExpectIdent("time level"));
      mo.group_by_level = std::move(level);
    }
    Accept(TokenKind::kSemicolon);
    return mo;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> Parse(std::string_view text) {
  PIET_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace piet::core::pietql
