#ifndef PIET_CORE_QUERIES_H_
#define PIET_CORE_QUERIES_H_

#include <string>

#include "common/result.h"
#include "core/engine.h"

namespace piet::core::queries {

/// High-level implementations of the paper's worked queries (Sec. 1.2,
/// Remark 1, and Sec. 4 queries 1-7), each annotated with its type in the
/// Sec. 3.1 taxonomy. They compose the region-C relations produced by
/// QueryEngine with the classical γ aggregation of Def. 7.

/// Result of a "per hour" aggregate: `tuple_count` qualifying (Oid, hour)
/// pairs over `hour_count` distinct hours. `per_hour` = tuple_count /
/// hour_count — exactly the paper's Remark 1 arithmetic (4 / 3 = 1.333).
struct PerHourResult {
  int64_t tuple_count = 0;
  int64_t hour_count = 0;
  double per_hour = 0.0;
};

/// The headline query (Sec. 1.2 / Remark 1, Type 4): "number of buses per
/// hour in the morning in the neighborhoods with income < threshold".
/// Counts distinct (Oid, hour-bucket) pairs among qualifying samples and
/// divides by the number of distinct hour buckets.
Result<PerHourResult> CountPerHourInRegion(const QueryEngine& engine,
                                           const std::string& moft,
                                           const std::string& layer,
                                           const GeometryPredicate& pred,
                                           const TimePredicate& when,
                                           Strategy strategy);

/// Query 1 (Type 4): "number of cars in region <member> on Wednesday
/// morning" — distinct objects sampled inside the α-bound region.
Result<int64_t> CountObjectsInRegion(const QueryEngine& engine,
                                     const std::string& moft,
                                     const std::string& layer,
                                     const std::string& attribute,
                                     const Value& member,
                                     const TimePredicate& when,
                                     Strategy strategy);

/// Query 2 (Type 4): "maximal density of cars on all roads" under the
/// paper's three readings.
enum class DensityInterpretation {
  kPerStreet = 0,      ///< (a) counts per street over the whole window.
  kPerStreetInstant,   ///< (b) counts per (street, instant).
  kCityWide,           ///< (c) total count per instant / total road length.
};

struct DensityResult {
  Value street;        ///< Street id (interpretations a, b) or null.
  Value instant;       ///< Instant (b, c) or null.
  double density = 0.0;  ///< Cars per unit road length.
};

Result<DensityResult> MaxStreetDensity(const QueryEngine& engine,
                                       const std::string& moft,
                                       const std::string& street_layer,
                                       double tolerance,
                                       const TimePredicate& when,
                                       DensityInterpretation interpretation);

/// Query 3 (Type 4, optionally trajectory-refined): "cars passing
/// completely through cities with pop >= threshold": objects never observed
/// (or, with trajectory semantics, never interpolated) outside qualifying
/// cities.
Result<int64_t> CountObjectsCompletelyWithin(const QueryEngine& engine,
                                             const std::string& moft,
                                             const std::string& layer,
                                             const GeometryPredicate& pred,
                                             const TimePredicate& when,
                                             bool trajectory_semantics);

/// Query 4 (Type 6): "how many cars are in <member> at instant t" —
/// interpolated snapshot count.
Result<int64_t> SnapshotCountInRegion(const QueryEngine& engine,
                                      const std::string& moft,
                                      const std::string& layer,
                                      const std::string& attribute,
                                      const Value& member,
                                      temporal::TimePoint t);

/// Query 5 (Type 7): total and longest continuous time objects spend in
/// the α-bound region during the time predicate, under LIT semantics.
struct StayResult {
  double total_seconds = 0.0;
  double longest_stay_seconds = 0.0;
  int64_t visits = 0;
};
Result<StayResult> TimeSpentInRegion(const QueryEngine& engine,
                                     const std::string& moft,
                                     const std::string& layer,
                                     const std::string& attribute,
                                     const Value& member,
                                     const TimePredicate& when);

/// Query 6 (Types 4 and 7): "cars per hour within `radius` of a school".
/// With `interpolated` false only observed samples count (the paper's first
/// formulation); with true the LIT is used and unsampled drive-bys are
/// caught (the second formulation).
Result<PerHourResult> CountNearNodesPerHour(const QueryEngine& engine,
                                            const std::string& moft,
                                            const std::string& node_layer,
                                            double radius,
                                            const TimePredicate& when,
                                            bool interpolated);

/// Types 1/2 (spatial aggregation): Σ_{g qualifying} ∫∫_g h dx dy — e.g.
/// "total population of the provinces crossed by a river" with a
/// per-region population density. The numeric condition of type 2 lives in
/// `pred`; the Def. 4 integral is evaluated by GeometricAggregator.
Result<double> TotalMassInRegions(const QueryEngine& engine,
                                  const std::string& layer,
                                  const GeometryPredicate& pred,
                                  const gis::DensityField& density);

/// Type 8 (trajectory aggregation): per-object totals over qualifying
/// regions — distance travelled inside, residence time, and visit count —
/// reduced with γ to fleet-level statistics.
struct TrajectoryAggregateResult {
  double total_distance = 0.0;
  double total_seconds = 0.0;
  int64_t total_visits = 0;
  int64_t objects = 0;
};
Result<TrajectoryAggregateResult> AggregateTrajectories(
    const QueryEngine& engine, const std::string& moft,
    const std::string& layer, const GeometryPredicate& pred);

/// Query 7 (Type 4): "persons waiting at stop <member> by minute between
/// 8:00 and 10:00 on weekday mornings": per-minute counts of objects within
/// `radius` of the α-bound stop. Returns a (minute, count) table.
Result<olap::FactTable> WaitingAtStopPerMinute(const QueryEngine& engine,
                                               const std::string& moft,
                                               const std::string& stop_layer,
                                               const std::string& attribute,
                                               const Value& member,
                                               double radius,
                                               const TimePredicate& when);

}  // namespace piet::core::queries

#endif  // PIET_CORE_QUERIES_H_
