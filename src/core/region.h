#ifndef PIET_CORE_REGION_H_
#define PIET_CORE_REGION_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "gis/density.h"
#include "gis/instance.h"
#include "gis/layer.h"
#include "temporal/interval.h"
#include "temporal/time_dimension.h"

namespace piet::core {

/// A predicate over the geometries of a layer — the geometric half of the
/// FO formula defining the region C. Examples from the paper:
///   n.income < 1500                -> AttributeLess("income", 1500)
///   c.pop >= 50000                 -> AttributeGreaterEq("pop", 50000)
///   α(neighborhood)("Berchem")=pg  -> AlphaEquals(gis, "neighborhood",
///                                                 "Berchem")
/// Predicates compose with And/Or/Not, mirroring FO connectives.
class GeometryPredicate {
 public:
  using Fn = std::function<bool(const gis::Layer&, gis::GeometryId)>;

  GeometryPredicate() : fn_([](const gis::Layer&, gis::GeometryId) {
                          return true;
                        }) {}
  explicit GeometryPredicate(Fn fn) : fn_(std::move(fn)) {}

  bool operator()(const gis::Layer& layer, gis::GeometryId id) const {
    return fn_(layer, id);
  }

  /// Always true.
  static GeometryPredicate All();
  /// attr(g) < threshold (missing attribute -> false).
  static GeometryPredicate AttributeLess(std::string attr, double threshold);
  /// attr(g) > threshold.
  static GeometryPredicate AttributeGreater(std::string attr,
                                            double threshold);
  /// attr(g) >= threshold.
  static GeometryPredicate AttributeGreaterEq(std::string attr,
                                              double threshold);
  /// attr(g) == value.
  static GeometryPredicate AttributeEquals(std::string attr, Value value);
  /// g == α(attribute)(member): the single geometry an application member
  /// is bound to (paper's α usage; `gis` must outlive the predicate).
  static GeometryPredicate AlphaEquals(const gis::GisDimensionInstance* gis,
                                       std::string attribute, Value member);
  /// dist(g, nearest element of `layer`) <= distance — proximity between
  /// whole geometries (e.g. "neighborhoods within 100 of the river").
  /// `gis` must outlive the predicate; results are memoized per geometry.
  static GeometryPredicate WithinDistanceOfLayer(
      const gis::GisDimensionInstance* gis, std::string layer,
      double distance);

  /// ∫∫_g h dx dy > threshold — the paper's type-5 "second order" region
  /// condition ("neighborhoods where the number of low-income people
  /// exceeds 50,000"). Integrals are memoized per geometry id.
  static GeometryPredicate DensityMassGreater(
      std::shared_ptr<const gis::DensityField> field, double threshold);

  GeometryPredicate And(GeometryPredicate other) const;
  GeometryPredicate Or(GeometryPredicate other) const;
  GeometryPredicate Not() const;

 private:
  Fn fn_;
};

/// The temporal half of the region C: a conjunction of rollup-equality
/// constraints (R^level_timeId(t) = member), an optional absolute window,
/// and an optional hour-of-day range. Mirrors the paper's
/// `R^timeOfDay(t) = "Morning" ∧ R^dayOfWeek(t) = "Wednesday"` style.
class TimePredicate {
 public:
  TimePredicate() = default;

  /// Adds R^level_timeId(t) == member.
  TimePredicate& RollupEquals(std::string level, Value member);
  /// Restricts t to [window.begin, window.end].
  TimePredicate& Window(temporal::Interval window);
  /// Restricts hour-of-day to [h0, h1] inclusive (paper's query 7:
  /// 8:00-10:00).
  TimePredicate& HourRange(int h0, int h1);

  /// True when every constraint holds at instant t.
  bool Matches(const temporal::TimeDimension& dim,
               temporal::TimePoint t) const;

  /// The exact subset of `domain` where the predicate holds, as an interval
  /// set. Valid when every rollup constraint is at hour granularity or
  /// coarser (hour, timeOfDay, dayOfWeek, typeOfDay, day, month, year): the
  /// predicate is then piecewise-constant between hour boundaries.
  /// Constraints on `timeId` or `minute` are rejected.
  Result<temporal::IntervalSet> MatchingIntervals(
      const temporal::TimeDimension& dim,
      const temporal::Interval& domain) const;

  const std::optional<temporal::Interval>& window() const { return window_; }
  bool unconstrained() const {
    return rollup_equals_.empty() && !window_ && !hour_range_;
  }
  /// True when the predicate is exactly one absolute closed window — the
  /// case a sorted time column answers with a binary search instead of a
  /// per-row Matches probe.
  bool window_only() const {
    return rollup_equals_.empty() && !hour_range_ && window_.has_value();
  }

 private:
  std::vector<std::pair<std::string, Value>> rollup_equals_;
  std::optional<temporal::Interval> window_;
  std::optional<std::pair<int, int>> hour_range_;
};

}  // namespace piet::core

#endif  // PIET_CORE_REGION_H_
