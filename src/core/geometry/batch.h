#ifndef PIET_CORE_GEOMETRY_BATCH_H_
#define PIET_CORE_GEOMETRY_BATCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/box.h"
#include "geometry/polygon.h"

namespace piet::core::batch {

/// Reusable buffers of one batch call, so per-tile work allocates nothing
/// in steady state (one scratch per worker chunk, like the LocateBatch
/// scratch of gis::OverlayDb).
struct BatchScratch {
  std::vector<uint8_t> mask;     ///< Per-input bounding-box verdict.
  std::vector<uint32_t> cand;    ///< Surviving input indices (compacted).
  std::vector<double> px;        ///< Compacted candidate x coordinates.
  std::vector<double> py;        ///< Compacted candidate y coordinates.
  std::vector<uint8_t> state;    ///< Per-candidate ring-sweep state.
  std::vector<uint8_t> loc;      ///< Per-candidate location verdict.
  std::vector<uint32_t> active;  ///< Hole-phase working set.
  std::vector<uint32_t> subset;  ///< Candidates inside the current hole box.
};

/// Batch point-in-polygon and segment-crossing kernels over structure-of-
/// arrays coordinate columns (the sealed MOFT x/y arrays). The shape
/// follows OverlayDb::LocateBatch: a branch-free bounding-box sweep over
/// the raw columns first (the part the compiler autovectorizes), then the
/// exact geometric test on the few survivors. The exact phase replays
/// Ring::Locate's arithmetic per (point, edge) — same expressions, same
/// per-edge order, no precomputed slopes — so every verdict is bit-
/// identical to the scalar Polygon::Contains / Polygon::IntersectsSegment.
class PolygonBatcher {
 public:
  /// `poly` must outlive the batcher.
  explicit PolygonBatcher(const geometry::Polygon* poly);

  const geometry::Polygon& polygon() const { return *poly_; }
  const geometry::BoundingBox& bounds() const { return bounds_; }

  /// out[i] = polygon().Contains(Point(xs[i], ys[i])). `out` is assigned
  /// to xs.size() entries of 0/1.
  void ContainsBatch(std::span<const double> xs, std::span<const double> ys,
                     BatchScratch* scratch, std::vector<uint8_t>* out) const;

  /// True iff any of the xs.size()-1 consecutive legs (point i to point
  /// i+1 — an object span's trajectory legs) shares a point with the
  /// closed polygon, i.e. polygon().IntersectsSegment on some leg. False
  /// for fewer than two points.
  bool AnyLegIntersects(std::span<const double> xs,
                        std::span<const double> ys) const;

 private:
  struct RingRange {
    size_t begin = 0;  ///< First edge in the SoA edge arrays.
    size_t end = 0;    ///< One past the last edge.
    geometry::BoundingBox bounds;
  };

  /// Edge-major even-odd sweep of one ring over the candidates in
  /// `subset`: state bit 0 accumulates ray-crossing parity, bit 1 latches
  /// boundary hits (which freeze the candidate, like the scalar early
  /// return). Caller zeroes the state of every subset entry first.
  void SweepRing(const RingRange& ring, const std::vector<uint32_t>& subset,
                 const std::vector<double>& px, const std::vector<double>& py,
                 std::vector<uint8_t>* state) const;

  const geometry::Polygon* poly_;
  geometry::BoundingBox bounds_;
  std::vector<double> ax_, ay_, bx_, by_;
  RingRange shell_;
  std::vector<RingRange> holes_;
};

}  // namespace piet::core::batch

#endif  // PIET_CORE_GEOMETRY_BATCH_H_
