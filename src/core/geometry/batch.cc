#include "core/geometry/batch.h"

#include <algorithm>

#include "geometry/predicates.h"
#include "geometry/segment.h"

namespace piet::core::batch {

using geometry::Point;
using geometry::PointLocation;
using geometry::Ring;

namespace {

constexpr uint8_t kParityBit = 1;
constexpr uint8_t kBoundaryBit = 2;

constexpr uint8_t kOutside = static_cast<uint8_t>(PointLocation::kOutside);
constexpr uint8_t kBoundary = static_cast<uint8_t>(PointLocation::kBoundary);
constexpr uint8_t kInside = static_cast<uint8_t>(PointLocation::kInside);

}  // namespace

PolygonBatcher::PolygonBatcher(const geometry::Polygon* poly) : poly_(poly) {
  bounds_ = poly->Bounds();
  auto add_ring = [this](const Ring& ring) {
    RingRange range;
    range.begin = ax_.size();
    const std::vector<Point>& v = ring.vertices();
    const size_t n = v.size();
    for (size_t i = 0; i < n; ++i) {
      const Point& a = v[i];
      const Point& b = v[(i + 1) % n];
      ax_.push_back(a.x);
      ay_.push_back(a.y);
      bx_.push_back(b.x);
      by_.push_back(b.y);
    }
    range.end = ax_.size();
    range.bounds = ring.Bounds();
    return range;
  };
  shell_ = add_ring(poly->shell());
  holes_.reserve(poly->holes().size());
  for (const Ring& hole : poly->holes()) {
    holes_.push_back(add_ring(hole));
  }
}

void PolygonBatcher::SweepRing(const RingRange& ring,
                               const std::vector<uint32_t>& subset,
                               const std::vector<double>& px,
                               const std::vector<double>& py,
                               std::vector<uint8_t>* state) const {
  std::vector<uint8_t>& st = *state;
  for (size_t e = ring.begin; e < ring.end; ++e) {
    const Point a(ax_[e], ay_[e]);
    const Point b(bx_[e], by_[e]);
    for (const uint32_t j : subset) {
      const uint8_t s = st[j];
      if ((s & kBoundaryBit) != 0) {
        continue;
      }
      const Point p(px[j], py[j]);
      if (geometry::OnSegment(p, a, b)) {
        st[j] = s | kBoundaryBit;
        continue;
      }
      // Ray casting toward +x, with the usual half-open rule on y — the
      // exact expression of Ring::Locate, per edge in the same order.
      if ((a.y > p.y) != (b.y > p.y)) {
        const double x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
        if (p.x < x_cross) {
          st[j] = s ^ kParityBit;
        }
      }
    }
  }
}

void PolygonBatcher::ContainsBatch(std::span<const double> xs,
                                   std::span<const double> ys,
                                   BatchScratch* scratch,
                                   std::vector<uint8_t>* out) const {
  const size_t n = xs.size();
  out->assign(n, 0);
  if (n == 0) {
    return;
  }
  BatchScratch& s = *scratch;

  // Phase 1: branch-free bounding-box verdicts over the raw columns (the
  // autovectorizable sweep), then compaction of the survivors.
  s.mask.resize(n);
  const double min_x = bounds_.min_x, max_x = bounds_.max_x;
  const double min_y = bounds_.min_y, max_y = bounds_.max_y;
  for (size_t i = 0; i < n; ++i) {
    const double x = xs[i];
    const double y = ys[i];
    s.mask[i] = static_cast<uint8_t>(static_cast<int>(x >= min_x) &
                                     static_cast<int>(x <= max_x) &
                                     static_cast<int>(y >= min_y) &
                                     static_cast<int>(y <= max_y));
  }
  s.cand.clear();
  s.px.clear();
  s.py.clear();
  for (size_t i = 0; i < n; ++i) {
    if (s.mask[i] != 0) {
      s.cand.push_back(static_cast<uint32_t>(i));
      s.px.push_back(xs[i]);
      s.py.push_back(ys[i]);
    }
  }
  const size_t m = s.cand.size();
  if (m == 0) {
    return;
  }

  // Phase 2: edge-major shell sweep over every candidate.
  s.state.assign(m, 0);
  s.loc.assign(m, kOutside);
  s.subset.resize(m);
  for (size_t j = 0; j < m; ++j) {
    s.subset[j] = static_cast<uint32_t>(j);
  }
  SweepRing(shell_, s.subset, s.px, s.py, &s.state);
  for (size_t j = 0; j < m; ++j) {
    s.loc[j] = (s.state[j] & kBoundaryBit) != 0 ? kBoundary
               : (s.state[j] & kParityBit) != 0 ? kInside
                                                : kOutside;
  }

  // Phase 3: holes, in declaration order — the first hole that contains or
  // borders a shell-interior candidate decides it, like Polygon::Locate.
  if (!holes_.empty()) {
    s.active.clear();
    for (size_t j = 0; j < m; ++j) {
      if (s.loc[j] == kInside) {
        s.active.push_back(static_cast<uint32_t>(j));
      }
    }
    for (const RingRange& hole : holes_) {
      if (s.active.empty()) {
        break;
      }
      s.subset.clear();
      for (const uint32_t j : s.active) {
        // A candidate outside the hole's box is outside the hole (the
        // scalar ring test's bounds precheck); it stays undecided.
        if (hole.bounds.Contains(Point(s.px[j], s.py[j]))) {
          s.state[j] = 0;
          s.subset.push_back(j);
        }
      }
      SweepRing(hole, s.subset, s.px, s.py, &s.state);
      std::vector<uint32_t> still_active;
      still_active.reserve(s.active.size());
      for (const uint32_t j : s.active) {
        bool swept = std::binary_search(s.subset.begin(), s.subset.end(), j);
        if (!swept) {
          still_active.push_back(j);
          continue;
        }
        if ((s.state[j] & kBoundaryBit) != 0) {
          s.loc[j] = kBoundary;  // On a hole edge: boundary, decided.
        } else if ((s.state[j] & kParityBit) != 0) {
          s.loc[j] = kOutside;  // Strictly inside a hole: outside, decided.
        } else {
          still_active.push_back(j);  // Outside this hole; keep going.
        }
      }
      s.active = std::move(still_active);
    }
  }

  for (size_t j = 0; j < m; ++j) {
    (*out)[s.cand[j]] = static_cast<uint8_t>(s.loc[j] != kOutside);
  }
}

bool PolygonBatcher::AnyLegIntersects(std::span<const double> xs,
                                      std::span<const double> ys) const {
  const size_t n = xs.size();
  if (n < 2) {
    return false;
  }
  // Tile-local branch-free leg-box overlap masks (mirrors
  // BoundingBox::Intersects against a never-empty polygon box), then the
  // exact closed segment/polygon test on the survivors.
  constexpr size_t kTile = 256;
  uint8_t mask[kTile];
  const double min_x = bounds_.min_x, max_x = bounds_.max_x;
  const double min_y = bounds_.min_y, max_y = bounds_.max_y;
  const size_t legs = n - 1;
  for (size_t base = 0; base < legs; base += kTile) {
    const size_t count = std::min(kTile, legs - base);
    for (size_t k = 0; k < count; ++k) {
      const size_t i = base + k;
      const double lx0 = std::min(xs[i], xs[i + 1]);
      const double lx1 = std::max(xs[i], xs[i + 1]);
      const double ly0 = std::min(ys[i], ys[i + 1]);
      const double ly1 = std::max(ys[i], ys[i + 1]);
      mask[k] = static_cast<uint8_t>(static_cast<int>(lx0 <= max_x) &
                                     static_cast<int>(min_x <= lx1) &
                                     static_cast<int>(ly0 <= max_y) &
                                     static_cast<int>(min_y <= ly1));
    }
    for (size_t k = 0; k < count; ++k) {
      if (mask[k] == 0) {
        continue;
      }
      const size_t i = base + k;
      const geometry::Segment leg(Point(xs[i], ys[i]),
                                  Point(xs[i + 1], ys[i + 1]));
      if (poly_->IntersectsSegment(leg)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace piet::core::batch
