#ifndef PIET_CORE_ENGINE_H_
#define PIET_CORE_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "core/region.h"
#include "moving/trajectory.h"
#include "olap/fact_table.h"

namespace piet::core {

/// How sample/region matching is evaluated (Sec. 5):
///  * kNaive    — scan every qualifying polygon per sample; no index.
///  * kIndexed  — per-layer R-tree point queries.
///  * kOverlay  — point location against the precomputed Piet overlay
///                (requires GeoOlapDatabase::BuildOverlay). Amortizes
///                geometric work across queries — the paper's strategy.
enum class Strategy {
  kNaive = 0,
  kIndexed,
  kOverlay,
};

std::string_view StrategyToString(Strategy s);

/// Work counters for one engine call (benchmark instrumentation). Parallel
/// paths accumulate one instance per chunk and sum them in chunk order, so
/// the totals are thread-count independent.
struct EngineStats {
  size_t samples_scanned = 0;  ///< MOFT rows visited.
  size_t point_tests = 0;      ///< Exact point-in-polygon tests.
  size_t legs_tested = 0;      ///< Trajectory legs geometrically processed.

  EngineStats& operator+=(const EngineStats& other) {
    samples_scanned += other.samples_scanned;
    point_tests += other.point_tests;
    legs_tested += other.legs_tested;
    return *this;
  }
};

/// Evaluates the paper's spatio-temporal aggregate queries against a
/// GeoOlapDatabase. Each method produces the *region C* as a finite
/// relation (a FactTable); classical aggregation (olap::Aggregate, Def. 7)
/// is then applied by the caller or by the helpers in queries.h.
class QueryEngine {
 public:
  /// `db` must outlive the engine.
  explicit QueryEngine(const GeoOlapDatabase* db) : db_(db) {}

  const GeoOlapDatabase& db() const { return *db_; }

  /// Worker threads for the sample/object fan-outs: > 0 is explicit, 0
  /// (default) resolves through the PIET_THREADS environment variable.
  /// Every result (rows, order, aggregates, stats) is bit-identical to
  /// `threads = 1`, which runs the serial code path.
  void set_num_threads(int n) { num_threads_ = n; }
  int num_threads() const { return num_threads_; }

  // -- Type 3: trajectory samples only ----------------------------------

  /// C = {(Oid, t, x, y) | FM(Oid,t,x,y) ∧ time constraints}.
  Result<olap::FactTable> SamplesMatchingTime(const std::string& moft,
                                              const TimePredicate& when) const;

  // -- Type 4: samples + geometric condition ----------------------------

  /// C = {(Oid, t, g) | FM(Oid,t,x,y) ∧ r^{Pt,Pg}(x,y,g) ∧ pred(g) ∧ time}.
  /// Sample semantics: only observed positions count. A sample on a shared
  /// boundary yields one tuple per containing polygon.
  Result<olap::FactTable> SampleRegion(const std::string& moft,
                                       const std::string& layer,
                                       const GeometryPredicate& pred,
                                       const TimePredicate& when,
                                       Strategy strategy) const;

  /// Variant matching samples to *polyline* geometries within `tolerance`
  /// (the paper's r^{Pt,Pl} for streets). C = {(Oid, t, pl)}.
  Result<olap::FactTable> SamplesOnPolylines(const std::string& moft,
                                             const std::string& layer,
                                             double tolerance,
                                             const TimePredicate& when) const;

  /// Proximity variant for node layers (paper queries 6/7):
  /// C = {(Oid, t, node) | dist(sample, node) <= radius ∧ time}.
  Result<olap::FactTable> SamplesNearNodes(const std::string& moft,
                                           const std::string& layer,
                                           double radius,
                                           const TimePredicate& when) const;

  // -- Type 6: trajectory as spatial object / snapshots ------------------

  /// Interpolated positions at instant `t`:
  /// C = {(Oid, x, y, g) | LIT position at t inside qualifying g}.
  Result<olap::FactTable> SnapshotInRegion(const std::string& moft,
                                           const std::string& layer,
                                           const GeometryPredicate& pred,
                                           temporal::TimePoint t) const;

  // -- Type 7: interpolated trajectory conditions ------------------------

  /// Time intervals each object's LIT spends inside qualifying polygons,
  /// clipped to the time predicate. C = {(Oid, g, enter, leave)}.
  /// Zero-length grazing contacts are kept (duration 0).
  Result<olap::FactTable> TrajectoryRegion(const std::string& moft,
                                           const std::string& layer,
                                           const GeometryPredicate& pred,
                                           const TimePredicate& when) const;

  /// Interpolated proximity: intervals within `radius` of qualifying nodes.
  /// C = {(Oid, node, enter, leave)}.
  Result<olap::FactTable> TrajectoryNearNodes(const std::string& moft,
                                              const std::string& layer,
                                              double radius,
                                              const TimePredicate& when) const;

  /// Object ids whose observed samples (sample semantics) or whole LIT
  /// (trajectory semantics) never leave the union of qualifying polygons —
  /// the paper's "passing completely through" (query 3).
  Result<std::vector<moving::ObjectId>> ObjectsAlwaysWithin(
      const std::string& moft, const std::string& layer,
      const GeometryPredicate& pred, const TimePredicate& when,
      bool trajectory_semantics) const;

  // -- Type 8: aggregation over a trajectory ------------------------------

  /// Per-object trajectory aggregates against qualifying polygons:
  /// C = {(Oid, g, distance, seconds, visits)} with travelled distance,
  /// time inside, and entry count per (object, region). Rows with zero
  /// contact are omitted.
  Result<olap::FactTable> TrajectoryAggregates(const std::string& moft,
                                               const std::string& layer,
                                               const GeometryPredicate& pred)
      const;

  /// Uncertainty variant (lifeline beads): object ids that *could* have
  /// visited a qualifying polygon under speed bound `vmax` — a superset of
  /// the LIT passes-through objects. Fails if any object's samples are
  /// inconsistent with `vmax`.
  Result<std::vector<moving::ObjectId>> ObjectsPossiblyWithin(
      const std::string& moft, const std::string& layer,
      const GeometryPredicate& pred, double vmax) const;

  // -- Geometry-side helper ----------------------------------------------

  /// Ids of `layer` geometries satisfying `pred` (the geometric half of C,
  /// what the Piet-QL geometric part returns).
  Result<std::vector<gis::GeometryId>> QualifyingGeometries(
      const std::string& layer, const GeometryPredicate& pred) const;

  /// Counters from the most recent call.
  const EngineStats& stats() const { return stats_; }

 private:
  /// Per-query context resolved once before the sample loop.
  struct LocateContext {
    const gis::Layer* layer = nullptr;
    Strategy strategy = Strategy::kNaive;
    std::vector<gis::GeometryId> qualifying;
    std::vector<const geometry::Polygon*> qualifying_polygons;
    std::vector<char> wanted;  // Dense membership bitmap by geometry id.
    const gis::OverlayDb* overlay = nullptr;
    size_t overlay_layer = 0;
  };

  Result<LocateContext> MakeLocateContext(const std::string& layer_name,
                                          const GeometryPredicate& pred,
                                          Strategy strategy) const;

  /// Sample -> containing qualifying polygons; writes into `hits` and
  /// counts work into `stats` (chunk-local under the fan-outs).
  void LocateSample(const LocateContext& ctx, geometry::Point p,
                    std::vector<gis::GeometryId>* hits,
                    EngineStats* stats) const;

  const GeoOlapDatabase* db_;
  int num_threads_ = 0;
  mutable EngineStats stats_;
};

}  // namespace piet::core

#endif  // PIET_CORE_ENGINE_H_
