#include "core/timeseries.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace piet::core {

using olap::FactTable;
using olap::Row;

namespace {

int64_t BucketOf(double t, double width) {
  return static_cast<int64_t>(std::floor(t / width));
}

}  // namespace

Result<FactTable> EventCountSeries(const FactTable& events,
                                   const std::string& time_column,
                                   double bucket_width,
                                   const std::string& distinct_column) {
  if (bucket_width <= 0.0) {
    return Status::InvalidArgument("bucket width must be > 0");
  }
  PIET_ASSIGN_OR_RETURN(size_t t_idx, events.ColumnIndex(time_column));
  size_t d_idx = 0;
  bool use_distinct = !distinct_column.empty();
  if (use_distinct) {
    PIET_ASSIGN_OR_RETURN(d_idx, events.ColumnIndex(distinct_column));
  }

  std::map<int64_t, std::set<Value>> distinct_per_bucket;
  std::map<int64_t, int64_t> counts;
  for (const Row& row : events.rows()) {
    PIET_ASSIGN_OR_RETURN(double t, row[t_idx].AsNumeric());
    int64_t bucket = BucketOf(t, bucket_width);
    if (use_distinct) {
      distinct_per_bucket[bucket].insert(row[d_idx]);
    } else {
      ++counts[bucket];
    }
  }
  if (use_distinct) {
    for (const auto& [bucket, values] : distinct_per_bucket) {
      counts[bucket] = static_cast<int64_t>(values.size());
    }
  }

  FactTable out = FactTable::Make({"bucket_start"}, {"count"});
  if (counts.empty()) {
    return out;
  }
  int64_t first = counts.begin()->first;
  int64_t last = counts.rbegin()->first;
  for (int64_t b = first; b <= last; ++b) {
    auto it = counts.find(b);
    PIET_RETURN_NOT_OK(out.Append(
        {Value(static_cast<double>(b) * bucket_width),
         Value(it == counts.end() ? int64_t{0} : it->second)}));
  }
  return out;
}

namespace {

// Sweep events: +1 at enter, -1 just after leave. Closed intervals: a
// leave at t and an enter at the same t overlap, so process enters first.
struct SweepEvent {
  double t;
  int delta;  // +1 enter, -1 leave.
};

Result<std::vector<SweepEvent>> BuildSweep(const FactTable& intervals,
                                           const std::string& enter_column,
                                           const std::string& leave_column) {
  PIET_ASSIGN_OR_RETURN(size_t e_idx, intervals.ColumnIndex(enter_column));
  PIET_ASSIGN_OR_RETURN(size_t l_idx, intervals.ColumnIndex(leave_column));
  std::vector<SweepEvent> events;
  events.reserve(intervals.num_rows() * 2);
  for (const Row& row : intervals.rows()) {
    PIET_ASSIGN_OR_RETURN(double enter, row[e_idx].AsNumeric());
    PIET_ASSIGN_OR_RETURN(double leave, row[l_idx].AsNumeric());
    if (leave < enter) {
      return Status::InvalidArgument("interval with leave < enter");
    }
    events.push_back({enter, +1});
    events.push_back({leave, -1});
  }
  std::sort(events.begin(), events.end(),
            [](const SweepEvent& a, const SweepEvent& b) {
              if (a.t != b.t) {
                return a.t < b.t;
              }
              return a.delta > b.delta;  // Enters before leaves (closed).
            });
  return events;
}

}  // namespace

Result<FactTable> OccupancySeries(const FactTable& intervals,
                                  const std::string& enter_column,
                                  const std::string& leave_column,
                                  double bucket_width) {
  if (bucket_width <= 0.0) {
    return Status::InvalidArgument("bucket width must be > 0");
  }
  PIET_ASSIGN_OR_RETURN(std::vector<SweepEvent> events,
                        BuildSweep(intervals, enter_column, leave_column));
  FactTable out = FactTable::Make({"bucket_start"}, {"peak_occupancy"});
  if (events.empty()) {
    return out;
  }

  std::map<int64_t, int64_t> peaks;
  int64_t current = 0;
  // Occupancy carried into each bucket boundary: compute per-bucket peak as
  // max over events in the bucket and the carried-in occupancy.
  int64_t first_bucket = BucketOf(events.front().t, bucket_width);
  int64_t last_bucket = BucketOf(events.back().t, bucket_width);
  size_t i = 0;
  for (int64_t b = first_bucket; b <= last_bucket; ++b) {
    int64_t peak = current;  // Carried-in occupancy.
    double bucket_end = static_cast<double>(b + 1) * bucket_width;
    while (i < events.size() && events[i].t < bucket_end) {
      current += events[i].delta;
      peak = std::max(peak, current);
      ++i;
    }
    peaks[b] = peak;
  }
  for (int64_t b = first_bucket; b <= last_bucket; ++b) {
    PIET_RETURN_NOT_OK(out.Append(
        {Value(static_cast<double>(b) * bucket_width), Value(peaks[b])}));
  }
  return out;
}

Result<PeakOccupancy> FindPeakOccupancy(const FactTable& intervals,
                                        const std::string& enter_column,
                                        const std::string& leave_column) {
  PIET_ASSIGN_OR_RETURN(std::vector<SweepEvent> events,
                        BuildSweep(intervals, enter_column, leave_column));
  PeakOccupancy out;
  int64_t current = 0;
  for (const SweepEvent& e : events) {
    current += e.delta;
    if (current > out.peak) {
      out.peak = current;
      out.at_seconds = e.t;
    }
  }
  return out;
}

}  // namespace piet::core
