#include "core/engine.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "moving/bead.h"
#include "moving/traj_ops.h"

namespace piet::core {

using gis::GeometryId;
using gis::Layer;
using moving::LinearTrajectory;
using moving::Moft;
using moving::ObjectId;
using moving::Sample;
using moving::TrajectorySample;
using olap::FactTable;
using temporal::Interval;
using temporal::IntervalSet;
using temporal::TimePoint;

std::string_view StrategyToString(Strategy s) {
  switch (s) {
    case Strategy::kNaive:
      return "naive";
    case Strategy::kIndexed:
      return "indexed";
    case Strategy::kOverlay:
      return "overlay";
  }
  return "unknown";
}

Result<std::vector<GeometryId>> QueryEngine::QualifyingGeometries(
    const std::string& layer_name, const GeometryPredicate& pred) const {
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  std::vector<GeometryId> out;
  for (GeometryId id : layer->ids()) {
    if (pred(*layer, id)) {
      out.push_back(id);
    }
  }
  return out;
}

Result<olap::FactTable> QueryEngine::SamplesMatchingTime(
    const std::string& moft_name, const TimePredicate& when) const {
  stats_ = EngineStats{};
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  FactTable out = FactTable::Make({"Oid", "t", "x", "y"}, {});
  for (const Sample& s : moft->AllSamples()) {
    ++stats_.samples_scanned;
    if (!when.Matches(db_->time_dimension(), s.t)) {
      continue;
    }
    PIET_RETURN_NOT_OK(out.Append(
        {Value(s.oid), Value(s.t.seconds), Value(s.pos.x), Value(s.pos.y)}));
  }
  return out;
}

Result<QueryEngine::LocateContext> QueryEngine::MakeLocateContext(
    const std::string& layer_name, const GeometryPredicate& pred,
    Strategy strategy) const {
  LocateContext ctx;
  ctx.strategy = strategy;
  PIET_ASSIGN_OR_RETURN(ctx.layer, db_->gis().GetLayer(layer_name));
  if (ctx.layer->kind() != gis::GeometryKind::kPolygon) {
    return Status::InvalidArgument("sample location needs a polygon layer");
  }
  PIET_ASSIGN_OR_RETURN(ctx.qualifying,
                        QualifyingGeometries(layer_name, pred));
  ctx.wanted.assign(ctx.layer->size(), 0);
  for (GeometryId id : ctx.qualifying) {
    auto pg = ctx.layer->GetPolygon(id);
    if (pg.ok()) {
      ctx.qualifying_polygons.push_back(pg.ValueOrDie());
      ctx.wanted[static_cast<size_t>(id)] = 1;
    }
  }
  if (strategy == Strategy::kOverlay) {
    PIET_ASSIGN_OR_RETURN(ctx.overlay, db_->overlay());
    PIET_ASSIGN_OR_RETURN(ctx.overlay_layer,
                          db_->OverlayLayerIndex(layer_name));
  }
  return ctx;
}

void QueryEngine::LocateSample(const LocateContext& ctx, geometry::Point p,
                               std::vector<GeometryId>* hits) const {
  hits->clear();
  switch (ctx.strategy) {
    case Strategy::kNaive: {
      for (size_t i = 0; i < ctx.qualifying_polygons.size(); ++i) {
        ++stats_.point_tests;
        if (ctx.qualifying_polygons[i]->Contains(p)) {
          hits->push_back(ctx.qualifying[i]);
        }
      }
      return;
    }
    case Strategy::kIndexed: {
      for (GeometryId id : ctx.layer->GeometriesContaining(p)) {
        ++stats_.point_tests;  // GeometriesContaining did the exact test.
        if (ctx.wanted[static_cast<size_t>(id)]) {
          hits->push_back(id);
        }
      }
      return;
    }
    case Strategy::kOverlay: {
      ctx.overlay->LocateInLayerInto(p, ctx.overlay_layer, hits);
      // Filter in place by the qualifying bitmap.
      size_t kept = 0;
      for (GeometryId id : *hits) {
        if (ctx.wanted[static_cast<size_t>(id)]) {
          (*hits)[kept++] = id;
        }
      }
      hits->resize(kept);
      return;
    }
  }
}

Result<FactTable> QueryEngine::SampleRegion(const std::string& moft_name,
                                            const std::string& layer_name,
                                            const GeometryPredicate& pred,
                                            const TimePredicate& when,
                                            Strategy strategy) const {
  stats_ = EngineStats{};
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(LocateContext ctx,
                        MakeLocateContext(layer_name, pred, strategy));

  FactTable out = FactTable::Make({"Oid", "t", "geom"}, {});
  std::vector<GeometryId> hits;
  for (const Sample& s : moft->AllSamples()) {
    ++stats_.samples_scanned;
    if (!when.Matches(db_->time_dimension(), s.t)) {
      continue;
    }
    LocateSample(ctx, s.pos, &hits);
    for (GeometryId g : hits) {
      PIET_RETURN_NOT_OK(
          out.Append({Value(s.oid), Value(s.t.seconds), Value(g)}));
    }
  }
  return out;
}

Result<FactTable> QueryEngine::SamplesOnPolylines(
    const std::string& moft_name, const std::string& layer_name,
    double tolerance, const TimePredicate& when) const {
  stats_ = EngineStats{};
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  if (layer->kind() != gis::GeometryKind::kPolyline &&
      layer->kind() != gis::GeometryKind::kLine) {
    return Status::InvalidArgument("SamplesOnPolylines needs a line layer");
  }
  FactTable out = FactTable::Make({"Oid", "t", "geom"}, {});
  for (const Sample& s : moft->AllSamples()) {
    ++stats_.samples_scanned;
    if (!when.Matches(db_->time_dimension(), s.t)) {
      continue;
    }
    geometry::BoundingBox probe(s.pos.x - tolerance, s.pos.y - tolerance,
                                s.pos.x + tolerance, s.pos.y + tolerance);
    for (GeometryId id : layer->CandidatesInBox(probe)) {
      auto line = layer->GetPolyline(id);
      if (!line.ok()) {
        continue;
      }
      ++stats_.point_tests;
      if (line.ValueOrDie()->DistanceTo(s.pos) <= tolerance) {
        PIET_RETURN_NOT_OK(
            out.Append({Value(s.oid), Value(s.t.seconds), Value(id)}));
      }
    }
  }
  return out;
}

Result<FactTable> QueryEngine::SamplesNearNodes(
    const std::string& moft_name, const std::string& layer_name, double radius,
    const TimePredicate& when) const {
  stats_ = EngineStats{};
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  if (layer->kind() != gis::GeometryKind::kNode &&
      layer->kind() != gis::GeometryKind::kPoint) {
    return Status::InvalidArgument("SamplesNearNodes needs a node layer");
  }
  FactTable out = FactTable::Make({"Oid", "t", "node"}, {});
  for (const Sample& s : moft->AllSamples()) {
    ++stats_.samples_scanned;
    if (!when.Matches(db_->time_dimension(), s.t)) {
      continue;
    }
    geometry::BoundingBox probe(s.pos.x - radius, s.pos.y - radius,
                                s.pos.x + radius, s.pos.y + radius);
    for (GeometryId id : layer->CandidatesInBox(probe)) {
      auto node = layer->GetPoint(id);
      if (!node.ok()) {
        continue;
      }
      ++stats_.point_tests;
      if (Distance(node.ValueOrDie(), s.pos) <= radius) {
        PIET_RETURN_NOT_OK(
            out.Append({Value(s.oid), Value(s.t.seconds), Value(id)}));
      }
    }
  }
  return out;
}

Result<FactTable> QueryEngine::SnapshotInRegion(const std::string& moft_name,
                                                const std::string& layer_name,
                                                const GeometryPredicate& pred,
                                                TimePoint t) const {
  stats_ = EngineStats{};
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  PIET_ASSIGN_OR_RETURN(std::vector<GeometryId> qualifying,
                        QualifyingGeometries(layer_name, pred));

  FactTable out = FactTable::Make({"Oid", "x", "y", "geom"}, {});
  for (ObjectId oid : moft->ObjectIds()) {
    PIET_ASSIGN_OR_RETURN(TrajectorySample sample,
                          TrajectorySample::FromMoft(*moft, oid));
    PIET_ASSIGN_OR_RETURN(LinearTrajectory traj,
                          LinearTrajectory::FromSample(std::move(sample)));
    std::optional<geometry::Point> pos = traj.PositionAt(t);
    if (!pos) {
      continue;
    }
    ++stats_.samples_scanned;
    for (GeometryId id : qualifying) {
      auto pg = layer->GetPolygon(id);
      if (!pg.ok()) {
        continue;
      }
      ++stats_.point_tests;
      if (pg.ValueOrDie()->Contains(*pos)) {
        PIET_RETURN_NOT_OK(out.Append(
            {Value(oid), Value(pos->x), Value(pos->y), Value(id)}));
      }
    }
  }
  return out;
}

Result<FactTable> QueryEngine::TrajectoryRegion(const std::string& moft_name,
                                                const std::string& layer_name,
                                                const GeometryPredicate& pred,
                                                const TimePredicate& when) const {
  stats_ = EngineStats{};
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  if (layer->kind() != gis::GeometryKind::kPolygon) {
    return Status::InvalidArgument("TrajectoryRegion needs a polygon layer");
  }
  PIET_ASSIGN_OR_RETURN(std::vector<GeometryId> qualifying,
                        QualifyingGeometries(layer_name, pred));

  FactTable out = FactTable::Make({"Oid", "geom", "enter", "leave"}, {});
  for (ObjectId oid : moft->ObjectIds()) {
    PIET_ASSIGN_OR_RETURN(TrajectorySample sample,
                          TrajectorySample::FromMoft(*moft, oid));
    PIET_ASSIGN_OR_RETURN(LinearTrajectory traj,
                          LinearTrajectory::FromSample(std::move(sample)));
    Interval domain = traj.TimeDomain();
    IntervalSet time_ok;
    if (when.unconstrained()) {
      time_ok = IntervalSet({domain});
    } else {
      PIET_ASSIGN_OR_RETURN(
          time_ok, when.MatchingIntervals(db_->time_dimension(), domain));
    }
    if (time_ok.empty()) {
      continue;
    }
    stats_.legs_tested += traj.Legs().size();
    for (GeometryId id : qualifying) {
      auto pg = layer->GetPolygon(id);
      if (!pg.ok()) {
        continue;
      }
      IntervalSet inside = moving::InsideIntervals(traj, *pg.ValueOrDie());
      IntervalSet matched = inside.Intersect(time_ok);
      for (const Interval& iv : matched.intervals()) {
        PIET_RETURN_NOT_OK(out.Append({Value(oid), Value(id),
                                       Value(iv.begin.seconds),
                                       Value(iv.end.seconds)}));
      }
    }
  }
  return out;
}

Result<FactTable> QueryEngine::TrajectoryNearNodes(
    const std::string& moft_name, const std::string& layer_name, double radius,
    const TimePredicate& when) const {
  stats_ = EngineStats{};
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  if (layer->kind() != gis::GeometryKind::kNode &&
      layer->kind() != gis::GeometryKind::kPoint) {
    return Status::InvalidArgument("TrajectoryNearNodes needs a node layer");
  }

  FactTable out = FactTable::Make({"Oid", "node", "enter", "leave"}, {});
  for (ObjectId oid : moft->ObjectIds()) {
    PIET_ASSIGN_OR_RETURN(TrajectorySample sample,
                          TrajectorySample::FromMoft(*moft, oid));
    PIET_ASSIGN_OR_RETURN(LinearTrajectory traj,
                          LinearTrajectory::FromSample(std::move(sample)));
    Interval domain = traj.TimeDomain();
    IntervalSet time_ok;
    if (when.unconstrained()) {
      time_ok = IntervalSet({domain});
    } else {
      PIET_ASSIGN_OR_RETURN(
          time_ok, when.MatchingIntervals(db_->time_dimension(), domain));
    }
    if (time_ok.empty()) {
      continue;
    }
    stats_.legs_tested += traj.Legs().size();
    // Candidate nodes: those within radius of the trajectory's bounds.
    geometry::BoundingBox probe;
    for (const moving::TimedPoint& tp : traj.sample().points()) {
      probe.ExtendWith(tp.pos);
    }
    geometry::BoundingBox expanded(probe.min_x - radius, probe.min_y - radius,
                                   probe.max_x + radius, probe.max_y + radius);
    for (GeometryId id : layer->CandidatesInBox(expanded)) {
      auto node = layer->GetPoint(id);
      if (!node.ok()) {
        continue;
      }
      ++stats_.point_tests;
      IntervalSet near =
          moving::WithinDistanceIntervals(traj, node.ValueOrDie(), radius);
      IntervalSet matched = near.Intersect(time_ok);
      for (const Interval& iv : matched.intervals()) {
        PIET_RETURN_NOT_OK(out.Append({Value(oid), Value(id),
                                       Value(iv.begin.seconds),
                                       Value(iv.end.seconds)}));
      }
    }
  }
  return out;
}

Result<FactTable> QueryEngine::TrajectoryAggregates(
    const std::string& moft_name, const std::string& layer_name,
    const GeometryPredicate& pred) const {
  stats_ = EngineStats{};
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  if (layer->kind() != gis::GeometryKind::kPolygon) {
    return Status::InvalidArgument("TrajectoryAggregates needs a polygon layer");
  }
  PIET_ASSIGN_OR_RETURN(std::vector<GeometryId> qualifying,
                        QualifyingGeometries(layer_name, pred));

  FactTable out = FactTable::Make({"Oid", "geom"},
                                  {"distance", "seconds", "visits"});
  for (ObjectId oid : moft->ObjectIds()) {
    PIET_ASSIGN_OR_RETURN(TrajectorySample sample,
                          TrajectorySample::FromMoft(*moft, oid));
    PIET_ASSIGN_OR_RETURN(LinearTrajectory traj,
                          LinearTrajectory::FromSample(std::move(sample)));
    stats_.legs_tested += traj.Legs().size();
    for (GeometryId id : qualifying) {
      auto pg = layer->GetPolygon(id);
      if (!pg.ok()) {
        continue;
      }
      IntervalSet inside = moving::InsideIntervals(traj, *pg.ValueOrDie());
      if (inside.empty()) {
        continue;
      }
      double distance =
          moving::DistanceTravelledInside(traj, *pg.ValueOrDie());
      PIET_RETURN_NOT_OK(out.Append(
          {Value(oid), Value(id), Value(distance),
           Value(inside.TotalLength()),
           Value(static_cast<int64_t>(inside.size()))}));
    }
  }
  return out;
}

Result<std::vector<ObjectId>> QueryEngine::ObjectsPossiblyWithin(
    const std::string& moft_name, const std::string& layer_name,
    const GeometryPredicate& pred, double vmax) const {
  stats_ = EngineStats{};
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  if (layer->kind() != gis::GeometryKind::kPolygon) {
    return Status::InvalidArgument(
        "ObjectsPossiblyWithin needs a polygon layer");
  }
  PIET_ASSIGN_OR_RETURN(std::vector<GeometryId> qualifying,
                        QualifyingGeometries(layer_name, pred));
  std::vector<ObjectId> out;
  for (ObjectId oid : moft->ObjectIds()) {
    PIET_ASSIGN_OR_RETURN(TrajectorySample sample,
                          TrajectorySample::FromMoft(*moft, oid));
    stats_.legs_tested +=
        sample.size() > 0 ? sample.size() - 1 : 0;
    bool possible = false;
    for (GeometryId id : qualifying) {
      auto pg = layer->GetPolygon(id);
      if (!pg.ok()) {
        continue;
      }
      PIET_ASSIGN_OR_RETURN(
          bool hit,
          moving::PossiblyPassesThrough(sample, vmax, *pg.ValueOrDie()));
      if (hit) {
        possible = true;
        break;
      }
    }
    if (possible) {
      out.push_back(oid);
    }
  }
  return out;
}

Result<std::vector<ObjectId>> QueryEngine::ObjectsAlwaysWithin(
    const std::string& moft_name, const std::string& layer_name,
    const GeometryPredicate& pred, const TimePredicate& when,
    bool trajectory_semantics) const {
  stats_ = EngineStats{};
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  PIET_ASSIGN_OR_RETURN(std::vector<GeometryId> qualifying,
                        QualifyingGeometries(layer_name, pred));

  std::vector<ObjectId> out;
  for (ObjectId oid : moft->ObjectIds()) {
    bool ok = true;
    bool any = false;
    if (trajectory_semantics) {
      PIET_ASSIGN_OR_RETURN(TrajectorySample sample,
                            TrajectorySample::FromMoft(*moft, oid));
      PIET_ASSIGN_OR_RETURN(LinearTrajectory traj,
                            LinearTrajectory::FromSample(std::move(sample)));
      Interval domain = traj.TimeDomain();
      IntervalSet time_ok;
      if (when.unconstrained()) {
        time_ok = IntervalSet({domain});
      } else {
        PIET_ASSIGN_OR_RETURN(
            time_ok, when.MatchingIntervals(db_->time_dimension(), domain));
      }
      if (time_ok.empty()) {
        continue;
      }
      stats_.legs_tested += traj.Legs().size();
      // Union of inside intervals over all qualifying polygons must cover
      // every time-matching instant of the domain.
      IntervalSet inside_union;
      for (GeometryId id : qualifying) {
        auto pg = layer->GetPolygon(id);
        if (!pg.ok()) {
          continue;
        }
        inside_union =
            inside_union.Union(moving::InsideIntervals(traj, *pg.ValueOrDie()));
      }
      IntervalSet required = time_ok;
      IntervalSet covered = required.Intersect(inside_union);
      any = !required.empty();
      ok = covered.TotalLength() >= required.TotalLength() - 1e-9 &&
           covered.size() == required.size();
    } else {
      for (const Sample& s : moft->SamplesOf(oid)) {
        ++stats_.samples_scanned;
        if (!when.Matches(db_->time_dimension(), s.t)) {
          continue;
        }
        any = true;
        bool inside = false;
        for (GeometryId id : qualifying) {
          auto pg = layer->GetPolygon(id);
          if (!pg.ok()) {
            continue;
          }
          ++stats_.point_tests;
          if (pg.ValueOrDie()->Contains(s.pos)) {
            inside = true;
            break;
          }
        }
        if (!inside) {
          ok = false;
          break;
        }
      }
    }
    if (ok && any) {
      out.push_back(oid);
    }
  }
  return out;
}

}  // namespace piet::core
