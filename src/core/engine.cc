#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <unordered_set>

#include "common/parallel.h"
#include "core/geometry/batch.h"
#include "moving/bead.h"
#include "moving/traj_ops.h"
#include "obs/metrics.h"

namespace piet::core {

using gis::GeometryId;
using gis::Layer;
using moving::LinearTrajectory;
using moving::Moft;
using moving::MoftColumns;
using moving::ObjectId;
using moving::ObjectSpan;
using moving::Sample;
using moving::SampleView;
using moving::TrajectorySample;
using olap::FactTable;
using olap::Row;
using temporal::Interval;
using temporal::IntervalSet;
using temporal::TimePoint;

std::string_view StrategyToString(Strategy s) {
  switch (s) {
    case Strategy::kNaive:
      return "naive";
    case Strategy::kIndexed:
      return "indexed";
    case Strategy::kOverlay:
      return "overlay";
  }
  return "unknown";
}

namespace {

/// Per-chunk output of the row-producing fan-outs below.
struct RowChunk {
  std::vector<Row> rows;
  EngineStats stats;
  Status status;
};

/// Runs body(begin, end, &rows, &stats) over a deterministic chunking of
/// [0, n) and appends the per-chunk rows to `out` in chunk order — the
/// exact row sequence of the serial loop, for any thread count. The first
/// failing chunk (in chunk order) wins.
template <typename Body>
Status ParallelAppend(int threads, size_t n, FactTable* out,
                      EngineStats* stats, const Body& body) {
  Status failed;
  parallel::OrderedReduce<RowChunk>(
      threads, n,
      [&](size_t /*chunk*/, size_t begin, size_t end, RowChunk* chunk) {
        chunk->status = body(begin, end, &chunk->rows, &chunk->stats);
      },
      [&](RowChunk&& chunk) {
        *stats += chunk.stats;
        if (!failed.ok()) {
          return;
        }
        if (!chunk.status.ok()) {
          failed = chunk.status;
          return;
        }
        for (Row& row : chunk.rows) {
          Status appended = out->Append(std::move(row));
          if (!appended.ok()) {
            failed = appended;
            return;
          }
        }
      });
  return failed;
}

/// Qualifying ids with their polygons resolved once, before any fan-out —
/// worker chunks then index a flat array instead of re-running the layer
/// lookup per (sample, polygon) pair.
struct ResolvedPolygons {
  std::vector<GeometryId> ids;
  std::vector<const geometry::Polygon*> polys;
};

ResolvedPolygons ResolvePolygons(const Layer& layer,
                                 const std::vector<GeometryId>& qualifying) {
  ResolvedPolygons out;
  out.ids.reserve(qualifying.size());
  out.polys.reserve(qualifying.size());
  for (GeometryId id : qualifying) {
    auto pg = layer.GetPolygon(id);
    if (pg.ok()) {
      out.ids.push_back(id);
      out.polys.push_back(pg.ValueOrDie());
    }
  }
  return out;
}

/// The per-object time windows every trajectory method starts from.
Result<IntervalSet> MatchingTimeOf(const TimePredicate& when,
                                   const temporal::TimeDimension& dim,
                                   const Interval& domain) {
  if (when.unconstrained()) {
    return IntervalSet({domain});
  }
  return when.MatchingIntervals(dim, domain);
}

/// Flushes one engine call's work counters and latency to the registry on
/// destruction. The enabled check happens once at construction, so a
/// disabled query pays one branch — the per-row loops never touch the
/// registry (they accumulate into chunk-local EngineStats regardless).
class QueryObs {
 public:
  QueryObs(const char* type, const EngineStats* stats)
      : enabled_(obs::Enabled()), type_(type), stats_(stats) {
    if (enabled_) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  QueryObs(const QueryObs&) = delete;
  QueryObs& operator=(const QueryObs&) = delete;

  void set_rows_matched(size_t n) { rows_matched_ = n; }

  ~QueryObs() {
    if (!enabled_) {
      return;
    }
    int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetHistogram(std::string("engine.query.") + type_ + ".latency")
        .RecordNanos(ns);
    registry.GetCounter("engine.queries").Add(1);
    registry.GetCounter("engine.rows_scanned")
        .Add(static_cast<int64_t>(stats_->samples_scanned));
    registry.GetCounter("engine.point_tests")
        .Add(static_cast<int64_t>(stats_->point_tests));
    registry.GetCounter("engine.legs_tested")
        .Add(static_cast<int64_t>(stats_->legs_tested));
    registry.GetCounter("engine.rows_matched")
        .Add(static_cast<int64_t>(rows_matched_));
  }

 private:
  bool enabled_;
  const char* type_;
  const EngineStats* stats_;
  size_t rows_matched_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Result<std::vector<GeometryId>> QueryEngine::QualifyingGeometries(
    const std::string& layer_name, const GeometryPredicate& pred) const {
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  std::vector<GeometryId> out;
  // Stays serial: predicates may memoize internally (WithinDistanceOfLayer,
  // DensityMassGreater) and are not synchronized.
  for (GeometryId id : layer->ids()) {
    if (pred(*layer, id)) {
      out.push_back(id);
    }
  }
  return out;
}

Result<olap::FactTable> QueryEngine::SamplesMatchingTime(
    const std::string& moft_name, const TimePredicate& when) const {
  stats_ = EngineStats{};
  QueryObs query_obs("samples_matching_time", &stats_);
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  FactTable out = FactTable::Make({"Oid", "t", "x", "y"}, {});

  if (when.window_only()) {
    // Pure time-window predicate: binary search on the sorted time column
    // instead of probing every row. The matching rows come back as
    // per-object column ranges already in (oid, t) order, so fanning out
    // over ranges reproduces the serial row order exactly.
    const temporal::Interval& w = *when.window();
    const moving::SampleWindow window = moft->SamplesBetween(w.begin, w.end);
    const std::vector<moving::SampleWindow::Range>& ranges = window.ranges();
    const MoftColumns& cols = *window.columns();
    PIET_RETURN_NOT_OK(ParallelAppend(
        parallel::ResolveThreads(num_threads_), ranges.size(), &out, &stats_,
        [&](size_t begin, size_t end, std::vector<Row>* rows,
            EngineStats* stats) -> Status {
          for (size_t r = begin; r < end; ++r) {
            for (size_t i = ranges[r].begin; i < ranges[r].end; ++i) {
              ++stats->samples_scanned;
              rows->push_back({Value(cols.oid[i]), Value(cols.t[i]),
                               Value(cols.x[i]), Value(cols.y[i])});
            }
          }
          return Status::OK();
        }));
    query_obs.set_rows_matched(out.num_rows());
    return out;
  }

  const SampleView samples = moft->Scan();
  PIET_RETURN_NOT_OK(ParallelAppend(
      parallel::ResolveThreads(num_threads_), samples.size(), &out, &stats_,
      [&](size_t begin, size_t end, std::vector<Row>* rows,
          EngineStats* stats) -> Status {
        for (size_t i = begin; i < end; ++i) {
          const Sample s = samples[i];
          ++stats->samples_scanned;
          if (!when.Matches(db_->time_dimension(), s.t)) {
            continue;
          }
          rows->push_back({Value(s.oid), Value(s.t.seconds), Value(s.pos.x),
                           Value(s.pos.y)});
        }
        return Status::OK();
      }));
  query_obs.set_rows_matched(out.num_rows());
  return out;
}

Result<QueryEngine::LocateContext> QueryEngine::MakeLocateContext(
    const std::string& layer_name, const GeometryPredicate& pred,
    Strategy strategy) const {
  LocateContext ctx;
  ctx.strategy = strategy;
  PIET_ASSIGN_OR_RETURN(ctx.layer, db_->gis().GetLayer(layer_name));
  if (ctx.layer->kind() != gis::GeometryKind::kPolygon) {
    return Status::InvalidArgument("sample location needs a polygon layer");
  }
  PIET_ASSIGN_OR_RETURN(ctx.qualifying,
                        QualifyingGeometries(layer_name, pred));
  ctx.wanted.assign(ctx.layer->size(), 0);
  for (GeometryId id : ctx.qualifying) {
    auto pg = ctx.layer->GetPolygon(id);
    if (pg.ok()) {
      ctx.qualifying_polygons.push_back(pg.ValueOrDie());
      ctx.wanted[static_cast<size_t>(id)] = 1;
    }
  }
  if (strategy == Strategy::kIndexed) {
    ctx.layer->WarmIndex();
  }
  if (strategy == Strategy::kOverlay) {
    PIET_ASSIGN_OR_RETURN(ctx.overlay, db_->overlay());
    PIET_ASSIGN_OR_RETURN(ctx.overlay_layer,
                          db_->OverlayLayerIndex(layer_name));
  }
  return ctx;
}

void QueryEngine::LocateSample(const LocateContext& ctx, geometry::Point p,
                               std::vector<GeometryId>* hits,
                               EngineStats* stats) const {
  hits->clear();
  switch (ctx.strategy) {
    case Strategy::kNaive: {
      for (size_t i = 0; i < ctx.qualifying_polygons.size(); ++i) {
        ++stats->point_tests;
        if (ctx.qualifying_polygons[i]->Contains(p)) {
          hits->push_back(ctx.qualifying[i]);
        }
      }
      return;
    }
    case Strategy::kIndexed: {
      for (GeometryId id : ctx.layer->GeometriesContaining(p)) {
        ++stats->point_tests;  // GeometriesContaining did the exact test.
        if (ctx.wanted[static_cast<size_t>(id)]) {
          hits->push_back(id);
        }
      }
      return;
    }
    case Strategy::kOverlay: {
      ctx.overlay->LocateInLayerInto(p, ctx.overlay_layer, hits);
      // Filter in place by the qualifying bitmap.
      size_t kept = 0;
      for (GeometryId id : *hits) {
        if (ctx.wanted[static_cast<size_t>(id)]) {
          (*hits)[kept++] = id;
        }
      }
      hits->resize(kept);
      return;
    }
  }
}

Result<FactTable> QueryEngine::SampleRegion(const std::string& moft_name,
                                            const std::string& layer_name,
                                            const GeometryPredicate& pred,
                                            const TimePredicate& when,
                                            Strategy strategy) const {
  stats_ = EngineStats{};
  QueryObs query_obs("sample_region", &stats_);
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(LocateContext ctx,
                        MakeLocateContext(layer_name, pred, strategy));
  const int threads = parallel::ResolveThreads(num_threads_);
  FactTable out = FactTable::Make({"Oid", "t", "geom"}, {});

  if (strategy == Strategy::kOverlay) {
    // The Sec. 5 fast path: the (MOFT, overlay-layer) classification is
    // predicate- and time-independent, so it is computed once (batched
    // across the pool) and served from the database cache on every
    // subsequent query over the same MOFT.
    PIET_ASSIGN_OR_RETURN(
        std::shared_ptr<const SampleClassification> cls,
        db_->ClassifySamples(moft_name, layer_name));
    const SampleView samples = cls->samples;
    const gis::BatchHits& hits = cls->hits;
    PIET_RETURN_NOT_OK(ParallelAppend(
        threads, samples.size(), &out, &stats_,
        [&](size_t begin, size_t end, std::vector<Row>* rows,
            EngineStats* stats) -> Status {
          for (size_t i = begin; i < end; ++i) {
            const Sample s = samples[i];
            ++stats->samples_scanned;
            if (!when.Matches(db_->time_dimension(), s.t)) {
              continue;
            }
            for (uint32_t j = hits.offsets[i]; j < hits.offsets[i + 1];
                 ++j) {
              GeometryId g = hits.ids[j];
              if (ctx.wanted[static_cast<size_t>(g)]) {
                rows->push_back(
                    {Value(s.oid), Value(s.t.seconds), Value(g)});
              }
            }
          }
          return Status::OK();
        }));
    query_obs.set_rows_matched(out.num_rows());
    return out;
  }

  const SampleView samples = moft->Scan();
  if (strategy == Strategy::kNaive) {
    // Batch point-in-polygon: gather each tile's time-passing samples into
    // dense coordinate columns and run the batch kernel once per
    // qualifying polygon. Verdicts are bit-identical to Polygon::Contains,
    // rows come out in the scalar (sample, qualifying-polygon) order, and
    // point_tests counts the same logical sample-times-polygon probes the
    // naive loop performs (it has no early exit).
    std::vector<batch::PolygonBatcher> batchers;
    batchers.reserve(ctx.qualifying_polygons.size());
    for (const geometry::Polygon* p : ctx.qualifying_polygons) {
      batchers.emplace_back(p);
    }
    PIET_RETURN_NOT_OK(ParallelAppend(
        threads, samples.size(), &out, &stats_,
        [&](size_t begin, size_t end, std::vector<Row>* rows,
            EngineStats* stats) -> Status {
          constexpr size_t kTileRows = 1024;
          batch::BatchScratch scratch;
          std::vector<size_t> idx;    // Passing sample indices of the tile.
          std::vector<double> tx;
          std::vector<double> ty;
          std::vector<uint8_t> hits;  // Polygon-major tile verdicts.
          std::vector<uint8_t> one;
          for (size_t base = begin; base < end; base += kTileRows) {
            const size_t stop = std::min(end, base + kTileRows);
            idx.clear();
            tx.clear();
            ty.clear();
            for (size_t i = base; i < stop; ++i) {
              const Sample s = samples[i];
              ++stats->samples_scanned;
              if (!when.Matches(db_->time_dimension(), s.t)) {
                continue;
              }
              idx.push_back(i);
              tx.push_back(s.pos.x);
              ty.push_back(s.pos.y);
            }
            if (idx.empty()) {
              continue;
            }
            const size_t m = idx.size();
            hits.assign(batchers.size() * m, 0);
            for (size_t q = 0; q < batchers.size(); ++q) {
              batchers[q].ContainsBatch(tx, ty, &scratch, &one);
              std::copy(one.begin(), one.end(), hits.begin() + q * m);
            }
            stats->point_tests += batchers.size() * m;
            for (size_t k = 0; k < m; ++k) {
              const Sample s = samples[idx[k]];
              for (size_t q = 0; q < batchers.size(); ++q) {
                if (hits[q * m + k] != 0) {
                  rows->push_back({Value(s.oid), Value(s.t.seconds),
                                   Value(ctx.qualifying[q])});
                }
              }
            }
          }
          return Status::OK();
        }));
    query_obs.set_rows_matched(out.num_rows());
    return out;
  }

  PIET_RETURN_NOT_OK(ParallelAppend(
      threads, samples.size(), &out, &stats_,
      [&](size_t begin, size_t end, std::vector<Row>* rows,
          EngineStats* stats) -> Status {
        std::vector<GeometryId> hits;  // Chunk-local scratch.
        for (size_t i = begin; i < end; ++i) {
          const Sample s = samples[i];
          ++stats->samples_scanned;
          if (!when.Matches(db_->time_dimension(), s.t)) {
            continue;
          }
          LocateSample(ctx, s.pos, &hits, stats);
          for (GeometryId g : hits) {
            rows->push_back({Value(s.oid), Value(s.t.seconds), Value(g)});
          }
        }
        return Status::OK();
      }));
  query_obs.set_rows_matched(out.num_rows());
  return out;
}

Result<FactTable> QueryEngine::SamplesOnPolylines(
    const std::string& moft_name, const std::string& layer_name,
    double tolerance, const TimePredicate& when) const {
  stats_ = EngineStats{};
  QueryObs query_obs("samples_on_polylines", &stats_);
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  if (layer->kind() != gis::GeometryKind::kPolyline &&
      layer->kind() != gis::GeometryKind::kLine) {
    return Status::InvalidArgument("SamplesOnPolylines needs a line layer");
  }
  layer->WarmIndex();
  const SampleView samples = moft->Scan();
  FactTable out = FactTable::Make({"Oid", "t", "geom"}, {});
  PIET_RETURN_NOT_OK(ParallelAppend(
      parallel::ResolveThreads(num_threads_), samples.size(), &out, &stats_,
      [&](size_t begin, size_t end, std::vector<Row>* rows,
          EngineStats* stats) -> Status {
        for (size_t i = begin; i < end; ++i) {
          const Sample s = samples[i];
          ++stats->samples_scanned;
          if (!when.Matches(db_->time_dimension(), s.t)) {
            continue;
          }
          geometry::BoundingBox probe(s.pos.x - tolerance,
                                      s.pos.y - tolerance,
                                      s.pos.x + tolerance,
                                      s.pos.y + tolerance);
          for (GeometryId id : layer->CandidatesInBox(probe)) {
            auto line = layer->GetPolyline(id);
            if (!line.ok()) {
              continue;
            }
            ++stats->point_tests;
            if (line.ValueOrDie()->DistanceTo(s.pos) <= tolerance) {
              rows->push_back({Value(s.oid), Value(s.t.seconds), Value(id)});
            }
          }
        }
        return Status::OK();
      }));
  query_obs.set_rows_matched(out.num_rows());
  return out;
}

Result<FactTable> QueryEngine::SamplesNearNodes(
    const std::string& moft_name, const std::string& layer_name, double radius,
    const TimePredicate& when) const {
  stats_ = EngineStats{};
  QueryObs query_obs("samples_near_nodes", &stats_);
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  if (layer->kind() != gis::GeometryKind::kNode &&
      layer->kind() != gis::GeometryKind::kPoint) {
    return Status::InvalidArgument("SamplesNearNodes needs a node layer");
  }
  layer->WarmIndex();
  const SampleView samples = moft->Scan();
  FactTable out = FactTable::Make({"Oid", "t", "node"}, {});
  PIET_RETURN_NOT_OK(ParallelAppend(
      parallel::ResolveThreads(num_threads_), samples.size(), &out, &stats_,
      [&](size_t begin, size_t end, std::vector<Row>* rows,
          EngineStats* stats) -> Status {
        for (size_t i = begin; i < end; ++i) {
          const Sample s = samples[i];
          ++stats->samples_scanned;
          if (!when.Matches(db_->time_dimension(), s.t)) {
            continue;
          }
          geometry::BoundingBox probe(s.pos.x - radius, s.pos.y - radius,
                                      s.pos.x + radius, s.pos.y + radius);
          for (GeometryId id : layer->CandidatesInBox(probe)) {
            auto node = layer->GetPoint(id);
            if (!node.ok()) {
              continue;
            }
            ++stats->point_tests;
            if (Distance(node.ValueOrDie(), s.pos) <= radius) {
              rows->push_back({Value(s.oid), Value(s.t.seconds), Value(id)});
            }
          }
        }
        return Status::OK();
      }));
  query_obs.set_rows_matched(out.num_rows());
  return out;
}

Result<FactTable> QueryEngine::SnapshotInRegion(const std::string& moft_name,
                                                const std::string& layer_name,
                                                const GeometryPredicate& pred,
                                                TimePoint t) const {
  stats_ = EngineStats{};
  QueryObs query_obs("snapshot_in_region", &stats_);
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  PIET_ASSIGN_OR_RETURN(std::vector<GeometryId> qualifying,
                        QualifyingGeometries(layer_name, pred));
  const ResolvedPolygons wanted = ResolvePolygons(*layer, qualifying);
  const MoftColumns& cols = moft->Columns();

  FactTable out = FactTable::Make({"Oid", "x", "y", "geom"}, {});
  PIET_RETURN_NOT_OK(ParallelAppend(
      parallel::ResolveThreads(num_threads_), cols.spans.size(), &out,
      &stats_,
      [&](size_t begin, size_t end, std::vector<Row>* rows,
          EngineStats* stats) -> Status {
        for (size_t i = begin; i < end; ++i) {
          const ObjectSpan span(&cols, cols.spans[i]);
          ObjectId oid = span.oid();
          PIET_ASSIGN_OR_RETURN(TrajectorySample sample,
                                TrajectorySample::FromSpan(span));
          PIET_ASSIGN_OR_RETURN(
              LinearTrajectory traj,
              LinearTrajectory::FromSample(std::move(sample)));
          std::optional<geometry::Point> pos = traj.PositionAt(t);
          if (!pos) {
            continue;
          }
          ++stats->samples_scanned;
          for (size_t qi = 0; qi < wanted.ids.size(); ++qi) {
            ++stats->point_tests;
            if (wanted.polys[qi]->Contains(*pos)) {
              rows->push_back({Value(oid), Value(pos->x), Value(pos->y),
                               Value(wanted.ids[qi])});
            }
          }
        }
        return Status::OK();
      }));
  query_obs.set_rows_matched(out.num_rows());
  return out;
}

Result<FactTable> QueryEngine::TrajectoryRegion(const std::string& moft_name,
                                                const std::string& layer_name,
                                                const GeometryPredicate& pred,
                                                const TimePredicate& when) const {
  stats_ = EngineStats{};
  QueryObs query_obs("trajectory_region", &stats_);
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  if (layer->kind() != gis::GeometryKind::kPolygon) {
    return Status::InvalidArgument("TrajectoryRegion needs a polygon layer");
  }
  PIET_ASSIGN_OR_RETURN(std::vector<GeometryId> qualifying,
                        QualifyingGeometries(layer_name, pred));
  const ResolvedPolygons wanted = ResolvePolygons(*layer, qualifying);
  const MoftColumns& cols = moft->Columns();

  FactTable out = FactTable::Make({"Oid", "geom", "enter", "leave"}, {});
  PIET_RETURN_NOT_OK(ParallelAppend(
      parallel::ResolveThreads(num_threads_), cols.spans.size(), &out,
      &stats_,
      [&](size_t begin, size_t end, std::vector<Row>* rows,
          EngineStats* stats) -> Status {
        for (size_t i = begin; i < end; ++i) {
          const ObjectSpan span(&cols, cols.spans[i]);
          ObjectId oid = span.oid();
          PIET_ASSIGN_OR_RETURN(TrajectorySample sample,
                                TrajectorySample::FromSpan(span));
          PIET_ASSIGN_OR_RETURN(
              LinearTrajectory traj,
              LinearTrajectory::FromSample(std::move(sample)));
          Interval domain = traj.TimeDomain();
          PIET_ASSIGN_OR_RETURN(
              IntervalSet time_ok,
              MatchingTimeOf(when, db_->time_dimension(), domain));
          if (time_ok.empty()) {
            continue;
          }
          stats->legs_tested += traj.Legs().size();
          for (size_t qi = 0; qi < wanted.ids.size(); ++qi) {
            IntervalSet inside =
                moving::InsideIntervals(traj, *wanted.polys[qi]);
            IntervalSet matched = inside.Intersect(time_ok);
            for (const Interval& iv : matched.intervals()) {
              rows->push_back({Value(oid), Value(wanted.ids[qi]),
                               Value(iv.begin.seconds),
                               Value(iv.end.seconds)});
            }
          }
        }
        return Status::OK();
      }));
  query_obs.set_rows_matched(out.num_rows());
  return out;
}

Result<FactTable> QueryEngine::TrajectoryNearNodes(
    const std::string& moft_name, const std::string& layer_name, double radius,
    const TimePredicate& when) const {
  stats_ = EngineStats{};
  QueryObs query_obs("trajectory_near_nodes", &stats_);
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  if (layer->kind() != gis::GeometryKind::kNode &&
      layer->kind() != gis::GeometryKind::kPoint) {
    return Status::InvalidArgument("TrajectoryNearNodes needs a node layer");
  }
  layer->WarmIndex();
  const MoftColumns& cols = moft->Columns();

  FactTable out = FactTable::Make({"Oid", "node", "enter", "leave"}, {});
  PIET_RETURN_NOT_OK(ParallelAppend(
      parallel::ResolveThreads(num_threads_), cols.spans.size(), &out,
      &stats_,
      [&](size_t begin, size_t end, std::vector<Row>* rows,
          EngineStats* stats) -> Status {
        for (size_t i = begin; i < end; ++i) {
          const ObjectSpan span(&cols, cols.spans[i]);
          ObjectId oid = span.oid();
          PIET_ASSIGN_OR_RETURN(TrajectorySample sample,
                                TrajectorySample::FromSpan(span));
          PIET_ASSIGN_OR_RETURN(
              LinearTrajectory traj,
              LinearTrajectory::FromSample(std::move(sample)));
          Interval domain = traj.TimeDomain();
          PIET_ASSIGN_OR_RETURN(
              IntervalSet time_ok,
              MatchingTimeOf(when, db_->time_dimension(), domain));
          if (time_ok.empty()) {
            continue;
          }
          stats->legs_tested += traj.Legs().size();
          // Candidate nodes: those within radius of the trajectory's bounds.
          geometry::BoundingBox probe;
          for (const moving::TimedPoint& tp : traj.sample().points()) {
            probe.ExtendWith(tp.pos);
          }
          geometry::BoundingBox expanded(
              probe.min_x - radius, probe.min_y - radius,
              probe.max_x + radius, probe.max_y + radius);
          for (GeometryId id : layer->CandidatesInBox(expanded)) {
            auto node = layer->GetPoint(id);
            if (!node.ok()) {
              continue;
            }
            ++stats->point_tests;
            IntervalSet near = moving::WithinDistanceIntervals(
                traj, node.ValueOrDie(), radius);
            IntervalSet matched = near.Intersect(time_ok);
            for (const Interval& iv : matched.intervals()) {
              rows->push_back({Value(oid), Value(id),
                               Value(iv.begin.seconds),
                               Value(iv.end.seconds)});
            }
          }
        }
        return Status::OK();
      }));
  query_obs.set_rows_matched(out.num_rows());
  return out;
}

Result<FactTable> QueryEngine::TrajectoryAggregates(
    const std::string& moft_name, const std::string& layer_name,
    const GeometryPredicate& pred) const {
  stats_ = EngineStats{};
  QueryObs query_obs("trajectory_aggregates", &stats_);
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  if (layer->kind() != gis::GeometryKind::kPolygon) {
    return Status::InvalidArgument("TrajectoryAggregates needs a polygon layer");
  }
  PIET_ASSIGN_OR_RETURN(std::vector<GeometryId> qualifying,
                        QualifyingGeometries(layer_name, pred));
  const ResolvedPolygons wanted = ResolvePolygons(*layer, qualifying);
  const MoftColumns& cols = moft->Columns();

  FactTable out = FactTable::Make({"Oid", "geom"},
                                  {"distance", "seconds", "visits"});
  PIET_RETURN_NOT_OK(ParallelAppend(
      parallel::ResolveThreads(num_threads_), cols.spans.size(), &out,
      &stats_,
      [&](size_t begin, size_t end, std::vector<Row>* rows,
          EngineStats* stats) -> Status {
        for (size_t i = begin; i < end; ++i) {
          const ObjectSpan span(&cols, cols.spans[i]);
          ObjectId oid = span.oid();
          PIET_ASSIGN_OR_RETURN(TrajectorySample sample,
                                TrajectorySample::FromSpan(span));
          PIET_ASSIGN_OR_RETURN(
              LinearTrajectory traj,
              LinearTrajectory::FromSample(std::move(sample)));
          stats->legs_tested += traj.Legs().size();
          for (size_t qi = 0; qi < wanted.ids.size(); ++qi) {
            IntervalSet inside =
                moving::InsideIntervals(traj, *wanted.polys[qi]);
            if (inside.empty()) {
              continue;
            }
            double distance =
                moving::DistanceTravelledInside(traj, *wanted.polys[qi]);
            rows->push_back(
                {Value(oid), Value(wanted.ids[qi]), Value(distance),
                 Value(inside.TotalLength()),
                 Value(static_cast<int64_t>(inside.size()))});
          }
        }
        return Status::OK();
      }));
  query_obs.set_rows_matched(out.num_rows());
  return out;
}

Result<std::vector<ObjectId>> QueryEngine::ObjectsPossiblyWithin(
    const std::string& moft_name, const std::string& layer_name,
    const GeometryPredicate& pred, double vmax) const {
  stats_ = EngineStats{};
  QueryObs query_obs("objects_possibly_within", &stats_);
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  if (layer->kind() != gis::GeometryKind::kPolygon) {
    return Status::InvalidArgument(
        "ObjectsPossiblyWithin needs a polygon layer");
  }
  PIET_ASSIGN_OR_RETURN(std::vector<GeometryId> qualifying,
                        QualifyingGeometries(layer_name, pred));
  const ResolvedPolygons wanted = ResolvePolygons(*layer, qualifying);
  const MoftColumns& cols = moft->Columns();

  struct IdChunk {
    std::vector<ObjectId> out;
    EngineStats stats;
    Status status;
  };
  std::vector<ObjectId> out;
  Status failed;
  parallel::OrderedReduce<IdChunk>(
      parallel::ResolveThreads(num_threads_), cols.spans.size(),
      [&](size_t /*chunk*/, size_t begin, size_t end, IdChunk* chunk) {
        chunk->status = [&]() -> Status {
          for (size_t i = begin; i < end; ++i) {
            const ObjectSpan span(&cols, cols.spans[i]);
            ObjectId oid = span.oid();
            PIET_ASSIGN_OR_RETURN(TrajectorySample sample,
                                  TrajectorySample::FromSpan(span));
            chunk->stats.legs_tested +=
                sample.size() > 0 ? sample.size() - 1 : 0;
            bool possible = false;
            for (const geometry::Polygon* pg : wanted.polys) {
              PIET_ASSIGN_OR_RETURN(
                  bool hit, moving::PossiblyPassesThrough(sample, vmax, *pg));
              if (hit) {
                possible = true;
                break;
              }
            }
            if (possible) {
              chunk->out.push_back(oid);
            }
          }
          return Status::OK();
        }();
      },
      [&](IdChunk&& chunk) {
        stats_ += chunk.stats;
        if (failed.ok() && !chunk.status.ok()) {
          failed = chunk.status;
        }
        if (failed.ok()) {
          out.insert(out.end(), chunk.out.begin(), chunk.out.end());
        }
      });
  if (!failed.ok()) {
    return failed;
  }
  query_obs.set_rows_matched(out.size());
  return out;
}

Result<std::vector<ObjectId>> QueryEngine::ObjectsAlwaysWithin(
    const std::string& moft_name, const std::string& layer_name,
    const GeometryPredicate& pred, const TimePredicate& when,
    bool trajectory_semantics) const {
  stats_ = EngineStats{};
  QueryObs query_obs("objects_always_within", &stats_);
  PIET_ASSIGN_OR_RETURN(const Moft* moft, db_->GetMoft(moft_name));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, db_->gis().GetLayer(layer_name));
  PIET_ASSIGN_OR_RETURN(std::vector<GeometryId> qualifying,
                        QualifyingGeometries(layer_name, pred));
  const ResolvedPolygons wanted = ResolvePolygons(*layer, qualifying);
  const MoftColumns& cols = moft->Columns();

  struct IdChunk {
    std::vector<ObjectId> out;
    EngineStats stats;
    Status status;
  };
  std::vector<ObjectId> out;
  Status failed;
  parallel::OrderedReduce<IdChunk>(
      parallel::ResolveThreads(num_threads_), cols.spans.size(),
      [&](size_t /*chunk*/, size_t begin, size_t end, IdChunk* chunk) {
        chunk->status = [&]() -> Status {
          for (size_t i = begin; i < end; ++i) {
            const ObjectSpan span(&cols, cols.spans[i]);
            ObjectId oid = span.oid();
            bool ok = true;
            bool any = false;
            if (trajectory_semantics) {
              PIET_ASSIGN_OR_RETURN(TrajectorySample sample,
                                    TrajectorySample::FromSpan(span));
              PIET_ASSIGN_OR_RETURN(
                  LinearTrajectory traj,
                  LinearTrajectory::FromSample(std::move(sample)));
              Interval domain = traj.TimeDomain();
              PIET_ASSIGN_OR_RETURN(
                  IntervalSet time_ok,
                  MatchingTimeOf(when, db_->time_dimension(), domain));
              if (time_ok.empty()) {
                continue;
              }
              chunk->stats.legs_tested += traj.Legs().size();
              // Union of inside intervals over all qualifying polygons must
              // cover every time-matching instant of the domain.
              IntervalSet inside_union;
              for (const geometry::Polygon* pg : wanted.polys) {
                inside_union =
                    inside_union.Union(moving::InsideIntervals(traj, *pg));
              }
              IntervalSet required = time_ok;
              IntervalSet covered = required.Intersect(inside_union);
              any = !required.empty();
              ok = covered.TotalLength() >= required.TotalLength() - 1e-9 &&
                   covered.size() == required.size();
            } else {
              for (const Sample& s : span) {
                ++chunk->stats.samples_scanned;
                if (!when.Matches(db_->time_dimension(), s.t)) {
                  continue;
                }
                any = true;
                bool inside = false;
                for (const geometry::Polygon* pg : wanted.polys) {
                  ++chunk->stats.point_tests;
                  if (pg->Contains(s.pos)) {
                    inside = true;
                    break;
                  }
                }
                if (!inside) {
                  ok = false;
                  break;
                }
              }
            }
            if (ok && any) {
              chunk->out.push_back(oid);
            }
          }
          return Status::OK();
        }();
      },
      [&](IdChunk&& chunk) {
        stats_ += chunk.stats;
        if (failed.ok() && !chunk.status.ok()) {
          failed = chunk.status;
        }
        if (failed.ok()) {
          out.insert(out.end(), chunk.out.begin(), chunk.out.end());
        }
      });
  if (!failed.ok()) {
    return failed;
  }
  query_obs.set_rows_matched(out.size());
  return out;
}

}  // namespace piet::core
