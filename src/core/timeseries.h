#ifndef PIET_CORE_TIMESERIES_H_
#define PIET_CORE_TIMESERIES_H_

#include <string>

#include "common/result.h"
#include "olap/fact_table.h"
#include "temporal/interval.h"

namespace piet::core {

/// Time-series views over the region-C relations the engine produces — the
/// "per hour" family of the paper's queries generalized to arbitrary
/// bucket widths.

/// Buckets the rows of an event relation (one column holding instants in
/// seconds, e.g. SampleRegion's "t") into fixed windows of `bucket_width`
/// seconds and counts rows (or distinct values of `distinct_column` if
/// non-empty) per bucket. Output schema: (bucket_start, count), ordered by
/// bucket. Empty buckets between the first and last event are emitted with
/// count 0 so the series is gap-free.
Result<olap::FactTable> EventCountSeries(const olap::FactTable& events,
                                         const std::string& time_column,
                                         double bucket_width,
                                         const std::string& distinct_column =
                                             "");

/// Sweep-line occupancy over an interval relation (columns `enter_column`,
/// `leave_column` holding seconds, e.g. TrajectoryRegion's output): for
/// each bucket, the maximum number of simultaneously-present intervals —
/// "how many cars were in the region at once". Output schema:
/// (bucket_start, peak_occupancy), gap-free. Zero-length intervals count
/// as present at their instant.
Result<olap::FactTable> OccupancySeries(const olap::FactTable& intervals,
                                        const std::string& enter_column,
                                        const std::string& leave_column,
                                        double bucket_width);

/// The global peak occupancy and the instant at which it is first reached.
struct PeakOccupancy {
  int64_t peak = 0;
  double at_seconds = 0.0;
};
Result<PeakOccupancy> FindPeakOccupancy(const olap::FactTable& intervals,
                                        const std::string& enter_column,
                                        const std::string& leave_column);

}  // namespace piet::core

#endif  // PIET_CORE_TIMESERIES_H_
