#include "gis/instance.h"

#include <algorithm>

namespace piet::gis {

GisDimensionInstance::GisDimensionInstance(GisDimensionSchema schema)
    : schema_(std::move(schema)) {}

Status GisDimensionInstance::AddLayer(std::shared_ptr<Layer> layer) {
  if (!layer) {
    return Status::InvalidArgument("null layer");
  }
  PIET_ASSIGN_OR_RETURN(const GeometryGraph* graph,
                        schema_.GraphOf(layer->name()));
  if (!graph->HasNode(layer->kind())) {
    return Status::InvalidArgument(
        "layer '" + layer->name() + "' holds kind '" +
        std::string(GeometryKindToString(layer->kind())) +
        "' absent from its schema graph");
  }
  if (layers_.count(layer->name())) {
    return Status::AlreadyExists("layer '" + layer->name() +
                                 "' already registered");
  }
  layers_.emplace(layer->name(), std::move(layer));
  return Status::OK();
}

Result<const Layer*> GisDimensionInstance::GetLayer(
    const std::string& name) const {
  auto it = layers_.find(name);
  if (it == layers_.end()) {
    return Status::NotFound("no layer '" + name + "'");
  }
  return static_cast<const Layer*>(it->second.get());
}

Result<Layer*> GisDimensionInstance::GetMutableLayer(const std::string& name) {
  auto it = layers_.find(name);
  if (it == layers_.end()) {
    return Status::NotFound("no layer '" + name + "'");
  }
  return it->second.get();
}

std::vector<std::string> GisDimensionInstance::LayerNames() const {
  std::vector<std::string> out;
  out.reserve(layers_.size());
  for (const auto& [name, layer] : layers_) {
    out.push_back(name);
  }
  return out;
}

std::string GisDimensionInstance::RollupKey(const std::string& layer,
                                            GeometryKind fine,
                                            GeometryKind coarse) {
  return layer + "\x1f" + std::string(GeometryKindToString(fine)) + "\x1f" +
         std::string(GeometryKindToString(coarse));
}

Status GisDimensionInstance::AddGeometryRollup(const std::string& layer,
                                               GeometryKind fine,
                                               GeometryId fine_id,
                                               GeometryKind coarse,
                                               GeometryId coarse_id) {
  PIET_ASSIGN_OR_RETURN(const GeometryGraph* graph, schema_.GraphOf(layer));
  auto parents = graph->ParentsOf(fine);
  if (std::find(parents.begin(), parents.end(), coarse) == parents.end()) {
    return Status::InvalidArgument(
        "no edge " + std::string(GeometryKindToString(fine)) + "->" +
        std::string(GeometryKindToString(coarse)) + " in layer '" + layer +
        "'");
  }
  rollups_[RollupKey(layer, fine, coarse)].emplace_back(fine_id, coarse_id);
  return Status::OK();
}

Result<std::vector<GeometryId>> GisDimensionInstance::GeometryRollup(
    const std::string& layer, GeometryKind fine, GeometryId fine_id,
    GeometryKind coarse) const {
  auto it = rollups_.find(RollupKey(layer, fine, coarse));
  if (it == rollups_.end()) {
    return Status::NotFound("no rollup relation " +
                            std::string(GeometryKindToString(fine)) + "->" +
                            std::string(GeometryKindToString(coarse)) +
                            " in layer '" + layer + "'");
  }
  std::vector<GeometryId> out;
  for (const auto& [f, c] : it->second) {
    if (f == fine_id) {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<StoredRollup> GisDimensionInstance::StoredRollups() const {
  std::vector<StoredRollup> out;
  out.reserve(rollups_.size());
  for (const auto& [key, pairs] : rollups_) {
    // Keys are built by RollupKey as layer \x1f fine \x1f coarse.
    size_t first = key.find('\x1f');
    size_t second = key.find('\x1f', first + 1);
    if (first == std::string::npos || second == std::string::npos) {
      continue;
    }
    auto fine = GeometryKindFromString(key.substr(first + 1,
                                                  second - first - 1));
    auto coarse = GeometryKindFromString(key.substr(second + 1));
    if (!fine.ok() || !coarse.ok()) {
      continue;
    }
    out.push_back(StoredRollup{key.substr(0, first), fine.ValueOrDie(),
                               coarse.ValueOrDie(), &pairs});
  }
  return out;
}

Result<std::vector<GeometryId>> GisDimensionInstance::GeometryMembers(
    const std::string& layer, GeometryKind fine, GeometryKind coarse,
    GeometryId coarse_id) const {
  auto it = rollups_.find(RollupKey(layer, fine, coarse));
  if (it == rollups_.end()) {
    return Status::NotFound("no rollup relation in layer '" + layer + "'");
  }
  std::vector<GeometryId> out;
  for (const auto& [f, c] : it->second) {
    if (c == coarse_id) {
      out.push_back(f);
    }
  }
  return out;
}

Status GisDimensionInstance::BindAlpha(const std::string& attribute,
                                       const Value& member, GeometryId geom) {
  PIET_ASSIGN_OR_RETURN(AttributeBinding binding, schema_.AttOf(attribute));
  PIET_ASSIGN_OR_RETURN(const Layer* layer, GetLayer(binding.layer));
  PIET_RETURN_NOT_OK(layer->BoundsOf(geom).status().WithContext(
      "alpha binding for '" + attribute + "'"));
  AlphaMap& map = alphas_[attribute];
  auto it = map.forward.find(member);
  if (it != map.forward.end() && it->second != geom) {
    return Status::AlreadyExists("member " + member.ToString() +
                                 " already bound under '" + attribute + "'");
  }
  map.forward[member] = geom;
  map.inverse[geom] = member;
  return Status::OK();
}

Result<GeometryId> GisDimensionInstance::Alpha(const std::string& attribute,
                                               const Value& member) const {
  auto it = alphas_.find(attribute);
  if (it == alphas_.end()) {
    return Status::NotFound("no alpha bindings for '" + attribute + "'");
  }
  auto vit = it->second.forward.find(member);
  if (vit == it->second.forward.end()) {
    return Status::NotFound("member " + member.ToString() +
                            " not bound under '" + attribute + "'");
  }
  return vit->second;
}

Result<Value> GisDimensionInstance::AlphaInverse(const std::string& attribute,
                                                 GeometryId geom) const {
  auto it = alphas_.find(attribute);
  if (it == alphas_.end()) {
    return Status::NotFound("no alpha bindings for '" + attribute + "'");
  }
  auto git = it->second.inverse.find(geom);
  if (git == it->second.inverse.end()) {
    return Status::NotFound("geometry " + std::to_string(geom) +
                            " not bound under '" + attribute + "'");
  }
  return git->second;
}

Result<std::vector<Value>> GisDimensionInstance::AlphaMembers(
    const std::string& attribute) const {
  auto it = alphas_.find(attribute);
  if (it == alphas_.end()) {
    return Status::NotFound("no alpha bindings for '" + attribute + "'");
  }
  std::vector<Value> out;
  out.reserve(it->second.forward.size());
  for (const auto& [member, geom] : it->second.forward) {
    out.push_back(member);
  }
  return out;
}

Status GisDimensionInstance::AddApplicationInstance(
    olap::DimensionInstance instance) {
  Result<const olap::DimensionSchema*> declared =
      schema_.ApplicationDimension(instance.schema().name());
  if (!declared.ok()) {
    return Status::InvalidArgument("application dimension '" +
                                   instance.schema().name() +
                                   "' not declared in the GIS schema");
  }
  for (const auto& existing : app_instances_) {
    if (existing.schema().name() == instance.schema().name()) {
      return Status::AlreadyExists("application instance '" +
                                   instance.schema().name() +
                                   "' already added");
    }
  }
  app_instances_.push_back(std::move(instance));
  return Status::OK();
}

Result<const olap::DimensionInstance*> GisDimensionInstance::ApplicationInstance(
    const std::string& name) const {
  for (const auto& inst : app_instances_) {
    if (inst.schema().name() == name) {
      return &inst;
    }
  }
  return Status::NotFound("no application instance '" + name + "'");
}

Status GisDimensionInstance::CheckConsistency() const {
  PIET_RETURN_NOT_OK(schema_.Validate());
  // Every declared layer graph should have a registered layer.
  for (const std::string& name : schema_.LayerNames()) {
    if (!layers_.count(name)) {
      return Status::InvalidArgument("schema layer '" + name +
                                     "' has no registered layer instance");
    }
  }
  // Alpha bindings point at live geometries (checked at bind time, but the
  // layer may have been swapped; re-verify).
  for (const auto& [attribute, map] : alphas_) {
    PIET_ASSIGN_OR_RETURN(AttributeBinding binding, schema_.AttOf(attribute));
    PIET_ASSIGN_OR_RETURN(const Layer* layer, GetLayer(binding.layer));
    for (const auto& [member, geom] : map.forward) {
      PIET_RETURN_NOT_OK(layer->BoundsOf(geom).status().WithContext(
          "alpha binding '" + attribute + "' -> " + member.ToString()));
    }
  }
  for (const auto& inst : app_instances_) {
    PIET_RETURN_NOT_OK(inst.CheckConsistency());
  }
  return Status::OK();
}

}  // namespace piet::gis
