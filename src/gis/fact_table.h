#ifndef PIET_GIS_FACT_TABLE_H_
#define PIET_GIS_FACT_TABLE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "gis/instance.h"
#include "gis/layer.h"
#include "olap/aggregate.h"
#include "olap/fact_table.h"

namespace piet::gis {

/// A GIS fact table (Def. 3): measures attached to the elements of one
/// geometry level of one layer — schema FT = (G, L, M). (The *Base* fact
/// table, attached to the point level, is the DensityField interface.)
///
/// Beyond storage, this type implements the model's aggregation semantics:
/// measures roll up along the layer's geometry-composition relation
/// r^{Gj,Gk}_L (e.g. per-line lengths summed to per-polyline totals).
class GisFactTable {
 public:
  /// `layer` must outlive the table; its kind fixes the geometry level G.
  GisFactTable(const Layer* layer, std::vector<std::string> measures);

  const Layer& layer() const { return *layer_; }
  const std::vector<std::string>& measures() const { return measures_; }
  size_t num_facts() const { return facts_.size(); }

  /// Sets the measure vector of one geometry element (must exist in the
  /// layer; arity must match the schema). One fact per element.
  Status Set(GeometryId id, std::vector<double> values);

  /// The measures of one element.
  Result<const std::vector<double>*> Get(GeometryId id) const;

  /// One measure of one element.
  Result<double> Measure(GeometryId id, const std::string& measure) const;

  /// Aggregates one measure over a set of elements — the finite half of a
  /// summable geometric aggregation when C is a set of ids of this level.
  Result<double> Aggregate(const std::vector<GeometryId>& ids,
                           const std::string& measure,
                           olap::AggFunction fn) const;

  /// Rolls this table up along the stored relation fine->coarse of the GIS
  /// instance (Def. 2's r^{Gj,Gk}_L): each coarse element's measure is the
  /// `fn`-aggregate of its composing fine elements' measures. Returns a
  /// (coarse id -> value) relation as an olap::FactTable ("geom", measure).
  Result<olap::FactTable> RollUpAlongGeometry(
      const GisDimensionInstance& gis, GeometryKind coarse,
      const std::vector<GeometryId>& coarse_ids, const std::string& measure,
      olap::AggFunction fn) const;

  /// Renders as a classical fact table with schema (geom, layer, M...).
  olap::FactTable ToFactTable() const;

  /// Every layer element must carry a fact (totality, as Def. 3's function
  /// semantics require).
  Status CheckTotal() const;

 private:
  Result<size_t> MeasureIndex(const std::string& measure) const;

  const Layer* layer_;
  std::vector<std::string> measures_;
  std::map<GeometryId, std::vector<double>> facts_;
};

}  // namespace piet::gis

#endif  // PIET_GIS_FACT_TABLE_H_
