#ifndef PIET_GIS_SCHEMA_H_
#define PIET_GIS_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "gis/layer.h"
#include "olap/dimension.h"

namespace piet::gis {

/// The geometry-granularity graph H(L) of Def. 1: nodes are geometry kinds
/// present in the layer, edges (Gi -> Gj) mean Gj is composed of Gi
/// geometries. `point` is the unique source, `All` the unique sink.
class GeometryGraph {
 public:
  GeometryGraph();

  /// Adds an edge fine -> coarse (both nodes added implicitly).
  Status AddEdge(GeometryKind fine, GeometryKind coarse);

  bool HasNode(GeometryKind kind) const;
  std::vector<GeometryKind> ParentsOf(GeometryKind kind) const;

  /// True if `coarse` is reachable from `fine` (reflexive).
  bool RollsUp(GeometryKind fine, GeometryKind coarse) const;

  /// Validates Def. 1 (c)-(d): `point` has no incoming edges, `All` no
  /// outgoing edges, every node reaches All from point.
  Status Validate() const;

  const std::vector<std::pair<GeometryKind, GeometryKind>>& edges() const {
    return edges_;
  }

  /// The canonical polygon-layer graph: point -> polygon -> All.
  static GeometryGraph PolygonLayerGraph();
  /// The canonical polyline-layer graph: point -> line -> polyline -> All.
  static GeometryGraph PolylineLayerGraph();
  /// The canonical node-layer graph: point -> node -> All.
  static GeometryGraph NodeLayerGraph();

 private:
  std::vector<GeometryKind> nodes_;
  std::vector<std::pair<GeometryKind, GeometryKind>> edges_;
};

/// Where an application attribute attaches: Att(A) = (G, L) of Def. 1.
struct AttributeBinding {
  std::string attribute;   ///< e.g. "neighborhood"
  GeometryKind kind;       ///< e.g. kPolygon
  std::string layer;       ///< e.g. "Ln"
};

/// The GIS dimension schema Gsch = (H, A, D) of Def. 1: per-layer geometry
/// graphs, attribute bindings, and application dimension schemas.
class GisDimensionSchema {
 public:
  GisDimensionSchema() = default;

  Status AddLayerGraph(const std::string& layer, GeometryGraph graph);
  Status AddAttribute(const std::string& attribute, GeometryKind kind,
                      const std::string& layer);
  Status AddApplicationDimension(olap::DimensionSchema dimension);

  Result<const GeometryGraph*> GraphOf(const std::string& layer) const;
  Result<AttributeBinding> AttOf(const std::string& attribute) const;
  Result<const olap::DimensionSchema*> ApplicationDimension(
      const std::string& name) const;

  std::vector<std::string> LayerNames() const;
  const std::vector<AttributeBinding>& attributes() const {
    return attributes_;
  }
  const std::vector<olap::DimensionSchema>& application_dimensions() const {
    return app_dimensions_;
  }

  /// Validates every layer graph and application dimension schema, and that
  /// each attribute binds to a kind present in its layer's graph.
  Status Validate() const;

 private:
  std::map<std::string, GeometryGraph> graphs_;
  std::vector<AttributeBinding> attributes_;
  std::vector<olap::DimensionSchema> app_dimensions_;
};

}  // namespace piet::gis

#endif  // PIET_GIS_SCHEMA_H_
