#include "gis/schema.h"

#include <algorithm>

namespace piet::gis {

GeometryGraph::GeometryGraph() {
  nodes_.push_back(GeometryKind::kPoint);
  nodes_.push_back(GeometryKind::kAll);
}

Status GeometryGraph::AddEdge(GeometryKind fine, GeometryKind coarse) {
  if (fine == coarse) {
    return Status::InvalidArgument("self-loop in geometry graph");
  }
  if (coarse == GeometryKind::kPoint) {
    return Status::InvalidArgument("point must have no incoming edges");
  }
  if (fine == GeometryKind::kAll) {
    return Status::InvalidArgument("All must have no outgoing edges");
  }
  if (RollsUp(coarse, fine)) {
    return Status::InvalidArgument("geometry graph edge would create a cycle");
  }
  for (GeometryKind k : {fine, coarse}) {
    if (!HasNode(k)) {
      nodes_.push_back(k);
    }
  }
  if (std::find(edges_.begin(), edges_.end(), std::make_pair(fine, coarse)) ==
      edges_.end()) {
    edges_.emplace_back(fine, coarse);
  }
  return Status::OK();
}

bool GeometryGraph::HasNode(GeometryKind kind) const {
  return std::find(nodes_.begin(), nodes_.end(), kind) != nodes_.end();
}

std::vector<GeometryKind> GeometryGraph::ParentsOf(GeometryKind kind) const {
  std::vector<GeometryKind> out;
  for (const auto& [fine, coarse] : edges_) {
    if (fine == kind) {
      out.push_back(coarse);
    }
  }
  return out;
}

bool GeometryGraph::RollsUp(GeometryKind fine, GeometryKind coarse) const {
  if (fine == coarse) {
    return true;
  }
  std::vector<GeometryKind> frontier = {fine};
  std::vector<GeometryKind> seen = {fine};
  while (!frontier.empty()) {
    GeometryKind cur = frontier.back();
    frontier.pop_back();
    for (GeometryKind up : ParentsOf(cur)) {
      if (up == coarse) {
        return true;
      }
      if (std::find(seen.begin(), seen.end(), up) == seen.end()) {
        seen.push_back(up);
        frontier.push_back(up);
      }
    }
  }
  return false;
}

Status GeometryGraph::Validate() const {
  for (const auto& [fine, coarse] : edges_) {
    if (coarse == GeometryKind::kPoint) {
      return Status::InvalidArgument("point has an incoming edge");
    }
    if (fine == GeometryKind::kAll) {
      return Status::InvalidArgument("All has an outgoing edge");
    }
  }
  for (GeometryKind node : nodes_) {
    if (node == GeometryKind::kAll) {
      continue;
    }
    if (!RollsUp(node, GeometryKind::kAll)) {
      return Status::InvalidArgument(
          std::string("geometry kind '") +
          std::string(GeometryKindToString(node)) + "' does not reach All");
    }
    if (node != GeometryKind::kPoint &&
        !RollsUp(GeometryKind::kPoint, node)) {
      return Status::InvalidArgument(
          std::string("geometry kind '") +
          std::string(GeometryKindToString(node)) +
          "' is not reachable from point");
    }
  }
  return Status::OK();
}

GeometryGraph GeometryGraph::PolygonLayerGraph() {
  GeometryGraph g;
  (void)g.AddEdge(GeometryKind::kPoint, GeometryKind::kPolygon);
  (void)g.AddEdge(GeometryKind::kPolygon, GeometryKind::kAll);
  return g;
}

GeometryGraph GeometryGraph::PolylineLayerGraph() {
  GeometryGraph g;
  (void)g.AddEdge(GeometryKind::kPoint, GeometryKind::kLine);
  (void)g.AddEdge(GeometryKind::kLine, GeometryKind::kPolyline);
  (void)g.AddEdge(GeometryKind::kPolyline, GeometryKind::kAll);
  return g;
}

GeometryGraph GeometryGraph::NodeLayerGraph() {
  GeometryGraph g;
  (void)g.AddEdge(GeometryKind::kPoint, GeometryKind::kNode);
  (void)g.AddEdge(GeometryKind::kNode, GeometryKind::kAll);
  return g;
}

Status GisDimensionSchema::AddLayerGraph(const std::string& layer,
                                         GeometryGraph graph) {
  if (graphs_.count(layer)) {
    return Status::AlreadyExists("layer graph '" + layer + "' already added");
  }
  graphs_.emplace(layer, std::move(graph));
  return Status::OK();
}

Status GisDimensionSchema::AddAttribute(const std::string& attribute,
                                        GeometryKind kind,
                                        const std::string& layer) {
  for (const AttributeBinding& b : attributes_) {
    if (b.attribute == attribute) {
      return Status::AlreadyExists("attribute '" + attribute +
                                   "' already bound");
    }
  }
  attributes_.push_back({attribute, kind, layer});
  return Status::OK();
}

Status GisDimensionSchema::AddApplicationDimension(
    olap::DimensionSchema dimension) {
  for (const auto& d : app_dimensions_) {
    if (d.name() == dimension.name()) {
      return Status::AlreadyExists("application dimension '" + d.name() +
                                   "' already added");
    }
  }
  app_dimensions_.push_back(std::move(dimension));
  return Status::OK();
}

Result<const GeometryGraph*> GisDimensionSchema::GraphOf(
    const std::string& layer) const {
  auto it = graphs_.find(layer);
  if (it == graphs_.end()) {
    return Status::NotFound("no layer graph '" + layer + "'");
  }
  return &it->second;
}

Result<AttributeBinding> GisDimensionSchema::AttOf(
    const std::string& attribute) const {
  for (const AttributeBinding& b : attributes_) {
    if (b.attribute == attribute) {
      return b;
    }
  }
  return Status::NotFound("no attribute binding '" + attribute + "'");
}

Result<const olap::DimensionSchema*> GisDimensionSchema::ApplicationDimension(
    const std::string& name) const {
  for (const auto& d : app_dimensions_) {
    if (d.name() == name) {
      return &d;
    }
  }
  return Status::NotFound("no application dimension '" + name + "'");
}

std::vector<std::string> GisDimensionSchema::LayerNames() const {
  std::vector<std::string> out;
  out.reserve(graphs_.size());
  for (const auto& [name, graph] : graphs_) {
    out.push_back(name);
  }
  return out;
}

Status GisDimensionSchema::Validate() const {
  for (const auto& [name, graph] : graphs_) {
    PIET_RETURN_NOT_OK(graph.Validate().WithContext("layer '" + name + "'"));
  }
  for (const AttributeBinding& b : attributes_) {
    PIET_ASSIGN_OR_RETURN(const GeometryGraph* graph, GraphOf(b.layer));
    if (!graph->HasNode(b.kind)) {
      return Status::InvalidArgument(
          "attribute '" + b.attribute + "' binds to kind '" +
          std::string(GeometryKindToString(b.kind)) +
          "' absent from layer '" + b.layer + "'");
    }
  }
  for (const auto& d : app_dimensions_) {
    PIET_RETURN_NOT_OK(
        d.Validate().WithContext("application dimension '" + d.name() + "'"));
  }
  return Status::OK();
}

}  // namespace piet::gis
