#ifndef PIET_GIS_DENSITY_H_
#define PIET_GIS_DENSITY_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "gis/layer.h"
#include "geometry/polygon.h"

namespace piet::gis {

/// The measure function h(x, y) of Def. 4 (geometric aggregation), i.e. a
/// *Base GIS fact table* (Def. 3): measures attached to the point level,
/// finitely described. Integrals over regions realize the
/// ∫∫ δ_C(x,y) h(x,y) dx dy of the paper for two-dimensional parts of C.
class DensityField {
 public:
  virtual ~DensityField() = default;

  /// Density at a point.
  virtual double ValueAt(geometry::Point p) const = 0;

  /// ∫∫_polygon h dx dy. The default uses midpoint quadrature on a
  /// `resolution` x `resolution` grid over the polygon's bounds; subclasses
  /// override with exact formulas where available.
  virtual double IntegrateOverPolygon(const geometry::Polygon& polygon) const;

  /// Quadrature resolution for the default integrator.
  virtual int quadrature_resolution() const { return 128; }
};

/// h == c everywhere; integrals are exact (c * area).
class ConstantDensity : public DensityField {
 public:
  explicit ConstantDensity(double value) : value_(value) {}

  double ValueAt(geometry::Point) const override { return value_; }
  double IntegrateOverPolygon(const geometry::Polygon& polygon) const override {
    return value_ * polygon.Area();
  }

 private:
  double value_;
};

/// Piecewise-constant density over the polygons of a layer (e.g. population
/// density per neighborhood). Outside every polygon the density is 0; a
/// point on a shared boundary reads the first containing polygon.
///
/// Integration is exact when both the layer polygons and the query polygon
/// are convex (convex clipping); otherwise it falls back to quadrature.
class PerRegionDensity : public DensityField {
 public:
  /// `layer` must be a polygon layer and outlive this field; `densities`
  /// maps element index -> density value (aligned with layer->ids()).
  PerRegionDensity(const Layer* layer, std::vector<double> densities);

  double ValueAt(geometry::Point p) const override;
  double IntegrateOverPolygon(const geometry::Polygon& polygon) const override;

  /// Exact total mass: Σ density_i * area_i.
  double TotalMass() const;

 private:
  const Layer* layer_;
  std::vector<double> densities_;
};

}  // namespace piet::gis

#endif  // PIET_GIS_DENSITY_H_
