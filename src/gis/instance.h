#ifndef PIET_GIS_INSTANCE_H_
#define PIET_GIS_INSTANCE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "gis/layer.h"
#include "gis/schema.h"
#include "olap/dimension.h"

namespace piet::gis {

/// One stored rollup relation r^{Gj,Gk}_L, exposed for the model checker
/// (src/analysis): the edge it follows and the raw (fine, coarse) id pairs.
struct StoredRollup {
  std::string layer;
  GeometryKind fine = GeometryKind::kPoint;
  GeometryKind coarse = GeometryKind::kAll;
  const std::vector<std::pair<GeometryId, GeometryId>>* pairs = nullptr;
};

/// The GIS dimension instance of Def. 2: concrete layers (the geometric
/// part), stored rollup relations r^{Gj,Gk}_L between finite geometry
/// levels, the α functions binding application members to geometries, and
/// application dimension instances.
///
/// The point-level rollup r^{Pt,G}_L is *computed* (Layer point location);
/// rollups among finite levels (e.g. line -> polyline) are stored.
class GisDimensionInstance {
 public:
  explicit GisDimensionInstance(GisDimensionSchema schema);

  const GisDimensionSchema& schema() const { return schema_; }

  /// Registers a layer; its name must have a graph in the schema.
  Status AddLayer(std::shared_ptr<Layer> layer);

  Result<const Layer*> GetLayer(const std::string& name) const;
  Result<Layer*> GetMutableLayer(const std::string& name);
  std::vector<std::string> LayerNames() const;

  /// Stored rollup relation: element `fine_id` (of kind `fine`) composes
  /// into `coarse_id` (of kind `coarse`) in `layer`. The edge must exist in
  /// the layer's graph.
  Status AddGeometryRollup(const std::string& layer, GeometryKind fine,
                           GeometryId fine_id, GeometryKind coarse,
                           GeometryId coarse_id);

  /// All coarse ids that `fine_id` composes into along edge fine->coarse.
  Result<std::vector<GeometryId>> GeometryRollup(const std::string& layer,
                                                 GeometryKind fine,
                                                 GeometryId fine_id,
                                                 GeometryKind coarse) const;

  /// Every stored rollup relation, for well-formedness checking. The
  /// returned pair pointers borrow from this instance.
  std::vector<StoredRollup> StoredRollups() const;

  /// All fine ids composing `coarse_id` (inverse relation).
  Result<std::vector<GeometryId>> GeometryMembers(const std::string& layer,
                                                  GeometryKind fine,
                                                  GeometryKind coarse,
                                                  GeometryId coarse_id) const;

  /// The α function of Def. 2: binds application member `member` (at
  /// dimension level `attribute`, per the schema's Att) to geometry
  /// `geom` in the attribute's layer. One geometry per member.
  Status BindAlpha(const std::string& attribute, const Value& member,
                   GeometryId geom);

  /// α(attribute)(member) -> geometry id.
  Result<GeometryId> Alpha(const std::string& attribute,
                           const Value& member) const;

  /// Inverse α: the member bound to `geom` under `attribute`, if any.
  Result<Value> AlphaInverse(const std::string& attribute,
                             GeometryId geom) const;

  /// All members bound under `attribute`.
  Result<std::vector<Value>> AlphaMembers(const std::string& attribute) const;

  /// Application dimension instances (RUP of Def. 2).
  Status AddApplicationInstance(olap::DimensionInstance instance);
  Result<const olap::DimensionInstance*> ApplicationInstance(
      const std::string& name) const;

  /// Full Def. 2 consistency: schema validity, layer kinds matching their
  /// graphs, α bindings referencing existing geometries, stored rollups
  /// referencing existing elements, application instances consistent.
  Status CheckConsistency() const;

 private:
  struct AlphaMap {
    std::map<Value, GeometryId> forward;
    std::map<GeometryId, Value> inverse;
  };

  static std::string RollupKey(const std::string& layer, GeometryKind fine,
                               GeometryKind coarse);

  GisDimensionSchema schema_;
  std::map<std::string, std::shared_ptr<Layer>> layers_;
  std::map<std::string, std::vector<std::pair<GeometryId, GeometryId>>>
      rollups_;
  std::map<std::string, AlphaMap> alphas_;
  std::vector<olap::DimensionInstance> app_instances_;
};

}  // namespace piet::gis

#endif  // PIET_GIS_INSTANCE_H_
