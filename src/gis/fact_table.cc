#include "gis/fact_table.h"

#include <algorithm>

namespace piet::gis {

GisFactTable::GisFactTable(const Layer* layer,
                           std::vector<std::string> measures)
    : layer_(layer), measures_(std::move(measures)) {}

Result<size_t> GisFactTable::MeasureIndex(const std::string& measure) const {
  for (size_t i = 0; i < measures_.size(); ++i) {
    if (measures_[i] == measure) {
      return i;
    }
  }
  return Status::NotFound("no measure '" + measure + "'");
}

Status GisFactTable::Set(GeometryId id, std::vector<double> values) {
  PIET_RETURN_NOT_OK(layer_->BoundsOf(id).status().WithContext(
      "GIS fact for layer '" + layer_->name() + "'"));
  if (values.size() != measures_.size()) {
    return Status::InvalidArgument(
        "measure arity " + std::to_string(values.size()) + " != schema " +
        std::to_string(measures_.size()));
  }
  facts_[id] = std::move(values);
  return Status::OK();
}

Result<const std::vector<double>*> GisFactTable::Get(GeometryId id) const {
  auto it = facts_.find(id);
  if (it == facts_.end()) {
    return Status::NotFound("no fact for geometry " + std::to_string(id));
  }
  return &it->second;
}

Result<double> GisFactTable::Measure(GeometryId id,
                                     const std::string& measure) const {
  PIET_ASSIGN_OR_RETURN(size_t idx, MeasureIndex(measure));
  PIET_ASSIGN_OR_RETURN(const std::vector<double>* values, Get(id));
  return (*values)[idx];
}

Result<double> GisFactTable::Aggregate(const std::vector<GeometryId>& ids,
                                       const std::string& measure,
                                       olap::AggFunction fn) const {
  PIET_ASSIGN_OR_RETURN(size_t idx, MeasureIndex(measure));
  olap::Aggregator agg(fn);
  for (GeometryId id : ids) {
    PIET_ASSIGN_OR_RETURN(const std::vector<double>* values, Get(id));
    PIET_RETURN_NOT_OK(agg.Update(Value((*values)[idx])));
  }
  Value out = agg.Finish();
  if (out.is_null()) {
    return 0.0;
  }
  return out.AsNumeric();
}

Result<olap::FactTable> GisFactTable::RollUpAlongGeometry(
    const GisDimensionInstance& gis, GeometryKind coarse,
    const std::vector<GeometryId>& coarse_ids, const std::string& measure,
    olap::AggFunction fn) const {
  PIET_ASSIGN_OR_RETURN(size_t idx, MeasureIndex(measure));
  olap::FactTable out = olap::FactTable::Make({"geom"}, {measure});
  for (GeometryId coarse_id : coarse_ids) {
    PIET_ASSIGN_OR_RETURN(
        std::vector<GeometryId> members,
        gis.GeometryMembers(layer_->name(), layer_->kind(), coarse,
                            coarse_id));
    olap::Aggregator agg(fn);
    for (GeometryId fine : members) {
      PIET_ASSIGN_OR_RETURN(const std::vector<double>* values, Get(fine));
      PIET_RETURN_NOT_OK(agg.Update(Value((*values)[idx])));
    }
    PIET_RETURN_NOT_OK(out.Append({Value(coarse_id), agg.Finish()}));
  }
  return out;
}

olap::FactTable GisFactTable::ToFactTable() const {
  std::vector<std::string> dims = {"geom", "layer"};
  olap::FactTable out = olap::FactTable::Make(dims, measures_);
  for (const auto& [id, values] : facts_) {
    olap::Row row = {Value(id), Value(layer_->name())};
    for (double v : values) {
      row.push_back(Value(v));
    }
    (void)out.Append(std::move(row));
  }
  return out;
}

Status GisFactTable::CheckTotal() const {
  for (GeometryId id : layer_->ids()) {
    if (!facts_.count(id)) {
      return Status::InvalidArgument(
          "geometry " + std::to_string(id) + " of layer '" + layer_->name() +
          "' has no fact");
    }
  }
  return Status::OK();
}

}  // namespace piet::gis
