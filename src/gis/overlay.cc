#include "gis/overlay.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "geometry/clip.h"
#include "obs/metrics.h"

namespace piet::gis {

namespace {

/// One build counter/gauge flush, shared by both construction strategies.
void RecordOverlayBuild(size_t cells) {
  if (!obs::Enabled()) {
    return;
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("overlay.builds").Add(1);
  registry.GetGauge("overlay.cells").Set(static_cast<int64_t>(cells));
}

}  // namespace

using geometry::BoundingBox;
using geometry::MakeRectangle;
using geometry::Point;
using geometry::Polygon;
using geometry::Ring;

Result<OverlayDb> OverlayDb::BuildConvex(std::vector<const Layer*> layers,
                                         int threads) {
  obs::ScopedTimer build_timer(
      obs::Enabled()
          ? &obs::MetricsRegistry::Global().GetHistogram("overlay.build.latency")
          : nullptr);
  threads = parallel::ResolveThreads(threads);
  OverlayDb db;
  db.layers_ = std::move(layers);
  db.convex_exact_ = true;

  BoundingBox domain;
  for (const Layer* layer : db.layers_) {
    if (layer == nullptr) {
      return Status::InvalidArgument("null layer");
    }
    if (layer->kind() != GeometryKind::kPolygon) {
      return Status::InvalidArgument("convex overlay needs polygon layers; '" +
                                     layer->name() + "' is not one");
    }
    for (GeometryId id : layer->ids()) {
      PIET_ASSIGN_OR_RETURN(const Polygon* pg, layer->GetPolygon(id));
      if (!pg->IsConvex()) {
        return Status::InvalidArgument(
            "polygon " + std::to_string(id) + " of layer '" + layer->name() +
            "' is not convex; use BuildQuadtree");
      }
    }
    // The refinement loop probes the layer R-tree from worker threads; its
    // lazy first build must happen before the fan-out.
    layer->WarmIndex();
    domain.ExtendWith(layer->Bounds());
  }
  if (db.layers_.empty() || domain.empty()) {
    return Status::InvalidArgument("convex overlay needs at least one layer");
  }

  // Seed cells from the first layer's polygons.
  const Layer* first = db.layers_[0];
  for (GeometryId id : first->ids()) {
    PIET_ASSIGN_OR_RETURN(const Polygon* pg, first->GetPolygon(id));
    Cell cell;
    cell.polygon = *pg;
    cell.covered.push_back({0, id});
    db.cells_.push_back(std::move(cell));
  }

  // Refine against each subsequent layer. Each layer must tile the current
  // cells (partition semantics); the area check below enforces it. Cells
  // are refined per chunk with private output buffers; merging in chunk
  // order keeps the cell sequence identical to serial execution.
  for (size_t li = 1; li < db.layers_.size(); ++li) {
    const Layer* layer = db.layers_[li];
    struct ChunkOut {
      std::vector<Cell> next;
      Status status = Status::OK();
    };
    std::vector<Cell> merged;
    Status failed = Status::OK();
    parallel::OrderedReduce<ChunkOut>(
        threads, db.cells_.size(),
        [&](size_t /*chunk*/, size_t begin, size_t end, ChunkOut* out) {
          for (size_t ci = begin; ci < end; ++ci) {
            Cell& cell = db.cells_[ci];
            double cell_area = cell.polygon.Area();
            double covered_area = 0.0;
            for (GeometryId id :
                 layer->CandidatesInBox(cell.polygon.Bounds())) {
              auto pg = layer->GetPolygon(id);
              if (!pg.ok()) {
                out->status = pg.status();
                return;
              }
              std::optional<Ring> piece = geometry::ClipRingToConvex(
                  cell.polygon.shell(), pg.ValueOrDie()->shell());
              if (!piece) {
                continue;
              }
              Cell sub;
              sub.polygon = Polygon(std::move(*piece));
              covered_area += sub.polygon.Area();
              sub.covered = cell.covered;
              sub.covered.push_back({li, id});
              out->next.push_back(std::move(sub));
            }
            if (covered_area < cell_area * (1.0 - 1e-6)) {
              out->status = Status::InvalidArgument(
                  "layer '" + layer->name() +
                  "' does not tile an overlay cell (partition layers "
                  "required); use BuildQuadtree");
              return;
            }
          }
        },
        [&](ChunkOut&& out) {
          if (failed.ok() && !out.status.ok()) {
            failed = out.status;
          }
          for (Cell& cell : out.next) {
            merged.push_back(std::move(cell));
          }
        });
    if (!failed.ok()) {
      return failed;
    }
    db.cells_ = std::move(merged);
  }

  db.ResolveCandidatePolygons();
  db.BuildCellIndex();
  RecordOverlayBuild(db.cells_.size());
  return db;
}

Result<OverlayDb> OverlayDb::BuildQuadtree(std::vector<const Layer*> layers,
                                           int max_depth, int threads) {
  obs::ScopedTimer build_timer(
      obs::Enabled()
          ? &obs::MetricsRegistry::Global().GetHistogram("overlay.build.latency")
          : nullptr);
  threads = parallel::ResolveThreads(threads);
  OverlayDb db;
  db.layers_ = std::move(layers);
  db.convex_exact_ = false;

  BoundingBox domain;
  for (const Layer* layer : db.layers_) {
    if (layer == nullptr) {
      return Status::InvalidArgument("null layer");
    }
    if (layer->kind() != GeometryKind::kPolygon) {
      return Status::InvalidArgument("overlay needs polygon layers; '" +
                                     layer->name() + "' is not one");
    }
    domain.ExtendWith(layer->Bounds());
  }
  if (db.layers_.empty() || domain.empty()) {
    return Status::InvalidArgument("overlay needs at least one layer");
  }

  struct Work {
    BoundingBox box;
    std::vector<OverlayLabel> covered;
    std::vector<OverlayLabel> candidates;
    int depth = 0;
  };

  Work root;
  root.box = domain;
  root.depth = 0;
  for (size_t li = 0; li < db.layers_.size(); ++li) {
    for (GeometryId id : db.layers_[li]->ids()) {
      root.candidates.push_back({li, id});
    }
  }

  // Level-synchronous refinement: every node of the current frontier runs
  // the containment tests independently; heterogeneous nodes spawn their
  // four children into the next frontier. Chunk boundaries depend only on
  // the frontier size and per-chunk outputs merge in chunk order, so both
  // the emitted cell sequence and the child order are thread-count
  // independent.
  std::vector<Work> frontier;
  frontier.push_back(std::move(root));
  while (!frontier.empty()) {
    struct ChunkOut {
      std::vector<Cell> cells;
      std::vector<Work> children;
    };
    std::vector<Work> next_frontier;
    parallel::OrderedReduce<ChunkOut>(
        threads, frontier.size(),
        [&](size_t /*chunk*/, size_t begin, size_t end, ChunkOut* out) {
          for (size_t wi = begin; wi < end; ++wi) {
            Work& w = frontier[wi];
            Polygon rect = MakeRectangle(w.box.min_x, w.box.min_y,
                                         w.box.max_x, w.box.max_y);

            std::vector<OverlayLabel> still;
            for (const OverlayLabel& cand : w.candidates) {
              auto pg = db.layers_[cand.layer]->GetPolygon(cand.geom);
              if (!pg.ok()) {
                continue;
              }
              const Polygon& poly = *pg.ValueOrDie();
              if (!poly.Bounds().Intersects(w.box)) {
                continue;
              }
              if (poly.ContainsPolygon(rect)) {
                w.covered.push_back(cand);
              } else if (poly.Intersects(rect)) {
                still.push_back(cand);
              }
            }
            w.candidates = std::move(still);

            if (!w.candidates.empty() && w.depth < max_depth) {
              double mx = (w.box.min_x + w.box.max_x) / 2.0;
              double my = (w.box.min_y + w.box.max_y) / 2.0;
              BoundingBox quads[4] = {
                  BoundingBox(w.box.min_x, w.box.min_y, mx, my),
                  BoundingBox(mx, w.box.min_y, w.box.max_x, my),
                  BoundingBox(w.box.min_x, my, mx, w.box.max_y),
                  BoundingBox(mx, my, w.box.max_x, w.box.max_y),
              };
              for (const BoundingBox& q : quads) {
                Work child;
                child.box = q;
                child.covered = w.covered;
                child.candidates = w.candidates;
                child.depth = w.depth + 1;
                out->children.push_back(std::move(child));
              }
              continue;
            }

            Cell cell;
            cell.polygon = MakeRectangle(w.box.min_x, w.box.min_y,
                                         w.box.max_x, w.box.max_y);
            cell.covered = std::move(w.covered);
            cell.candidates = std::move(w.candidates);
            out->cells.push_back(std::move(cell));
          }
        },
        [&](ChunkOut&& out) {
          for (Cell& cell : out.cells) {
            db.cells_.push_back(std::move(cell));
          }
          for (Work& child : out.children) {
            next_frontier.push_back(std::move(child));
          }
        });
    frontier = std::move(next_frontier);
  }

  db.ResolveCandidatePolygons();
  db.BuildCellIndex();
  RecordOverlayBuild(db.cells_.size());
  return db;
}

void OverlayDb::ResolveCandidatePolygons() {
  for (Cell& cell : cells_) {
    cell.candidate_polys.clear();
    cell.candidate_polys.reserve(cell.candidates.size());
    for (const OverlayLabel& cand : cell.candidates) {
      auto pg = layers_[cand.layer]->GetPolygon(cand.geom);
      cell.candidate_polys.push_back(pg.ok() ? pg.ValueOrDie() : nullptr);
    }
  }
}

void OverlayDb::BuildCellIndex() {
  BoundingBox domain;
  for (const Cell& cell : cells_) {
    domain.ExtendWith(cell.polygon.Bounds());
  }
  size_t n = static_cast<size_t>(
      std::max(1.0, std::sqrt(static_cast<double>(cells_.size()))));
  cell_index_ = std::make_unique<index::GridIndex>(domain, n);
  for (size_t i = 0; i < cells_.size(); ++i) {
    cell_index_->Insert(cells_[i].polygon.Bounds(),
                        static_cast<index::GridIndex::Id>(i));
  }
}

OverlayHit OverlayDb::Locate(Point p) const {
  OverlayHit hit;
  hit.per_layer.resize(layers_.size());
  if (!cell_index_) {
    return hit;
  }
  std::vector<OverlayLabel> labels;
  cell_index_->VisitPoint(p, [&](index::GridIndex::Id raw) {
    const Cell& cell = cells_[static_cast<size_t>(raw)];
    if (!cell.polygon.Contains(p)) {
      return;
    }
    for (const OverlayLabel& label : cell.covered) {
      labels.push_back(label);
    }
    for (size_t i = 0; i < cell.candidates.size(); ++i) {
      const Polygon* pg = cell.candidate_polys[i];
      if (pg != nullptr && pg->Contains(p)) {
        labels.push_back(cell.candidates[i]);
      }
    }
  });
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  for (const OverlayLabel& label : labels) {
    hit.per_layer[label.layer].push_back(label.geom);
  }
  return hit;
}

std::vector<GeometryId> OverlayDb::LocateInLayer(Point p, size_t layer) const {
  std::vector<GeometryId> out;
  LocateInLayerInto(p, layer, &out);
  return out;
}

void OverlayDb::LocateInLayerInto(Point p, size_t layer,
                                  std::vector<GeometryId>* out,
                                  LocateWork* work) const {
  out->clear();
  if (!cell_index_ || layer >= layers_.size()) {
    return;
  }
  cell_index_->VisitPoint(p, [&](index::GridIndex::Id raw) {
    const Cell& cell = cells_[static_cast<size_t>(raw)];
    if (work != nullptr) {
      ++work->cells_visited;
    }
    if (!cell.polygon.Contains(p)) {
      return;
    }
    for (const OverlayLabel& label : cell.covered) {
      if (label.layer == layer) {
        out->push_back(label.geom);
      }
    }
    for (size_t i = 0; i < cell.candidates.size(); ++i) {
      if (cell.candidates[i].layer != layer) {
        continue;
      }
      if (work != nullptr) {
        ++work->candidates_tested;
      }
      const Polygon* pg = cell.candidate_polys[i];
      if (pg != nullptr && pg->Contains(p)) {
        out->push_back(cell.candidates[i].geom);
      }
    }
  });
  // A point on a shared cell border is reported by every adjacent cell;
  // dedup only when more than one id was collected (the common case is 1).
  if (out->size() > 1) {
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
  }
}

BatchHits OverlayDb::LocateBatch(std::span<const Point> points, size_t layer,
                                 int threads) const {
  threads = parallel::ResolveThreads(threads);
  BatchHits out;
  out.offsets.reserve(points.size() + 1);
  out.offsets.push_back(0);

  // Per-chunk hits with chunk-local offsets; the ordered merge rebases
  // them, so the flat result is independent of the thread count. Work
  // counters accumulate chunk-locally and flush once per batch, keeping
  // the per-point loop free of shared writes.
  const bool observed = obs::Enabled();
  LocateWork total_work;
  struct ChunkOut {
    std::vector<uint32_t> counts;
    std::vector<GeometryId> ids;
    LocateWork work;
  };
  parallel::OrderedReduce<ChunkOut>(
      threads, points.size(),
      [&](size_t /*chunk*/, size_t begin, size_t end, ChunkOut* chunk_out) {
        chunk_out->counts.reserve(end - begin);
        std::vector<GeometryId> hits;  // One scratch buffer per chunk.
        LocateWork* work = observed ? &chunk_out->work : nullptr;
        for (size_t i = begin; i < end; ++i) {
          LocateInLayerInto(points[i], layer, &hits, work);
          chunk_out->counts.push_back(static_cast<uint32_t>(hits.size()));
          chunk_out->ids.insert(chunk_out->ids.end(), hits.begin(),
                                hits.end());
        }
      },
      [&](ChunkOut&& chunk_out) {
        uint32_t base = out.offsets.back();
        for (uint32_t count : chunk_out.counts) {
          base += count;
          out.offsets.push_back(base);
        }
        out.ids.insert(out.ids.end(), chunk_out.ids.begin(),
                       chunk_out.ids.end());
        total_work += chunk_out.work;
      });
  if (observed) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("overlay.locate.points")
        .Add(static_cast<int64_t>(points.size()));
    registry.GetCounter("overlay.locate.cells_visited")
        .Add(static_cast<int64_t>(total_work.cells_visited));
    registry.GetCounter("overlay.locate.candidates_tested")
        .Add(static_cast<int64_t>(total_work.candidates_tested));
  }
  return out;
}

}  // namespace piet::gis
