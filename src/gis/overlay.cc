#include "gis/overlay.h"

#include <algorithm>
#include <cmath>

#include "geometry/clip.h"

namespace piet::gis {

using geometry::BoundingBox;
using geometry::MakeRectangle;
using geometry::Point;
using geometry::Polygon;
using geometry::Ring;

Result<OverlayDb> OverlayDb::BuildConvex(std::vector<const Layer*> layers) {
  OverlayDb db;
  db.layers_ = std::move(layers);
  db.convex_exact_ = true;

  BoundingBox domain;
  for (const Layer* layer : db.layers_) {
    if (layer == nullptr) {
      return Status::InvalidArgument("null layer");
    }
    if (layer->kind() != GeometryKind::kPolygon) {
      return Status::InvalidArgument("convex overlay needs polygon layers; '" +
                                     layer->name() + "' is not one");
    }
    for (GeometryId id : layer->ids()) {
      PIET_ASSIGN_OR_RETURN(const Polygon* pg, layer->GetPolygon(id));
      if (!pg->IsConvex()) {
        return Status::InvalidArgument(
            "polygon " + std::to_string(id) + " of layer '" + layer->name() +
            "' is not convex; use BuildQuadtree");
      }
    }
    domain.ExtendWith(layer->Bounds());
  }
  if (db.layers_.empty() || domain.empty()) {
    return Status::InvalidArgument("convex overlay needs at least one layer");
  }

  // Seed cells from the first layer's polygons.
  const Layer* first = db.layers_[0];
  for (GeometryId id : first->ids()) {
    PIET_ASSIGN_OR_RETURN(const Polygon* pg, first->GetPolygon(id));
    Cell cell;
    cell.polygon = *pg;
    cell.covered.push_back({0, id});
    db.cells_.push_back(std::move(cell));
  }

  // Refine against each subsequent layer. Each layer must tile the current
  // cells (partition semantics); the area check below enforces it.
  for (size_t li = 1; li < db.layers_.size(); ++li) {
    const Layer* layer = db.layers_[li];
    std::vector<Cell> next;
    for (Cell& cell : db.cells_) {
      double cell_area = cell.polygon.Area();
      double covered_area = 0.0;
      for (GeometryId id : layer->CandidatesInBox(cell.polygon.Bounds())) {
        PIET_ASSIGN_OR_RETURN(const Polygon* pg, layer->GetPolygon(id));
        std::optional<Ring> piece =
            geometry::ClipRingToConvex(cell.polygon.shell(), pg->shell());
        if (!piece) {
          continue;
        }
        Cell sub;
        sub.polygon = Polygon(std::move(*piece));
        covered_area += sub.polygon.Area();
        sub.covered = cell.covered;
        sub.covered.push_back({li, id});
        next.push_back(std::move(sub));
      }
      if (covered_area < cell_area * (1.0 - 1e-6)) {
        return Status::InvalidArgument(
            "layer '" + layer->name() +
            "' does not tile an overlay cell (partition layers required); "
            "use BuildQuadtree");
      }
    }
    db.cells_ = std::move(next);
  }

  db.BuildCellIndex();
  return db;
}

Result<OverlayDb> OverlayDb::BuildQuadtree(std::vector<const Layer*> layers,
                                           int max_depth) {
  OverlayDb db;
  db.layers_ = std::move(layers);
  db.convex_exact_ = false;

  BoundingBox domain;
  for (const Layer* layer : db.layers_) {
    if (layer == nullptr) {
      return Status::InvalidArgument("null layer");
    }
    if (layer->kind() != GeometryKind::kPolygon) {
      return Status::InvalidArgument("overlay needs polygon layers; '" +
                                     layer->name() + "' is not one");
    }
    domain.ExtendWith(layer->Bounds());
  }
  if (db.layers_.empty() || domain.empty()) {
    return Status::InvalidArgument("overlay needs at least one layer");
  }

  struct Work {
    BoundingBox box;
    std::vector<OverlayLabel> covered;
    std::vector<OverlayLabel> candidates;
    int depth;
  };

  Work root;
  root.box = domain;
  root.depth = 0;
  for (size_t li = 0; li < db.layers_.size(); ++li) {
    for (GeometryId id : db.layers_[li]->ids()) {
      root.candidates.push_back({li, id});
    }
  }

  std::vector<Work> stack = {std::move(root)};
  while (!stack.empty()) {
    Work w = std::move(stack.back());
    stack.pop_back();

    Polygon rect =
        MakeRectangle(w.box.min_x, w.box.min_y, w.box.max_x, w.box.max_y);

    std::vector<OverlayLabel> still;
    for (const OverlayLabel& cand : w.candidates) {
      auto pg = db.layers_[cand.layer]->GetPolygon(cand.geom);
      if (!pg.ok()) {
        continue;
      }
      const Polygon& poly = *pg.ValueOrDie();
      if (!poly.Bounds().Intersects(w.box)) {
        continue;
      }
      if (poly.ContainsPolygon(rect)) {
        w.covered.push_back(cand);
      } else if (poly.Intersects(rect)) {
        still.push_back(cand);
      }
    }
    w.candidates = std::move(still);

    if (!w.candidates.empty() && w.depth < max_depth) {
      double mx = (w.box.min_x + w.box.max_x) / 2.0;
      double my = (w.box.min_y + w.box.max_y) / 2.0;
      BoundingBox quads[4] = {
          BoundingBox(w.box.min_x, w.box.min_y, mx, my),
          BoundingBox(mx, w.box.min_y, w.box.max_x, my),
          BoundingBox(w.box.min_x, my, mx, w.box.max_y),
          BoundingBox(mx, my, w.box.max_x, w.box.max_y),
      };
      for (const BoundingBox& q : quads) {
        Work child;
        child.box = q;
        child.covered = w.covered;
        child.candidates = w.candidates;
        child.depth = w.depth + 1;
        stack.push_back(std::move(child));
      }
      continue;
    }

    Cell cell;
    cell.polygon =
        MakeRectangle(w.box.min_x, w.box.min_y, w.box.max_x, w.box.max_y);
    cell.covered = std::move(w.covered);
    cell.candidates = std::move(w.candidates);
    db.cells_.push_back(std::move(cell));
  }

  db.BuildCellIndex();
  return db;
}

void OverlayDb::BuildCellIndex() {
  BoundingBox domain;
  for (const Cell& cell : cells_) {
    domain.ExtendWith(cell.polygon.Bounds());
  }
  size_t n = static_cast<size_t>(
      std::max(1.0, std::sqrt(static_cast<double>(cells_.size()))));
  cell_index_ = std::make_unique<index::GridIndex>(domain, n);
  for (size_t i = 0; i < cells_.size(); ++i) {
    cell_index_->Insert(cells_[i].polygon.Bounds(),
                        static_cast<index::GridIndex::Id>(i));
  }
}

OverlayHit OverlayDb::Locate(Point p) const {
  OverlayHit hit;
  hit.per_layer.resize(layers_.size());
  if (!cell_index_) {
    return hit;
  }
  std::vector<OverlayLabel> labels;
  for (index::GridIndex::Id raw : cell_index_->SearchPoint(p)) {
    const Cell& cell = cells_[static_cast<size_t>(raw)];
    if (!cell.polygon.Contains(p)) {
      continue;
    }
    for (const OverlayLabel& label : cell.covered) {
      labels.push_back(label);
    }
    for (const OverlayLabel& cand : cell.candidates) {
      auto pg = layers_[cand.layer]->GetPolygon(cand.geom);
      if (pg.ok() && pg.ValueOrDie()->Contains(p)) {
        labels.push_back(cand);
      }
    }
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  for (const OverlayLabel& label : labels) {
    hit.per_layer[label.layer].push_back(label.geom);
  }
  return hit;
}

std::vector<GeometryId> OverlayDb::LocateInLayer(Point p, size_t layer) const {
  std::vector<GeometryId> out;
  LocateInLayerInto(p, layer, &out);
  return out;
}

void OverlayDb::LocateInLayerInto(Point p, size_t layer,
                                  std::vector<GeometryId>* out) const {
  out->clear();
  if (!cell_index_ || layer >= layers_.size()) {
    return;
  }
  cell_index_->VisitPoint(p, [&](index::GridIndex::Id raw) {
    const Cell& cell = cells_[static_cast<size_t>(raw)];
    if (!cell.polygon.Contains(p)) {
      return;
    }
    for (const OverlayLabel& label : cell.covered) {
      if (label.layer == layer) {
        out->push_back(label.geom);
      }
    }
    for (const OverlayLabel& cand : cell.candidates) {
      if (cand.layer != layer) {
        continue;
      }
      auto pg = layers_[cand.layer]->GetPolygon(cand.geom);
      if (pg.ok() && pg.ValueOrDie()->Contains(p)) {
        out->push_back(cand.geom);
      }
    }
  });
  // A point on a shared cell border is reported by every adjacent cell;
  // dedup only when more than one id was collected (the common case is 1).
  if (out->size() > 1) {
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
  }
}

}  // namespace piet::gis
