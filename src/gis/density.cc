#include "gis/density.h"

#include "geometry/clip.h"

namespace piet::gis {

using geometry::BoundingBox;
using geometry::Point;
using geometry::Polygon;

double DensityField::IntegrateOverPolygon(const Polygon& polygon) const {
  BoundingBox box = polygon.Bounds();
  if (box.empty()) {
    return 0.0;
  }
  int n = quadrature_resolution();
  double dx = box.width() / n;
  double dy = box.height() / n;
  if (dx == 0.0 || dy == 0.0) {
    return 0.0;
  }
  double total = 0.0;
  for (int iy = 0; iy < n; ++iy) {
    double y = box.min_y + (iy + 0.5) * dy;
    for (int ix = 0; ix < n; ++ix) {
      Point p(box.min_x + (ix + 0.5) * dx, y);
      if (polygon.Contains(p)) {
        total += ValueAt(p);
      }
    }
  }
  return total * dx * dy;
}

PerRegionDensity::PerRegionDensity(const Layer* layer,
                                   std::vector<double> densities)
    : layer_(layer), densities_(std::move(densities)) {
  densities_.resize(layer_->size(), 0.0);
}

double PerRegionDensity::ValueAt(Point p) const {
  std::vector<GeometryId> hits = layer_->GeometriesContaining(p);
  if (hits.empty()) {
    return 0.0;
  }
  return densities_[static_cast<size_t>(hits.front())];
}

double PerRegionDensity::IntegrateOverPolygon(const Polygon& polygon) const {
  // Exact path: convex query against convex layer polygons.
  bool exact = polygon.IsConvex();
  double total = 0.0;
  for (GeometryId id : layer_->CandidatesInBox(polygon.Bounds())) {
    auto cell = layer_->GetPolygon(id);
    if (!cell.ok()) {
      continue;
    }
    double d = densities_[static_cast<size_t>(id)];
    if (d == 0.0) {
      continue;
    }
    if (exact && cell.ValueOrDie()->IsConvex()) {
      total += d * geometry::ConvexIntersectionArea(*cell.ValueOrDie(),
                                                    polygon);
    } else {
      // Quadrature restricted to this cell: integrate the indicator of
      // (cell ∩ polygon) times d.
      const Polygon& cp = *cell.ValueOrDie();
      BoundingBox box = cp.Bounds().Intersection(polygon.Bounds());
      if (box.empty()) {
        continue;
      }
      int n = quadrature_resolution();
      double dx = box.width() / n;
      double dy = box.height() / n;
      if (dx == 0.0 || dy == 0.0) {
        continue;
      }
      double mass = 0.0;
      for (int iy = 0; iy < n; ++iy) {
        double y = box.min_y + (iy + 0.5) * dy;
        for (int ix = 0; ix < n; ++ix) {
          Point p(box.min_x + (ix + 0.5) * dx, y);
          if (cp.Contains(p) && polygon.Contains(p)) {
            mass += 1.0;
          }
        }
      }
      total += d * mass * dx * dy;
    }
  }
  return total;
}

double PerRegionDensity::TotalMass() const {
  double total = 0.0;
  for (GeometryId id : layer_->ids()) {
    auto cell = layer_->GetPolygon(id);
    if (cell.ok()) {
      total += densities_[static_cast<size_t>(id)] * cell.ValueOrDie()->Area();
    }
  }
  return total;
}

}  // namespace piet::gis
