#ifndef PIET_GIS_IO_H_
#define PIET_GIS_IO_H_

#include <iosfwd>
#include <memory>

#include "common/result.h"
#include "gis/layer.h"

namespace piet::gis {

/// Text persistence for thematic layers: a line-oriented format with WKT
/// geometries and typed attributes, round-trip safe. Format:
///
///   # piet-layer v1
///   layer <name> <kind>
///   elem <wkt> \t key=<t>:<value> \t ...
///
/// where <t> is i (int), d (double), s (string, backslash-escaped), or
/// b (bool). Element ids are assigned in file order (they are dense in a
/// Layer by construction).
Status WriteLayer(const Layer& layer, std::ostream& out);

/// Reads a layer written by WriteLayer.
Result<std::shared_ptr<Layer>> ReadLayer(std::istream& in);

}  // namespace piet::gis

#endif  // PIET_GIS_IO_H_
