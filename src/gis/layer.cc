#include "gis/layer.h"

#include "common/string_util.h"

namespace piet::gis {

using geometry::BoundingBox;
using geometry::Point;
using geometry::Polygon;
using geometry::Polyline;

std::string_view GeometryKindToString(GeometryKind kind) {
  switch (kind) {
    case GeometryKind::kPoint:
      return "point";
    case GeometryKind::kNode:
      return "node";
    case GeometryKind::kLine:
      return "line";
    case GeometryKind::kPolyline:
      return "polyline";
    case GeometryKind::kPolygon:
      return "polygon";
    case GeometryKind::kAll:
      return "All";
  }
  return "unknown";
}

Result<GeometryKind> GeometryKindFromString(std::string_view name) {
  if (EqualsIgnoreCase(name, "point")) {
    return GeometryKind::kPoint;
  }
  if (EqualsIgnoreCase(name, "node")) {
    return GeometryKind::kNode;
  }
  if (EqualsIgnoreCase(name, "line")) {
    return GeometryKind::kLine;
  }
  if (EqualsIgnoreCase(name, "polyline")) {
    return GeometryKind::kPolyline;
  }
  if (EqualsIgnoreCase(name, "polygon")) {
    return GeometryKind::kPolygon;
  }
  if (EqualsIgnoreCase(name, "all")) {
    return GeometryKind::kAll;
  }
  return Status::ParseError("unknown geometry kind '" + std::string(name) +
                            "'");
}

Layer::Layer(std::string name, GeometryKind kind)
    : name_(std::move(name)), kind_(kind) {}

Result<GeometryId> Layer::AddPoint(Point p) {
  if (kind_ != GeometryKind::kPoint && kind_ != GeometryKind::kNode) {
    return Status::TypeError("layer '" + name_ + "' does not hold points");
  }
  GeometryId id = static_cast<GeometryId>(ids_.size());
  ids_.push_back(id);
  points_.push_back(p);
  attributes_.emplace_back();
  bounds_.ExtendWith(p);
  rtree_.reset();
  return id;
}

Result<GeometryId> Layer::AddPolyline(Polyline line) {
  if (kind_ != GeometryKind::kLine && kind_ != GeometryKind::kPolyline) {
    return Status::TypeError("layer '" + name_ + "' does not hold polylines");
  }
  GeometryId id = static_cast<GeometryId>(ids_.size());
  ids_.push_back(id);
  bounds_.ExtendWith(line.Bounds());
  polylines_.push_back(std::move(line));
  attributes_.emplace_back();
  rtree_.reset();
  return id;
}

Result<GeometryId> Layer::AddPolygon(Polygon polygon) {
  if (kind_ != GeometryKind::kPolygon) {
    return Status::TypeError("layer '" + name_ + "' does not hold polygons");
  }
  GeometryId id = static_cast<GeometryId>(ids_.size());
  ids_.push_back(id);
  bounds_.ExtendWith(polygon.Bounds());
  polygons_.push_back(std::move(polygon));
  attributes_.emplace_back();
  rtree_.reset();
  return id;
}

Result<Point> Layer::GetPoint(GeometryId id) const {
  if (id < 0 || static_cast<size_t>(id) >= points_.size()) {
    return Status::NotFound("no point " + std::to_string(id) + " in layer '" +
                            name_ + "'");
  }
  return points_[static_cast<size_t>(id)];
}

Result<const Polyline*> Layer::GetPolyline(GeometryId id) const {
  if (id < 0 || static_cast<size_t>(id) >= polylines_.size()) {
    return Status::NotFound("no polyline " + std::to_string(id) +
                            " in layer '" + name_ + "'");
  }
  return &polylines_[static_cast<size_t>(id)];
}

Result<const Polygon*> Layer::GetPolygon(GeometryId id) const {
  if (id < 0 || static_cast<size_t>(id) >= polygons_.size()) {
    return Status::NotFound("no polygon " + std::to_string(id) +
                            " in layer '" + name_ + "'");
  }
  return &polygons_[static_cast<size_t>(id)];
}

Status Layer::SetAttribute(GeometryId id, const std::string& attr,
                           Value value) {
  if (id < 0 || static_cast<size_t>(id) >= attributes_.size()) {
    return Status::NotFound("no element " + std::to_string(id) +
                            " in layer '" + name_ + "'");
  }
  attributes_[static_cast<size_t>(id)][attr] = std::move(value);
  return Status::OK();
}

Result<Value> Layer::GetAttribute(GeometryId id, const std::string& attr) const {
  if (id < 0 || static_cast<size_t>(id) >= attributes_.size()) {
    return Status::NotFound("no element " + std::to_string(id) +
                            " in layer '" + name_ + "'");
  }
  const auto& map = attributes_[static_cast<size_t>(id)];
  auto it = map.find(attr);
  if (it == map.end()) {
    return Status::NotFound("element " + std::to_string(id) + " in layer '" +
                            name_ + "' has no attribute '" + attr + "'");
  }
  return it->second;
}

Result<std::vector<std::pair<std::string, Value>>> Layer::AttributesOf(
    GeometryId id) const {
  if (id < 0 || static_cast<size_t>(id) >= attributes_.size()) {
    return Status::NotFound("no element " + std::to_string(id) +
                            " in layer '" + name_ + "'");
  }
  std::vector<std::pair<std::string, Value>> out(
      attributes_[static_cast<size_t>(id)].begin(),
      attributes_[static_cast<size_t>(id)].end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

bool Layer::HasAttribute(GeometryId id, const std::string& attr) const {
  if (id < 0 || static_cast<size_t>(id) >= attributes_.size()) {
    return false;
  }
  return attributes_[static_cast<size_t>(id)].count(attr) > 0;
}

void Layer::EnsureIndex() const {
  if (rtree_) {
    return;
  }
  std::vector<index::RTree::Entry> entries;
  entries.reserve(ids_.size());
  for (GeometryId id : ids_) {
    auto box = BoundsOf(id);
    if (box.ok()) {
      entries.push_back({box.ValueOrDie(), id});
    }
  }
  rtree_ = std::make_unique<index::RTree>(
      index::RTree::BulkLoad(std::move(entries)));
}

Result<BoundingBox> Layer::BoundsOf(GeometryId id) const {
  switch (kind_) {
    case GeometryKind::kPoint:
    case GeometryKind::kNode: {
      PIET_ASSIGN_OR_RETURN(Point p, GetPoint(id));
      return BoundingBox(p.x, p.y, p.x, p.y);
    }
    case GeometryKind::kLine:
    case GeometryKind::kPolyline: {
      PIET_ASSIGN_OR_RETURN(const Polyline* line, GetPolyline(id));
      return line->Bounds();
    }
    case GeometryKind::kPolygon: {
      PIET_ASSIGN_OR_RETURN(const Polygon* polygon, GetPolygon(id));
      return polygon->Bounds();
    }
    case GeometryKind::kAll:
      break;
  }
  return Status::Internal("layer kind has no element bounds");
}

std::vector<GeometryId> Layer::GeometriesContaining(Point p) const {
  EnsureIndex();
  std::vector<GeometryId> out;
  for (index::RTree::Id id : rtree_->SearchPoint(p)) {
    switch (kind_) {
      case GeometryKind::kPoint:
      case GeometryKind::kNode:
        if (points_[static_cast<size_t>(id)] == p) {
          out.push_back(id);
        }
        break;
      case GeometryKind::kLine:
      case GeometryKind::kPolyline:
        if (polylines_[static_cast<size_t>(id)].Contains(p)) {
          out.push_back(id);
        }
        break;
      case GeometryKind::kPolygon:
        if (polygons_[static_cast<size_t>(id)].Contains(p)) {
          out.push_back(id);
        }
        break;
      case GeometryKind::kAll:
        break;
    }
  }
  return out;
}

std::vector<GeometryId> Layer::CandidatesInBox(const BoundingBox& box) const {
  EnsureIndex();
  return rtree_->Search(box);
}

double Layer::TotalMeasure() const {
  double total = 0.0;
  for (const Polygon& pg : polygons_) {
    total += pg.Area();
  }
  for (const Polyline& pl : polylines_) {
    total += pl.Length();
  }
  return total;
}

}  // namespace piet::gis
