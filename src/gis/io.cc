#include "gis/io.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"
#include "geometry/wkt.h"

namespace piet::gis {

namespace {

constexpr char kHeader[] = "# piet-layer v1";

std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) {
      return Status::ParseError("dangling escape in string value");
    }
    ++i;
    switch (s[i]) {
      case '\\':
        out += '\\';
        break;
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      default:
        return Status::ParseError("unknown escape in string value");
    }
  }
  return out;
}

Result<std::string> SerializeValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
      return "i:" + std::to_string(v.AsIntUnchecked());
    case ValueType::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << v.AsDoubleUnchecked();
      return "d:" + os.str();
    }
    case ValueType::kString:
      return "s:" + EscapeString(v.AsStringUnchecked());
    case ValueType::kBool:
      return std::string("b:") + (v.AsBoolUnchecked() ? "1" : "0");
    case ValueType::kNull:
      return Status::InvalidArgument("cannot serialize null attribute");
  }
  return Status::Internal("unknown value type");
}

Result<Value> DeserializeValue(const std::string& s) {
  if (s.size() < 2 || s[1] != ':') {
    return Status::ParseError("bad attribute value '" + s + "'");
  }
  std::string body = s.substr(2);
  switch (s[0]) {
    case 'i': {
      int64_t v = 0;
      auto res = std::from_chars(body.data(), body.data() + body.size(), v);
      if (res.ec != std::errc() || res.ptr != body.data() + body.size()) {
        return Status::ParseError("bad int attribute '" + body + "'");
      }
      return Value(v);
    }
    case 'd': {
      double v = 0.0;
      auto res = std::from_chars(body.data(), body.data() + body.size(), v);
      if (res.ec != std::errc() || res.ptr != body.data() + body.size()) {
        return Status::ParseError("bad double attribute '" + body + "'");
      }
      return Value(v);
    }
    case 's': {
      PIET_ASSIGN_OR_RETURN(std::string text, UnescapeString(body));
      return Value(std::move(text));
    }
    case 'b':
      return Value(body == "1");
    default:
      return Status::ParseError("unknown attribute type tag '" +
                                s.substr(0, 1) + "'");
  }
}

Result<std::string> ElementWkt(const Layer& layer, GeometryId id) {
  switch (layer.kind()) {
    case GeometryKind::kPoint:
    case GeometryKind::kNode: {
      PIET_ASSIGN_OR_RETURN(geometry::Point p, layer.GetPoint(id));
      return geometry::ToWkt(p);
    }
    case GeometryKind::kLine:
    case GeometryKind::kPolyline: {
      PIET_ASSIGN_OR_RETURN(const geometry::Polyline* line,
                            layer.GetPolyline(id));
      return geometry::ToWkt(*line);
    }
    case GeometryKind::kPolygon: {
      PIET_ASSIGN_OR_RETURN(const geometry::Polygon* pg,
                            layer.GetPolygon(id));
      return geometry::ToWkt(*pg);
    }
    case GeometryKind::kAll:
      break;
  }
  return Status::InvalidArgument("layer kind has no element WKT");
}

}  // namespace

Status WriteLayer(const Layer& layer, std::ostream& out) {
  out << kHeader << "\n";
  out << "layer " << layer.name() << " "
      << GeometryKindToString(layer.kind()) << "\n";
  for (GeometryId id : layer.ids()) {
    PIET_ASSIGN_OR_RETURN(std::string wkt, ElementWkt(layer, id));
    out << "elem " << wkt;
    PIET_ASSIGN_OR_RETURN(auto attrs, layer.AttributesOf(id));
    for (const auto& [key, value] : attrs) {
      PIET_ASSIGN_OR_RETURN(std::string serialized, SerializeValue(value));
      out << "\t" << key << "=" << serialized;
    }
    out << "\n";
  }
  if (!out) {
    return Status::IoError("failed writing layer '" + layer.name() + "'");
  }
  return Status::OK();
}

Result<std::shared_ptr<Layer>> ReadLayer(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || Trim(line) != kHeader) {
    return Status::ParseError("missing piet-layer header");
  }
  if (!std::getline(in, line)) {
    return Status::ParseError("missing layer declaration");
  }
  std::istringstream decl(line);
  std::string tag, name, kind_name;
  decl >> tag >> name >> kind_name;
  if (tag != "layer" || name.empty()) {
    return Status::ParseError("bad layer declaration: " + line);
  }
  PIET_ASSIGN_OR_RETURN(GeometryKind kind, GeometryKindFromString(kind_name));
  auto layer = std::make_shared<Layer>(name, kind);

  size_t lineno = 2;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv.front() == '#') {
      continue;
    }
    if (!StartsWith(sv, "elem ")) {
      return Status::ParseError("line " + std::to_string(lineno) +
                                ": expected 'elem'");
    }
    sv.remove_prefix(5);
    // WKT runs to the first tab (or end of line).
    std::vector<std::string> fields = Split(sv, '\t');
    const std::string& wkt = fields[0];

    GeometryId id = 0;
    switch (kind) {
      case GeometryKind::kPoint:
      case GeometryKind::kNode: {
        PIET_ASSIGN_OR_RETURN(geometry::Point p,
                              geometry::PointFromWkt(wkt));
        PIET_ASSIGN_OR_RETURN(id, layer->AddPoint(p));
        break;
      }
      case GeometryKind::kLine:
      case GeometryKind::kPolyline: {
        PIET_ASSIGN_OR_RETURN(geometry::Polyline pl,
                              geometry::PolylineFromWkt(wkt));
        PIET_ASSIGN_OR_RETURN(id, layer->AddPolyline(std::move(pl)));
        break;
      }
      case GeometryKind::kPolygon: {
        PIET_ASSIGN_OR_RETURN(geometry::Polygon pg,
                              geometry::PolygonFromWkt(wkt));
        PIET_ASSIGN_OR_RETURN(id, layer->AddPolygon(std::move(pg)));
        break;
      }
      case GeometryKind::kAll:
        return Status::ParseError("layer of kind All cannot hold elements");
    }

    for (size_t f = 1; f < fields.size(); ++f) {
      const std::string& field = fields[f];
      size_t eq = field.find('=');
      if (eq == std::string::npos) {
        return Status::ParseError("line " + std::to_string(lineno) +
                                  ": bad attribute '" + field + "'");
      }
      PIET_ASSIGN_OR_RETURN(Value value,
                            DeserializeValue(field.substr(eq + 1)));
      PIET_RETURN_NOT_OK(
          layer->SetAttribute(id, field.substr(0, eq), std::move(value)));
    }
  }
  return layer;
}

}  // namespace piet::gis
