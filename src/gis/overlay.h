#ifndef PIET_GIS_OVERLAY_H_
#define PIET_GIS_OVERLAY_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "gis/layer.h"
#include "index/grid.h"

namespace piet::gis {

/// One label of an overlay cell: "this cell lies inside geometry `geom` of
/// layer index `layer`".
struct OverlayLabel {
  size_t layer = 0;
  GeometryId geom = 0;

  friend bool operator==(const OverlayLabel& a, const OverlayLabel& b) {
    return a.layer == b.layer && a.geom == b.geom;
  }
  friend bool operator<(const OverlayLabel& a, const OverlayLabel& b) {
    if (a.layer != b.layer) {
      return a.layer < b.layer;
    }
    return a.geom < b.geom;
  }
};

/// Point-location answer: per queried layer, the ids containing the point.
struct OverlayHit {
  std::vector<std::vector<GeometryId>> per_layer;
};

/// The Piet overlay precomputation of Sec. 5: a subdivision of the plane
/// into *subpolygons* (cells), each labeled with every layer geometry that
/// fully covers it. Point location against the overlay then answers, in one
/// lookup, "which neighborhood / city / district is this sample in" for all
/// layers at once — the paper's strategy for amortizing geometric work
/// across many aggregate queries.
///
/// Two construction strategies, one interface:
///  * BuildConvex — exact sub-polygonization by iterated convex clipping.
///    Requires every polygon of every layer to be convex. Cells are the
///    nonempty intersections of one polygon per (subset of) layers.
///  * BuildQuadtree — adaptive quadtree for arbitrary simple polygons.
///    Leaves are refined until homogeneous w.r.t. every polygon or the
///    depth cap; heterogeneous leaves keep candidate lists and resolve by
///    exact point-in-polygon at query time (always exact answers; the tree
///    only prunes candidates).
class OverlayDb {
 public:
  /// Builds the exact convex overlay. Fails if a polygon is non-convex or a
  /// layer is not a polygon layer. Layers must outlive the OverlayDb.
  static Result<OverlayDb> BuildConvex(std::vector<const Layer*> layers);

  /// Builds the adaptive quadtree overlay (works for any simple polygons).
  static Result<OverlayDb> BuildQuadtree(std::vector<const Layer*> layers,
                                         int max_depth = 10);

  /// For point `p`, the containing geometry ids for every layer (index
  /// aligned with the layer list given at construction).
  OverlayHit Locate(geometry::Point p) const;

  /// Convenience: containing ids for one layer index.
  std::vector<GeometryId> LocateInLayer(geometry::Point p, size_t layer) const;

  /// Allocation-free single-layer point location: appends the containing
  /// ids of `layer` to `out` (cleared first). The hot path of the Sec. 5
  /// strategy — one grid probe plus exact tests on the few candidate
  /// cells.
  void LocateInLayerInto(geometry::Point p, size_t layer,
                         std::vector<GeometryId>* out) const;

  size_t num_layers() const { return layers_.size(); }
  /// Number of overlay cells (convex) or leaves (quadtree).
  size_t num_cells() const { return cells_.size(); }
  /// Total time spent is dominated by construction; expose the strategy.
  bool is_convex_exact() const { return convex_exact_; }

  /// The layer list the overlay was built over (index = OverlayLabel.layer).
  const std::vector<const Layer*>& layers() const { return layers_; }

  /// Read access to one cell's geometry and labels, for the partition
  /// checks of src/analysis (and for debugging/visualization).
  const geometry::Polygon& CellPolygon(size_t i) const {
    return cells_[i].polygon;
  }
  const std::vector<OverlayLabel>& CellCovered(size_t i) const {
    return cells_[i].covered;
  }
  const std::vector<OverlayLabel>& CellCandidates(size_t i) const {
    return cells_[i].candidates;
  }

 private:
  /// A subpolygon: cell geometry plus covering labels. In quadtree mode the
  /// cell is a rectangle and `candidates` holds the boundary-crossing
  /// polygons needing exact tests.
  struct Cell {
    geometry::Polygon polygon;
    std::vector<OverlayLabel> covered;     // Definitely covering labels.
    std::vector<OverlayLabel> candidates;  // Need exact test at query time.
  };

  OverlayDb() = default;

  void BuildCellIndex();

  std::vector<const Layer*> layers_;
  std::vector<Cell> cells_;
  std::unique_ptr<index::GridIndex> cell_index_;
  bool convex_exact_ = false;
};

}  // namespace piet::gis

#endif  // PIET_GIS_OVERLAY_H_
