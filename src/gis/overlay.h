#ifndef PIET_GIS_OVERLAY_H_
#define PIET_GIS_OVERLAY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "gis/layer.h"
#include "index/grid.h"

namespace piet::gis {

/// One label of an overlay cell: "this cell lies inside geometry `geom` of
/// layer index `layer`".
struct OverlayLabel {
  size_t layer = 0;
  GeometryId geom = 0;

  friend bool operator==(const OverlayLabel& a, const OverlayLabel& b) {
    return a.layer == b.layer && a.geom == b.geom;
  }
  friend bool operator<(const OverlayLabel& a, const OverlayLabel& b) {
    if (a.layer != b.layer) {
      return a.layer < b.layer;
    }
    return a.geom < b.geom;
  }
};

/// Point-location answer: per queried layer, the ids containing the point.
struct OverlayHit {
  std::vector<std::vector<GeometryId>> per_layer;
};

/// Flat result of a batched single-layer point location: the containing ids
/// of point `i` are `ids[offsets[i] .. offsets[i+1])`. Offsets always has
/// one entry more than the number of points located.
struct BatchHits {
  std::vector<uint32_t> offsets;
  std::vector<GeometryId> ids;
};

/// Work counters of point location: overlay cells probed via the grid and
/// exact candidate-polygon tests performed. LocateBatch accumulates one
/// instance per chunk and flushes the totals to the metrics registry, so
/// enabled-mode counts stay exact for any thread count.
struct LocateWork {
  size_t cells_visited = 0;
  size_t candidates_tested = 0;

  LocateWork& operator+=(const LocateWork& other) {
    cells_visited += other.cells_visited;
    candidates_tested += other.candidates_tested;
    return *this;
  }
};

/// The Piet overlay precomputation of Sec. 5: a subdivision of the plane
/// into *subpolygons* (cells), each labeled with every layer geometry that
/// fully covers it. Point location against the overlay then answers, in one
/// lookup, "which neighborhood / city / district is this sample in" for all
/// layers at once — the paper's strategy for amortizing geometric work
/// across many aggregate queries.
///
/// Two construction strategies, one interface:
///  * BuildConvex — exact sub-polygonization by iterated convex clipping.
///    Requires every polygon of every layer to be convex. Cells are the
///    nonempty intersections of one polygon per (subset of) layers.
///  * BuildQuadtree — adaptive quadtree for arbitrary simple polygons.
///    Leaves are refined until homogeneous w.r.t. every polygon or the
///    depth cap; heterogeneous leaves keep candidate lists and resolve by
///    exact point-in-polygon at query time (always exact answers; the tree
///    only prunes candidates).
class OverlayDb {
 public:
  /// Builds the exact convex overlay. Fails if a polygon is non-convex or a
  /// layer is not a polygon layer. Layers must outlive the OverlayDb.
  /// `threads` <= 0 resolves through PIET_THREADS (parallel::ResolveThreads);
  /// the produced overlay is identical for every thread count.
  static Result<OverlayDb> BuildConvex(std::vector<const Layer*> layers,
                                       int threads = 0);

  /// Builds the adaptive quadtree overlay (works for any simple polygons).
  /// Same `threads` contract as BuildConvex.
  static Result<OverlayDb> BuildQuadtree(std::vector<const Layer*> layers,
                                         int max_depth = 10, int threads = 0);

  /// For point `p`, the containing geometry ids for every layer (index
  /// aligned with the layer list given at construction).
  OverlayHit Locate(geometry::Point p) const;

  /// Convenience: containing ids for one layer index.
  std::vector<GeometryId> LocateInLayer(geometry::Point p, size_t layer) const;

  /// Allocation-free single-layer point location: appends the containing
  /// ids of `layer` to `out` (cleared first; its capacity is reused
  /// end-to-end, and the candidate-probe loop tests pre-resolved polygon
  /// pointers — no per-call allocation anywhere). The hot path of the
  /// Sec. 5 strategy — one grid probe plus exact tests on the few
  /// candidate cells, and the unit of work LocateBatch fans out. A non-null
  /// `work` accumulates the cells probed / candidates tested (metrics).
  void LocateInLayerInto(geometry::Point p, size_t layer,
                         std::vector<GeometryId>* out,
                         LocateWork* work = nullptr) const;

  /// Batched single-layer point location across the thread pool: one
  /// LocateInLayerInto per point, with one scratch buffer per chunk reused
  /// end-to-end. Output is bit-identical for every thread count (per-chunk
  /// results are merged in chunk order). `threads` <= 0 resolves through
  /// PIET_THREADS.
  BatchHits LocateBatch(std::span<const geometry::Point> points, size_t layer,
                        int threads = 0) const;

  size_t num_layers() const { return layers_.size(); }
  /// Number of overlay cells (convex) or leaves (quadtree).
  size_t num_cells() const { return cells_.size(); }
  /// Total time spent is dominated by construction; expose the strategy.
  bool is_convex_exact() const { return convex_exact_; }

  /// The layer list the overlay was built over (index = OverlayLabel.layer).
  const std::vector<const Layer*>& layers() const { return layers_; }

  /// Read access to one cell's geometry and labels, for the partition
  /// checks of src/analysis (and for debugging/visualization).
  const geometry::Polygon& CellPolygon(size_t i) const {
    return cells_[i].polygon;
  }
  const std::vector<OverlayLabel>& CellCovered(size_t i) const {
    return cells_[i].covered;
  }
  const std::vector<OverlayLabel>& CellCandidates(size_t i) const {
    return cells_[i].candidates;
  }

 private:
  /// A subpolygon: cell geometry plus covering labels. In quadtree mode the
  /// cell is a rectangle and `candidates` holds the boundary-crossing
  /// polygons needing exact tests.
  struct Cell {
    geometry::Polygon polygon;
    std::vector<OverlayLabel> covered;     // Definitely covering labels.
    std::vector<OverlayLabel> candidates;  // Need exact test at query time.
    // Pre-resolved polygon of each candidate (aligned with `candidates`),
    // so the query-time probe loop never goes through the layer lookup.
    std::vector<const geometry::Polygon*> candidate_polys;
  };

  OverlayDb() = default;

  void BuildCellIndex();
  void ResolveCandidatePolygons();

  std::vector<const Layer*> layers_;
  std::vector<Cell> cells_;
  std::unique_ptr<index::GridIndex> cell_index_;
  bool convex_exact_ = false;
};

}  // namespace piet::gis

#endif  // PIET_GIS_OVERLAY_H_
