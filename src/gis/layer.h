#ifndef PIET_GIS_LAYER_H_
#define PIET_GIS_LAYER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "geometry/polygon.h"
#include "geometry/polyline.h"
#include "index/rtree.h"

namespace piet::gis {

/// Identifier of a geometric element within its layer (the paper's Gid).
using GeometryId = int64_t;

/// The geometry kinds of the paper's set G (Def. 1). `node` is a point-kind
/// used for infrastructure (schools, stops); `line` a single segment kind
/// that composes polylines.
enum class GeometryKind {
  kPoint = 0,
  kNode,
  kLine,
  kPolyline,
  kPolygon,
  kAll,
};

std::string_view GeometryKindToString(GeometryKind kind);
Result<GeometryKind> GeometryKindFromString(std::string_view name);

/// A thematic layer: a named, homogeneous collection of geometric elements
/// with per-element attributes. This realizes the *Geometric part* of the
/// paper's GIS dimension for one layer — a finite set of identified
/// geometries — together with the classical attribute information a theme
/// carries.
///
/// The element kind is fixed per layer (the paper notes layers typically
/// hold a single kind). Points and nodes are both stored as Point payloads;
/// their kind tag differs for schema purposes.
class Layer {
 public:
  Layer(std::string name, GeometryKind kind);

  const std::string& name() const { return name_; }
  GeometryKind kind() const { return kind_; }
  size_t size() const { return ids_.size(); }
  const std::vector<GeometryId>& ids() const { return ids_; }

  /// Element insertion; the payload must match the layer kind
  /// (kPoint/kNode take points, kLine/kPolyline take polylines, kPolygon
  /// takes polygons). Returns the new element's id.
  Result<GeometryId> AddPoint(geometry::Point p);
  Result<GeometryId> AddPolyline(geometry::Polyline line);
  Result<GeometryId> AddPolygon(geometry::Polygon polygon);

  /// Element access.
  Result<geometry::Point> GetPoint(GeometryId id) const;
  Result<const geometry::Polyline*> GetPolyline(GeometryId id) const;
  Result<const geometry::Polygon*> GetPolygon(GeometryId id) const;

  /// Per-element attribute table.
  Status SetAttribute(GeometryId id, const std::string& attr, Value value);
  Result<Value> GetAttribute(GeometryId id, const std::string& attr) const;
  bool HasAttribute(GeometryId id, const std::string& attr) const;

  /// All attributes of an element, sorted by name (for serialization).
  Result<std::vector<std::pair<std::string, Value>>> AttributesOf(
      GeometryId id) const;

  /// The computed algebraic rollup r^{Pt,G}_L: ids of elements containing
  /// `p` (closed semantics — boundaries count; a point on a shared border
  /// belongs to both polygons, as in the paper's Example 1).
  std::vector<GeometryId> GeometriesContaining(geometry::Point p) const;

  /// Ids of elements whose bounds intersect `box` (candidates).
  std::vector<GeometryId> CandidatesInBox(const geometry::BoundingBox& box) const;

  /// Bounds of an element.
  Result<geometry::BoundingBox> BoundsOf(GeometryId id) const;

  /// Forces the lazy R-tree build now. The index is built on first spatial
  /// query and that first build mutates shared state — call this before
  /// fanning CandidatesInBox/GeometriesContaining across threads.
  void WarmIndex() const { EnsureIndex(); }

  /// Union of element bounds.
  geometry::BoundingBox Bounds() const { return bounds_; }

  /// Total area (polygon layers) or length (line layers).
  double TotalMeasure() const;

 private:
  void EnsureIndex() const;

  std::string name_;
  GeometryKind kind_;
  std::vector<GeometryId> ids_;
  std::vector<geometry::Point> points_;
  std::vector<geometry::Polyline> polylines_;
  std::vector<geometry::Polygon> polygons_;
  std::vector<std::unordered_map<std::string, Value>> attributes_;
  geometry::BoundingBox bounds_;
  mutable std::unique_ptr<index::RTree> rtree_;  // Lazily built.
};

}  // namespace piet::gis

#endif  // PIET_GIS_LAYER_H_
