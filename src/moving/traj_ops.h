#ifndef PIET_MOVING_TRAJ_OPS_H_
#define PIET_MOVING_TRAJ_OPS_H_

#include <vector>

#include "geometry/polygon.h"
#include "moving/moft.h"
#include "moving/trajectory.h"
#include "temporal/interval.h"

namespace piet::moving {

/// Trajectory–region operations. These are the evaluation kernels for the
/// paper's query types:
///  * sample semantics (type 4): only the observed points count;
///  * trajectory semantics (type 7): the linear interpolation between
///    samples counts too — an object crossing a region between two samples
///    (object O6 of Fig. 1) is detected.

/// The exact time intervals during which the interpolated trajectory lies
/// inside the *closed* polygon. Grazing contacts appear as zero-length
/// intervals.
temporal::IntervalSet InsideIntervals(const LinearTrajectory& trajectory,
                                      const geometry::Polygon& region);

/// True if the interpolated trajectory touches the closed region at any
/// time (the paper's "passes through").
bool PassesThrough(const LinearTrajectory& trajectory,
                   const geometry::Polygon& region);

/// Total time spent inside the closed region (type 7 / query 5).
temporal::Duration TimeInRegion(const LinearTrajectory& trajectory,
                                const geometry::Polygon& region);

/// The time intervals during which the trajectory is within `radius` of
/// `center` (query 6: "within 100 m of a school").
temporal::IntervalSet WithinDistanceIntervals(
    const LinearTrajectory& trajectory, geometry::Point center, double radius);

/// Sample semantics: the observed samples of `oid` lying inside the closed
/// region, optionally restricted to `window`.
std::vector<Sample> SamplesInRegion(const Moft& moft, ObjectId oid,
                                    const geometry::Polygon& region);

/// True if the whole interpolated trajectory stays inside the closed
/// region ("passing completely through", query 3's non-negated half).
bool StaysWithin(const LinearTrajectory& trajectory,
                 const geometry::Polygon& region);

/// Distance travelled while inside the region (type 8 trajectory
/// aggregation).
double DistanceTravelledInside(const LinearTrajectory& trajectory,
                               const geometry::Polygon& region);

/// Number of distinct entries into the region (maximal inside intervals
/// with positive approach from outside).
int EntryCount(const LinearTrajectory& trajectory,
               const geometry::Polygon& region);

}  // namespace piet::moving

#endif  // PIET_MOVING_TRAJ_OPS_H_
