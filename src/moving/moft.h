#ifndef PIET_MOVING_MOFT_H_
#define PIET_MOVING_MOFT_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/point.h"
#include "olap/fact_table.h"
#include "temporal/interval.h"
#include "temporal/time_point.h"

namespace piet::moving {

/// Identifier of a moving object (the paper's Oid).
using ObjectId = int64_t;

/// One observation row of the MOFT: (Oid, t, x, y).
struct Sample {
  ObjectId oid = 0;
  temporal::TimePoint t;
  geometry::Point pos;

  friend bool operator==(const Sample& a, const Sample& b) {
    return a.oid == b.oid && a.t == b.t && a.pos == b.pos;
  }
};

/// The Moving Object Fact Table (Sec. 3): a finite set of samples
/// (Oid, t, x, y). Stored per object in time order; duplicate (Oid, t)
/// pairs are rejected (an object is at one place at a time).
class Moft {
 public:
  Moft() = default;

  /// Appends an observation. Out-of-order inserts are fine (kept sorted);
  /// a second observation of the same object at the same instant must agree
  /// on the position.
  Status Add(ObjectId oid, temporal::TimePoint t, geometry::Point pos);

  size_t num_samples() const { return size_; }
  size_t num_objects() const { return by_object_.size(); }

  /// All object ids, ascending.
  std::vector<ObjectId> ObjectIds() const;

  /// Time-ordered samples of one object (empty when unknown).
  const std::vector<Sample>& SamplesOf(ObjectId oid) const;

  /// Every sample, ordered by (oid, t).
  std::vector<Sample> AllSamples() const;

  /// Samples with t in the closed window, ordered by (oid, t). Uses the
  /// per-object time ordering for O(log n) window location per object.
  std::vector<Sample> SamplesBetween(temporal::TimePoint t0,
                                     temporal::TimePoint t1) const;

  /// The observation window [min t, max t] across all samples.
  Result<temporal::Interval> TimeSpan() const;

  /// Renders as the paper's Table 1 relation (Oid, t, x, y).
  olap::FactTable ToFactTable() const;

  /// CSV round-trip: "oid,t,x,y" per line, '#' comments allowed.
  Status WriteCsv(std::ostream& out) const;
  static Result<Moft> ReadCsv(std::istream& in);

 private:
  std::map<ObjectId, std::vector<Sample>> by_object_;
  size_t size_ = 0;
};

}  // namespace piet::moving

#endif  // PIET_MOVING_MOFT_H_
