#ifndef PIET_MOVING_MOFT_H_
#define PIET_MOVING_MOFT_H_

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "geometry/point.h"
#include "moving/moft_columns.h"
#include "olap/fact_table.h"
#include "temporal/interval.h"
#include "temporal/time_point.h"

namespace piet::moving {

/// The Moving Object Fact Table (Sec. 3): a finite set of samples
/// (Oid, t, x, y). Storage is columnar: `Add` appends to a staging buffer
/// in O(1); the first read after a mutation *seals* — sorts the combined
/// rows by (oid, t) once into contiguous per-attribute arrays
/// (MoftColumns) and rebuilds the per-object span index. Reads hand out
/// zero-copy views (SampleView / ObjectSpan / LegView / SampleWindow) over
/// the sealed columns; nothing on a query path copies the fact table.
///
/// Duplicate (Oid, t) pairs are rejected at Add time (an object is at one
/// place at a time); re-adding an identical observation is idempotent.
///
/// Thread safety: concurrent const reads are safe (sealing is internally
/// synchronized and happens at most once per mutation); `Add` must not run
/// concurrently with reads, like any single-writer container. Views borrow
/// the sealed columns — they stay valid until the next seal after a
/// mutation (SampleView::valid() checks the seal epoch) and must not
/// outlive the Moft.
class Moft {
 public:
  Moft() = default;
  Moft(const Moft& other);
  Moft& operator=(const Moft& other);
  Moft(Moft&& other) noexcept;
  Moft& operator=(Moft&& other) noexcept;
  ~Moft() = default;

  /// Appends an observation. Out-of-order inserts are fine (sorted at the
  /// next seal); a second observation of the same object at the same
  /// instant must agree on the position.
  Status Add(ObjectId oid, temporal::TimePoint t, geometry::Point pos);

  size_t num_samples() const { return size_; }
  size_t num_objects() const;

  /// All object ids, ascending.
  std::vector<ObjectId> ObjectIds() const;

  /// The sealed columns (seals first when dirty). Borrowed; stable until
  /// the next mutation + seal.
  const MoftColumns& Columns() const;

  /// Zero-copy view of every sample, ordered by (oid, t).
  SampleView Scan() const;

  /// Time-ordered samples of one object (empty span when unknown).
  ObjectSpan SamplesOf(ObjectId oid) const;

  /// The span of the index-th object in ascending-oid order
  /// (index < num_objects()).
  ObjectSpan SpanAt(size_t index) const;

  /// Samples with t in the closed window [t0, t1], ordered by (oid, t) —
  /// one binary search per object span on the time column, no copies.
  SampleWindow SamplesBetween(temporal::TimePoint t0,
                              temporal::TimePoint t1) const;

  /// Epoch of the current seal (0 = never sealed). Bumps every time the
  /// columns are rebuilt; views taken before a bump are invalid.
  uint64_t seal_epoch() const;

  /// Materializes every sample as a row vector. Test/export helper only —
  /// query hot paths use Scan() and never copy the table.
  std::vector<Sample> AllSamples() const;

  /// The observation window [min t, max t] across all samples.
  Result<temporal::Interval> TimeSpan() const;

  /// Renders as the paper's Table 1 relation (Oid, t, x, y).
  olap::FactTable ToFactTable() const;

  /// CSV round-trip: "oid,t,x,y" per line, '#' comments allowed.
  Status WriteCsv(std::ostream& out) const;
  static Result<Moft> ReadCsv(std::istream& in);

 private:
  /// Key of the duplicate-observation index. Equality uses double == on t
  /// (so 0.0 and -0.0 collide, matching TimePoint equality); the hash
  /// normalizes -0.0 accordingly.
  struct SampleKey {
    ObjectId oid = 0;
    double t = 0.0;
    friend bool operator==(const SampleKey& a, const SampleKey& b) {
      return a.oid == b.oid && a.t == b.t;
    }
  };
  struct SampleKeyHash {
    size_t operator()(const SampleKey& k) const {
      size_t h1 = std::hash<ObjectId>()(k.oid);
      size_t h2 = std::hash<double>()(k.t == 0.0 ? 0.0 : k.t);
      return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
    }
  };

  /// Seals when dirty (merges staging, sorts, rebuilds spans, bumps the
  /// epoch) and returns the columns. Thread-safe; serialized internally.
  const MoftColumns& EnsureSealed() const;
  void SealLocked() const;

  /// (oid, t) -> position of every stored sample, for O(1) duplicate
  /// detection on the write path.
  std::unordered_map<SampleKey, geometry::Point, SampleKeyHash> index_;
  size_t size_ = 0;
  mutable std::vector<Sample> staging_;
  mutable MoftColumns cols_;
  mutable std::mutex seal_mu_;
};

}  // namespace piet::moving

#endif  // PIET_MOVING_MOFT_H_
