#ifndef PIET_MOVING_SIMPLIFY_H_
#define PIET_MOVING_SIMPLIFY_H_

#include "common/result.h"
#include "moving/trajectory.h"

namespace piet::moving {

/// Spatio-temporal trajectory simplification, after the trajectory
/// aggregation line of work the paper discusses (Meratnia & de By):
/// a Douglas–Peucker variant using the *synchronized Euclidean distance* —
/// the distance between a sample and the position the simplified
/// trajectory would assign at the sample's own timestamp. This preserves
/// the LIT semantics of the retained samples: a simplified trajectory
/// answers time-parameterized queries approximately, within `tolerance`.
///
/// Returns a sample containing a subset of the input points (always keeps
/// the first and last).
Result<TrajectorySample> SimplifySynchronized(const TrajectorySample& sample,
                                              double tolerance);

/// The maximum synchronized Euclidean distance between `original` samples
/// and the LIT of `simplified` — the guarantee SimplifySynchronized
/// enforces (<= tolerance).
Result<double> MaxSynchronizedError(const TrajectorySample& original,
                                    const TrajectorySample& simplified);

}  // namespace piet::moving

#endif  // PIET_MOVING_SIMPLIFY_H_
