#include "moving/heatmap.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace piet::moving {

using geometry::BoundingBox;
using geometry::Point;

TrajectoryHeatmap::TrajectoryHeatmap(const BoundingBox& extent,
                                     size_t cells_per_axis)
    : extent_(extent), n_(std::max<size_t>(1, cells_per_axis)) {
  step_x_ = std::max(extent_.width(), 1e-12) / static_cast<double>(n_);
  step_y_ = std::max(extent_.height(), 1e-12) / static_cast<double>(n_);
  passes_.assign(n_ * n_, 0);
  samples_.assign(n_ * n_, 0);
}

BoundingBox TrajectoryHeatmap::CellBox(size_t cx, size_t cy) const {
  return BoundingBox(extent_.min_x + cx * step_x_,
                     extent_.min_y + cy * step_y_,
                     extent_.min_x + (cx + 1) * step_x_,
                     extent_.min_y + (cy + 1) * step_y_);
}

namespace {

// Clamped cell coordinate of a value.
size_t CellOf(double v, double lo, double step, size_t n) {
  double idx = (v - lo) / step;
  if (idx < 0.0) {
    return 0;
  }
  size_t i = static_cast<size_t>(idx);
  return std::min(i, n - 1);
}

}  // namespace

Status TrajectoryHeatmap::AddMoft(const Moft& moft) {
  const size_t objects = moft.num_objects();
  for (size_t i = 0; i < objects; ++i) {
    ObjectSpan span = moft.SpanAt(i);
    // Sample counts.
    for (const Sample& s : span) {
      size_t cx = CellOf(s.pos.x, extent_.min_x, step_x_, n_);
      size_t cy = CellOf(s.pos.y, extent_.min_y, step_y_, n_);
      ++samples_[Index(cx, cy)];
    }
    // Pass counts: walk each LIT leg through the grid (conservative DDA:
    // supersample at half the cell pitch, dedup cells per object).
    std::set<size_t> visited;
    double pitch = std::min(step_x_, step_y_) / 2.0;
    for (const TrajectoryLeg& leg : span.Legs()) {
      double len = Distance(leg.p0, leg.p1);
      int steps = std::max(1, static_cast<int>(std::ceil(len / pitch)));
      for (int i2 = 0; i2 <= steps; ++i2) {
        Point p = leg.p0 + (leg.p1 - leg.p0) *
                               (static_cast<double>(i2) / steps);
        size_t cx = CellOf(p.x, extent_.min_x, step_x_, n_);
        size_t cy = CellOf(p.y, extent_.min_y, step_y_, n_);
        visited.insert(Index(cx, cy));
      }
    }
    if (span.Legs().empty() && !span.empty()) {
      const Sample s = span.front();
      visited.insert(Index(CellOf(s.pos.x, extent_.min_x, step_x_, n_),
                           CellOf(s.pos.y, extent_.min_y, step_y_, n_)));
    }
    for (size_t idx : visited) {
      ++passes_[idx];
    }
  }
  return Status::OK();
}

int64_t TrajectoryHeatmap::PassCount(size_t cx, size_t cy) const {
  return passes_[Index(cx, cy)];
}

int64_t TrajectoryHeatmap::SampleCount(size_t cx, size_t cy) const {
  return samples_[Index(cx, cy)];
}

TrajectoryHeatmap::Hotspot TrajectoryHeatmap::MaxCell() const {
  Hotspot best;
  for (size_t cy = 0; cy < n_; ++cy) {
    for (size_t cx = 0; cx < n_; ++cx) {
      if (passes_[Index(cx, cy)] > best.passes) {
        best = {cx, cy, passes_[Index(cx, cy)]};
      }
    }
  }
  return best;
}

olap::FactTable TrajectoryHeatmap::ToFactTable() const {
  olap::FactTable out =
      olap::FactTable::Make({"cx", "cy"}, {"passes", "samples"});
  for (size_t cy = 0; cy < n_; ++cy) {
    for (size_t cx = 0; cx < n_; ++cx) {
      size_t i = Index(cx, cy);
      if (passes_[i] == 0 && samples_[i] == 0) {
        continue;
      }
      (void)out.Append({Value(static_cast<int64_t>(cx)),
                        Value(static_cast<int64_t>(cy)), Value(passes_[i]),
                        Value(samples_[i])});
    }
  }
  return out;
}

}  // namespace piet::moving
