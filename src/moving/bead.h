#ifndef PIET_MOVING_BEAD_H_
#define PIET_MOVING_BEAD_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "geometry/polygon.h"
#include "moving/trajectory.h"

namespace piet::moving {

/// A lifeline bead (Hornsby & Egenhofer, discussed in the paper's related
/// work): between two consecutive observations, an object with speed bound
/// `vmax` can only be inside the space-time prism whose spatial projection
/// is the ellipse with foci at the two observed positions and major-axis
/// length vmax * Δt. This extension module answers "could the object
/// possibly have been in region R between its samples?" — the
/// uncertainty-aware variant of PassesThrough.
class LifelineBead {
 public:
  /// Requires t0 < t1 and vmax * (t1 - t0) >= distance(p0, p1) (otherwise
  /// the observations are inconsistent with the speed bound).
  static Result<LifelineBead> Create(TimedPoint a, TimedPoint b, double vmax);

  const TimedPoint& a() const { return a_; }
  const TimedPoint& b() const { return b_; }
  double vmax() const { return vmax_; }

  /// Semi-major axis of the projected ellipse.
  double SemiMajor() const { return semi_major_; }
  /// Semi-minor axis.
  double SemiMinor() const { return semi_minor_; }
  /// Ellipse center (midpoint of the foci).
  geometry::Point Center() const;

  /// True if `p` lies in the projected ellipse (closed).
  bool ContainsPoint(geometry::Point p) const;

  /// True if the projected ellipse and the closed polygon share a point.
  /// Exact: the polygon is mapped through the affine transform that sends
  /// the ellipse to the unit circle, then tested with exact segment-circle
  /// intersection.
  bool IntersectsPolygon(const geometry::Polygon& polygon) const;

  /// Spatial positions possibly occupied at instant `t` form a disc (the
  /// prism cross-section): returns its center and radius, or nullopt when
  /// t is outside [t0, t1].
  struct Disc {
    geometry::Point center;
    double radius;
  };
  std::optional<Disc> CrossSectionAt(temporal::TimePoint t) const;

 private:
  LifelineBead(TimedPoint a, TimedPoint b, double vmax);

  /// Maps a point into the ellipse's unit-circle frame.
  geometry::Point ToUnitFrame(geometry::Point p) const;

  TimedPoint a_;
  TimedPoint b_;
  double vmax_;
  double semi_major_;
  double semi_minor_;
  double cos_theta_;
  double sin_theta_;
};

/// All beads of a sampled object under speed bound `vmax`.
Result<std::vector<LifelineBead>> BeadsOf(const TrajectorySample& sample,
                                          double vmax);

/// Uncertainty-aware passes-through: true if some bead's projection meets
/// the region — i.e. the object *could* have visited it. The LIT-based
/// PassesThrough implies this (the interpolated path lies inside every
/// bead).
Result<bool> PossiblyPassesThrough(const TrajectorySample& sample, double vmax,
                                   const geometry::Polygon& region);

}  // namespace piet::moving

#endif  // PIET_MOVING_BEAD_H_
