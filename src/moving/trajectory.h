#ifndef PIET_MOVING_TRAJECTORY_H_
#define PIET_MOVING_TRAJECTORY_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "geometry/polyline.h"
#include "geometry/segment.h"
#include "moving/moft.h"
#include "temporal/interval.h"

namespace piet::moving {

/// One time-stamped point of a trajectory sample (Def. 6).
struct TimedPoint {
  temporal::TimePoint t;
  geometry::Point pos;
};

/// A trajectory sample (Def. 6): time-space points with strictly
/// increasing timestamps.
class TrajectorySample {
 public:
  TrajectorySample() = default;

  /// Validates strict time ordering.
  static Result<TrajectorySample> Create(std::vector<TimedPoint> points);

  /// Builds from one object's MOFT rows.
  static Result<TrajectorySample> FromMoft(const Moft& moft, ObjectId oid);

  /// Builds from one object's column span (as handed out by
  /// Moft::SamplesOf / SpanAt) without touching the rest of the table.
  static Result<TrajectorySample> FromSpan(const ObjectSpan& span);

  const std::vector<TimedPoint>& points() const { return points_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// [t_0, t_N].
  Result<temporal::Interval> TimeDomain() const;

  /// Closed per the paper: first and last positions coincide.
  bool IsClosed() const;

 private:
  explicit TrajectorySample(std::vector<TimedPoint> points)
      : points_(std::move(points)) {}

  std::vector<TimedPoint> points_;
};

/// A trajectory (Def. 5): the graph of a continuous mapping
/// t -> (βx(t), βy(t)) over a time interval.
class Trajectory {
 public:
  virtual ~Trajectory() = default;

  /// The time domain I.
  virtual temporal::Interval TimeDomain() const = 0;

  /// β(t); nullopt outside the time domain.
  virtual std::optional<geometry::Point> PositionAt(
      temporal::TimePoint t) const = 0;
};

/// The linear-interpolation trajectory LIT(S) (Sec. 3): constant lowest
/// speed between consecutive sample points. The workhorse trajectory model
/// for query types 6 and 7.
class LinearTrajectory : public Trajectory {
 public:
  /// One interpolation leg: the object moves from `p0` at `t0` to `p1` at
  /// `t1` along the straight segment.
  struct Leg {
    temporal::TimePoint t0;
    temporal::TimePoint t1;
    geometry::Point p0;
    geometry::Point p1;

    geometry::Segment AsSegment() const { return {p0, p1}; }
    temporal::Duration DurationOf() const { return t1 - t0; }
    /// Position at t in [t0, t1] under constant speed.
    geometry::Point At(temporal::TimePoint t) const;
  };

  /// Requires >= 1 point.
  static Result<LinearTrajectory> FromSample(TrajectorySample sample);

  temporal::Interval TimeDomain() const override;
  std::optional<geometry::Point> PositionAt(
      temporal::TimePoint t) const override;

  const TrajectorySample& sample() const { return sample_; }
  /// The N interpolation legs (size()-1 of them).
  std::vector<Leg> Legs() const;

  /// Total travelled distance (sum of leg lengths).
  double Length() const;

  /// Travelled distance within [interval.begin, interval.end].
  double LengthDuring(const temporal::Interval& interval) const;

  /// Average speed over the whole time domain (0 for instant domains).
  double AverageSpeed() const;

  /// The image of the trajectory as a static polyline (query type 6's
  /// "trajectory as a spatial object"). Fails when all points coincide.
  Result<geometry::Polyline> AsPolyline() const;

  bool IsClosed() const { return sample_.IsClosed(); }

 private:
  explicit LinearTrajectory(TrajectorySample sample)
      : sample_(std::move(sample)) {}

  TrajectorySample sample_;
};

/// A univariate polynomial with double coefficients, c0 + c1 t + c2 t^2 ...
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<double> coefficients)
      : coefficients_(std::move(coefficients)) {}

  double Eval(double t) const;
  const std::vector<double>& coefficients() const { return coefficients_; }

 private:
  std::vector<double> coefficients_;
};

/// A semi-algebraic trajectory in the spirit of Def. 5: piecewise
/// polynomial βx, βy over consecutive time pieces. Covers the paper's
/// quarter-circle example (via its rational parameterization approximated
/// polynomially or given exactly as a RationalPiece).
class PolynomialTrajectory : public Trajectory {
 public:
  /// One piece over [t0, t1]: x(t) = px(t)/qx(t), y(t) = py(t)/qy(t).
  /// Plain polynomial pieces use the constant-1 denominator.
  struct Piece {
    temporal::TimePoint t0;
    temporal::TimePoint t1;
    Polynomial px;
    Polynomial qx;  ///< Denominator; empty means 1.
    Polynomial py;
    Polynomial qy;  ///< Denominator; empty means 1.
  };

  /// Pieces must be contiguous in time and continuous at junctions.
  static Result<PolynomialTrajectory> Create(std::vector<Piece> pieces);

  temporal::Interval TimeDomain() const override;
  std::optional<geometry::Point> PositionAt(
      temporal::TimePoint t) const override;

  /// Discretizes into a trajectory sample with `points_per_piece` samples
  /// per piece (>= 2) — the bridge from the algebraic model to LIT-based
  /// evaluation.
  Result<TrajectorySample> Discretize(int points_per_piece) const;

  const std::vector<Piece>& pieces() const { return pieces_; }

 private:
  explicit PolynomialTrajectory(std::vector<Piece> pieces)
      : pieces_(std::move(pieces)) {}

  std::vector<Piece> pieces_;
};

}  // namespace piet::moving

#endif  // PIET_MOVING_TRAJECTORY_H_
