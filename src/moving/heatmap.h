#ifndef PIET_MOVING_HEATMAP_H_
#define PIET_MOVING_HEATMAP_H_

#include <vector>

#include "common/result.h"
#include "geometry/box.h"
#include "moving/moft.h"
#include "olap/fact_table.h"

namespace piet::moving {

/// Grid-based trajectory aggregation after Meratnia & de By (the paper's
/// Sec. 2): divide the area of study into homogeneous spatial units and
/// associate each with the number of objects passing through it. The
/// result is the "aggregated trajectory" raster the paper's related work
/// builds merged trajectories from, here computed exactly over LIT legs.
class TrajectoryHeatmap {
 public:
  /// `extent` fixes the raster area; `cells_per_axis` its resolution.
  TrajectoryHeatmap(const geometry::BoundingBox& extent,
                    size_t cells_per_axis);

  /// Accumulates every object of the MOFT: a cell is credited once per
  /// object whose LIT intersects it (pass count), and separately once per
  /// observed sample falling in it (sample count).
  Status AddMoft(const Moft& moft);

  size_t cells_per_axis() const { return n_; }
  const geometry::BoundingBox& extent() const { return extent_; }

  /// Distinct-object pass count of cell (cx, cy).
  int64_t PassCount(size_t cx, size_t cy) const;
  /// Raw observed-sample count of cell (cx, cy).
  int64_t SampleCount(size_t cx, size_t cy) const;

  /// Cell geometry.
  geometry::BoundingBox CellBox(size_t cx, size_t cy) const;

  /// The densest cell by pass count.
  struct Hotspot {
    size_t cx = 0;
    size_t cy = 0;
    int64_t passes = 0;
  };
  Hotspot MaxCell() const;

  /// Renders as a relation (cx, cy, passes, samples), skipping empty
  /// cells — ready for γ aggregation or export.
  olap::FactTable ToFactTable() const;

 private:
  size_t Index(size_t cx, size_t cy) const { return cy * n_ + cx; }

  geometry::BoundingBox extent_;
  size_t n_;
  double step_x_;
  double step_y_;
  std::vector<int64_t> passes_;
  std::vector<int64_t> samples_;
};

}  // namespace piet::moving

#endif  // PIET_MOVING_HEATMAP_H_
