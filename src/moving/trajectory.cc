#include "moving/trajectory.h"

#include <algorithm>
#include <cmath>

namespace piet::moving {

using geometry::Point;
using temporal::Interval;
using temporal::TimePoint;

Result<TrajectorySample> TrajectorySample::Create(
    std::vector<TimedPoint> points) {
  for (size_t i = 1; i < points.size(); ++i) {
    if (!(points[i - 1].t < points[i].t)) {
      return Status::InvalidArgument(
          "trajectory sample timestamps must strictly increase (violated at "
          "index " +
          std::to_string(i) + ")");
    }
  }
  return TrajectorySample(std::move(points));
}

Result<TrajectorySample> TrajectorySample::FromMoft(const Moft& moft,
                                                    ObjectId oid) {
  return FromSpan(moft.SamplesOf(oid));
}

Result<TrajectorySample> TrajectorySample::FromSpan(const ObjectSpan& span) {
  if (span.empty()) {
    return Status::NotFound("object " + std::to_string(span.oid()) +
                            " has no samples");
  }
  std::vector<TimedPoint> points;
  points.reserve(span.size());
  for (const Sample& s : span) {
    points.push_back({s.t, s.pos});
  }
  return Create(std::move(points));
}

Result<Interval> TrajectorySample::TimeDomain() const {
  if (points_.empty()) {
    return Status::NotFound("empty trajectory sample");
  }
  return Interval(points_.front().t, points_.back().t);
}

bool TrajectorySample::IsClosed() const {
  return points_.size() >= 2 && points_.front().pos == points_.back().pos;
}

Point LinearTrajectory::Leg::At(TimePoint t) const {
  temporal::Duration span = t1 - t0;
  if (span <= 0.0) {
    return p0;
  }
  double u = (t - t0) / span;
  u = std::clamp(u, 0.0, 1.0);
  return p0 + (p1 - p0) * u;
}

Result<LinearTrajectory> LinearTrajectory::FromSample(TrajectorySample sample) {
  if (sample.empty()) {
    return Status::InvalidArgument("cannot interpolate an empty sample");
  }
  return LinearTrajectory(std::move(sample));
}

Interval LinearTrajectory::TimeDomain() const {
  return sample_.TimeDomain().ValueOrDie();
}

std::optional<Point> LinearTrajectory::PositionAt(TimePoint t) const {
  const auto& pts = sample_.points();
  if (t < pts.front().t || t > pts.back().t) {
    return std::nullopt;
  }
  // Binary search for the leg containing t.
  auto it = std::lower_bound(
      pts.begin(), pts.end(), t,
      [](const TimedPoint& a, TimePoint v) { return a.t < v; });
  if (it == pts.begin()) {
    return pts.front().pos;
  }
  if (it == pts.end()) {
    return pts.back().pos;
  }
  const TimedPoint& hi = *it;
  const TimedPoint& lo = *(it - 1);
  Leg leg{lo.t, hi.t, lo.pos, hi.pos};
  return leg.At(t);
}

std::vector<LinearTrajectory::Leg> LinearTrajectory::Legs() const {
  std::vector<Leg> out;
  const auto& pts = sample_.points();
  for (size_t i = 1; i < pts.size(); ++i) {
    out.push_back({pts[i - 1].t, pts[i].t, pts[i - 1].pos, pts[i].pos});
  }
  return out;
}

double LinearTrajectory::Length() const {
  double total = 0.0;
  const auto& pts = sample_.points();
  for (size_t i = 1; i < pts.size(); ++i) {
    total += Distance(pts[i - 1].pos, pts[i].pos);
  }
  return total;
}

double LinearTrajectory::LengthDuring(const Interval& interval) const {
  double total = 0.0;
  for (const Leg& leg : Legs()) {
    TimePoint lo = std::max(leg.t0, interval.begin);
    TimePoint hi = std::min(leg.t1, interval.end);
    if (!(lo < hi)) {
      continue;
    }
    double frac = (hi - lo) / leg.DurationOf();
    total += Distance(leg.p0, leg.p1) * frac;
  }
  return total;
}

double LinearTrajectory::AverageSpeed() const {
  Interval domain = TimeDomain();
  temporal::Duration span = domain.Length();
  if (span <= 0.0) {
    return 0.0;
  }
  return Length() / span;
}

Result<geometry::Polyline> LinearTrajectory::AsPolyline() const {
  std::vector<Point> verts;
  for (const TimedPoint& tp : sample_.points()) {
    // Collapse consecutive duplicates (stationary legs).
    if (verts.empty() || !(verts.back() == tp.pos)) {
      verts.push_back(tp.pos);
    }
  }
  return geometry::Polyline::Create(std::move(verts));
}

double Polynomial::Eval(double t) const {
  double acc = 0.0;
  for (size_t i = coefficients_.size(); i-- > 0;) {
    acc = acc * t + coefficients_[i];
  }
  return acc;
}

namespace {

double EvalRational(const Polynomial& num, const Polynomial& den, double t) {
  double n = num.Eval(t);
  if (den.coefficients().empty()) {
    return n;
  }
  double d = den.Eval(t);
  if (d == 0.0) {
    return n >= 0 ? std::numeric_limits<double>::infinity()
                  : -std::numeric_limits<double>::infinity();
  }
  return n / d;
}

Point PieceAt(const PolynomialTrajectory::Piece& piece, double t) {
  return Point(EvalRational(piece.px, piece.qx, t),
               EvalRational(piece.py, piece.qy, t));
}

}  // namespace

Result<PolynomialTrajectory> PolynomialTrajectory::Create(
    std::vector<Piece> pieces) {
  if (pieces.empty()) {
    return Status::InvalidArgument("trajectory needs at least one piece");
  }
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (!(pieces[i].t0 < pieces[i].t1)) {
      return Status::InvalidArgument("piece " + std::to_string(i) +
                                     " has an empty time interval");
    }
    if (i > 0) {
      if (pieces[i - 1].t1 != pieces[i].t0) {
        return Status::InvalidArgument("pieces are not contiguous in time");
      }
      Point left = PieceAt(pieces[i - 1], pieces[i - 1].t1.seconds);
      Point right = PieceAt(pieces[i], pieces[i].t0.seconds);
      if (Distance(left, right) > 1e-9) {
        return Status::InvalidArgument(
            "trajectory is discontinuous at a piece junction");
      }
    }
  }
  return PolynomialTrajectory(std::move(pieces));
}

Interval PolynomialTrajectory::TimeDomain() const {
  return Interval(pieces_.front().t0, pieces_.back().t1);
}

std::optional<Point> PolynomialTrajectory::PositionAt(TimePoint t) const {
  for (const Piece& piece : pieces_) {
    if (piece.t0 <= t && t <= piece.t1) {
      return PieceAt(piece, t.seconds);
    }
  }
  return std::nullopt;
}

Result<TrajectorySample> PolynomialTrajectory::Discretize(
    int points_per_piece) const {
  if (points_per_piece < 2) {
    return Status::InvalidArgument("need >= 2 points per piece");
  }
  std::vector<TimedPoint> points;
  for (size_t pi = 0; pi < pieces_.size(); ++pi) {
    const Piece& piece = pieces_[pi];
    int start = (pi == 0) ? 0 : 1;  // Avoid duplicating junction points.
    for (int i = start; i < points_per_piece; ++i) {
      double u = static_cast<double>(i) / (points_per_piece - 1);
      double t = piece.t0.seconds + u * (piece.t1.seconds - piece.t0.seconds);
      points.push_back({TimePoint(t), PieceAt(piece, t)});
    }
  }
  return TrajectorySample::Create(std::move(points));
}

}  // namespace piet::moving
