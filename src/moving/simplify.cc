#include "moving/simplify.h"

#include <vector>

namespace piet::moving {

namespace {

using geometry::Point;

// Synchronized distance of points[i] from the time-parameterized segment
// points[lo] -> points[hi].
double SyncDistance(const std::vector<TimedPoint>& points, size_t lo,
                    size_t hi, size_t i) {
  const TimedPoint& a = points[lo];
  const TimedPoint& b = points[hi];
  temporal::Duration span = b.t - a.t;
  double u = span > 0.0 ? (points[i].t - a.t) / span : 0.0;
  Point expected = a.pos + (b.pos - a.pos) * u;
  return Distance(points[i].pos, expected);
}

// Recursive Douglas-Peucker over index range [lo, hi]; appends kept
// indices in (lo, hi) to `keep`.
void Simplify(const std::vector<TimedPoint>& points, size_t lo, size_t hi,
              double tolerance, std::vector<size_t>* keep) {
  if (hi <= lo + 1) {
    return;
  }
  double worst = -1.0;
  size_t worst_idx = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    double d = SyncDistance(points, lo, hi, i);
    if (d > worst) {
      worst = d;
      worst_idx = i;
    }
  }
  if (worst <= tolerance) {
    return;  // Every interior sample is representable by the chord.
  }
  Simplify(points, lo, worst_idx, tolerance, keep);
  keep->push_back(worst_idx);
  Simplify(points, worst_idx, hi, tolerance, keep);
}

}  // namespace

Result<TrajectorySample> SimplifySynchronized(const TrajectorySample& sample,
                                              double tolerance) {
  if (tolerance < 0.0) {
    return Status::InvalidArgument("tolerance must be >= 0");
  }
  const auto& points = sample.points();
  if (points.size() <= 2) {
    return sample;
  }
  std::vector<size_t> keep = {0};
  Simplify(points, 0, points.size() - 1, tolerance, &keep);
  keep.push_back(points.size() - 1);
  std::sort(keep.begin(), keep.end());

  std::vector<TimedPoint> out;
  out.reserve(keep.size());
  for (size_t i : keep) {
    out.push_back(points[i]);
  }
  return TrajectorySample::Create(std::move(out));
}

Result<double> MaxSynchronizedError(const TrajectorySample& original,
                                    const TrajectorySample& simplified) {
  PIET_ASSIGN_OR_RETURN(LinearTrajectory lit,
                        LinearTrajectory::FromSample(simplified));
  double worst = 0.0;
  for (const TimedPoint& tp : original.points()) {
    auto pos = lit.PositionAt(tp.t);
    if (!pos) {
      return Status::InvalidArgument(
          "simplified trajectory does not cover the original time domain");
    }
    worst = std::max(worst, Distance(tp.pos, *pos));
  }
  return worst;
}

}  // namespace piet::moving
