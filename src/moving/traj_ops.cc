#include "moving/traj_ops.h"

#include <algorithm>

#include "geometry/segment_polygon.h"

namespace piet::moving {

using geometry::ParamInterval;
using geometry::Polygon;
using geometry::Segment;
using temporal::Interval;
using temporal::IntervalSet;
using temporal::TimePoint;

IntervalSet InsideIntervals(const LinearTrajectory& trajectory,
                            const Polygon& region) {
  std::vector<Interval> pieces;
  for (const LinearTrajectory::Leg& leg : trajectory.Legs()) {
    Segment seg = leg.AsSegment();
    temporal::Duration span = leg.DurationOf();
    for (const ParamInterval& iv :
         geometry::SegmentInsideIntervals(seg, region)) {
      pieces.emplace_back(TimePoint(leg.t0.seconds + iv.t0 * span),
                          TimePoint(leg.t0.seconds + iv.t1 * span));
    }
  }
  // A single-point trajectory (one sample) has no legs; handle directly.
  if (trajectory.sample().size() == 1) {
    const TimedPoint& tp = trajectory.sample().points().front();
    if (region.Contains(tp.pos)) {
      pieces.emplace_back(tp.t, tp.t);
    }
  }
  return IntervalSet(std::move(pieces));
}

bool PassesThrough(const LinearTrajectory& trajectory, const Polygon& region) {
  if (!trajectory.sample().empty()) {
    // Cheap pre-check on the sampled points.
    for (const TimedPoint& tp : trajectory.sample().points()) {
      if (region.Contains(tp.pos)) {
        return true;
      }
    }
  }
  for (const LinearTrajectory::Leg& leg : trajectory.Legs()) {
    if (geometry::SegmentIntersectsPolygon(leg.AsSegment(), region)) {
      return true;
    }
  }
  return false;
}

temporal::Duration TimeInRegion(const LinearTrajectory& trajectory,
                                const Polygon& region) {
  return InsideIntervals(trajectory, region).TotalLength();
}

IntervalSet WithinDistanceIntervals(const LinearTrajectory& trajectory,
                                    geometry::Point center, double radius) {
  std::vector<Interval> pieces;
  for (const LinearTrajectory::Leg& leg : trajectory.Legs()) {
    temporal::Duration span = leg.DurationOf();
    for (const ParamInterval& iv : geometry::SegmentWithinDistanceIntervals(
             leg.AsSegment(), center, radius)) {
      pieces.emplace_back(TimePoint(leg.t0.seconds + iv.t0 * span),
                          TimePoint(leg.t0.seconds + iv.t1 * span));
    }
  }
  if (trajectory.sample().size() == 1) {
    const TimedPoint& tp = trajectory.sample().points().front();
    if (Distance(tp.pos, center) <= radius) {
      pieces.emplace_back(tp.t, tp.t);
    }
  }
  return IntervalSet(std::move(pieces));
}

std::vector<Sample> SamplesInRegion(const Moft& moft, ObjectId oid,
                                    const Polygon& region) {
  std::vector<Sample> out;
  for (const Sample& s : moft.SamplesOf(oid)) {
    if (region.Contains(s.pos)) {
      out.push_back(s);
    }
  }
  return out;
}

bool StaysWithin(const LinearTrajectory& trajectory, const Polygon& region) {
  Interval domain = trajectory.TimeDomain();
  IntervalSet inside = InsideIntervals(trajectory, region);
  return inside.Contains(domain.begin) && inside.Contains(domain.end) &&
         inside.TotalLength() >= domain.Length() - 1e-12;
}

double DistanceTravelledInside(const LinearTrajectory& trajectory,
                               const Polygon& region) {
  double total = 0.0;
  for (const LinearTrajectory::Leg& leg : trajectory.Legs()) {
    double leg_len = Distance(leg.p0, leg.p1);
    if (leg_len == 0.0) {
      continue;
    }
    for (const ParamInterval& iv :
         geometry::SegmentInsideIntervals(leg.AsSegment(), region)) {
      total += leg_len * iv.Length();
    }
  }
  return total;
}

int EntryCount(const LinearTrajectory& trajectory, const Polygon& region) {
  IntervalSet inside = InsideIntervals(trajectory, region);
  return static_cast<int>(inside.size());
}

}  // namespace piet::moving
