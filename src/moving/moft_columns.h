#ifndef PIET_MOVING_MOFT_COLUMNS_H_
#define PIET_MOVING_MOFT_COLUMNS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include "geometry/point.h"
#include "temporal/time_point.h"

namespace piet::moving {

/// Identifier of a moving object (the paper's Oid).
using ObjectId = int64_t;

/// One observation row of the MOFT: (Oid, t, x, y).
struct Sample {
  ObjectId oid = 0;
  temporal::TimePoint t;
  geometry::Point pos;

  friend bool operator==(const Sample& a, const Sample& b) {
    return a.oid == b.oid && a.t == b.t && a.pos == b.pos;
  }
};

/// Sealed columnar (structure-of-arrays) storage of a MOFT: one contiguous
/// array per attribute, globally sorted by (oid, t), plus a per-object span
/// index. Built by Moft on the first read after a mutation ("seal");
/// consumers only ever see it const. `seal_epoch` identifies the rebuild a
/// view was taken against — it bumps on every seal, like the database
/// overlay epoch, so stale views are detectable (SampleView::valid()).
struct MoftColumns {
  std::vector<ObjectId> oid;
  std::vector<double> t;
  std::vector<double> x;
  std::vector<double> y;

  /// Half-open row range [begin, end) of one object; spans are ascending
  /// by oid and partition [0, size()).
  struct Span {
    ObjectId oid = 0;
    size_t begin = 0;
    size_t end = 0;
  };
  std::vector<Span> spans;

  /// 0 = never sealed; bumped on every rebuild.
  uint64_t seal_epoch = 0;

  size_t size() const { return oid.size(); }

  /// Materializes row i (three column loads; no allocation).
  Sample at(size_t i) const {
    return Sample{oid[i], temporal::TimePoint(t[i]),
                  geometry::Point(x[i], y[i])};
  }
};

/// Zero-copy view of a contiguous row range of sealed columns. Rows
/// materialize as Sample values on access; nothing is copied up front.
/// The view borrows the columns: it stays valid until the owning Moft is
/// mutated and resealed (valid() compares the captured epoch) and must not
/// outlive the Moft.
class SampleView {
 public:
  class iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = Sample;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = Sample;

    iterator() = default;
    iterator(const MoftColumns* cols, size_t i) : cols_(cols), i_(i) {}

    Sample operator*() const { return cols_->at(i_); }
    Sample operator[](difference_type d) const {
      return cols_->at(i_ + static_cast<size_t>(d));
    }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator out = *this;
      ++i_;
      return out;
    }
    iterator& operator--() {
      --i_;
      return *this;
    }
    iterator operator--(int) {
      iterator out = *this;
      --i_;
      return out;
    }
    iterator& operator+=(difference_type d) {
      i_ = static_cast<size_t>(static_cast<difference_type>(i_) + d);
      return *this;
    }
    iterator& operator-=(difference_type d) { return *this += -d; }
    friend iterator operator+(iterator it, difference_type d) {
      it += d;
      return it;
    }
    friend iterator operator+(difference_type d, iterator it) {
      it += d;
      return it;
    }
    friend iterator operator-(iterator it, difference_type d) {
      it -= d;
      return it;
    }
    friend difference_type operator-(iterator a, iterator b) {
      return static_cast<difference_type>(a.i_) -
             static_cast<difference_type>(b.i_);
    }
    friend bool operator==(iterator a, iterator b) { return a.i_ == b.i_; }
    friend bool operator!=(iterator a, iterator b) { return !(a == b); }
    friend bool operator<(iterator a, iterator b) { return a.i_ < b.i_; }
    friend bool operator>(iterator a, iterator b) { return b < a; }
    friend bool operator<=(iterator a, iterator b) { return !(b < a); }
    friend bool operator>=(iterator a, iterator b) { return !(a < b); }

   private:
    const MoftColumns* cols_ = nullptr;
    size_t i_ = 0;
  };

  SampleView() = default;
  SampleView(const MoftColumns* cols, size_t begin, size_t end)
      : cols_(cols),
        begin_(begin),
        end_(end),
        epoch_(cols != nullptr ? cols->seal_epoch : 0) {}

  size_t size() const { return end_ - begin_; }
  bool empty() const { return begin_ == end_; }

  Sample operator[](size_t i) const { return cols_->at(begin_ + i); }
  Sample front() const { return (*this)[0]; }
  Sample back() const { return (*this)[size() - 1]; }

  iterator begin() const { return iterator(cols_, begin_); }
  iterator end() const { return iterator(cols_, end_); }

  /// The underlying columns (null for a default-constructed view).
  const MoftColumns* columns() const { return cols_; }
  /// First row of the view in column coordinates — aligns view-relative
  /// indices with whole-table structures (e.g. classification hit offsets).
  size_t offset() const { return begin_; }

  /// Epoch of the seal this view was taken against.
  uint64_t seal_epoch() const { return epoch_; }
  /// False once the owning Moft was mutated and resealed: the borrowed
  /// column data has been rebuilt and this view must be re-acquired.
  bool valid() const { return cols_ != nullptr && epoch_ == cols_->seal_epoch; }

 protected:
  const MoftColumns* cols_ = nullptr;
  size_t begin_ = 0;
  size_t end_ = 0;
  uint64_t epoch_ = 0;
};

/// One trajectory leg: the segment between two consecutive samples of the
/// same object.
struct TrajectoryLeg {
  temporal::TimePoint t0;
  temporal::TimePoint t1;
  geometry::Point p0;
  geometry::Point p1;
};

/// Zero-copy view of the trajectory legs of one object span: leg i connects
/// samples i and i+1. Empty for spans with fewer than two samples.
class LegView {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = TrajectoryLeg;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = TrajectoryLeg;

    iterator() = default;
    iterator(const MoftColumns* cols, size_t i) : cols_(cols), i_(i) {}

    TrajectoryLeg operator*() const {
      return TrajectoryLeg{temporal::TimePoint(cols_->t[i_]),
                           temporal::TimePoint(cols_->t[i_ + 1]),
                           geometry::Point(cols_->x[i_], cols_->y[i_]),
                           geometry::Point(cols_->x[i_ + 1],
                                           cols_->y[i_ + 1])};
    }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator out = *this;
      ++i_;
      return out;
    }
    friend bool operator==(iterator a, iterator b) { return a.i_ == b.i_; }
    friend bool operator!=(iterator a, iterator b) { return !(a == b); }

   private:
    const MoftColumns* cols_ = nullptr;
    size_t i_ = 0;
  };

  LegView() = default;
  LegView(const MoftColumns* cols, size_t begin, size_t end)
      : cols_(cols), begin_(begin), end_(end) {}

  size_t size() const { return end_ - begin_ >= 2 ? end_ - begin_ - 1 : 0; }
  bool empty() const { return size() == 0; }
  TrajectoryLeg operator[](size_t i) const {
    return *iterator(cols_, begin_ + i);
  }
  iterator begin() const { return iterator(cols_, begin_); }
  iterator end() const { return iterator(cols_, begin_ + size()); }

 private:
  const MoftColumns* cols_ = nullptr;
  size_t begin_ = 0;
  size_t end_ = 0;
};

/// A SampleView restricted to one object (its rows are consecutive in the
/// columns because they are sorted by (oid, t); within the span the time
/// column is strictly increasing).
class ObjectSpan : public SampleView {
 public:
  ObjectSpan() = default;
  ObjectSpan(const MoftColumns* cols, ObjectId oid, size_t begin, size_t end)
      : SampleView(cols, begin, end), oid_(oid) {}
  ObjectSpan(const MoftColumns* cols, const MoftColumns::Span& span)
      : SampleView(cols, span.begin, span.end), oid_(span.oid) {}

  ObjectId oid() const { return oid_; }

  /// The trajectory legs between consecutive samples of this object.
  LegView Legs() const { return LegView(cols_, begin_, end_); }

  /// The sub-span with t in the closed window [t0, t1] (binary search on
  /// the time column; empty when t1 < t0 or nothing falls inside).
  SampleView Window(temporal::TimePoint t0, temporal::TimePoint t1) const {
    if (cols_ == nullptr || empty() || t1 < t0) {
      return SampleView(cols_, begin_, begin_);
    }
    const double* tb = cols_->t.data() + begin_;
    const double* te = cols_->t.data() + end_;
    const double* lo = std::lower_bound(tb, te, t0.seconds);
    const double* hi = std::upper_bound(lo, te, t1.seconds);
    size_t b = begin_ + static_cast<size_t>(lo - tb);
    size_t e = begin_ + static_cast<size_t>(hi - tb);
    return SampleView(cols_, b, e);
  }

 private:
  ObjectId oid_ = 0;
};

/// Zero-copy result of a closed time-window query over the whole table:
/// the matching rows of each object, as per-object contiguous column
/// ranges in (oid, t) order. Random access resolves through cumulative
/// range offsets; iteration walks the ranges without touching skipped rows.
class SampleWindow {
 public:
  /// One contiguous matching range; `cum` counts the matching rows before
  /// it, so range r covers window-relative indices [cum, cum + end - begin).
  struct Range {
    size_t begin = 0;
    size_t end = 0;
    size_t cum = 0;
  };

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Sample;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = Sample;

    iterator() = default;
    iterator(const SampleWindow* window, size_t range_idx, size_t row)
        : window_(window), range_idx_(range_idx), row_(row) {}

    Sample operator*() const { return window_->cols_->at(row_); }
    iterator& operator++() {
      ++row_;
      if (row_ == window_->ranges_[range_idx_].end) {
        ++range_idx_;
        row_ = range_idx_ < window_->ranges_.size()
                   ? window_->ranges_[range_idx_].begin
                   : 0;
      }
      return *this;
    }
    iterator operator++(int) {
      iterator out = *this;
      ++*this;
      return out;
    }
    friend bool operator==(iterator a, iterator b) {
      return a.range_idx_ == b.range_idx_ && a.row_ == b.row_;
    }
    friend bool operator!=(iterator a, iterator b) { return !(a == b); }

   private:
    const SampleWindow* window_ = nullptr;
    size_t range_idx_ = 0;
    size_t row_ = 0;
  };

  SampleWindow() = default;
  SampleWindow(const MoftColumns* cols, std::vector<Range> ranges,
               size_t total)
      : cols_(cols), ranges_(std::move(ranges)), total_(total) {}

  size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }

  /// Window-relative random access (O(log #ranges)).
  Sample operator[](size_t i) const {
    const Range& r = *std::prev(std::upper_bound(
        ranges_.begin(), ranges_.end(), i,
        [](size_t v, const Range& range) { return v < range.cum; }));
    return cols_->at(r.begin + (i - r.cum));
  }

  iterator begin() const {
    return ranges_.empty() ? end() : iterator(this, 0, ranges_[0].begin);
  }
  iterator end() const { return iterator(this, ranges_.size(), 0); }

  const std::vector<Range>& ranges() const { return ranges_; }
  const MoftColumns* columns() const { return cols_; }

 private:
  const MoftColumns* cols_ = nullptr;
  std::vector<Range> ranges_;
  size_t total_ = 0;
};

}  // namespace piet::moving

#endif  // PIET_MOVING_MOFT_COLUMNS_H_
