#include "moving/bead.h"

#include <algorithm>
#include <cmath>

namespace piet::moving {

using geometry::Point;
using geometry::Polygon;
using geometry::Ring;

Result<LifelineBead> LifelineBead::Create(TimedPoint a, TimedPoint b,
                                          double vmax) {
  if (!(a.t < b.t)) {
    return Status::InvalidArgument("bead needs a.t < b.t");
  }
  if (vmax <= 0.0) {
    return Status::InvalidArgument("vmax must be positive");
  }
  double reach = vmax * (b.t - a.t);
  double dist = Distance(a.pos, b.pos);
  if (dist > reach * (1.0 + 1e-12)) {
    return Status::InvalidArgument(
        "observations are inconsistent with the speed bound (distance " +
        std::to_string(dist) + " > vmax*dt " + std::to_string(reach) + ")");
  }
  return LifelineBead(a, b, vmax);
}

LifelineBead::LifelineBead(TimedPoint a, TimedPoint b, double vmax)
    : a_(a), b_(b), vmax_(vmax) {
  double two_a = vmax_ * (b_.t - a_.t);
  semi_major_ = two_a / 2.0;
  double c = Distance(a_.pos, b_.pos) / 2.0;  // Focal half-distance.
  double min_sq = std::max(0.0, semi_major_ * semi_major_ - c * c);
  semi_minor_ = std::sqrt(min_sq);
  Point d = b_.pos - a_.pos;
  double norm = Norm(d);
  if (norm == 0.0) {
    cos_theta_ = 1.0;
    sin_theta_ = 0.0;
  } else {
    cos_theta_ = d.x / norm;
    sin_theta_ = d.y / norm;
  }
}

Point LifelineBead::Center() const {
  return (a_.pos + b_.pos) / 2.0;
}

Point LifelineBead::ToUnitFrame(Point p) const {
  Point rel = p - Center();
  // Rotate by -theta, then scale axes to unit.
  double rx = rel.x * cos_theta_ + rel.y * sin_theta_;
  double ry = -rel.x * sin_theta_ + rel.y * cos_theta_;
  double ux = semi_major_ > 0.0 ? rx / semi_major_ : rx * 1e18;
  double uy = semi_minor_ > 0.0 ? ry / semi_minor_ : ry * 1e18;
  return Point(ux, uy);
}

bool LifelineBead::ContainsPoint(Point p) const {
  Point u = ToUnitFrame(p);
  return Dot(u, u) <= 1.0 + 1e-12;
}

namespace {

// Exact closed segment vs closed unit disc intersection test.
bool SegmentMeetsUnitDisc(Point a, Point b) {
  Point d = b - a;
  double len2 = Dot(d, d);
  double t = 0.0;
  if (len2 > 0.0) {
    t = std::clamp(-Dot(a, d) / len2, 0.0, 1.0);
  }
  Point closest = a + d * t;
  return Dot(closest, closest) <= 1.0 + 1e-12;
}

}  // namespace

bool LifelineBead::IntersectsPolygon(const Polygon& polygon) const {
  // Degenerate bead (zero minor axis): the projection is the focal
  // segment.
  if (semi_minor_ <= 0.0) {
    return polygon.IntersectsSegment({a_.pos, b_.pos});
  }
  // Case 1: polygon contains the ellipse center (covers "ellipse inside
  // polygon" and overlapping cases).
  if (polygon.Contains(Center())) {
    return true;
  }
  // Case 2: some polygon edge meets the ellipse — map to the unit frame and
  // run the exact segment-disc test. (Holes need no special treatment for a
  // boundary-meet test; an ellipse strictly inside a hole neither contains
  // the center nor meets edges, and is indeed disjoint from the polygon.)
  const Ring& shell = polygon.shell();
  for (size_t i = 0; i < shell.size(); ++i) {
    auto edge = shell.edge(i);
    if (SegmentMeetsUnitDisc(ToUnitFrame(edge.a), ToUnitFrame(edge.b))) {
      return true;
    }
  }
  for (const Ring& hole : polygon.holes()) {
    for (size_t i = 0; i < hole.size(); ++i) {
      auto edge = hole.edge(i);
      if (SegmentMeetsUnitDisc(ToUnitFrame(edge.a), ToUnitFrame(edge.b))) {
        return true;
      }
    }
  }
  return false;
}

std::optional<LifelineBead::Disc> LifelineBead::CrossSectionAt(
    temporal::TimePoint t) const {
  if (t < a_.t || t > b_.t) {
    return std::nullopt;
  }
  // Reachable set at time t: points within vmax*(t-t0) of p0 AND within
  // vmax*(t1-t) of p1 — an intersection of two discs. We return the
  // bounding disc of that lens: centered on the line p0->p1 at the
  // interpolated position, with radius = min slack.
  double r0 = vmax_ * (t - a_.t);
  double r1 = vmax_ * (b_.t - t);
  temporal::Duration span = b_.t - a_.t;
  double u = span > 0.0 ? (t - a_.t) / span : 0.0;
  Point on_line = a_.pos + (b_.pos - a_.pos) * u;
  double d = Distance(a_.pos, b_.pos);
  // Slack beyond the straight-line requirement, split between both discs.
  double radius = std::min(r0 - u * d, r1 - (1.0 - u) * d);
  radius = std::max(0.0, radius);
  return Disc{on_line, radius};
}

Result<std::vector<LifelineBead>> BeadsOf(const TrajectorySample& sample,
                                          double vmax) {
  std::vector<LifelineBead> beads;
  const auto& pts = sample.points();
  for (size_t i = 1; i < pts.size(); ++i) {
    PIET_ASSIGN_OR_RETURN(LifelineBead bead,
                          LifelineBead::Create(pts[i - 1], pts[i], vmax));
    beads.push_back(std::move(bead));
  }
  return beads;
}

Result<bool> PossiblyPassesThrough(const TrajectorySample& sample, double vmax,
                                   const Polygon& region) {
  // Single observations are points.
  for (const TimedPoint& tp : sample.points()) {
    if (region.Contains(tp.pos)) {
      return true;
    }
  }
  PIET_ASSIGN_OR_RETURN(std::vector<LifelineBead> beads,
                        BeadsOf(sample, vmax));
  for (const LifelineBead& bead : beads) {
    if (bead.IntersectsPolygon(region)) {
      return true;
    }
  }
  return false;
}

}  // namespace piet::moving
