#include "moving/moft.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>

#include "common/string_util.h"

namespace piet::moving {

using temporal::TimePoint;

Status Moft::Add(ObjectId oid, TimePoint t, geometry::Point pos) {
  auto& samples = by_object_[oid];
  Sample s{oid, t, pos};
  auto it = std::lower_bound(samples.begin(), samples.end(), t,
                             [](const Sample& a, TimePoint v) {
                               return a.t < v;
                             });
  if (it != samples.end() && it->t == t) {
    if (it->pos == pos) {
      return Status::OK();  // Idempotent duplicate.
    }
    return Status::AlreadyExists(
        "object " + std::to_string(oid) + " already sampled at t=" +
        std::to_string(t.seconds) + " with a different position");
  }
  samples.insert(it, s);
  ++size_;
  return Status::OK();
}

std::vector<ObjectId> Moft::ObjectIds() const {
  std::vector<ObjectId> out;
  out.reserve(by_object_.size());
  for (const auto& [oid, samples] : by_object_) {
    out.push_back(oid);
  }
  return out;
}

const std::vector<Sample>& Moft::SamplesOf(ObjectId oid) const {
  static const std::vector<Sample>* kEmpty = new std::vector<Sample>();
  auto it = by_object_.find(oid);
  if (it == by_object_.end()) {
    return *kEmpty;
  }
  return it->second;
}

std::vector<Sample> Moft::AllSamples() const {
  std::vector<Sample> out;
  out.reserve(size_);
  for (const auto& [oid, samples] : by_object_) {
    out.insert(out.end(), samples.begin(), samples.end());
  }
  return out;
}

std::vector<Sample> Moft::SamplesBetween(TimePoint t0, TimePoint t1) const {
  std::vector<Sample> out;
  for (const auto& [oid, samples] : by_object_) {
    auto lo = std::lower_bound(
        samples.begin(), samples.end(), t0,
        [](const Sample& s, TimePoint v) { return s.t < v; });
    for (auto it = lo; it != samples.end() && it->t <= t1; ++it) {
      out.push_back(*it);
    }
  }
  return out;
}

Result<temporal::Interval> Moft::TimeSpan() const {
  if (size_ == 0) {
    return Status::NotFound("empty MOFT has no time span");
  }
  TimePoint lo = TimePoint(std::numeric_limits<double>::infinity());
  TimePoint hi = TimePoint(-std::numeric_limits<double>::infinity());
  for (const auto& [oid, samples] : by_object_) {
    if (!samples.empty()) {
      lo = std::min(lo, samples.front().t);
      hi = std::max(hi, samples.back().t);
    }
  }
  return temporal::Interval(lo, hi);
}

olap::FactTable Moft::ToFactTable() const {
  olap::FactTable table = olap::FactTable::Make({"Oid", "t", "x", "y"}, {});
  for (const Sample& s : AllSamples()) {
    (void)table.Append({Value(s.oid), Value(s.t.seconds), Value(s.pos.x),
                        Value(s.pos.y)});
  }
  return table;
}

Status Moft::WriteCsv(std::ostream& out) const {
  out << "# oid,t,x,y\n";
  for (const Sample& s : AllSamples()) {
    out << s.oid << "," << s.t.seconds << "," << s.pos.x << "," << s.pos.y
        << "\n";
  }
  if (!out) {
    return Status::IoError("failed writing MOFT CSV");
  }
  return Status::OK();
}

Result<Moft> Moft::ReadCsv(std::istream& in) {
  Moft moft;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv.front() == '#') {
      continue;
    }
    std::vector<std::string> fields = Split(sv, ',');
    if (fields.size() != 4) {
      return Status::ParseError("line " + std::to_string(lineno) +
                                ": expected 4 fields, got " +
                                std::to_string(fields.size()));
    }
    auto parse_double = [&](const std::string& s) -> Result<double> {
      std::string t(Trim(s));
      double v = 0.0;
      auto res = std::from_chars(t.data(), t.data() + t.size(), v);
      if (res.ec != std::errc() || res.ptr != t.data() + t.size()) {
        return Status::ParseError("line " + std::to_string(lineno) +
                                  ": bad number '" + t + "'");
      }
      return v;
    };
    PIET_ASSIGN_OR_RETURN(double oid_d, parse_double(fields[0]));
    PIET_ASSIGN_OR_RETURN(double t, parse_double(fields[1]));
    PIET_ASSIGN_OR_RETURN(double x, parse_double(fields[2]));
    PIET_ASSIGN_OR_RETURN(double y, parse_double(fields[3]));
    PIET_RETURN_NOT_OK(moft.Add(static_cast<ObjectId>(oid_d), TimePoint(t),
                                geometry::Point(x, y)));
  }
  return moft;
}

}  // namespace piet::moving
