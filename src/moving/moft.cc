#include "moving/moft.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace piet::moving {

using temporal::TimePoint;

Moft::Moft(const Moft& other) {
  std::lock_guard<std::mutex> lock(other.seal_mu_);
  index_ = other.index_;
  size_ = other.size_;
  staging_ = other.staging_;
  cols_ = other.cols_;
}

Moft& Moft::operator=(const Moft& other) {
  if (this != &other) {
    // Consistent snapshot of `other`; `this` must not be under concurrent
    // read during assignment (single-writer contract).
    std::lock_guard<std::mutex> lock(other.seal_mu_);
    index_ = other.index_;
    size_ = other.size_;
    staging_ = other.staging_;
    cols_ = other.cols_;
  }
  return *this;
}

Moft::Moft(Moft&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.seal_mu_);
  index_ = std::move(other.index_);
  size_ = other.size_;
  other.size_ = 0;
  staging_ = std::move(other.staging_);
  cols_ = std::move(other.cols_);
}

Moft& Moft::operator=(Moft&& other) noexcept {
  if (this != &other) {
    std::lock_guard<std::mutex> lock(other.seal_mu_);
    index_ = std::move(other.index_);
    size_ = other.size_;
    other.size_ = 0;
    staging_ = std::move(other.staging_);
    cols_ = std::move(other.cols_);
  }
  return *this;
}

Status Moft::Add(ObjectId oid, TimePoint t, geometry::Point pos) {
  auto [it, inserted] = index_.try_emplace(SampleKey{oid, t.seconds}, pos);
  if (!inserted) {
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global()
          .GetCounter("moft.duplicates_rejected")
          .Add(1);
    }
    if (it->second == pos) {
      return Status::OK();  // Idempotent duplicate.
    }
    return Status::AlreadyExists(
        "object " + std::to_string(oid) + " already sampled at t=" +
        std::to_string(t.seconds) + " with a different position");
  }
  staging_.push_back(Sample{oid, t, pos});
  ++size_;
  return Status::OK();
}

const MoftColumns& Moft::EnsureSealed() const {
  std::lock_guard<std::mutex> lock(seal_mu_);
  if (!staging_.empty() || cols_.seal_epoch == 0) {
    SealLocked();
  }
  return cols_;
}

void Moft::SealLocked() const {
  if (obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("moft.seals").Add(1);
    registry.GetCounter("moft.rows_staged")
        .Add(static_cast<int64_t>(staging_.size()));
  }
  // Append the staged rows to the columns.
  const size_t n = cols_.size() + staging_.size();
  cols_.oid.reserve(n);
  cols_.t.reserve(n);
  cols_.x.reserve(n);
  cols_.y.reserve(n);
  for (const Sample& s : staging_) {
    cols_.oid.push_back(s.oid);
    cols_.t.push_back(s.t.seconds);
    cols_.x.push_back(s.pos.x);
    cols_.y.push_back(s.pos.y);
  }
  staging_.clear();

  // Sort by (oid, t) unless already ordered (the common bulk-load pattern:
  // per-object appends in time order). Keys are unique — duplicates were
  // rejected at Add — so the order is strict.
  auto key_less = [this](size_t a, size_t b) {
    if (cols_.oid[a] != cols_.oid[b]) {
      return cols_.oid[a] < cols_.oid[b];
    }
    return cols_.t[a] < cols_.t[b];
  };
  bool sorted = true;
  for (size_t i = 1; i < n; ++i) {
    if (!key_less(i - 1, i)) {
      sorted = false;
      break;
    }
  }
  if (!sorted) {
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetCounter("moft.resorts").Add(1);
    }
    std::vector<size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), key_less);
    auto gather_i64 = [&](std::vector<ObjectId>* col) {
      std::vector<ObjectId> out(n);
      for (size_t i = 0; i < n; ++i) {
        out[i] = (*col)[perm[i]];
      }
      *col = std::move(out);
    };
    auto gather_f64 = [&](std::vector<double>* col) {
      std::vector<double> out(n);
      for (size_t i = 0; i < n; ++i) {
        out[i] = (*col)[perm[i]];
      }
      *col = std::move(out);
    };
    gather_i64(&cols_.oid);
    gather_f64(&cols_.t);
    gather_f64(&cols_.x);
    gather_f64(&cols_.y);
  }

  // Rebuild the per-object span index.
  cols_.spans.clear();
  for (size_t i = 0; i < n;) {
    size_t begin = i;
    ObjectId oid = cols_.oid[i];
    while (i < n && cols_.oid[i] == oid) {
      ++i;
    }
    cols_.spans.push_back(MoftColumns::Span{oid, begin, i});
  }

  ++cols_.seal_epoch;
}

size_t Moft::num_objects() const { return EnsureSealed().spans.size(); }

std::vector<ObjectId> Moft::ObjectIds() const {
  const MoftColumns& cols = EnsureSealed();
  std::vector<ObjectId> out;
  out.reserve(cols.spans.size());
  for (const MoftColumns::Span& span : cols.spans) {
    out.push_back(span.oid);
  }
  return out;
}

const MoftColumns& Moft::Columns() const { return EnsureSealed(); }

SampleView Moft::Scan() const {
  const MoftColumns& cols = EnsureSealed();
  return SampleView(&cols, 0, cols.size());
}

ObjectSpan Moft::SamplesOf(ObjectId oid) const {
  const MoftColumns& cols = EnsureSealed();
  auto it = std::lower_bound(
      cols.spans.begin(), cols.spans.end(), oid,
      [](const MoftColumns::Span& s, ObjectId v) { return s.oid < v; });
  if (it == cols.spans.end() || it->oid != oid) {
    return ObjectSpan(&cols, oid, 0, 0);
  }
  return ObjectSpan(&cols, *it);
}

ObjectSpan Moft::SpanAt(size_t index) const {
  const MoftColumns& cols = EnsureSealed();
  return ObjectSpan(&cols, cols.spans[index]);
}

SampleWindow Moft::SamplesBetween(TimePoint t0, TimePoint t1) const {
  const MoftColumns& cols = EnsureSealed();
  std::vector<SampleWindow::Range> ranges;
  size_t total = 0;
  if (!(t1 < t0)) {
    for (const MoftColumns::Span& span : cols.spans) {
      const double* tb = cols.t.data() + span.begin;
      const double* te = cols.t.data() + span.end;
      const double* lo = std::lower_bound(tb, te, t0.seconds);
      const double* hi = std::upper_bound(lo, te, t1.seconds);
      if (lo == hi) {
        continue;
      }
      size_t begin = span.begin + static_cast<size_t>(lo - tb);
      size_t end = span.begin + static_cast<size_t>(hi - tb);
      ranges.push_back(SampleWindow::Range{begin, end, total});
      total += end - begin;
    }
  }
  return SampleWindow(&cols, std::move(ranges), total);
}

uint64_t Moft::seal_epoch() const {
  std::lock_guard<std::mutex> lock(seal_mu_);
  return cols_.seal_epoch;
}

std::vector<Sample> Moft::AllSamples() const {
  const MoftColumns& cols = EnsureSealed();
  std::vector<Sample> out;
  out.reserve(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    out.push_back(cols.at(i));
  }
  return out;
}

Result<temporal::Interval> Moft::TimeSpan() const {
  const MoftColumns& cols = EnsureSealed();
  if (cols.size() == 0) {
    return Status::NotFound("empty MOFT has no time span");
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const MoftColumns::Span& span : cols.spans) {
    lo = std::min(lo, cols.t[span.begin]);
    hi = std::max(hi, cols.t[span.end - 1]);
  }
  return temporal::Interval(TimePoint(lo), TimePoint(hi));
}

olap::FactTable Moft::ToFactTable() const {
  olap::FactTable table = olap::FactTable::Make({"Oid", "t", "x", "y"}, {});
  for (const Sample& s : Scan()) {
    (void)table.Append({Value(s.oid), Value(s.t.seconds), Value(s.pos.x),
                        Value(s.pos.y)});
  }
  return table;
}

Status Moft::WriteCsv(std::ostream& out) const {
  out << "# oid,t,x,y\n";
  for (const Sample& s : Scan()) {
    out << s.oid << "," << s.t.seconds << "," << s.pos.x << "," << s.pos.y
        << "\n";
  }
  if (!out) {
    return Status::IoError("failed writing MOFT CSV");
  }
  return Status::OK();
}

Result<Moft> Moft::ReadCsv(std::istream& in) {
  Moft moft;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv.front() == '#') {
      continue;
    }
    std::vector<std::string> fields = Split(sv, ',');
    if (fields.size() != 4) {
      return Status::ParseError("line " + std::to_string(lineno) +
                                ": expected 4 fields, got " +
                                std::to_string(fields.size()));
    }
    auto parse_double = [&](const std::string& s) -> Result<double> {
      std::string t(Trim(s));
      double v = 0.0;
      auto res = std::from_chars(t.data(), t.data() + t.size(), v);
      if (res.ec != std::errc() || res.ptr != t.data() + t.size()) {
        return Status::ParseError("line " + std::to_string(lineno) +
                                  ": bad number '" + t + "'");
      }
      return v;
    };
    PIET_ASSIGN_OR_RETURN(double oid_d, parse_double(fields[0]));
    PIET_ASSIGN_OR_RETURN(double t, parse_double(fields[1]));
    PIET_ASSIGN_OR_RETURN(double x, parse_double(fields[2]));
    PIET_ASSIGN_OR_RETURN(double y, parse_double(fields[3]));
    PIET_RETURN_NOT_OK(moft.Add(static_cast<ObjectId>(oid_d), TimePoint(t),
                                geometry::Point(x, y)));
  }
  return moft;
}

}  // namespace piet::moving
