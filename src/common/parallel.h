#ifndef PIET_COMMON_PARALLEL_H_
#define PIET_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace piet::parallel {

/// Upper bound on chunks per ParallelFor plan (and on pool workers). Small
/// enough that per-chunk scratch buffers stay cheap, large enough to load
/// any machine this project targets.
inline constexpr size_t kMaxChunks = 64;

/// Worker count from the PIET_THREADS environment variable (clamped to
/// [1, kMaxChunks]); std::thread::hardware_concurrency() when unset or
/// unparsable. Read once and cached for the process lifetime.
int DefaultThreads();

/// `requested` > 0 wins; otherwise DefaultThreads(). This is the resolution
/// rule every `num_threads`/`threads` knob in the codebase goes through.
int ResolveThreads(int requested);

/// A deterministic partition of [0, n) into at most kMaxChunks contiguous
/// chunks. Chunk boundaries depend ONLY on `n` — never on the thread count
/// — which is what makes ordered per-chunk reduction bit-identical to
/// serial execution however many workers ran.
struct ChunkPlan {
  size_t n = 0;
  size_t num_chunks = 0;

  /// Half-open range of chunk `i` (chunks differ in size by at most 1).
  std::pair<size_t, size_t> Chunk(size_t i) const {
    size_t base = n / num_chunks;
    size_t rem = n % num_chunks;
    size_t begin = i * base + (i < rem ? i : rem);
    size_t end = begin + base + (i < rem ? 1 : 0);
    return {begin, end};
  }
};

ChunkPlan PlanChunks(size_t n);

/// A lazily-initialized global pool of detachable workers. Workers are
/// spawned on demand up to the largest thread count ever requested (capped
/// at kMaxChunks) and joined at process exit. The pool only ever sees work
/// from ParallelFor below; there is no general task-submission API on
/// purpose — every use in this codebase is a blocking chunked loop with an
/// ordered merge, and keeping the surface that narrow keeps the
/// determinism contract auditable.
class ThreadPool {
 public:
  static ThreadPool& Global();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(chunk, begin, end) for every chunk of `plan`, using up to
  /// `threads` concurrent executors (the calling thread participates).
  /// Blocks until every chunk completed. Chunks are claimed dynamically but
  /// the chunk *identity* passed to the body is fixed by the plan, so
  /// per-chunk outputs merged in chunk order are scheduling-independent.
  void Run(int threads, const ChunkPlan& plan,
           const std::function<void(size_t, size_t, size_t)>& body);

 private:
  ThreadPool() = default;

  void EnsureWorkers(size_t want);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// The one parallel-loop primitive of the codebase. Splits [0, n) with
/// PlanChunks and runs `body(chunk, begin, end)` for every chunk.
///
/// Determinism contract: with `threads <= 1` (after ResolveThreads the
/// caller passes the resolved count) or a single-chunk plan, every chunk
/// runs inline on the calling thread in chunk order — the exact serial
/// code path, no pool, locks, or atomics. With more threads the same
/// chunks run concurrently; callers that produce output MUST write into
/// per-chunk slots and merge in chunk order, which yields bit-identical
/// results to the serial path.
void ParallelFor(int threads, size_t n,
                 const std::function<void(size_t, size_t, size_t)>& body);

/// Ordered reduction: `body(chunk, begin, end, &slot)` fills a private
/// T per chunk; `merge(slot)` then consumes the slots on the calling
/// thread in ascending chunk order. The shape every parallel hot path in
/// gis/core uses to stay bit-identical to serial execution.
template <typename T, typename Body, typename Merge>
void OrderedReduce(int threads, size_t n, Body&& body, Merge&& merge) {
  ChunkPlan plan = PlanChunks(n);
  if (plan.num_chunks == 0) {
    return;
  }
  std::vector<T> slots(plan.num_chunks);
  ParallelFor(threads, n, [&](size_t chunk, size_t begin, size_t end) {
    body(chunk, begin, end, &slots[chunk]);
  });
  for (size_t chunk = 0; chunk < plan.num_chunks; ++chunk) {
    merge(std::move(slots[chunk]));
  }
}

}  // namespace piet::parallel

#endif  // PIET_COMMON_PARALLEL_H_
