#include "common/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace piet {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kBool:
      return "bool";
  }
  return "unknown";
}

Result<double> Value::AsNumeric() const {
  if (is_int()) {
    return static_cast<double>(AsIntUnchecked());
  }
  if (is_double()) {
    return AsDoubleUnchecked();
  }
  return Status::TypeError("value is not numeric: " + ToString());
}

Result<int64_t> Value::AsInt() const {
  if (is_int()) {
    return AsIntUnchecked();
  }
  return Status::TypeError("value is not an int: " + ToString());
}

Result<std::string> Value::AsString() const {
  if (is_string()) {
    return AsStringUnchecked();
  }
  return Status::TypeError("value is not a string: " + ToString());
}

Result<bool> Value::AsBool() const {
  if (is_bool()) {
    return AsBoolUnchecked();
  }
  return Status::TypeError("value is not a bool: " + ToString());
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(AsIntUnchecked());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDoubleUnchecked();
      return os.str();
    }
    case ValueType::kString:
      return "\"" + AsStringUnchecked() + "\"";
    case ValueType::kBool:
      return AsBoolUnchecked() ? "true" : "false";
  }
  return "unknown";
}

bool operator==(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric() && a.type() != b.type()) {
    return a.AsNumeric().ValueOrDie() == b.AsNumeric().ValueOrDie();
  }
  return a.rep_ == b.rep_;
}

bool operator<(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    return a.AsNumeric().ValueOrDie() < b.AsNumeric().ValueOrDie();
  }
  return a.rep_ < b.rep_;
}

size_t ValueHash::operator()(const Value& v) const {
  switch (v.type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt:
      return std::hash<int64_t>()(v.AsIntUnchecked());
    case ValueType::kDouble: {
      double d = v.AsDoubleUnchecked();
      // Hash integral doubles like their int counterparts so that mixed
      // int/double keys that compare equal also hash equal.
      if (d == std::floor(d) && std::abs(d) < 1e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(v.AsStringUnchecked());
    case ValueType::kBool:
      return std::hash<bool>()(v.AsBoolUnchecked());
  }
  return 0;
}

}  // namespace piet
