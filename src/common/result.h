#ifndef PIET_COMMON_RESULT_H_
#define PIET_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace piet {

/// Holds either a value of type `T` or a non-OK `Status`. The moral
/// equivalent of `arrow::Result<T>`: used as a return type wherever a
/// computation can fail with a diagnosable error. Marked [[nodiscard]] so
/// ignored failures surface at compile time.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value (success). Implicit conversion is intentional so
  /// `return value;` works in functions returning Result<T>.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status (failure). Constructing from an OK status
  /// is a programming error.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The status: OK when a value is held.
  Status status() const {
    if (ok()) {
      return Status::OK();
    }
    return std::get<Status>(rep_);
  }

  /// The held value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(rep_));
  }

  /// Alias for ValueOrDie, matching the std::expected spelling.
  const T& value() const& { return ValueOrDie(); }
  T& value() & { return ValueOrDie(); }
  T&& value() && { return std::move(*this).ValueOrDie(); }

  /// Returns the value or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    if (ok()) {
      return std::get<T>(rep_);
    }
    return fallback;
  }

 private:
  std::variant<Status, T> rep_;
};

/// Assigns the value of a Result-returning expression to `lhs`, or
/// propagates its error status out of the enclosing function.
#define PIET_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).ValueOrDie()

#define PIET_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define PIET_ASSIGN_OR_RETURN_CONCAT(x, y) PIET_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define PIET_ASSIGN_OR_RETURN(lhs, expr)                                    \
  PIET_ASSIGN_OR_RETURN_IMPL(                                               \
      PIET_ASSIGN_OR_RETURN_CONCAT(_piet_result_tmp_, __LINE__), lhs, expr)

}  // namespace piet

#endif  // PIET_COMMON_RESULT_H_
