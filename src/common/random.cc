#include "common/random.h"

#include <cmath>

namespace piet {

double Random::NextGaussian() {
  // Box-Muller; regenerate on the (measure-zero) chance u1 == 0.
  double u1 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace piet
