#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "obs/metrics.h"

namespace piet::parallel {

int DefaultThreads() {
  static const int cached = [] {
    const char* env = std::getenv("PIET_THREADS");
    if (env != nullptr && *env != '\0') {
      char* end = nullptr;
      long parsed = std::strtol(env, &end, 10);
      if (end != nullptr && *end == '\0' && parsed >= 1) {
        return static_cast<int>(
            std::min<long>(parsed, static_cast<long>(kMaxChunks)));
      }
    }
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) {
      return 1;
    }
    return static_cast<int>(std::min<unsigned>(hw, kMaxChunks));
  }();
  return cached;
}

int ResolveThreads(int requested) {
  if (requested > 0) {
    return std::min(requested, static_cast<int>(kMaxChunks));
  }
  return DefaultThreads();
}

ChunkPlan PlanChunks(size_t n) {
  ChunkPlan plan;
  plan.n = n;
  plan.num_chunks = std::min(n, kMaxChunks);
  return plan;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::EnsureWorkers(size_t want) {
  want = std::min(want, kMaxChunks);
  std::lock_guard<std::mutex> lock(mu_);
  while (workers_.size() < want && !stop_) {
    workers_.emplace_back([this] { WorkerLoop(); });
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global()
          .GetCounter("parallel.workers_spawned")
          .Add(1);
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::Run(int threads, const ChunkPlan& plan,
                     const std::function<void(size_t, size_t, size_t)>& body) {
  // Per-call job state shared by the caller and helper tasks. Helpers claim
  // chunk indices from `next`; `done` counts completed chunks so the caller
  // can block until helpers finish chunks they claimed before the caller
  // drained the counter.
  struct Job {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto job = std::make_shared<Job>();

  auto drain = [job, plan, body] {
    for (;;) {
      size_t chunk = job->next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= plan.num_chunks) {
        return;
      }
      auto [begin, end] = plan.Chunk(chunk);
      body(chunk, begin, end);
      if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          plan.num_chunks) {
        std::lock_guard<std::mutex> lock(job->mu);
        job->cv.notify_all();
      }
    }
  };

  size_t helpers =
      std::min<size_t>(static_cast<size_t>(threads), plan.num_chunks) - 1;
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter("parallel.tasks_queued")
        .Add(static_cast<int64_t>(helpers));
  }
  EnsureWorkers(helpers);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < helpers; ++i) {
      tasks_.emplace_back(drain);
    }
  }
  if (helpers == 1) {
    cv_.notify_one();
  } else if (helpers > 1) {
    cv_.notify_all();
  }

  drain();  // The caller participates.
  std::unique_lock<std::mutex> lock(job->mu);
  job->cv.wait(lock, [&] {
    return job->done.load(std::memory_order_acquire) == plan.num_chunks;
  });
}

void ParallelFor(int threads, size_t n,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  ChunkPlan plan = PlanChunks(n);
  if (plan.num_chunks == 0) {
    return;
  }
  if (obs::Enabled()) {
    // One flush per loop, not per chunk: every planned chunk always runs.
    // Chunk sizes differ by at most one by construction; the imbalance
    // gauge records whether the last plan split evenly (0) or not (1).
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("parallel.loops").Add(1);
    registry.GetCounter("parallel.chunks_executed")
        .Add(static_cast<int64_t>(plan.num_chunks));
    registry.GetGauge("parallel.chunk_imbalance")
        .Set(plan.n % plan.num_chunks == 0 ? 0 : 1);
  }
  if (threads <= 1 || plan.num_chunks == 1) {
    // The serial code path: chunks run inline, in order, on this thread.
    for (size_t chunk = 0; chunk < plan.num_chunks; ++chunk) {
      auto [begin, end] = plan.Chunk(chunk);
      body(chunk, begin, end);
    }
    return;
  }
  ThreadPool::Global().Run(threads, plan, body);
}

}  // namespace piet::parallel
