#ifndef PIET_COMMON_STRING_UTIL_H_
#define PIET_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace piet {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);
/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace piet

#endif  // PIET_COMMON_STRING_UTIL_H_
