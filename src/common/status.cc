#include "common/status.h"

namespace piet {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) {
    return *this;
  }
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

}  // namespace piet
