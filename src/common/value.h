#ifndef PIET_COMMON_VALUE_H_
#define PIET_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace piet {

/// Type tag of a `Value`.
enum class ValueType {
  kNull = 0,
  kInt,
  kDouble,
  kString,
  kBool,
};

std::string_view ValueTypeToString(ValueType type);

/// A dynamically-typed scalar used for dimension-level members, attribute
/// values and measures. Ordered and hashable so it can key group-by maps.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  Value(int64_t v) : rep_(v) {}             // NOLINT(runtime/explicit)
  Value(int v) : rep_(int64_t{v}) {}        // NOLINT(runtime/explicit)
  Value(double v) : rep_(v) {}              // NOLINT(runtime/explicit)
  Value(bool v) : rep_(v) {}                // NOLINT(runtime/explicit)
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT(runtime/explicit)

  ValueType type() const {
    switch (rep_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt;
      case 2:
        return ValueType::kDouble;
      case 3:
        return ValueType::kString;
      case 4:
        return ValueType::kBool;
    }
    return ValueType::kNull;
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_bool() const { return type() == ValueType::kBool; }
  /// True for int or double.
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t AsIntUnchecked() const { return std::get<int64_t>(rep_); }
  double AsDoubleUnchecked() const { return std::get<double>(rep_); }
  const std::string& AsStringUnchecked() const {
    return std::get<std::string>(rep_);
  }
  bool AsBoolUnchecked() const { return std::get<bool>(rep_); }

  /// Numeric view: ints widen to double; anything else is a TypeError.
  Result<double> AsNumeric() const;
  Result<int64_t> AsInt() const;
  Result<std::string> AsString() const;
  Result<bool> AsBool() const;

  /// Renders the value for diagnostics ("null", "42", "3.5", "\"x\"").
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  /// Total order: first by type index, then by value. Numeric values of
  /// mixed int/double type compare by numeric value.
  friend bool operator<(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> rep_;
};

/// Hash functor so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const;
};

}  // namespace piet

#endif  // PIET_COMMON_VALUE_H_
