#ifndef PIET_COMMON_RANDOM_H_
#define PIET_COMMON_RANDOM_H_

#include <cstdint>

namespace piet {

/// Deterministic xoshiro256**-based RNG. All workload generators take one of
/// these so every experiment is reproducible from a single seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x5deece66dULL) { Seed(seed); }

  /// Re-seeds via splitmix64 so nearby seeds give unrelated streams.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (one value per call, no caching).
  double NextGaussian();

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace piet

#endif  // PIET_COMMON_RANDOM_H_
