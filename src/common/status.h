#ifndef PIET_COMMON_STATUS_H_
#define PIET_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace piet {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention: the core library reports failures through `Status` /
/// `Result<T>` instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kTypeError,
  kUnimplemented,
  kIoError,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("Invalid
/// argument", "Parse error", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. The OK status carries no
/// allocation; error statuses carry a code and a message. Marked
/// [[nodiscard]]: silently dropping an error is exactly the bug class the
/// analysis layer exists to prevent.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message.
  /// OK statuses are returned unchanged.
  Status WithContext(std::string_view context) const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Shared so Status copies are pointer-sized; error paths are cold.
  std::shared_ptr<const Rep> rep_;
};

/// Propagates a non-OK status out of the enclosing function.
#define PIET_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::piet::Status _piet_status = (expr);   \
    if (!_piet_status.ok()) {               \
      return _piet_status;                  \
    }                                       \
  } while (false)

}  // namespace piet

#endif  // PIET_COMMON_STATUS_H_
