#include "analysis/rewrite/rewriter.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <sstream>
#include <utility>

#include "analysis/lint/time_domain.h"
#include "gis/layer.h"
#include "temporal/interval.h"

namespace piet::analysis::rewrite {

namespace pietql = core::pietql;
using gis::GeometryId;
using gis::Layer;
using temporal::Interval;
using temporal::TimePoint;

namespace {

/// Shortest round-trip rendering, matching the printer (no 6-digit
/// truncation): "50", "1.5", "189493200".
std::string FormatNumber(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) {
    return "0";
  }
  std::string out(buf, ptr);
  if (out.size() > 2 && out.substr(out.size() - 2) == ".0") {
    out.resize(out.size() - 2);
  }
  return out;
}

bool CompareValues(const Value& lhs, pietql::CompareOp op, const Value& rhs) {
  switch (op) {
    case pietql::CompareOp::kLt:
      return lhs < rhs;
    case pietql::CompareOp::kGt:
      return rhs < lhs;
    case pietql::CompareOp::kLe:
      return !(rhs < lhs);
    case pietql::CompareOp::kGe:
      return !(lhs < rhs);
    case pietql::CompareOp::kEq:
      return lhs == rhs;
  }
  return false;
}

const Layer* ResolveLayer(const RewriteContext& context,
                          const std::string& name) {
  if (context.gis == nullptr) {
    return nullptr;
  }
  const auto layer = context.gis->GetLayer(name);
  return layer.ok() ? layer.ValueOrDie() : nullptr;
}

/// Same entity naming as the linter, so EXPLAIN output and diagnostics
/// point at clauses consistently.
std::string GeoEntity(size_t index, const pietql::GeoCondition& cond) {
  const std::string entity = "geo WHERE clause " + std::to_string(index + 1);
  switch (cond.kind) {
    case pietql::GeoCondition::Kind::kAttrCompare:
      return entity + " (ATTR layer." + cond.a.name + ", " + cond.attribute +
             ")";
    case pietql::GeoCondition::Kind::kIntersection:
      return entity + " (INTERSECTION layer." + cond.a.name + ", layer." +
             cond.b.name + ")";
    case pietql::GeoCondition::Kind::kContains:
      return entity + " (CONTAINS layer." + cond.a.name + ", layer." +
             cond.b.name + ")";
  }
  return entity;
}

std::string MoEntity(size_t index) {
  return "mo WHERE clause " + std::to_string(index + 1);
}

/// Fraction of overlay cells carrying any label of `layer` — the Sec. 5
/// precomputation as a selectivity statistic. 1.0 (no refinement) when
/// there is no overlay or the layer is not part of it.
double OverlayCoverage(const RewriteContext& context, const Layer* layer) {
  const gis::OverlayDb* overlay = context.overlay;
  if (overlay == nullptr || overlay->num_cells() == 0) {
    return 1.0;
  }
  size_t layer_idx = overlay->layers().size();
  for (size_t i = 0; i < overlay->layers().size(); ++i) {
    if (overlay->layers()[i] == layer) {
      layer_idx = i;
      break;
    }
  }
  if (layer_idx == overlay->layers().size()) {
    return 1.0;
  }
  size_t labeled = 0;
  for (size_t i = 0; i < overlay->num_cells(); ++i) {
    bool has = false;
    for (const gis::OverlayLabel& label : overlay->CellCovered(i)) {
      if (label.layer == layer_idx) {
        has = true;
        break;
      }
    }
    if (!has) {
      for (const gis::OverlayLabel& label : overlay->CellCandidates(i)) {
        if (label.layer == layer_idx) {
          has = true;
          break;
        }
      }
    }
    if (has) {
      ++labeled;
    }
  }
  return static_cast<double>(labeled) /
         static_cast<double>(overlay->num_cells());
}

std::vector<GeometryId> SortedIntersection(const std::vector<GeometryId>& a,
                                           const std::vector<GeometryId>& b) {
  std::vector<GeometryId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Rewrites the geometric part in place: drops provably redundant ATTR
/// clauses, proves the region empty, and orders surviving clauses by
/// estimated cost/selectivity. Abstains (leaves the part untouched) in
/// every shape where the evaluator reports an error — a rewrite must never
/// suppress one.
void RewriteGeoPart(const RewriteContext& context, RewritePlan* plan) {
  pietql::GeoQuery& geo = plan->query.geo;
  plan->geo_clauses_before = geo.where.size();
  plan->geo_clauses_after = geo.where.size();
  if (geo.select.empty()) {
    return;  // Evaluation errors out; nothing to optimize.
  }
  const std::string result_name = geo.select.front().name;
  const Layer* layer = ResolveLayer(context, result_name);
  if (layer == nullptr) {
    return;  // Unknown result layer: evaluation errors out.
  }
  for (const pietql::GeoCondition& cond : geo.where) {
    if (cond.a.name != result_name) {
      return;  // The evaluator rejects this shape outright.
    }
  }

  struct ClauseFacts {
    size_t orig = 0;
    bool resolved = true;  // False when the b-layer is unknown.
    bool drop = false;
    int cost_class = 1;  // 0 = exact attribute test, 1 = geometric test.
    double selectivity = 1.0;
  };

  std::vector<GeometryId> current(layer->ids());
  std::sort(current.begin(), current.end());
  const double universe =
      static_cast<double>(std::max<size_t>(layer->ids().size(), 1));
  bool abstained = false;
  std::vector<ClauseFacts> facts(geo.where.size());
  for (size_t i = 0; i < geo.where.size(); ++i) {
    const pietql::GeoCondition& cond = geo.where[i];
    ClauseFacts& f = facts[i];
    f.orig = i;
    // The clause's satisfying set over the whole layer, exactly as the
    // lint dataflow computes it: attr comparisons are exact, spatial
    // clauses over-approximate with bounding boxes.
    std::vector<GeometryId> satisfying;
    bool exact = false;
    switch (cond.kind) {
      case pietql::GeoCondition::Kind::kAttrCompare: {
        exact = true;
        f.cost_class = 0;
        for (const GeometryId id : layer->ids()) {
          const auto v = layer->GetAttribute(id, cond.attribute);
          if (v.ok() && CompareValues(v.ValueOrDie(), cond.op, cond.literal)) {
            satisfying.push_back(id);
          }
        }
        break;
      }
      case pietql::GeoCondition::Kind::kIntersection:
      case pietql::GeoCondition::Kind::kContains: {
        const Layer* other = ResolveLayer(context, cond.b.name);
        if (other == nullptr) {
          // Evaluation errors on the unknown layer; never drop or reorder
          // around it.
          abstained = true;
          f.resolved = false;
          continue;
        }
        for (const GeometryId id : layer->ids()) {
          const auto bounds = layer->BoundsOf(id);
          if (bounds.ok() &&
              !other->CandidatesInBox(bounds.ValueOrDie()).empty()) {
            satisfying.push_back(id);
          }
        }
        f.selectivity = OverlayCoverage(context, other);
        break;
      }
    }
    std::sort(satisfying.begin(), satisfying.end());
    f.selectivity *= static_cast<double>(satisfying.size()) / universe;
    if (exact &&
        std::includes(satisfying.begin(), satisfying.end(), current.begin(),
                      current.end())) {
      // Every still-possible candidate satisfies the clause, and the test
      // is exact — the clause cannot change the result from any position.
      f.drop = true;
      plan->applied.push_back(
          {"rw-drop-redundant-clause", GeoEntity(i, cond),
           "every remaining candidate of layer '" + result_name +
               "' satisfies this clause; dropped"});
      continue;
    }
    current = SortedIntersection(current, satisfying);
  }

  if (!abstained && !geo.where.empty() && current.empty()) {
    // The over-approximate flow emptied out, which proves the exact result
    // empty. All layers resolved, so evaluation cannot error either way.
    plan->geo_zero = true;
    plan->applied.push_back(
        {"rw-empty-region", "geo WHERE",
         "the conjunction selects no geometry of layer '" + result_name +
             "'; short-circuiting to an empty result"});
  }

  std::vector<size_t> order;
  for (size_t i = 0; i < geo.where.size(); ++i) {
    if (!facts[i].drop) {
      order.push_back(i);
    }
  }
  if (!abstained && !plan->geo_zero && order.size() >= 2) {
    std::vector<size_t> sorted = order;
    std::stable_sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      if (facts[a].cost_class != facts[b].cost_class) {
        return facts[a].cost_class < facts[b].cost_class;
      }
      return facts[a].selectivity < facts[b].selectivity;
    });
    if (sorted != order) {
      std::ostringstream detail;
      detail << "reordered cheapest/most-selective first:";
      for (size_t i : sorted) {
        detail << " " << (i + 1);
      }
      plan->applied.push_back({"rw-select-reorder", "geo WHERE",
                               detail.str()});
      order = std::move(sorted);
    }
  }

  if (order.size() != geo.where.size() ||
      !std::is_sorted(order.begin(), order.end())) {
    std::vector<pietql::GeoCondition> rewritten;
    rewritten.reserve(order.size());
    for (size_t i : order) {
      rewritten.push_back(geo.where[i]);
    }
    geo.where = std::move(rewritten);
  }
  plan->geo_clauses_after = geo.where.size();
}

/// Rewrites the moving-object part in place. The evaluator's time
/// semantics are: rollup-equality clauses accumulate, but a later
/// T BETWEEN *replaces* an earlier one (TimePredicate::Window). All proofs
/// here follow those semantics, not plain conjunction reading.
void RewriteMoPart(const RewriteContext& context, RewritePlan* plan) {
  if (!plan->query.mo) {
    return;
  }
  pietql::MoQuery& mo = *plan->query.mo;
  plan->mo_clauses_before = mo.where.size();
  plan->mo_clauses_after = mo.where.size();

  bool passes = false;
  bool inside = false;
  std::optional<size_t> near_idx;
  pietql::MoCondition near_copy;
  bool interval_hostile_rollup = false;
  for (size_t i = 0; i < mo.where.size(); ++i) {
    const pietql::MoCondition& cond = mo.where[i];
    switch (cond.kind) {
      case pietql::MoCondition::Kind::kPassesThroughResult:
        passes = true;
        break;
      case pietql::MoCondition::Kind::kInsideResult:
        inside = true;
        break;
      case pietql::MoCondition::Kind::kNearLayer:
        near_idx = i;
        near_copy = cond;
        break;
      case pietql::MoCondition::Kind::kTimeEquals:
        if (cond.time_level == "timeId" || cond.time_level == "minute") {
          interval_hostile_rollup = true;
        }
        break;
      case pietql::MoCondition::Kind::kTimeBetween:
        break;
    }
  }
  // PASSES THROUGH evaluates via MatchingIntervals, which (a) rejects
  // timeId/minute rollups with an error a rewrite must not suppress, and
  // (b) keeps closed boundary instants a folded window would trim. Abstain
  // from every mo rewrite in the first case, and from window folding in
  // the second.
  if (passes && interval_hostile_rollup) {
    return;
  }

  struct Item {
    size_t orig = 0;
    pietql::MoCondition cond;
    bool drop = false;
  };
  std::vector<Item> items;
  items.reserve(mo.where.size());
  for (size_t i = 0; i < mo.where.size(); ++i) {
    items.push_back({i, mo.where[i], false});
  }

  // Always-true rollup constraints (TIME.all = 'all') filter nothing.
  for (Item& item : items) {
    if (item.cond.kind != pietql::MoCondition::Kind::kTimeEquals) {
      continue;
    }
    lint::TimeAbstract scratch;
    if (scratch.MeetLevelEquals(item.cond.time_level, item.cond.literal) ==
        lint::TimeFold::kAlways) {
      item.drop = true;
      plan->applied.push_back(
          {"rw-drop-redundant-clause", MoEntity(item.orig),
           "TIME." + item.cond.time_level + " = " +
               item.cond.literal.ToString() +
               " holds at every instant; dropped"});
    }
  }

  // A later T BETWEEN replaces an earlier one, so every window but the
  // last is dead weight.
  std::vector<size_t> windows;
  for (size_t i = 0; i < items.size(); ++i) {
    if (!items[i].drop &&
        items[i].cond.kind == pietql::MoCondition::Kind::kTimeBetween) {
      windows.push_back(i);
    }
  }
  for (size_t w = 0; w + 1 < windows.size(); ++w) {
    Item& item = items[windows[w]];
    item.drop = true;
    plan->applied.push_back(
        {"rw-drop-redundant-clause", MoEntity(item.orig),
         "shadowed by the later T BETWEEN in clause " +
             std::to_string(items[windows.back()].orig + 1) +
             " (the last window wins); dropped"});
  }
  std::optional<size_t> last_window;
  if (!windows.empty()) {
    last_window = windows.back();
  }

  // Constant-fold absolute rollup equalities into one T BETWEEN window,
  // enabling the sorted-time binary-search fast path. The rollup holds on
  // the half-open [begin, begin + len), so the closed window's upper end
  // is the predecessor double (timeId already folds to an exact [t, t]).
  // Skipped under PASSES THROUGH: MatchingIntervals answers with closed
  // hour pieces whose boundary instants a trimmed window would drop.
  if (!passes) {
    std::vector<size_t> foldable;
    std::vector<Interval> fold_windows;
    for (size_t i = 0; i < items.size(); ++i) {
      const Item& item = items[i];
      if (item.drop ||
          item.cond.kind != pietql::MoCondition::Kind::kTimeEquals) {
        continue;
      }
      auto window = lint::TimeAbstract::LevelEqualsWindow(
          item.cond.time_level, item.cond.literal);
      if (!window) {
        continue;
      }
      double hi = window->end.seconds;
      if (item.cond.time_level != "timeId") {
        hi = std::nextafter(hi, -std::numeric_limits<double>::infinity());
      }
      foldable.push_back(i);
      fold_windows.emplace_back(window->begin, TimePoint(hi));
    }
    if (!foldable.empty()) {
      double lo = fold_windows.front().begin.seconds;
      double hi = fold_windows.front().end.seconds;
      for (size_t k = 1; k < fold_windows.size(); ++k) {
        lo = std::max(lo, fold_windows[k].begin.seconds);
        hi = std::min(hi, fold_windows[k].end.seconds);
      }
      size_t insert_at = foldable.front();
      size_t merged = foldable.size();
      if (last_window) {
        const pietql::MoCondition& w = items[*last_window].cond;
        lo = std::max(lo, w.t0);
        hi = std::min(hi, w.t1);
        insert_at = std::min(insert_at, *last_window);
        items[*last_window].drop = true;
        ++merged;
      }
      for (size_t k = 0; k < foldable.size(); ++k) {
        Item& item = items[foldable[k]];
        item.drop = true;
        plan->applied.push_back(
            {"rw-fold-time-window", MoEntity(item.orig),
             "rewrote TIME." + item.cond.time_level + " = " +
                 item.cond.literal.ToString() + " as T BETWEEN " +
                 FormatNumber(fold_windows[k].begin.seconds) + " AND " +
                 FormatNumber(fold_windows[k].end.seconds)});
      }
      if (merged > 1) {
        plan->applied.push_back(
            {"rw-fold-time-window", "mo WHERE",
             "merged " + std::to_string(merged) +
                 " time constraints into T BETWEEN " + FormatNumber(lo) +
                 " AND " + FormatNumber(hi)});
      }
      pietql::MoCondition window;
      window.kind = pietql::MoCondition::Kind::kTimeBetween;
      window.t0 = lo;
      window.t1 = hi;
      // Reuse the first participating slot so the synthesized window sits
      // where the reader expects it.
      items[insert_at].cond = std::move(window);
      items[insert_at].drop = false;
    }
  }

  std::vector<pietql::MoCondition> rewritten;
  rewritten.reserve(items.size());
  for (const Item& item : items) {
    if (!item.drop) {
      rewritten.push_back(item.cond);
    }
  }
  mo.where = std::move(rewritten);
  plan->mo_clauses_after = mo.where.size();

  // Empty-time proof, under evaluator semantics: after the rewrites above
  // at most one T BETWEEN remains, so a straight conjunction fold is
  // faithful. Unfoldable clauses only shrink the concrete set further, so
  // bottom still proves it empty.
  lint::TimeAbstract acc;
  for (const pietql::MoCondition& cond : mo.where) {
    if (cond.kind == pietql::MoCondition::Kind::kTimeBetween) {
      acc.MeetWindow(Interval(TimePoint(cond.t0), TimePoint(cond.t1)));
    } else if (cond.kind == pietql::MoCondition::Kind::kTimeEquals) {
      acc.MeetLevelEquals(cond.time_level, cond.literal);
    }
  }
  if (acc.IsBottom()) {
    plan->mo_zero = true;
    plan->applied.push_back(
        {"rw-empty-time", "mo WHERE",
         "the time constraints match no instant; short-circuiting the "
         "tuple scan"});
  }

  // Contradictory spatial constraints: a scan that provably yields no
  // tuple. Validations the evaluator performs (layer kinds, mutual
  // exclusivity, unknown names) run before its scan loops, so the short
  // circuit never masks an error.
  if (!plan->mo_zero && near_idx) {
    if (near_copy.radius < 0.0) {
      plan->mo_zero = true;
      plan->applied.push_back(
          {"rw-contradictory-spatial", MoEntity(*near_idx),
           "NEAR radius " + FormatNumber(near_copy.radius) +
               " is negative; no sample can qualify"});
    } else {
      const Layer* nodes = ResolveLayer(context, near_copy.near_layer);
      if (nodes != nullptr &&
          (nodes->kind() == gis::GeometryKind::kNode ||
           nodes->kind() == gis::GeometryKind::kPoint) &&
          nodes->size() == 0) {
        plan->mo_zero = true;
        plan->applied.push_back(
            {"rw-contradictory-spatial", MoEntity(*near_idx),
             "NEAR layer '" + near_copy.near_layer +
                 "' has no elements; no sample can qualify"});
      }
    }
  }
  if (!plan->mo_zero && (inside || passes) && plan->geo_zero) {
    plan->mo_zero = true;
    plan->applied.push_back(
        {"rw-contradictory-spatial", "mo WHERE",
         std::string(passes ? "PASSES THROUGH" : "INSIDE") +
             " RESULT over a provably empty region; no tuple can qualify"});
  }
}

}  // namespace

RewriteMode RewriteModeFromEnv() {
  const char* env = std::getenv("PIET_REWRITE");
  if (env == nullptr) {
    return RewriteMode::kOff;
  }
  const std::string v(env);
  if (v.empty() || v == "0" || v == "off" || v == "false") {
    return RewriteMode::kOff;
  }
  return RewriteMode::kOn;
}

std::string RewritePlan::ToString() const {
  if (applied.empty()) {
    return "no rewrites applied";
  }
  std::ostringstream os;
  for (size_t i = 0; i < applied.size(); ++i) {
    if (i > 0) {
      os << "\n";
    }
    os << applied[i].rule_id << " [" << applied[i].entity
       << "]: " << applied[i].detail;
  }
  return os.str();
}

std::vector<std::string> AllRewriteRuleIds() {
  return {
      "rw-contradictory-spatial", "rw-drop-redundant-clause",
      "rw-empty-region",          "rw-empty-time",
      "rw-fold-time-window",      "rw-select-reorder",
  };
}

RewritePlan RewriteQuery(const RewriteContext& context,
                         const pietql::Query& query) {
  RewritePlan plan;
  plan.query = query;
  RewriteGeoPart(context, &plan);
  RewriteMoPart(context, &plan);
  return plan;
}

}  // namespace piet::analysis::rewrite
