#ifndef PIET_ANALYSIS_REWRITE_REWRITER_H_
#define PIET_ANALYSIS_REWRITE_REWRITER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/pietql/ast.h"
#include "gis/instance.h"
#include "gis/overlay.h"

namespace piet::analysis::rewrite {

/// Whether the evaluator runs the static plan rewriter. kOff keeps the
/// evaluation pipeline byte-identical to the un-rewritten path; kOn applies
/// every rule of the rw-* catalog. Resolved from PIET_REWRITE by default.
enum class RewriteMode {
  kOff = 0,
  kOn,
};

/// PIET_REWRITE unset / "0" / "off" / "false" -> kOff; anything else -> kOn.
RewriteMode RewriteModeFromEnv();

/// What the rewriter may look at. Like the linter it reasons against the
/// schema *instance*; the optional overlay refines spatial selectivity
/// estimates (cell-count coverage) but never affects correctness.
struct RewriteContext {
  const gis::GisDimensionInstance* gis = nullptr;
  const gis::OverlayDb* overlay = nullptr;
};

/// One applied rewrite: the stable rule id (rw-*, mirroring the lint-*
/// scheme), the clause or query part it anchored on, and a human-readable
/// explanation.
struct AppliedRewrite {
  std::string rule_id;
  std::string entity;
  std::string detail;
};

/// The rewritten plan. `query` is always evaluable and result-identical to
/// the input; `geo_zero` / `mo_zero` are short-circuit proofs: the
/// geometric part (resp. the moving-object tuple scan) is statically known
/// to produce zero rows, so the evaluator may skip the corresponding loops
/// outright — every validation the un-rewritten evaluator performs still
/// applies (the rewriter abstains from proofs that would suppress an
/// evaluation error).
struct RewritePlan {
  core::pietql::Query query;
  bool geo_zero = false;
  bool mo_zero = false;
  std::vector<AppliedRewrite> applied;
  size_t geo_clauses_before = 0;
  size_t geo_clauses_after = 0;
  size_t mo_clauses_before = 0;
  size_t mo_clauses_after = 0;

  bool changed() const { return !applied.empty(); }

  /// One line per applied rule: "rule-id entity: detail".
  std::string ToString() const;
};

/// The stable rule-id catalog, sorted (golden-tested like AllLintCheckIds):
///   rw-contradictory-spatial  NEAR with negative radius / empty node layer,
///                             or INSIDE/PASSES THROUGH a provably empty
///                             region -> zero-tuple short circuit
///   rw-drop-redundant-clause  exact geo ATTR clause implied by the flowed
///                             candidate set; TIME.all = 'all'; a T BETWEEN
///                             shadowed by a later one (last window wins)
///   rw-empty-region           geo WHERE conjunction provably selects no
///                             geometry -> constant empty id list
///   rw-empty-time             mo time conjunction provably matches no
///                             instant -> zero-tuple short circuit
///   rw-fold-time-window       absolute TIME.<level> = literal constraints
///                             fold into a single T BETWEEN window, enabling
///                             the sorted-time binary-search fast path
///   rw-select-reorder         surviving geo clauses reordered cheapest /
///                             most selective first (ATTR before spatial,
///                             ascending estimated selectivity)
std::vector<std::string> AllRewriteRuleIds();

/// Rewrites `query` under the exactness contract above. Never fails: when a
/// rule's preconditions do not hold the rule simply does not fire, and the
/// returned plan carries the query unchanged.
RewritePlan RewriteQuery(const RewriteContext& context,
                         const core::pietql::Query& query);

}  // namespace piet::analysis::rewrite

#endif  // PIET_ANALYSIS_REWRITE_REWRITER_H_
