#include "analysis/model_check.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "geometry/clip.h"

namespace piet::analysis {

using gis::GeometryId;
using gis::GeometryKind;
using gis::GeometryKindToString;
using gis::Layer;

namespace {

using KindEdge = std::pair<GeometryKind, GeometryKind>;

std::string KindName(GeometryKind kind) {
  return std::string(GeometryKindToString(kind));
}

/// Nodes of a raw edge relation, plus the two distinguished kinds that are
/// always part of H(L) (Def. 1).
std::vector<GeometryKind> GraphNodes(const std::vector<KindEdge>& edges) {
  std::set<GeometryKind> nodes = {GeometryKind::kPoint, GeometryKind::kAll};
  for (const auto& [fine, coarse] : edges) {
    nodes.insert(fine);
    nodes.insert(coarse);
  }
  return {nodes.begin(), nodes.end()};
}

/// All nodes reachable from `start` along edges, excluding `start` unless it
/// lies on a cycle.
std::set<GeometryKind> ReachableFrom(GeometryKind start,
                                     const std::vector<KindEdge>& edges) {
  std::set<GeometryKind> seen;
  std::vector<GeometryKind> frontier = {start};
  while (!frontier.empty()) {
    GeometryKind cur = frontier.back();
    frontier.pop_back();
    for (const auto& [fine, coarse] : edges) {
      if (fine == cur && seen.insert(coarse).second) {
        frontier.push_back(coarse);
      }
    }
  }
  return seen;
}

bool HasCycle(const std::vector<KindEdge>& edges) {
  for (GeometryKind node : GraphNodes(edges)) {
    if (ReachableFrom(node, edges).count(node) > 0) {
      return true;
    }
  }
  return false;
}

bool IsFinite(const geometry::Point& p) {
  return std::isfinite(p.x) && std::isfinite(p.y);
}

std::string FormatPoint(const geometry::Point& p) {
  std::ostringstream os;
  os << "(" << p.x << ", " << p.y << ")";
  return os.str();
}

}  // namespace

void ModelChecker::CheckGraphEdges(const std::string& entity,
                                   const std::vector<KindEdge>& edges,
                                   DiagnosticList* out) const {
  if (HasCycle(edges)) {
    out->AddError("schema-graph-acyclic", entity,
                  "geometry-granularity graph has a cycle; Def. 1 requires "
                  "H(L) to be a DAG");
    return;  // Reachability diagnostics would be noise on a cyclic graph.
  }

  std::vector<GeometryKind> nodes = GraphNodes(edges);
  std::set<GeometryKind> with_incoming;
  std::set<GeometryKind> with_outgoing;
  for (const auto& [fine, coarse] : edges) {
    with_outgoing.insert(fine);
    with_incoming.insert(coarse);
  }

  if (with_incoming.count(GeometryKind::kPoint) > 0) {
    out->AddError("schema-graph-source", entity,
                  "'point' has an incoming edge; it must be the unique "
                  "source of H(L)");
  }
  if (with_outgoing.count(GeometryKind::kAll) > 0) {
    out->AddError("schema-graph-sink", entity,
                  "'All' has an outgoing edge; it must be the unique sink "
                  "of H(L)");
  }

  std::set<GeometryKind> from_point =
      ReachableFrom(GeometryKind::kPoint, edges);
  for (GeometryKind node : nodes) {
    if (node != GeometryKind::kPoint && from_point.count(node) == 0) {
      out->AddError("schema-graph-source", entity,
                    "kind '" + KindName(node) +
                        "' is not reachable from 'point'; H(L) must have "
                        "'point' as its unique source");
    }
    if (node != GeometryKind::kAll &&
        ReachableFrom(node, edges).count(GeometryKind::kAll) == 0) {
      out->AddError("schema-graph-sink", entity,
                    "kind '" + KindName(node) +
                        "' does not reach 'All'; H(L) must have 'All' as "
                        "its unique sink");
    }
  }
}

void ModelChecker::CheckSchema(const gis::GisDimensionSchema& schema,
                               DiagnosticList* out) const {
  for (const std::string& name : schema.LayerNames()) {
    auto graph = schema.GraphOf(name);
    if (!graph.ok()) {
      continue;  // LayerNames and GraphOf share the same map.
    }
    CheckGraphEdges("layer '" + name + "'", graph.ValueOrDie()->edges(), out);
  }

  for (const gis::AttributeBinding& b : schema.attributes()) {
    auto graph = schema.GraphOf(b.layer);
    if (!graph.ok()) {
      out->AddError("schema-attr-binding", "attribute '" + b.attribute + "'",
                    "binds to layer '" + b.layer +
                        "' which has no graph in the schema");
      continue;
    }
    if (!graph.ValueOrDie()->HasNode(b.kind)) {
      out->AddError("schema-attr-binding", "attribute '" + b.attribute + "'",
                    "binds to kind '" + KindName(b.kind) +
                        "' absent from layer '" + b.layer + "'");
    }
  }

  for (const olap::DimensionSchema& d : schema.application_dimensions()) {
    Status status = d.Validate();
    if (!status.ok()) {
      out->AddError("schema-dim-consistent",
                    "application dimension '" + d.name() + "'",
                    status.message());
    }
  }
}

void ModelChecker::CheckInstance(const gis::GisDimensionInstance& instance,
                                 DiagnosticList* out) const {
  CheckSchema(instance.schema(), out);

  for (const std::string& name : instance.schema().LayerNames()) {
    if (!instance.GetLayer(name).ok()) {
      out->AddError("instance-layer-missing", "layer '" + name + "'",
                    "declared in the schema but has no registered layer "
                    "instance");
    }
  }

  // Def. 2: stored rollup relations are consistent functions, total on the
  // fine level, referencing live elements.
  for (const gis::StoredRollup& rollup : instance.StoredRollups()) {
    std::string entity = "rollup " + KindName(rollup.fine) + "->" +
                         KindName(rollup.coarse) + " of layer '" +
                         rollup.layer + "'";
    std::map<GeometryId, std::set<GeometryId>> images;
    for (const auto& [fine_id, coarse_id] : *rollup.pairs) {
      images[fine_id].insert(coarse_id);
    }
    for (const auto& [fine_id, coarse_ids] : images) {
      if (coarse_ids.size() > 1) {
        out->AddError("rollup-functional", entity,
                      "fine element " + std::to_string(fine_id) +
                          " rolls up to " + std::to_string(coarse_ids.size()) +
                          " coarse elements; Def. 2 requires a function");
      }
    }

    auto layer = instance.GetLayer(rollup.layer);
    if (!layer.ok()) {
      continue;  // Reported as instance-layer-missing above.
    }
    const Layer& l = *layer.ValueOrDie();
    // Element existence is only decidable against kinds the layer stores.
    if (l.kind() == rollup.fine) {
      for (GeometryId id : l.ids()) {
        if (images.count(id) == 0) {
          out->AddError("rollup-total", entity,
                        "fine element " + std::to_string(id) +
                            " has no rollup; Def. 2 requires totality");
        }
      }
      for (const auto& [fine_id, coarse_ids] : images) {
        if (!l.BoundsOf(fine_id).ok()) {
          out->AddError("rollup-dangling", entity,
                        "fine element " + std::to_string(fine_id) +
                            " does not exist in layer '" + rollup.layer + "'");
        }
      }
    }
    if (l.kind() == rollup.coarse) {
      std::set<GeometryId> coarse_seen;
      for (const auto& [fine_id, coarse_id] : *rollup.pairs) {
        if (coarse_seen.insert(coarse_id).second &&
            !l.BoundsOf(coarse_id).ok()) {
          out->AddError("rollup-dangling", entity,
                        "coarse element " + std::to_string(coarse_id) +
                            " does not exist in layer '" + rollup.layer +
                            "'");
        }
      }
    }
  }

  // α bindings reference live geometries.
  for (const gis::AttributeBinding& b : instance.schema().attributes()) {
    auto members = instance.AlphaMembers(b.attribute);
    if (!members.ok()) {
      continue;  // No bindings registered for this attribute.
    }
    auto layer = instance.GetLayer(b.layer);
    if (!layer.ok()) {
      continue;
    }
    for (const Value& member : members.ValueOrDie()) {
      auto geom = instance.Alpha(b.attribute, member);
      if (geom.ok() && !layer.ValueOrDie()->BoundsOf(geom.ValueOrDie()).ok()) {
        out->AddError("alpha-dangling", "attribute '" + b.attribute + "'",
                      "member " + member.ToString() +
                          " binds to missing geometry " +
                          std::to_string(geom.ValueOrDie()) + " of layer '" +
                          b.layer + "'");
      }
    }
  }

  for (const olap::DimensionSchema& d :
       instance.schema().application_dimensions()) {
    auto inst = instance.ApplicationInstance(d.name());
    if (!inst.ok()) {
      continue;  // Declaring a schema without an instance is legal.
    }
    Status status = inst.ValueOrDie()->CheckConsistency();
    if (!status.ok()) {
      out->AddError("schema-dim-consistent",
                    "application instance '" + d.name() + "'",
                    status.message());
    }
  }
}

namespace {

/// Shared body of the two CheckSamples overloads; `samples` is any range of
/// moving::Sample (owning vector or zero-copy SampleView).
template <typename SampleRange>
void CheckSampleStream(const SampleRange& samples, const std::string& entity,
                       DiagnosticList* out) {
  std::map<moving::ObjectId, temporal::TimePoint> last_t;
  for (const moving::Sample& s : samples) {
    std::string sample_entity =
        entity + " oid " + std::to_string(s.oid) + " t=" +
        std::to_string(s.t.seconds);
    if (!std::isfinite(s.t.seconds) || !IsFinite(s.pos)) {
      out->AddError("moft-finite-coords", sample_entity,
                    "non-finite timestamp or position " +
                        FormatPoint(s.pos));
    }
    auto it = last_t.find(s.oid);
    if (it != last_t.end()) {
      if (s.t == it->second) {
        out->AddError("moft-duplicate-sample", sample_entity,
                      "duplicate (Oid, t) observation; an object is at one "
                      "place at a time");
        continue;  // Keep the previous timestamp as the reference.
      }
      if (s.t < it->second) {
        out->AddError("moft-time-monotonic", sample_entity,
                      "timestamps must be strictly increasing per Oid for "
                      "LIT(S) to be well-defined");
        continue;
      }
    }
    last_t[s.oid] = s.t;
  }
}

}  // namespace

void ModelChecker::CheckSamples(const std::string& entity,
                                const std::vector<moving::Sample>& samples,
                                DiagnosticList* out) const {
  CheckSampleStream(samples, entity, out);
}

void ModelChecker::CheckSamples(const std::string& entity,
                                moving::SampleView samples,
                                DiagnosticList* out) const {
  CheckSampleStream(samples, entity, out);
}

void ModelChecker::CheckMoft(const std::string& name,
                             const moving::Moft& moft,
                             DiagnosticList* out) const {
  std::string entity = "moft '" + name + "'";
  CheckSamples(entity, moft.Scan(), out);
  const size_t objects = moft.num_objects();
  for (size_t i = 0; i < objects; ++i) {
    moving::ObjectSpan span = moft.SpanAt(i);
    std::vector<moving::TimedPoint> points;
    points.reserve(span.size());
    for (const moving::Sample& s : span) {
      points.push_back({s.t, s.pos});
    }
    CheckTrajectory(entity + " oid " + std::to_string(span.oid()), points,
                    out);
  }
}

void ModelChecker::CheckTrajectory(
    const std::string& entity, const std::vector<moving::TimedPoint>& points,
    DiagnosticList* out) const {
  for (const moving::TimedPoint& p : points) {
    if (!std::isfinite(p.t.seconds) || !IsFinite(p.pos)) {
      out->AddError("moft-finite-coords", entity,
                    "non-finite timestamp or position " + FormatPoint(p.pos));
      return;  // Leg arithmetic below would be meaningless.
    }
  }
  for (size_t i = 1; i < points.size(); ++i) {
    const moving::TimedPoint& a = points[i - 1];
    const moving::TimedPoint& b = points[i];
    double dt = b.t.seconds - a.t.seconds;
    double dist = std::hypot(b.pos.x - a.pos.x, b.pos.y - a.pos.y);
    if (dt < 0.0) {
      out->AddError("traj-continuity", entity,
                    "negative elapsed time between consecutive points (t=" +
                        std::to_string(a.t.seconds) + " -> t=" +
                        std::to_string(b.t.seconds) + ")");
      continue;
    }
    if (dt == 0.0) {
      if (dist > 0.0) {
        out->AddError("traj-continuity", entity,
                      "zero elapsed time with a position jump at t=" +
                          std::to_string(a.t.seconds) +
                          "; LIT(S) is not a function of time");
      }
      continue;
    }
    if (options_.max_speed > 0.0 && dist / dt > options_.max_speed) {
      out->AddWarning("traj-speed-bound", entity,
                      "leg at t=" + std::to_string(a.t.seconds) +
                          " implies speed " + std::to_string(dist / dt) +
                          " > bound " + std::to_string(options_.max_speed));
    }
  }
}

void ModelChecker::CheckOverlayCells(const std::string& entity,
                                     const std::vector<geometry::Polygon>& cells,
                                     double expected_area,
                                     DiagnosticList* out) const {
  double total = 0.0;
  for (const geometry::Polygon& cell : cells) {
    total += cell.Area();
  }

  for (size_t i = 0; i < cells.size(); ++i) {
    for (size_t j = i + 1; j < cells.size(); ++j) {
      if (!cells[i].Bounds().Intersects(cells[j].Bounds())) {
        continue;
      }
      if (!cells[i].IsConvex() || !cells[j].IsConvex()) {
        continue;  // Exact interior-overlap area needs convex operands.
      }
      double overlap = geometry::ConvexIntersectionArea(cells[i], cells[j]);
      double tolerance = options_.area_epsilon *
                         std::max(1.0, std::min(cells[i].Area(),
                                                cells[j].Area()));
      if (overlap > tolerance) {
        out->AddError("overlay-partition",
                      entity + " cells " + std::to_string(i) + "/" +
                          std::to_string(j),
                      "cell interiors overlap (area " +
                          std::to_string(overlap) +
                          "); Sec. 5 requires the overlay to partition the "
                          "plane");
      }
    }
  }

  if (expected_area >= 0.0) {
    double tolerance = options_.area_epsilon * std::max(1.0, expected_area);
    if (std::abs(total - expected_area) > tolerance) {
      out->AddError("overlay-area-conservation", entity,
                    "cell areas sum to " + std::to_string(total) +
                        " but the covered domain has area " +
                        std::to_string(expected_area));
    }
  }
}

void ModelChecker::CheckOverlay(const gis::OverlayDb& overlay,
                                DiagnosticList* out) const {
  std::string entity =
      overlay.is_convex_exact() ? "convex overlay" : "quadtree overlay";
  std::vector<geometry::Polygon> cells;
  cells.reserve(overlay.num_cells());
  for (size_t i = 0; i < overlay.num_cells(); ++i) {
    cells.push_back(overlay.CellPolygon(i));
  }

  if (overlay.is_convex_exact()) {
    CheckOverlayCells(entity, cells, /*expected_area=*/-1.0, out);
    // Area conservation per covering label: the cells a polygon covers must
    // tile exactly that polygon.
    std::map<gis::OverlayLabel, double> covered_area;
    for (size_t i = 0; i < overlay.num_cells(); ++i) {
      for (const gis::OverlayLabel& label : overlay.CellCovered(i)) {
        covered_area[label] += cells[i].Area();
      }
    }
    for (const auto& [label, area] : covered_area) {
      if (label.layer >= overlay.layers().size()) {
        continue;
      }
      auto pg = overlay.layers()[label.layer]->GetPolygon(label.geom);
      if (!pg.ok()) {
        continue;
      }
      double expected = pg.ValueOrDie()->Area();
      double tolerance = options_.area_epsilon * std::max(1.0, expected);
      if (std::abs(area - expected) > tolerance) {
        out->AddError(
            "overlay-area-conservation",
            entity + " layer " + std::to_string(label.layer) + " geometry " +
                std::to_string(label.geom),
            "covering cells sum to area " + std::to_string(area) +
                " but the polygon has area " + std::to_string(expected));
      }
    }
  } else {
    // Quadtree leaves tile the domain box exactly.
    geometry::BoundingBox domain;
    for (const geometry::Polygon& cell : cells) {
      domain.ExtendWith(cell.Bounds());
    }
    double expected =
        domain.empty() ? 0.0
                       : (domain.max_x - domain.min_x) *
                             (domain.max_y - domain.min_y);
    CheckOverlayCells(entity, cells, expected, out);
  }
}

void ModelChecker::CheckGisFactTable(const std::string& name,
                                     const gis::GisFactTable& table,
                                     DiagnosticList* out) const {
  for (GeometryId id : table.layer().ids()) {
    if (!table.Get(id).ok()) {
      out->AddError("fact-table-total",
                    "fact table '" + name + "' layer '" +
                        table.layer().name() + "'",
                    "element " + std::to_string(id) +
                        " carries no fact; Def. 3 fact tables are total "
                        "functions");
    }
  }
}

DiagnosticList ModelChecker::CheckAll(const DatabaseView& view) const {
  DiagnosticList out;
  if (view.gis != nullptr) {
    CheckInstance(*view.gis, &out);
  }
  for (const auto& [name, moft] : view.mofts) {
    if (moft != nullptr) {
      CheckMoft(name, *moft, &out);
    }
  }
  if (view.overlay != nullptr) {
    CheckOverlay(*view.overlay, &out);
  }
  return out;
}

}  // namespace piet::analysis
