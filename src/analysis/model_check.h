#ifndef PIET_ANALYSIS_MODEL_CHECK_H_
#define PIET_ANALYSIS_MODEL_CHECK_H_

#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "geometry/polygon.h"
#include "gis/fact_table.h"
#include "gis/instance.h"
#include "gis/overlay.h"
#include "gis/schema.h"
#include "moving/moft.h"
#include "moving/trajectory.h"

namespace piet::analysis {

/// Tunables of the model checker.
struct ModelCheckOptions {
  /// Maximum plausible object speed (distance units per second) for the
  /// `traj-speed-bound` sanity check; <= 0 disables the check.
  double max_speed = 0.0;

  /// Relative tolerance for the overlay area-conservation check.
  double area_epsilon = 1e-6;
};

/// A borrowed, non-owning view of the pieces of a GeoOlapDatabase the model
/// checker validates. Kept decoupled from core so the analysis library stays
/// below core in the dependency order (core wires the checker into its load
/// paths and evaluator).
struct DatabaseView {
  const gis::GisDimensionInstance* gis = nullptr;
  std::vector<std::pair<std::string, const moving::Moft*>> mofts;
  const gis::OverlayDb* overlay = nullptr;  ///< Optional.
};

/// Validates that a database instance satisfies the paper's well-formedness
/// preconditions — the static-analysis half that makes aggregation
/// trustworthy. Check-ID catalog (stable, kebab-case; see DESIGN.md):
///
///   schema-graph-acyclic      H(L) has a cycle (Def. 1 requires a DAG)
///   schema-graph-source       `point` is not the unique source of H(L)
///   schema-graph-sink         `All` is not the unique sink of H(L)
///   schema-attr-binding       Att(A) names a kind/layer absent from H
///   schema-dim-consistent     application dimension schema/instance broken
///   rollup-functional         r^{Gj,Gk}_L maps a fine id to several coarse
///   rollup-total              r^{Gj,Gk}_L misses an element of the fine level
///   rollup-dangling           r^{Gj,Gk}_L references an id absent from L
///   alpha-dangling            an α binding references a missing geometry
///   fact-table-total          a layer element carries no fact (Def. 3)
///   moft-time-monotonic       per-Oid timestamps not strictly increasing
///   moft-duplicate-sample     duplicate (Oid, t) observation
///   moft-finite-coords        NaN/infinite coordinate or timestamp
///   traj-continuity           LIT(S) undefined: non-increasing leg times
///   traj-speed-bound          a leg exceeds options.max_speed
///   overlay-partition         two overlay cells overlap in their interiors
///   overlay-area-conservation cell areas do not sum to the covered area
class ModelChecker {
 public:
  explicit ModelChecker(ModelCheckOptions options = {})
      : options_(options) {}

  const ModelCheckOptions& options() const { return options_; }

  /// Def. 1 checks over one geometry-granularity graph, given as its raw
  /// edge relation (the primitive the schema checks reduce to; public so
  /// corrupted edge relations can be checked directly).
  void CheckGraphEdges(
      const std::string& entity,
      const std::vector<std::pair<gis::GeometryKind, gis::GeometryKind>>&
          edges,
      DiagnosticList* out) const;

  /// Def. 1: every layer graph is a DAG with point/All as unique
  /// source/sink, attribute bindings resolve, application dimension schemas
  /// validate.
  void CheckSchema(const gis::GisDimensionSchema& schema,
                   DiagnosticList* out) const;

  /// Def. 2: schema checks plus stored rollup relations total + functional,
  /// rollup/α references resolving against their layers, application
  /// dimension instances consistent.
  void CheckInstance(const gis::GisDimensionInstance& instance,
                     DiagnosticList* out) const;

  /// Sec. 4 checks over a raw observation stream: strictly increasing
  /// timestamps per Oid, no duplicate (Oid, t), finite coordinates. The
  /// stream need not be grouped; per-Oid order is checked in stream order
  /// within each Oid.
  void CheckSamples(const std::string& entity,
                    const std::vector<moving::Sample>& samples,
                    DiagnosticList* out) const;

  /// Same checks over a zero-copy columnar scan view — the form the
  /// database load paths use; no materialization of the fact table.
  void CheckSamples(const std::string& entity, moving::SampleView samples,
                    DiagnosticList* out) const;

  /// CheckSamples over a registered MOFT plus per-object trajectory checks.
  void CheckMoft(const std::string& name, const moving::Moft& moft,
                 DiagnosticList* out) const;

  /// LIT(S) well-definedness over raw timed points: strictly increasing
  /// times (non-negative elapsed), finite positions, optional speed bound.
  void CheckTrajectory(const std::string& entity,
                       const std::vector<moving::TimedPoint>& points,
                       DiagnosticList* out) const;

  /// Sec. 5 partition checks over raw cells: pairwise interior-disjoint
  /// (convex cells only; non-convex pairs are skipped), and — when
  /// `expected_area` >= 0 — conservation of total area within
  /// options.area_epsilon (relative).
  void CheckOverlayCells(const std::string& entity,
                         const std::vector<geometry::Polygon>& cells,
                         double expected_area, DiagnosticList* out) const;

  /// Partition checks over a built overlay: cells pairwise
  /// interior-disjoint; in quadtree mode the leaves must tile the domain
  /// box, in convex mode each covering label's cells must sum to its
  /// polygon's area.
  void CheckOverlay(const gis::OverlayDb& overlay, DiagnosticList* out) const;

  /// Def. 3 totality: every element of the table's layer carries a fact.
  void CheckGisFactTable(const std::string& name,
                         const gis::GisFactTable& table,
                         DiagnosticList* out) const;

  /// Runs every applicable check over the view.
  DiagnosticList CheckAll(const DatabaseView& view) const;

 private:
  ModelCheckOptions options_;
};

}  // namespace piet::analysis

#endif  // PIET_ANALYSIS_MODEL_CHECK_H_
