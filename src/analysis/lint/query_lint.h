#ifndef PIET_ANALYSIS_LINT_QUERY_LINT_H_
#define PIET_ANALYSIS_LINT_QUERY_LINT_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/query_check.h"
#include "core/pietql/ast.h"

namespace piet::analysis::lint {

/// Abstract-interpretation dataflow over a parsed Piet-QL query against the
/// loaded schema, without evaluating anything. The geometric part flows a
/// shrinking over-approximate satisfying set (with its bounding box) through
/// the WHERE conjunction; the moving-object part folds time predicates into
/// the TimeAbstract domain. Because every abstract step over-approximates,
/// each finding is a proof: a dead clause really matches nothing, an empty
/// region really selects nothing.
///
/// Check-ID catalog (stable; see DESIGN.md §11). Query findings are
/// warnings/notes — the query still evaluates, to an empty or trivial
/// result — so kStrict keeps accepting them:
///
///   lint-dead-clause          (warning) one clause matches no element /
///                             no instant by itself
///   lint-redundant-clause     (note) one clause provably filters nothing
///   lint-empty-region         (warning) the geo WHERE conjunction selects
///                             no geometry
///   lint-empty-time           (warning) the time conjunction is
///                             unsatisfiable though each clause alone is not
///   lint-contradictory-spatial (warning) a spatial MO condition can never
///                             hold (empty result region, empty NEAR layer,
///                             negative radius)
///   lint-fastpath-defeated    (note) mixing T BETWEEN with TIME.<level> =
///                             forces the row path instead of the
///                             SamplesMatchingTime binary-search fast path
///
/// Reuses the semantic analyzer's QueryContext; unknown layers/levels are
/// its findings and are skipped silently here.
DiagnosticList LintQuery(const QueryContext& context,
                         const core::pietql::Query& query);

/// Stable catalog of every lint check ID (query + schema groups), sorted —
/// golden-tested so renames are deliberate.
std::vector<std::string> AllLintCheckIds();

}  // namespace piet::analysis::lint

#endif  // PIET_ANALYSIS_LINT_QUERY_LINT_H_
