#ifndef PIET_ANALYSIS_LINT_CORPUS_H_
#define PIET_ANALYSIS_LINT_CORPUS_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/lint/schema_lint.h"
#include "common/result.h"
#include "gis/instance.h"

namespace piet::analysis::lint {

/// One `.lint` corpus case: a raw schema model (possibly defective), the
/// Piet-QL queries to lint against it, and the exact set of check IDs the
/// linter must report. Format — one whitespace-separated directive per
/// line, `#` comments:
///
///   layer <name> <kind>                       declare a layer
///   graph <layer> <fine>-><coarse> ...        raw H(L) edges (may be cyclic)
///   elem <layer> <WKT>                        add an element (POINT /
///                                             LINESTRING / POLYGON)
///   attrval <layer> <id> <name> <t:value>     element attribute
///                                             (t in i/d/s/b, as gis/io)
///   ids <layer> <kind> <id>...                declare a level universe
///   attr <name> <kind> <layer>                Att binding
///   rollup <layer> <fine> <coarse> <f>:<c>... stored rollup pairs
///   alpha <attr> <t:value> <geomId>           one alpha pair
///   fact <name> <layer> <kind> [<id>...]      fact table coverage (Def. 4)
///   moft <name>                               register a MOFT name
///   query <verbatim Piet-QL>                  a query to lint
///   expect <check-id> ...                     expected finding IDs
///   expect-rewrite <rule-id> ...              expected rw-* rule IDs the
///                                             plan rewriter applies over
///                                             the case's queries
///
/// Parse errors carry a `<case-name>:<line>:` prefix naming the offending
/// directive line. Layers with elements implicitly declare the universe of
/// their own kind.
struct CorpusCase {
  std::string name;
  SchemaModel model;
  std::vector<std::string> queries;
  std::vector<std::string> expected_ids;  ///< Sorted, unique.
  /// Sorted, unique rw-* IDs from `expect-rewrite` directives. Meaningful
  /// only when `expect_rewrite_set` — an absent directive leaves the
  /// rewriter unconstrained (pre-rewriter cases keep their meaning), while
  /// a present-but-empty one asserts no rule fires.
  std::vector<std::string> expected_rewrite_ids;
  bool expect_rewrite_set = false;
  /// A live instance for query linting, built when the schema is clean
  /// enough for the gis API to accept it; null for schema-defect cases
  /// (their queries are skipped).
  std::shared_ptr<gis::GisDimensionInstance> instance;
  std::vector<std::string> moft_names;
};

Result<CorpusCase> ParseCorpusText(std::string name, std::string_view text);
Result<CorpusCase> ParseCorpusFile(const std::string& path);

/// Lints one case: LintSchema over the raw model, then per query Parse
/// (failures become lint-parse-error) + AnalyzeQuery + LintQuery when an
/// instance is available.
DiagnosticList LintCase(const CorpusCase& c);

/// OK when the distinct check-ID set of `found` equals the case's expected
/// set exactly; otherwise InvalidArgument naming the missing / unexpected
/// IDs. An absent `expect` directive means the case must lint clean.
Status CheckExpectations(const CorpusCase& c, const DiagnosticList& found);

/// The sorted, distinct rw-* rule IDs the plan rewriter applies across the
/// case's parseable queries (no overlay — corpus cases carry none).
/// Unparseable queries and schema-defect cases contribute nothing, like
/// LintCase.
std::vector<std::string> RewriteRuleIdsForCase(const CorpusCase& c);

/// OK when `expect-rewrite` is absent, or when RewriteRuleIdsForCase
/// equals the expected set exactly; otherwise InvalidArgument naming the
/// missing / unexpected rule IDs.
Status CheckRewriteExpectations(const CorpusCase& c);

}  // namespace piet::analysis::lint

#endif  // PIET_ANALYSIS_LINT_CORPUS_H_
