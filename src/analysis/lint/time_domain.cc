#include "analysis/lint/time_domain.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "temporal/calendar.h"
#include "temporal/time_dimension.h"
#include "temporal/time_point.h"

namespace piet::analysis::lint {

using temporal::Interval;
using temporal::TimePoint;

namespace {

constexpr double kHour = 3600.0;
constexpr double kDay = 24.0 * kHour;

/// Hour-of-day range [lo, hi) as a 24-bit mask.
uint32_t HourRangeMask(int lo, int hi) {
  uint32_t mask = 0;
  for (int h = lo; h < hi; ++h) {
    mask |= 1u << h;
  }
  return mask;
}

std::optional<uint32_t> TimeOfDayMask(const std::string& member) {
  if (member == "Night") {
    return HourRangeMask(0, 6);
  }
  if (member == "Morning") {
    return HourRangeMask(6, 12);
  }
  if (member == "Afternoon") {
    return HourRangeMask(12, 18);
  }
  if (member == "Evening") {
    return HourRangeMask(18, 24);
  }
  return std::nullopt;
}

std::optional<uint8_t> DayOfWeekMask(const std::string& member) {
  for (int d = 0; d < 7; ++d) {
    if (member ==
        temporal::DayOfWeekToString(static_cast<temporal::DayOfWeek>(d))) {
      return static_cast<uint8_t>(1u << d);
    }
  }
  return std::nullopt;
}

std::optional<uint8_t> TypeOfDayMask(const std::string& member) {
  if (member == "Weekday") {
    return static_cast<uint8_t>(0x1F);  // Monday..Friday.
  }
  if (member == "Weekend") {
    return static_cast<uint8_t>(0x60);  // Saturday, Sunday.
  }
  return std::nullopt;
}

/// True when `v` holds an integral numeric value; writes it to `*out`.
bool IntegralValue(const Value& v, int64_t* out) {
  if (!v.is_numeric()) {
    return false;
  }
  const double d = v.AsNumeric().ValueOrDie();
  if (d != std::floor(d) || std::abs(d) >= 9.0e18) {
    return false;
  }
  *out = static_cast<int64_t>(d);
  return true;
}

/// The member string `TIME.<level>` rollup produces at instant `t`, for
/// canonical-form checks of string-member levels.
std::optional<std::string> CanonicalMember(std::string_view level,
                                           TimePoint t) {
  const temporal::TimeDimension dim;
  const auto member = dim.Rollup(level, t);
  if (!member.ok() || !member.ValueOrDie().is_string()) {
    return std::nullopt;
  }
  return member.ValueOrDie().AsStringUnchecked();
}

}  // namespace

std::optional<Interval> TimeAbstract::LevelEqualsWindow(std::string_view level,
                                                        const Value& literal) {
  if (level == "timeId") {
    if (!literal.is_numeric()) {
      return std::nullopt;
    }
    const double t = literal.AsNumeric().ValueOrDie();
    if (!std::isfinite(t)) {
      return std::nullopt;
    }
    return Interval(TimePoint(t), TimePoint(t));
  }
  if (level == "hourBucket") {
    int64_t bucket = 0;
    if (!IntegralValue(literal, &bucket)) {
      return std::nullopt;
    }
    const double b = static_cast<double>(bucket);
    if (temporal::StartOfHour(TimePoint(b)).seconds != b) {
      return std::nullopt;  // Not a start-of-hour instant: never a member.
    }
    return Interval(TimePoint(b), TimePoint(b + kHour));
  }
  if (level == "minute" || level == "day") {
    if (!literal.is_string()) {
      return std::nullopt;
    }
    const auto t = temporal::ParseTimePoint(literal.AsStringUnchecked());
    if (!t.ok()) {
      return std::nullopt;
    }
    const auto canonical = CanonicalMember(level, t.ValueOrDie());
    if (!canonical || *canonical != literal.AsStringUnchecked()) {
      return std::nullopt;  // Non-canonical spelling: never equals a member.
    }
    const double begin = t.ValueOrDie().seconds;
    return Interval(TimePoint(begin),
                    TimePoint(begin + (level == "minute" ? 60.0 : kDay)));
  }
  if (level == "month") {
    if (!literal.is_string()) {
      return std::nullopt;
    }
    const auto begin =
        temporal::ParseTimePoint(literal.AsStringUnchecked() + "-01");
    if (!begin.ok()) {
      return std::nullopt;
    }
    const auto canonical = CanonicalMember(level, begin.ValueOrDie());
    if (!canonical || *canonical != literal.AsStringUnchecked()) {
      return std::nullopt;
    }
    const temporal::CivilTime civil = temporal::ToCivil(begin.ValueOrDie());
    const int days = temporal::DaysInMonth(civil.year, civil.month);
    return Interval(begin.ValueOrDie(),
                    TimePoint(begin.ValueOrDie().seconds + days * kDay));
  }
  if (level == "year") {
    int64_t year = 0;
    if (!IntegralValue(literal, &year) || year < 1 || year > 9999) {
      return std::nullopt;
    }
    temporal::CivilTime jan1;
    jan1.year = static_cast<int>(year);
    auto begin = temporal::FromCivil(jan1);
    jan1.year = static_cast<int>(year) + 1;
    auto end = temporal::FromCivil(jan1);
    if (!begin.ok() || !end.ok()) {
      return std::nullopt;
    }
    return Interval(begin.ValueOrDie(), end.ValueOrDie());
  }
  return std::nullopt;
}

TimeFold TimeAbstract::MeetLevelEquals(std::string_view level,
                                       const Value& literal) {
  if (level == "all") {
    if (literal.is_string() && literal.AsStringUnchecked() == "all") {
      return TimeFold::kAlways;
    }
    bottom_ = true;
    return TimeFold::kDead;
  }
  if (level == "hour") {
    int64_t h = 0;
    if (!literal.is_numeric()) {
      return TimeFold::kUnknown;  // Type mismatch; reported elsewhere.
    }
    if (!IntegralValue(literal, &h) || h < 0 || h > 23) {
      bottom_ = true;
      return TimeFold::kDead;
    }
    hours_ &= 1u << h;
    if (hours_ == 0) {
      bottom_ = true;
    }
    return TimeFold::kFolded;
  }
  if (level == "timeOfDay" || level == "dayOfWeek" || level == "typeOfDay") {
    if (!literal.is_string()) {
      return TimeFold::kUnknown;
    }
    const std::string& member = literal.AsStringUnchecked();
    if (level == "timeOfDay") {
      auto mask = TimeOfDayMask(member);
      if (!mask) {
        bottom_ = true;
        return TimeFold::kDead;
      }
      hours_ &= *mask;
      if (hours_ == 0) {
        bottom_ = true;
      }
      return TimeFold::kFolded;
    }
    auto mask = level == "dayOfWeek" ? DayOfWeekMask(member)
                                     : TypeOfDayMask(member);
    if (!mask) {
      bottom_ = true;
      return TimeFold::kDead;
    }
    days_ &= *mask;
    if (days_ == 0) {
      bottom_ = true;
    }
    return TimeFold::kFolded;
  }
  if (level == "timeId" || level == "hourBucket" || level == "minute" ||
      level == "day" || level == "month" || level == "year") {
    // Absolute levels constant-fold to windows. A literal of the right type
    // that is not a canonical member matches no instant at all.
    auto window = LevelEqualsWindow(level, literal);
    const bool right_type =
        (level == "minute" || level == "day" || level == "month")
            ? literal.is_string()
            : literal.is_numeric();
    if (!window) {
      if (!right_type) {
        return TimeFold::kUnknown;
      }
      bottom_ = true;
      return TimeFold::kDead;
    }
    MeetWindow(*window);
    return TimeFold::kFolded;
  }
  return TimeFold::kUnknown;
}

void TimeAbstract::MeetWindow(const Interval& w) {
  if (w.end < w.begin) {
    bottom_ = true;
    return;
  }
  if (!window_) {
    window_ = w;
    return;
  }
  if (!window_->Intersects(w)) {
    bottom_ = true;
    return;
  }
  window_ = Interval(TimePoint(std::max(window_->begin.seconds,
                                        w.begin.seconds)),
                     TimePoint(std::min(window_->end.seconds,
                                        w.end.seconds)));
}

bool TimeAbstract::WindowFeasibleAgainstMasks() const {
  if (!window_) {
    return true;
  }
  if (hours_ == kAllHours && days_ == kAllDays) {
    return true;
  }
  // The masks are week-periodic: any window at least a week plus an hour
  // long covers every (hour-of-day, day-of-week) cell.
  if (window_->Length() >= 8.0 * kDay) {
    return hours_ != 0 && days_ != 0;
  }
  for (TimePoint cell = temporal::StartOfHour(window_->begin);
       cell <= window_->end; cell = TimePoint(cell.seconds + kHour)) {
    const bool hour_ok =
        (hours_ & (1u << temporal::GetHourOfDay(cell))) != 0;
    const bool day_ok =
        (days_ &
         (1u << static_cast<int>(temporal::GetDayOfWeek(cell)))) != 0;
    if (hour_ok && day_ok) {
      return true;
    }
  }
  return false;
}

bool TimeAbstract::IsBottom() const {
  if (bottom_ || hours_ == 0 || days_ == 0) {
    return true;
  }
  return !WindowFeasibleAgainstMasks();
}

}  // namespace piet::analysis::lint
