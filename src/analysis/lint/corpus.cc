#include "analysis/lint/corpus.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "analysis/lint/query_lint.h"
#include "analysis/query_check.h"
#include "analysis/rewrite/rewriter.h"
#include "core/pietql/parser.h"
#include "geometry/wkt.h"
#include "gis/layer.h"
#include "gis/schema.h"

namespace piet::analysis::lint {

using gis::GeometryId;
using gis::GeometryKind;

namespace {

std::vector<std::string> SplitTokens(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream in{std::string(line)};
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

Status ParseError(const std::string& what) {
  return Status::ParseError(what);
}

/// "t:value" with t in i/d/s/b, the gis/io attribute tagging (strings raw —
/// corpus members never need escapes).
Result<Value> ParseTaggedValue(const std::string& s) {
  if (s.size() < 2 || s[1] != ':') {
    return Status::ParseError("bad tagged value '" + s + "'");
  }
  const std::string body = s.substr(2);
  switch (s[0]) {
    case 'i': {
      int64_t v = 0;
      const auto res = std::from_chars(body.data(), body.data() + body.size(), v);
      if (res.ec != std::errc() || res.ptr != body.data() + body.size()) {
        return Status::ParseError("bad int '" + body + "'");
      }
      return Value(v);
    }
    case 'd': {
      double v = 0.0;
      const auto res = std::from_chars(body.data(), body.data() + body.size(), v);
      if (res.ec != std::errc() || res.ptr != body.data() + body.size()) {
        return Status::ParseError("bad double '" + body + "'");
      }
      return Value(v);
    }
    case 's':
      return Value(body);
    case 'b':
      return Value(body == "1");
    default:
      return Status::ParseError("unknown value tag '" + s.substr(0, 1) + "'");
  }
}

Result<int64_t> ParseInt(const std::string& s) {
  int64_t v = 0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  if (res.ec != std::errc() || res.ptr != s.data() + s.size()) {
    return Status::ParseError("bad integer '" + s + "'");
  }
  return v;
}

struct RawLayer {
  GeometryKind kind = GeometryKind::kPolygon;
  std::vector<std::string> wkts;
  /// (element id, attribute name, value).
  std::vector<std::tuple<GeometryId, std::string, Value>> attrvals;
};

/// Builds a live instance from the parsed pieces; any gis-API rejection
/// (cyclic graph, bad edge, dangling rollup) means the case is a
/// schema-defect case and queries are skipped.
std::shared_ptr<gis::GisDimensionInstance> TryBuildInstance(
    const CorpusCase& c, const std::map<std::string, RawLayer>& layers) {
  gis::GisDimensionSchema schema;
  for (const SchemaModel::Graph& g : c.model.graphs) {
    gis::GeometryGraph graph;
    for (const auto& [fine, coarse] : g.edges) {
      if (!graph.AddEdge(fine, coarse).ok()) {
        return nullptr;
      }
    }
    if (!schema.AddLayerGraph(g.layer, std::move(graph)).ok()) {
      return nullptr;
    }
  }
  for (const gis::AttributeBinding& att : c.model.attributes) {
    if (!schema.AddAttribute(att.attribute, att.kind, att.layer).ok()) {
      return nullptr;
    }
  }
  if (!schema.Validate().ok()) {
    return nullptr;
  }
  auto instance =
      std::make_shared<gis::GisDimensionInstance>(std::move(schema));
  for (const auto& [name, raw] : layers) {
    auto layer = std::make_shared<gis::Layer>(name, raw.kind);
    for (const std::string& wkt : raw.wkts) {
      bool ok = false;
      switch (raw.kind) {
        case GeometryKind::kPoint:
        case GeometryKind::kNode: {
          auto p = geometry::PointFromWkt(wkt);
          ok = p.ok() && layer->AddPoint(p.ValueOrDie()).ok();
          break;
        }
        case GeometryKind::kLine:
        case GeometryKind::kPolyline: {
          auto l = geometry::PolylineFromWkt(wkt);
          ok = l.ok() && layer->AddPolyline(std::move(l).ValueOrDie()).ok();
          break;
        }
        case GeometryKind::kPolygon: {
          auto p = geometry::PolygonFromWkt(wkt);
          ok = p.ok() && layer->AddPolygon(std::move(p).ValueOrDie()).ok();
          break;
        }
        case GeometryKind::kAll:
          break;
      }
      if (!ok) {
        return nullptr;
      }
    }
    for (const auto& [id, attr, value] : raw.attrvals) {
      if (!layer->SetAttribute(id, attr, value).ok()) {
        return nullptr;
      }
    }
    if (!instance->AddLayer(std::move(layer)).ok()) {
      return nullptr;
    }
  }
  for (const SchemaModel::Rollup& rollup : c.model.rollups) {
    for (const auto& [fine_id, coarse_id] : rollup.pairs) {
      if (!instance
               ->AddGeometryRollup(rollup.layer, rollup.fine, fine_id,
                                   rollup.coarse, coarse_id)
               .ok()) {
        return nullptr;
      }
    }
  }
  for (const SchemaModel::AlphaBinding& alpha : c.model.alphas) {
    for (const auto& [member, geom] : alpha.pairs) {
      if (!instance->BindAlpha(alpha.attribute, member, geom).ok()) {
        return nullptr;
      }
    }
  }
  return instance;
}

}  // namespace

Result<CorpusCase> ParseCorpusText(std::string name, std::string_view text) {
  CorpusCase c;
  c.name = std::move(name);
  std::map<std::string, RawLayer> layers;

  std::istringstream in{std::string(text)};
  std::string raw_line;
  size_t lineno = 0;
  while (std::getline(in, raw_line)) {
    ++lineno;
    const std::string_view line = Trim(raw_line);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    const size_t space = line.find(' ');
    const std::string directive(line.substr(0, space));
    const std::string_view rest =
        space == std::string_view::npos ? std::string_view()
                                        : Trim(line.substr(space + 1));
    // The whole directive parse runs inside one Status-returning lambda so
    // every failure — bad argument counts and sub-parses alike — comes
    // back with a "<case-name>:<line>:" prefix naming its source line.
    Status line_status = [&]() -> Status {
    if (directive == "query") {
      if (rest.empty()) {
        return ParseError("query needs text");
      }
      c.queries.emplace_back(rest);
      return Status::OK();
    }
    std::vector<std::string> args = SplitTokens(rest);
    if (directive == "layer") {
      if (args.size() != 2) {
        return ParseError("layer <name> <kind>");
      }
      PIET_ASSIGN_OR_RETURN(GeometryKind kind,
                            gis::GeometryKindFromString(args[1]));
      layers[args[0]].kind = kind;
    } else if (directive == "graph") {
      if (args.empty()) {
        return ParseError("graph <layer> <fine>-><coarse>...");
      }
      SchemaModel::Graph graph;
      graph.layer = args[0];
      for (size_t i = 1; i < args.size(); ++i) {
        const size_t arrow = args[i].find("->");
        if (arrow == std::string::npos) {
          return ParseError("bad edge '" + args[i] + "'");
        }
        PIET_ASSIGN_OR_RETURN(
            GeometryKind fine,
            gis::GeometryKindFromString(args[i].substr(0, arrow)));
        PIET_ASSIGN_OR_RETURN(
            GeometryKind coarse,
            gis::GeometryKindFromString(args[i].substr(arrow + 2)));
        graph.edges.emplace_back(fine, coarse);
      }
      c.model.graphs.push_back(std::move(graph));
    } else if (directive == "elem") {
      if (args.empty() || rest.size() <= args[0].size()) {
        return ParseError("elem <layer> <WKT>");
      }
      auto it = layers.find(args[0]);
      if (it == layers.end()) {
        return ParseError("elem before layer '" + args[0] + "'");
      }
      it->second.wkts.emplace_back(Trim(rest.substr(args[0].size())));
    } else if (directive == "attrval") {
      if (args.size() != 4) {
        return ParseError("attrval <layer> <id> <name> <t:value>");
      }
      auto it = layers.find(args[0]);
      if (it == layers.end()) {
        return ParseError("attrval before layer '" + args[0] + "'");
      }
      PIET_ASSIGN_OR_RETURN(int64_t id, ParseInt(args[1]));
      PIET_ASSIGN_OR_RETURN(Value value, ParseTaggedValue(args[3]));
      it->second.attrvals.emplace_back(id, args[2], std::move(value));
    } else if (directive == "ids") {
      if (args.size() < 2) {
        return ParseError("ids <layer> <kind> <id>...");
      }
      SchemaModel::LevelUniverse universe;
      universe.layer = args[0];
      PIET_ASSIGN_OR_RETURN(universe.kind,
                            gis::GeometryKindFromString(args[1]));
      for (size_t i = 2; i < args.size(); ++i) {
        PIET_ASSIGN_OR_RETURN(int64_t id, ParseInt(args[i]));
        universe.ids.push_back(id);
      }
      c.model.levels.push_back(std::move(universe));
    } else if (directive == "attr") {
      if (args.size() != 3) {
        return ParseError("attr <name> <kind> <layer>");
      }
      PIET_ASSIGN_OR_RETURN(GeometryKind kind,
                            gis::GeometryKindFromString(args[1]));
      c.model.attributes.push_back(
          gis::AttributeBinding{args[0], kind, args[2]});
    } else if (directive == "rollup") {
      if (args.size() < 3) {
        return ParseError("rollup <layer> <fine> <coarse> <f>:<c>...");
      }
      SchemaModel::Rollup rollup;
      rollup.layer = args[0];
      PIET_ASSIGN_OR_RETURN(rollup.fine,
                            gis::GeometryKindFromString(args[1]));
      PIET_ASSIGN_OR_RETURN(rollup.coarse,
                            gis::GeometryKindFromString(args[2]));
      for (size_t i = 3; i < args.size(); ++i) {
        const size_t colon = args[i].find(':');
        if (colon == std::string::npos) {
          return ParseError("bad pair '" + args[i] + "'");
        }
        PIET_ASSIGN_OR_RETURN(int64_t fine_id,
                              ParseInt(args[i].substr(0, colon)));
        PIET_ASSIGN_OR_RETURN(int64_t coarse_id,
                              ParseInt(args[i].substr(colon + 1)));
        rollup.pairs.emplace_back(fine_id, coarse_id);
      }
      c.model.rollups.push_back(std::move(rollup));
    } else if (directive == "alpha") {
      if (args.size() != 3) {
        return ParseError("alpha <attr> <t:value> <geomId>");
      }
      PIET_ASSIGN_OR_RETURN(Value member, ParseTaggedValue(args[1]));
      PIET_ASSIGN_OR_RETURN(int64_t geom, ParseInt(args[2]));
      SchemaModel::AlphaBinding* binding = nullptr;
      for (SchemaModel::AlphaBinding& existing : c.model.alphas) {
        if (existing.attribute == args[0]) {
          binding = &existing;
          break;
        }
      }
      if (binding == nullptr) {
        c.model.alphas.push_back(SchemaModel::AlphaBinding{args[0], {}});
        binding = &c.model.alphas.back();
      }
      binding->pairs.emplace_back(std::move(member), geom);
    } else if (directive == "fact") {
      if (args.size() < 3) {
        return ParseError("fact <name> <layer> <kind> [<id>...]");
      }
      SchemaModel::FactTable fact;
      fact.name = args[0];
      fact.layer = args[1];
      PIET_ASSIGN_OR_RETURN(fact.level,
                            gis::GeometryKindFromString(args[2]));
      for (size_t i = 3; i < args.size(); ++i) {
        PIET_ASSIGN_OR_RETURN(int64_t id, ParseInt(args[i]));
        fact.ids.push_back(id);
      }
      c.model.fact_tables.push_back(std::move(fact));
    } else if (directive == "moft") {
      if (args.size() != 1) {
        return ParseError("moft <name>");
      }
      c.moft_names.push_back(args[0]);
    } else if (directive == "expect") {
      for (std::string& id : args) {
        c.expected_ids.push_back(std::move(id));
      }
    } else if (directive == "expect-rewrite") {
      c.expect_rewrite_set = true;
      for (std::string& id : args) {
        c.expected_rewrite_ids.push_back(std::move(id));
      }
    } else {
      return ParseError("unknown directive '" + directive + "'");
    }
    return Status::OK();
    }();
    if (!line_status.ok()) {
      return line_status.WithContext(c.name + ":" + std::to_string(lineno));
    }
  }
  std::sort(c.expected_ids.begin(), c.expected_ids.end());
  c.expected_ids.erase(
      std::unique(c.expected_ids.begin(), c.expected_ids.end()),
      c.expected_ids.end());
  std::sort(c.expected_rewrite_ids.begin(), c.expected_rewrite_ids.end());
  c.expected_rewrite_ids.erase(
      std::unique(c.expected_rewrite_ids.begin(),
                  c.expected_rewrite_ids.end()),
      c.expected_rewrite_ids.end());

  // Layers with elements implicitly declare their own level's universe.
  for (const auto& [name, raw] : layers) {
    const bool declared =
        std::any_of(c.model.levels.begin(), c.model.levels.end(),
                    [&, &layer_name = name](
                        const SchemaModel::LevelUniverse& u) {
                      return u.layer == layer_name && u.kind == raw.kind;
                    });
    if (!declared && !raw.wkts.empty()) {
      SchemaModel::LevelUniverse universe;
      universe.layer = name;
      universe.kind = raw.kind;
      for (size_t i = 0; i < raw.wkts.size(); ++i) {
        universe.ids.push_back(static_cast<GeometryId>(i));
      }
      c.model.levels.push_back(std::move(universe));
    }
  }

  c.instance = TryBuildInstance(c, layers);
  return c;
}

Result<CorpusCase> ParseCorpusFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open corpus file '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string name = path;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  return ParseCorpusText(std::move(name), text.str());
}

DiagnosticList LintCase(const CorpusCase& c) {
  DiagnosticList out = LintSchema(c.model);
  QueryContext context;
  context.gis = c.instance.get();
  context.moft_names = c.moft_names;
  for (size_t i = 0; i < c.queries.size(); ++i) {
    const std::string entity = "query " + std::to_string(i + 1);
    auto parsed = core::pietql::Parse(c.queries[i]);
    if (!parsed.ok()) {
      out.AddError("lint-parse-error", entity,
                   parsed.status().ToString());
      continue;
    }
    if (c.instance == nullptr) {
      continue;  // Schema-defect case; nothing to resolve queries against.
    }
    out.Merge(AnalyzeQuery(context, parsed.ValueOrDie()));
    out.Merge(LintQuery(context, parsed.ValueOrDie()));
  }
  return out;
}

Status CheckExpectations(const CorpusCase& c, const DiagnosticList& found) {
  const std::vector<std::string> have = found.CheckIds();
  std::vector<std::string> missing;
  std::set_difference(c.expected_ids.begin(), c.expected_ids.end(),
                      have.begin(), have.end(), std::back_inserter(missing));
  std::vector<std::string> unexpected;
  std::set_difference(have.begin(), have.end(), c.expected_ids.begin(),
                      c.expected_ids.end(), std::back_inserter(unexpected));
  if (missing.empty() && unexpected.empty()) {
    return Status::OK();
  }
  std::ostringstream os;
  os << "case '" << c.name << "':";
  if (!missing.empty()) {
    os << " missing";
    for (const std::string& id : missing) {
      os << " " << id;
    }
  }
  if (!unexpected.empty()) {
    os << (missing.empty() ? " " : ";") << " unexpected";
    for (const std::string& id : unexpected) {
      os << " " << id;
    }
  }
  return Status::InvalidArgument(os.str());
}

std::vector<std::string> RewriteRuleIdsForCase(const CorpusCase& c) {
  std::vector<std::string> out;
  if (c.instance == nullptr) {
    return out;
  }
  rewrite::RewriteContext context;
  context.gis = c.instance.get();
  for (const std::string& q : c.queries) {
    auto parsed = core::pietql::Parse(q);
    if (!parsed.ok()) {
      continue;
    }
    rewrite::RewritePlan plan =
        rewrite::RewriteQuery(context, parsed.ValueOrDie());
    for (const rewrite::AppliedRewrite& a : plan.applied) {
      out.push_back(a.rule_id);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Status CheckRewriteExpectations(const CorpusCase& c) {
  if (!c.expect_rewrite_set) {
    return Status::OK();
  }
  const std::vector<std::string> have = RewriteRuleIdsForCase(c);
  std::vector<std::string> missing;
  std::set_difference(c.expected_rewrite_ids.begin(),
                      c.expected_rewrite_ids.end(), have.begin(), have.end(),
                      std::back_inserter(missing));
  std::vector<std::string> unexpected;
  std::set_difference(have.begin(), have.end(),
                      c.expected_rewrite_ids.begin(),
                      c.expected_rewrite_ids.end(),
                      std::back_inserter(unexpected));
  if (missing.empty() && unexpected.empty()) {
    return Status::OK();
  }
  std::ostringstream os;
  os << "case '" << c.name << "' rewrite:";
  if (!missing.empty()) {
    os << " missing";
    for (const std::string& id : missing) {
      os << " " << id;
    }
  }
  if (!unexpected.empty()) {
    os << (missing.empty() ? " " : ";") << " unexpected";
    for (const std::string& id : unexpected) {
      os << " " << id;
    }
  }
  return Status::InvalidArgument(os.str());
}

}  // namespace piet::analysis::lint
