#ifndef PIET_ANALYSIS_LINT_TIME_DOMAIN_H_
#define PIET_ANALYSIS_LINT_TIME_DOMAIN_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/value.h"
#include "temporal/interval.h"

namespace piet::analysis::lint {

/// Outcome of folding one `TIME.<level> = literal` constraint into the
/// abstract time state.
enum class TimeFold {
  kFolded = 0,  ///< Constraint narrowed the abstract state.
  kDead,        ///< No instant can ever satisfy the constraint by itself.
  kAlways,      ///< The constraint holds at every instant (e.g. TIME.all).
  kUnknown,     ///< Not foldable (unknown level / mistyped literal — those
                ///< are reported by the semantic analyzer, not the linter).
};

/// Abstract domain over time instants for the Piet-QL linter: the
/// concretization is the set of instants satisfying every constraint folded
/// so far. The representation is the product of
///   * a 24-bit hour-of-day mask (TIME.hour, TIME.timeOfDay),
///   * a 7-bit day-of-week mask (TIME.dayOfWeek, TIME.typeOfDay; bit 0 is
///     Monday, matching temporal::DayOfWeek),
///   * an optional absolute closed window (T BETWEEN, and the absolute
///     levels timeId / minute / hourBucket / day / month / year, which
///     constant-fold to windows).
/// Every meet over-approximates the concrete constraint, so `IsBottom()
/// == true` *proves* the conjunction unsatisfiable — the linter only
/// reports contradictions it can prove.
class TimeAbstract {
 public:
  static constexpr uint32_t kAllHours = (1u << 24) - 1;
  static constexpr uint8_t kAllDays = (1u << 7) - 1;

  TimeAbstract() = default;

  /// Folds `TIME.<level> = literal`. On kDead the whole state also drops to
  /// bottom (a conjunction with an unsatisfiable clause is unsatisfiable).
  TimeFold MeetLevelEquals(std::string_view level, const Value& literal);

  /// Intersects with the closed window [w.begin, w.end]. A window with
  /// end < begin, or one disjoint from the current window, drops to bottom.
  void MeetWindow(const temporal::Interval& w);

  /// True when the conjunction folded so far is provably unsatisfiable.
  /// Exact for the mask-only and window-only cases; for mask ∧ window the
  /// window's hour cells are enumerated (clamped to just over one week —
  /// the masks are week-periodic, so that is exhaustive).
  bool IsBottom() const;

  uint32_t hours() const { return hours_; }
  uint8_t days() const { return days_; }
  const std::optional<temporal::Interval>& window() const { return window_; }

  /// The absolute window `TIME.<level> = literal` folds to, when the level
  /// is one of the absolute levels (timeId, minute, hourBucket, day, month,
  /// year) and the literal is a canonical member of it. Used by fix-its to
  /// rewrite rollup-equality constraints into `T BETWEEN` windows that keep
  /// the sorted-time fast path eligible.
  static std::optional<temporal::Interval> LevelEqualsWindow(
      std::string_view level, const Value& literal);

 private:
  bool WindowFeasibleAgainstMasks() const;

  uint32_t hours_ = kAllHours;
  uint8_t days_ = kAllDays;
  std::optional<temporal::Interval> window_;
  bool bottom_ = false;
};

}  // namespace piet::analysis::lint

#endif  // PIET_ANALYSIS_LINT_TIME_DOMAIN_H_
