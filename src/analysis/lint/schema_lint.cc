#include "analysis/lint/schema_lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace piet::analysis::lint {

using gis::GeometryId;
using gis::GeometryKind;
using gis::GeometryKindToString;

namespace {

using KindEdge = std::pair<GeometryKind, GeometryKind>;

std::string KindName(GeometryKind kind) {
  return std::string(GeometryKindToString(kind));
}

std::string EdgeName(GeometryKind fine, GeometryKind coarse) {
  return KindName(fine) + "->" + KindName(coarse);
}

std::string GraphEntity(const std::string& layer) {
  return "layer '" + layer + "' graph";
}

std::string RollupEntity(const SchemaModel::Rollup& r) {
  return "rollup " + EdgeName(r.fine, r.coarse) + " in layer '" + r.layer +
         "'";
}

/// Nodes of a raw edge relation plus the two distinguished kinds that are
/// always part of H(L) (Def. 1).
std::set<GeometryKind> GraphNodes(const std::vector<KindEdge>& edges) {
  std::set<GeometryKind> nodes = {GeometryKind::kPoint, GeometryKind::kAll};
  for (const auto& [fine, coarse] : edges) {
    nodes.insert(fine);
    nodes.insert(coarse);
  }
  return nodes;
}

/// All nodes reachable from `start` along raw edges (reflexive).
std::set<GeometryKind> ReachableFrom(const std::vector<KindEdge>& edges,
                                     GeometryKind start) {
  std::set<GeometryKind> seen = {start};
  std::vector<GeometryKind> stack = {start};
  while (!stack.empty()) {
    const GeometryKind node = stack.back();
    stack.pop_back();
    for (const auto& [fine, coarse] : edges) {
      if (fine == node && seen.insert(coarse).second) {
        stack.push_back(coarse);
      }
    }
  }
  return seen;
}

/// True when the raw edge relation has a directed cycle (self-loops count).
bool HasCycle(const std::vector<KindEdge>& edges) {
  const std::set<GeometryKind> nodes = GraphNodes(edges);
  std::map<GeometryKind, int> state;  // 0 = white, 1 = grey, 2 = black.
  for (const GeometryKind root : nodes) {
    if (state[root] != 0) {
      continue;
    }
    // Iterative DFS with an explicit exit marker per node.
    std::vector<std::pair<GeometryKind, bool>> stack = {{root, false}};
    while (!stack.empty()) {
      const auto [node, exiting] = stack.back();
      stack.pop_back();
      if (exiting) {
        state[node] = 2;
        continue;
      }
      if (state[node] == 1) {
        continue;
      }
      state[node] = 1;
      stack.emplace_back(node, true);
      for (const auto& [fine, coarse] : edges) {
        if (fine != node) {
          continue;
        }
        if (state[coarse] == 1) {
          return true;
        }
        if (state[coarse] == 0) {
          stack.emplace_back(coarse, false);
        }
      }
    }
  }
  return false;
}

const SchemaModel::Graph* FindGraph(const SchemaModel& model,
                                    const std::string& layer) {
  for (const SchemaModel::Graph& g : model.graphs) {
    if (g.layer == layer) {
      return &g;
    }
  }
  return nullptr;
}

const std::vector<GeometryId>* FindUniverse(const SchemaModel& model,
                                            const std::string& layer,
                                            GeometryKind kind) {
  for (const SchemaModel::LevelUniverse& u : model.levels) {
    if (u.layer == layer && u.kind == kind) {
      return &u.ids;
    }
  }
  return nullptr;
}

const SchemaModel::Rollup* FindRollup(const SchemaModel& model,
                                      const std::string& layer,
                                      GeometryKind fine, GeometryKind coarse) {
  for (const SchemaModel::Rollup& r : model.rollups) {
    if (r.layer == layer && r.fine == fine && r.coarse == coarse) {
      return &r;
    }
  }
  return nullptr;
}

void LintGraphs(const SchemaModel& model, std::set<std::string>* acyclic,
                DiagnosticList* out) {
  std::set<std::string> seen;
  for (const SchemaModel::Graph& graph : model.graphs) {
    if (!seen.insert(graph.layer).second) {
      out->AddError("lint-graph-shape", GraphEntity(graph.layer),
                    "layer declares more than one geometry graph");
      continue;
    }
    if (HasCycle(graph.edges)) {
      out->AddError("lint-graph-cycle", GraphEntity(graph.layer),
                    "H(L) has a directed cycle; rollup order is undefined "
                    "(Def. 1 requires a DAG from point to All)");
      continue;  // Shape checks assume acyclicity.
    }
    acyclic->insert(graph.layer);
    for (const auto& [fine, coarse] : graph.edges) {
      if (coarse == GeometryKind::kPoint) {
        out->AddError("lint-graph-shape", GraphEntity(graph.layer),
                      "edge " + EdgeName(fine, coarse) +
                          " enters 'point'; point must be the unique source");
      }
      if (fine == GeometryKind::kAll) {
        out->AddError("lint-graph-shape", GraphEntity(graph.layer),
                      "edge " + EdgeName(fine, coarse) +
                          " leaves 'All'; All must be the unique sink");
      }
    }
    const std::set<GeometryKind> from_point =
        ReachableFrom(graph.edges, GeometryKind::kPoint);
    for (const GeometryKind node : GraphNodes(graph.edges)) {
      if (node != GeometryKind::kPoint && !from_point.count(node)) {
        out->AddError("lint-graph-shape", GraphEntity(graph.layer),
                      "kind '" + KindName(node) +
                          "' is not reachable from point");
      }
      if (node != GeometryKind::kAll &&
          !ReachableFrom(graph.edges, node).count(GeometryKind::kAll)) {
        out->AddError("lint-graph-shape", GraphEntity(graph.layer),
                      "kind '" + KindName(node) + "' does not reach All");
      }
    }
  }
}

void LintAttributes(const SchemaModel& model, DiagnosticList* out) {
  std::set<std::string> seen;
  for (const gis::AttributeBinding& att : model.attributes) {
    const std::string entity = "attribute '" + att.attribute + "'";
    if (!seen.insert(att.attribute).second) {
      out->AddError("lint-att-binding", entity,
                    "Att is not a function: attribute bound more than once");
      continue;
    }
    const SchemaModel::Graph* graph = FindGraph(model, att.layer);
    if (graph == nullptr) {
      out->AddError("lint-att-binding", entity,
                    "bound to unknown layer '" + att.layer + "'");
      continue;
    }
    if (!GraphNodes(graph->edges).count(att.kind)) {
      out->AddError("lint-att-binding", entity,
                    "bound to kind '" + KindName(att.kind) +
                        "' absent from layer '" + att.layer + "'");
    }
  }
}

void LintRollups(const SchemaModel& model, DiagnosticList* out) {
  for (const SchemaModel::Rollup& rollup : model.rollups) {
    const std::string entity = RollupEntity(rollup);
    const SchemaModel::Graph* graph = FindGraph(model, rollup.layer);
    if (graph == nullptr) {
      out->AddError("lint-rollup-dangling", entity,
                    "layer has no geometry graph");
      continue;
    }
    if (std::find(graph->edges.begin(), graph->edges.end(),
                  KindEdge{rollup.fine, rollup.coarse}) ==
        graph->edges.end()) {
      out->AddError("lint-rollup-dangling", entity,
                    "no edge " + EdgeName(rollup.fine, rollup.coarse) +
                        " in H(L); the relation rolls up along nothing");
    }
    // Functionality: r^{Gj,Gk}_L must map each fine id to one coarse id.
    std::map<GeometryId, std::set<GeometryId>> images;
    for (const auto& [fine_id, coarse_id] : rollup.pairs) {
      images[fine_id].insert(coarse_id);
    }
    for (const auto& [fine_id, coarse_ids] : images) {
      if (coarse_ids.size() > 1) {
        out->AddError("lint-rollup-functional", entity,
                      "fine id " + std::to_string(fine_id) + " maps to " +
                          std::to_string(coarse_ids.size()) +
                          " coarse ids; rollup must be function-valued");
      }
    }
    // Totality over the declared fine universe, when one is known.
    const std::vector<GeometryId>* universe =
        FindUniverse(model, rollup.layer, rollup.fine);
    if (universe != nullptr) {
      for (const GeometryId id : *universe) {
        if (!images.count(id)) {
          out->AddError("lint-rollup-total", entity,
                        "fine id " + std::to_string(id) +
                            " has no image; rollup must be total");
        }
      }
    }
    // Dangling ids against declared universes.
    const std::vector<GeometryId>* coarse_universe =
        FindUniverse(model, rollup.layer, rollup.coarse);
    for (const auto& [fine_id, coarse_id] : rollup.pairs) {
      if (universe != nullptr &&
          std::find(universe->begin(), universe->end(), fine_id) ==
              universe->end()) {
        out->AddError("lint-rollup-dangling", entity,
                      "fine id " + std::to_string(fine_id) +
                          " is not an element of level '" +
                          KindName(rollup.fine) + "'");
      }
      if (coarse_universe != nullptr &&
          std::find(coarse_universe->begin(), coarse_universe->end(),
                    coarse_id) == coarse_universe->end()) {
        out->AddError("lint-rollup-dangling", entity,
                      "coarse id " + std::to_string(coarse_id) +
                          " is not an element of level '" +
                          KindName(rollup.coarse) + "'");
      }
    }
  }
}

void LintCompositions(const SchemaModel& model, DiagnosticList* out) {
  for (const SchemaModel::Rollup& r12 : model.rollups) {
    for (const SchemaModel::Rollup& r23 : model.rollups) {
      if (r23.layer != r12.layer || r23.fine != r12.coarse) {
        continue;
      }
      const SchemaModel::Rollup* r13 =
          FindRollup(model, r12.layer, r12.fine, r23.coarse);
      if (r13 == nullptr) {
        continue;  // No stored shortcut relation to be consistent with.
      }
      const std::string entity = RollupEntity(*r13);
      for (const auto& [a, b1] : r12.pairs) {
        for (const auto& [b2, c] : r23.pairs) {
          if (b1 != b2) {
            continue;
          }
          if (std::find(r13->pairs.begin(), r13->pairs.end(),
                        std::pair<GeometryId, GeometryId>{a, c}) ==
              r13->pairs.end()) {
            out->AddError(
                "lint-rollup-composition", entity,
                "composition " + EdgeName(r12.fine, r12.coarse) + " ∘ " +
                    EdgeName(r23.fine, r23.coarse) + " maps " +
                    std::to_string(a) + " to " + std::to_string(c) +
                    " but the stored relation does not");
          }
        }
      }
    }
  }
}

void LintAlphas(const SchemaModel& model, DiagnosticList* out) {
  std::set<std::string> seen;
  for (const SchemaModel::AlphaBinding& alpha : model.alphas) {
    const std::string entity = "alpha '" + alpha.attribute + "'";
    if (!seen.insert(alpha.attribute).second) {
      out->AddError("lint-alpha-dangling", entity,
                    "attribute has more than one alpha binding");
      continue;
    }
    const gis::AttributeBinding* binding = nullptr;
    for (const gis::AttributeBinding& att : model.attributes) {
      if (att.attribute == alpha.attribute) {
        binding = &att;
        break;
      }
    }
    if (binding == nullptr) {
      out->AddError("lint-alpha-dangling", entity,
                    "alpha binds members of an attribute with no Att entry");
      continue;
    }
    std::map<Value, std::set<GeometryId>> images;
    for (const auto& [member, geom] : alpha.pairs) {
      images[member].insert(geom);
    }
    for (const auto& [member, geoms] : images) {
      if (geoms.size() > 1) {
        out->AddError("lint-alpha-functional", entity,
                      "member " + member.ToString() + " maps to " +
                          std::to_string(geoms.size()) +
                          " geometries; alpha must be function-valued");
      }
    }
    const std::vector<GeometryId>* universe =
        FindUniverse(model, binding->layer, binding->kind);
    if (universe != nullptr) {
      for (const auto& [member, geom] : alpha.pairs) {
        if (std::find(universe->begin(), universe->end(), geom) ==
            universe->end()) {
          out->AddError("lint-alpha-dangling", entity,
                        "member " + member.ToString() +
                            " binds to geometry " + std::to_string(geom) +
                            " absent from level '" + KindName(binding->kind) +
                            "' of layer '" + binding->layer + "'");
        }
      }
    }
  }
}

void LintFactTables(const SchemaModel& model,
                    const std::set<std::string>& acyclic,
                    DiagnosticList* out) {
  for (const SchemaModel::FactTable& fact : model.fact_tables) {
    const std::string entity = "fact table '" + fact.name + "'";
    const SchemaModel::Graph* graph = FindGraph(model, fact.layer);
    if (graph == nullptr) {
      out->AddError("lint-summability", entity,
                    "geometry dimension references unknown layer '" +
                        fact.layer + "'");
      continue;
    }
    if (!GraphNodes(graph->edges).count(fact.level)) {
      out->AddError("lint-summability", entity,
                    "level '" + KindName(fact.level) +
                        "' is absent from layer '" + fact.layer + "'");
      continue;
    }
    if (acyclic.count(fact.layer) &&
        fact.level != gis::GeometryKind::kPoint &&
        !ReachableFrom(graph->edges, gis::GeometryKind::kPoint)
             .count(fact.level)) {
      out->AddError("lint-summability", entity,
                    "level '" + KindName(fact.level) +
                        "' is unreachable from point; the Def. 4 summable "
                        "rewriting cannot aggregate up to it");
    }
    // Def. 4 needs the fact table total over the level's members: a missing
    // member silently drops from every coarser aggregate.
    const std::vector<GeometryId>* universe =
        FindUniverse(model, fact.layer, fact.level);
    if (universe != nullptr) {
      for (const GeometryId id : *universe) {
        if (std::find(fact.ids.begin(), fact.ids.end(), id) ==
            fact.ids.end()) {
          out->AddError("lint-summability", entity,
                        "member " + std::to_string(id) + " of level '" +
                            KindName(fact.level) +
                            "' has no fact row; aggregates above this level "
                            "undercount");
        }
      }
    }
  }
}

}  // namespace

SchemaModel SchemaModel::FromInstance(
    const gis::GisDimensionInstance& instance) {
  SchemaModel model;
  for (const std::string& name : instance.schema().LayerNames()) {
    const auto graph = instance.schema().GraphOf(name);
    if (graph.ok()) {
      model.graphs.push_back(Graph{name, graph.ValueOrDie()->edges()});
    }
  }
  model.attributes = instance.schema().attributes();
  for (const gis::StoredRollup& stored : instance.StoredRollups()) {
    model.rollups.push_back(
        Rollup{stored.layer, stored.fine, stored.coarse, *stored.pairs});
  }
  for (const gis::AttributeBinding& att : instance.schema().attributes()) {
    const auto members = instance.AlphaMembers(att.attribute);
    if (!members.ok()) {
      continue;
    }
    AlphaBinding alpha;
    alpha.attribute = att.attribute;
    for (const Value& member : members.ValueOrDie()) {
      const auto geom = instance.Alpha(att.attribute, member);
      if (geom.ok()) {
        alpha.pairs.emplace_back(member, geom.ValueOrDie());
      }
    }
    if (!alpha.pairs.empty()) {
      model.alphas.push_back(std::move(alpha));
    }
  }
  for (const std::string& name : instance.LayerNames()) {
    const auto layer = instance.GetLayer(name);
    if (layer.ok()) {
      model.levels.push_back(LevelUniverse{name, layer.ValueOrDie()->kind(),
                                           layer.ValueOrDie()->ids()});
    }
  }
  return model;
}

DiagnosticList LintSchema(const SchemaModel& model) {
  DiagnosticList out;
  std::set<std::string> acyclic;
  LintGraphs(model, &acyclic, &out);
  LintAttributes(model, &out);
  LintRollups(model, &out);
  LintCompositions(model, &out);
  LintAlphas(model, &out);
  LintFactTables(model, acyclic, &out);
  return out;
}

}  // namespace piet::analysis::lint
