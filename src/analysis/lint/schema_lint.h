#ifndef PIET_ANALYSIS_LINT_SCHEMA_LINT_H_
#define PIET_ANALYSIS_LINT_SCHEMA_LINT_H_

#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "common/value.h"
#include "gis/instance.h"
#include "gis/layer.h"
#include "gis/schema.h"

namespace piet::analysis::lint {

/// A raw, unvalidated view of a GIS dimension for the schema-lattice
/// verifier. `gis::GeometryGraph::AddEdge` and friends reject malformed
/// input at construction, so defective schemas (cyclic H(L), non-functional
/// rollups, ...) cannot even be *built* through the gis API — the linter
/// instead consumes this plain-data model, which the corpus loader fills
/// from text and `FromInstance` fills from a live instance.
struct SchemaModel {
  struct Graph {
    std::string layer;
    std::vector<std::pair<gis::GeometryKind, gis::GeometryKind>> edges;
  };
  /// One stored rollup relation r^{fine,coarse}_layer as raw id pairs.
  struct Rollup {
    std::string layer;
    gis::GeometryKind fine = gis::GeometryKind::kPoint;
    gis::GeometryKind coarse = gis::GeometryKind::kAll;
    std::vector<std::pair<gis::GeometryId, gis::GeometryId>> pairs;
  };
  /// One α function as raw (member, geometry) pairs.
  struct AlphaBinding {
    std::string attribute;
    std::vector<std::pair<Value, gis::GeometryId>> pairs;
  };
  /// The universe of geometry ids at one (layer, kind) level. Levels with
  /// no declared universe are treated as unknown and totality checks over
  /// them are skipped (the linter only reports what it can prove).
  struct LevelUniverse {
    std::string layer;
    gis::GeometryKind kind = gis::GeometryKind::kPoint;
    std::vector<gis::GeometryId> ids;
  };
  /// A fact table for the Def. 4 summability precondition: its geometry
  /// dimension column ranges over `level` of `layer`, and `ids` are the
  /// members it actually covers.
  struct FactTable {
    std::string name;
    std::string layer;
    gis::GeometryKind level = gis::GeometryKind::kPoint;
    std::vector<gis::GeometryId> ids;
  };

  std::vector<Graph> graphs;
  std::vector<gis::AttributeBinding> attributes;
  std::vector<Rollup> rollups;
  std::vector<AlphaBinding> alphas;
  std::vector<LevelUniverse> levels;
  std::vector<FactTable> fact_tables;

  /// Snapshot of a live instance: layer graphs, attribute bindings, stored
  /// rollups, α bindings, and one level universe per layer (its element
  /// kind). Fact tables are not derivable from the instance and stay empty.
  static SchemaModel FromInstance(const gis::GisDimensionInstance& instance);
};

/// Verifies the schema lattice of Defs. 1-4 over the raw model:
/// H(L) acyclicity and shape (lint-graph-cycle, lint-graph-shape), Att
/// bindings (lint-att-binding), rollup functionality / totality / edge
/// existence (lint-rollup-functional, lint-rollup-total,
/// lint-rollup-dangling), composition consistency
/// r^{G1,G2} ∘ r^{G2,G3} ⊆ r^{G1,G3} (lint-rollup-composition), α
/// functionality and dangling references (lint-alpha-functional,
/// lint-alpha-dangling), and per-fact-table summability preconditions
/// (lint-summability). All findings are errors.
DiagnosticList LintSchema(const SchemaModel& model);

}  // namespace piet::analysis::lint

#endif  // PIET_ANALYSIS_LINT_SCHEMA_LINT_H_
