#include "analysis/lint/query_lint.h"

#include <algorithm>
#include <charconv>
#include <optional>
#include <set>
#include <string>

#include "analysis/lint/time_domain.h"
#include "gis/layer.h"
#include "temporal/time_dimension.h"

namespace piet::analysis::lint {

namespace pietql = core::pietql;
using gis::GeometryId;
using gis::Layer;

namespace {

/// Shortest round-trip rendering, matching the printer (no 6-digit
/// truncation): "50", "1.5", "189493200".
std::string FormatNumber(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) {
    return "0";
  }
  std::string out(buf, ptr);
  if (out.size() > 2 && out.substr(out.size() - 2) == ".0") {
    out.resize(out.size() - 2);
  }
  return out;
}

/// Mirrors the evaluator's comparison exactly (Value's total order).
bool CompareValues(const Value& lhs, pietql::CompareOp op, const Value& rhs) {
  switch (op) {
    case pietql::CompareOp::kLt:
      return lhs < rhs;
    case pietql::CompareOp::kGt:
      return rhs < lhs;
    case pietql::CompareOp::kLe:
      return !(rhs < lhs);
    case pietql::CompareOp::kGe:
      return !(lhs < rhs);
    case pietql::CompareOp::kEq:
      return lhs == rhs;
  }
  return false;
}

const Layer* ResolveLayer(const QueryContext& context,
                          const std::string& name) {
  if (context.gis == nullptr) {
    return nullptr;
  }
  const auto layer = context.gis->GetLayer(name);
  return layer.ok() ? layer.ValueOrDie() : nullptr;
}

std::string GeoEntity(size_t index, const pietql::GeoCondition& cond) {
  const std::string entity = "geo WHERE clause " + std::to_string(index + 1);
  switch (cond.kind) {
    case pietql::GeoCondition::Kind::kAttrCompare:
      return entity + " (ATTR layer." + cond.a.name + ", " + cond.attribute +
             ")";
    case pietql::GeoCondition::Kind::kIntersection:
      return entity + " (INTERSECTION layer." + cond.a.name + ", layer." +
             cond.b.name + ")";
    case pietql::GeoCondition::Kind::kContains:
      return entity + " (CONTAINS layer." + cond.a.name + ", layer." +
             cond.b.name + ")";
  }
  return entity;
}

/// Flows the over-approximate satisfying id set through the geo WHERE
/// conjunction. Returns the final set; nullopt when the linter cannot
/// reason about the query (unknown layer, malformed select).
std::optional<std::vector<GeometryId>> LintGeoPart(
    const QueryContext& context, const pietql::GeoQuery& geo,
    DiagnosticList* out) {
  if (geo.select.empty()) {
    return std::nullopt;
  }
  const std::string& result_name = geo.select.front().name;
  const Layer* layer = ResolveLayer(context, result_name);
  if (layer == nullptr) {
    return std::nullopt;  // query-unknown-layer territory.
  }

  std::vector<GeometryId> current(layer->ids());
  std::sort(current.begin(), current.end());
  bool abstained = false;
  for (size_t i = 0; i < geo.where.size(); ++i) {
    const pietql::GeoCondition& cond = geo.where[i];
    if (cond.a.name != result_name) {
      return std::nullopt;  // The evaluator rejects this shape outright.
    }
    const std::string entity = GeoEntity(i, cond);
    // The clause's satisfying set over the whole layer. Attr comparisons
    // are exact; spatial clauses over-approximate with bounding boxes (a
    // disjoint box proves the geometric test false, so an empty set is
    // still a proof of deadness).
    std::vector<GeometryId> satisfying;
    bool exact = false;
    switch (cond.kind) {
      case pietql::GeoCondition::Kind::kAttrCompare: {
        exact = true;
        for (const GeometryId id : layer->ids()) {
          const auto v = layer->GetAttribute(id, cond.attribute);
          if (v.ok() && CompareValues(v.ValueOrDie(), cond.op, cond.literal)) {
            satisfying.push_back(id);
          }
        }
        break;
      }
      case pietql::GeoCondition::Kind::kIntersection:
      case pietql::GeoCondition::Kind::kContains: {
        const Layer* other = ResolveLayer(context, cond.b.name);
        if (other == nullptr) {
          abstained = true;
          continue;
        }
        for (const GeometryId id : layer->ids()) {
          const auto bounds = layer->BoundsOf(id);
          if (bounds.ok() &&
              !other->CandidatesInBox(bounds.ValueOrDie()).empty()) {
            satisfying.push_back(id);
          }
        }
        break;
      }
    }
    std::sort(satisfying.begin(), satisfying.end());
    if (satisfying.empty()) {
      out->AddWarning("lint-dead-clause", entity,
                      "no element of layer '" + result_name +
                          "' can satisfy this clause; it always filters "
                          "everything");
    } else if (exact && std::includes(satisfying.begin(), satisfying.end(),
                                      current.begin(), current.end())) {
      out->AddNote("lint-redundant-clause", entity,
                   "every remaining element satisfies this clause; it "
                   "filters nothing",
                   "drop this clause");
    }
    std::vector<GeometryId> next;
    std::set_intersection(current.begin(), current.end(), satisfying.begin(),
                          satisfying.end(), std::back_inserter(next));
    current = std::move(next);
  }
  if (!geo.where.empty() && !abstained && current.empty()) {
    out->AddWarning("lint-empty-region", "geo WHERE clauses",
                    "the conjunction provably selects no geometry of layer "
                    "'" + result_name + "'; the result region is empty");
  }
  if (abstained) {
    return std::nullopt;
  }
  return current;
}

}  // namespace

DiagnosticList LintQuery(const QueryContext& context,
                         const pietql::Query& query) {
  DiagnosticList out;
  const std::optional<std::vector<GeometryId>> region =
      LintGeoPart(context, query.geo, &out);
  if (!query.mo) {
    return out;
  }
  const pietql::MoQuery& mo = *query.mo;

  TimeAbstract acc;
  bool any_time_dead = false;
  size_t windows = 0;
  size_t rollup_equals = 0;
  std::string fastpath_fixit;
  for (size_t i = 0; i < mo.where.size(); ++i) {
    const pietql::MoCondition& cond = mo.where[i];
    const std::string entity = "mo WHERE clause " + std::to_string(i + 1);
    switch (cond.kind) {
      case pietql::MoCondition::Kind::kTimeBetween: {
        ++windows;
        if (cond.t1 < cond.t0) {
          any_time_dead = true;
          out.AddWarning("lint-dead-clause", entity + " (T BETWEEN)",
                         "empty time window: upper bound " +
                             FormatNumber(cond.t1) +
                             " precedes lower bound " + FormatNumber(cond.t0),
                         "T BETWEEN " + FormatNumber(cond.t1) + " AND " +
                             FormatNumber(cond.t0));
        } else {
          acc.MeetWindow(temporal::Interval(temporal::TimePoint(cond.t0),
                                            temporal::TimePoint(cond.t1)));
        }
        break;
      }
      case pietql::MoCondition::Kind::kTimeEquals: {
        if (!temporal::TimeDimension::HasLevel(cond.time_level)) {
          break;  // query-unknown-time-level territory.
        }
        ++rollup_equals;  // Any rollup-equality disables window_only().
        const std::string clause_entity =
            entity + " (TIME." + cond.time_level + ")";
        switch (acc.MeetLevelEquals(cond.time_level, cond.literal)) {
          case TimeFold::kDead:
            any_time_dead = true;
            out.AddWarning("lint-dead-clause", clause_entity,
                           "TIME." + cond.time_level + " = " +
                               cond.literal.ToString() +
                               " matches no instant; " +
                               cond.literal.ToString() +
                               " is not a member of this level");
            break;
          case TimeFold::kAlways:
            out.AddNote("lint-redundant-clause", clause_entity,
                        "TIME." + cond.time_level + " = " +
                            cond.literal.ToString() +
                            " holds at every instant",
                        "drop this clause");
            break;
          case TimeFold::kFolded:
          case TimeFold::kUnknown:
            break;
        }
        if (fastpath_fixit.empty()) {
          const auto window =
              TimeAbstract::LevelEqualsWindow(cond.time_level, cond.literal);
          if (window) {
            fastpath_fixit = "rewrite TIME." + cond.time_level + " = " +
                             cond.literal.ToString() + " as T BETWEEN " +
                             FormatNumber(window->begin.seconds) + " AND " +
                             FormatNumber(window->end.seconds);
          }
        }
        break;
      }
      case pietql::MoCondition::Kind::kNearLayer: {
        const std::string clause_entity =
            entity + " (NEAR layer." + cond.near_layer + ")";
        const Layer* near = ResolveLayer(context, cond.near_layer);
        if (cond.radius < 0.0) {
          out.AddWarning("lint-contradictory-spatial", clause_entity,
                         "radius " + FormatNumber(cond.radius) +
                             " is negative; no sample is ever within a "
                             "negative distance");
        } else if (near != nullptr && near->size() == 0) {
          out.AddWarning("lint-contradictory-spatial", clause_entity,
                         "layer '" + cond.near_layer +
                             "' has no elements; NEAR can never hold");
        }
        break;
      }
      case pietql::MoCondition::Kind::kInsideResult:
      case pietql::MoCondition::Kind::kPassesThroughResult: {
        const bool inside =
            cond.kind == pietql::MoCondition::Kind::kInsideResult;
        if (region.has_value() && !query.geo.where.empty() &&
            region->empty()) {
          out.AddWarning(
              "lint-contradictory-spatial",
              entity + (inside ? " (INSIDE RESULT)"
                               : " (PASSES THROUGH RESULT)"),
              "the geometric part provably selects no geometry, so this "
              "condition can never hold");
        }
        break;
      }
    }
  }
  if (acc.IsBottom() && !any_time_dead) {
    out.AddWarning("lint-empty-time", "mo WHERE clauses",
                   "the time predicates are individually satisfiable but "
                   "their conjunction matches no instant");
  }
  if (windows > 0 && rollup_equals > 0) {
    out.AddNote("lint-fastpath-defeated", "mo WHERE clauses",
                "mixing T BETWEEN with TIME.<level> = disables the "
                "window-only SamplesMatchingTime binary-search fast path; "
                "every sample is tested row by row",
                fastpath_fixit);
  }
  return out;
}

std::vector<std::string> AllLintCheckIds() {
  return {
      "lint-alpha-dangling",
      "lint-alpha-functional",
      "lint-att-binding",
      "lint-contradictory-spatial",
      "lint-dead-clause",
      "lint-empty-region",
      "lint-empty-time",
      "lint-fastpath-defeated",
      "lint-graph-cycle",
      "lint-graph-shape",
      "lint-parse-error",
      "lint-redundant-clause",
      "lint-rollup-composition",
      "lint-rollup-dangling",
      "lint-rollup-functional",
      "lint-rollup-total",
      "lint-summability",
  };
}

}  // namespace piet::analysis::lint
