#ifndef PIET_ANALYSIS_QUERY_CHECK_H_
#define PIET_ANALYSIS_QUERY_CHECK_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "core/pietql/ast.h"
#include "gis/instance.h"

namespace piet::analysis {

/// What the Piet-QL semantic analyzer resolves names against: the GIS
/// dimension instance (layers, schemas, attributes) and the registered MOFT
/// names. Built by the evaluator from its database; kept as a narrow view so
/// the analysis library stays below core in the dependency order.
struct QueryContext {
  const gis::GisDimensionInstance* gis = nullptr;
  std::vector<std::string> moft_names;
};

/// Walks a parsed Piet-QL query before evaluation and reports semantic
/// errors the parser cannot see. Check-ID catalog (stable; see DESIGN.md):
///
///   query-unknown-layer      SELECT/WHERE/NEAR names a layer not in the GIS
///   query-unknown-moft       the MO part names an unregistered MOFT
///   query-unknown-attribute  ATTR names an attribute bound nowhere
///   query-attr-type-mismatch ATTR compares a literal against values of an
///                            incompatible type (string vs numeric)
///   query-unknown-time-level TIME.<level> / GROUP BY TIME.<level> names a
///                            level absent from the Time dimension
///   query-rollup-edge        a spatial MO condition rolls samples up along
///                            a point->polygon edge absent from H(L) of the
///                            result layer
///   query-conflicting-conditions  INSIDE RESULT / PASSES THROUGH RESULT /
///                            NEAR are not mutually exclusive in the query
///   query-layer-kind         NEAR names a non-point/node layer
///
/// Every diagnostic's entity names the offending clause (e.g. "geo WHERE
/// clause 2"), so strict-mode rejections point at the exact construct.
DiagnosticList AnalyzeQuery(const QueryContext& context,
                            const core::pietql::Query& query);

}  // namespace piet::analysis

#endif  // PIET_ANALYSIS_QUERY_CHECK_H_
