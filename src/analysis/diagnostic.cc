#include "analysis/diagnostic.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace piet::analysis {

std::string_view SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string_view CheckModeToString(CheckMode mode) {
  switch (mode) {
    case CheckMode::kOff:
      return "off";
    case CheckMode::kWarn:
      return "warn";
    case CheckMode::kStrict:
      return "strict";
  }
  return "unknown";
}

namespace {

void AppendJsonString(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityToString(severity) << " [" << check_id << "] " << entity
     << ": " << message;
  if (!fixit.empty()) {
    os << " (fix: " << fixit << ")";
  }
  return os.str();
}

std::string Diagnostic::ToJson() const {
  std::ostringstream os;
  os << "{\"severity\":";
  AppendJsonString(os, SeverityToString(severity));
  os << ",\"check_id\":";
  AppendJsonString(os, check_id);
  os << ",\"entity\":";
  AppendJsonString(os, entity);
  os << ",\"message\":";
  AppendJsonString(os, message);
  if (!fixit.empty()) {
    os << ",\"fixit\":";
    AppendJsonString(os, fixit);
  }
  os << "}";
  return os.str();
}

void DiagnosticList::Add(Severity severity, std::string check_id,
                         std::string entity, std::string message,
                         std::string fixit) {
  for (const Diagnostic& d : diagnostics_) {
    if (d.check_id == check_id && d.entity == entity && d.message == message) {
      return;
    }
  }
  diagnostics_.push_back(Diagnostic{severity, std::move(check_id),
                                    std::move(entity), std::move(message),
                                    std::move(fixit)});
}

void DiagnosticList::Merge(const DiagnosticList& other) {
  for (const Diagnostic& d : other.diagnostics_) {
    Add(d.severity, d.check_id, d.entity, d.message, d.fixit);
  }
}

void DiagnosticList::DowngradeErrorsToWarnings() {
  for (Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) {
      d.severity = Severity::kWarning;
    }
  }
}

bool DiagnosticList::HasErrors() const { return NumErrors() > 0; }

size_t DiagnosticList::NumErrors() const {
  return static_cast<size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kError;
                    }));
}

bool DiagnosticList::Has(std::string_view check_id) const {
  return std::any_of(
      diagnostics_.begin(), diagnostics_.end(),
      [check_id](const Diagnostic& d) { return d.check_id == check_id; });
}

std::vector<std::string> DiagnosticList::CheckIds() const {
  std::vector<std::string> ids;
  ids.reserve(diagnostics_.size());
  for (const Diagnostic& d : diagnostics_) {
    ids.push_back(d.check_id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::string DiagnosticList::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < diagnostics_.size(); ++i) {
    if (i > 0) {
      os << "\n";
    }
    os << diagnostics_[i].ToString();
  }
  return os.str();
}

std::string DiagnosticList::ToJson() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < diagnostics_.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << diagnostics_[i].ToJson();
  }
  os << "]";
  return os.str();
}

Status DiagnosticList::ToStatus() const {
  if (!HasErrors()) {
    return Status::OK();
  }
  std::ostringstream os;
  os << NumErrors() << " model/query check error(s):";
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) {
      os << "\n  " << d.ToString();
    }
  }
  return Status::InvalidArgument(os.str());
}

}  // namespace piet::analysis
