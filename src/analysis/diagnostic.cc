#include "analysis/diagnostic.h"

#include <algorithm>
#include <sstream>

namespace piet::analysis {

std::string_view SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string_view CheckModeToString(CheckMode mode) {
  switch (mode) {
    case CheckMode::kOff:
      return "off";
    case CheckMode::kWarn:
      return "warn";
    case CheckMode::kStrict:
      return "strict";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityToString(severity) << " [" << check_id << "] " << entity
     << ": " << message;
  return os.str();
}

void DiagnosticList::Add(Severity severity, std::string check_id,
                         std::string entity, std::string message) {
  diagnostics_.push_back(Diagnostic{severity, std::move(check_id),
                                    std::move(entity), std::move(message)});
}

void DiagnosticList::Merge(const DiagnosticList& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

void DiagnosticList::DowngradeErrorsToWarnings() {
  for (Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) {
      d.severity = Severity::kWarning;
    }
  }
}

bool DiagnosticList::HasErrors() const { return NumErrors() > 0; }

size_t DiagnosticList::NumErrors() const {
  return static_cast<size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kError;
                    }));
}

bool DiagnosticList::Has(std::string_view check_id) const {
  return std::any_of(
      diagnostics_.begin(), diagnostics_.end(),
      [check_id](const Diagnostic& d) { return d.check_id == check_id; });
}

std::vector<std::string> DiagnosticList::CheckIds() const {
  std::vector<std::string> ids;
  ids.reserve(diagnostics_.size());
  for (const Diagnostic& d : diagnostics_) {
    ids.push_back(d.check_id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::string DiagnosticList::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < diagnostics_.size(); ++i) {
    if (i > 0) {
      os << "\n";
    }
    os << diagnostics_[i].ToString();
  }
  return os.str();
}

Status DiagnosticList::ToStatus() const {
  if (!HasErrors()) {
    return Status::OK();
  }
  std::ostringstream os;
  os << NumErrors() << " model/query check error(s):";
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) {
      os << "\n  " << d.ToString();
    }
  }
  return Status::InvalidArgument(os.str());
}

}  // namespace piet::analysis
