#ifndef PIET_ANALYSIS_DIAGNOSTIC_H_
#define PIET_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace piet::analysis {

/// Severity of a diagnostic. Errors are well-formedness violations that make
/// aggregates untrustworthy (the summability preconditions of Defs. 1-3 and
/// Sec. 4/5); warnings are suspicious but evaluable; notes are informational.
enum class Severity {
  kNote = 0,
  kWarning,
  kError,
};

std::string_view SeverityToString(Severity severity);

/// How checkers are wired into evaluation and load paths:
///  * kOff    — no checks run; behavior is byte-identical to the unchecked
///              code paths.
///  * kWarn   — checks run; error diagnostics are downgraded to warnings and
///              surfaced alongside the result, evaluation proceeds.
///  * kStrict — checks run; any error diagnostic rejects the operation with
///              an InvalidArgument status naming the offending entity.
enum class CheckMode {
  kOff = 0,
  kWarn,
  kStrict,
};

std::string_view CheckModeToString(CheckMode mode);

/// One finding of a checker: a severity, a stable kebab-case check ID (the
/// catalog lives in DESIGN.md), the entity it attributes to (layer, MOFT row,
/// query clause, ...), and a human-readable message.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string check_id;  ///< e.g. "moft-time-monotonic"
  std::string entity;    ///< e.g. "moft 'FMbus' oid 3" or "WHERE clause 2"
  std::string message;

  /// "error [moft-time-monotonic] moft 'FMbus' oid 3: ...".
  std::string ToString() const;
};

/// An append-only collection of diagnostics with the queries checkers and
/// their callers need: error presence, per-ID lookup, and rendering either as
/// text or as a Status for strict-mode gates.
class DiagnosticList {
 public:
  DiagnosticList() = default;

  void Add(Severity severity, std::string check_id, std::string entity,
           std::string message);
  void AddError(std::string check_id, std::string entity, std::string message) {
    Add(Severity::kError, std::move(check_id), std::move(entity),
        std::move(message));
  }
  void AddWarning(std::string check_id, std::string entity,
                  std::string message) {
    Add(Severity::kWarning, std::move(check_id), std::move(entity),
        std::move(message));
  }
  void AddNote(std::string check_id, std::string entity, std::string message) {
    Add(Severity::kNote, std::move(check_id), std::move(entity),
        std::move(message));
  }

  /// Appends every diagnostic of `other`.
  void Merge(const DiagnosticList& other);

  /// Re-labels every error as a warning (the kWarn downgrade).
  void DowngradeErrorsToWarnings();

  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }
  const Diagnostic& operator[](size_t i) const { return diagnostics_[i]; }
  std::vector<Diagnostic>::const_iterator begin() const {
    return diagnostics_.begin();
  }
  std::vector<Diagnostic>::const_iterator end() const {
    return diagnostics_.end();
  }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  bool HasErrors() const;
  size_t NumErrors() const;

  /// True if any diagnostic carries `check_id`.
  bool Has(std::string_view check_id) const;

  /// Distinct check IDs present, sorted.
  std::vector<std::string> CheckIds() const;

  /// One diagnostic per line.
  std::string ToString() const;

  /// OK when no error diagnostics are present; otherwise InvalidArgument
  /// whose message lists every error (the strict-mode rejection).
  Status ToStatus() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace piet::analysis

#endif  // PIET_ANALYSIS_DIAGNOSTIC_H_
